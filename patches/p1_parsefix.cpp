//===- patches/p1_parsefix.cpp - Native patch P1 --------------*- C++ -*-===//
///
/// \file
/// The native (dlopen) form of FlashEd patch P1: parse_target learns to
/// strip query strings and fragments.  This is the exact artifact shape
/// the PLDI 2001 system ships — new code for one function plus a
/// manifest, dynamically loaded and relinked into the running server.
///
/// Self-contained on purpose: a dynamic patch carries its own code, not
/// a copy of the program (which is why the artifact stays small — the
/// code-size experiment E5 reports this file's size).  Every export uses
/// C linkage and the dsu uniform invoker ABI (see src/patch/NativeAbi.h).
///
//===----------------------------------------------------------------------===//

#include <string>

namespace {

const char *Manifest = R"dsu(
(patch
  (id "P1-parse-query-fix-native")
  (description "bugfix: strip query strings in parse_target (dlopen build)")
  (provides
    (fn (name "flashed.parse_target")
        (type "fn(string) -> string")
        (native-symbol "dsu_p1_parse_target"))))
)dsu";

/// Returns "METHOD TARGET" from the request head, or "!NNN reason".
/// This is the v2 algorithm: identical to v1 except that the target is
/// truncated at the first '?' or '#'.
std::string parseTargetV2(const std::string &Raw) {
  size_t LineEnd = Raw.find('\n');
  std::string Line =
      LineEnd == std::string::npos ? Raw : Raw.substr(0, LineEnd);
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();

  size_t Sp1 = Line.find(' ');
  if (Sp1 == std::string::npos || Sp1 == 0)
    return "!400 malformed request";
  std::string Method = Line.substr(0, Sp1);
  if (Method != "GET" && Method != "HEAD")
    return "!405 method not allowed";

  size_t Sp2 = Line.find(' ', Sp1 + 1);
  std::string Target =
      Sp2 == std::string::npos ? Line.substr(Sp1 + 1)
                               : Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  if (Target.empty())
    return "!400 malformed request";

  // The fix: drop query strings and fragments.
  size_t Q = Target.find_first_of("?#");
  if (Q != std::string::npos)
    Target.resize(Q);
  return Method + " " + Target;
}

} // namespace

extern "C" const char *dsu_patch_manifest() { return Manifest; }

/// Uniform ABI: fn(string) -> string becomes
/// std::string(void *reserved, std::string).
extern "C" std::string dsu_p1_parse_target(void *, std::string Raw) {
  return parseTargetV2(Raw);
}
