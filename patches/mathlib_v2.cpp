//===- patches/mathlib_v2.cpp - Native patch with a transformer -*- C++ -*-//
///
/// \file
/// A self-contained native patch used by the dlopen-path tests and the
/// update-duration bench: replaces two numeric functions, adds one, and
/// migrates the "math.counter" state cell from %counter@1 (a plain int
/// accumulator) to %counter@2 (accumulated in micro-units), shipping the
/// native state transformer.
///
//===----------------------------------------------------------------------===//

#include "patch/NativeAbi.h"

#include <cstdint>
#include <string>

namespace {

const char *Manifest = R"dsu(
(patch
  (id "mathlib-v2-native")
  (description "fib gets the iterative algorithm; scale moves to
 micro-units; new cube; %counter@1 -> %counter@2 in micro-units")
  (provides
    (fn (name "math.fib")
        (type "fn(int) -> int")
        (native-symbol "dsu_mathv2_fib"))
    (fn (name "math.scale")
        (type "fn(int) -> int")
        (native-symbol "dsu_mathv2_scale"))
    (fn (name "math.cube")
        (type "fn(int) -> int")
        (native-symbol "dsu_mathv2_cube")))
  (new-types
    (type (name "%counter@2") (repr "int")))
  (transformers
    (transform (from "%counter@1") (to "%counter@2")
               (impl "dsu_mathv2_xform_counter"))))
)dsu";

} // namespace

extern "C" const char *dsu_patch_manifest() { return Manifest; }

extern "C" int64_t dsu_mathv2_fib(void *, int64_t N) {
  if (N < 2)
    return N < 0 ? 0 : N;
  int64_t A = 0, B = 1;
  for (int64_t I = 2; I <= N; ++I) {
    int64_t C = A + B;
    A = B;
    B = C;
  }
  return B;
}

extern "C" int64_t dsu_mathv2_scale(void *, int64_t X) {
  // v2 semantics: scale into micro-units (v1 scaled into milli-units).
  return X * 1000000;
}

extern "C" int64_t dsu_mathv2_cube(void *, int64_t X) { return X * X * X; }

/// %counter@1 (milli-units) -> %counter@2 (micro-units).
extern "C" DsuNativeTransformOut dsu_mathv2_xform_counter(void *OldData) {
  const int64_t Old = *static_cast<int64_t *>(OldData);
  auto *New = new int64_t(Old * 1000);
  return DsuNativeTransformOut{
      New, [](void *P) { delete static_cast<int64_t *>(P); }, nullptr};
}
