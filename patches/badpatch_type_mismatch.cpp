//===- patches/badpatch_type_mismatch.cpp - Rejection test patch -*- C++ -*-//
///
/// \file
/// A deliberately ill-typed native patch: it claims to replace
/// "math.fib" with a definition of a *different* type.  The dynamic
/// linker must reject it at prepare time with no program mutation —
/// the type-safety property of the PLDI 2001 system under test.
///
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <string>

namespace {

const char *Manifest = R"dsu(
(patch
  (id "badpatch-type-mismatch")
  (description "claims fib now takes a string; must be rejected")
  (provides
    (fn (name "math.fib")
        (type "fn(string) -> int")
        (native-symbol "dsu_bad_fib"))))
)dsu";

} // namespace

extern "C" const char *dsu_patch_manifest() { return Manifest; }

extern "C" int64_t dsu_bad_fib(void *, std::string S) {
  return static_cast<int64_t>(S.size());
}
