//===- support/FaultInject.h - Fault-injection harness --------*- C++ -*-===//
///
/// \file
/// Deliberately broken inputs for exercising the update pipeline's
/// failure paths: patches that trap, patches that exhaust their fuel
/// budget, patches that turn every response into a 500, and a staging
/// stall knob that makes a patch linger in the verify/link pipeline so
/// the staging watchdog (and the rollout controller's observation of a
/// stalled canary) can be driven deterministically from tests and the
/// bench_rollout harness.
///
/// Everything here is inert unless a test reaches for it: the stall
/// knob defaults to zero and the patch generators only produce artifact
/// text — the production pipeline treats their output like any other
/// operator-submitted .dsup artifact.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_FAULTINJECT_H
#define DSU_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <string>

namespace dsu {
namespace faultinject {

/// Crash-point injection: the update pipeline asks maybeCrash() at the
/// instants where a real crash is most damaging to the durable journal's
/// two-phase protocol, and an armed point kills the process with SIGKILL
/// (no destructors, no flushes — a genuine crash, not an exit path).
/// Points:
///
///   crash_after_intent           the Intent record is synced, staging
///                                has not begun
///   crash_after_commit_pre_seal  the commit landed (bindings swung)
///                                but the Committed seal is not yet on
///                                disk
///   crash_mid_replay             boot-time replay wrote its Intent for
///                                a chain entry and dies before the
///                                entry commits (the crash-loop case)
///
/// Armed via armCrashPoint("point[:patch-id]") or — so a freshly
/// exec'd server under test can be armed from outside — the environment
/// variable DSU_FAULT_CRASH_POINT with the same syntax, read once on
/// first use.  The optional patch-id suffix restricts the crash to one
/// patch, letting a test replay a chain of good patches and kill only
/// on the bad one.
enum class CrashPoint {
  None = 0,
  AfterIntent,
  AfterCommitPreSeal,
  MidReplay,
};

/// Arms \p Spec ("crash_after_intent", "crash_mid_replay:patch-7", ...).
/// An empty spec or "none" disarms.  Returns false for an unknown point.
bool armCrashPoint(const std::string &Spec);

/// Kills the process (SIGKILL) when \p P is the armed point and the
/// armed patch-id filter (if any) matches \p PatchId.  No-op otherwise.
void maybeCrash(CrashPoint P, const std::string &PatchId);

/// Staging stall injection: when non-zero, Runtime::stageInto() sleeps
/// this many milliseconds between verification and link preparation —
/// in small increments, so the staging watchdog deadline is still
/// honoured mid-stall.  Models a pathological patch whose verification
/// or transformer build wedges.
void setStageStallMs(uint64_t Ms);
uint64_t stageStallMs();

/// A patch whose replacement for `flashed.map_url` executes a division
/// by zero on every call: the VTAL interpreter traps, the binding's
/// trap counter increments, and the caller receives the string type's
/// zero value ("") — which surfaces as a 404, *not* a 5xx.  Exercises
/// the rollout controller's trap gate (error-rate gates alone would
/// miss it).
std::string trapPatchText();

/// A patch whose replacement for `flashed.map_url` returns the tagged
/// error "!500 injected" for every request, so every canary response
/// becomes an HTTP 500.  Exercises the error-delta gate.
std::string error500PatchText();

/// A patch whose replacement for `flashed.mime_type` burns
/// \p Iterations loop iterations (~6 instructions each) before
/// returning a valid MIME type.  Small counts model a latency
/// regression (latency-delta gate); counts beyond the interpreter's
/// fuel budget (64M instructions) exhaust fuel on every call, which
/// traps without ever completing a request — the rollout controller's
/// stall gate catches the case where the canary stops producing
/// responses inside the observation window.
std::string fuelBurnPatchText(uint64_t Iterations);

} // namespace faultinject
} // namespace dsu

#endif // DSU_SUPPORT_FAULTINJECT_H
