//===- support/Logging.h - Leveled diagnostics ----------------*- C++ -*-===//
///
/// \file
/// Tiny leveled logger.  Quiet by default; the DSU_LOG_LEVEL environment
/// variable or setLogLevel() raises verbosity.  The update engine logs the
/// stages of each dynamic update (verify, link, transform, commit) at
/// LL_Info, matching the narrative trace in the PLDI 2001 paper's examples.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_LOGGING_H
#define DSU_SUPPORT_LOGGING_H

namespace dsu {

enum LogLevel {
  LL_Error = 0,
  LL_Warning = 1,
  LL_Info = 2,
  LL_Debug = 3,
};

/// Sets the global log threshold; messages above it are dropped.
void setLogLevel(LogLevel Level);
LogLevel logLevel();

/// printf-style log statement to stderr with a level prefix.
void logMessage(LogLevel Level, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace dsu

#define DSU_LOG_INFO(...) ::dsu::logMessage(::dsu::LL_Info, __VA_ARGS__)
#define DSU_LOG_DEBUG(...) ::dsu::logMessage(::dsu::LL_Debug, __VA_ARGS__)
#define DSU_LOG_WARN(...) ::dsu::logMessage(::dsu::LL_Warning, __VA_ARGS__)
#define DSU_LOG_ERROR(...) ::dsu::logMessage(::dsu::LL_Error, __VA_ARGS__)

#endif // DSU_SUPPORT_LOGGING_H
