//===- support/MemoryBuffer.h - Whole-file IO -----------------*- C++ -*-===//
///
/// \file
/// Whole-file read/write helpers used by patch files, manifests and the
/// FlashEd document cache.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_MEMORYBUFFER_H
#define DSU_SUPPORT_MEMORYBUFFER_H

#include "support/Error.h"

#include <string>

namespace dsu {

/// Reads the entire file at \p Path.
Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path, replacing any existing file.
Error writeFile(const std::string &Path, const std::string &Contents);

/// Returns the size in bytes of the file at \p Path.
Expected<uint64_t> fileSize(const std::string &Path);

/// True if a regular file exists at \p Path.
bool fileExists(const std::string &Path);

} // namespace dsu

#endif // DSU_SUPPORT_MEMORYBUFFER_H
