//===- support/Logging.cpp ------------------------------------*- C++ -*-===//

#include "support/Logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace dsu;

namespace {

LogLevel initialLevel() {
  if (const char *Env = std::getenv("DSU_LOG_LEVEL")) {
    int V = std::atoi(Env);
    if (V >= LL_Error && V <= LL_Debug)
      return static_cast<LogLevel>(V);
  }
  return LL_Warning;
}

std::atomic<int> GLevel{initialLevel()};

const char *levelName(LogLevel L) {
  switch (L) {
  case LL_Error:
    return "error";
  case LL_Warning:
    return "warn";
  case LL_Info:
    return "info";
  case LL_Debug:
    return "debug";
  }
  return "?";
}

} // namespace

void dsu::setLogLevel(LogLevel Level) { GLevel.store(Level); }

LogLevel dsu::logLevel() { return static_cast<LogLevel>(GLevel.load()); }

void dsu::logMessage(LogLevel Level, const char *Fmt, ...) {
  if (Level > GLevel.load(std::memory_order_relaxed))
    return;
  std::fprintf(stderr, "[dsu:%s] ", levelName(Level));
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}
