//===- support/Error.cpp --------------------------------------*- C++ -*-===//
///
/// \file
/// Implementation of Error formatting helpers.
///
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdarg>
#include <vector>

using namespace dsu;

const char *dsu::errorCodeName(ErrorCode EC) {
  switch (EC) {
  case ErrorCode::EC_None:
    return "success";
  case ErrorCode::EC_IO:
    return "io";
  case ErrorCode::EC_Parse:
    return "parse";
  case ErrorCode::EC_Verify:
    return "verify";
  case ErrorCode::EC_TypeMismatch:
    return "type-mismatch";
  case ErrorCode::EC_Link:
    return "link";
  case ErrorCode::EC_Transform:
    return "transform";
  case ErrorCode::EC_Invalid:
    return "invalid";
  case ErrorCode::EC_Busy:
    return "busy";
  case ErrorCode::EC_Unsupported:
    return "unsupported";
  case ErrorCode::EC_Timeout:
    return "timeout";
  case ErrorCode::EC_Corrupt:
    return "corrupt";
  case ErrorCode::EC_Analysis:
    return "analysis";
  }
  return "unknown";
}

Error Error::make(ErrorCode Code, const char *Fmt, ...) {
  assert(Code != ErrorCode::EC_None && "failure must have a category");
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::vector<char> Buf(static_cast<size_t>(Len) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);

  Error E;
  E.Code = Code;
  E.Msg.assign(Buf.data(), static_cast<size_t>(Len));
  return E;
}

std::string Error::str() const {
  if (!*this)
    return "success";
  std::string S = errorCodeName(Code);
  S += ": ";
  S += Msg;
  return S;
}

Error Error::withContext(const std::string &Context) const {
  if (!*this)
    return Error::success();
  Error E;
  E.Code = Code;
  E.Msg = Context + ": " + Msg;
  return E;
}
