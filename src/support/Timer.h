//===- support/Timer.h - Monotonic timing and statistics ------*- C++ -*-===//
///
/// \file
/// Monotonic wall-clock timing plus simple running statistics.  Used by the
/// update pipeline to produce the verify/link/transform breakdown that the
/// PLDI 2001 evaluation reports per patch, and by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_TIMER_H
#define DSU_SUPPORT_TIMER_H

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dsu {

/// Monotonic stopwatch measuring nanoseconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Nanoseconds elapsed since construction or last reset().
  uint64_t elapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  double elapsedMs() const { return static_cast<double>(elapsedNs()) / 1e6; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates samples and exposes mean / min / max / stddev.
class RunningStat {
public:
  void addSample(double X) {
    Samples.push_back(X);
    Sum += X;
    SumSq += X * X;
    if (Samples.size() == 1 || X < MinV)
      MinV = X;
    if (Samples.size() == 1 || X > MaxV)
      MaxV = X;
  }

  size_t count() const { return Samples.size(); }
  double mean() const { return Samples.empty() ? 0.0 : Sum / count(); }
  double min() const { return Samples.empty() ? 0.0 : MinV; }
  double max() const { return Samples.empty() ? 0.0 : MaxV; }

  double stddev() const {
    if (Samples.size() < 2)
      return 0.0;
    double M = mean();
    double Var = (SumSq - Sum * M) / (count() - 1);
    return Var > 0 ? std::sqrt(Var) : 0.0;
  }

  /// p in [0,100].  Sorts a copy; intended for reporting, not hot paths.
  double percentile(double P) const;

  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
  double Sum = 0.0, SumSq = 0.0, MinV = 0.0, MaxV = 0.0;
};

} // namespace dsu

#endif // DSU_SUPPORT_TIMER_H
