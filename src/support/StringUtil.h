//===- support/StringUtil.h - Small string helpers ------------*- C++ -*-===//
///
/// \file
/// String helpers used across the project: splitting, trimming, prefix and
/// suffix tests, and printf-style formatting into std::string.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_STRINGUTIL_H
#define DSU_SUPPORT_STRINGUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace dsu {

/// Splits \p S on \p Sep.  Empty pieces are kept, so "a,,b" yields three
/// elements; callers that want to skip blanks filter afterwards.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// Returns \p S without leading/trailing ASCII whitespace.
std::string_view trim(std::string_view S);

bool startsWith(std::string_view S, std::string_view Prefix);
bool endsWith(std::string_view S, std::string_view Suffix);

/// printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a non-negative decimal integer; returns false on any non-digit
/// byte or overflow past 2^63-1.
bool parseUInt(std::string_view S, uint64_t &Out);

/// Escapes a string for embedding in a quoted s-expression atom.
std::string escapeString(std::string_view S);

/// Reverses escapeString; returns false on a malformed escape.
bool unescapeString(std::string_view S, std::string &Out);

} // namespace dsu

#endif // DSU_SUPPORT_STRINGUTIL_H
