//===- support/SExpr.cpp --------------------------------------*- C++ -*-===//

#include "support/SExpr.h"

#include "support/StringUtil.h"

#include <cctype>

using namespace dsu;

SExpr SExpr::makeSymbol(std::string Name) {
  SExpr S;
  S.Kind = SK_Symbol;
  S.Text = std::move(Name);
  return S;
}

SExpr SExpr::makeString(std::string Value) {
  SExpr S;
  S.Kind = SK_String;
  S.Text = std::move(Value);
  return S;
}

SExpr SExpr::makeInt(int64_t Value) {
  SExpr S;
  S.Kind = SK_Int;
  S.Int = Value;
  return S;
}

SExpr SExpr::makeList(std::vector<SExpr> Elems) {
  SExpr S;
  S.Kind = SK_List;
  S.Elems = std::move(Elems);
  return S;
}

bool SExpr::isForm(std::string_view Head) const {
  return isList() && !Elems.empty() && Elems[0].isSymbol() &&
         Elems[0].Text == Head;
}

const SExpr *SExpr::findForm(std::string_view Head) const {
  if (!isList())
    return nullptr;
  for (const SExpr &E : Elems)
    if (E.isForm(Head))
      return &E;
  return nullptr;
}

std::vector<const SExpr *> SExpr::findForms(std::string_view Head) const {
  std::vector<const SExpr *> Out;
  if (!isList())
    return Out;
  for (const SExpr &E : Elems)
    if (E.isForm(Head))
      Out.push_back(&E);
  return Out;
}

const SExpr *SExpr::property(std::string_view Head) const {
  const SExpr *Form = findForm(Head);
  if (!Form || Form->size() < 2)
    return nullptr;
  return &(*Form)[1];
}

void SExpr::printImpl(std::string &Out, bool Pretty, unsigned Indent) const {
  switch (Kind) {
  case SK_Symbol:
    Out += Text;
    return;
  case SK_String:
    Out += '"';
    Out += escapeString(Text);
    Out += '"';
    return;
  case SK_Int:
    Out += std::to_string(Int);
    return;
  case SK_List:
    break;
  }

  // Short lists of scalars render on one line; otherwise each element is
  // placed on its own indented line so manifests stay diff-friendly.
  bool AllScalar = true;
  for (const SExpr &E : Elems)
    if (E.isList())
      AllScalar = false;

  Out += '(';
  if (!Pretty || AllScalar) {
    for (size_t I = 0; I != Elems.size(); ++I) {
      if (I)
        Out += ' ';
      Elems[I].printImpl(Out, Pretty, Indent + 1);
    }
    Out += ')';
    return;
  }
  for (size_t I = 0; I != Elems.size(); ++I) {
    if (I) {
      Out += '\n';
      Out.append((Indent + 1) * 2, ' ');
    }
    Elems[I].printImpl(Out, Pretty, Indent + 1);
  }
  Out += ')';
}

std::string SExpr::print(bool Pretty) const {
  std::string Out;
  printImpl(Out, Pretty, 0);
  return Out;
}

namespace {

/// Recursive-descent reader over a byte buffer with ';' line comments.
class Reader {
public:
  explicit Reader(std::string_view Input) : In(Input) {}

  Expected<SExpr> readOne() {
    skipTrivia();
    if (atEnd())
      return Error::make(ErrorCode::EC_Parse,
                         "line %u: unexpected end of input", Line);
    return readNode();
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = In[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (!atEnd() && In[Pos] != '\n')
          ++Pos;
      } else {
        return;
      }
    }
  }

  bool atEnd() const { return Pos >= In.size(); }
  unsigned line() const { return Line; }

private:
  Expected<SExpr> readNode() {
    char C = In[Pos];
    if (C == '(')
      return readList();
    if (C == ')')
      return Error::make(ErrorCode::EC_Parse, "line %u: unmatched ')'", Line);
    if (C == '"')
      return readString();
    return readAtom();
  }

  Expected<SExpr> readList() {
    ++Pos; // consume '('
    SExpr List = SExpr::makeList();
    while (true) {
      skipTrivia();
      if (atEnd())
        return Error::make(ErrorCode::EC_Parse, "line %u: unterminated list",
                           Line);
      if (In[Pos] == ')') {
        ++Pos;
        return List;
      }
      Expected<SExpr> Child = readNode();
      if (!Child)
        return Child.takeError();
      List.appendChild(std::move(*Child));
    }
  }

  Expected<SExpr> readString() {
    unsigned StartLine = Line;
    ++Pos; // consume opening quote
    std::string Raw;
    while (true) {
      if (atEnd())
        return Error::make(ErrorCode::EC_Parse,
                           "line %u: unterminated string", StartLine);
      char C = In[Pos];
      if (C == '"') {
        ++Pos;
        break;
      }
      if (C == '\\') {
        if (Pos + 1 >= In.size())
          return Error::make(ErrorCode::EC_Parse,
                             "line %u: dangling escape", Line);
        Raw += C;
        Raw += In[Pos + 1];
        Pos += 2;
        continue;
      }
      if (C == '\n')
        ++Line;
      Raw += C;
      ++Pos;
    }
    std::string Value;
    if (!unescapeString(Raw, Value))
      return Error::make(ErrorCode::EC_Parse, "line %u: bad string escape",
                         StartLine);
    return SExpr::makeString(std::move(Value));
  }

  Expected<SExpr> readAtom() {
    size_t Start = Pos;
    while (!atEnd()) {
      char C = In[Pos];
      if (std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
          C == ')' || C == '"' || C == ';')
        break;
      ++Pos;
    }
    std::string_view Tok = In.substr(Start, Pos - Start);
    assert(!Tok.empty() && "atom reader called on delimiter");

    // Integers: optional minus followed by digits only.
    bool Neg = Tok[0] == '-';
    std::string_view Digits = Neg ? Tok.substr(1) : Tok;
    uint64_t Mag;
    if (!Digits.empty() && parseUInt(Digits, Mag)) {
      int64_t V = static_cast<int64_t>(Mag);
      return SExpr::makeInt(Neg ? -V : V);
    }
    return SExpr::makeSymbol(std::string(Tok));
  }

  std::string_view In;
  size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace

Expected<SExpr> dsu::parseSExpr(std::string_view Input) {
  Reader R(Input);
  Expected<SExpr> Node = R.readOne();
  if (!Node)
    return Node;
  R.skipTrivia();
  if (!R.atEnd())
    return Error::make(ErrorCode::EC_Parse,
                       "line %u: trailing content after expression",
                       R.line());
  return Node;
}

Expected<std::vector<SExpr>> dsu::parseSExprs(std::string_view Input) {
  Reader R(Input);
  std::vector<SExpr> Out;
  while (true) {
    R.skipTrivia();
    if (R.atEnd())
      return Out;
    Expected<SExpr> Node = R.readOne();
    if (!Node)
      return Node.takeError();
    Out.push_back(std::move(*Node));
  }
}
