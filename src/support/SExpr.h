//===- support/SExpr.h - S-expression reader/printer ----------*- C++ -*-===//
///
/// \file
/// A small s-expression data model with a parser and printer.  Patch
/// manifests, version manifests and VTAL module containers are all stored
/// in this syntax — the reproduction's analogue of the PLDI 2001 patch
/// file format.  Four node kinds: symbol atoms, quoted strings, signed
/// integers, and lists.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_SEXPR_H
#define DSU_SUPPORT_SEXPR_H

#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dsu {

/// One node of an s-expression tree.
class SExpr {
public:
  enum KindTy { SK_Symbol, SK_String, SK_Int, SK_List };

  static SExpr makeSymbol(std::string Name);
  static SExpr makeString(std::string Value);
  static SExpr makeInt(int64_t Value);
  static SExpr makeList(std::vector<SExpr> Elems = {});

  KindTy kind() const { return Kind; }
  bool isSymbol() const { return Kind == SK_Symbol; }
  bool isString() const { return Kind == SK_String; }
  bool isInt() const { return Kind == SK_Int; }
  bool isList() const { return Kind == SK_List; }

  /// Symbol or string payload (assert on other kinds).
  const std::string &text() const {
    assert((isSymbol() || isString()) && "not a textual node");
    return Text;
  }

  int64_t intValue() const {
    assert(isInt() && "not an integer node");
    return Int;
  }

  const std::vector<SExpr> &elems() const {
    assert(isList() && "not a list node");
    return Elems;
  }
  std::vector<SExpr> &elems() {
    assert(isList() && "not a list node");
    return Elems;
  }

  size_t size() const { return elems().size(); }
  const SExpr &operator[](size_t I) const {
    assert(I < elems().size() && "s-expression index out of range");
    return elems()[I];
  }

  /// True for a list whose first element is the symbol \p Head.
  bool isForm(std::string_view Head) const;

  /// For a list of forms, finds the first child form headed by \p Head.
  /// Returns nullptr when absent.
  const SExpr *findForm(std::string_view Head) const;

  /// Collects every child form headed by \p Head.
  std::vector<const SExpr *> findForms(std::string_view Head) const;

  /// Convenience accessor for (key value) property forms: returns the
  /// second element of the child form headed by \p Head, or nullptr.
  const SExpr *property(std::string_view Head) const;

  /// Renders the tree.  With \p Pretty, nested lists get indentation.
  std::string print(bool Pretty = false) const;

  void appendChild(SExpr Child) {
    assert(isList() && "appendChild on non-list");
    Elems.push_back(std::move(Child));
  }

private:
  void printImpl(std::string &Out, bool Pretty, unsigned Indent) const;

  KindTy Kind = SK_List;
  std::string Text;
  int64_t Int = 0;
  std::vector<SExpr> Elems;
};

/// Parses one s-expression from \p Input.  Trailing content (other than
/// whitespace and comments) is an error.
Expected<SExpr> parseSExpr(std::string_view Input);

/// Parses a sequence of top-level s-expressions.
Expected<std::vector<SExpr>> parseSExprs(std::string_view Input);

} // namespace dsu

#endif // DSU_SUPPORT_SEXPR_H
