//===- support/FaultInject.cpp --------------------------------*- C++ -*-===//

#include "support/FaultInject.h"

#include "support/StringUtil.h"

#include <atomic>

using namespace dsu;

namespace {
std::atomic<uint64_t> StageStallMs{0};
} // namespace

void faultinject::setStageStallMs(uint64_t Ms) {
  StageStallMs.store(Ms, std::memory_order_relaxed);
}

uint64_t faultinject::stageStallMs() {
  return StageStallMs.load(std::memory_order_relaxed);
}

std::string faultinject::trapPatchText() {
  return R"dsu(
(patch
  (id "FI-trap-on-call")
  (description "fault injection: map_url divides by zero on every call")
  (provides
    (fn (name "flashed.map_url")
        (type "fn(string) -> string")
        (vtal-fn "map_url")))
  (vtal-module
"module fi_trap
func map_url (target: string) -> string {
  push.i 1
  push.i 0
  div
  pop
  load target
  ret
}"))
)dsu";
}

std::string faultinject::error500PatchText() {
  return R"dsu(
(patch
  (id "FI-error-500")
  (description "fault injection: map_url turns every request into a 500")
  (provides
    (fn (name "flashed.map_url")
        (type "fn(string) -> string")
        (vtal-fn "map_url")))
  (vtal-module
"module fi_error500
func map_url (target: string) -> string {
  push.s \"!500 injected\"
  ret
}"))
)dsu";
}

std::string faultinject::fuelBurnPatchText(uint64_t Iterations) {
  // ~6 interpreted instructions per iteration; the default fuel budget
  // is 64M instructions, so anything beyond ~11M iterations exhausts
  // fuel (and traps) instead of merely running slowly.
  return formatString(R"dsu(
(patch
  (id "FI-fuel-burn-%llu")
  (description "fault injection: mime_type burns %llu loop iterations")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime_type")))
  (vtal-module
"module fi_fuel_burn
func mime_type (path: string) -> string {
  locals (n: int)
  push.i %llu
  store n
loop:
  load n
  push.i 0
  le
  brif done
  load n
  push.i 1
  sub
  store n
  br loop
done:
  push.s \"text/plain\"
  ret
}"))
)dsu",
                      (unsigned long long)Iterations,
                      (unsigned long long)Iterations,
                      (unsigned long long)Iterations);
}
