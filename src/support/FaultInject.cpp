//===- support/FaultInject.cpp --------------------------------*- C++ -*-===//

#include "support/FaultInject.h"

#include "support/Logging.h"
#include "support/StringUtil.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include <signal.h>
#include <unistd.h>

using namespace dsu;

namespace {
std::atomic<uint64_t> StageStallMs{0};

std::mutex CrashMu;
faultinject::CrashPoint ArmedPoint = faultinject::CrashPoint::None;
std::string ArmedPatchId; ///< empty = any patch
bool EnvRead = false;

const char *crashPointName(faultinject::CrashPoint P) {
  switch (P) {
  case faultinject::CrashPoint::AfterIntent:
    return "crash_after_intent";
  case faultinject::CrashPoint::AfterCommitPreSeal:
    return "crash_after_commit_pre_seal";
  case faultinject::CrashPoint::MidReplay:
    return "crash_mid_replay";
  case faultinject::CrashPoint::None:
    break;
  }
  return "none";
}

/// Parses "point[:patch-id]"; CrashMu held by the caller.
bool armLocked(const std::string &Spec) {
  std::string Point = Spec, Filter;
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos) {
    Point = Spec.substr(0, Colon);
    Filter = Spec.substr(Colon + 1);
  }
  faultinject::CrashPoint P;
  if (Point.empty() || Point == "none")
    P = faultinject::CrashPoint::None;
  else if (Point == "crash_after_intent")
    P = faultinject::CrashPoint::AfterIntent;
  else if (Point == "crash_after_commit_pre_seal")
    P = faultinject::CrashPoint::AfterCommitPreSeal;
  else if (Point == "crash_mid_replay")
    P = faultinject::CrashPoint::MidReplay;
  else
    return false;
  ArmedPoint = P;
  ArmedPatchId = P == faultinject::CrashPoint::None ? std::string() : Filter;
  return true;
}

/// Lazily folds DSU_FAULT_CRASH_POINT into the armed state, so a server
/// exec'd by a crash-recovery test is armed before it serves anything.
/// CrashMu held by the caller.
void readEnvLocked() {
  if (EnvRead)
    return;
  EnvRead = true;
  if (const char *Spec = std::getenv("DSU_FAULT_CRASH_POINT"))
    if (*Spec && !armLocked(Spec))
      DSU_LOG_WARN("DSU_FAULT_CRASH_POINT: unknown crash point '%s'", Spec);
}
} // namespace

bool faultinject::armCrashPoint(const std::string &Spec) {
  std::lock_guard<std::mutex> G(CrashMu);
  EnvRead = true; // an explicit arm overrides the environment
  return armLocked(Spec);
}

void faultinject::maybeCrash(CrashPoint P, const std::string &PatchId) {
  {
    std::lock_guard<std::mutex> G(CrashMu);
    readEnvLocked();
    if (ArmedPoint != P)
      return;
    if (!ArmedPatchId.empty() && ArmedPatchId != PatchId)
      return;
  }
  // A real crash, not an exit path: SIGKILL skips atexit handlers,
  // destructors and stdio flushes, exactly like the power-loss /
  // segfault cases the durable journal exists to survive.
  DSU_LOG_WARN("fault injection: killing process at %s (patch %s)",
               crashPointName(P), PatchId.c_str());
  ::kill(::getpid(), SIGKILL);
  for (;;)
    ::pause(); // unreachable; SIGKILL cannot be handled
}

void faultinject::setStageStallMs(uint64_t Ms) {
  StageStallMs.store(Ms, std::memory_order_relaxed);
}

uint64_t faultinject::stageStallMs() {
  return StageStallMs.load(std::memory_order_relaxed);
}

std::string faultinject::trapPatchText() {
  return R"dsu(
(patch
  (id "FI-trap-on-call")
  (description "fault injection: map_url divides by zero on every call")
  (provides
    (fn (name "flashed.map_url")
        (type "fn(string) -> string")
        (vtal-fn "map_url")))
  (vtal-module
"module fi_trap
func map_url (target: string) -> string {
  push.i 1
  push.i 0
  div
  pop
  load target
  ret
}"))
)dsu";
}

std::string faultinject::error500PatchText() {
  return R"dsu(
(patch
  (id "FI-error-500")
  (description "fault injection: map_url turns every request into a 500")
  (provides
    (fn (name "flashed.map_url")
        (type "fn(string) -> string")
        (vtal-fn "map_url")))
  (vtal-module
"module fi_error500
func map_url (target: string) -> string {
  push.s \"!500 injected\"
  ret
}"))
)dsu";
}

std::string faultinject::fuelBurnPatchText(uint64_t Iterations) {
  // ~6 interpreted instructions per iteration; the default fuel budget
  // is 64M instructions, so anything beyond ~11M iterations exhausts
  // fuel (and traps) instead of merely running slowly.
  return formatString(R"dsu(
(patch
  (id "FI-fuel-burn-%llu")
  (description "fault injection: mime_type burns %llu loop iterations")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime_type")))
  (vtal-module
"module fi_fuel_burn
func mime_type (path: string) -> string {
  locals (n: int)
  push.i %llu
  store n
loop:
  load n
  push.i 0
  le
  brif done
  load n
  push.i 1
  sub
  store n
  br loop
done:
  push.s \"text/plain\"
  ret
}"))
)dsu",
                      (unsigned long long)Iterations,
                      (unsigned long long)Iterations,
                      (unsigned long long)Iterations);
}
