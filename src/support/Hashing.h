//===- support/Hashing.h - Stable fingerprints ----------------*- C++ -*-===//
///
/// \file
/// 64-bit FNV-1a based fingerprints.  Type descriptors and code bodies are
/// fingerprinted so the dynamic linker can compare them cheaply across a
/// patch boundary, exactly where the PLDI 2001 system compares TAL type
/// annotations at link time.  Fingerprints are stable across processes so
/// they can be embedded in patch files.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_HASHING_H
#define DSU_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dsu {

/// A 64-bit stable content fingerprint.
class Fingerprint {
public:
  static constexpr uint64_t FNVOffset = 1469598103934665603ull;
  static constexpr uint64_t FNVPrime = 1099511628211ull;

  Fingerprint() = default;
  explicit Fingerprint(uint64_t Raw) : State(Raw) {}

  /// Mixes \p Size bytes at \p Data into the fingerprint.
  Fingerprint &addBytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Size; ++I) {
      State ^= P[I];
      State *= FNVPrime;
    }
    return *this;
  }

  Fingerprint &addString(std::string_view S) {
    addBytes(S.data(), S.size());
    // Mix in the length so that ("ab","c") != ("a","bc").
    return addU64(S.size());
  }

  Fingerprint &addU64(uint64_t V) {
    unsigned char Buf[8];
    std::memcpy(Buf, &V, 8);
    return addBytes(Buf, 8);
  }

  Fingerprint &addU32(uint32_t V) { return addU64(V); }

  uint64_t value() const { return State; }

  friend bool operator==(Fingerprint A, Fingerprint B) {
    return A.State == B.State;
  }
  friend bool operator!=(Fingerprint A, Fingerprint B) { return !(A == B); }

  /// Renders as 16 lowercase hex digits.
  std::string hex() const;

private:
  uint64_t State = FNVOffset;
};

/// Convenience: fingerprint of a single string.
inline uint64_t fingerprintString(std::string_view S) {
  return Fingerprint().addString(S).value();
}

} // namespace dsu

#endif // DSU_SUPPORT_HASHING_H
