//===- support/StringUtil.cpp ---------------------------------*- C++ -*-===//

#include "support/StringUtil.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

using namespace dsu;

std::vector<std::string> dsu::splitString(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(S.substr(Start));
      return Parts;
    }
    Parts.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view dsu::trim(std::string_view S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool dsu::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool dsu::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

std::string dsu::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Copy);
  va_end(Copy);
  return Out;
}

bool dsu::parseUInt(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX / 2 - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

std::string dsu::escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

bool dsu::unescapeString(std::string_view S, std::string &Out) {
  Out.clear();
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\') {
      Out += S[I];
      continue;
    }
    if (++I == S.size())
      return false;
    switch (S[I]) {
    case '"':
      Out += '"';
      break;
    case '\\':
      Out += '\\';
      break;
    case 'n':
      Out += '\n';
      break;
    case 't':
      Out += '\t';
      break;
    default:
      return false;
    }
  }
  return true;
}
