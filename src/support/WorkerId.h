//===- support/WorkerId.h - Thread-local serving worker id ----*- C++ -*-===//
///
/// \file
/// Identifies the serving worker a thread belongs to, for canary-gated
/// rollouts: a RollEntry published with a worker-id mask redirects
/// non-canary workers to the old binding until the rollout promotes.
/// The id is process-local (set by ReactorPool::workerMain) and -1 on
/// every thread that is not a pool worker; such threads always count as
/// control-group readers.
///
/// Exposed as accessor functions rather than an extern thread_local so
/// cross-TU TLS access stays within one translation unit (the same
/// idiom epoch/Epoch.cpp uses for the pinned-epoch TLS).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_WORKERID_H
#define DSU_SUPPORT_WORKERID_H

namespace dsu {

/// Tags the calling thread as serving worker \p Id (or -1 to clear).
void setCurrentWorkerId(int Id);

/// The calling thread's worker id, or -1 when it is not a pool worker.
int currentWorkerId();

} // namespace dsu

#endif // DSU_SUPPORT_WORKERID_H
