//===- support/Error.h - Recoverable error handling -----------*- C++ -*-===//
//
// Part of the dsu project: a C++ reproduction of "Dynamic Software
// Updating" (Hicks, Moore, Nettles; PLDI 2001).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error types in the spirit of llvm::Error and
/// llvm::Expected.  The library is built without exceptions: fallible
/// operations return Error (for actions) or Expected<T> (for values).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_ERROR_H
#define DSU_SUPPORT_ERROR_H

#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace dsu {

/// Classifies errors so callers can branch on broad categories without
/// string matching.  Categories mirror the update pipeline stages of the
/// PLDI 2001 system: a patch can fail to parse, fail verification, fail
/// type checking during dynamic linking, or fail state transformation.
enum class ErrorCode {
  EC_None = 0,
  EC_IO,             ///< file system / OS level failure
  EC_Parse,          ///< malformed manifest, type syntax, or VTAL text
  EC_Verify,         ///< VTAL bytecode failed verification
  EC_TypeMismatch,   ///< dynamic-link type check failed
  EC_Link,           ///< unresolved symbol or loader failure
  EC_Transform,      ///< state transformer failed or missing
  EC_Invalid,        ///< API misuse that is recoverable (bad argument)
  EC_Busy,           ///< thread-discipline violation; retry at a safe point
  EC_Unsupported,    ///< feature intentionally not supported
  EC_Timeout,        ///< watchdog deadline exceeded (staged too long)
  EC_Corrupt,        ///< persisted data failed a checksum / framing check
  EC_Analysis,       ///< patch analyzer found an error-severity defect
};

/// Returns a stable human-readable name for \p EC ("verify", "link", ...).
const char *errorCodeName(ErrorCode EC);

/// A success-or-failure result carrying a category and a message.
///
/// Unlike llvm::Error this class does not abort on unchecked drop; it is a
/// plain value type.  Test with operator bool(): true means failure, so the
/// idiom matches LLVM:
/// \code
///   if (Error E = doThing())
///     return E;
/// \endcode
class Error {
public:
  Error() = default;

  static Error success() { return Error(); }

  /// Creates a failure value with printf-style formatting.
  static Error make(ErrorCode Code, const char *Fmt, ...)
      __attribute__((format(printf, 2, 3)));

  /// True when this holds a failure.
  explicit operator bool() const { return Code != ErrorCode::EC_None; }

  ErrorCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// Renders "category: message" for diagnostics.
  std::string str() const;

  /// Returns a new error that prefixes \p Context to this error's message,
  /// preserving the category.  No-op on success values.
  Error withContext(const std::string &Context) const;

private:
  ErrorCode Code = ErrorCode::EC_None;
  std::string Msg;
};

/// Either a T or an Error.  Test with operator bool(): true means a value
/// is present (note: opposite sense to Error, matching llvm::Expected).
template <typename T> class Expected {
public:
  Expected(T Value) : HasValue(true) { new (&Storage.Value) T(std::move(Value)); }

  Expected(Error E) : HasValue(false) {
    assert(E && "cannot construct Expected from a success Error");
    new (&Storage.Err) Error(std::move(E));
  }

  Expected(Expected &&Other) noexcept : HasValue(Other.HasValue) {
    if (HasValue)
      new (&Storage.Value) T(std::move(Other.Storage.Value));
    else
      new (&Storage.Err) Error(std::move(Other.Storage.Err));
  }

  Expected(const Expected &Other) : HasValue(Other.HasValue) {
    if (HasValue)
      new (&Storage.Value) T(Other.Storage.Value);
    else
      new (&Storage.Err) Error(Other.Storage.Err);
  }

  Expected &operator=(Expected Other) {
    this->~Expected();
    new (this) Expected(std::move(Other));
    return *this;
  }

  ~Expected() {
    if (HasValue)
      Storage.Value.~T();
    else
      Storage.Err.~Error();
  }

  explicit operator bool() const { return HasValue; }

  T &get() {
    assert(HasValue && "accessing value of failed Expected");
    return Storage.Value;
  }
  const T &get() const {
    assert(HasValue && "accessing value of failed Expected");
    return Storage.Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Moves the error out.  Returns a success value if a value is present
  /// (mirrors llvm::Expected::takeError()).
  Error takeError() {
    if (HasValue)
      return Error::success();
    return std::move(Storage.Err);
  }

  const Error &error() const {
    assert(!HasValue && "accessing error of successful Expected");
    return Storage.Err;
  }

private:
  union StorageT {
    StorageT() {}
    ~StorageT() {}
    T Value;
    Error Err;
  } Storage;
  bool HasValue;
};

/// Unwraps an Expected that the caller knows cannot fail; aborts with the
/// error message otherwise (mirrors llvm::cantFail).
template <typename T> T cantFail(Expected<T> ValOrErr, const char *What = "") {
  if (!ValOrErr) {
    std::fprintf(stderr, "cantFail(%s): %s\n", What,
                 ValOrErr.error().str().c_str());
    std::abort();
  }
  return std::move(ValOrErr.get());
}

/// Asserts that \p E is a success value; aborts with the message otherwise.
inline void cantFail(Error E, const char *What = "") {
  if (E) {
    std::fprintf(stderr, "cantFail(%s): %s\n", What, E.str().c_str());
    std::abort();
  }
}

} // namespace dsu

#endif // DSU_SUPPORT_ERROR_H
