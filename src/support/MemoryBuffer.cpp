//===- support/MemoryBuffer.cpp -------------------------------*- C++ -*-===//

#include "support/MemoryBuffer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>

using namespace dsu;

Expected<std::string> dsu::readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error::make(ErrorCode::EC_IO, "cannot open '%s': %s", Path.c_str(),
                       std::strerror(errno));
  std::string Out;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return Error::make(ErrorCode::EC_IO, "read error on '%s'", Path.c_str());
  return Out;
}

Error dsu::writeFile(const std::string &Path, const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Error::make(ErrorCode::EC_IO, "cannot create '%s': %s",
                       Path.c_str(), std::strerror(errno));
  size_t N = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool Bad = N != Contents.size();
  if (std::fclose(F) != 0)
    Bad = true;
  if (Bad)
    return Error::make(ErrorCode::EC_IO, "write error on '%s'", Path.c_str());
  return Error::success();
}

Expected<uint64_t> dsu::fileSize(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return Error::make(ErrorCode::EC_IO, "cannot stat '%s': %s", Path.c_str(),
                       std::strerror(errno));
  return static_cast<uint64_t>(St.st_size);
}

bool dsu::fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}
