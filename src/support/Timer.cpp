//===- support/Timer.cpp --------------------------------------*- C++ -*-===//

#include "support/Timer.h"

#include <algorithm>

using namespace dsu;

double RunningStat::percentile(double P) const {
  if (Samples.empty())
    return 0.0;
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  double Rank = (P / 100.0) * (Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}
