//===- support/Histogram.h - Lock-free latency histogram ------*- C++ -*-===//
///
/// \file
/// A fixed-bucket microsecond histogram with relaxed-atomic counters, in
/// the style of net/WorkerStats.h's pause histogram: any thread records,
/// any thread reads, and a metrics scrape is allowed to be a
/// torn-across-counters snapshot.  Used for the stage->commit latency of
/// dynamic updates (`dsu_stage_to_commit_us` in /admin/metrics).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_SUPPORT_HISTOGRAM_H
#define DSU_SUPPORT_HISTOGRAM_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dsu {

/// Microsecond histogram; the final bucket is +Inf.
struct LatencyHistogram {
  static constexpr size_t NumBuckets = 8;
  static constexpr uint64_t BucketUs[NumBuckets] = {
      100, 500, 1000, 5000, 10000, 50000, 250000, UINT64_MAX};

  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> TotalUs{0};
  std::atomic<uint64_t> MaxUs{0};

  void note(uint64_t Us) {
    for (size_t I = 0; I != NumBuckets; ++I)
      if (Us <= BucketUs[I]) {
        Buckets[I].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    Count.fetch_add(1, std::memory_order_relaxed);
    TotalUs.fetch_add(Us, std::memory_order_relaxed);
    uint64_t Prev = MaxUs.load(std::memory_order_relaxed);
    while (Us > Prev &&
           !MaxUs.compare_exchange_weak(Prev, Us, std::memory_order_relaxed))
      ;
  }
};

} // namespace dsu

#endif // DSU_SUPPORT_HISTOGRAM_H
