//===- support/WorkerId.cpp - Thread-local serving worker id --------------===//

#include "support/WorkerId.h"

namespace {
thread_local int TLWorkerId = -1;
} // namespace

namespace dsu {

void setCurrentWorkerId(int Id) { TLWorkerId = Id; }

int currentWorkerId() { return TLWorkerId; }

} // namespace dsu
