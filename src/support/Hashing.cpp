//===- support/Hashing.cpp ------------------------------------*- C++ -*-===//

#include "support/Hashing.h"

#include <cstdio>

using namespace dsu;

std::string Fingerprint::hex() const {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(State));
  return std::string(Buf, 16);
}
