//===- core/Runtime.cpp ---------------------------------------*- C++ -*-===//

#include "core/Runtime.h"

#include "persist/Journal.h"
#include "runtime/UpdateController.h"
#include "support/FaultInject.h"
#include "support/Logging.h"
#include "support/StringUtil.h"
#include "support/Timer.h"
#include "trace/Trace.h"
#include "vtal/Verifier.h"

#include <algorithm>
#include <thread>

using namespace dsu;

// --- StagedUpdate (handle methods need the runtime) ----------------------

Error StagedUpdate::commit() {
  if (!valid())
    return Error::make(ErrorCode::EC_Invalid,
                       "commit of an empty StagedUpdate handle");
  return RT->commitStagedTx(Tx);
}

Error StagedUpdate::abort() {
  if (!valid())
    return Error::make(ErrorCode::EC_Invalid,
                       "abort of an empty StagedUpdate handle");
  return RT->abortStagedTx(Tx);
}

// --- Runtime lifecycle ---------------------------------------------------

Runtime::Runtime() : TheLinker(Updateables, Exports) {}

Runtime::~Runtime() {
  // Stop the staging worker before any subsystem it touches goes away.
  std::lock_guard<std::mutex> G(CtlLock);
  Ctl.reset();
}

UpdateController &Runtime::controller() {
  std::lock_guard<std::mutex> G(CtlLock);
  if (!Ctl)
    Ctl = std::make_unique<UpdateController>(*this);
  return *Ctl;
}

Error Runtime::exportHost(const std::string &Name, const Type *Ty,
                          vtal::HostFn Host, void *Addr) {
  SymbolDef Def;
  Def.Name = Name;
  Def.Ty = Ty;
  Def.Host = std::move(Host);
  Def.Addr = Addr;
  return Exports.addExport(std::move(Def));
}

// --- Transaction plumbing ------------------------------------------------

std::shared_ptr<UpdateTransaction>
Runtime::makeTransaction(std::string PatchId) {
  auto Tx = std::shared_ptr<UpdateTransaction>(
      new UpdateTransaction(NextTxId.fetch_add(1)));
  // The watchdog deadline covers the whole staging pipeline — queueing
  // in the controller included — so a pathological patch cannot
  // head-of-line-block the FIFO update queue indefinitely.
  if (uint64_t Ms = StagingDeadlineMs.load(std::memory_order_relaxed))
    Tx->StageDeadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
  std::lock_guard<std::mutex> G(Tx->RecLock);
  Tx->Rec.TxId = Tx->id();
  Tx->Rec.PatchId = std::move(PatchId);
  return Tx;
}

void Runtime::finalize(UpdateTransaction &Tx, UpdatePhase Phase,
                       const Error *E) {
  // Some callers (abort paths) reach here without a scope guard; tag
  // the terminal marker and the journal-seal span with the tx id.
  trace::ScopedUpdateId TraceId(Tx.id());
  trace::Recorder::instance().instant("update", updatePhaseName(Phase));
  Tx.Phase.store(Phase, std::memory_order_release);
  UpdateRecord RecCopy;
  {
    std::lock_guard<std::mutex> G(Tx.RecLock);
    Tx.Rec.Phase = updatePhaseName(Phase);
    Tx.Rec.Succeeded = Phase == UpdatePhase::Committed;
    if (E)
      Tx.Rec.FailureReason = E->str();
    RecCopy = Tx.Rec;
  }
  // Seal the transaction's durable-journal Intent with the terminal
  // outcome.  This is the single point every terminal phase funnels
  // through, so an Intent can only stay unsealed if the process dies —
  // which is exactly what the next boot's crash accounting keys on.
  // The armed crash point sits *between* the commit landing and the
  // Committed seal reaching disk: the widest window of the two-phase
  // protocol, where recovery must come up on the last-good chain.
  if (Tx.JournalSeq != 0) {
    if (persist::UpdateJournal *J = Journal.load(std::memory_order_acquire)) {
      if (Phase == UpdatePhase::Committed)
        faultinject::maybeCrash(faultinject::CrashPoint::AfterCommitPreSeal,
                                RecCopy.PatchId);
      persist::SealOutcome Outcome = Phase == UpdatePhase::Committed
                                         ? persist::SealOutcome::Committed
                                         : persist::SealOutcome::RolledBack;
      if (Error SE = J->appendSeal(Tx.JournalSeq, Outcome, RecCopy.CommitMode,
                                   RecCopy.FailureReason))
        DSU_LOG_WARN("journal: sealing intent %llu failed: %s",
                     static_cast<unsigned long long>(Tx.JournalSeq),
                     SE.str().c_str());
    }
  }
  {
    std::lock_guard<std::mutex> G(LogLock);
    Log.push_back(std::move(RecCopy));
  }
  if (Phase == UpdatePhase::Committed)
    Applied.fetch_add(1);
  // A terminal front transaction becomes collectable at the next update
  // point (and a Ready one committable).
  Queue.refresh();
}

// --- Staging (any thread) ------------------------------------------------

namespace {

/// The union of the bumps a plan's replacements demand and the bumps a
/// patch declares via new type versions (used identically at stage time
/// and when a stale plan revalidates at commit).
std::vector<VersionBump>
unionBumps(const std::vector<VersionBump> &Required,
           const std::vector<VersionBump> &Declared) {
  std::vector<VersionBump> All = Required;
  for (const VersionBump &B : Declared) {
    bool Known = false;
    for (const VersionBump &K : All)
      Known |= K == B;
    if (!Known)
      All.push_back(B);
  }
  return All;
}

bool sameBumpSet(const std::vector<VersionBump> &A,
                 const std::vector<VersionBump> &B) {
  if (A.size() != B.size())
    return false;
  for (const VersionBump &X : A) {
    bool Found = false;
    for (const VersionBump &Y : B)
      Found |= X == Y;
    if (!Found)
      return false;
  }
  return true;
}

} // namespace

Error Runtime::stageInto(UpdateTransaction &Tx) {
  // Every event below lands in this update's span tree; the pipeline
  // span also covers the wait for the stage lock.
  trace::ScopedUpdateId TraceId(Tx.id());
  TRACE_SPAN("stage", "pipeline");
  // One stager at a time: preparation reads the registries the update
  // thread writes at commit, and patch type/transformer definitions must
  // land in submission order.  Commit never takes this lock, so staging
  // cannot delay an update point.
  std::lock_guard<std::mutex> StageG(StageLock);
  Timer Total;
  Patch &P = Tx.P;
  {
    std::lock_guard<std::mutex> G(Tx.RecLock);
    Tx.Rec.PatchId = P.Id;
    Tx.Rec.CodeBytes = P.CodeBytes;
  }
  std::string PatchId = P.Id;

  auto Fail = [&](Error E) {
    {
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.StageMs = Total.elapsedMs();
      Tx.Rec.TotalMs = Tx.Rec.StageMs;
    }
    finalize(Tx, UpdatePhase::StageFailed, &E);
    return E;
  };

  // Staging watchdog: cooperative deadline checks between pipeline
  // stages.  A transaction that exceeds its deadline is finalized as
  // TimedOut — a terminal, collectable phase — instead of holding the
  // head of the FIFO queue while every later update waits behind it.
  auto Overdue = [&] {
    return Tx.StageDeadline.time_since_epoch().count() != 0 &&
           std::chrono::steady_clock::now() > Tx.StageDeadline;
  };
  auto FailTimedOut = [&](const char *Stage) {
    Error E = Error::make(
        ErrorCode::EC_Timeout,
        "tx %llu (%s) staging exceeded its watchdog deadline during %s; "
        "aborted so it cannot head-of-line-block the update queue",
        static_cast<unsigned long long>(Tx.id()), PatchId.c_str(), Stage);
    {
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.StageMs = Total.elapsedMs();
      Tx.Rec.TotalMs = Tx.Rec.StageMs;
    }
    finalize(Tx, UpdatePhase::TimedOut, &E);
    return E;
  };
  if (Overdue())
    return FailTimedOut("queueing");

  // Stage 1: verification.  VTAL-backed patches are machine-checked;
  // native patches arrive as trusted-compiler output (the paper's TAL
  // verification corresponds to the VTAL path).
  {
    TRACE_SPAN("stage", "verify");
    Timer T;
    if (P.VtalMod) {
      vtal::VerifyStats VS;
      if (Error E = vtal::verifyModule(*P.VtalMod, &VS))
        return Fail(E.withContext("patch " + PatchId));
      VerifyFunctionsTotal.fetch_add(VS.FunctionsChecked,
                                     std::memory_order_relaxed);
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.InstructionsVerified = VS.InstructionsChecked;
    }
    trace::notePhase(trace::Phase::Verify, T.elapsedNs() / 1000);
    std::lock_guard<std::mutex> G(Tx.RecLock);
    Tx.Rec.VerifyMs = T.elapsedMs();
  }

  // Fault injection: an operator-armed stall between verification and
  // linking models a wedged pipeline stage.  Sleep in small slices so
  // the watchdog deadline above is still honoured mid-stall.
  for (uint64_t Left = faultinject::stageStallMs(); Left != 0;) {
    uint64_t Slice = std::min<uint64_t>(Left, 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(Slice));
    Left -= Slice;
    if (Overdue())
      break;
  }
  if (Overdue())
    return FailTimedOut("verification");

  // Stage 2: introduce the patch's new named types and transformers.
  // Both registries are append-only, so this mutates nothing the running
  // program observes; an aborted transaction leaves its (inert)
  // definitions behind.  Computing the declared bumps needs the
  // pre-patch latest versions.
  for (const PatchTypeDef &TD : P.NewTypes) {
    uint32_t Prev = Types.latestVersion(TD.Name.Name);
    if (Prev > 0 && Prev < TD.Name.Version)
      Tx.DeclaredBumps.push_back(
          VersionBump{VersionedName{TD.Name.Name, Prev}, TD.Name});
    if (Error E = Types.defineNamed(TD.Name, TD.Repr))
      return Fail(E.withContext("patch " + PatchId));
  }
  for (PatchTransformer &X : P.Transformers)
    Transformers.add(X.Bump, X.Fn);

  // Stage 3: link preparation (typed import resolution + replacement
  // compatibility).  No program mutation.  The commit generation is
  // read *before* preparing, so a commit racing this prepare can only
  // make the plan look stale — never silently valid.
  Tx.PreparedAtGeneration =
      CommitGeneration.load(std::memory_order_acquire);
  {
    Timer T;
    Expected<LinkPlan> PlanOrErr = TheLinker.prepare(std::move(P.Unit));
    trace::notePhase(trace::Phase::LinkPrepare, T.elapsedNs() / 1000);
    {
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.PrepareMs = T.elapsedMs();
    }
    if (!PlanOrErr)
      return Fail(PlanOrErr.takeError());
    Tx.Plan = std::move(*PlanOrErr);
  }
  if (Overdue())
    return FailTimedOut("link preparation");

  // Union of bumps demanded by signature changes and bumps declared via
  // new type versions.
  Tx.Bumps = unionBumps(Tx.Plan.RequiredBumps, Tx.DeclaredBumps);

  // Stage 4: the state-transform build.  Optimistic: new payloads are
  // computed here, off the update thread, from snapshots whose mutation
  // generations commit will validate.  A missing or failing transformer
  // rejects the transaction now, with all state untouched.
  {
    TRACE_SPAN("stage", "state.build");
    Timer T;
    Expected<StagedStateSwap> Swap =
        stageStateTransform(Types, State, Transformers, Tx.Bumps);
    trace::notePhase(trace::Phase::StateBuild, T.elapsedNs() / 1000);
    {
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.BuildMs = T.elapsedMs();
    }
    if (!Swap)
      return Fail(Swap.takeError().withContext("patch " + PatchId));
    Tx.Swap = std::move(*Swap);
  }
  if (Overdue())
    return FailTimedOut("the state-transform build");

  {
    std::lock_guard<std::mutex> G(Tx.RecLock);
    Tx.Rec.StageMs = Total.elapsedMs();
    Tx.Rec.TotalMs = Tx.Rec.StageMs;
  }

  // Classify for the commit path: a patch that migrates no state, bumps
  // no types and ships no transformers is the paper's cheap common case
  // — a pure code swap — and commits as a *rolling* update, per-worker
  // at each worker's own quiescent point, with no cross-worker barrier.
  bool CodeOnly =
      Tx.Bumps.empty() && Tx.Swap.empty() && Tx.P.Transformers.empty();
  Tx.CodeOnly.store(CodeOnly, std::memory_order_release);

  // Cross-check the analyzer's code-only prediction against the actual
  // classification: a mispredicted barrier stall (or a patch the
  // analyzer thought needed the barrier but committed rolling) is an
  // analyzer soundness signal, reported as a finding rather than left
  // as a surprise.
  {
    std::lock_guard<std::mutex> G(Tx.RecLock);
    if (Tx.Rec.AnalysisRan && Tx.Rec.CodeOnlyPredicted != CodeOnly) {
      analysis::Finding F;
      F.Sev = analysis::Severity::Warning;
      F.Code = "classification-mismatch";
      F.Message = formatString(
          "analyzer predicted a %s commit but staging classified the patch "
          "as %s",
          Tx.Rec.CodeOnlyPredicted ? "code-only (rolling)"
                                   : "state-migrating (barrier)",
          CodeOnly ? "code-only (rolling)" : "state-migrating (barrier)");
      Tx.Rec.AnalysisFindings.push_back(std::move(F));
      AnalysisFindingsTotal.fetch_add(1, std::memory_order_relaxed);
      DSU_LOG_WARN("tx %llu (%s): analyzer classification mismatch "
                   "(predicted %s, actual %s)",
                   static_cast<unsigned long long>(Tx.id()), PatchId.c_str(),
                   Tx.Rec.CodeOnlyPredicted ? "code-only" : "state-migrating",
                   CodeOnly ? "code-only" : "state-migrating");
    }
  }
  Tx.ReadyAt = std::chrono::steady_clock::now();

  // Publish-then-check handshake with abortStagedTx (both sides
  // seq_cst, Dekker-style): either that store of Ready is visible to an
  // aborter's phase load, or the abort flag is visible here — an abort
  // requested during staging can never be missed by both sides.
  Tx.Phase.store(UpdatePhase::Ready, std::memory_order_seq_cst);
  if (Tx.AbortRequested.load(std::memory_order_seq_cst)) {
    UpdatePhase Expect = UpdatePhase::Ready;
    if (Tx.Phase.compare_exchange_strong(Expect, UpdatePhase::Aborted,
                                         std::memory_order_acq_rel)) {
      Tx.Plan = LinkPlan();
      Tx.Swap = StagedStateSwap();
      finalize(Tx, UpdatePhase::Aborted, nullptr);
      return Error::success();
    }
  }
  Queue.refresh();
  DSU_LOG_DEBUG("tx %llu (%s) staged and ready",
                static_cast<unsigned long long>(Tx.id()), PatchId.c_str());
  return Error::success();
}

Expected<StagedUpdate> Runtime::stage(Patch P) {
  std::shared_ptr<UpdateTransaction> Tx = makeTransaction(P.Id);
  Tx->P = std::move(P);
  if (Error E = stageInto(*Tx))
    return E;
  return StagedUpdate(this, std::move(Tx));
}

Expected<StagedUpdate> Runtime::stageJournaled(Patch P, uint64_t JournalSeq) {
  std::shared_ptr<UpdateTransaction> Tx = makeTransaction(P.Id);
  // The Intent sequence must be on the transaction before stageInto
  // runs: a staging failure finalizes inside the pipeline, and that
  // finalize must already see the seal target.
  Tx->JournalSeq = JournalSeq;
  Tx->P = std::move(P);
  if (Error E = stageInto(*Tx))
    return E;
  return StagedUpdate(this, std::move(Tx));
}

Error Runtime::enqueue(const StagedUpdate &U) {
  if (!U.valid())
    return Error::make(ErrorCode::EC_Invalid,
                       "enqueue of an empty StagedUpdate handle");
  if (!Queue.enqueue(U.Tx))
    return Error::make(ErrorCode::EC_Invalid,
                       "transaction %llu is already queued",
                       static_cast<unsigned long long>(U.Tx->id()));
  return Error::success();
}

void Runtime::requestUpdate(Patch P) {
  std::shared_ptr<UpdateTransaction> Tx = makeTransaction(P.Id);
  Tx->P = std::move(P);
  // Enqueue before staging: queue position — and therefore commit order
  // — is fixed by submission order, not by how long staging takes.
  Queue.enqueue(Tx);
  (void)stageInto(*Tx); // a failure is recorded in the update log
}

Error Runtime::requestUpdateFromFile(const std::string &Path) {
  Expected<Patch> P = loadPatchFile(Types, Exports, Path);
  if (!P)
    return P.takeError();
  requestUpdate(std::move(*P));
  return Error::success();
}

// --- Commit (the update thread) ------------------------------------------


Error Runtime::commitStagedTx(const std::shared_ptr<UpdateTransaction> &TxP) {
  std::lock_guard<std::mutex> G(CommitLock);
  return commitStagedTxLocked(TxP, /*Rolling=*/false, nullptr);
}

Error Runtime::commitStagedTxLocked(
    const std::shared_ptr<UpdateTransaction> &TxP, bool Rolling,
    bool *NeedsBarrier, uint64_t CanaryMask,
    std::vector<RollEntry *> *GatedOut) {
  UpdateTransaction &Tx = *TxP;
  if (ActivationTracker::currentDepth() != 0)
    return Error::make(
        ErrorCode::EC_Busy,
        "commit of tx %llu refused: single-updater discipline violated "
        "(%u updateable frame(s) active on this thread); retry at a "
        "quiescent update point",
        static_cast<unsigned long long>(Tx.id()),
        ActivationTracker::currentDepth());

  UpdatePhase Expect = UpdatePhase::Ready;
  if (!Tx.Phase.compare_exchange_strong(Expect, UpdatePhase::Committing,
                                        std::memory_order_acq_rel))
    return Error::make(ErrorCode::EC_Invalid,
                       "transaction %llu is %s, not ready to commit",
                       static_cast<unsigned long long>(Tx.id()),
                       updatePhaseName(Expect));

  std::string PatchId = Tx.patchId();
  trace::ScopedUpdateId TraceId(Tx.id());
  trace::Span CommitSp("commit",
                       CanaryMask != UINT64_MAX ? "canary"
                       : Rolling                ? "rolling"
                                                : "barrier");
  Timer CommitTimer;
  auto FailCommit = [&](Error E) {
    {
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.CommitMs = CommitTimer.elapsedMs();
      Tx.Rec.TotalMs = Tx.Rec.StageMs + Tx.Rec.CommitMs;
    }
    finalize(Tx, UpdatePhase::CommitFailed, &E);
    return E;
  };

  // Revalidate when any other transaction committed since this one was
  // prepared: its replacement decisions or required bumps may be stale.
  // Nothing has been mutated yet, so a revalidation failure rejects the
  // transaction with the program untouched.
  if (Tx.PreparedAtGeneration !=
      CommitGeneration.load(std::memory_order_acquire)) {
    Tx.Plan.restoreCode(); // put the prepared bindings back in the unit
    Expected<LinkPlan> Fresh = TheLinker.prepare(std::move(Tx.Plan.Unit));
    if (!Fresh)
      return FailCommit(
          Fresh.takeError().withContext("revalidating staged plan"));
    Tx.Plan = std::move(*Fresh);
    std::vector<VersionBump> AllBumps =
        unionBumps(Tx.Plan.RequiredBumps, Tx.DeclaredBumps);
    if (!sameBumpSet(AllBumps, Tx.Bumps)) {
      // The required migrations changed; rebuild the swap from live
      // state (we are on the mutator thread, so it cannot go stale
      // before the commit below).
      Tx.Bumps = std::move(AllBumps);
      Expected<StagedStateSwap> Rebuilt =
          stageStateTransform(Types, State, Transformers, Tx.Bumps);
      if (!Rebuilt)
        return FailCommit(
            Rebuilt.takeError().withContext("patch " + PatchId));
      Tx.Swap = std::move(*Rebuilt);
      std::lock_guard<std::mutex> G(Tx.RecLock);
      Tx.Rec.StateRebuilt = true;
    }
  }

  // A rolling commit must still be code-only after revalidation; if a
  // commit that landed in between changed the required bumps, demote the
  // transaction back to Ready and let the caller arm the barrier —
  // nothing has been mutated yet.
  if (Rolling && (!Tx.Bumps.empty() || !Tx.Swap.empty())) {
    Tx.CodeOnly.store(false, std::memory_order_release);
    Tx.Phase.store(UpdatePhase::Ready, std::memory_order_release);
    if (NeedsBarrier)
      *NeedsBarrier = true;
    return Error::make(ErrorCode::EC_Busy,
                       "tx %llu reclassified at commit: revalidation "
                       "requires state migration, deferring to the "
                       "cross-worker barrier",
                       static_cast<unsigned long long>(Tx.id()));
  }

  // State commit: generation-validated payload swaps, or a rebuild from
  // live state when a cell mutated since staging.  Two-phase inside —
  // a failure leaves every cell untouched.  One timer, cumulative marks:
  // the pause window itself should not be spent reading clocks.
  TransformStats TS;
  StateSwapUndo Undo;
  bool Rebuilt = false;
  {
    Error E = commitStagedState(Types, State, Transformers,
                                std::move(Tx.Swap), &TS, &Rebuilt, &Undo);
    if (E) {
      // Undo holds whatever swapAll managed before failing; reverting
      // it keeps the all-or-nothing contract even on this (today
      // unreachable) mid-swap path.
      revertStateSwap(State, std::move(Undo));
      return FailCommit(E.withContext("patch " + PatchId));
    }
  }
  double StateMark = CommitTimer.elapsedMs();

  // Binding swings.  All-or-nothing inside the linker; if it still
  // fails, the state swap above is reverted so the whole transaction is
  // a no-op.
  size_t Provides = Tx.Plan.Unit.Provides.size();
  {
    Error E =
        TheLinker.commit(std::move(Tx.Plan), Rolling, CanaryMask, GatedOut);
    if (E) {
      revertStateSwap(State, std::move(Undo));
      return FailCommit(std::move(E));
    }
  }
  CommitGeneration.fetch_add(1, std::memory_order_release);
  if (Rolling) {
    RollingCommits.fetch_add(1, std::memory_order_relaxed);
    LastRollingCommitUs.store(trace::Recorder::instance().nowUs(),
                              std::memory_order_release);
    LastRollingTxId.store(Tx.id(), std::memory_order_release);
  }

  double CommitMs = CommitTimer.elapsedMs(); // measurement ends here
  trace::notePhase(trace::Phase::Commit,
                   static_cast<uint64_t>(CommitMs * 1000.0));
  uint64_t StageToCommitUs = 0;
  if (Tx.ReadyAt.time_since_epoch().count() != 0) {
    StageToCommitUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Tx.ReadyAt)
            .count());
    StageToCommit.note(StageToCommitUs);
    trace::notePhase(trace::Phase::QueueWait, StageToCommitUs);
    // The queue wait is a real interval whose endpoints live on two
    // threads (staging finished -> this commit landed); record it as a
    // complete span ending now so the tree shows where the time went.
    trace::Recorder &R = trace::Recorder::instance();
    uint64_t Now = R.nowUs();
    R.complete("queue", "wait",
               Now > StageToCommitUs ? Now - StageToCommitUs : 0,
               StageToCommitUs);
  }
  UpdateRecord Done;
  {
    std::lock_guard<std::mutex> G(Tx.RecLock);
    Tx.Rec.CellsMigrated = TS.CellsMigrated;
    Tx.Rec.StateRebuilt |= Rebuilt;
    Tx.Rec.ProvidesLinked = Provides;
    Tx.Rec.LinkMs = Tx.Rec.PrepareMs + (CommitMs - StateMark);
    Tx.Rec.CommitMs = CommitMs;
    Tx.Rec.TotalMs = Tx.Rec.StageMs + CommitMs;
    Tx.Rec.TransformMs = Tx.Rec.BuildMs + StateMark;
    Tx.Rec.CommitMode = CanaryMask != UINT64_MAX ? "canary"
                        : Rolling                ? "rolling"
                                                 : "barrier";
    Tx.Rec.StageToCommitUs = StageToCommitUs;
    Done = Tx.Rec;
  }
  finalize(Tx, UpdatePhase::Committed, nullptr);
  DSU_LOG_INFO("patch %s committed (%s): staged %.3fms (verify %.3f, "
               "prepare %.3f, build %.3f) + pause %.3fms%s",
               PatchId.c_str(), Rolling ? "rolling" : "barrier",
               Done.StageMs, Done.VerifyMs, Done.PrepareMs, Done.BuildMs,
               Done.CommitMs,
               Done.StateRebuilt ? " [state rebuilt at commit]" : "");
  return Error::success();
}

// --- Rolling (barrier-free) commits of code-only patches -----------------

Runtime::PendingCommit Runtime::pendingCommitMode() const {
  // While a canary rollout is in flight the rollout controller owns the
  // commit pipeline: workers must not commit (or collect) anything, or
  // a stacked commit would corrupt the rollback history the controller
  // relies on for auto-revert.
  if (RolloutActive.load(std::memory_order_acquire))
    return PendingCommit::None;
  std::shared_ptr<UpdateTransaction> Front = Queue.front();
  if (!Front)
    return PendingCommit::None;
  if (Front->HeldForRollout.load(std::memory_order_acquire))
    return PendingCommit::None;
  UpdatePhase P = Front->phase();
  if (P == UpdatePhase::Staging || P == UpdatePhase::Committing)
    return PendingCommit::None;
  if (P != UpdatePhase::Ready)
    return PendingCommit::Rolling; // terminal: collection needs no barrier
  return Front->CodeOnly.load(std::memory_order_acquire)
             ? PendingCommit::Rolling
             : PendingCommit::Barrier;
}

unsigned Runtime::commitRollingFront() {
  if (RolloutActive.load(std::memory_order_acquire))
    return 0; // a canary rollout owns the commit pipeline
  std::lock_guard<std::mutex> G(CommitLock);
  if (ActivationTracker::currentDepth() != 0)
    return 0; // not a quiescent point on this thread; try again later
  flushRetiredBindingsLocked();
  unsigned Committed = 0;
  while (true) {
    std::shared_ptr<UpdateTransaction> Tx =
        Queue.popActionableIf([](const UpdateTransaction &T) {
          if (T.HeldForRollout.load(std::memory_order_acquire))
            return false; // the rollout controller commits this one
          return T.phase() != UpdatePhase::Ready ||
                 T.CodeOnly.load(std::memory_order_acquire);
        });
    if (!Tx)
      break;
    if (Tx->phase() != UpdatePhase::Ready)
      continue; // terminal (failed/aborted): already logged, collect
    bool NeedsBarrier = false;
    Error E = commitStagedTxLocked(Tx, /*Rolling=*/true, &NeedsBarrier);
    if (NeedsBarrier) {
      // Reclassified at revalidation: back to the front, in its
      // original commit-order position, for the barrier to take.
      Queue.pushFront(std::move(Tx));
      break;
    }
    if (E)
      DSU_LOG_WARN("rolling update rejected: tx %llu (%s): %s",
                   static_cast<unsigned long long>(Tx->id()),
                   Tx->patchId().c_str(), E.str().c_str());
    else
      ++Committed;
  }
  return Committed;
}

void Runtime::flushRetiredBindings() {
  std::lock_guard<std::mutex> G(CommitLock);
  flushRetiredBindingsLocked();
}

void Runtime::maybeFlushRetiredBindings() {
  // Idle-time roll-chain hygiene: without this, a graced redirection
  // chain only drains when the *next* commit happens to flush it —
  // i.e. never, on a quiet system.  Relaxed fast-out so the common
  // no-chains case costs one load, and try_lock so an idle worker never
  // blocks behind a commit in progress.
  if (!Updateables.hasLiveRolls())
    return;
  std::unique_lock<std::mutex> G(CommitLock, std::try_to_lock);
  if (!G.owns_lock())
    return;
  if (ActivationTracker::currentDepth() != 0)
    return;
  flushRetiredBindingsLocked();
}

Error Runtime::commitCanaryFront(const std::shared_ptr<UpdateTransaction> &Tx,
                                 uint64_t CanaryMask,
                                 std::vector<RollEntry *> &GatedOut,
                                 bool *NeedsBarrier) {
  std::lock_guard<std::mutex> G(CommitLock);
  return commitStagedTxLocked(Tx, /*Rolling=*/true, NeedsBarrier, CanaryMask,
                              &GatedOut);
}

void Runtime::annotateRollout(const std::shared_ptr<UpdateTransaction> &Tx,
                              const std::string &Verdict,
                              const std::string &Reason) {
  // The rollout thread seals the verdict here; tag the journal-seal
  // span (inside appendSeal) with the update id.
  trace::ScopedUpdateId TraceId(Tx->id());
  {
    std::lock_guard<std::mutex> G(Tx->RecLock);
    Tx->Rec.Rollout = Verdict;
    if (!Reason.empty())
      Tx->Rec.FailureReason = Reason;
  }
  // The canary verdict supersedes the commit-time seal: a rollout first
  // commits (sealed Committed via finalize), then the health gates
  // decide.  A rolled-back canary gets a later RolledBack seal for the
  // same Intent — latest seal wins in the journal's chain derivation —
  // so a reverted patch is never replayed at the next boot; a promotion
  // re-seals Committed carrying the verdict for the history surface.
  if (Tx->JournalSeq != 0) {
    if (persist::UpdateJournal *J = Journal.load(std::memory_order_acquire)) {
      persist::SealOutcome Outcome = Verdict == "promoted"
                                         ? persist::SealOutcome::Committed
                                         : persist::SealOutcome::RolledBack;
      std::string Mode;
      {
        std::lock_guard<std::mutex> G(Tx->RecLock);
        Mode = Tx->Rec.CommitMode;
      }
      if (Error SE =
              J->appendSeal(Tx->JournalSeq, Outcome, Mode, Reason, Verdict))
        DSU_LOG_WARN("journal: rollout verdict seal for intent %llu "
                     "failed: %s",
                     static_cast<unsigned long long>(Tx->JournalSeq),
                     SE.str().c_str());
    }
  }
  // The commit already appended this transaction's log entry; patch the
  // verdict in after the fact (search from the back — the entry is
  // almost always the most recent).
  std::lock_guard<std::mutex> G(LogLock);
  for (size_t I = Log.size(); I-- > 0;)
    if (Log[I].TxId == Tx->id()) {
      Log[I].Rollout = Verdict;
      if (!Reason.empty())
        Log[I].FailureReason = Reason;
      break;
    }
}

void Runtime::flushRetiredBindingsLocked() {
  std::vector<RollEntry *> Detached;
  Updateables.flushGracedRolls(epoch::domain().minObservedEpoch(),
                               Detached);
  for (RollEntry *R : Detached)
    epoch::retireObject(R);
}

Error Runtime::abortStagedTx(const std::shared_ptr<UpdateTransaction> &TxP) {
  UpdateTransaction &Tx = *TxP;
  // Request first, inspect second (seq_cst pairs with stageInto's
  // publish-then-check): if the transaction is still staging, the
  // staging side is guaranteed to observe the flag and abort when it
  // finishes — no need to wait for it here.
  Tx.AbortRequested.store(true, std::memory_order_seq_cst);
  while (true) {
    UpdatePhase P = Tx.Phase.load(std::memory_order_seq_cst);
    switch (P) {
    case UpdatePhase::Staging:
      return Error::success(); // honoured at the end of staging
    case UpdatePhase::Ready: {
      UpdatePhase Expect = UpdatePhase::Ready;
      if (Tx.Phase.compare_exchange_strong(Expect, UpdatePhase::Aborted,
                                           std::memory_order_acq_rel)) {
        Tx.Plan = LinkPlan();
        Tx.Swap = StagedStateSwap();
        finalize(Tx, UpdatePhase::Aborted, nullptr);
        return Error::success();
      }
      continue; // lost a race with commit or the staging thread
    }
    case UpdatePhase::Aborted:
      return Error::success();
    default:
      return Error::make(ErrorCode::EC_Invalid,
                         "transaction %llu is already %s; nothing to abort",
                         static_cast<unsigned long long>(Tx.id()),
                         updatePhaseName(P));
    }
  }
}

unsigned Runtime::updatePoint() {
  if (!Queue.pending())
    return 0;
  if (RolloutActive.load(std::memory_order_acquire))
    return 0; // a canary rollout owns the commit pipeline
  if (ActivationTracker::currentDepth() != 0) {
    // Updateable code is active on this thread: not a safe point.  The
    // transactions stay queued for the next (quiescent) update point,
    // the paper's "delay until inactive" behaviour.
    DSU_LOG_DEBUG("update point skipped: %u active updateable frame(s)",
                  ActivationTracker::currentDepth());
    return 0;
  }
  unsigned Committed = 0;
  while (std::shared_ptr<UpdateTransaction> Tx =
             Queue.popActionableIf([](const UpdateTransaction &T) {
               return !T.HeldForRollout.load(std::memory_order_acquire);
             })) {
    if (Tx->phase() != UpdatePhase::Ready)
      continue; // stage-failed or aborted: already recorded, just collect
    if (Error E = commitStagedTx(Tx))
      DSU_LOG_WARN("update rejected: tx %llu (%s): %s",
                   static_cast<unsigned long long>(Tx->id()),
                   Tx->patchId().c_str(), E.str().c_str());
    else
      ++Committed;
  }
  return Committed;
}

Error Runtime::applyNow(Patch P) {
  if (ActivationTracker::currentDepth() != 0)
    return Error::make(
        ErrorCode::EC_Busy,
        "applyNow refused: single-updater discipline violated (%u "
        "updateable frame(s) active on this thread); retry at a "
        "quiescent update point",
        ActivationTracker::currentDepth());
  Expected<StagedUpdate> U = stage(std::move(P));
  if (!U)
    return U.takeError();
  return U->commit();
}

Error Runtime::rollbackUpdateable(const std::string &Name) {
  std::lock_guard<std::mutex> G(CommitLock);
  if (ActivationTracker::currentDepth() != 0)
    return Error::make(
        ErrorCode::EC_Busy,
        "rollback of '%s' refused: single-updater discipline violated "
        "(%u updateable frame(s) active on this thread); retry at a "
        "quiescent update point",
        Name.c_str(), ActivationTracker::currentDepth());
  Error E = Updateables.rollback(Name);
  if (!E) {
    // A rollback is itself an update: it may revert a slot's recorded
    // type, so any plan prepared before it must revalidate at commit.
    CommitGeneration.fetch_add(1, std::memory_order_release);
  }
  return E;
}

// --- Introspection -------------------------------------------------------

std::vector<UpdateRecord> Runtime::updateLog() const {
  std::lock_guard<std::mutex> G(LogLock);
  return Log;
}

std::vector<UpdateRecord> Runtime::pendingUpdates() const {
  std::vector<UpdateRecord> Out;
  for (const std::shared_ptr<UpdateTransaction> &Tx : Queue.snapshot())
    Out.push_back(Tx->record());
  return Out;
}

unsigned Runtime::updatesApplied() const { return Applied.load(); }
