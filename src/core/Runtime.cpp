//===- core/Runtime.cpp ---------------------------------------*- C++ -*-===//

#include "core/Runtime.h"

#include "support/Logging.h"
#include "support/Timer.h"
#include "vtal/Verifier.h"

using namespace dsu;

Error Runtime::exportHost(const std::string &Name, const Type *Ty,
                          vtal::HostFn Host, void *Addr) {
  SymbolDef Def;
  Def.Name = Name;
  Def.Ty = Ty;
  Def.Host = std::move(Host);
  Def.Addr = Addr;
  return Exports.addExport(std::move(Def));
}

void Runtime::requestUpdate(Patch P) {
  auto Shared = std::make_shared<Patch>(std::move(P));
  std::string Name = "patch:" + Shared->Id;
  Queue.enqueue(Name, [this, Shared]() -> Error {
    UpdateRecord Rec;
    Error E = applyPatch(*Shared, Rec);
    {
      std::lock_guard<std::mutex> G(LogLock);
      Log.push_back(Rec);
    }
    if (!E)
      Applied.fetch_add(1);
    return E;
  });
}

Error Runtime::requestUpdateFromFile(const std::string &Path) {
  Expected<Patch> P = loadPatchFile(Types, Exports, Path);
  if (!P)
    return P.takeError();
  requestUpdate(std::move(*P));
  return Error::success();
}

unsigned Runtime::updatePoint() {
  if (!Queue.pending())
    return 0;
  if (ActivationTracker::currentDepth() != 0) {
    // Updateable code is active on this thread: not a safe point.  The
    // update stays queued for the next (quiescent) update point, the
    // paper's "delay until inactive" behaviour.
    DSU_LOG_DEBUG("update point skipped: %u active updateable frame(s)",
                  ActivationTracker::currentDepth());
    return 0;
  }
  UpdatePointOutcome Outcome = Queue.drain();
  return Outcome.Applied;
}

Error Runtime::applyNow(Patch P) {
  if (ActivationTracker::currentDepth() != 0)
    return Error::make(ErrorCode::EC_Invalid,
                       "applyNow called with %u active updateable frame(s) "
                       "on this thread",
                       ActivationTracker::currentDepth());
  UpdateRecord Rec;
  Error E = applyPatch(P, Rec);
  {
    std::lock_guard<std::mutex> G(LogLock);
    Log.push_back(Rec);
  }
  if (!E)
    Applied.fetch_add(1);
  return E;
}

Error Runtime::applyPatch(Patch &P, UpdateRecord &Rec) {
  Timer Total;
  Rec.PatchId = P.Id;
  Rec.CodeBytes = P.CodeBytes;

  auto Fail = [&](Error E) {
    Rec.Succeeded = false;
    Rec.FailureReason = E.str();
    Rec.TotalMs = Total.elapsedMs();
    return E;
  };

  // Stage 1: verification.  VTAL-backed patches are machine-checked;
  // native patches arrive as trusted-compiler output (the paper's TAL
  // verification corresponds to the VTAL path).
  {
    Timer T;
    if (P.VtalMod) {
      vtal::VerifyStats VS;
      if (Error E = vtal::verifyModule(*P.VtalMod, &VS))
        return Fail(E.withContext("patch " + P.Id));
      Rec.InstructionsVerified = VS.InstructionsChecked;
    }
    Rec.VerifyMs = T.elapsedMs();
  }

  // Stage 2: introduce the patch's new named types and transformers.
  // Computing the declared bumps needs the pre-patch latest versions.
  std::vector<VersionBump> DeclaredBumps;
  for (const PatchTypeDef &TD : P.NewTypes) {
    uint32_t Prev = Types.latestVersion(TD.Name.Name);
    if (Prev > 0 && Prev < TD.Name.Version)
      DeclaredBumps.push_back(
          VersionBump{VersionedName{TD.Name.Name, Prev}, TD.Name});
    if (Error E = Types.defineNamed(TD.Name, TD.Repr))
      return Fail(E.withContext("patch " + P.Id));
  }
  for (PatchTransformer &X : P.Transformers)
    Transformers.add(X.Bump, X.Fn);

  // Stage 3: link preparation (typed import resolution + replacement
  // compatibility).  No program mutation yet.
  LinkPlan Plan;
  {
    Timer T;
    Expected<LinkPlan> PlanOrErr = TheLinker.prepare(std::move(P.Unit));
    if (!PlanOrErr) {
      Rec.LinkMs = T.elapsedMs();
      return Fail(PlanOrErr.takeError());
    }
    Plan = std::move(*PlanOrErr);
    Rec.LinkMs = T.elapsedMs();
  }

  // Union of bumps demanded by signature changes and bumps declared via
  // new type versions.
  std::vector<VersionBump> AllBumps = Plan.RequiredBumps;
  for (const VersionBump &B : DeclaredBumps) {
    bool Known = false;
    for (const VersionBump &K : AllBumps)
      Known |= K == B;
    if (!Known)
      AllBumps.push_back(B);
  }

  // Stage 4: state transformation (two-phase inside; rejects the update
  // with state untouched when a transformer is missing or fails).
  {
    Timer T;
    TransformStats TS;
    if (Error E =
            runStateTransform(Types, State, Transformers, AllBumps, &TS)) {
      Rec.TransformMs = T.elapsedMs();
      return Fail(E.withContext("patch " + P.Id));
    }
    Rec.CellsMigrated = TS.CellsMigrated;
    Rec.TransformMs = T.elapsedMs();
  }

  // Stage 5: commit the bindings.
  {
    Timer T;
    Rec.ProvidesLinked = Plan.Unit.Provides.size();
    if (Error E = TheLinker.commit(std::move(Plan))) {
      Rec.LinkMs += T.elapsedMs();
      return Fail(std::move(E));
    }
    Rec.LinkMs += T.elapsedMs();
  }

  Rec.Succeeded = true;
  Rec.TotalMs = Total.elapsedMs();
  DSU_LOG_INFO("patch %s applied: verify %.3fms link %.3fms transform "
               "%.3fms total %.3fms",
               P.Id.c_str(), Rec.VerifyMs, Rec.LinkMs, Rec.TransformMs,
               Rec.TotalMs);
  return Error::success();
}

std::vector<UpdateRecord> Runtime::updateLog() const {
  std::lock_guard<std::mutex> G(LogLock);
  return Log;
}

unsigned Runtime::updatesApplied() const { return Applied.load(); }
