//===- core/DSU.h - Umbrella header ---------------------------*- C++ -*-===//
///
/// \file
/// Convenience umbrella for embedders: pulls in the full public API of
/// the dsu library (a C++ reproduction of "Dynamic Software Updating",
/// Hicks/Moore/Nettles, PLDI 2001).
///
/// Typical embedding:
/// \code
///   dsu::Runtime RT;
///   auto Greet = dsu::cantFail(
///       RT.defineUpdateable<std::string, std::string>("greet", &greetV1));
///   ...
///   while (Running) {
///     RT.updatePoint();           // applies queued patches when safe
///     serveOneRequest(Greet);
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DSU_CORE_DSU_H
#define DSU_CORE_DSU_H

#include "core/Runtime.h"
#include "patch/Generator.h"
#include "patch/Manifest.h"
#include "patch/Patch.h"
#include "patch/PatchBuilder.h"
#include "patch/PatchLoader.h"
#include "runtime/Updateable.h"
#include "state/Transform.h"
#include "support/Error.h"
#include "types/Compat.h"
#include "types/Type.h"
#include "types/TypeParser.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"

#endif // DSU_CORE_DSU_H
