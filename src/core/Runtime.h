//===- core/Runtime.h - The dynamic software updating runtime -*- C++ -*-===//
///
/// \file
/// dsu::Runtime is the facade a program embeds to become updateable: it
/// owns the type context, the updateable-symbol registry, the typed export
/// table, the state registry, the transformer registry, and the pending-
/// update queue, and it runs the update pipeline
///
///     verify  ->  link(prepare)  ->  state transform  ->  link(commit)
///
/// with per-stage timing — the breakdown the PLDI 2001 evaluation reports
/// for every FlashEd patch (reproduced by bench_update_duration, E3).
///
/// Thread model: any thread may request updates; exactly the program's
/// chosen update thread calls updatePoint()/applyNow() (single-updater
/// discipline, as in the paper where the program updates itself at its
/// own update points).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_CORE_RUNTIME_H
#define DSU_CORE_RUNTIME_H

#include "link/Linker.h"
#include "link/SymbolTable.h"
#include "patch/Patch.h"
#include "patch/PatchLoader.h"
#include "runtime/UpdateQueue.h"
#include "runtime/Updateable.h"
#include "state/StateCell.h"
#include "state/Transform.h"
#include "types/Type.h"

#include <vector>

namespace dsu {

/// Timing and outcome of one applied (or rejected) patch.
struct UpdateRecord {
  std::string PatchId;
  bool Succeeded = false;
  std::string FailureReason;

  double VerifyMs = 0;    ///< VTAL verification (0 for native patches)
  double LinkMs = 0;      ///< prepare + commit of the link unit
  double TransformMs = 0; ///< state migration
  double TotalMs = 0;     ///< end-to-end inside the update point

  size_t CodeBytes = 0;          ///< artifact size
  size_t InstructionsVerified = 0;
  size_t CellsMigrated = 0;
  size_t ProvidesLinked = 0;
};

/// The updating runtime.  One per program.
class Runtime {
public:
  Runtime() : TheLinker(Updateables, Exports) {}
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  // -- Subsystem access --------------------------------------------------
  TypeContext &types() { return Types; }
  UpdateableRegistry &updateables() { return Updateables; }
  SymbolTable &exports() { return Exports; }
  StateRegistry &state() { return State; }
  TransformerRegistry &transformers() { return Transformers; }

  // -- Program setup -----------------------------------------------------

  /// Defines an updateable function from a C++ function pointer and
  /// returns the typed call handle.
  template <typename R, typename... Args>
  Expected<Updateable<R(Args...)>>
  defineUpdateable(const std::string &Name, R (*Initial)(Args...)) {
    return dsu::defineUpdateable(Updateables, Types, Name, Initial);
  }

  /// Defines an updateable function from an arbitrary callable (used
  /// when the initial implementation must capture program state).
  template <typename R, typename... Args, typename Callable>
  Expected<Updateable<R(Args...)>>
  defineUpdateableFn(const std::string &Name, Callable &&Initial) {
    const Type *FnTy = fnTypeOf<R, Args...>(Types);
    Expected<UpdateableSlot *> Slot = Updateables.define(
        Name, FnTy,
        makeClosureBinding<R, Args...>(std::forward<Callable>(Initial), 1,
                                       "program"));
    if (!Slot)
      return Slot.takeError();
    return Updateable<R(Args...)>(*Slot);
  }

  /// Registers a host export that patches may import.  \p Host serves
  /// VTAL importers; \p Addr (optional) serves native importers.
  Error exportHost(const std::string &Name, const Type *Ty,
                   vtal::HostFn Host, void *Addr = nullptr);

  /// Defines (or re-defines identically) a named type's representation.
  Error defineNamedType(const VersionedName &Name, const Type *Repr) {
    return Types.defineNamed(Name, Repr);
  }

  /// Defines a typed state cell.
  Expected<StateCell *> defineState(const std::string &Name, const Type *Ty,
                                    std::shared_ptr<void> Data) {
    return State.define(Name, Ty, std::move(Data));
  }

  // -- Update flow ---------------------------------------------------------

  /// Queues \p P for the next update point (callable from any thread).
  void requestUpdate(Patch P);

  /// Loads a patch artifact and queues it.
  Error requestUpdateFromFile(const std::string &Path);

  /// The update point.  Near-free when nothing is pending; otherwise
  /// drains the queue, applying each patch through the full pipeline.
  /// Returns the number of patches applied.
  unsigned updatePoint();

  /// Applies one patch immediately (the caller asserts this is a safe
  /// point).  Refused when updateable code is active on this thread.
  Error applyNow(Patch P);

  /// True when an update awaits the next update point.
  bool updatePending() const { return Queue.pending(); }

  /// Reverts one updateable to its previous implementation (code-only;
  /// see UpdateableRegistry::rollback for the state caveat).  Refused
  /// while updateable code is active on this thread, like any update.
  Error rollbackUpdateable(const std::string &Name) {
    if (ActivationTracker::currentDepth() != 0)
      return Error::make(ErrorCode::EC_Invalid,
                         "rollback requested with active updateable "
                         "frames on this thread");
    return Updateables.rollback(Name);
  }

  // -- Introspection -------------------------------------------------------

  /// Chronological record of every update attempt.
  std::vector<UpdateRecord> updateLog() const;

  /// Number of successfully applied updates.
  unsigned updatesApplied() const;

private:
  Error applyPatch(Patch &P, UpdateRecord &Rec);

  TypeContext Types;
  UpdateableRegistry Updateables;
  SymbolTable Exports;
  StateRegistry State;
  TransformerRegistry Transformers;
  Linker TheLinker;
  UpdateQueue Queue;

  mutable std::mutex LogLock;
  std::vector<UpdateRecord> Log;
  std::atomic<unsigned> Applied{0};
};

} // namespace dsu

#endif // DSU_CORE_RUNTIME_H
