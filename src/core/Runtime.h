//===- core/Runtime.h - The dynamic software updating runtime -*- C++ -*-===//
///
/// \file
/// dsu::Runtime is the facade a program embeds to become updateable: it
/// owns the type context, the updateable-symbol registry, the typed export
/// table, the state registry, the transformer registry, and the queue of
/// staged update transactions.
///
/// The update pipeline is transactional and split in two:
///
///   stage  (any thread):   verify -> link prepare -> state build
///   commit (update point): validate -> payload swaps -> binding swings
///
/// with per-stage timing — the breakdown the PLDI 2001 evaluation reports
/// for every FlashEd patch (reproduced by bench_update_duration, E3),
/// sharpened into a stage-time vs. pause-time split.  Staging performs no
/// program mutation beyond append-only type/transformer definitions, so
/// the serving pause at updatePoint() is only the commit cost.
///
/// Thread model: any thread may stage updates (Runtime::stage, or the
/// UpdateController's worker); exactly the program's chosen update thread
/// calls updatePoint()/applyNow()/StagedUpdate::commit() (single-updater
/// discipline, as in the paper where the program updates itself at its
/// own update points).  Violations are reported as EC_Busy — distinct
/// from EC_Invalid — naming the discipline broken, so operator surfaces
/// can answer "retry at a quiescent point".
///
//===----------------------------------------------------------------------===//

#ifndef DSU_CORE_RUNTIME_H
#define DSU_CORE_RUNTIME_H

#include "link/Linker.h"
#include "link/SymbolTable.h"
#include "patch/Patch.h"
#include "patch/PatchLoader.h"
#include "runtime/UpdateQueue.h"
#include "runtime/UpdateTransaction.h"
#include "runtime/Updateable.h"
#include "state/StateCell.h"
#include "state/Transform.h"
#include "support/Histogram.h"
#include "types/Type.h"

#include <memory>
#include <vector>

namespace dsu {

class UpdateController;
class RolloutController;

namespace persist {
class UpdateJournal;
}

/// The updating runtime.  One per program.
class Runtime {
public:
  Runtime();
  ~Runtime();
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  // -- Subsystem access --------------------------------------------------
  TypeContext &types() { return Types; }
  UpdateableRegistry &updateables() { return Updateables; }
  SymbolTable &exports() { return Exports; }
  StateRegistry &state() { return State; }
  TransformerRegistry &transformers() { return Transformers; }

  /// The asynchronous staging engine (created on first use; its worker
  /// thread lives until the runtime is destroyed).
  UpdateController &controller();

  // -- Program setup -----------------------------------------------------

  /// Defines an updateable function from a C++ function pointer and
  /// returns the typed call handle.
  template <typename R, typename... Args>
  Expected<Updateable<R(Args...)>>
  defineUpdateable(const std::string &Name, R (*Initial)(Args...)) {
    return dsu::defineUpdateable(Updateables, Types, Name, Initial);
  }

  /// Defines an updateable function from an arbitrary callable (used
  /// when the initial implementation must capture program state).
  template <typename R, typename... Args, typename Callable>
  Expected<Updateable<R(Args...)>>
  defineUpdateableFn(const std::string &Name, Callable &&Initial) {
    const Type *FnTy = fnTypeOf<R, Args...>(Types);
    Expected<UpdateableSlot *> Slot = Updateables.define(
        Name, FnTy,
        makeClosureBinding<R, Args...>(std::forward<Callable>(Initial), 1,
                                       "program"));
    if (!Slot)
      return Slot.takeError();
    return Updateable<R(Args...)>(*Slot);
  }

  /// Registers a host export that patches may import.  \p Host serves
  /// VTAL importers; \p Addr (optional) serves native importers.
  Error exportHost(const std::string &Name, const Type *Ty,
                   vtal::HostFn Host, void *Addr = nullptr);

  /// Defines (or re-defines identically) a named type's representation.
  Error defineNamedType(const VersionedName &Name, const Type *Repr) {
    return Types.defineNamed(Name, Repr);
  }

  /// Defines a typed state cell.
  Expected<StateCell *> defineState(const std::string &Name, const Type *Ty,
                                    std::shared_ptr<void> Data) {
    return State.define(Name, Ty, std::move(Data));
  }

  // -- Update flow ---------------------------------------------------------

  /// Stages \p P on the calling thread: verification, link preparation,
  /// and the state-transform build all run here, with no program
  /// mutation.  Returns the handle whose commit() (at an update point)
  /// or abort() completes the transaction.  A staging failure is
  /// recorded in the update log and returned.  Callable from any thread.
  Expected<StagedUpdate> stage(Patch P);

  /// stage() for boot-time replay: pins the durable journal Intent
  /// \p JournalSeq on the transaction *before* the pipeline runs, so
  /// finalize() seals that Intent whatever the outcome — a staging
  /// failure and a crash mid-pipeline are both accounted against the
  /// journal's two-phase protocol.
  Expected<StagedUpdate> stageJournaled(Patch P, uint64_t JournalSeq);

  /// Queues a staged transaction for the next update point (FIFO with
  /// everything else queued).
  Error enqueue(const StagedUpdate &U);

  /// Stages \p P on the calling thread and queues it for the next update
  /// point.  A staging failure is recorded in the update log; the
  /// failed transaction never blocks the queue.
  void requestUpdate(Patch P);

  /// Loads a patch artifact and stages + queues it.
  Error requestUpdateFromFile(const std::string &Path);

  /// The update point.  Near-free when nothing is actionable; otherwise
  /// commits every *ready* transaction at the front of the queue, in
  /// FIFO order, pausing only for commit cost (binding swings + state
  /// swaps) — never for verification or link preparation, which already
  /// ran at stage time.  Returns the number of transactions committed.
  unsigned updatePoint();

  /// Stages and immediately commits one patch (the caller asserts this
  /// is a safe point on the update thread).  Refused with EC_Busy when
  /// updateable code is active on this thread.
  Error applyNow(Patch P);

  /// True when a transaction awaits the next update point.
  bool updatePending() const { return Queue.pending(); }

  /// How the next actionable transaction wants to commit: Rolling for
  /// code-only patches (and terminal transactions awaiting collection)
  /// — no global quiescence needed — Barrier for anything that migrates
  /// state or bumps types, None when nothing is actionable.  The
  /// multi-core serving plane consults this at each worker's idle point
  /// to decide between commitRollingFront() and arming the barrier.
  enum class PendingCommit { None, Rolling, Barrier };
  PendingCommit pendingCommitMode() const;

  /// Commits every code-only transaction at the queue front as rolling
  /// updates — bindings swing behind epoch redirection, each reader
  /// thread adopts the new code at its own quiescent point, no worker
  /// parks.  Stops at the first transaction that needs the barrier
  /// (left at the front).  Callable from any quiescent thread; commits
  /// are serialized internally.  Returns transactions committed.
  unsigned commitRollingFront();

  /// Successfully committed rolling (barrier-free) updates.
  uint64_t rollingCommits() const {
    return RollingCommits.load(std::memory_order_relaxed);
  }

  /// VTAL functions verified across all staged patches (the
  /// dsu_verify_functions_total counter on /admin/metrics).
  uint64_t verifyFunctionsTotal() const {
    return VerifyFunctionsTotal.load(std::memory_order_relaxed);
  }

  /// Patch-analyzer findings recorded across all staged patches, every
  /// severity (the dsu_analysis_findings_total counter).
  uint64_t analysisFindingsTotal() const {
    return AnalysisFindingsTotal.load(std::memory_order_relaxed);
  }

  /// Adds to the analyzer-findings counter (the staging worker reports
  /// findings it produced before entering stageInto).
  void countAnalysisFindings(uint64_t N) {
    AnalysisFindingsTotal.fetch_add(N, std::memory_order_relaxed);
  }

  /// Whether error-severity analyzer findings refuse staging (default
  /// on).  Off, the analyzer still runs and records findings but the
  /// patch proceeds — the escape hatch for deliberately shipping a
  /// statically-detectable bad patch to exercise the *dynamic* defenses
  /// (canary gates, fault-injection drills).
  void setAnalysisGate(bool Enabled) {
    AnalysisGate.store(Enabled, std::memory_order_relaxed);
  }
  bool analysisGateEnabled() const {
    return AnalysisGate.load(std::memory_order_relaxed);
  }

  /// Detaches and epoch-retires every fully graced rolling-redirection
  /// chain, restoring the slots' single-load fast path.  Runs
  /// automatically at commit points; exposed for tests and teardown.
  void flushRetiredBindings();

  /// The idle-time form of flushRetiredBindings(), cheap enough for a
  /// reactor worker's poll loop: a single relaxed load when no slot
  /// carries a chain, and a try_lock — never a blocking wait in the
  /// serving path — when one does.  This is how a slot's single-load
  /// fast path recovers without waiting for another commit.
  void maybeFlushRetiredBindings();

  /// Stage->commit latency of committed updates (microseconds).
  const LatencyHistogram &stageToCommitLatency() const {
    return StageToCommit;
  }

  /// Id of the transaction at the queue front (0 when empty).  The
  /// serving plane tags its barrier-park and adoption trace spans with
  /// this, so per-worker pause evidence lands in the right update's
  /// span tree.
  uint64_t frontTxId() const {
    std::shared_ptr<UpdateTransaction> F = Queue.front();
    return F ? F->id() : 0;
  }

  /// Id of the most recent rolling-committed transaction (0 = none
  /// yet).  Workers compare against it at their quiescent points to
  /// emit one "adopted" trace event per worker per rolling update.
  uint64_t lastRollingTxId() const {
    return LastRollingTxId.load(std::memory_order_acquire);
  }

  /// Recorder timestamp (trace::Recorder::nowUs) of that commit, so an
  /// adopting worker can report its own commit-to-adoption lag.
  uint64_t lastRollingCommitUs() const {
    return LastRollingCommitUs.load(std::memory_order_acquire);
  }

  /// Reverts one updateable to its previous implementation (code-only;
  /// see UpdateableRegistry::rollback for the state caveat).  Refused
  /// with EC_Busy while updateable code is active on this thread, like
  /// any update.
  Error rollbackUpdateable(const std::string &Name);

  /// Staging watchdog: a transaction whose verify/link/state-build
  /// pipeline (including its wait in the staging backlog) exceeds this
  /// deadline is aborted with the TimedOut outcome, so a pathological
  /// patch cannot head-of-line-block the FIFO update queue.  0 disables
  /// the watchdog (the default).
  void setStagingDeadlineMs(uint64_t Ms) {
    StagingDeadlineMs.store(Ms, std::memory_order_relaxed);
  }
  uint64_t stagingDeadlineMs() const {
    return StagingDeadlineMs.load(std::memory_order_relaxed);
  }

  /// True while a canary rollout owns the commit plane (workers neither
  /// commit nor arm the barrier; the RolloutController drives every
  /// commit and revert itself).
  bool rolloutActive() const {
    return RolloutActive.load(std::memory_order_acquire);
  }

  // -- Durable journal -----------------------------------------------------

  /// Attaches the durable update journal: finalize() seals journaled
  /// transactions (Committed / RolledBack) and the staging plane writes
  /// Intents + refuses quarantined artifacts.  The journal must outlive
  /// the runtime's update activity; pass nullptr to detach.  Updates
  /// staged while no journal is attached are simply not persisted (the
  /// seed-compatible in-memory mode every test and bench keeps).
  void attachJournal(persist::UpdateJournal *J) {
    Journal.store(J, std::memory_order_release);
  }
  persist::UpdateJournal *journal() const {
    return Journal.load(std::memory_order_acquire);
  }

  // -- Introspection -------------------------------------------------------

  /// Chronological record of every terminal update transaction.
  std::vector<UpdateRecord> updateLog() const;

  /// Records of the transactions still queued (staging or ready),
  /// front-of-queue first.
  std::vector<UpdateRecord> pendingUpdates() const;

  /// Number of transactions waiting at the update point (any phase).
  size_t queueDepth() const { return Queue.depth(); }

  /// Number of successfully committed updates.
  unsigned updatesApplied() const;

private:
  friend class StagedUpdate;
  friend class UpdateController;
  friend class RolloutController;

  std::shared_ptr<UpdateTransaction> makeTransaction(std::string PatchId);

  /// Commits a held-for-rollout transaction as a canary-gated rolling
  /// update: only workers in \p CanaryMask adopt the new bindings; the
  /// published (gated) RollEntries are appended to \p GatedOut for the
  /// RolloutController to resolve.  Demotes to *NeedsBarrier exactly
  /// like a plain rolling commit when revalidation discovers state
  /// migration.
  Error commitCanaryFront(const std::shared_ptr<UpdateTransaction> &Tx,
                          uint64_t CanaryMask,
                          std::vector<RollEntry *> &GatedOut,
                          bool *NeedsBarrier);

  /// Records a rollout verdict ("promoted" / "rolled-back") on \p Tx's
  /// live record and on its already-appended update-log entry, so the
  /// verdict is visible in GET /admin/updates.
  void annotateRollout(const std::shared_ptr<UpdateTransaction> &Tx,
                       const std::string &Verdict,
                       const std::string &Reason);

  /// Rollout latch (see rolloutActive()).
  void setRolloutActive(bool Active) {
    RolloutActive.store(Active, std::memory_order_release);
  }

  /// Runs the staging pipeline into \p Tx (serialized across stagers).
  /// On success the phase becomes Ready; on failure StageFailed with the
  /// record appended to the log.
  Error stageInto(UpdateTransaction &Tx);

  /// Commits one ready transaction on the calling (update) thread.
  Error commitStagedTx(const std::shared_ptr<UpdateTransaction> &Tx);

  /// The commit body, with committers already serialized by CommitLock.
  /// With \p Rolling set, the binding swings go through the epoch
  /// redirection instead of assuming global quiescence; if commit-time
  /// revalidation discovers the plan is no longer code-only, the
  /// transaction is returned to Ready, *NeedsBarrier is set, and no
  /// program state changes.  \p CanaryMask / \p GatedOut thread the
  /// canary gate through to Linker::commit (see commitCanaryFront).
  Error commitStagedTxLocked(const std::shared_ptr<UpdateTransaction> &Tx,
                             bool Rolling, bool *NeedsBarrier,
                             uint64_t CanaryMask = UINT64_MAX,
                             std::vector<RollEntry *> *GatedOut = nullptr);

  /// Registers an abort request; see StagedUpdate::abort().
  Error abortStagedTx(const std::shared_ptr<UpdateTransaction> &Tx);

  /// flushRetiredBindings() with CommitLock already held.
  void flushRetiredBindingsLocked();

  /// Appends \p Tx's record to the log with terminal phase \p Phase.
  void finalize(UpdateTransaction &Tx, UpdatePhase Phase, const Error *E);

  TypeContext Types;
  UpdateableRegistry Updateables;
  SymbolTable Exports;
  StateRegistry State;
  TransformerRegistry Transformers;
  Linker TheLinker;
  UpdateQueue Queue;

  /// Serializes staging pipelines (prepare reads registries that commit
  /// writes; type/transformer definitions are append-only but ordered).
  std::mutex StageLock;

  /// Serializes committers: the barrier's designated committer and any
  /// worker performing a rolling commit at its idle point.  Commit-time
  /// plan revalidation re-reads registries another commit could be
  /// writing, so commits must not interleave.  Never taken by staging.
  std::mutex CommitLock;

  std::atomic<uint64_t> RollingCommits{0};
  std::atomic<uint64_t> VerifyFunctionsTotal{0};
  std::atomic<uint64_t> AnalysisFindingsTotal{0};
  std::atomic<bool> AnalysisGate{true};
  LatencyHistogram StageToCommit;

  /// Staging watchdog deadline (ms; 0 = off), applied to transactions at
  /// creation time.
  std::atomic<uint64_t> StagingDeadlineMs{0};

  /// Set while a RolloutController drives the commit plane; worker-side
  /// commit paths (updatePoint, commitRollingFront, pendingCommitMode)
  /// stand down so no commit can stack on an unresolved canary gate.
  std::atomic<bool> RolloutActive{false};

  /// Bumped on every commit; a transaction prepared against an older
  /// generation revalidates its link plan before committing.
  std::atomic<uint64_t> CommitGeneration{0};

  std::atomic<uint64_t> NextTxId{1};

  /// See lastRollingTxId() / lastRollingCommitUs().
  std::atomic<uint64_t> LastRollingTxId{0};
  std::atomic<uint64_t> LastRollingCommitUs{0};

  /// The attached durable journal (nullptr = in-memory only).
  std::atomic<persist::UpdateJournal *> Journal{nullptr};

  mutable std::mutex LogLock;
  std::vector<UpdateRecord> Log;
  std::atomic<unsigned> Applied{0};

  std::mutex CtlLock;
  std::unique_ptr<UpdateController> Ctl;
};

} // namespace dsu

#endif // DSU_CORE_RUNTIME_H
