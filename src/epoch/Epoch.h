//===- epoch/Epoch.h - Epoch-based quiescence and reclamation -*- C++ -*-===//
///
/// \file
/// The epoch subsystem: quiescent-state-based grace periods over the
/// reactor workers, deferred reclamation, and wait-free published
/// pointers — the mechanism that lets code-only dynamic updates commit
/// *without* the cross-worker barrier and lets the serving hot path read
/// shared state without a single mutex.
///
/// The model is QSBR (quiescent-state-based reclamation), which this
/// system gets almost for free: the paper's update discipline already
/// forces every reactor worker through an explicit quiescent point — the
/// instant between poll iterations when no request is mid-handler.  Each
/// registered worker announces that point by copying the domain's global
/// epoch into its own counter (`Domain::quiesce`).  A retired object is
/// tagged with the global epoch at retire time and freed once every
/// participant has observed a *later* epoch — by then no reader can
/// still hold a reference obtained before the object was unlinked.
///
/// Participants come in two kinds:
///
///  - *Workers* (reactor threads): permanently registered; their counter
///    always bounds the grace period, because between two quiesces a
///    worker may be holding references obtained at its last announced
///    epoch.  A worker stuck in a long request therefore *delays*
///    reclamation — never unsoundly permits it.
///  - *Pinned guards* (everything else: the admin path, the staging
///    controller, tests): an `epoch::Guard` pins the calling thread to
///    the current epoch for a scope; between guards the thread does not
///    constrain the grace period at all.  On a registered worker thread
///    a Guard degrades to a no-op — the worker's own counter already
///    protects it.
///
/// `epoch::Ptr<T>` is the publication primitive built on top: writers
/// copy-update-publish (atomic exchange + retire of the old payload);
/// readers take a guard and load one atomic pointer — no lock, no
/// reference count, no fence on the worker fast path.
///
/// The *global epoch* additionally serves as the visibility clock for
/// rolling (barrier-free) code-only updates: `advanceWith` installs new
/// bindings under the domain lock and then publishes a new epoch, so a
/// reader thread switches to the new code exactly when it announces its
/// next quiescent point — never in the middle of a request
/// (runtime/UpdateableRegistry.h, RollEntry).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_EPOCH_EPOCH_H
#define DSU_EPOCH_EPOCH_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace dsu {
namespace epoch {

/// One reclamation domain: a set of participants, a global epoch, and a
/// limbo list of retired objects awaiting their grace period.  The
/// process has one default domain (epoch::domain()); tests may create
/// private ones.  A Domain must outlive every thread that participates
/// in it.
class Domain {
public:
  /// Sentinel for "not pinned": an idle guard slot constrains nothing.
  static constexpr uint64_t kIdle = UINT64_MAX;

  /// One participant's cache-line-aligned announcement cell.  Owned by
  /// the domain; handed out to workers (registerWorker) and to threads
  /// pinning guards (internally).
  struct alignas(64) Slot {
    std::atomic<uint64_t> Observed{kIdle};
    bool Worker = false;   ///< counts toward min even between quiesces
    bool Active = false;   ///< registered (guarded by the domain lock)
    unsigned PinDepth = 0; ///< guard nesting (owner thread only)
    uint64_t PinnedEpoch = 0; ///< epoch of the outermost pin (owner only)
    Slot *NextFree = nullptr;
  };

  Domain();
  ~Domain(); ///< drains the limbo list; no participant may still read
  Domain(const Domain &) = delete;
  Domain &operator=(const Domain &) = delete;

  // -- Participants --------------------------------------------------------

  /// Registers the calling thread as a worker participant.  The worker
  /// announces quiescent points with quiesce(); its counter bounds every
  /// grace period until deregisterWorker().
  Slot *registerWorker();
  void deregisterWorker(Slot *S);

  /// Announces a quiescent point for worker \p S: no reference obtained
  /// before this call survives past it.  Returns the epoch observed.
  /// Amortized reclamation runs here (try-lock only; never blocks the
  /// serving loop on another worker's reclaim).
  uint64_t quiesce(Slot *S);

  /// The epoch worker \p S last announced (introspection/metrics).
  uint64_t slotEpoch(const Slot *S) const {
    return S->Observed.load(std::memory_order_relaxed);
  }

  /// Pins the calling thread (guard entry).  Prefer epoch::Guard.
  Slot *pinThread();
  void unpinThread(Slot *S);

  // -- The epoch clock -----------------------------------------------------

  uint64_t globalEpoch() const {
    return Global.load(std::memory_order_acquire);
  }

  /// Atomically advances the global epoch to E = current + 1, running
  /// \p Install(E) under the domain lock *before* E becomes visible.
  /// This is the rolling-update primitive: Install publishes new state
  /// tagged E while every concurrently sampled epoch is still < E, so a
  /// reader observes either none of the installation (its epoch < E) or
  /// all of it (it sampled E, which is published release-after).
  /// Install must not call back into this domain.  Returns E.
  uint64_t advanceWith(void (*Install)(uint64_t, void *), void *Ctx);
  uint64_t advance() { return advanceWith(nullptr, nullptr); }

  // -- Deferred reclamation ------------------------------------------------

  /// Defers destruction of \p P (via \p Del) until every participant has
  /// passed a quiescent point / unpinned since now.  The caller must
  /// have already unlinked \p P from every published structure.  Each
  /// retire also advances the global epoch, so grace periods complete
  /// without a dedicated ticker thread.
  void retire(void *P, void (*Del)(void *));

  /// Attempts reclamation now (blocking on the domain lock); returns the
  /// number of objects freed.
  size_t reclaim();

  /// Frees every retired object unconditionally.  Callers assert no
  /// participant is reading (used at teardown; the destructor calls it).
  void drain();

  // -- Introspection -------------------------------------------------------

  size_t limboSize() const {
    return LimboCount.load(std::memory_order_relaxed);
  }
  uint64_t retiredTotal() const {
    return Retires.load(std::memory_order_relaxed);
  }
  uint64_t reclaimedTotal() const {
    return Reclaims.load(std::memory_order_relaxed);
  }

  /// The smallest epoch any participant may still be reading under
  /// (kIdle when nobody constrains the grace period).
  uint64_t minObservedEpoch() const;

private:
  struct Retired {
    void *P = nullptr;
    void (*Del)(void *) = nullptr;
    uint64_t Epoch = 0;
  };

  Slot *allocSlotLocked();
  void releaseSlotLocked(Slot *S);
  uint64_t minObservedLocked() const;
  /// Collects every limbo entry whose grace period has passed into
  /// \p Out (deleters run by the caller, outside the lock).
  void collectExpiredLocked(std::vector<Retired> &Out);
  void runDeleters(std::vector<Retired> &Batch);
  size_t tryReclaim();

  friend struct ThreadSlotCacheAccess;

  /// Process-unique identity, never reused: the per-thread guard-slot
  /// cache keys on (address, Id) so a later Domain allocated at a dead
  /// one's address can never match a stale cache entry.
  const uint64_t Id;

  std::atomic<uint64_t> Global{1};
  std::atomic<size_t> LimboCount{0};
  std::atomic<uint64_t> Retires{0};
  std::atomic<uint64_t> Reclaims{0};

  mutable std::mutex Mu; ///< slots vector, free list, limbo, epoch bumps
  std::vector<std::unique_ptr<Slot>> Slots;
  Slot *FreeSlots = nullptr;
  std::deque<Retired> Limbo; ///< retire tags are nondecreasing -> sorted
};

/// The process-wide default domain.  Function-local static: destroyed at
/// exit (after main's locals and the pool threads are gone), draining
/// any still-deferred objects so sanitizer runs see no leaks.
Domain &domain();

// -- The default-domain thread epoch (the binding-resolution clock) -------

/// The epoch this thread is pinned at in the *default* domain: set by a
/// worker at each quiesce and by a Guard for its scope; 0 when the
/// thread is neither.  (The storage is internal to Epoch.cpp — an
/// extern thread_local would go through a TLS wrapper call per access
/// anyway, and cross-TU wrappers trip UBSan.)
uint64_t threadPinnedEpoch();

/// True while this thread is a registered worker of the default domain.
bool onWorkerThread();

// -- RAII helpers ---------------------------------------------------------

/// Registers the calling thread as a worker of \p D for the object's
/// lifetime.  Created by each reactor worker (and the single-worker
/// Server loop); quiesce() is the per-iteration epoch tick.
class WorkerReg {
public:
  explicit WorkerReg(Domain &D = domain());
  ~WorkerReg();
  WorkerReg(const WorkerReg &) = delete;
  WorkerReg &operator=(const WorkerReg &) = delete;

  /// Announces the quiescent point; returns the epoch observed.
  uint64_t quiesce();

  Domain::Slot *slot() const { return S; }

private:
  Domain &D;
  Domain::Slot *S;
  bool IsDefault;
};

/// Pins the calling thread for a scope so epoch::Ptr loads (and the raw
/// pointers derived from them) stay valid.  Free on a registered worker
/// thread of the same domain; a pin + seq_cst fence elsewhere.  Nests.
class Guard {
public:
  explicit Guard(Domain &D = domain());
  ~Guard();
  Guard(const Guard &) = delete;
  Guard &operator=(const Guard &) = delete;

private:
  Domain *D = nullptr;
  Domain::Slot *S = nullptr;
  uint64_t SavedTL = 0;
  bool RestoreTL = false;
};

/// Retires a heap object with its natural deleter.
template <typename T> void retireObject(T *Obj, Domain &D = domain()) {
  using Mutable = std::remove_const_t<T>;
  D.retire(const_cast<Mutable *>(Obj),
           [](void *X) { delete static_cast<Mutable *>(X); });
}

// -- Published pointers ---------------------------------------------------

/// An atomically published pointer with epoch-deferred reclamation of
/// superseded values: the lock-free replacement for a reader/writer
/// lock around read-mostly state.  Readers hold a Guard (or are
/// workers) across load() and every dereference of the result; writers
/// build a new value, publish(), and the old value is retired.
/// The Ptr owns the current value (deleted in the destructor); writers
/// serialize among themselves externally.
template <typename T> class Ptr {
public:
  Ptr() = default;
  explicit Ptr(T *Initial) : P(Initial) {}
  ~Ptr() {
    using Mutable = std::remove_const_t<T>;
    delete const_cast<Mutable *>(P.load(std::memory_order_relaxed));
  }
  Ptr(const Ptr &) = delete;
  Ptr &operator=(const Ptr &) = delete;

  /// The current value.  Caller must be pinned (Guard) or a worker of
  /// the retiring domain for the full lifetime of the returned pointer.
  T *load() const { return P.load(std::memory_order_acquire); }

  /// Publishes \p New and retires the previous value into \p D.
  void publish(T *New, Domain &D = domain()) {
    T *Old = P.exchange(New, std::memory_order_seq_cst);
    if (Old)
      retireObject(Old, D);
  }

  /// Swaps without retiring (single-threaded setup/move paths only).
  T *exchange(T *New) {
    return P.exchange(New, std::memory_order_seq_cst);
  }

private:
  std::atomic<T *> P{nullptr};
};

} // namespace epoch
} // namespace dsu

#endif // DSU_EPOCH_EPOCH_H
