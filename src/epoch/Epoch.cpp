//===- epoch/Epoch.cpp ----------------------------------------*- C++ -*-===//

#include "epoch/Epoch.h"

#include <algorithm>
#include <unordered_map>

using namespace dsu;
using namespace dsu::epoch;

namespace {

/// The default-domain thread epoch and worker flag.  File-local: every
/// access goes through the accessor functions below, so no cross-TU
/// TLS wrapper is ever emitted.
thread_local uint64_t TLEpoch = 0;
thread_local bool TLIsWorker = false;

} // namespace

uint64_t dsu::epoch::threadPinnedEpoch() { return TLEpoch; }
bool dsu::epoch::onWorkerThread() { return TLIsWorker; }

namespace {

/// Registry of live domains (address -> identity), consulted by
/// thread-exit cleanup so a thread that outlives a (test-local) Domain
/// does not touch freed memory; the identity check additionally defeats
/// address reuse.  Intentionally leaked: still reachable at exit, so it
/// never races static destruction and LSan does not flag it.
std::mutex &liveDomainsMu() {
  static std::mutex *M = new std::mutex;
  return *M;
}
std::unordered_map<Domain *, uint64_t> &liveDomains() {
  static auto *S = new std::unordered_map<Domain *, uint64_t>;
  return *S;
}

uint64_t nextDomainId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

namespace dsu {
namespace epoch {

/// Per-thread cache of this thread's guard slot in each domain it has
/// pinned.  The destructor (thread exit) returns the slots to domains
/// that still exist.
struct ThreadSlotCacheAccess {
  struct Entry {
    Domain *D;
    uint64_t Id; ///< the domain's identity when the slot was cached
    Domain::Slot *S;
  };
  std::vector<Entry> Entries;

  /// Matches on address AND identity; a stale entry for a dead domain
  /// whose address was reused is evicted, never returned.
  Domain::Slot *find(const Domain *D, uint64_t Id) {
    for (size_t I = 0; I != Entries.size(); ++I) {
      if (Entries[I].D != D)
        continue;
      if (Entries[I].Id == Id)
        return Entries[I].S;
      Entries.erase(Entries.begin() + static_cast<ptrdiff_t>(I));
      return nullptr;
    }
    return nullptr;
  }

  ~ThreadSlotCacheAccess() {
    std::lock_guard<std::mutex> G(liveDomainsMu());
    for (const Entry &E : Entries) {
      auto It = liveDomains().find(E.D);
      if (It == liveDomains().end() || It->second != E.Id)
        continue; // domain died (or was replaced at the same address)
      std::lock_guard<std::mutex> L(E.D->Mu);
      E.D->releaseSlotLocked(E.S);
    }
  }
};

} // namespace epoch
} // namespace dsu

namespace {
thread_local ThreadSlotCacheAccess TLGuardSlots;
} // namespace

// --- Domain lifecycle ----------------------------------------------------

Domain::Domain() : Id(nextDomainId()) {
  std::lock_guard<std::mutex> G(liveDomainsMu());
  liveDomains().emplace(this, Id);
}

Domain::~Domain() {
  {
    std::lock_guard<std::mutex> G(liveDomainsMu());
    liveDomains().erase(this);
  }
  drain();
}

Domain &dsu::epoch::domain() {
  static Domain D;
  return D;
}

// --- Slot management -----------------------------------------------------

Domain::Slot *Domain::allocSlotLocked() {
  if (FreeSlots) {
    Slot *S = FreeSlots;
    FreeSlots = S->NextFree;
    S->NextFree = nullptr;
    S->Active = true;
    S->Worker = false;
    S->PinDepth = 0;
    S->Observed.store(kIdle, std::memory_order_relaxed);
    return S;
  }
  Slots.push_back(std::make_unique<Slot>());
  Slot *S = Slots.back().get();
  S->Active = true;
  return S;
}

void Domain::releaseSlotLocked(Slot *S) {
  S->Active = false;
  S->Worker = false;
  S->Observed.store(kIdle, std::memory_order_relaxed);
  S->NextFree = FreeSlots;
  FreeSlots = S;
}

Domain::Slot *Domain::registerWorker() {
  std::lock_guard<std::mutex> G(Mu);
  Slot *S = allocSlotLocked();
  S->Worker = true;
  S->Observed.store(Global.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return S;
}

void Domain::deregisterWorker(Slot *S) {
  std::vector<Retired> Expired;
  {
    std::lock_guard<std::mutex> G(Mu);
    releaseSlotLocked(S);
    // This worker may have been the one holding a grace period open.
    collectExpiredLocked(Expired);
  }
  runDeleters(Expired);
}

uint64_t Domain::quiesce(Slot *S) {
  uint64_t G = Global.load(std::memory_order_acquire);
  // Release: every payload read of the *finished* iteration is ordered
  // before this announcement, so a reclaimer that acquires it (the min
  // scan) frees only after those reads completed.
  S->Observed.store(G, std::memory_order_release);
  // And order the announcement before any pointer load of the *next*
  // serving iteration, against a concurrent retirer's scan (Dekker
  // pairing with the fence in collectExpiredLocked).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (LimboCount.load(std::memory_order_relaxed))
    tryReclaim();
  return G;
}

// --- Guard pinning -------------------------------------------------------

Domain::Slot *Domain::pinThread() {
  Slot *S = TLGuardSlots.find(this, Id);
  if (!S) {
    {
      std::lock_guard<std::mutex> G(Mu);
      S = allocSlotLocked();
    }
    TLGuardSlots.Entries.push_back({this, Id, S});
  }
  if (S->PinDepth++ == 0) {
    uint64_t G = Global.load(std::memory_order_acquire);
    S->Observed.store(G, std::memory_order_relaxed);
    // The pin must be visible to any reclaimer before we load protected
    // pointers (pairs with the fence in tryReclaim).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    S->PinnedEpoch = G;
  }
  return S;
}

void Domain::unpinThread(Slot *S) {
  if (--S->PinDepth != 0)
    return;
  S->Observed.store(kIdle, std::memory_order_release);
  if (LimboCount.load(std::memory_order_relaxed))
    tryReclaim();
}

// --- The epoch clock -----------------------------------------------------

uint64_t Domain::advanceWith(void (*Install)(uint64_t, void *), void *Ctx) {
  uint64_t E;
  {
    std::lock_guard<std::mutex> G(Mu);
    E = Global.load(std::memory_order_relaxed) + 1;
    if (Install)
      Install(E, Ctx);
    // Publish only after the installation: a reader sampling E is
    // guaranteed (release->acquire on Global) to see everything Install
    // wrote; a reader still on an older sample sees epoch < E.
    Global.store(E, std::memory_order_release);
  }
  return E;
}

// --- Deferred reclamation ------------------------------------------------

void Domain::retire(void *P, void (*Del)(void *)) {
  std::vector<Retired> Expired;
  {
    std::lock_guard<std::mutex> G(Mu);
    uint64_t Tag = Global.load(std::memory_order_relaxed);
    Limbo.push_back(Retired{P, Del, Tag});
    // Advance the clock so this grace period can complete as soon as
    // every participant quiesces once more — no ticker thread needed.
    Global.store(Tag + 1, std::memory_order_release);
    // Reap anything already graced in the same critical section — a
    // second blocking acquisition per retire would serialize unrelated
    // writers twice on this one mutex.  Deleters run outside the lock.
    collectExpiredLocked(Expired);
  }
  Retires.fetch_add(1, std::memory_order_relaxed);
  runDeleters(Expired);
}

uint64_t Domain::minObservedLocked() const {
  uint64_t Min = kIdle;
  for (const std::unique_ptr<Slot> &S : Slots) {
    if (!S->Active)
      continue;
    // Acquire pairs with the release announcement in quiesce()/unpin:
    // a free justified by this value happens-after every payload read
    // the announcing thread performed before it.
    uint64_t O = S->Observed.load(std::memory_order_acquire);
    if (O < Min)
      Min = O;
  }
  return Min;
}

uint64_t Domain::minObservedEpoch() const {
  std::lock_guard<std::mutex> G(Mu);
  return minObservedLocked();
}

void Domain::collectExpiredLocked(std::vector<Retired> &Out) {
  if (Limbo.empty())
    return;
  // Order the participant scan after any published unlink this thread
  // races with (pairs with the pin/quiesce fences).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  uint64_t Min = minObservedLocked();
  // A retired object tagged E was unlinked while the epoch was E; any
  // reader that could have obtained it announced an epoch <= E.  Free
  // once every participant has moved strictly past the tag.
  while (!Limbo.empty() && Limbo.front().Epoch < Min) {
    Out.push_back(Limbo.front());
    Limbo.pop_front();
  }
  LimboCount.store(Limbo.size(), std::memory_order_relaxed);
}

void Domain::runDeleters(std::vector<Retired> &Batch) {
  for (Retired &R : Batch)
    if (R.Del)
      R.Del(R.P);
  Reclaims.fetch_add(Batch.size(), std::memory_order_relaxed);
}

size_t Domain::tryReclaim() {
  std::vector<Retired> Expired;
  {
    std::unique_lock<std::mutex> G(Mu, std::try_to_lock);
    if (!G.owns_lock())
      return 0;
    collectExpiredLocked(Expired);
  }
  size_t N = Expired.size();
  runDeleters(Expired);
  return N;
}

size_t Domain::reclaim() {
  std::vector<Retired> Expired;
  {
    std::lock_guard<std::mutex> G(Mu);
    collectExpiredLocked(Expired);
  }
  size_t N = Expired.size();
  runDeleters(Expired);
  return N;
}

void Domain::drain() {
  std::vector<Retired> All;
  {
    std::lock_guard<std::mutex> G(Mu);
    All.assign(Limbo.begin(), Limbo.end());
    Limbo.clear();
    LimboCount.store(0, std::memory_order_relaxed);
  }
  runDeleters(All);
}

// --- WorkerReg -----------------------------------------------------------

WorkerReg::WorkerReg(Domain &D)
    : D(D), S(D.registerWorker()), IsDefault(&D == &domain()) {
  if (IsDefault) {
    TLIsWorker = true;
    TLEpoch = D.slotEpoch(S);
  }
}

WorkerReg::~WorkerReg() {
  D.deregisterWorker(S);
  if (IsDefault) {
    TLIsWorker = false;
    TLEpoch = 0;
  }
}

uint64_t WorkerReg::quiesce() {
  uint64_t G = D.quiesce(S);
  if (IsDefault)
    TLEpoch = G;
  return G;
}

// --- Guard ---------------------------------------------------------------

Guard::Guard(Domain &Dom) {
  bool IsDefault = &Dom == &domain();
  if (IsDefault && TLIsWorker)
    return; // the worker's own announcement cell already protects us
  D = &Dom;
  S = Dom.pinThread();
  if (IsDefault) {
    SavedTL = TLEpoch;
    TLEpoch = S->PinnedEpoch;
    RestoreTL = true;
  }
}

Guard::~Guard() {
  if (!D)
    return;
  if (RestoreTL)
    TLEpoch = SavedTL;
  D->unpinThread(S);
}
