//===- persist/Replay.cpp -------------------------------------*- C++ -*-===//

#include "persist/Replay.h"

#include "core/Runtime.h"
#include "support/FaultInject.h"
#include "support/Logging.h"
#include "support/Timer.h"

using namespace dsu;
using namespace dsu::persist;

ReplayStats persist::replayJournal(Runtime &RT, UpdateJournal &J) {
  ReplayStats Stats;
  Timer Total;
  std::vector<ChainEntry> Chain = J.committedChain();

  for (const ChainEntry &E : Chain) {
    ++Stats.Attempted;
    auto Failed = [&](const Error &Err) {
      ++Stats.Failed;
      Stats.FailedIds.push_back(E.PatchId);
      DSU_LOG_WARN("replay: chain entry %s (%s) not reapplied: %s",
                   E.PatchId.c_str(), E.Hash.c_str(), Err.str().c_str());
    };

    Expected<std::string> Text = J.readArtifact(E.Hash);
    if (!Text) {
      // No replay Intent exists yet, so seal nothing; the operator
      // intent stays Committed and the next boot retries.
      Failed(Text.error());
      continue;
    }

    // Two-phase, same as a live update: the replay Intent is on disk
    // before the pipeline runs, so a crash anywhere below is sealed
    // Crashed at the next boot and counted against the hash.
    Expected<uint64_t> Seq =
        J.appendIntent(E.PatchId, *Text, IntentOrigin::Replay);
    if (!Seq) {
      Failed(Seq.error());
      continue;
    }
    faultinject::maybeCrash(faultinject::CrashPoint::MidReplay, E.PatchId);

    Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), *Text,
                                      "journal:" + E.Hash);
    if (!P) {
      Error Err = P.takeError().withContext("replaying " + E.PatchId);
      (void)J.appendSeal(*Seq, SealOutcome::RolledBack, "", Err.str());
      Failed(Err);
      continue;
    }

    // stageJournaled pins the Intent's sequence number on the
    // transaction before staging begins, so Runtime::finalize seals
    // this Intent whatever the outcome — stage failure, commit
    // failure, or Committed.
    Expected<StagedUpdate> U = RT.stageJournaled(std::move(*P), *Seq);
    if (!U) {
      Failed(U.error()); // finalize already sealed RolledBack
      continue;
    }
    if (Error CE = U->commit()) {
      Failed(CE); // finalize already sealed RolledBack
      continue;
    }
    ++Stats.Committed;
  }

  Stats.DurationMs = static_cast<uint64_t>(Total.elapsedMs());
  J.noteReplay(Stats.Attempted, Stats.Committed, Stats.Failed,
               Stats.DurationMs);
  if (Stats.Attempted)
    DSU_LOG_INFO("replay: %u/%u chain entries reapplied in %llums%s",
                 Stats.Committed, Stats.Attempted,
                 static_cast<unsigned long long>(Stats.DurationMs),
                 Stats.Failed ? " (failures sealed rolled-back)" : "");
  return Stats;
}
