//===- persist/Journal.h - Durable update journal -------------*- C++ -*-===//
///
/// \file
/// Crash-safe persistence for the update chain.  In the PLDI 2001 system
/// a long-running service accretes its identity from the patches applied
/// to it; here that identity survives the process: every patch artifact
/// is content-addressed into a store directory and every update attempt
/// is recorded in an append-only, checksummed, fsync'd journal with
/// two-phase records:
///
///   Intent  — written (and synced) *before* Runtime::stage sees the
///             patch; names the artifact by content hash and carries the
///             attempt number.
///   Seal    — written after the outcome is known, referencing the
///             Intent by sequence number: Committed, RolledBack (stage/
///             commit failure, abort, watchdog timeout, or a canary
///             rollout verdict), Crashed (sealed at the *next* boot when
///             an Intent is found with no seal — the process died
///             mid-update), or Quarantined (crash-loop containment).
///
/// Boot-time recovery derives the committed patch chain (operator
/// intents whose latest seal is Committed, minus quarantined hashes) for
/// replay through the ordinary stage->commit pipeline, and seals every
/// unsealed Intent as Crashed.  A hash whose consecutive-Crashed streak
/// reaches QuarantineAfter is sealed Quarantined: it is dropped from the
/// replay chain and refused at staging, so a patch that kills the
/// process is contained instead of crash-looped.
///
/// Torn tails are expected, not fatal: records are length-prefixed and
/// FNV-64 checksummed, the scan stops at the first record that fails to
/// frame or verify, and the torn tail is truncated on reopen.
///
/// Single-writer discipline is enforced with an flock'd pidfile
/// (journal.lock): a second live process opening the same directory is
/// refused with EC_IO instead of interleaving appends.
///
/// Layering: this file depends only on support/ — the runtime attaches a
/// journal via an opaque pointer and persist/Replay.h (which does know
/// the runtime) drives boot-time replay.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PERSIST_JOURNAL_H
#define DSU_PERSIST_JOURNAL_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace dsu {
namespace persist {

/// On-disk record kinds.  Values are stable (they are written to disk);
/// append only.
enum class RecordKind : uint32_t {
  BootStart = 1,     ///< a process opened the journal and began recovery
  Intent = 2,        ///< a patch is about to enter the staging pipeline
  Seal = 3,          ///< outcome for one Intent (by sequence number)
  CleanShutdown = 4, ///< the process drained and exited deliberately
};

/// Who wrote an Intent: the operator control plane, or boot-time replay
/// re-applying the committed chain.  Replay intents carry crash
/// accounting (a patch that kills every boot crashes *during replay*)
/// but never extend the chain themselves.
enum class IntentOrigin : uint32_t { Operator = 0, Replay = 1 };

/// Seal outcomes.  Values are stable on disk.
enum class SealOutcome : uint32_t {
  Committed = 0,   ///< the update landed (bindings swung, state migrated)
  RolledBack = 1,  ///< rejected, aborted, timed out, or canary-reverted
  Quarantined = 2, ///< crash-loop containment: excluded from the chain
  Crashed = 3,     ///< sealed at the next boot: died between Intent and Seal
};

const char *recordKindName(RecordKind K);
const char *sealOutcomeName(SealOutcome O);
const char *intentOriginName(IntentOrigin O);

/// One journal record, decoded.  Fields beyond Kind/Seq/WallMs are
/// meaningful per kind (see the writers in Journal.cpp).
struct JournalRecord {
  RecordKind Kind = RecordKind::Intent;
  uint64_t Seq = 0;    ///< monotonically increasing, 1-based
  uint64_t WallMs = 0; ///< wall-clock milliseconds since the Unix epoch

  // BootStart
  std::string PrevExit; ///< supervisor-reported exit of the previous run

  // Intent
  std::string PatchId;
  std::string Hash; ///< 16-hex-digit artifact fingerprint (store key)
  IntentOrigin Origin = IntentOrigin::Operator;
  uint32_t Attempt = 1;   ///< 1 + consecutive-Crashed streak at write time
  uint64_t SizeBytes = 0; ///< artifact size

  // Seal
  uint64_t IntentSeq = 0; ///< the Intent this seals
  SealOutcome Outcome = SealOutcome::RolledBack;
  std::string CommitMode; ///< "rolling" / "barrier" / "canary" (when known)
  std::string Reason;     ///< failure/crash reason, empty on success
  std::string Verdict;    ///< rollout verdict ("promoted"/"rolled-back")
};

/// One entry of the committed chain, in commit (= journal) order.
struct ChainEntry {
  uint64_t IntentSeq = 0;
  std::string PatchId;
  std::string Hash;
};

/// A quarantined artifact, for the admin surface.
struct QuarantineInfo {
  std::string PatchId;
  std::string Hash;
  uint32_t CrashCount = 0; ///< consecutive crashes that tripped the policy
  uint64_t SealSeq = 0;    ///< the Quarantined seal's sequence number
};

/// What beginBoot() found and did.
struct BootInfo {
  uint64_t Boots = 0;      ///< BootStart records including this one
  bool PrevCrashed = false;///< previous run ended without CleanShutdown
  unsigned CrashSealed = 0;///< unsealed intents sealed Crashed now
  std::vector<std::string> NewlyQuarantined; ///< patch ids tripped now
};

/// Aggregate status for /admin/status and GET /admin/journal.
struct JournalStatus {
  uint64_t Boots = 0;
  bool PrevCrashed = false;
  uint64_t Records = 0;
  uint64_t ChainLength = 0;
  uint64_t QuarantinedCount = 0;
  unsigned ReplayAttempted = 0;
  unsigned ReplayCommitted = 0;
  unsigned ReplayFailed = 0;
  uint64_t ReplayMs = 0;
};

/// The durable update journal: one directory holding
///
///   journal.log    the append-only record log
///   journal.lock   flock'd pidfile (single-writer enforcement)
///   store/<hash>.dsup   content-addressed patch artifacts
///
/// All methods are thread-safe: Intents are appended from the staging
/// worker, Seals from whichever thread finalizes a transaction (commit
/// thread, staging worker, or the rollout controller), and the admin
/// plane snapshots concurrently.
class UpdateJournal {
public:
  struct Options {
    /// Consecutive crashes (of one artifact hash) before quarantine.
    unsigned QuarantineAfter = 3;
    /// Synchronize appends to stable storage (fdatasync).  On by
    /// default; benches may disable it to measure the fsync cost.
    bool Sync = true;
  };

  /// Opens (creating if needed) the journal directory, acquires the
  /// single-writer lock, scans the log — truncating a torn tail — and
  /// rebuilds the in-memory index.  EC_IO when the directory is locked
  /// by a live process or cannot be created; torn/corrupt tails are
  /// recovered, not errors.
  static Expected<std::unique_ptr<UpdateJournal>> open(const std::string &Dir,
                                                       Options Opts);
  static Expected<std::unique_ptr<UpdateJournal>> open(const std::string &Dir) {
    return open(Dir, Options());
  }

  ~UpdateJournal();
  UpdateJournal(const UpdateJournal &) = delete;
  UpdateJournal &operator=(const UpdateJournal &) = delete;

  /// Boot-time recovery: seals every unsealed Intent as Crashed (with
  /// \p PrevExit woven into the reason), applies the quarantine policy
  /// to the resulting streaks, and appends this boot's BootStart.  Call
  /// exactly once, before replay and before the listeners open.
  BootInfo beginBoot(const std::string &PrevExit);

  /// Phase one of an update: content-addresses \p ArtifactText into the
  /// store and appends (+syncs) the Intent.  Returns the Intent's
  /// sequence number — the handle every later Seal references.
  /// EC_Invalid when the artifact's hash is quarantined.
  Expected<uint64_t> appendIntent(const std::string &PatchId,
                                  const std::string &ArtifactText,
                                  IntentOrigin Origin);

  /// Phase two: seals \p IntentSeq with \p Outcome.  A later seal for
  /// the same Intent supersedes an earlier one (a canary rollout
  /// commits, then may roll back).
  Error appendSeal(uint64_t IntentSeq, SealOutcome Outcome,
                   const std::string &CommitMode, const std::string &Reason,
                   const std::string &Verdict = std::string());

  /// Marks a deliberate exit, so the next boot can tell a clean stop
  /// from a crash.
  Error sealCleanShutdown();

  /// True when \p Hash tripped the crash-loop policy.
  bool isQuarantined(const std::string &Hash) const;

  /// The committed chain (operator intents whose latest seal is
  /// Committed, quarantined hashes excluded), in commit order.
  std::vector<ChainEntry> committedChain() const;

  /// Reads one content-addressed artifact back from the store and
  /// verifies its fingerprint (EC_Corrupt on mismatch).
  Expected<std::string> readArtifact(const std::string &Hash) const;

  /// Snapshot of every record (decoded), for GET /admin/journal and the
  /// dsu-updatectl history command.
  std::vector<JournalRecord> records() const;

  /// Quarantined artifacts, for GET /admin/journal?quarantined=1.
  std::vector<QuarantineInfo> quarantined() const;

  /// Aggregate counters for /admin/status.
  JournalStatus status() const;

  /// Boot-time replay reports its outcome here so the admin plane can
  /// surface it (persist/Replay.cpp calls this; tests read status()).
  void noteReplay(unsigned Attempted, unsigned Committed, unsigned Failed,
                  uint64_t DurationMs);

  const std::string &dir() const { return Dir; }
  unsigned quarantineAfter() const { return Opts.QuarantineAfter; }

  /// The artifact content hash used as the store key and the quarantine
  /// identity: the 16-hex-digit FNV-1a fingerprint of the artifact text.
  static std::string artifactHash(const std::string &ArtifactText);

private:
  UpdateJournal(std::string Dir, Options Opts);

  /// Scans journal.log, truncating a torn tail; called from open().
  Error recover();

  /// Serializes one record, appends it (length + payload + checksum)
  /// and syncs.  Lock held by caller.
  Error appendLocked(JournalRecord &R);

  /// Applies \p R to the in-memory index.  Lock held by caller (or
  /// during single-threaded recovery).
  void indexRecord(const JournalRecord &R);

  /// Consecutive-Crashed streak for \p Hash (reset by Committed).
  uint32_t crashStreak(const std::string &Hash) const;

  std::string Dir;
  Options Opts;
  int LogFd = -1;
  int LockFd = -1;

  mutable std::mutex Mu;
  std::vector<JournalRecord> All; ///< every decoded record, in order
  uint64_t NextSeq = 1;
  std::map<uint64_t, size_t> IntentIndex;  ///< Intent seq -> index in All
  std::map<uint64_t, size_t> LatestSeal;   ///< Intent seq -> seal index
  std::set<std::string> Quarantined;       ///< hashes
  uint64_t Boots = 0;
  bool PrevCrashed = false;
  bool BootBegun = false;
  unsigned ReplayAttempted = 0, ReplayCommitted = 0, ReplayFailed = 0;
  uint64_t ReplayMs = 0;
};

} // namespace persist
} // namespace dsu

#endif // DSU_PERSIST_JOURNAL_H
