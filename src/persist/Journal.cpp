//===- persist/Journal.cpp ------------------------------------*- C++ -*-===//

#include "persist/Journal.h"

#include "support/Hashing.h"
#include "support/Logging.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "support/Timer.h"
#include "trace/Trace.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::persist;

const char *persist::recordKindName(RecordKind K) {
  switch (K) {
  case RecordKind::BootStart:
    return "boot-start";
  case RecordKind::Intent:
    return "intent";
  case RecordKind::Seal:
    return "seal";
  case RecordKind::CleanShutdown:
    return "clean-shutdown";
  }
  return "unknown";
}

const char *persist::sealOutcomeName(SealOutcome O) {
  switch (O) {
  case SealOutcome::Committed:
    return "committed";
  case SealOutcome::RolledBack:
    return "rolled-back";
  case SealOutcome::Quarantined:
    return "quarantined";
  case SealOutcome::Crashed:
    return "crashed";
  }
  return "unknown";
}

const char *persist::intentOriginName(IntentOrigin O) {
  return O == IntentOrigin::Replay ? "replay" : "operator";
}

// --- Low-level helpers ---------------------------------------------------

namespace {

uint64_t wallMsNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void putU32(std::string &Out, uint32_t V) {
  char Buf[4];
  std::memcpy(Buf, &V, 4);
  Out.append(Buf, 4);
}

void putU64(std::string &Out, uint64_t V) {
  char Buf[8];
  std::memcpy(Buf, &V, 8);
  Out.append(Buf, 8);
}

void putStr(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

/// Bounds-checked reader over a decoded payload.  Every get* returns
/// false once the payload is exhausted or malformed; the caller treats
/// that as a torn record.
struct Reader {
  const char *P;
  size_t Left;

  bool getU32(uint32_t &V) {
    if (Left < 4)
      return false;
    std::memcpy(&V, P, 4);
    P += 4;
    Left -= 4;
    return true;
  }
  bool getU64(uint64_t &V) {
    if (Left < 8)
      return false;
    std::memcpy(&V, P, 8);
    P += 8;
    Left -= 8;
    return true;
  }
  bool getStr(std::string &S) {
    uint32_t N;
    if (!getU32(N) || Left < N)
      return false;
    S.assign(P, N);
    P += N;
    Left -= N;
    return true;
  }
};

/// Serializes the kind-specific payload of \p R (after Kind/Seq/WallMs).
std::string encodePayload(const JournalRecord &R) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(R.Kind));
  putU64(Out, R.Seq);
  putU64(Out, R.WallMs);
  switch (R.Kind) {
  case RecordKind::BootStart:
    putStr(Out, R.PrevExit);
    break;
  case RecordKind::Intent:
    putStr(Out, R.PatchId);
    putStr(Out, R.Hash);
    putU32(Out, static_cast<uint32_t>(R.Origin));
    putU32(Out, R.Attempt);
    putU64(Out, R.SizeBytes);
    break;
  case RecordKind::Seal:
    putU64(Out, R.IntentSeq);
    putU32(Out, static_cast<uint32_t>(R.Outcome));
    putStr(Out, R.CommitMode);
    putStr(Out, R.Reason);
    putStr(Out, R.Verdict);
    break;
  case RecordKind::CleanShutdown:
    break;
  }
  return Out;
}

/// Decodes one payload into \p R.  False on any framing violation.
bool decodePayload(const char *Data, size_t Size, JournalRecord &R) {
  Reader Rd{Data, Size};
  uint32_t Kind;
  if (!Rd.getU32(Kind) || !Rd.getU64(R.Seq) || !Rd.getU64(R.WallMs))
    return false;
  switch (static_cast<RecordKind>(Kind)) {
  case RecordKind::BootStart:
    R.Kind = RecordKind::BootStart;
    return Rd.getStr(R.PrevExit);
  case RecordKind::Intent: {
    R.Kind = RecordKind::Intent;
    uint32_t Origin;
    if (!Rd.getStr(R.PatchId) || !Rd.getStr(R.Hash) || !Rd.getU32(Origin) ||
        !Rd.getU32(R.Attempt) || !Rd.getU64(R.SizeBytes))
      return false;
    if (Origin > static_cast<uint32_t>(IntentOrigin::Replay))
      return false;
    R.Origin = static_cast<IntentOrigin>(Origin);
    return true;
  }
  case RecordKind::Seal: {
    R.Kind = RecordKind::Seal;
    uint32_t Outcome;
    if (!Rd.getU64(R.IntentSeq) || !Rd.getU32(Outcome) ||
        !Rd.getStr(R.CommitMode) || !Rd.getStr(R.Reason) ||
        !Rd.getStr(R.Verdict))
      return false;
    if (Outcome > static_cast<uint32_t>(SealOutcome::Crashed))
      return false;
    R.Outcome = static_cast<SealOutcome>(Outcome);
    return true;
  }
  case RecordKind::CleanShutdown:
    R.Kind = RecordKind::CleanShutdown;
    return true;
  }
  return false;
}

Error writeFull(int Fd, const char *Data, size_t Size) {
  while (Size) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::make(ErrorCode::EC_IO, "journal write failed: %s",
                         std::strerror(errno));
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return Error::success();
}

Error makeDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST)
    return Error::success();
  return Error::make(ErrorCode::EC_IO, "cannot create directory '%s': %s",
                     Path.c_str(), std::strerror(errno));
}

void syncDir(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

// --- Open / recovery -----------------------------------------------------

UpdateJournal::UpdateJournal(std::string Dir, Options Opts)
    : Dir(std::move(Dir)), Opts(Opts) {}

UpdateJournal::~UpdateJournal() {
  if (LogFd >= 0)
    ::close(LogFd);
  if (LockFd >= 0)
    ::close(LockFd); // releases the flock
}

std::string UpdateJournal::artifactHash(const std::string &ArtifactText) {
  return Fingerprint().addString(ArtifactText).hex();
}

Expected<std::unique_ptr<UpdateJournal>>
UpdateJournal::open(const std::string &Dir, Options Opts) {
  if (Error E = makeDir(Dir))
    return E;
  if (Error E = makeDir(Dir + "/store"))
    return E;

  std::unique_ptr<UpdateJournal> J(new UpdateJournal(Dir, Opts));

  // Single-writer enforcement: an flock'd pidfile.  A second live
  // process is refused up front — two instances interleaving appends
  // would corrupt the log's framing.
  std::string LockPath = Dir + "/journal.lock";
  J->LockFd = ::open(LockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (J->LockFd < 0)
    return Error::make(ErrorCode::EC_IO, "cannot open '%s': %s",
                       LockPath.c_str(), std::strerror(errno));
  if (::flock(J->LockFd, LOCK_EX | LOCK_NB) != 0) {
    char Pid[32] = {0};
    ssize_t N = ::pread(J->LockFd, Pid, sizeof(Pid) - 1, 0);
    if (N > 0 && Pid[N - 1] == '\n')
      Pid[N - 1] = 0;
    return Error::make(
        ErrorCode::EC_IO,
        "update journal '%s' is locked by live process %s; refusing to "
        "start a second instance against the same journal directory",
        Dir.c_str(), N > 0 ? Pid : "(unknown)");
  }
  // Pidfile content is advisory (the flock is the authority), so write
  // failures here are not fatal.
  std::string Pid = formatString("%ld\n", static_cast<long>(::getpid()));
  if (::ftruncate(J->LockFd, 0) == 0)
    (void)writeFull(J->LockFd, Pid.data(), Pid.size());

  J->LogFd = ::open((Dir + "/journal.log").c_str(),
                    O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (J->LogFd < 0)
    return Error::make(ErrorCode::EC_IO, "cannot open '%s/journal.log': %s",
                       Dir.c_str(), std::strerror(errno));
  syncDir(Dir);

  if (Error E = J->recover())
    return E;
  return std::move(J);
}

Error UpdateJournal::recover() {
  struct stat St;
  if (::fstat(LogFd, &St) != 0)
    return Error::make(ErrorCode::EC_IO, "fstat on journal.log failed: %s",
                       std::strerror(errno));
  std::string Buf(static_cast<size_t>(St.st_size), '\0');
  size_t Got = 0;
  while (Got < Buf.size()) {
    ssize_t N = ::pread(LogFd, &Buf[Got], Buf.size() - Got,
                        static_cast<off_t>(Got));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Got += static_cast<size_t>(N);
  }
  Buf.resize(Got);

  // Scan frames: u32 payload-length | payload | u64 FNV-64(payload).
  // The scan stops at the first record that fails to frame, decode, or
  // verify — everything after a torn write is unreachable by design —
  // and the torn tail is truncated so the next append starts clean.
  size_t Off = 0;
  bool CleanSinceBoot = true;
  while (Buf.size() - Off >= 4) {
    uint32_t Len;
    std::memcpy(&Len, Buf.data() + Off, 4);
    if (Len == 0 || Len > (1u << 28) || Buf.size() - Off - 4 < Len + 8u)
      break; // torn or truncated frame
    const char *Payload = Buf.data() + Off + 4;
    uint64_t Want;
    std::memcpy(&Want, Payload + Len, 8);
    if (Fingerprint().addBytes(Payload, Len).value() != Want)
      break; // checksum mismatch: torn write or bit rot
    JournalRecord R;
    if (!decodePayload(Payload, Len, R))
      break;
    if (R.Seq < NextSeq)
      break; // sequence went backwards: treat as corruption
    indexRecord(R);
    NextSeq = R.Seq + 1;
    if (R.Kind == RecordKind::BootStart)
      CleanSinceBoot = false;
    else if (R.Kind == RecordKind::CleanShutdown)
      CleanSinceBoot = true;
    All.push_back(std::move(R));
    Off += 4 + Len + 8;
  }
  if (Off < Buf.size()) {
    DSU_LOG_WARN("journal '%s': truncating torn tail (%zu of %zu bytes "
                 "valid)",
                 Dir.c_str(), Off, Buf.size());
    if (::ftruncate(LogFd, static_cast<off_t>(Off)) != 0)
      return Error::make(ErrorCode::EC_IO,
                         "cannot truncate torn journal tail: %s",
                         std::strerror(errno));
  }
  PrevCrashed = Boots > 0 && !CleanSinceBoot;
  return Error::success();
}

void UpdateJournal::indexRecord(const JournalRecord &R) {
  switch (R.Kind) {
  case RecordKind::BootStart:
    ++Boots;
    break;
  case RecordKind::Intent:
    IntentIndex[R.Seq] = All.size();
    break;
  case RecordKind::Seal:
    LatestSeal[R.IntentSeq] = All.size();
    if (R.Outcome == SealOutcome::Quarantined) {
      auto It = IntentIndex.find(R.IntentSeq);
      if (It != IntentIndex.end())
        Quarantined.insert(All[It->second].Hash);
    }
    break;
  case RecordKind::CleanShutdown:
    break;
  }
}

uint32_t UpdateJournal::crashStreak(const std::string &Hash) const {
  // Consecutive-Crashed streak for one artifact, in seal order: a
  // Committed seal proves the patch can land and resets the count; a
  // RolledBack seal is a deterministic rejection, not a crash, and
  // leaves the streak alone.
  uint32_t Streak = 0;
  for (const JournalRecord &R : All) {
    if (R.Kind != RecordKind::Seal)
      continue;
    auto It = IntentIndex.find(R.IntentSeq);
    if (It == IntentIndex.end() || All[It->second].Hash != Hash)
      continue;
    if (R.Outcome == SealOutcome::Crashed)
      ++Streak;
    else if (R.Outcome == SealOutcome::Committed)
      Streak = 0;
  }
  return Streak;
}

// --- Appending -----------------------------------------------------------

Error UpdateJournal::appendLocked(JournalRecord &R) {
  R.Seq = NextSeq;
  R.WallMs = wallMsNow();
  std::string Payload = encodePayload(R);
  std::string Frame;
  Frame.reserve(Payload.size() + 12);
  putU32(Frame, static_cast<uint32_t>(Payload.size()));
  Frame.append(Payload);
  putU64(Frame, Fingerprint().addBytes(Payload.data(), Payload.size()).value());
  if (Error E = writeFull(LogFd, Frame.data(), Frame.size()))
    return E;
  if (Opts.Sync && ::fdatasync(LogFd) != 0)
    return Error::make(ErrorCode::EC_IO, "journal fdatasync failed: %s",
                       std::strerror(errno));
  ++NextSeq;
  indexRecord(R);
  All.push_back(R);
  return Error::success();
}

BootInfo UpdateJournal::beginBoot(const std::string &PrevExit) {
  std::lock_guard<std::mutex> G(Mu);
  BootInfo Info;
  Info.PrevCrashed = PrevCrashed;

  // Seal every Intent the previous run left open.  If that run ended
  // cleanly the patch simply never reached its commit point (staged but
  // not committed at shutdown): seal RolledBack, no crash accounting.
  // Otherwise the process died between Intent and Seal: seal Crashed,
  // weaving in the supervisor-reported exit status, and apply the
  // quarantine policy to the resulting streak.
  if (!BootBegun) {
    std::vector<uint64_t> Unsealed;
    for (const auto &KV : IntentIndex)
      if (!LatestSeal.count(KV.first))
        Unsealed.push_back(KV.first);
    for (uint64_t Seq : Unsealed) {
      const JournalRecord Intent = All[IntentIndex[Seq]];
      JournalRecord S;
      S.Kind = RecordKind::Seal;
      S.IntentSeq = Seq;
      if (!PrevCrashed) {
        S.Outcome = SealOutcome::RolledBack;
        S.Reason = "process shut down cleanly before the commit point";
      } else {
        S.Outcome = SealOutcome::Crashed;
        S.Reason = formatString(
            "process died between intent and seal (attempt %u%s%s)",
            Intent.Attempt, PrevExit.empty() ? "" : "; previous run: ",
            PrevExit.c_str());
        ++Info.CrashSealed;
      }
      (void)appendLocked(S);
      if (S.Outcome == SealOutcome::Crashed &&
          !Quarantined.count(Intent.Hash) &&
          crashStreak(Intent.Hash) >= Opts.QuarantineAfter) {
        JournalRecord Q;
        Q.Kind = RecordKind::Seal;
        Q.IntentSeq = Seq;
        Q.Outcome = SealOutcome::Quarantined;
        Q.Reason = formatString(
            "crash-loop quarantine: artifact %s crashed %u consecutive "
            "boot(s); excluded from the replay chain and refused at "
            "staging",
            Intent.Hash.c_str(), crashStreak(Intent.Hash));
        (void)appendLocked(Q);
        Info.NewlyQuarantined.push_back(Intent.PatchId);
        DSU_LOG_WARN("journal: %s", Q.Reason.c_str());
      }
    }

    JournalRecord B;
    B.Kind = RecordKind::BootStart;
    B.PrevExit = PrevExit;
    (void)appendLocked(B);
    BootBegun = true;
  }
  Info.Boots = Boots;
  return Info;
}

Expected<uint64_t> UpdateJournal::appendIntent(const std::string &PatchId,
                                               const std::string &ArtifactText,
                                               IntentOrigin Origin) {
  // The span covers the artifact-store fsync plus the framed append +
  // fdatasync — the durable-write cost on the staging path.
  trace::Span Sp("journal", "intent", ArtifactText.size());
  Timer T;
  std::string Hash = artifactHash(ArtifactText);
  std::lock_guard<std::mutex> G(Mu);
  if (Quarantined.count(Hash))
    return Error::make(
        ErrorCode::EC_Invalid,
        "patch %s refused: artifact %s is quarantined (crashed the "
        "process on %u consecutive boot(s))",
        PatchId.c_str(), Hash.c_str(), Opts.QuarantineAfter);

  // Content-address the artifact before the Intent: an Intent must
  // never name an artifact replay cannot read back.  Write-to-temp +
  // rename keeps a crashed writer from leaving a half-written store
  // entry under the final name.
  std::string Final = Dir + "/store/" + Hash + ".dsup";
  if (::access(Final.c_str(), F_OK) != 0) {
    std::string Tmp = Dir + "/store/.tmp." + Hash +
                      formatString(".%ld", static_cast<long>(::getpid()));
    int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (Fd < 0)
      return Error::make(ErrorCode::EC_IO, "cannot write artifact '%s': %s",
                         Tmp.c_str(), std::strerror(errno));
    Error WE = writeFull(Fd, ArtifactText.data(), ArtifactText.size());
    if (!WE && Opts.Sync && ::fsync(Fd) != 0)
      WE = Error::make(ErrorCode::EC_IO, "artifact fsync failed: %s",
                       std::strerror(errno));
    ::close(Fd);
    if (WE)
      return WE;
    if (::rename(Tmp.c_str(), Final.c_str()) != 0)
      return Error::make(ErrorCode::EC_IO,
                         "cannot publish artifact '%s': %s", Final.c_str(),
                         std::strerror(errno));
    if (Opts.Sync)
      syncDir(Dir + "/store");
  }

  JournalRecord R;
  R.Kind = RecordKind::Intent;
  R.PatchId = PatchId;
  R.Hash = Hash;
  R.Origin = Origin;
  R.Attempt = crashStreak(Hash) + 1;
  R.SizeBytes = ArtifactText.size();
  if (Error E = appendLocked(R))
    return E;
  trace::notePhase(trace::Phase::JournalIntent, T.elapsedNs() / 1000);
  return R.Seq;
}

Error UpdateJournal::appendSeal(uint64_t IntentSeq, SealOutcome Outcome,
                                const std::string &CommitMode,
                                const std::string &Reason,
                                const std::string &Verdict) {
  trace::Span Sp("journal", "seal", IntentSeq);
  Timer T;
  std::lock_guard<std::mutex> G(Mu);
  if (!IntentIndex.count(IntentSeq))
    return Error::make(ErrorCode::EC_Invalid,
                       "seal references unknown intent %llu",
                       static_cast<unsigned long long>(IntentSeq));
  JournalRecord R;
  R.Kind = RecordKind::Seal;
  R.IntentSeq = IntentSeq;
  R.Outcome = Outcome;
  R.CommitMode = CommitMode;
  R.Reason = Reason;
  R.Verdict = Verdict;
  Error E = appendLocked(R);
  if (!E)
    trace::notePhase(trace::Phase::JournalSeal, T.elapsedNs() / 1000);
  return E;
}

Error UpdateJournal::sealCleanShutdown() {
  std::lock_guard<std::mutex> G(Mu);
  JournalRecord R;
  R.Kind = RecordKind::CleanShutdown;
  return appendLocked(R);
}

// --- Queries -------------------------------------------------------------

bool UpdateJournal::isQuarantined(const std::string &Hash) const {
  std::lock_guard<std::mutex> G(Mu);
  return Quarantined.count(Hash) != 0;
}

std::vector<ChainEntry> UpdateJournal::committedChain() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<ChainEntry> Chain;
  for (const JournalRecord &R : All) {
    if (R.Kind != RecordKind::Intent || R.Origin != IntentOrigin::Operator)
      continue;
    auto SealIt = LatestSeal.find(R.Seq);
    if (SealIt == LatestSeal.end())
      continue;
    if (All[SealIt->second].Outcome != SealOutcome::Committed)
      continue;
    if (Quarantined.count(R.Hash))
      continue;
    Chain.push_back(ChainEntry{R.Seq, R.PatchId, R.Hash});
  }
  return Chain;
}

Expected<std::string> UpdateJournal::readArtifact(const std::string &Hash) const {
  Expected<std::string> Text = readFile(Dir + "/store/" + Hash + ".dsup");
  if (!Text)
    return Text;
  if (artifactHash(*Text) != Hash)
    return Error::make(ErrorCode::EC_Corrupt,
                       "store artifact %s fails its fingerprint check "
                       "(content does not hash to its name)",
                       Hash.c_str());
  return Text;
}

std::vector<JournalRecord> UpdateJournal::records() const {
  std::lock_guard<std::mutex> G(Mu);
  return All;
}

std::vector<QuarantineInfo> UpdateJournal::quarantined() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<QuarantineInfo> Out;
  for (const JournalRecord &R : All) {
    if (R.Kind != RecordKind::Seal || R.Outcome != SealOutcome::Quarantined)
      continue;
    auto It = IntentIndex.find(R.IntentSeq);
    if (It == IntentIndex.end())
      continue;
    const JournalRecord &Intent = All[It->second];
    // One entry per hash: the first Quarantined seal wins.
    bool Seen = false;
    for (const QuarantineInfo &Q : Out)
      Seen |= Q.Hash == Intent.Hash;
    if (Seen)
      continue;
    QuarantineInfo Q;
    Q.PatchId = Intent.PatchId;
    Q.Hash = Intent.Hash;
    Q.CrashCount = Intent.Attempt;
    Q.SealSeq = R.Seq;
    Out.push_back(std::move(Q));
  }
  return Out;
}

JournalStatus UpdateJournal::status() const {
  std::lock_guard<std::mutex> G(Mu);
  JournalStatus S;
  S.Boots = Boots;
  S.PrevCrashed = PrevCrashed;
  S.Records = All.size();
  S.QuarantinedCount = Quarantined.size();
  for (const JournalRecord &R : All) {
    if (R.Kind != RecordKind::Intent || R.Origin != IntentOrigin::Operator)
      continue;
    auto SealIt = LatestSeal.find(R.Seq);
    if (SealIt != LatestSeal.end() &&
        All[SealIt->second].Outcome == SealOutcome::Committed &&
        !Quarantined.count(R.Hash))
      ++S.ChainLength;
  }
  S.ReplayAttempted = ReplayAttempted;
  S.ReplayCommitted = ReplayCommitted;
  S.ReplayFailed = ReplayFailed;
  S.ReplayMs = ReplayMs;
  return S;
}

void UpdateJournal::noteReplay(unsigned Attempted, unsigned Committed,
                               unsigned Failed, uint64_t DurationMs) {
  std::lock_guard<std::mutex> G(Mu);
  ReplayAttempted = Attempted;
  ReplayCommitted = Committed;
  ReplayFailed = Failed;
  ReplayMs = DurationMs;
}
