//===- persist/Replay.h - Boot-time chain replay --------------*- C++ -*-===//
///
/// \file
/// Reconstructs a runtime's committed patch chain from the durable
/// journal at boot, before the reactor pool opens its listeners: each
/// chain entry's artifact is read back from the content-addressed store
/// (fingerprint-verified), re-parsed, and driven through the *ordinary*
/// stage->commit pipeline — replay is not a privileged restore path, so
/// every verification, link-preparation and state-build invariant holds
/// for replayed patches exactly as it did when they first landed.
///
/// Replay writes its own journal Intents (origin = replay) before each
/// commit.  That is what makes crash-loop containment work: a patch that
/// kills the process *during replay* leaves an unsealed replay Intent,
/// the next boot seals it Crashed, and after QuarantineAfter consecutive
/// crashes the hash is quarantined and dropped from the chain — the
/// server comes up healthy on the last-good prefix.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PERSIST_REPLAY_H
#define DSU_PERSIST_REPLAY_H

#include "persist/Journal.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {

class Runtime;

namespace persist {

/// Outcome of one boot-time replay pass.
struct ReplayStats {
  unsigned Attempted = 0; ///< chain entries driven through the pipeline
  unsigned Committed = 0; ///< entries that landed again
  unsigned Failed = 0;    ///< entries rejected (sealed RolledBack)
  uint64_t DurationMs = 0;
  std::vector<std::string> FailedIds;
};

/// Replays \p J's committed chain into \p RT on the calling thread
/// (which must be the update thread, quiescent, with no pool serving
/// yet).  \p J must already be attached to \p RT (Runtime::attachJournal)
/// so stage/commit outcomes seal their replay Intents, and beginBoot()
/// must have run so the chain excludes freshly quarantined hashes.
/// Individual entry failures are sealed and counted, not fatal: the
/// server always comes up, on the longest chain prefix that still
/// applies.  The stats are also recorded on the journal for the admin
/// plane (UpdateJournal::noteReplay).
ReplayStats replayJournal(Runtime &RT, UpdateJournal &J);

} // namespace persist
} // namespace dsu

#endif // DSU_PERSIST_REPLAY_H
