//===- analysis/Finding.h - Patch-analyzer findings -----------*- C++ -*-===//
///
/// \file
/// The finding vocabulary of the whole-patch update-safety analyzer.
///
/// A Finding is one defect (or observation) the static analysis produced
/// about a patch, classified by severity:
///
///   Error:   the patch will be refused dynamically, or is guaranteed to
///            misbehave once committed (must-trap, fuel exhaustion,
///            missing transformer for live state).  Staging refuses the
///            update with EC_Analysis before any journal Intent is
///            written.
///   Warning: suspicious but not provably fatal (unreachable code, a
///            code-only misprediction).  Recorded on the UpdateRecord
///            and surfaced by `dsu-updatectl log` / GET /admin/lint.
///   Info:    an observation operators may care about (an identical
///            shadowing provide, a no-op type redefinition).
///
/// Finding codes are stable kebab-case strings — the machine-readable
/// contract of `dsu-patchlint --json` and the lint test corpus.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_ANALYSIS_FINDING_H
#define DSU_ANALYSIS_FINDING_H

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {
namespace analysis {

enum class Severity : uint8_t {
  Info,
  Warning,
  Error,
};

/// Returns "info", "warning" or "error".
const char *severityName(Severity S);

/// One analyzer finding.
struct Finding {
  Severity Sev = Severity::Info;
  /// Stable kebab-case code ("missing-transformer", "must-trap", ...).
  std::string Code;
  /// Human-readable explanation with names and versions spelled out.
  std::string Message;
  /// The VTAL function the finding anchors to; empty for patch-level
  /// findings (type diffs, link audits).
  std::string Fn;
  /// Instruction pc within Fn; valid only when HasPC.
  uint32_t PC = 0;
  bool HasPC = false;
};

/// The whole-patch analysis result.
struct AnalysisReport {
  std::vector<Finding> Findings;

  /// Statically predicted commit classification: true when the patch
  /// should commit code-only (rolling, no barrier).  Runtime::stageInto
  /// cross-checks this against the actual UpdateTransaction::CodeOnly
  /// classification and reports a mismatch as a finding.
  bool CodeOnlyPredicted = false;

  /// Wall time the analysis passes took (filled by the caller's timer).
  double AnalysisMs = 0;

  size_t errorCount() const {
    size_t N = 0;
    for (const Finding &F : Findings)
      N += F.Sev == Severity::Error;
    return N;
  }
  size_t warningCount() const {
    size_t N = 0;
    for (const Finding &F : Findings)
      N += F.Sev == Severity::Warning;
    return N;
  }
  const Finding *firstError() const {
    for (const Finding &F : Findings)
      if (F.Sev == Severity::Error)
        return &F;
    return nullptr;
  }
};

} // namespace analysis
} // namespace dsu

#endif // DSU_ANALYSIS_FINDING_H
