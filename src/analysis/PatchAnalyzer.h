//===- analysis/PatchAnalyzer.h - Whole-patch static analysis -*- C++ -*-===//
///
/// \file
/// The whole-patch update-safety analyzer.  Where the VTAL verifier
/// proves each module well-typed in isolation, analyzePatch() checks the
/// *patch* against the *live program*: the staging pipeline runs it
/// between manifest parse and link-prepare, and `dsu-patchlint` runs it
/// standalone over artifacts in CI.
///
/// Passes (details in DESIGN.md §15):
///
///   1. Cross-version type diff: every changed named type needs a
///      reachable transformer chain; every declared transformer's
///      from/to versions must exist (coverage + orphan detection).
///   2. Classification prediction: code-only vs state-migrating,
///      computed from manifest + live registries, so the runtime can
///      cross-check the barrier decision instead of being surprised.
///   3. VTAL abstract interpretation: a bounded constant-propagation
///      pass flags guaranteed traps on must-execute paths (div-by-zero,
///      out-of-range ordinal calls), unreachable code, and counted
///      loops whose trip count exhausts the interpreter's fuel budget
///      ("fuel bombs" — the shape PR 6 only catches via the stall gate).
///   4. Import/provide signature audit against the live SymbolTable and
///      updateable registry, including provides that shadow an existing
///      host export under a different type.
///
/// The analyzer never mutates anything: it reads registries that the
/// staging pipeline is about to write, so it must run *before* stage 2
/// (type/transformer definitions) to see the pre-patch world.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_ANALYSIS_PATCHANALYZER_H
#define DSU_ANALYSIS_PATCHANALYZER_H

#include "analysis/Finding.h"

#include <cstdint>

namespace dsu {

class TypeContext;
class TransformerRegistry;
class SymbolTable;
class UpdateableRegistry;
class StateRegistry;
struct Patch;

namespace analysis {

/// The live program state the analyzer reads.  Deliberately not a
/// Runtime&: `dsu-patchlint` assembles one of these from a scratch
/// runtime (or an empty environment) without pulling in the commit
/// plane.
struct AnalyzerEnv {
  TypeContext &Types;
  const TransformerRegistry &Transformers;
  const SymbolTable &Exports;
  const UpdateableRegistry &Updateables;
  StateRegistry &State;
};

/// Runs every pass over \p P against \p Env.  Read-only with respect to
/// the environment (type interning aside, which is append-only and
/// idempotent).  \p FuelBudget is the interpreter budget the fuel-bomb
/// pass compares loop trip counts against; 0 selects the interpreter's
/// default (64M instructions).
///
/// The report's AnalysisMs is NOT filled here — callers time the call
/// (the staging pipeline charges it to the update record).
AnalysisReport analyzePatch(const Patch &P, const AnalyzerEnv &Env,
                            uint64_t FuelBudget = 0);

} // namespace analysis
} // namespace dsu

#endif // DSU_ANALYSIS_PATCHANALYZER_H
