//===- analysis/PatchAnalyzer.cpp -----------------------------*- C++ -*-===//
///
/// \file
/// Implementation of the whole-patch update-safety analyzer.
///
/// Design constraints that shape the code below:
///
///  * The analyzer may run *before* the VTAL verifier (the staging
///    worker lints a freshly parsed artifact before journalling its
///    Intent), so every module walk bounds-checks indices instead of
///    assuming verifier invariants.
///
///  * It must not duplicate verifier judgements.  A malformed branch
///    target or unknown callee is the verifier's finding (EC_Verify);
///    the analyzer silently abandons the affected path so existing
///    error-code expectations stay intact.
///
///  * Severity Error is reserved for defects with an inevitable bad
///    dynamic outcome: staging would refuse anyway (missing
///    transformer — see expandBump() in state/Transform.cpp, which
///    fails up front for any declared bump lacking a chain), or the
///    committed code is guaranteed to trap (const div-by-zero on the
///    entry path, a loop whose trip count exceeds the interpreter's
///    fuel budget).
///
//===----------------------------------------------------------------------===//

#include "analysis/PatchAnalyzer.h"

#include "link/SymbolTable.h"
#include "patch/Patch.h"
#include "runtime/UpdateableRegistry.h"
#include "state/Transform.h"
#include "support/StringUtil.h"
#include "types/Compat.h"
#include "vtal/Module.h"
#include "vtal/Resolve.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

using namespace dsu;
using namespace dsu::analysis;
using vtal::Function;
using vtal::Instruction;
using vtal::Module;
using vtal::Opcode;
using vtal::ValKind;

const char *analysis::severityName(Severity S) {
  switch (S) {
  case Severity::Info:
    return "info";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "info";
}

namespace {

/// Mirrors vtal::DefaultFuel (Interp.cpp): the budget a function gets
/// per invocation, and therefore the bound a statically known trip
/// count must stay under.
constexpr uint64_t DefaultFuelBudget = 64ull << 20;

void add(AnalysisReport &R, Severity Sev, const char *Code,
         std::string Msg) {
  Finding F;
  F.Sev = Sev;
  F.Code = Code;
  F.Message = std::move(Msg);
  R.Findings.push_back(std::move(F));
}

void addFn(AnalysisReport &R, Severity Sev, const char *Code,
           const std::string &Fn, uint32_t PC, std::string Msg) {
  Finding F;
  F.Sev = Sev;
  F.Code = Code;
  F.Message = std::move(Msg);
  F.Fn = Fn;
  F.PC = PC;
  F.HasPC = true;
  R.Findings.push_back(std::move(F));
}

/// True when a transformer for \p B is available once the patch is
/// staged: registered live, or shipped by the patch itself.
bool hasTransformer(const Patch &P, const AnalyzerEnv &Env,
                    const VersionBump &B) {
  if (Env.Transformers.has(B))
    return true;
  for (const PatchTransformer &T : P.Transformers)
    if (T.Bump == B)
      return true;
  return false;
}

/// The analyzer's copy of the expandBump() judgement: a direct
/// transformer, or the complete chain of single-version steps.
bool hasTransformerChain(const Patch &P, const AnalyzerEnv &Env,
                         const VersionBump &B) {
  if (hasTransformer(P, Env, B))
    return true;
  if (B.To.Version <= B.From.Version)
    return false;
  for (uint32_t V = B.From.Version; V != B.To.Version; ++V) {
    VersionBump Step{VersionedName{B.From.Name, V},
                     VersionedName{B.From.Name, V + 1}};
    if (!hasTransformer(P, Env, Step))
      return false;
  }
  return true;
}

void pushBump(std::vector<VersionBump> &Bumps, const VersionBump &B) {
  if (std::find(Bumps.begin(), Bumps.end(), B) == Bumps.end())
    Bumps.push_back(B);
}

/// Pass 1a: diff each new-types declaration against the live context,
/// collecting the version bumps staging will declare (mirrors the
/// stage-2 loop of Runtime::stageInto, simulated against the pre-patch
/// context so earlier declarations in the same patch are visible to
/// later ones).
void diffNewTypes(const Patch &P, const AnalyzerEnv &Env, AnalysisReport &R,
                  std::vector<VersionBump> &DeclaredBumps) {
  std::map<std::string, uint32_t> SimLatest;
  auto Latest = [&](const std::string &Name) {
    uint32_t Live = Env.Types.latestVersion(Name);
    auto It = SimLatest.find(Name);
    return It == SimLatest.end() ? Live : std::max(Live, It->second);
  };

  for (const PatchTypeDef &TD : P.NewTypes) {
    if (!TD.Repr)
      continue;
    if (const Type *Existing = Env.Types.lookupDefinition(TD.Name)) {
      if (typesEqual(Existing, TD.Repr))
        add(R, Severity::Info, "no-repr-change",
            formatString("type %s is redeclared with its existing "
                         "representation %s; the declaration is a no-op",
                         TD.Name.str().c_str(), Existing->str().c_str()));
      else
        add(R, Severity::Error, "type-redefinition",
            formatString(
                "type %s is already defined as %s; definitions are "
                "immutable — a new representation (%s) needs a version bump",
                TD.Name.str().c_str(), Existing->str().c_str(),
                TD.Repr->str().c_str()));
      continue;
    }
    uint32_t Prev = Latest(TD.Name.Name);
    if (Prev > 0 && Prev < TD.Name.Version)
      pushBump(DeclaredBumps,
               VersionBump{VersionedName{TD.Name.Name, Prev}, TD.Name});
    SimLatest[TD.Name.Name] = std::max(Latest(TD.Name.Name), TD.Name.Version);
  }
}

/// Pass 1b: every declared transformer must connect two versions that
/// actually exist (defined live, or declared by this patch).
void auditTransformers(const Patch &P, const AnalyzerEnv &Env,
                       AnalysisReport &R) {
  auto Defined = [&](const VersionedName &N) {
    if (Env.Types.lookupDefinition(N))
      return true;
    for (const PatchTypeDef &TD : P.NewTypes)
      if (TD.Name == N)
        return true;
    return false;
  };
  for (const PatchTransformer &T : P.Transformers) {
    if (!Defined(T.Bump.From))
      add(R, Severity::Error, "orphan-transformer",
          formatString("transformer %s -> %s: source version %s is defined "
                       "neither by the running program nor by this patch",
                       T.Bump.From.str().c_str(), T.Bump.To.str().c_str(),
                       T.Bump.From.str().c_str()));
    else if (!Defined(T.Bump.To))
      add(R, Severity::Error, "orphan-transformer",
          formatString("transformer %s -> %s: target version %s is defined "
                       "neither by the running program nor by this patch",
                       T.Bump.From.str().c_str(), T.Bump.To.str().c_str(),
                       T.Bump.To.str().c_str()));
  }
}

/// Pass 2: predict the bumps link-prepare will require, check the
/// provides against the live slots, and classify code-only vs
/// state-migrating the way stageInto will.
void predictClassification(const Patch &P, const AnalyzerEnv &Env,
                           AnalysisReport &R,
                           std::vector<VersionBump> &AllBumps) {
  for (const ProvideRequest &Pr : P.Unit.Provides) {
    const UpdateableSlot *Slot = Env.Updateables.lookup(Pr.Name);
    if (!Slot || !Pr.Ty)
      continue;
    ReplaceCheck RC = checkReplacement(Slot->type(), Pr.Ty);
    if (!RC.ok()) {
      add(R, Severity::Error, "incompatible-replacement",
          formatString("provide '%s' cannot replace the live definition: %s",
                       Pr.Name.c_str(), RC.Reason.c_str()));
      continue;
    }
    for (const VersionBump &B : RC.Bumps)
      pushBump(AllBumps, B);
  }

  R.CodeOnlyPredicted = AllBumps.empty() && P.Transformers.empty();

  for (const VersionBump &B : AllBumps)
    if (!hasTransformerChain(P, Env, B))
      add(R, Severity::Error, "missing-transformer",
          formatString(
              "type %s changes representation (%s -> %s) but neither the "
              "program nor the patch supplies a transformer (or a chain of "
              "single-version steps) for the bump; staging will refuse it",
              B.From.Name.c_str(), B.From.str().c_str(), B.To.str().c_str()));
}

/// Pass 4: import/provide signature audit against the live export
/// table.  Imports are also checked by the loader and the linker, but
/// the analyzer sees in-memory patches those paths skip, and gives the
/// finding a stable code the lint surfaces key on.
void auditLink(const Patch &P, const AnalyzerEnv &Env, AnalysisReport &R) {
  for (const ImportRequest &I : P.Unit.Imports) {
    const SymbolDef *D = Env.Exports.lookup(I.Name);
    if (!D) {
      add(R, Severity::Error, "unresolved-import",
          formatString("import '%s' is not exported by the running program",
                       I.Name.c_str()));
      continue;
    }
    if (I.Ty && D->Ty && !typesEqual(D->Ty, I.Ty))
      add(R, Severity::Error, "import-type-mismatch",
          formatString("import '%s' is declared %s but the program exports "
                       "it as %s",
                       I.Name.c_str(), I.Ty->str().c_str(),
                       D->Ty->str().c_str()));
  }

  // A provide that *defines* (no live slot) but reuses a host export's
  // name splits the namespace: future VTAL imports of that name keep
  // resolving to the host export while updateable dispatch finds the
  // patch definition.  Identical types make that benign (worth noting);
  // differing types make the split observable.
  for (const ProvideRequest &Pr : P.Unit.Provides) {
    if (Env.Updateables.lookup(Pr.Name))
      continue;
    const SymbolDef *D = Env.Exports.lookup(Pr.Name);
    if (!D)
      continue;
    if (Pr.Ty && D->Ty && typesEqual(D->Ty, Pr.Ty))
      add(R, Severity::Info, "shadowing-provide",
          formatString("provide '%s' shadows the host export of the same "
                       "name (identical type %s)",
                       Pr.Name.c_str(), Pr.Ty->str().c_str()));
    else
      add(R, Severity::Error, "shadowing-provide",
          formatString(
              "provide '%s' shadows the host export of the same name under "
              "a different type (%s vs exported %s); importers of '%s' "
              "would silently split between the two bindings",
              Pr.Name.c_str(), Pr.Ty ? Pr.Ty->str().c_str() : "<untyped>",
              D->Ty ? D->Ty->str().c_str() : "<untyped>", Pr.Name.c_str()));
  }
}

//===----------------------------------------------------------------------===//
// Pass 3: VTAL abstract interpretation
//===----------------------------------------------------------------------===//

/// An abstract scalar: a known 64-bit constant (ints and bools share
/// the lattice; bools are 0/1) or Unknown.
struct AbsVal {
  bool Known = false;
  int64_t V = 0;
};

/// Per-function working storage, hoisted to the module walk and reused
/// across functions: the analyzer runs inline in the staging pipeline
/// with a < 10%-of-verify-time budget, and per-function heap churn was
/// the dominant cost.
struct Scratch {
  std::vector<char> Reach;
  std::vector<uint32_t> Work;
  std::vector<uint32_t> BackEdges;
  std::vector<AbsVal> Stack;
  std::vector<AbsVal> Locals;
  std::vector<uint8_t> Visits;
};

/// Reachability over the instruction graph; fills \p S.Reach.  Chases
/// fall-through edges directly (the common case) and only spills branch
/// targets to the worklist.  Out-of-range branch targets terminate
/// their path silently (the verifier owns that diagnostic).
void reachableSet(const Function &F, Scratch &S) {
  size_t N = F.Code.size();
  S.Reach.assign(N, 0);
  S.Work.clear();
  uint32_t PC = 0;
  while (true) {
    if (PC >= N || S.Reach[PC]) {
      if (S.Work.empty())
        break;
      PC = S.Work.back();
      S.Work.pop_back();
      continue;
    }
    S.Reach[PC] = 1;
    const Instruction &I = F.Code[PC];
    switch (I.Op) {
    case Opcode::Br:
      PC = I.Index;
      break;
    case Opcode::BrIf:
      S.Work.push_back(I.Index);
      ++PC;
      break;
    case Opcode::Ret:
      PC = static_cast<uint32_t>(N);
      break;
    default:
      ++PC;
      break;
    }
  }
}

/// Bounded constant propagation down the must-execute path from entry.
/// Follows only forced control flow (unconditional branches, BrIf on a
/// known condition); stops at the first join with unknown state.  A
/// Div/Rem whose divisor is the constant 0 on this path is a guaranteed
/// trap on every invocation.
void findMustTraps(const Module &M, const Function &F, Scratch &S,
                   AnalysisReport &R) {
  size_t N = F.Code.size();
  std::vector<AbsVal> &Stack = S.Stack;
  std::vector<AbsVal> &Locals = S.Locals;
  std::vector<uint8_t> &Visits = S.Visits;
  Stack.clear();
  Locals.assign(F.Locals.size(), AbsVal{});
  Visits.assign(N, 0);
  size_t Steps = 0;
  uint32_t PC = 0;

  auto Pop = [&]() -> std::optional<AbsVal> {
    if (Stack.empty())
      return std::nullopt;
    AbsVal V = Stack.back();
    Stack.pop_back();
    return V;
  };
  // Wrapping arithmetic through uint64_t: the interpreter's semantics,
  // and no UB in the analyzer on overflowing constants.
  auto Wrap = [](uint64_t X) { return static_cast<int64_t>(X); };

  while (PC < N && Steps++ < 4096) {
    if (Visits[PC]++ > 64)
      return; // const-condition loop; the fuel pass owns that shape
    const Instruction &I = F.Code[PC];
    switch (I.Op) {
    case Opcode::PushI:
    case Opcode::PushB:
      Stack.push_back(AbsVal{true, I.IntOp});
      ++PC;
      break;
    case Opcode::PushF:
    case Opcode::PushS:
      Stack.push_back(AbsVal{});
      ++PC;
      break;
    case Opcode::Load: {
      if (I.Index >= Locals.size())
        return;
      Stack.push_back(Locals[I.Index]);
      ++PC;
      break;
    }
    case Opcode::Store: {
      std::optional<AbsVal> V = Pop();
      if (!V || I.Index >= Locals.size())
        return;
      Locals[I.Index] = *V;
      ++PC;
      break;
    }
    case Opcode::Pop:
      if (!Pop())
        return;
      ++PC;
      break;
    case Opcode::Dup:
      if (Stack.empty())
        return;
      Stack.push_back(Stack.back());
      ++PC;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      std::optional<AbsVal> B = Pop(), A = Pop();
      if (!B || !A)
        return;
      AbsVal Res;
      if (A->Known && B->Known) {
        uint64_t X = static_cast<uint64_t>(A->V), Y = static_cast<uint64_t>(B->V);
        Res.Known = true;
        Res.V = Wrap(I.Op == Opcode::Add   ? X + Y
                     : I.Op == Opcode::Sub ? X - Y
                                           : X * Y);
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::Div:
    case Opcode::Rem: {
      std::optional<AbsVal> B = Pop(), A = Pop();
      if (!B || !A)
        return;
      if (B->Known && B->V == 0) {
        addFn(R, Severity::Error, "must-trap", F.Name, PC,
              formatString("%s by a constant zero divisor on the "
                           "must-execute path from entry: every invocation "
                           "of '%s' traps [%s]",
                           I.Op == Opcode::Div ? "division" : "remainder",
                           F.Name.c_str(), I.str().c_str()));
        return;
      }
      AbsVal Res;
      if (A->Known && B->Known && B->V != 0 &&
          !(A->V == INT64_MIN && B->V == -1)) {
        Res.Known = true;
        Res.V = I.Op == Opcode::Div ? A->V / B->V : A->V % B->V;
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::Neg: {
      std::optional<AbsVal> A = Pop();
      if (!A)
        return;
      AbsVal Res;
      if (A->Known) {
        Res.Known = true;
        Res.V = Wrap(0 - static_cast<uint64_t>(A->V));
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge: {
      std::optional<AbsVal> B = Pop(), A = Pop();
      if (!B || !A)
        return;
      AbsVal Res;
      if (A->Known && B->Known) {
        Res.Known = true;
        switch (I.Op) {
        case Opcode::Eq: Res.V = A->V == B->V; break;
        case Opcode::Ne: Res.V = A->V != B->V; break;
        case Opcode::Lt: Res.V = A->V < B->V; break;
        case Opcode::Le: Res.V = A->V <= B->V; break;
        case Opcode::Gt: Res.V = A->V > B->V; break;
        default:         Res.V = A->V >= B->V; break;
        }
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::And:
    case Opcode::Or: {
      std::optional<AbsVal> B = Pop(), A = Pop();
      if (!B || !A)
        return;
      AbsVal Res;
      if (A->Known && B->Known) {
        Res.Known = true;
        Res.V = I.Op == Opcode::And ? (A->V && B->V) : (A->V || B->V);
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::Not: {
      std::optional<AbsVal> A = Pop();
      if (!A)
        return;
      AbsVal Res;
      if (A->Known) {
        Res.Known = true;
        Res.V = !A->V;
      }
      Stack.push_back(Res);
      ++PC;
      break;
    }
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FEq:
    case Opcode::FNe:
    case Opcode::FLt:
    case Opcode::FLe:
    case Opcode::FGt:
    case Opcode::FGe:
    case Opcode::SCat:
    case Opcode::SEq:
    case Opcode::SFind: {
      if (!Pop() || !Pop())
        return;
      Stack.push_back(AbsVal{});
      ++PC;
      break;
    }
    case Opcode::FNeg:
    case Opcode::I2F:
    case Opcode::F2I:
    case Opcode::SLen: {
      if (!Pop())
        return;
      Stack.push_back(AbsVal{});
      ++PC;
      break;
    }
    case Opcode::SSub: {
      if (!Pop() || !Pop() || !Pop())
        return;
      Stack.push_back(AbsVal{});
      ++PC;
      break;
    }
    case Opcode::Br:
      PC = I.Index;
      break;
    case Opcode::BrIf: {
      std::optional<AbsVal> C = Pop();
      if (!C || !C->Known)
        return; // data-dependent branch: the must-execute path ends here
      PC = C->V ? I.Index : PC + 1;
      break;
    }
    case Opcode::Ret:
      return;
    case Opcode::Call: {
      const Function *CF = M.findFunction(I.StrOp);
      const vtal::Import *CI = CF ? nullptr : M.findImport(I.StrOp);
      size_t NArgs;
      ValKind Res;
      if (CF) {
        NArgs = CF->Sig.Params.size();
        Res = CF->Sig.Result;
      } else if (CI) {
        NArgs = CI->Sig.Params.size();
        Res = CI->Sig.Result;
      } else {
        return; // unknown callee: the verifier's finding
      }
      if (Stack.size() < NArgs)
        return;
      Stack.resize(Stack.size() - NArgs);
      if (Res != ValKind::VK_Unit)
        Stack.push_back(AbsVal{});
      ++PC;
      break;
    }
    case Opcode::CallFn:
    case Opcode::CallHost:
      return;
    }
  }
}

/// Loop-shape analysis over back edges.  For each back edge [H, B]:
/// no exit from the region means the loop never terminates (with fuel
/// semantics: a guaranteed fuel trap); otherwise the canonical counted
/// loop — constant init before the header, one compare-and-exit, one
/// constant-stride step — yields a trip count to compare against the
/// interpreter's fuel budget.
void findFuelBombs(const Function &F, const std::vector<uint32_t> &BackEdges,
                   uint64_t FuelBudget, AnalysisReport &R) {
  for (uint32_t B : BackEdges) {
    const Instruction &BI = F.Code[B];
    uint32_t H = BI.Index;

    // A conditional back edge falls through out of the region, so only
    // an unconditional one can seal it.
    bool HasExit = BI.Op == Opcode::BrIf;
    for (uint32_t PC = H; PC <= B && !HasExit; ++PC) {
      const Instruction &I = F.Code[PC];
      if (I.Op == Opcode::Ret)
        HasExit = true;
      else if (PC != B && (I.Op == Opcode::Br || I.Op == Opcode::BrIf) &&
               (I.Index < H || I.Index > B))
        HasExit = true;
    }
    if (!HasExit) {
      addFn(R, Severity::Error, "infinite-loop", F.Name, H,
            formatString("loop pc%u..pc%u has no exit — no return and no "
                         "branch out of the region: '%s' exhausts its fuel "
                         "and traps on every invocation",
                         H, B, F.Name.c_str()));
      continue;
    }

    // Counted-loop pattern.  Exit test inside the region:
    //   load L; push.i C; <cmp>; brif <outside>
    uint32_t L = UINT32_MAX;
    int64_t C = 0;
    Opcode Cmp = Opcode::Ret;
    bool HaveExitTest = false;
    for (uint32_t PC = H; PC + 3 <= B && !HaveExitTest; ++PC) {
      const Instruction &I0 = F.Code[PC], &I1 = F.Code[PC + 1],
                        &I2 = F.Code[PC + 2], &I3 = F.Code[PC + 3];
      bool IsCmp = I2.Op == Opcode::Eq || I2.Op == Opcode::Ne ||
                   I2.Op == Opcode::Lt || I2.Op == Opcode::Le ||
                   I2.Op == Opcode::Gt || I2.Op == Opcode::Ge;
      if (I0.Op == Opcode::Load && I1.Op == Opcode::PushI && IsCmp &&
          I3.Op == Opcode::BrIf && (I3.Index < H || I3.Index > B)) {
        L = I0.Index;
        C = I1.IntOp;
        Cmp = I2.Op;
        HaveExitTest = true;
      }
    }
    if (!HaveExitTest)
      continue;

    // Step inside the region: load L; push.i S; add|sub; store L —
    // and it must be the only store to L in the region.
    int64_t Stride = 0;
    bool HaveStep = false, ForeignStore = false;
    for (uint32_t PC = H; PC <= B; ++PC) {
      const Instruction &I = F.Code[PC];
      if (I.Op != Opcode::Store || I.Index != L)
        continue;
      if (PC >= H + 3 && F.Code[PC - 3].Op == Opcode::Load &&
          F.Code[PC - 3].Index == L && F.Code[PC - 2].Op == Opcode::PushI &&
          (F.Code[PC - 1].Op == Opcode::Add ||
           F.Code[PC - 1].Op == Opcode::Sub) &&
          !HaveStep) {
        int64_t S = F.Code[PC - 2].IntOp;
        Stride = F.Code[PC - 1].Op == Opcode::Add ? S : -S;
        HaveStep = true;
      } else {
        ForeignStore = true;
      }
    }
    if (!HaveStep || ForeignStore)
      continue;

    // Init before the header: the last store to L must be push.i C0;
    // store L, with no later store in between.
    bool HaveInit = false;
    int64_t C0 = 0;
    for (uint32_t PC = 0; PC < H; ++PC)
      if (F.Code[PC].Op == Opcode::Store && F.Code[PC].Index == L) {
        HaveInit = PC > 0 && F.Code[PC - 1].Op == Opcode::PushI;
        C0 = HaveInit ? F.Code[PC - 1].IntOp : 0;
      }
    if (!HaveInit)
      continue;

    auto ExitHolds = [&](int64_t V) {
      switch (Cmp) {
      case Opcode::Eq: return V == C;
      case Opcode::Ne: return V != C;
      case Opcode::Lt: return V < C;
      case Opcode::Le: return V <= C;
      case Opcode::Gt: return V > C;
      default:         return V >= C;
      }
    };

    uint64_t RegionLen = B - H + 1;
    if (ExitHolds(C0))
      continue; // exits on the first test
    if (Stride == 0) {
      addFn(R, Severity::Error, "infinite-loop", F.Name, H,
            formatString("counted loop pc%u..pc%u never changes its counter "
                         "(stride 0) and its exit condition is false at the "
                         "initial value %lld",
                         H, B, static_cast<long long>(C0)));
      continue;
    }

    bool Toward;
    switch (Cmp) {
    case Opcode::Lt:
    case Opcode::Le:
      Toward = Stride < 0;
      break;
    case Opcode::Gt:
    case Opcode::Ge:
      Toward = Stride > 0;
      break;
    case Opcode::Eq: {
      __int128 Delta = static_cast<__int128>(C) - C0;
      Toward = (Delta > 0) == (Stride > 0) && Delta % Stride == 0;
      break;
    }
    default: // Ne with C0 == C: one step with a nonzero stride exits
      Toward = true;
      break;
    }
    if (!Toward) {
      addFn(R, Severity::Error, "infinite-loop", F.Name, H,
            formatString("counted loop pc%u..pc%u steps its counter away "
                         "from the exit bound (init %lld, stride %lld, "
                         "bound %lld): it can never terminate",
                         H, B, static_cast<long long>(C0),
                         static_cast<long long>(Stride),
                         static_cast<long long>(C)));
      continue;
    }

    unsigned __int128 Dist =
        C0 > C ? static_cast<unsigned __int128>(static_cast<__int128>(C0) - C)
               : static_cast<unsigned __int128>(static_cast<__int128>(C) - C0);
    unsigned __int128 Mag =
        Stride > 0 ? static_cast<unsigned __int128>(Stride)
                   : static_cast<unsigned __int128>(-static_cast<__int128>(Stride));
    unsigned __int128 Trips = (Dist + Mag - 1) / Mag + 1; // ceil, ± one test
    unsigned __int128 Cost = Trips * RegionLen;
    if (Cost > FuelBudget) {
      addFn(R, Severity::Error, "fuel-exhaustion", F.Name, H,
            formatString(
                "counted loop pc%u..pc%u runs ~%llu iterations of %llu "
                "instructions (~%llu total), exceeding the interpreter fuel "
                "budget of %llu: '%s' is guaranteed to trap",
                H, B, static_cast<unsigned long long>(Trips),
                static_cast<unsigned long long>(RegionLen),
                static_cast<unsigned long long>(Cost),
                static_cast<unsigned long long>(FuelBudget),
                F.Name.c_str()));
    }
  }
}

/// Pass 3 driver over one module.  One pre-scan per function gathers
/// everything the per-pass outer loops would otherwise each rediscover:
/// the unreachable-instruction count (against the reachability set),
/// resolved call forms (with their ordinal range check), whether any
/// division/remainder exists (the only opcodes findMustTraps can
/// report on), and the back-edge positions findFuelBombs works from.
void analyzeModule(const Module &M, uint64_t FuelBudget, AnalysisReport &R) {
  // thread_local so a small patch doesn't pay the scratch allocations
  // on every analyzePatch call; the retained capacity is a few KB.
  static thread_local Scratch S;
  for (const Function &F : M.Functions) {
    if (F.Code.empty())
      continue;

    reachableSet(F, S);
    bool HasResolved = false, HasDiv = false;
    size_t Dead = 0;
    uint32_t FirstDead = 0;
    S.BackEdges.clear();
    for (uint32_t PC = 0; PC != F.Code.size(); ++PC) {
      const Instruction &I = F.Code[PC];
      if (!S.Reach[PC]) {
        if (!Dead)
          FirstDead = PC;
        ++Dead;
      }
      switch (I.Op) {
      case Opcode::Div:
      case Opcode::Rem:
        HasDiv = true;
        break;
      case Opcode::Br:
      case Opcode::BrIf:
        if (I.Index <= PC)
          S.BackEdges.push_back(PC);
        break;
      case Opcode::CallFn:
        // Resolved call forms are not a valid shipping surface; the
        // verifier refuses the module.  The analyzer only checks that
        // the dense ordinals are in range (an out-of-range ordinal
        // would be an out-of-bounds dispatch if it ever executed) and
        // otherwise leaves the function alone.
        HasResolved = true;
        if (I.Index >= M.Functions.size())
          addFn(R, Severity::Error, "bad-ordinal", F.Name, PC,
                formatString("call.fn #%u is out of range: the module has "
                             "%zu functions",
                             I.Index, M.Functions.size()));
        break;
      case Opcode::CallHost:
        HasResolved = true;
        if (I.Index >= M.Imports.size())
          addFn(R, Severity::Error, "bad-ordinal", F.Name, PC,
                formatString("call.host #%u is out of range: the module has "
                             "%zu imports",
                             I.Index, M.Imports.size()));
        break;
      default:
        break;
      }
    }
    if (HasResolved)
      continue;

    if (Dead)
      addFn(R, Severity::Warning, "unreachable-code", F.Name, FirstDead,
            formatString("%zu of %zu instructions are unreachable (first at "
                         "pc%u: %s)",
                         Dead, F.Code.size(), FirstDead,
                         F.Code[FirstDead].str().c_str()));
    if (HasDiv)
      findMustTraps(M, F, S, R);
    findFuelBombs(F, S.BackEdges, FuelBudget, R);
  }
}

#ifndef DSU_VTAL_NO_NATIVE
/// Informational pass for the native tier: names each function the
/// baseline compiler will leave interpreted and why.  Strings are the
/// dominant cause — string values have no raw 8-byte frame encoding, so
/// string-typed locals/params/results pin a function to the interpreter
/// (string *operations* on a string-free frame merely deoptimize the one
/// activation that reaches them).  Purely advisory: interpreted execution
/// is always correct, this only explains the tier column in
/// /admin/profile.
void findNativeUnsupported(const Module &M, AnalysisReport &R) {
  Expected<vtal::ResolvedModule> RM = vtal::linkModule(M);
  if (!RM)
    return; // link problems are auditLink's findings, not ours
  std::vector<bool> Rep = vtal::native::NativeImage::representable(*RM);
  for (size_t I = 0; I != RM->Functions.size(); ++I) {
    if (Rep[I])
      continue;
    const vtal::ResolvedFunction &F = RM->Functions[I];
    std::string Why;
    if (F.Code.empty())
      Why = "it has no body";
    else if (F.Result == ValKind::VK_Str)
      Why = "it returns a string";
    else if (F.NumParams > 64)
      Why = "it takes more than 64 parameters";
    else
      Why = "it has string-typed parameters or locals";
    Finding Fd;
    Fd.Sev = Severity::Info;
    Fd.Code = "native-unsupported";
    Fd.Fn = F.Src ? F.Src->Name : "";
    Fd.Message = formatString(
        "function '%s' stays interpreted under the native tier: %s",
        Fd.Fn.c_str(), Why.c_str());
    R.Findings.push_back(std::move(Fd));
  }
}
#endif

} // namespace

AnalysisReport analysis::analyzePatch(const Patch &P, const AnalyzerEnv &Env,
                                      uint64_t FuelBudget) {
  if (FuelBudget == 0)
    FuelBudget = DefaultFuelBudget;

  AnalysisReport R;

  // Pass 1: cross-version type diff + transformer coverage + orphans.
  std::vector<VersionBump> Bumps;
  diffNewTypes(P, Env, R, Bumps);
  auditTransformers(P, Env, R);

  // Pass 2: classification prediction over declared + required bumps.
  predictClassification(P, Env, R, Bumps);

  // Pass 3: abstract interpretation of the shipped VTAL module.
  if (P.VtalMod) {
    analyzeModule(*P.VtalMod, FuelBudget, R);
#ifndef DSU_VTAL_NO_NATIVE
    // Pass 3b: native-tier coverage (informational).
    findNativeUnsupported(*P.VtalMod, R);
#endif
  }

  // Pass 4: import/provide audit.
  auditLink(P, Env, R);

  return R;
}
