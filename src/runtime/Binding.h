//===- runtime/Binding.h - Immutable code bindings ------------*- C++ -*-===//
///
/// \file
/// A Binding is one immutable version of an updateable function's
/// implementation: a context pointer plus a uniform invoker, with an
/// optional keep-alive handle (the dlopen'd shared object or interpreter
/// instance that owns the code).
///
/// Updateable slots swing an atomic Binding pointer from one version to
/// the next; superseded bindings are retired to the slot's history, never
/// freed while the slot lives, so in-flight calls through an old binding
/// stay valid — the reproduction of the PLDI 2001 rule that old code
/// remains resident and reachable until it is quiescent.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_BINDING_H
#define DSU_RUNTIME_BINDING_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace dsu {

/// One immutable implementation of an updateable function.
struct Binding {
  /// Opaque context passed as the first argument of Invoker.  For a plain
  /// function pointer binding this is the function itself.
  void *Ctx = nullptr;

  /// Type-erased invoker; the typed Updateable<Sig> handle casts this to
  /// R(*)(void *, Args...).
  void *Invoker = nullptr;

  /// Version number of this implementation (1 = original).
  uint32_t Version = 1;

  /// Where the code came from (diagnostics / update log).
  std::string Origin;

  /// Keeps the code's owner alive: a LoadedLibrary for dlopen'd patches,
  /// an interpreter instance for VTAL patches, a closure box for lambdas.
  std::shared_ptr<void> KeepAlive;

  /// Runtime traps observed in this implementation (division by zero,
  /// fuel exhaustion, call-depth overflow in VTAL patch code).  Shared —
  /// bindings are copied through the prepare and rollback paths and all
  /// copies must report one counter; null for native bindings, which
  /// cannot trap.  A rollout's canary health gate reads this: traps
  /// surface to callers as zero values rather than HTTP errors, so the
  /// error-rate gate alone would miss them.
  std::shared_ptr<std::atomic<uint64_t>> Traps;

  /// Raw machine-code entry when this implementation is backed by the
  /// VTAL native tier (vtal/native/), null otherwise — set by the patch
  /// loader when the provide's function was baseline-compiled at link
  /// time.  Introspection only (tier visibility in the update log and
  /// tests): calls always go through Ctx/Invoker, so tier changes never
  /// move the binding identity the updateable slot swings between.  The
  /// code pages stay alive through KeepAlive (the interpreter instance
  /// holds the image; superseded images epoch-retire their pages).
  const void *NativeEntry = nullptr;

  /// Trap count (0 when this binding cannot trap).
  uint64_t trapCount() const {
    return Traps ? Traps->load(std::memory_order_relaxed) : 0;
  }
};

namespace detail {

/// Trampoline adapting a raw function pointer to the uniform
/// (ctx, args...) invoker shape.  The compiler turns this into a tail
/// call, so the steady-state cost of updateability is one atomic pointer
/// load plus one extra indirect jump (measured by bench_indirection, E1).
template <typename R, typename... Args> struct RawFnTrampoline {
  static R invoke(void *Ctx, Args... As) {
    auto Fn = reinterpret_cast<R (*)(Args...)>(Ctx);
    return Fn(static_cast<Args &&>(As)...);
  }
};

/// Heap box adapting an arbitrary callable.
template <typename R, typename... Args> struct ClosureBox {
  std::function<R(Args...)> Fn;

  static R invoke(void *Ctx, Args... As) {
    auto *Box = static_cast<ClosureBox *>(Ctx);
    return Box->Fn(static_cast<Args &&>(As)...);
  }
};

} // namespace detail

/// Builds a binding over a raw function pointer (native code: the program
/// itself or a symbol resolved from a dlopen'd patch object).
template <typename R, typename... Args>
Binding makeRawBinding(R (*Fn)(Args...), uint32_t Version = 1,
                       std::string Origin = "native") {
  Binding B;
  B.Ctx = reinterpret_cast<void *>(Fn);
  B.Invoker =
      reinterpret_cast<void *>(&detail::RawFnTrampoline<R, Args...>::invoke);
  B.Version = Version;
  B.Origin = std::move(Origin);
  return B;
}

/// Builds a binding over an arbitrary callable (used for VTAL-backed
/// implementations, where the callable closes over an Interpreter).
template <typename R, typename... Args, typename Callable>
Binding makeClosureBinding(Callable &&Fn, uint32_t Version = 1,
                           std::string Origin = "closure") {
  auto Box = std::make_shared<detail::ClosureBox<R, Args...>>();
  Box->Fn = std::forward<Callable>(Fn);
  Binding B;
  B.Ctx = Box.get();
  B.Invoker =
      reinterpret_cast<void *>(&detail::ClosureBox<R, Args...>::invoke);
  B.Version = Version;
  B.Origin = std::move(Origin);
  B.KeepAlive = std::move(Box);
  return B;
}

} // namespace dsu

#endif // DSU_RUNTIME_BINDING_H
