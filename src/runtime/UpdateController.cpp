//===- runtime/UpdateController.cpp ---------------------------*- C++ -*-===//

#include "runtime/UpdateController.h"

#include "analysis/PatchAnalyzer.h"
#include "core/Runtime.h"
#include "persist/Journal.h"
#include "support/FaultInject.h"
#include "support/Logging.h"
#include "support/Timer.h"
#include "trace/Trace.h"

using namespace dsu;

UpdateController::UpdateController(Runtime &RT) : RT(RT) {
  Worker = std::thread([this] { workerMain(); });
}

UpdateController::~UpdateController() {
  {
    std::lock_guard<std::mutex> G(Lock);
    Stopping = true;
  }
  CV.notify_all();
  if (Worker.joinable())
    Worker.join();
}

StagedUpdate UpdateController::submit(Job J) {
  // Queue position — and therefore commit order — is fixed here, at
  // submission, not when the worker gets around to staging.
  RT.Queue.enqueue(J.Tx);
  // Cross-thread interval: opened on the submitter (often an admin
  // serving thread), closed when the staging worker picks the job up.
  trace::Recorder::instance().begin("ctl", "backlog", J.Tx->id());
  StagedUpdate Handle(&RT, J.Tx);
  {
    std::lock_guard<std::mutex> G(Lock);
    Jobs.push_back(std::move(J));
  }
  CV.notify_one();
  return Handle;
}

StagedUpdate UpdateController::stagePatch(Patch P) {
  Job J;
  J.Tx = RT.makeTransaction(P.Id);
  J.Kind = Job::InMemory;
  J.P = std::move(P);
  return submit(std::move(J));
}

StagedUpdate UpdateController::stageArtifactText(std::string Text,
                                                 std::string SourceName,
                                                 bool HoldForRollout) {
  Job J;
  J.Tx = RT.makeTransaction("(loading " + SourceName + ")");
  if (HoldForRollout)
    J.Tx->HeldForRollout.store(true, std::memory_order_release);
  J.Kind = Job::Text;
  J.Artifact = std::move(Text);
  J.SourceName = std::move(SourceName);
  return submit(std::move(J));
}

StagedUpdate UpdateController::stageArtifactFile(std::string Path) {
  Job J;
  J.Tx = RT.makeTransaction("(loading " + Path + ")");
  J.Kind = Job::File;
  J.Artifact = std::move(Path);
  return submit(std::move(J));
}

void UpdateController::setOnStaged(std::function<void()> Fn) {
  std::lock_guard<std::mutex> G(Lock);
  OnStaged = std::move(Fn);
}

size_t UpdateController::backlog() const {
  std::lock_guard<std::mutex> G(Lock);
  return Jobs.size() + InFlight;
}

void UpdateController::waitIdle() {
  std::unique_lock<std::mutex> G(Lock);
  IdleCV.wait(G, [this] { return Jobs.empty() && InFlight == 0; });
}

void UpdateController::workerMain() {
  while (true) {
    Job J;
    {
      std::unique_lock<std::mutex> G(Lock);
      CV.wait(G, [this] { return Stopping || !Jobs.empty(); });
      if (Stopping)
        return;
      J = std::move(Jobs.front());
      Jobs.pop_front();
      ++InFlight;
    }

    // Close the submit->pickup interval and key every event the staging
    // worker records below to this transaction.
    trace::Recorder::instance().end("ctl", "backlog", J.Tx->id());
    trace::ScopedUpdateId TraceId(J.Tx->id());

    // A job aborted while it sat in the backlog needs no staging work
    // at all: mark it and move on.
    if (J.Tx->AbortRequested.load(std::memory_order_seq_cst)) {
      UpdatePhase Expect = UpdatePhase::Staging;
      if (J.Tx->Phase.compare_exchange_strong(Expect, UpdatePhase::Aborted,
                                              std::memory_order_acq_rel))
        RT.finalize(*J.Tx, UpdatePhase::Aborted, nullptr);
      std::lock_guard<std::mutex> G(Lock);
      --InFlight;
      IdleCV.notify_all();
      continue;
    }

    // The staging watchdog also covers backlog time: a job whose
    // deadline passed while it queued behind a slow patch is timed out
    // here rather than staged pointlessly.
    if (J.Tx->StageDeadline.time_since_epoch().count() != 0 &&
        std::chrono::steady_clock::now() > J.Tx->StageDeadline) {
      UpdatePhase Expect = UpdatePhase::Staging;
      if (J.Tx->Phase.compare_exchange_strong(Expect, UpdatePhase::TimedOut,
                                              std::memory_order_acq_rel)) {
        Error E = Error::make(
            ErrorCode::EC_Timeout,
            "tx %llu timed out in the staging backlog before work began",
            static_cast<unsigned long long>(J.Tx->id()));
        RT.finalize(*J.Tx, UpdatePhase::TimedOut, &E);
      }
      std::lock_guard<std::mutex> G(Lock);
      --InFlight;
      IdleCV.notify_all();
      continue;
    }

    // Resolve the artifact into a Patch (parse + assemble for text,
    // dlopen for native files) — all off the serving thread.
    trace::Span LoadSp("stage", "artifact.load");
    Error LoadErr;
    switch (J.Kind) {
    case Job::InMemory:
      J.Tx->P = std::move(J.P);
      break;
    case Job::Text: {
      Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(),
                                        J.Artifact, J.SourceName);
      if (P)
        J.Tx->P = std::move(*P);
      else
        LoadErr = P.takeError();
      break;
    }
    case Job::File: {
      Expected<Patch> P =
          loadPatchFile(RT.types(), RT.exports(), J.Artifact);
      if (P)
        J.Tx->P = std::move(*P);
      else
        LoadErr = P.takeError();
      break;
    }
    }
    LoadSp.finish();

    // Whole-patch static analysis, between manifest parse and everything
    // else: the freshly loaded patch is checked against the live
    // type/symbol state.  An error-severity finding refuses the update
    // *here* — before the durable journal writes an Intent — so a patch
    // the analyzer can prove bad never enters crash-recovery replay or
    // the staging pipeline.  Warnings and infos are recorded on the
    // transaction for `dsu-updatectl log` and GET /admin/lint.
    if (!LoadErr && J.Kind == Job::Text) {
      trace::Span AnalysisSp("stage", "analyze");
      Timer AnalysisT;
      analysis::AnalyzerEnv Env{RT.types(), RT.transformers(), RT.exports(),
                                RT.updateables(), RT.state()};
      analysis::AnalysisReport Report = analysis::analyzePatch(J.Tx->P, Env);
      Report.AnalysisMs = AnalysisT.elapsedMs();
      trace::notePhase(trace::Phase::Analysis, AnalysisT.elapsedNs() / 1000);
      AnalysisSp.setArg(Report.Findings.size());
      AnalysisSp.finish();
      RT.countAnalysisFindings(Report.Findings.size());
      {
        std::lock_guard<std::mutex> G(J.Tx->RecLock);
        J.Tx->Rec.AnalysisRan = true;
        J.Tx->Rec.AnalysisMs = Report.AnalysisMs;
        J.Tx->Rec.CodeOnlyPredicted = Report.CodeOnlyPredicted;
        J.Tx->Rec.AnalysisFindings = Report.Findings;
        J.Tx->Rec.PatchId = J.Tx->P.Id;
      }
      const analysis::Finding *First = Report.firstError();
      if (First && RT.analysisGateEnabled())
        LoadErr = Error::make(
            ErrorCode::EC_Analysis,
            "patch %s refused by the update-safety analyzer: [%s] %s "
            "(%zu error finding(s) total)",
            J.Tx->P.Id.c_str(), First->Code.c_str(), First->Message.c_str(),
            Report.errorCount());
    }

    // Durable journal, phase one: for operator-submitted artifact text
    // the Intent — and the content-addressed artifact it names — must
    // be synced to disk *before* the staging pipeline touches the
    // runtime, so a crash anywhere between here and the terminal seal
    // is observable (and attempt-counted) at the next boot.  The same
    // call refuses artifacts whose hash tripped the crash-loop
    // quarantine; a journal append failure also refuses the update
    // rather than applying it unpersisted.  In-memory Patch values and
    // file paths are not journaled (documented in DESIGN.md §14).
    if (!LoadErr && J.Kind == Job::Text) {
      if (persist::UpdateJournal *Journal = RT.journal()) {
        // The artifact parsed, so the patch's own id is known — record
        // that (not the "(loading ...)" placeholder) so journal history
        // and quarantine reports name the patch the operator shipped.
        std::string PatchId = J.Tx->P.Id;
        {
          std::lock_guard<std::mutex> G(J.Tx->RecLock);
          J.Tx->Rec.PatchId = PatchId;
        }
        Expected<uint64_t> Seq = Journal->appendIntent(
            PatchId, J.Artifact, persist::IntentOrigin::Operator);
        if (Seq) {
          J.Tx->JournalSeq = *Seq;
          faultinject::maybeCrash(faultinject::CrashPoint::AfterIntent,
                                  PatchId);
        } else {
          LoadErr = Seq.takeError();
        }
      }
    }

    if (LoadErr) {
      DSU_LOG_WARN("staging worker: artifact rejected: %s",
                   LoadErr.str().c_str());
      RT.finalize(*J.Tx, UpdatePhase::StageFailed, &LoadErr);
    } else {
      (void)RT.stageInto(*J.Tx); // failures are recorded in the log
    }

    std::function<void()> Notify;
    {
      std::lock_guard<std::mutex> G(Lock);
      --InFlight;
      Notify = OnStaged;
    }
    IdleCV.notify_all();
    if (Notify)
      Notify(); // the staged tx may now be committable: wake listeners
  }
}
