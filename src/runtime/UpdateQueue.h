//===- runtime/UpdateQueue.h - Pending updates and update points -*- C++ -*-//
///
/// \file
/// The update-point mechanism.  Programs call updatePoint() at places
/// they deem safe (the top of an event loop, between requests); the call
/// is a single relaxed atomic flag test when no update is pending, so it
/// can sit on hot paths — the same contract as the PLDI 2001 `update`
/// primitive.
///
/// Updates are requested asynchronously (by an operator thread, a signal
/// handler's deferred work, or the program itself) as closures queued on
/// the UpdateQueue; the next updatePoint() drains the queue.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATEQUEUE_H
#define DSU_RUNTIME_UPDATEQUEUE_H

#include "support/Error.h"

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {

/// Result of draining one update point.
struct UpdatePointOutcome {
  unsigned Applied = 0;  ///< updates applied successfully
  unsigned Failed = 0;   ///< updates rejected (verify/link/transform)
  std::vector<std::string> Diagnostics; ///< one entry per failure
};

/// A queue of pending update actions plus the hot-path pending flag.
class UpdateQueue {
public:
  using Applier = std::function<Error()>;

  /// True when at least one update awaits the next update point.  Hot
  /// path: relaxed load, no fence, no branch beyond the test itself.
  bool pending() const { return Pending.load(std::memory_order_relaxed); }

  /// Enqueues an update action described by \p Name.
  void enqueue(std::string Name, Applier Apply);

  /// Runs every queued update in FIFO order.  Failures are collected,
  /// not thrown; a failed update is discarded (its Applier is
  /// responsible for leaving the program unchanged on failure).
  UpdatePointOutcome drain();

  /// Number of updates waiting.
  size_t depth() const;

private:
  struct Item {
    std::string Name;
    Applier Apply;
  };

  std::atomic<bool> Pending{false};
  mutable std::mutex Lock;
  std::vector<Item> Items;
};

} // namespace dsu

#endif // DSU_RUNTIME_UPDATEQUEUE_H
