//===- runtime/UpdateQueue.h - Pending updates and update points -*- C++ -*-//
///
/// \file
/// The update-point mechanism over staged transactions.  Programs call
/// updatePoint() at places they deem safe (the top of an event loop,
/// between requests); the call is a single relaxed atomic flag test when
/// no transaction is actionable, so it can sit on hot paths — the same
/// contract as the PLDI 2001 `update` primitive.
///
/// The queue holds UpdateTransactions in submission order and preserves
/// strict FIFO commit order: updatePoint() pops from the front only
/// while the front transaction is actionable (ready to commit, or
/// terminal and awaiting collection).  A transaction still staging
/// blocks later — even already-ready — transactions, so updates commit
/// in exactly the order operators submitted them.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATEQUEUE_H
#define DSU_RUNTIME_UPDATEQUEUE_H

#include "runtime/UpdateTransaction.h"

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace dsu {

/// FIFO of staged update transactions plus the hot-path pending flag.
class UpdateQueue {
public:
  /// True when the front transaction is actionable at the next update
  /// point.  Hot path: relaxed load, no fence, no branch beyond the test
  /// itself.
  bool pending() const { return Pending.load(std::memory_order_relaxed); }

  /// Appends \p Tx in submission order.  Returns false (and leaves the
  /// queue unchanged) when \p Tx was already enqueued once.
  bool enqueue(std::shared_ptr<UpdateTransaction> Tx);

  /// Pops and returns the front transaction if it is actionable —
  /// ready to commit, or already terminal (failed, aborted, or
  /// committed directly through its handle) and awaiting collection;
  /// nullptr otherwise.  The FIFO guarantee lives here: a staging (or
  /// mid-commit) front blocks everything behind it.
  std::shared_ptr<UpdateTransaction> popActionable();

  /// popActionable() gated by an extra predicate, evaluated on the front
  /// transaction under the queue lock: pops only when the front is both
  /// actionable and accepted by \p Accept.  The rolling-commit path uses
  /// it to take code-only (or terminal) fronts while leaving a
  /// state-migrating front in place for the barrier.
  std::shared_ptr<UpdateTransaction>
  popActionableIf(bool (*Accept)(const UpdateTransaction &));

  /// The front transaction without popping (nullptr when empty).
  std::shared_ptr<UpdateTransaction> front() const;

  /// Returns \p Tx to the *front* of the queue (commit-order position),
  /// used when a popped transaction turns out to need the barrier after
  /// all (its plan was reclassified during commit-time revalidation).
  void pushFront(std::shared_ptr<UpdateTransaction> Tx);

  /// Recomputes the pending flag after a transaction phase transition
  /// (staging finished, abort landed).
  void refresh();

  /// Number of transactions waiting (any phase).
  size_t depth() const;

  /// Snapshot of the queued transactions, front first (introspection:
  /// the admin endpoint's pending view).
  std::vector<std::shared_ptr<UpdateTransaction>> snapshot() const;

private:
  static bool actionable(const UpdateTransaction &Tx) {
    UpdatePhase P = Tx.phase();
    return P != UpdatePhase::Staging && P != UpdatePhase::Committing;
  }
  void refreshLocked();

  std::atomic<bool> Pending{false};
  mutable std::mutex Lock;
  std::deque<std::shared_ptr<UpdateTransaction>> Items;
};

} // namespace dsu

#endif // DSU_RUNTIME_UPDATEQUEUE_H
