//===- runtime/RolloutController.cpp --------------------------*- C++ -*-===//

#include "runtime/RolloutController.h"

#include "core/Runtime.h"
#include "epoch/Epoch.h"
#include "runtime/UpdateController.h"
#include "support/Logging.h"
#include "support/StringUtil.h"
#include "trace/Trace.h"

#include <algorithm>
#include <chrono>

using namespace dsu;

namespace {

double elapsedMsSince(std::chrono::steady_clock::time_point Since) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - Since)
      .count();
}

} // namespace

RolloutController::RolloutController(Runtime &RT, Hooks H)
    : RT(RT), H(std::move(H)) {}

RolloutController::~RolloutController() {
  std::thread T;
  {
    std::lock_guard<std::mutex> G(Lock);
    T = std::move(Thread);
  }
  if (T.joinable())
    T.join();
}

Expected<uint64_t> RolloutController::startArtifactText(std::string Text,
                                                        std::string SourceName,
                                                        RolloutOptions Opts) {
  bool Idle = false;
  if (!Busy.compare_exchange_strong(Idle, true, std::memory_order_acq_rel))
    return Error::make(ErrorCode::EC_Busy,
                       "a rollout is already in flight; its health gates "
                       "compare counters a concurrent rollout would "
                       "pollute — retry after it resolves");

  std::lock_guard<std::mutex> G(Lock);
  if (Thread.joinable())
    Thread.join(); // the previous (resolved) rollout's thread

  // Stage held-for-rollout *before* the transaction is enqueued: no
  // pool worker may ever commit it at an ordinary update point.
  StagedUpdate U = RT.controller().stageArtifactText(
      std::move(Text), SourceName, /*HoldForRollout=*/true);
  std::shared_ptr<UpdateTransaction> Tx = U.Tx;

  RolloutRecord R;
  R.Id = NextId++;
  R.TxId = Tx->id();
  R.PatchId = Tx->patchId();
  R.State = "staged";
  R.WindowMs = Opts.WindowMs;
  Records.push_back(std::move(R));
  size_t RecIdx = Records.size() - 1;

  Thread = std::thread([this, Tx = std::move(Tx), Opts, RecIdx] {
    runOne(Tx, Opts, RecIdx);
  });
  return Records[RecIdx].Id;
}

std::vector<RolloutRecord> RolloutController::rollouts() const {
  std::lock_guard<std::mutex> G(Lock);
  return Records;
}

Expected<RolloutRecord> RolloutController::rollout(uint64_t Id) const {
  std::lock_guard<std::mutex> G(Lock);
  for (const RolloutRecord &R : Records)
    if (R.Id == Id)
      return R;
  return Error::make(ErrorCode::EC_Invalid, "no rollout with id %llu",
                     static_cast<unsigned long long>(Id));
}

void RolloutController::waitIdle() {
  while (Busy.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void RolloutController::setRecord(
    size_t RecIdx, const std::function<void(RolloutRecord &)> &Fn) {
  std::lock_guard<std::mutex> G(Lock);
  Fn(Records[RecIdx]);
}

void RolloutController::sampleGroups(uint64_t Mask, GroupSample &Canary,
                                     GroupSample &Control) const {
  size_t N = H.WorkerCount ? H.WorkerCount() : 0;
  for (size_t I = 0; I != N; ++I) {
    const net::WorkerStats *S = H.Stats ? H.Stats(I) : nullptr;
    if (!S)
      continue;
    bool IsCanary = I < 64 && ((Mask >> I) & 1);
    GroupSample &G = IsCanary ? Canary : Control;
    G.Requests += S->Requests.load(std::memory_order_relaxed);
    G.Serves += S->Serves.load(std::memory_order_relaxed);
    G.Errors += S->Errors5xx.load(std::memory_order_relaxed);
    G.ServeUs += S->ServeTotalUs.load(std::memory_order_relaxed);
  }
}

uint64_t RolloutController::trapsInNewBindings(
    const std::vector<std::string> &Names) const {
  // The bindings this patch installed were created with zeroed trap
  // counters at prepare time, so their absolute counts are exactly the
  // traps attributable to the rollout.
  uint64_t Traps = 0;
  for (const std::string &Name : Names)
    if (const UpdateableSlot *Slot = RT.updateables().lookup(Name))
      if (const Binding *B = Slot->newest())
        Traps += B->trapCount();
  return Traps;
}

Error RolloutController::revertProvides(const std::vector<std::string> &Names) {
  Error First = Error::success();
  for (const std::string &Name : Names)
    if (Error E = RT.rollbackUpdateable(Name)) {
      DSU_LOG_WARN("rollout rollback of '%s' failed: %s", Name.c_str(),
                   E.str().c_str());
      if (!First)
        First = std::move(E);
    }
  return First;
}

void RolloutController::runOne(std::shared_ptr<UpdateTransaction> Tx,
                               RolloutOptions Opts, size_t RecIdx) {
  // Every event the rollout thread records below lands in this
  // update's span tree.
  trace::ScopedUpdateId TraceId(Tx->id());
  auto Finish = [&] {
    Tx->HeldForRollout.store(false, std::memory_order_release);
    RT.setRolloutActive(false);
    if (H.Wake)
      H.Wake(); // collect the terminal front tx promptly
    Busy.store(false, std::memory_order_release);
  };
  auto Fail = [&](std::string Reason) {
    DSU_LOG_WARN("rollout of tx %llu failed: %s",
                 static_cast<unsigned long long>(Tx->id()), Reason.c_str());
    setRecord(RecIdx, [&](RolloutRecord &R) {
      R.State = "failed";
      R.Reason = std::move(Reason);
      R.PatchId = Tx->patchId();
    });
    Finish();
  };

  // --- Staged: wait for the staging pipeline, bounded. -------------------
  trace::Span StageWaitSp("rollout", "stage.wait");
  auto StageStart = std::chrono::steady_clock::now();
  auto StageOverdue = [&] {
    return Opts.StageTimeoutMs != 0 &&
           elapsedMsSince(StageStart) > static_cast<double>(Opts.StageTimeoutMs);
  };
  while (true) {
    UpdatePhase P = Tx->phase();
    if (P == UpdatePhase::Ready)
      break;
    if (P != UpdatePhase::Staging)
      return Fail(formatString("staging ended in phase '%s': %s",
                               updatePhaseName(P),
                               Tx->record().FailureReason.c_str()));
    if (StageOverdue()) {
      (void)RT.abortStagedTx(Tx);
      return Fail("staging exceeded the rollout's stage deadline; "
                  "transaction aborted");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StageWaitSp.finish();

  // Wait until this transaction reaches the front of the FIFO queue:
  // updates ahead of it must commit first (in submission order), and
  // the rollout must not freeze the pipeline while they wait.
  trace::Span QueueWaitSp("rollout", "queue.wait");
  while (RT.Queue.front().get() != Tx.get()) {
    if (StageOverdue()) {
      (void)RT.abortStagedTx(Tx);
      return Fail("queued updates ahead of the rollout did not drain in "
                  "time; transaction aborted");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  QueueWaitSp.finish();

  // --- Canary: freeze the commit pipeline and commit gated. --------------
  // The latch keeps any later submission from committing during the
  // observation window: a stacked commit would make the registry's
  // rollback history point at the canary binding instead of the
  // pre-rollout one, breaking auto-revert.
  RT.setRolloutActive(true);

  // Snapshot the provide lists while the plan is still intact (commit
  // consumes it): replacements are what rollback reverts; all provides
  // carry trap counters the trap gate reads.
  std::vector<std::string> AllNames, ReplacedNames;
  for (size_t I = 0; I != Tx->Plan.Unit.Provides.size(); ++I) {
    AllNames.push_back(Tx->Plan.Unit.Provides[I].Name);
    if (Tx->Plan.IsReplacement[I])
      ReplacedNames.push_back(Tx->Plan.Unit.Provides[I].Name);
  }

  size_t Workers = H.WorkerCount ? H.WorkerCount() : 0;
  bool CanaryMode =
      Tx->CodeOnly.load(std::memory_order_acquire) && Workers >= 2;

  uint64_t Mask = 0;
  std::vector<RollEntry *> Gated;
  if (CanaryMode) {
    unsigned K = std::min<unsigned>(
        {Opts.CanaryWorkers ? Opts.CanaryWorkers : 1,
         static_cast<unsigned>(Workers) - 1, 63});
    Mask = (uint64_t(1) << K) - 1;
    setRecord(RecIdx, [&](RolloutRecord &R) {
      R.State = "canary";
      R.Mode = "canary";
      R.CanaryMask = Mask;
      R.PatchId = Tx->patchId();
    });
    bool NeedsBarrier = false;
    Error E = RT.commitCanaryFront(Tx, Mask, Gated, &NeedsBarrier);
    if (NeedsBarrier) {
      // Revalidation discovered state migration; fall back to the
      // degenerate barrier form below.
      CanaryMode = false;
      Gated.clear();
    } else if (E) {
      return Fail("canary commit rejected: " + E.str());
    }
  }

  if (!CanaryMode) {
    // Degenerate form for state-migrating patches (or fleets too small
    // to split): commit everywhere under the barrier, observe fleet
    // health absolutely (no control group), and barrier-roll-back if a
    // gate trips.  "Canary group" below = the whole fleet.
    Mask = Workers == 0 ? UINT64_MAX
                        : (Workers >= 64 ? UINT64_MAX
                                         : ((uint64_t(1) << Workers) - 1));
    setRecord(RecIdx, [&](RolloutRecord &R) {
      R.State = "canary";
      R.Mode = "barrier";
      R.CanaryMask = 0;
      R.PatchId = Tx->patchId();
    });
    Error E = H.RunQuiescent
                  ? H.RunQuiescent([&] { return RT.commitStagedTx(Tx); })
                  : RT.commitStagedTx(Tx);
    if (E)
      return Fail("barrier commit rejected: " + E.str());
  }

  // --- Observing: compare canary vs control over the window. -------------
  auto CommitAt = std::chrono::steady_clock::now();
  GroupSample Can0, Ctl0;
  sampleGroups(Mask, Can0, Ctl0);
  setRecord(RecIdx, [&](RolloutRecord &R) { R.State = "observing"; });

  GroupSample DCan, DCtl;
  double CanRate = 0, CtlRate = 0;
  uint64_t Traps = 0;
  std::string TripReason;

  auto Sample = [&] {
    GroupSample Can1, Ctl1;
    sampleGroups(Mask, Can1, Ctl1);
    DCan = {Can1.Requests - Can0.Requests, Can1.Serves - Can0.Serves,
            Can1.Errors - Can0.Errors, Can1.ServeUs - Can0.ServeUs};
    DCtl = {Ctl1.Requests - Ctl0.Requests, Ctl1.Serves - Ctl0.Serves,
            Ctl1.Errors - Ctl0.Errors, Ctl1.ServeUs - Ctl0.ServeUs};
    CanRate = DCan.Serves
                  ? static_cast<double>(DCan.Errors) / DCan.Serves
                  : 0;
    CtlRate = DCtl.Serves
                  ? static_cast<double>(DCtl.Errors) / DCtl.Serves
                  : 0;
    Traps = trapsInNewBindings(AllNames);
  };

  // Monotone gates may trip early — the sooner a bad canary is caught,
  // the fewer requests it serves.  The latency and stall gates need the
  // full window (means stabilize; a stall is only evident at the end).
  auto evalMonotone = [&]() -> std::string {
    if (Traps > Opts.MaxCanaryTraps)
      return formatString("trap gate: canary bindings trapped %llu time(s) "
                          "(budget %llu)",
                          static_cast<unsigned long long>(Traps),
                          static_cast<unsigned long long>(Opts.MaxCanaryTraps));
    if (DCan.Serves >= Opts.MinSamples &&
        CanRate - CtlRate > Opts.MaxErrorDelta)
      return formatString("error gate: canary 5xx rate %.4f vs control "
                          "%.4f exceeds max delta %.4f",
                          CanRate, CtlRate, Opts.MaxErrorDelta);
    return std::string();
  };

  trace::Span ObserveSp("rollout", "observe");
  uint64_t Polls = 0;
  uint64_t PollMs = std::max<uint64_t>(1, std::min<uint64_t>(
                                              Opts.WindowMs / 20, 20));
  while (elapsedMsSince(CommitAt) < static_cast<double>(Opts.WindowMs)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(PollMs));
    // One short span per health-gate poll: the trace shows how often
    // the gates looked and (via Arg) the canary serves seen so far.
    trace::Span PollSp("rollout", "gate.poll");
    ++Polls;
    Sample();
    TripReason = evalMonotone();
    PollSp.setArg(DCan.Serves);
    if (!TripReason.empty())
      break;
  }
  if (TripReason.empty()) {
    trace::Span PollSp("rollout", "gate.poll");
    ++Polls;
    Sample();
    TripReason = evalMonotone();
    PollSp.setArg(DCan.Serves);
  }
  if (TripReason.empty() && Opts.MaxLatencyDeltaUs >= 0 &&
      DCan.Serves >= Opts.MinSamples && DCtl.Serves >= Opts.MinSamples) {
    double CanMean = static_cast<double>(DCan.ServeUs) / DCan.Serves;
    double CtlMean = static_cast<double>(DCtl.ServeUs) / DCtl.Serves;
    if (CanMean - CtlMean > Opts.MaxLatencyDeltaUs)
      TripReason = formatString("latency gate: canary mean %.0fus vs "
                                "control %.0fus exceeds max delta %.0fus",
                                CanMean, CtlMean, Opts.MaxLatencyDeltaUs);
  }
  if (TripReason.empty() && DCan.Requests >= 1 && DCan.Serves == 0)
    // Requests entered canary handlers but none completed in the whole
    // window: the patch wedged its callers (e.g. a fuel bomb still
    // burning).  No completed serve means no error sample either, so
    // only this gate can catch it.
    TripReason = formatString("stall gate: %llu request(s) entered the "
                              "canary and none completed within %llums",
                              static_cast<unsigned long long>(DCan.Requests),
                              static_cast<unsigned long long>(Opts.WindowMs));

  double DetectMs = elapsedMsSince(CommitAt);
  ObserveSp.setArg(Polls);
  ObserveSp.finish();

  // --- Verdict. ----------------------------------------------------------
  trace::Recorder::instance().instant(
      "rollout", TripReason.empty() ? "verdict.promoted" : "verdict.rolled_back",
      static_cast<uint64_t>(DetectMs * 1000.0));
  if (TripReason.empty()) {
    if (!Gated.empty()) {
      // Promote: lower every gate inside one epoch advance — control
      // workers adopt the patch at their own next quiescent point,
      // exactly like an ungated rolling commit.
      struct PromoteCtx {
        std::vector<RollEntry *> *Entries;
      } Ctx{&Gated};
      epoch::domain().advanceWith(
          [](uint64_t E, void *Raw) {
            auto *C = static_cast<PromoteCtx *>(Raw);
            for (RollEntry *R : *C->Entries)
              R->PromoteEpoch.store(E, std::memory_order_release);
          },
          &Ctx);
    }
    RT.annotateRollout(Tx, "promoted", "");
    setRecord(RecIdx, [&](RolloutRecord &R) {
      R.State = "promoted";
      R.Verdict = "promoted";
      R.DetectMs = DetectMs;
      R.CanaryRequests = DCan.Requests;
      R.CanaryServes = DCan.Serves;
      R.CanaryErrors = DCan.Errors;
      R.CanaryTraps = Traps;
      R.ControlRequests = DCtl.Requests;
      R.ControlServes = DCtl.Serves;
      R.ControlErrors = DCtl.Errors;
      R.CanaryErrorRate = CanRate;
      R.ControlErrorRate = CtlRate;
    });
    DSU_LOG_INFO("rollout of tx %llu promoted after %.1fms",
                 static_cast<unsigned long long>(Tx->id()), DetectMs);
    Finish();
    return;
  }

  // Roll back.  Order matters: revert the slots *first* (canary workers
  // snap back to the old binding via the new Current), and only then
  // resolve the gates — so there is never a window in which a control
  // worker adopts the bad binding.  Both happen inside one quiescent
  // operation when a pool is attached: no request is mid-handler.
  auto TripAt = std::chrono::steady_clock::now();
  auto DoRevert = [&]() -> Error {
    Error E = revertProvides(ReplacedNames);
    if (!Gated.empty()) {
      struct ResolveCtx {
        std::vector<RollEntry *> *Entries;
      } Ctx{&Gated};
      epoch::domain().advanceWith(
          [](uint64_t Ep, void *Raw) {
            auto *C = static_cast<ResolveCtx *>(Raw);
            for (RollEntry *R : *C->Entries)
              R->PromoteEpoch.store(Ep, std::memory_order_release);
          },
          &Ctx);
    }
    return E;
  };
  trace::Span RevertSp("rollout", "revert", ReplacedNames.size());
  Error RevertErr =
      H.RunQuiescent ? H.RunQuiescent([&] { return DoRevert(); }) : DoRevert();
  RevertSp.finish();
  double RevertMs = elapsedMsSince(TripAt);

  std::string Reason = TripReason;
  if (RevertErr)
    Reason += "; rollback error: " + RevertErr.str();
  RT.annotateRollout(Tx, "rolled-back", Reason);
  setRecord(RecIdx, [&](RolloutRecord &R) {
    R.State = "rolled-back";
    R.Verdict = "rolled-back";
    R.Reason = Reason;
    R.DetectMs = DetectMs;
    R.RevertMs = RevertMs;
    R.CanaryRequests = DCan.Requests;
    R.CanaryServes = DCan.Serves;
    R.CanaryErrors = DCan.Errors;
    R.CanaryTraps = Traps;
    R.ControlRequests = DCtl.Requests;
    R.ControlServes = DCtl.Serves;
    R.ControlErrors = DCtl.Errors;
    R.CanaryErrorRate = CanRate;
    R.ControlErrorRate = CtlRate;
  });
  DSU_LOG_INFO("rollout of tx %llu rolled back: %s (detected %.1fms, "
               "reverted %.1fms)",
               static_cast<unsigned long long>(Tx->id()), TripReason.c_str(),
               DetectMs, RevertMs);
  Finish();
}
