//===- runtime/UpdateTransaction.h - Staged update transactions -*- C++ -*-//
///
/// \file
/// The transactional form of a dynamic update.  A patch no longer enters
/// the runtime as an opaque closure: it becomes an UpdateTransaction
/// with an explicit lifecycle
///
///     staging -> ready -> committing -> committed
///                  \-> aborted          \-> commit-failed
///        \-> stage-failed
///
/// *Staging* (verification, link preparation, state-transform builds)
/// runs on any thread and performs no program mutation; *commit* runs at
/// an update point on the update thread and is only the atomic binding
/// swings plus the (generation-validated) state payload swaps — the
/// split that shrinks the serving pause from full-pipeline cost to
/// commit cost.  Every transaction is introspectable: id, patch id,
/// phase, and the per-stage timing record the E3 experiment reports.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATETRANSACTION_H
#define DSU_RUNTIME_UPDATETRANSACTION_H

#include "analysis/Finding.h"
#include "patch/Patch.h"
#include "state/Transform.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace dsu {

class Runtime;
class UpdateController;
class UpdateQueue;

/// Lifecycle phase of one update transaction.
enum class UpdatePhase {
  Staging,      ///< queued or being verified/prepared/built
  Ready,        ///< staged; awaiting commit at an update point
  Committing,   ///< the update thread is swinging bindings
  Committed,    ///< applied; the program runs the new code
  StageFailed,  ///< rejected during staging (program untouched)
  CommitFailed, ///< rejected at commit (rolled back, program untouched)
  Aborted,      ///< withdrawn by the operator before commit
  TimedOut,     ///< staging exceeded the watchdog deadline (aborted so it
                ///< cannot head-of-line-block the FIFO update queue)
};

/// Stable lower-case name for \p P ("staging", "ready", "committed", ...).
const char *updatePhaseName(UpdatePhase P);

/// Timing and outcome of one update transaction, kept while it is in
/// flight and appended to the runtime's update log when it reaches a
/// terminal phase.
struct UpdateRecord {
  uint64_t TxId = 0;
  std::string PatchId;
  std::string Phase; ///< terminal (or current) phase name
  bool Succeeded = false;
  std::string FailureReason;

  // The transactional split: what ran off-thread vs. what the program
  // paused for.
  double StageMs = 0;  ///< verify + link prepare + state build (any thread)
  double CommitMs = 0; ///< pause at the update point (swings + swaps)

  double VerifyMs = 0;    ///< VTAL verification (0 for native patches)
  double PrepareMs = 0;   ///< link preparation within staging
  double BuildMs = 0;     ///< state-transform build within staging
  double LinkMs = 0;      ///< prepare + commit of the link unit
  double TransformMs = 0; ///< state build + commit-time swap/rebuild
  double TotalMs = 0;     ///< StageMs + CommitMs

  /// True when the commit had to rebuild the state migration because a
  /// cell mutated between staging and commit (the optimistic protocol's
  /// slow path).
  bool StateRebuilt = false;

  /// How the commit landed: "rolling" (code-only, barrier-free — every
  /// worker swings at its own quiescent point) or "barrier" (global
  /// quiescence; required whenever state migrates or types bump).
  /// Empty until the transaction commits.
  std::string CommitMode;

  /// Interval from staging-complete (phase Ready) to the commit landing
  /// at an update point — the operator-visible update-latency SLO
  /// (dsu_stage_to_commit_us in /admin/metrics).
  uint64_t StageToCommitUs = 0;

  size_t CodeBytes = 0; ///< artifact size
  size_t InstructionsVerified = 0;
  size_t CellsMigrated = 0;
  size_t ProvidesLinked = 0;

  /// Canary rollout verdict, when this transaction was committed through
  /// the rollout controller: "promoted" (health gates passed; the patch
  /// reached the whole fleet) or "rolled-back" (a gate tripped and the
  /// canary was reverted).  Empty for updates committed directly.
  std::string Rollout;

  /// Whole-patch analyzer results.  AnalysisRan distinguishes "the
  /// analyzer found nothing" from "this staging path never ran it"
  /// (in-memory patches bypass the manifest-parse gate).  Error-severity
  /// findings refuse staging before the journal Intent is written;
  /// warnings and infos ride along here for `dsu-updatectl log` and
  /// GET /admin/lint.
  bool AnalysisRan = false;
  std::vector<analysis::Finding> AnalysisFindings;
  double AnalysisMs = 0;
  /// The analyzer's code-only prediction (meaningful when AnalysisRan);
  /// stageInto cross-checks it against the actual classification.
  bool CodeOnlyPredicted = false;
};

/// One staged update in flight.  Created by Runtime::stage() (or the
/// UpdateController's staging worker); owned via shared_ptr by the queue
/// and any StagedUpdate handles.
class UpdateTransaction {
public:
  uint64_t id() const { return Id; }
  UpdatePhase phase() const { return Phase.load(std::memory_order_acquire); }

  /// The patch id ("(loading)" until an asynchronously posted artifact
  /// has been parsed).
  std::string patchId() const;

  /// Snapshot of the timing/outcome record (consistent copy).
  UpdateRecord record() const;

private:
  friend class Runtime;
  friend class UpdateController;
  friend class UpdateQueue;
  friend class RolloutController;

  explicit UpdateTransaction(uint64_t Id) : Id(Id) {}

  const uint64_t Id;
  std::atomic<UpdatePhase> Phase{UpdatePhase::Staging};
  std::atomic<bool> AbortRequested{false};
  bool Enqueued = false; ///< on the runtime's update queue (set once)

  /// Reserved by a rollout: pool workers must not commit this
  /// transaction at their quiescent points — the RolloutController
  /// commits it itself, canary-gated, and drives the verdict.  Atomic
  /// because workers read it from UpdateQueue acceptance predicates.
  std::atomic<bool> HeldForRollout{false};

  /// Absolute staging deadline (steady clock); zero (the epoch) = no
  /// watchdog.  Set before the transaction is handed to the staging
  /// pipeline; stageInto() checks it between stages and the staged
  /// controller checks it while the job queues.
  std::chrono::steady_clock::time_point StageDeadline{};

  /// Staging-time classification: true when the patch migrates no state,
  /// bumps no types and ships no transformers — the cheap common case
  /// the paper identifies, committable as a rolling (barrier-free)
  /// update.  Commit-time revalidation may demote it to false.
  std::atomic<bool> CodeOnly{false};

  /// When staging completed (phase turned Ready); start of the
  /// stage->commit latency interval.
  std::chrono::steady_clock::time_point ReadyAt{};

  /// Sequence number of this transaction's durable-journal Intent, or 0
  /// when the update is not journaled.  Set before the transaction
  /// enters the staging pipeline (by the controller worker or
  /// Runtime::stageJournaled), read by Runtime::finalize to seal the
  /// Intent with the terminal outcome.
  uint64_t JournalSeq = 0;

  /// The patch, consumed by staging.
  Patch P;

  // Staged artifacts, valid in phase Ready.
  LinkPlan Plan;
  std::vector<VersionBump> DeclaredBumps; ///< from the patch's new types
  std::vector<VersionBump> Bumps;         ///< union with the plan's bumps
  StagedStateSwap Swap;
  uint64_t PreparedAtGeneration = 0; ///< runtime commit generation observed

  mutable std::mutex RecLock; ///< guards Rec (read from other threads)
  UpdateRecord Rec;
};

/// The operator's handle on a staged transaction: observe its phase,
/// commit it at a safe point, or abort it.  Copyable; all copies refer
/// to the same transaction.
class StagedUpdate {
public:
  StagedUpdate() = default;

  bool valid() const { return Tx != nullptr; }
  uint64_t id() const { return Tx->id(); }
  UpdatePhase phase() const { return Tx->phase(); }
  UpdateRecord record() const { return Tx->record(); }

  /// Commits this transaction now.  The caller asserts this is a safe
  /// point on the update thread; refused with EC_Busy when updateable
  /// code is active on this thread, and with EC_Invalid when the
  /// transaction is not ready (already committed, aborted, or failed).
  Error commit();

  /// Withdraws the transaction: a ready transaction aborts immediately,
  /// one still staging aborts when staging completes.  Fails with
  /// EC_Invalid once the transaction is terminal.
  Error abort();

private:
  friend class Runtime;
  friend class UpdateController;
  friend class RolloutController;

  StagedUpdate(Runtime *RT, std::shared_ptr<UpdateTransaction> Tx)
      : RT(RT), Tx(std::move(Tx)) {}

  Runtime *RT = nullptr;
  std::shared_ptr<UpdateTransaction> Tx;
};

} // namespace dsu

#endif // DSU_RUNTIME_UPDATETRANSACTION_H
