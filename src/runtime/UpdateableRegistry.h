//===- runtime/UpdateableRegistry.h - Indirection slots -------*- C++ -*-===//
///
/// \file
/// The updateable-symbol table: named, typed slots each holding the
/// current Binding of one updateable function.
///
/// This is the reproduction of the PLDI 2001 compilation strategy in
/// which references to updateable definitions are indirected through a
/// table the dynamic linker may rebind.  Readers (calls) take one atomic
/// acquire load; writers (updates) take the registry mutex, re-run the
/// type-compatibility judgement, and swing the pointer.  Superseded
/// bindings are retired into the slot's history and kept alive forever
/// (old code stays resident, as in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATEABLEREGISTRY_H
#define DSU_RUNTIME_UPDATEABLEREGISTRY_H

#include "epoch/Epoch.h"
#include "runtime/Binding.h"
#include "support/Error.h"
#include "support/WorkerId.h"
#include "types/Compat.h"
#include "types/Type.h"

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

namespace dsu {

/// The per-epoch redirection record of one rolling (barrier-free)
/// binding swing: readers whose default-domain epoch predates Epoch are
/// routed to the superseded binding, so a worker mid-request keeps one
/// consistent code generation and switches only at its own quiescent
/// point.  Entries chain (Prev) when rolls outpace grace periods; a
/// fully graced chain is detached at the next swing and epoch-retired.
struct RollEntry {
  const Binding *Old = nullptr;
  /// Readers with epoch < Epoch use Old.  Installed as kUnpublished
  /// (everyone -> Old) and lowered to the real swing epoch inside
  /// Domain::advanceWith, before that epoch becomes observable.
  std::atomic<uint64_t> Epoch{UINT64_MAX};
  std::atomic<RollEntry *> Prev{nullptr};

  /// Canary gate.  UINT64_MAX = ungated (the common case; every reader
  /// past Epoch adopts the new binding).  Otherwise bit i grants worker
  /// i the new binding while the rollout observes; every other reader —
  /// control workers and unidentified threads alike — stays on Old
  /// until PromoteEpoch resolves the gate.
  std::atomic<uint64_t> CanaryMask{UINT64_MAX};

  /// Epoch at which a canary gate resolved.  UINT64_MAX while the
  /// rollout is still observing; lowered inside Domain::advanceWith on
  /// promotion (and after the Current swing on rollback), so gate
  /// resolution is per-reader atomic at the reader's next quiesce.
  std::atomic<uint64_t> PromoteEpoch{UINT64_MAX};

  /// Whether a reader pinned at epoch \p E must be redirected to Old.
  bool redirects(uint64_t E) const {
    if (E < Epoch.load(std::memory_order_acquire))
      return true; // swing not yet observable for this reader
    uint64_t Mask = CanaryMask.load(std::memory_order_acquire);
    if (Mask == UINT64_MAX)
      return false; // ungated: the pre-canary fast answer
    if (E >= PromoteEpoch.load(std::memory_order_acquire))
      return false; // gate resolved; everyone adopts Current
    int W = currentWorkerId();
    return W < 0 || W >= 64 || !((Mask >> W) & 1);
  }

  /// Whether every reader is past this entry: the swing epoch has been
  /// graced AND any canary gate has resolved and been graced.  Only then
  /// may the entry be detached from its slot's chain.
  bool graced(uint64_t MinObservedEpoch) const {
    uint64_t E = Epoch.load(std::memory_order_relaxed);
    if (E == UINT64_MAX || E > MinObservedEpoch)
      return false;
    if (CanaryMask.load(std::memory_order_relaxed) == UINT64_MAX)
      return true;
    uint64_t P = PromoteEpoch.load(std::memory_order_relaxed);
    return P != UINT64_MAX && P <= MinObservedEpoch;
  }
};

/// One updateable function's slot.  Created by UpdateableRegistry and
/// never destroyed before the registry, so raw Slot pointers handed to
/// Updateable<Sig> handles stay valid for the program's life.
class UpdateableSlot {
public:
  UpdateableSlot(std::string Name, const Type *FnTy,
                 std::unique_ptr<Binding> Initial)
      : Name(std::move(Name)), FnTy(FnTy), Current(Initial.get()) {
    History.push_back(std::move(Initial));
    TypeHistory.push_back(FnTy);
  }

  ~UpdateableSlot() {
    // Any remaining roll chain is torn down with the registry; no
    // reader can outlive it.
    RollEntry *R = Roll.load(std::memory_order_relaxed);
    while (R) {
      RollEntry *P = R->Prev.load(std::memory_order_relaxed);
      delete R;
      R = P;
    }
  }

  const std::string &name() const { return Name; }

  /// The slot's recorded type.  Atomic: link preparation reads it from
  /// staging threads while the update thread rebinds.
  const Type *type() const { return FnTy.load(std::memory_order_acquire); }

  /// The hot path: acquire-load of the current binding, plus — only
  /// while a rolling update's grace period is open on this slot — the
  /// per-epoch redirection that keeps an in-flight request on the code
  /// generation it started with.  Steady-state cost over the original
  /// single load is one predictable null check.
  ///
  /// Only epoch participants (a registered worker, or a thread inside
  /// an epoch::Guard) walk the redirection chain: their pin is what
  /// keeps detached entries alive, and their pinned epoch is the
  /// consistency anchor.  An unpinned thread is invisible to grace
  /// periods, so it must not touch the chain — it takes the newest
  /// binding directly (adopting new code immediately, exactly the
  /// semantics an unanchored thread had all along), which keeps this
  /// callable from any thread, as before the epoch subsystem.
  const Binding *current() const {
    const Binding *B = Current.load(std::memory_order_acquire);
    const RollEntry *R = Roll.load(std::memory_order_acquire);
    if (R) {
      uint64_t E = epoch::threadPinnedEpoch();
      if (E != 0)
        while (R && R->redirects(E)) {
          B = R->Old;
          R = R->Prev.load(std::memory_order_acquire);
        }
    }
    return B;
  }

  uint32_t currentVersion() const { return current()->Version; }

  /// The newest installed binding, ignoring any epoch redirection.
  /// Registry internals derive version numbers from this — the
  /// epoch-aware current() could return a superseded binding on a
  /// thread still pinned inside an older epoch (e.g. a rollback
  /// executing at the barrier on a worker whose epoch predates a
  /// rolling commit), minting a duplicate version.
  const Binding *newest() const {
    return Current.load(std::memory_order_acquire);
  }

  /// Number of bindings ever installed (including the initial one).
  size_t historySize() const;

  /// Live entries of the rolling redirection chain (0 in steady state).
  size_t rollDepth() const;

private:
  friend class UpdateableRegistry;

  std::string Name;
  std::atomic<const Type *> FnTy; // may be rebound on version-bumped updates
  std::atomic<const Binding *> Current;
  std::atomic<RollEntry *> Roll{nullptr}; ///< newest rolling swing first
  std::vector<std::unique_ptr<Binding>> History; // guarded by registry lock
  std::vector<const Type *> TypeHistory;         // parallel to History
};

/// Registry of all updateable slots of one runtime.
class UpdateableRegistry {
public:
  UpdateableRegistry() = default;
  UpdateableRegistry(const UpdateableRegistry &) = delete;
  UpdateableRegistry &operator=(const UpdateableRegistry &) = delete;

  /// Creates slot \p Name of function type \p FnTy with its version-1
  /// implementation.  Fails if the name exists or \p FnTy is not a
  /// function type.
  Expected<UpdateableSlot *> define(const std::string &Name,
                                    const Type *FnTy, Binding Initial);

  /// Looks up a slot; nullptr when absent.
  UpdateableSlot *lookup(const std::string &Name);
  const UpdateableSlot *lookup(const std::string &Name) const;

  /// Rebinds \p Name to \p NewBinding whose type is \p NewTy.  Runs the
  /// checkReplacement() judgement; on a version-bumped replacement the
  /// slot's recorded type advances to \p NewTy.  \p BumpsOut, when
  /// non-null, receives the named-type version bumps the caller (the
  /// update engine) must have transformers for.
  Error rebind(const std::string &Name, const Type *NewTy,
               Binding NewBinding, std::vector<VersionBump> *BumpsOut);

  /// The commit half of the linker's prepare/commit split: installs a
  /// binding the linker already validated and heap-allocated at prepare
  /// time, into a slot it already resolved, so the update-point pause
  /// pays neither the compatibility judgement, nor an allocation, nor a
  /// name lookup — only the history push and two pointer swings.  Sound
  /// only for plans validated by Linker::prepare() under the
  /// single-updater discipline (stale plans are re-prepared before
  /// commit); everyone else uses rebind().
  void rebindPreparedSlot(UpdateableSlot &Slot, const Type *NewTy,
                          std::unique_ptr<Binding> NewBinding);

  /// rebindPreparedSlot()'s sibling for slots the plan *defines*: links
  /// a slot the linker constructed at prepare time into the registry.
  Expected<UpdateableSlot *>
  installPreparedSlot(std::unique_ptr<UpdateableSlot> Slot);

  /// The rolling (barrier-free) variant of rebindPreparedSlot: swings
  /// the slot *and* installs a RollEntry (epoch still unpublished) that
  /// keeps every reader pinned at an older epoch on the superseded
  /// binding.  Any fully graced older chain — entries whose epoch is <=
  /// \p MinObservedEpoch — is detached and appended to \p DetachedOut
  /// for epoch-retirement by the caller.  The caller (Linker::commit in
  /// rolling mode) later lowers the new entries' epochs inside
  /// Domain::advanceWith, which is what makes the swing observable.
  RollEntry *rebindPreparedSlotRolling(UpdateableSlot &Slot,
                                       const Type *NewTy,
                                       std::unique_ptr<Binding> NewBinding,
                                       uint64_t MinObservedEpoch,
                                       std::vector<RollEntry *> &DetachedOut);

  /// Detaches every slot's rolling-redirection chain whose newest entry
  /// has been fully graced (epoch <= \p MinObservedEpoch, and any canary
  /// gate resolved), restoring the single-load fast path; the detached
  /// entries are appended to \p DetachedOut for epoch-retirement by the
  /// caller.
  void flushGracedRolls(uint64_t MinObservedEpoch,
                        std::vector<RollEntry *> &DetachedOut);

  /// Whether any slot still carries a rolling-redirection chain.  Lock
  /// free (one relaxed load): the reactor idle hook polls this every
  /// poll iteration, and must not contend with the serving path.
  bool hasLiveRolls() const {
    return LiveRollChains.load(std::memory_order_relaxed) != 0;
  }

  /// Reverts \p Name to the implementation (and recorded type) it had
  /// before its most recent rebind.  The rollback is itself an update:
  /// it appends a fresh binding rather than erasing history, so a
  /// rollback can be rolled back.  Code-only — state transformers are
  /// one-way, so callers must not roll past a type-changing update
  /// unless they also ship a reverse transformer as a regular patch.
  /// (Listed as future work in the PLDI 2001 paper.)
  Error rollback(const std::string &Name);

  /// Snapshot of all slot names (sorted; for the linker's export table
  /// and for diagnostics).
  std::vector<std::string> slotNames() const;

  size_t size() const;

private:
  mutable std::mutex Lock;
  std::map<std::string, std::unique_ptr<UpdateableSlot>> Slots;
  /// Number of slots whose Roll pointer is non-null; maintained under
  /// Lock, read lock-free by hasLiveRolls().
  std::atomic<size_t> LiveRollChains{0};
};

/// Thread-local count of updateable activations on the current thread's
/// stack.  updatePoint() consults this to refuse updates requested while
/// old code is still active on this thread — the paper's "activeness"
/// check for update timing safety.
class ActivationTracker {
public:
  /// RAII frame marker; cheap (one thread-local increment/decrement).
  class Frame {
  public:
    Frame() { ++depth(); }
    ~Frame() { --depth(); }
    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;
  };

  /// Number of updateable frames live on this thread.
  static unsigned currentDepth() { return depth(); }

private:
  static unsigned &depth() {
    thread_local unsigned Depth = 0;
    return Depth;
  }
};

} // namespace dsu

#endif // DSU_RUNTIME_UPDATEABLEREGISTRY_H
