//===- runtime/UpdateableRegistry.cpp -------------------------*- C++ -*-===//

#include "runtime/UpdateableRegistry.h"

#include "support/Logging.h"

using namespace dsu;

namespace {

/// A chain is detachable only when *every* entry is graced: epochs are
/// monotonically older down the chain, but a canary gate anywhere in it
/// may still be redirecting control workers regardless of age.
bool chainGraced(const RollEntry *Head, uint64_t MinObservedEpoch) {
  for (const RollEntry *R = Head; R;
       R = R->Prev.load(std::memory_order_relaxed))
    if (!R->graced(MinObservedEpoch))
      return false;
  return true;
}

} // namespace

size_t UpdateableSlot::historySize() const {
  // History is only appended under the registry lock; size() is a benign
  // race used for reporting only.
  return History.size();
}

size_t UpdateableSlot::rollDepth() const {
  size_t N = 0;
  for (const RollEntry *R = Roll.load(std::memory_order_acquire); R;
       R = R->Prev.load(std::memory_order_acquire))
    ++N;
  return N;
}

Expected<UpdateableSlot *>
UpdateableRegistry::define(const std::string &Name, const Type *FnTy,
                           Binding Initial) {
  if (!FnTy || !FnTy->isFunction())
    return Error::make(ErrorCode::EC_Invalid,
                       "updateable '%s' requires a function type",
                       Name.c_str());
  if (!Initial.Invoker || !Initial.Ctx)
    return Error::make(ErrorCode::EC_Invalid,
                       "updateable '%s' requires an initial implementation",
                       Name.c_str());

  std::lock_guard<std::mutex> G(Lock);
  if (Slots.count(Name))
    return Error::make(ErrorCode::EC_Invalid,
                       "updateable '%s' is already defined", Name.c_str());
  auto Slot = std::make_unique<UpdateableSlot>(
      Name, FnTy, std::make_unique<Binding>(std::move(Initial)));
  UpdateableSlot *Raw = Slot.get();
  Slots.emplace(Name, std::move(Slot));
  return Raw;
}

UpdateableSlot *UpdateableRegistry::lookup(const std::string &Name) {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Slots.find(Name);
  return It == Slots.end() ? nullptr : It->second.get();
}

const UpdateableSlot *
UpdateableRegistry::lookup(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Slots.find(Name);
  return It == Slots.end() ? nullptr : It->second.get();
}

Error UpdateableRegistry::rebind(const std::string &Name, const Type *NewTy,
                                 Binding NewBinding,
                                 std::vector<VersionBump> *BumpsOut) {
  if (!NewTy || !NewTy->isFunction())
    return Error::make(ErrorCode::EC_TypeMismatch,
                       "new binding for '%s' must have a function type",
                       Name.c_str());

  std::lock_guard<std::mutex> G(Lock);
  auto It = Slots.find(Name);
  if (It == Slots.end())
    return Error::make(ErrorCode::EC_Link,
                       "cannot rebind unknown updateable '%s'",
                       Name.c_str());
  UpdateableSlot &Slot = *It->second;

  ReplaceCheck Check = checkReplacement(Slot.type(), NewTy);
  if (!Check.ok())
    return Error::make(ErrorCode::EC_TypeMismatch,
                       "rebinding '%s' rejected: %s", Name.c_str(),
                       Check.Reason.c_str());
  if (BumpsOut)
    *BumpsOut = Check.Bumps;

  auto Owned = std::make_unique<Binding>(std::move(NewBinding));
  if (Owned->Version <= Slot.newest()->Version)
    Owned->Version = Slot.newest()->Version + 1;

  DSU_LOG_INFO("rebind '%s' v%u -> v%u (%s)", Name.c_str(),
               Slot.newest()->Version, Owned->Version,
               Owned->Origin.c_str());

  const Binding *Raw = Owned.get();
  Slot.History.push_back(std::move(Owned));
  Slot.TypeHistory.push_back(NewTy);
  Slot.FnTy.store(NewTy, std::memory_order_release);
  Slot.Current.store(Raw, std::memory_order_release);
  return Error::success();
}

void UpdateableRegistry::rebindPreparedSlot(
    UpdateableSlot &Slot, const Type *NewTy,
    std::unique_ptr<Binding> NewBinding) {
  std::lock_guard<std::mutex> G(Lock);
  if (NewBinding->Version <= Slot.newest()->Version)
    NewBinding->Version = Slot.newest()->Version + 1;
  const Binding *Raw = NewBinding.get();
  Slot.History.push_back(std::move(NewBinding));
  Slot.TypeHistory.push_back(NewTy);
  Slot.FnTy.store(NewTy, std::memory_order_release);
  Slot.Current.store(Raw, std::memory_order_release);
}

RollEntry *UpdateableRegistry::rebindPreparedSlotRolling(
    UpdateableSlot &Slot, const Type *NewTy,
    std::unique_ptr<Binding> NewBinding, uint64_t MinObservedEpoch,
    std::vector<RollEntry *> &DetachedOut) {
  std::lock_guard<std::mutex> G(Lock);
  if (NewBinding->Version <= Slot.newest()->Version)
    NewBinding->Version = Slot.newest()->Version + 1;

  // Flush any chain whose whole redirection window has passed: no
  // reader's epoch can still be below a fully graced head, so future
  // resolutions never *enter* those entries — but an in-flight
  // traversal may still hold pointers to them, hence epoch-retirement
  // (by the caller) instead of free.
  RollEntry *OldHead = Slot.Roll.load(std::memory_order_relaxed);
  if (OldHead && chainGraced(OldHead, MinObservedEpoch)) {
    for (RollEntry *R = OldHead; R;
         R = R->Prev.load(std::memory_order_relaxed))
      DetachedOut.push_back(R);
    OldHead = nullptr;
  }

  // The current binding stays reachable two ways: through the slot's
  // history (rollback support, "old code stays resident") and through
  // the RollEntry for readers still inside an older epoch.
  const Binding *Old = Slot.Current.load(std::memory_order_relaxed);
  auto *Entry = new RollEntry();
  Entry->Old = Old;
  Entry->Prev.store(OldHead, std::memory_order_relaxed);
  // Epoch stays kUnpublished (UINT64_MAX): every reader resolves to Old
  // until the caller lowers it inside Domain::advanceWith.

  const Binding *Raw = NewBinding.get();
  Slot.History.push_back(std::move(NewBinding));
  Slot.TypeHistory.push_back(NewTy);
  if (!Slot.Roll.load(std::memory_order_relaxed))
    LiveRollChains.fetch_add(1, std::memory_order_relaxed);
  // Entry before Current: a reader that sees the new Current is
  // guaranteed (release/acquire on Current) to also see the entry and
  // be redirected while its epoch predates the swing.
  Slot.Roll.store(Entry, std::memory_order_release);
  Slot.FnTy.store(NewTy, std::memory_order_release);
  Slot.Current.store(Raw, std::memory_order_release);

  DSU_LOG_INFO("rolling rebind '%s' -> v%u (%s)", Slot.Name.c_str(),
               Raw->Version, Raw->Origin.c_str());
  return Entry;
}

Expected<UpdateableSlot *> UpdateableRegistry::installPreparedSlot(
    std::unique_ptr<UpdateableSlot> Slot) {
  std::lock_guard<std::mutex> G(Lock);
  const std::string &Name = Slot->name();
  if (Slots.count(Name))
    return Error::make(ErrorCode::EC_Invalid,
                       "updateable '%s' is already defined", Name.c_str());
  UpdateableSlot *Raw = Slot.get();
  Slots.emplace(Name, std::move(Slot));
  return Raw;
}

void UpdateableRegistry::flushGracedRolls(
    uint64_t MinObservedEpoch, std::vector<RollEntry *> &DetachedOut) {
  std::lock_guard<std::mutex> G(Lock);
  for (auto &[Name, Slot] : Slots) {
    (void)Name;
    RollEntry *Head = Slot->Roll.load(std::memory_order_relaxed);
    if (!Head)
      continue;
    // Mid-publication, within a reader's grace window, or carrying an
    // unresolved canary gate (control workers still depend on the
    // redirection): the chain must stay.
    if (!chainGraced(Head, MinObservedEpoch))
      continue;
    for (RollEntry *R = Head; R; R = R->Prev.load(std::memory_order_relaxed))
      DetachedOut.push_back(R);
    Slot->Roll.store(nullptr, std::memory_order_release);
    LiveRollChains.fetch_sub(1, std::memory_order_relaxed);
  }
}

Error UpdateableRegistry::rollback(const std::string &Name) {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Slots.find(Name);
  if (It == Slots.end())
    return Error::make(ErrorCode::EC_Link,
                       "cannot roll back unknown updateable '%s'",
                       Name.c_str());
  UpdateableSlot &Slot = *It->second;
  size_t N = Slot.History.size();
  if (N < 2)
    return Error::make(ErrorCode::EC_Invalid,
                       "'%s' has no prior version to roll back to",
                       Name.c_str());

  // Reinstall the previous implementation as a *new* version.
  const Binding &Prev = *Slot.History[N - 2];
  auto Owned = std::make_unique<Binding>(Prev);
  Owned->Version = Slot.newest()->Version + 1;
  Owned->Origin = "rollback-of:" + Slot.History[N - 1]->Origin;

  DSU_LOG_INFO("rollback '%s' to the v%u implementation (as v%u)",
               Name.c_str(), Prev.Version, Owned->Version);

  const Binding *Raw = Owned.get();
  const Type *PrevTy = Slot.TypeHistory[N - 2];
  Slot.History.push_back(std::move(Owned));
  Slot.TypeHistory.push_back(PrevTy);
  Slot.FnTy.store(PrevTy, std::memory_order_release);
  Slot.Current.store(Raw, std::memory_order_release);
  return Error::success();
}

std::vector<std::string> UpdateableRegistry::slotNames() const {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<std::string> Names;
  Names.reserve(Slots.size());
  for (const auto &[Name, Slot] : Slots) {
    (void)Slot;
    Names.push_back(Name);
  }
  return Names;
}

size_t UpdateableRegistry::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Slots.size();
}
