//===- runtime/RolloutController.h - Metric-gated canary rollouts -*- C++ -*-//
///
/// \file
/// The rollout control plane: commit a patch on a canary subset of the
/// worker fleet first, observe health counters for a configurable
/// window, and either promote the patch to every worker or roll it back
/// automatically — the operator never has to watch the deploy.
///
/// The state machine is
///
///     Staged -> Canary -> Observing -> Promoted
///                              \-> RolledBack
///        \-> Failed (staging rejected / timed out / rollout abandoned)
///
/// *Canary* commits a code-only patch as a rolling update whose
/// RollEntries carry a worker-id mask (see RollEntry::CanaryMask): only
/// canary workers adopt the new bindings at their quiescent points;
/// every control worker keeps executing the old code.  *Observing*
/// compares the canary group's error rate, serve latency and VTAL trap
/// count against the control group over the window, trips early on
/// clear failures, and resolves the gate:
///
///  - promotion lowers every entry's PromoteEpoch inside one epoch
///    advance, so the rest of the fleet adopts the patch at their own
///    quiescent points — still no barrier;
///  - rollback reverts each replaced slot through the registry's
///    history (under the pool's update barrier, so no request is
///    mid-flight), *then* resolves the gates, so there is no window in
///    which a control worker could adopt the bad binding.
///
/// A state-migrating patch cannot be worker-gated (state is shared, not
/// per-worker): it gets the degenerate but safe form — commit under the
/// barrier, observe fleet health against the pre-commit baseline, and
/// roll back through the same barrier if a gate trips.
///
/// While a rollout is in flight the runtime-wide rollout latch freezes
/// the ordinary commit pipeline (Runtime::rolloutActive()): a stacked
/// commit during observation would corrupt the one-version-deep history
/// auto-rollback depends on.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_ROLLOUTCONTROLLER_H
#define DSU_RUNTIME_ROLLOUTCONTROLLER_H

#include "net/WorkerStats.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dsu {

class Runtime;
class UpdateTransaction;
struct RollEntry;

/// Health-gate and pacing configuration for one rollout.
struct RolloutOptions {
  /// Size of the canary group (clamped to fleet size - 1 and to the
  /// 64-bit mask width); the lowest-indexed workers are chosen.
  unsigned CanaryWorkers = 1;

  /// Observation window after the canary commit.
  uint64_t WindowMs = 500;

  /// Error gate: trips when (canary 5xx rate - control 5xx rate)
  /// exceeds this, with at least MinSamples canary serves observed.
  double MaxErrorDelta = 0.01;

  /// Latency gate: trips when (canary mean serve us - control mean
  /// serve us) exceeds this.  Negative disables the gate (default: a
  /// canary sharing a small host with the control group sees noisy
  /// scheduling latency).
  double MaxLatencyDeltaUs = -1;

  /// Sample floor: the error and latency gates need this many serves in
  /// the canary group before they may trip (or block promotion).  An
  /// idle window with no traffic and no traps promotes.
  uint64_t MinSamples = 8;

  /// Trap gate: trips when the patch's new bindings trap (VTAL runtime
  /// fault or fuel exhaustion) more than this many times.  Zero
  /// tolerance by default — traps surface to callers as zero values,
  /// not HTTP errors, so the error gate alone would miss them.
  uint64_t MaxCanaryTraps = 0;

  /// Abandon the rollout if the patch has not staged (and reached the
  /// front of the update queue) within this deadline; the transaction
  /// is aborted so it cannot block later updates.
  uint64_t StageTimeoutMs = 10000;
};

/// One rollout's introspectable record (GET /admin/rollouts).
struct RolloutRecord {
  uint64_t Id = 0;
  uint64_t TxId = 0;
  std::string PatchId;
  std::string State;   ///< "staged", "canary", "observing", "promoted",
                       ///< "rolled-back", "failed"
  std::string Mode;    ///< "canary" (worker-gated rolling) or "barrier"
                       ///< (degenerate commit-then-observe)
  std::string Verdict; ///< "" until resolved, then "promoted"/"rolled-back"
  std::string Reason;  ///< which gate tripped, or why the rollout failed
  uint64_t CanaryMask = 0;
  uint64_t WindowMs = 0;

  double DetectMs = 0; ///< canary commit -> gate verdict
  double RevertMs = 0; ///< gate trip -> rollback complete (0 if promoted)

  // Group health over the observation window (deltas, not totals).
  uint64_t CanaryRequests = 0;
  uint64_t CanaryServes = 0;
  uint64_t CanaryErrors = 0;
  uint64_t CanaryTraps = 0;
  uint64_t ControlRequests = 0;
  uint64_t ControlServes = 0;
  uint64_t ControlErrors = 0;
  double CanaryErrorRate = 0;
  double ControlErrorRate = 0;
};

/// Drives metric-gated canary rollouts over a Runtime.  The serving
/// plane is injected as hooks so this stays a runtime-layer component:
/// the net layer (or a test) supplies worker counters and a quiescent
/// runner without the runtime linking against it.
class RolloutController {
public:
  struct Hooks {
    /// Fleet size; 0 or unset means "no worker fleet" and forces the
    /// degenerate barrier mode with baseline-relative gates.
    std::function<size_t()> WorkerCount;
    /// Per-worker health counters, indexed [0, WorkerCount()).
    std::function<const net::WorkerStats *(size_t)> Stats;
    /// Runs a function with every worker parked at its update point
    /// (ReactorPool::runQuiescent).  Unset: run directly (single-thread
    /// embeddings and tests).
    std::function<Error(const std::function<Error()> &)> RunQuiescent;
    /// Nudges workers out of epoll_wait so held/terminal transactions
    /// are noticed promptly.  Optional.
    std::function<void()> Wake;
  };

  RolloutController(Runtime &RT, Hooks H);
  ~RolloutController();
  RolloutController(const RolloutController &) = delete;
  RolloutController &operator=(const RolloutController &) = delete;

  /// Starts a rollout of a patch artifact (VTAL/manifest text, e.g. the
  /// body of POST /admin/rollout).  Stages asynchronously, commits
  /// canary-gated, observes, and resolves the verdict — all on the
  /// rollout thread.  Returns the rollout id immediately, or EC_Busy if
  /// a rollout is already in flight (one at a time: the gates compare
  /// counters that a concurrent rollout would pollute).
  Expected<uint64_t> startArtifactText(std::string Text,
                                       std::string SourceName,
                                       RolloutOptions Opts);

  /// All rollouts, newest last.
  std::vector<RolloutRecord> rollouts() const;

  /// One rollout by id.
  Expected<RolloutRecord> rollout(uint64_t Id) const;

  /// True while a rollout is staging/observing.
  bool busy() const { return Busy.load(std::memory_order_acquire); }

  /// Blocks until the in-flight rollout (if any) resolves.
  void waitIdle();

private:
  struct GroupSample {
    uint64_t Requests = 0;
    uint64_t Serves = 0;
    uint64_t Errors = 0;
    uint64_t ServeUs = 0;
  };

  void runOne(std::shared_ptr<UpdateTransaction> Tx, RolloutOptions Opts,
              size_t RecIdx);
  void sampleGroups(uint64_t Mask, GroupSample &Canary,
                    GroupSample &Control) const;
  uint64_t trapsInNewBindings(const std::vector<std::string> &Names) const;
  void setRecord(size_t RecIdx, const std::function<void(RolloutRecord &)> &Fn);
  Error revertProvides(const std::vector<std::string> &Names);

  Runtime &RT;
  Hooks H;

  mutable std::mutex Lock; ///< guards Records and Thread handoff
  std::vector<RolloutRecord> Records;
  std::thread Thread; ///< at most one rollout in flight
  std::atomic<bool> Busy{false};
  uint64_t NextId = 1;
};

} // namespace dsu

#endif // DSU_RUNTIME_ROLLOUTCONTROLLER_H
