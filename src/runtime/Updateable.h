//===- runtime/Updateable.h - Typed updateable handles --------*- C++ -*-===//
///
/// \file
/// Updateable<Sig> is the typed call-side view of an updateable slot: the
/// reproduction of the indirected call the PLDI 2001 compiler emits for
/// references to updateable functions.  Invoking the handle costs one
/// atomic acquire load plus one indirect call (bench_indirection, E1).
///
/// CTypeOf<T> maps the C++ scalar types used in updateable signatures to
/// dsu type descriptors so definitions can be typechecked end to end:
///   int64_t -> int, double -> float, bool -> bool,
///   std::string -> string, void -> unit.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATEABLE_H
#define DSU_RUNTIME_UPDATEABLE_H

#include "runtime/UpdateableRegistry.h"
#include "types/Type.h"

#include <cstdint>
#include <string>

namespace dsu {

/// Maps supported C++ types to dsu type descriptors.  Only scalar shapes
/// cross the updateable boundary directly; aggregate state crosses via
/// the typed state registry (state/StateCell.h).
template <typename T> struct CTypeOf;

template <> struct CTypeOf<int64_t> {
  static const Type *get(TypeContext &Ctx) { return Ctx.intType(); }
};
template <> struct CTypeOf<double> {
  static const Type *get(TypeContext &Ctx) { return Ctx.floatType(); }
};
template <> struct CTypeOf<bool> {
  static const Type *get(TypeContext &Ctx) { return Ctx.boolType(); }
};
template <> struct CTypeOf<std::string> {
  static const Type *get(TypeContext &Ctx) { return Ctx.stringType(); }
};
template <> struct CTypeOf<void> {
  static const Type *get(TypeContext &Ctx) { return Ctx.unitType(); }
};

/// Builds the dsu function type for a C++ signature R(Args...).
template <typename R, typename... Args>
const Type *fnTypeOf(TypeContext &Ctx) {
  return Ctx.fnType({CTypeOf<Args>::get(Ctx)...}, CTypeOf<R>::get(Ctx));
}

template <typename Sig> class Updateable;

/// Typed handle over an UpdateableSlot.
template <typename R, typename... Args> class Updateable<R(Args...)> {
public:
  Updateable() = default;
  explicit Updateable(UpdateableSlot *Slot) : Slot(Slot) {}

  bool valid() const { return Slot != nullptr; }
  UpdateableSlot *slot() const { return Slot; }
  uint32_t version() const { return Slot->currentVersion(); }

  /// The indirected call.  An ActivationTracker frame marks this thread
  /// as executing updateable code for the duration (the paper's
  /// activeness information for update timing).
  R operator()(Args... As) const {
    assert(Slot && "calling an unbound updateable handle");
    ActivationTracker::Frame F;
    const Binding *B = Slot->current();
    auto Invoke = reinterpret_cast<R (*)(void *, Args...)>(B->Invoker);
    return Invoke(B->Ctx, static_cast<Args &&>(As)...);
  }

  /// Untracked variant used only by the indirection microbenchmark to
  /// separate the cost of the indirection itself from the cost of
  /// activation tracking.
  R callUntracked(Args... As) const {
    const Binding *B = Slot->current();
    auto Invoke = reinterpret_cast<R (*)(void *, Args...)>(B->Invoker);
    return Invoke(B->Ctx, static_cast<Args &&>(As)...);
  }

private:
  UpdateableSlot *Slot = nullptr;
};

/// Defines an updateable function in \p Reg with signature derived from
/// the C++ function pointer and returns the typed handle.
template <typename R, typename... Args>
Expected<Updateable<R(Args...)>>
defineUpdateable(UpdateableRegistry &Reg, TypeContext &Ctx,
                 const std::string &Name, R (*Initial)(Args...),
                 std::string Origin = "program") {
  const Type *FnTy = fnTypeOf<R, Args...>(Ctx);
  Expected<UpdateableSlot *> Slot =
      Reg.define(Name, FnTy, makeRawBinding(Initial, 1, std::move(Origin)));
  if (!Slot)
    return Slot.takeError();
  return Updateable<R(Args...)>(*Slot);
}

/// Binds an existing slot as a typed handle, checking that the slot's
/// recorded type matches the C++ signature.
template <typename Sig>
Expected<Updateable<Sig>> bindUpdateable(UpdateableRegistry &Reg,
                                         TypeContext &Ctx,
                                         const std::string &Name);

template <typename R, typename... Args>
Expected<Updateable<R(Args...)>>
bindUpdateableImpl(UpdateableRegistry &Reg, TypeContext &Ctx,
                   const std::string &Name) {
  UpdateableSlot *Slot = Reg.lookup(Name);
  if (!Slot)
    return Error::make(ErrorCode::EC_Link, "no updateable named '%s'",
                       Name.c_str());
  const Type *Want = fnTypeOf<R, Args...>(Ctx);
  if (!typesEqual(Slot->type(), Want))
    return Error::make(ErrorCode::EC_TypeMismatch,
                       "updateable '%s' has type '%s', handle wants '%s'",
                       Name.c_str(), Slot->type()->str().c_str(),
                       Want->str().c_str());
  return Updateable<R(Args...)>(Slot);
}

template <typename Sig> struct UpdateableBinder;

template <typename R, typename... Args>
struct UpdateableBinder<R(Args...)> {
  static Expected<Updateable<R(Args...)>>
  bind(UpdateableRegistry &Reg, TypeContext &Ctx, const std::string &Name) {
    return bindUpdateableImpl<R, Args...>(Reg, Ctx, Name);
  }
};

template <typename Sig>
Expected<Updateable<Sig>> bindUpdateable(UpdateableRegistry &Reg,
                                         TypeContext &Ctx,
                                         const std::string &Name) {
  return UpdateableBinder<Sig>::bind(Reg, Ctx, Name);
}

} // namespace dsu

#endif // DSU_RUNTIME_UPDATEABLE_H
