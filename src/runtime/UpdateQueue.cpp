//===- runtime/UpdateQueue.cpp --------------------------------*- C++ -*-===//

#include "runtime/UpdateQueue.h"

#include "support/Logging.h"

using namespace dsu;

void UpdateQueue::enqueue(std::string Name, Applier Apply) {
  std::lock_guard<std::mutex> G(Lock);
  Items.push_back(Item{std::move(Name), std::move(Apply)});
  Pending.store(true, std::memory_order_release);
}

UpdatePointOutcome UpdateQueue::drain() {
  std::vector<Item> Work;
  {
    std::lock_guard<std::mutex> G(Lock);
    Work.swap(Items);
    Pending.store(false, std::memory_order_release);
  }

  UpdatePointOutcome Outcome;
  for (Item &I : Work) {
    if (Error E = I.Apply()) {
      ++Outcome.Failed;
      std::string Diag = I.Name + ": " + E.str();
      DSU_LOG_WARN("update rejected: %s", Diag.c_str());
      Outcome.Diagnostics.push_back(std::move(Diag));
      continue;
    }
    ++Outcome.Applied;
    DSU_LOG_INFO("update applied: %s", I.Name.c_str());
  }
  return Outcome;
}

size_t UpdateQueue::depth() const {
  std::lock_guard<std::mutex> G(Lock);
  return Items.size();
}
