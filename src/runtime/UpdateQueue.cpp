//===- runtime/UpdateQueue.cpp --------------------------------*- C++ -*-===//

#include "runtime/UpdateQueue.h"

using namespace dsu;

bool UpdateQueue::enqueue(std::shared_ptr<UpdateTransaction> Tx) {
  std::lock_guard<std::mutex> G(Lock);
  if (Tx->Enqueued)
    return false;
  Tx->Enqueued = true;
  Items.push_back(std::move(Tx));
  refreshLocked();
  return true;
}

std::shared_ptr<UpdateTransaction> UpdateQueue::popActionable() {
  std::lock_guard<std::mutex> G(Lock);
  if (Items.empty() || !actionable(*Items.front())) {
    refreshLocked();
    return nullptr;
  }
  std::shared_ptr<UpdateTransaction> Tx = std::move(Items.front());
  Items.pop_front();
  refreshLocked();
  return Tx;
}

std::shared_ptr<UpdateTransaction>
UpdateQueue::popActionableIf(bool (*Accept)(const UpdateTransaction &)) {
  std::lock_guard<std::mutex> G(Lock);
  if (Items.empty() || !actionable(*Items.front()) ||
      !Accept(*Items.front())) {
    refreshLocked();
    return nullptr;
  }
  std::shared_ptr<UpdateTransaction> Tx = std::move(Items.front());
  Items.pop_front();
  refreshLocked();
  return Tx;
}

std::shared_ptr<UpdateTransaction> UpdateQueue::front() const {
  std::lock_guard<std::mutex> G(Lock);
  return Items.empty() ? nullptr : Items.front();
}

void UpdateQueue::pushFront(std::shared_ptr<UpdateTransaction> Tx) {
  std::lock_guard<std::mutex> G(Lock);
  Items.push_front(std::move(Tx));
  refreshLocked();
}

void UpdateQueue::refresh() {
  std::lock_guard<std::mutex> G(Lock);
  refreshLocked();
}

void UpdateQueue::refreshLocked() {
  Pending.store(!Items.empty() && actionable(*Items.front()),
                std::memory_order_release);
}

size_t UpdateQueue::depth() const {
  std::lock_guard<std::mutex> G(Lock);
  return Items.size();
}

std::vector<std::shared_ptr<UpdateTransaction>> UpdateQueue::snapshot() const {
  std::lock_guard<std::mutex> G(Lock);
  return std::vector<std::shared_ptr<UpdateTransaction>>(Items.begin(),
                                                         Items.end());
}
