//===- runtime/UpdateTransaction.cpp --------------------------*- C++ -*-===//

#include "runtime/UpdateTransaction.h"

using namespace dsu;

const char *dsu::updatePhaseName(UpdatePhase P) {
  switch (P) {
  case UpdatePhase::Staging:
    return "staging";
  case UpdatePhase::Ready:
    return "ready";
  case UpdatePhase::Committing:
    return "committing";
  case UpdatePhase::Committed:
    return "committed";
  case UpdatePhase::StageFailed:
    return "stage-failed";
  case UpdatePhase::CommitFailed:
    return "commit-failed";
  case UpdatePhase::Aborted:
    return "aborted";
  case UpdatePhase::TimedOut:
    return "timed-out";
  }
  return "unknown";
}

std::string UpdateTransaction::patchId() const {
  std::lock_guard<std::mutex> G(RecLock);
  return Rec.PatchId;
}

UpdateRecord UpdateTransaction::record() const {
  std::lock_guard<std::mutex> G(RecLock);
  UpdateRecord R = Rec;
  R.Phase = updatePhaseName(phase());
  return R;
}
