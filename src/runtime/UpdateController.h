//===- runtime/UpdateController.h - Asynchronous staging -------*- C++ -*-//
///
/// \file
/// The operator-facing staging engine: accepts patches (as in-memory
/// Patch values or as raw artifact text POSTed over the control plane)
/// and stages them on a dedicated worker thread, so the serving thread
/// never pays for verification, link preparation, or state-transform
/// builds.  Submission order fixes commit order: each submission is
/// enqueued on the runtime's update queue immediately, and the queue
/// commits strictly front-first.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_RUNTIME_UPDATECONTROLLER_H
#define DSU_RUNTIME_UPDATECONTROLLER_H

#include "runtime/UpdateTransaction.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace dsu {

class Runtime;

/// Owns the staging worker of one runtime.  Obtain via
/// Runtime::controller(); destroyed with the runtime.
class UpdateController {
public:
  explicit UpdateController(Runtime &RT);
  ~UpdateController();
  UpdateController(const UpdateController &) = delete;
  UpdateController &operator=(const UpdateController &) = delete;

  /// Submits \p P for asynchronous staging and enqueues it for the next
  /// update point.  Returns immediately with the transaction handle.
  StagedUpdate stagePatch(Patch P);

  /// Submits a patch artifact by content (a VTAL/manifest patch text,
  /// e.g. the body of POST /admin/patches).  Parsing, verification and
  /// preparation all happen on the worker; a malformed artifact becomes
  /// a stage-failed transaction visible in the update log.
  /// With \p HoldForRollout set, the transaction is marked
  /// HeldForRollout *before* it is enqueued, so no pool worker can
  /// commit it at an update point — the rollout controller owns its
  /// commit and verdict.
  StagedUpdate stageArtifactText(std::string Text, std::string SourceName,
                                 bool HoldForRollout = false);

  /// Submits a patch artifact by path (.so native or .dsup VTAL).
  StagedUpdate stageArtifactFile(std::string Path);

  /// Installs a notification fired (on the worker thread) every time a
  /// submitted job finishes staging — i.e. whenever a transaction may
  /// have become ready to commit.  The multi-core serving plane uses it
  /// to wake parked reactors so the update barrier forms without
  /// waiting out a poll timeout.  Pass nullptr to clear.
  void setOnStaged(std::function<void()> Fn);

  /// Jobs accepted but not yet fully staged.
  size_t backlog() const;

  /// Blocks until every accepted job has finished staging (test hook;
  /// commit still happens at the program's update point).
  void waitIdle();

private:
  struct Job {
    std::shared_ptr<UpdateTransaction> Tx;
    enum { InMemory, Text, File } Kind = InMemory;
    Patch P;
    std::string Artifact; ///< text or path
    std::string SourceName;
  };

  StagedUpdate submit(Job J);
  void workerMain();

  Runtime &RT;
  mutable std::mutex Lock;
  std::condition_variable CV;
  std::condition_variable IdleCV;
  std::deque<Job> Jobs;
  std::function<void()> OnStaged; ///< guarded by Lock; invoked unlocked
  bool Stopping = false;
  unsigned InFlight = 0; ///< jobs popped but still staging
  std::thread Worker;
};

} // namespace dsu

#endif // DSU_RUNTIME_UPDATECONTROLLER_H
