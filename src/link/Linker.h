//===- link/Linker.h - Two-phase type-directed linking --------*- C++ -*-===//
///
/// \file
/// The dynamic linker proper: takes a LinkUnit (what a patch provides and
/// imports), checks everything against the running program, and only then
/// mutates the updateable registry.
///
/// The two phases reproduce the atomicity property of the PLDI 2001
/// system: a patch that fails any check (unresolved import, type
/// mismatch, missing transformer) is rejected *before* any binding
/// changes, so the program is never left half-updated.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_LINK_LINKER_H
#define DSU_LINK_LINKER_H

#include "link/SymbolTable.h"
#include "runtime/UpdateableRegistry.h"
#include "types/Compat.h"

#include <memory>
#include <string>
#include <vector>

namespace dsu {

/// One definition a patch supplies.
struct ProvideRequest {
  std::string Name;
  const Type *Ty = nullptr;
  Binding Code;
};

/// One symbol a patch needs from the running program.
struct ImportRequest {
  std::string Name;
  const Type *Ty = nullptr;
};

/// Everything a patch asks of the linker.
struct LinkUnit {
  std::string Name; ///< diagnostic label (usually the patch id)
  std::vector<ProvideRequest> Provides;
  std::vector<ImportRequest> Imports;
};

/// The validated plan produced by Linker::prepare().
struct LinkPlan {
  LinkUnit Unit;
  /// Resolved import definitions, parallel to Unit.Imports.
  std::vector<const SymbolDef *> ResolvedImports;
  /// Provides that replace an existing slot (vs. define a new one).
  std::vector<bool> IsReplacement;
  /// The resolved slot of each replacement (nullptr for defines),
  /// parallel to Unit.Provides.  Slot pointers are stable for the
  /// program's life, so commit swings them without a name lookup.
  std::vector<UpdateableSlot *> ResolvedSlots;
  /// Named-type version bumps across all replacements; the update engine
  /// must hold a transformer for each before committing.
  std::vector<VersionBump> RequiredBumps;
  /// Each provide's binding, heap-allocated at prepare time (parallel to
  /// Unit.Provides, whose Code fields it was moved from) so the commit
  /// pause pays no allocation.  restoreCode() puts the code back for a
  /// re-prepare of the same unit.
  std::vector<std::unique_ptr<Binding>> PreparedCode;
  /// Fully constructed slots for the provides that *define* (nullptr for
  /// replacements), also built at prepare time; commit only links each
  /// into the registry.  They hold a copy of the binding, so
  /// PreparedCode stays intact for restoreCode().
  std::vector<std::unique_ptr<UpdateableSlot>> PreparedSlots;

  /// Moves PreparedCode back into Unit.Provides so the unit can be
  /// re-prepared (plan revalidation after another commit landed).
  void restoreCode() {
    for (size_t I = 0; I != PreparedCode.size() && I != Unit.Provides.size();
         ++I)
      if (PreparedCode[I])
        Unit.Provides[I].Code = std::move(*PreparedCode[I]);
    PreparedCode.clear();
  }
};

/// Stateless two-phase linker over a registry and export table.
class Linker {
public:
  Linker(UpdateableRegistry &Reg, SymbolTable &Syms)
      : Registry(Reg), Symbols(Syms) {}

  /// Phase 1: checks the whole unit.  No program state changes.
  Expected<LinkPlan> prepare(LinkUnit Unit) const;

  /// Phase 2: installs every provide.  Must be called with the plan from
  /// prepare(); by the single-updater discipline (updates apply at update
  /// points), nothing can invalidate the plan in between.  All or
  /// nothing: if an install fails mid-way, every slot already swung by
  /// this commit is rolled back to its pre-commit binding before the
  /// error returns, so the program is never left half-updated.
  ///
  /// With \p Rolling set (code-only patches, no global quiescence), the
  /// replacements swing through per-slot RollEntries and one epoch
  /// advance: a reader thread adopts the whole patch at its own next
  /// quiescent point, never mid-request, and the superseded redirection
  /// records are epoch-retired instead of freed.  Callers guarantee a
  /// rolling plan migrates no state and bumps no types.
  ///
  /// \p CanaryMask gates a rolling commit on worker identity: with a
  /// mask other than UINT64_MAX, only workers whose bit is set adopt the
  /// new bindings — every other reader stays redirected to the old code
  /// until the rollout controller resolves the gate (promotion lowers
  /// each entry's PromoteEpoch; rollback reverts the slots first).  The
  /// published entries are appended to \p GatedOut, the controller's
  /// handle for resolving them.
  Error commit(LinkPlan Plan, bool Rolling = false,
               uint64_t CanaryMask = UINT64_MAX,
               std::vector<RollEntry *> *GatedOut = nullptr);

private:
  Error commitRolling(LinkPlan Plan, uint64_t CanaryMask,
                      std::vector<RollEntry *> *GatedOut);

  UpdateableRegistry &Registry;
  SymbolTable &Symbols;
};

} // namespace dsu

#endif // DSU_LINK_LINKER_H
