//===- link/Linker.cpp ----------------------------------------*- C++ -*-===//

#include "link/Linker.h"

#include "support/Logging.h"

#include <algorithm>
#include <set>

using namespace dsu;

Expected<LinkPlan> Linker::prepare(LinkUnit Unit) const {
  LinkPlan Plan;

  // Every import must resolve, with an identical type, before we look at
  // provides at all.
  for (const ImportRequest &Imp : Unit.Imports) {
    if (!Imp.Ty)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: import '%s' carries no type",
                         Unit.Name.c_str(), Imp.Name.c_str());
    Expected<const SymbolDef *> Def = Symbols.resolve(Imp.Name, Imp.Ty);
    if (!Def)
      return Def.takeError().withContext(Unit.Name);
    Plan.ResolvedImports.push_back(*Def);
  }

  // Provides must be well-formed, unique within the unit, and each
  // replacement must pass the compatibility judgement.
  std::set<std::string> Seen;
  for (const ProvideRequest &Prov : Unit.Provides) {
    if (!Prov.Ty || !Prov.Ty->isFunction())
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: provide '%s' needs a function type",
                         Unit.Name.c_str(), Prov.Name.c_str());
    if (!Prov.Code.Invoker || !Prov.Code.Ctx)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: provide '%s' carries no code",
                         Unit.Name.c_str(), Prov.Name.c_str());
    if (!Seen.insert(Prov.Name).second)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: duplicate provide '%s'", Unit.Name.c_str(),
                         Prov.Name.c_str());

    const UpdateableSlot *Slot = Registry.lookup(Prov.Name);
    Plan.IsReplacement.push_back(Slot != nullptr);
    if (!Slot)
      continue;

    ReplaceCheck Check = checkReplacement(Slot->type(), Prov.Ty);
    if (!Check.ok())
      return Error::make(ErrorCode::EC_TypeMismatch,
                         "%s: provide '%s' rejected: %s",
                         Unit.Name.c_str(), Prov.Name.c_str(),
                         Check.Reason.c_str());
    for (const VersionBump &B : Check.Bumps)
      if (std::find(Plan.RequiredBumps.begin(), Plan.RequiredBumps.end(),
                    B) == Plan.RequiredBumps.end())
        Plan.RequiredBumps.push_back(B);
  }

  Plan.Unit = std::move(Unit);
  return Plan;
}

Error Linker::commit(LinkPlan Plan) {
  for (size_t I = 0; I != Plan.Unit.Provides.size(); ++I) {
    ProvideRequest &Prov = Plan.Unit.Provides[I];
    if (Plan.IsReplacement[I]) {
      if (Error E = Registry.rebind(Prov.Name, Prov.Ty,
                                    std::move(Prov.Code), nullptr))
        return E.withContext(Plan.Unit.Name +
                             ": commit failed mid-way (plan raced?)");
      continue;
    }
    Expected<UpdateableSlot *> Slot =
        Registry.define(Prov.Name, Prov.Ty, std::move(Prov.Code));
    if (!Slot)
      return Slot.takeError().withContext(
          Plan.Unit.Name + ": commit failed mid-way (plan raced?)");
  }
  DSU_LOG_INFO("%s: linked %zu provide(s), %zu import(s)",
               Plan.Unit.Name.c_str(), Plan.Unit.Provides.size(),
               Plan.Unit.Imports.size());
  return Error::success();
}
