//===- link/Linker.cpp ----------------------------------------*- C++ -*-===//

#include "link/Linker.h"

#include "support/Logging.h"
#include "trace/Trace.h"

#include <algorithm>
#include <set>

using namespace dsu;

Expected<LinkPlan> Linker::prepare(LinkUnit Unit) const {
  trace::Span Sp("link", "prepare", Unit.Provides.size());
  LinkPlan Plan;

  // Every import must resolve, with an identical type, before we look at
  // provides at all.
  for (const ImportRequest &Imp : Unit.Imports) {
    if (!Imp.Ty)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: import '%s' carries no type",
                         Unit.Name.c_str(), Imp.Name.c_str());
    Expected<const SymbolDef *> Def = Symbols.resolve(Imp.Name, Imp.Ty);
    if (!Def)
      return Def.takeError().withContext(Unit.Name);
    Plan.ResolvedImports.push_back(*Def);
  }

  // Provides must be well-formed, unique within the unit, and each
  // replacement must pass the compatibility judgement.
  std::set<std::string> Seen;
  for (const ProvideRequest &Prov : Unit.Provides) {
    if (!Prov.Ty || !Prov.Ty->isFunction())
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: provide '%s' needs a function type",
                         Unit.Name.c_str(), Prov.Name.c_str());
    if (!Prov.Code.Invoker || !Prov.Code.Ctx)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: provide '%s' carries no code",
                         Unit.Name.c_str(), Prov.Name.c_str());
    if (!Seen.insert(Prov.Name).second)
      return Error::make(ErrorCode::EC_Invalid,
                         "%s: duplicate provide '%s'", Unit.Name.c_str(),
                         Prov.Name.c_str());

    UpdateableSlot *Slot = Registry.lookup(Prov.Name);
    Plan.IsReplacement.push_back(Slot != nullptr);
    Plan.ResolvedSlots.push_back(Slot);
    if (!Slot)
      continue;

    ReplaceCheck Check = checkReplacement(Slot->type(), Prov.Ty);
    if (!Check.ok())
      return Error::make(ErrorCode::EC_TypeMismatch,
                         "%s: provide '%s' rejected: %s",
                         Unit.Name.c_str(), Prov.Name.c_str(),
                         Check.Reason.c_str());
    for (const VersionBump &B : Check.Bumps)
      if (std::find(Plan.RequiredBumps.begin(), Plan.RequiredBumps.end(),
                    B) == Plan.RequiredBumps.end())
        Plan.RequiredBumps.push_back(B);
  }

  // Pre-allocate every binding — and pre-construct the slots of new
  // definitions — now, at stage time, so the commit pause is only
  // pointer swings plus one registry insert per new name.
  Plan.PreparedCode.reserve(Unit.Provides.size());
  Plan.PreparedSlots.reserve(Unit.Provides.size());
  for (size_t I = 0; I != Unit.Provides.size(); ++I) {
    ProvideRequest &Prov = Unit.Provides[I];
    Plan.PreparedCode.push_back(
        std::make_unique<Binding>(std::move(Prov.Code)));
    Plan.PreparedSlots.push_back(
        Plan.IsReplacement[I]
            ? nullptr
            : std::make_unique<UpdateableSlot>(
                  Prov.Name, Prov.Ty,
                  std::make_unique<Binding>(*Plan.PreparedCode[I])));
  }

  Plan.Unit = std::move(Unit);
  return Plan;
}

Error Linker::commit(LinkPlan Plan, bool Rolling, uint64_t CanaryMask,
                     std::vector<RollEntry *> *GatedOut) {
  trace::Span Sp("link", Rolling ? "commit.rolling" : "commit.barrier",
                 Plan.Unit.Provides.size());
  if (Rolling)
    return commitRolling(std::move(Plan), CanaryMask, GatedOut);
  // On a mid-way failure every slot swung so far — the replacements in
  // Provides[0, I) — is unwound.  (A slot *defined* by this commit
  // cannot be removed — handles may already name it — but a dangling new
  // definition is harmless; only replacements change behaviour the
  // program can observe.)  No bookkeeping allocation on the happy path:
  // the provide index is the undo log.
  auto FailAtomically = [&](size_t Done, Error E) {
    for (size_t I = Done; I-- > 0;) {
      if (!Plan.IsReplacement[I])
        continue;
      if (Error R = Registry.rollback(Plan.Unit.Provides[I].Name))
        DSU_LOG_WARN("%s: rollback of '%s' after failed commit also "
                     "failed: %s",
                     Plan.Unit.Name.c_str(),
                     Plan.Unit.Provides[I].Name.c_str(), R.str().c_str());
    }
    return E.withContext(Plan.Unit.Name +
                         ": commit failed mid-way; partially committed "
                         "slots rolled back");
  };

  assert(Plan.PreparedCode.size() == Plan.Unit.Provides.size() &&
         "commit needs the plan prepare() produced");
  for (size_t I = 0; I != Plan.Unit.Provides.size(); ++I) {
    ProvideRequest &Prov = Plan.Unit.Provides[I];
    // The prepared paths skip the compatibility judgement: prepare()
    // already ran it, and stale plans are re-prepared before commit.
    if (Plan.IsReplacement[I]) {
      Registry.rebindPreparedSlot(*Plan.ResolvedSlots[I], Prov.Ty,
                                  std::move(Plan.PreparedCode[I]));
      continue;
    }
    Expected<UpdateableSlot *> Slot =
        Registry.installPreparedSlot(std::move(Plan.PreparedSlots[I]));
    if (!Slot)
      return FailAtomically(I, Slot.takeError());
  }
  DSU_LOG_DEBUG("%s: linked %zu provide(s), %zu import(s)",
                Plan.Unit.Name.c_str(), Plan.Unit.Provides.size(),
                Plan.Unit.Imports.size());
  return Error::success();
}

Error Linker::commitRolling(LinkPlan Plan, uint64_t CanaryMask,
                            std::vector<RollEntry *> *GatedOut) {
  assert(Plan.PreparedCode.size() == Plan.Unit.Provides.size() &&
         "commit needs the plan prepare() produced");

  // New definitions first: they are the only fallible installs, and a
  // name nobody references yet has no readers to keep consistent — so a
  // failure here rejects the patch before any replacement swings.
  for (size_t I = 0; I != Plan.Unit.Provides.size(); ++I) {
    if (Plan.IsReplacement[I])
      continue;
    Expected<UpdateableSlot *> Slot =
        Registry.installPreparedSlot(std::move(Plan.PreparedSlots[I]));
    if (!Slot)
      return Slot.takeError().withContext(
          Plan.Unit.Name + ": rolling commit rejected before any binding "
                           "swung");
  }

  // Replacements: swing every slot behind still-unpublished RollEntries
  // (all readers keep resolving to the old binding), then lower every
  // entry's epoch to E inside one advanceWith — the instant E becomes
  // observable, all of them switch together.  A reader therefore sees
  // the whole patch or none of it, decided by its own quiescent point.
  uint64_t MinObserved = epoch::domain().minObservedEpoch();
  std::vector<RollEntry *> NewEntries;
  std::vector<RollEntry *> Detached;
  for (size_t I = 0; I != Plan.Unit.Provides.size(); ++I) {
    if (!Plan.IsReplacement[I])
      continue;
    RollEntry *E = Registry.rebindPreparedSlotRolling(
        *Plan.ResolvedSlots[I], Plan.Unit.Provides[I].Ty,
        std::move(Plan.PreparedCode[I]), MinObserved, Detached);
    NewEntries.push_back(E);
  }

  // Canary gating: arm the gate while each entry's epoch is still
  // unpublished (everyone resolves to Old regardless of mask), so no
  // reader can observe a swing epoch without also observing the gate.
  if (CanaryMask != UINT64_MAX)
    for (RollEntry *R : NewEntries)
      R->CanaryMask.store(CanaryMask, std::memory_order_release);
  if (GatedOut)
    GatedOut->insert(GatedOut->end(), NewEntries.begin(),
                     NewEntries.end());

  if (!NewEntries.empty()) {
    struct InstallCtx {
      std::vector<RollEntry *> *Entries;
    } Ctx{&NewEntries};
    epoch::domain().advanceWith(
        [](uint64_t E, void *Raw) {
          auto *C = static_cast<InstallCtx *>(Raw);
          for (RollEntry *R : *C->Entries)
            R->Epoch.store(E, std::memory_order_release);
        },
        &Ctx);
  }

  // Superseded redirection records from earlier rolls whose grace
  // period has fully passed: retired, not freed — an in-flight chain
  // traversal may still touch them.
  for (RollEntry *R : Detached)
    epoch::retireObject(R);

  DSU_LOG_DEBUG("%s: rolling-linked %zu provide(s) without a barrier",
                Plan.Unit.Name.c_str(), Plan.Unit.Provides.size());
  return Error::success();
}
