//===- link/SymbolTable.h - Typed export table ----------------*- C++ -*-===//
///
/// \file
/// The running program's typed export table: the symbols a dynamic patch
/// may import, each carrying a dsu type descriptor.  Resolution is
/// type-directed exactly as in the PLDI 2001 system: an import binds only
/// when the exported definition's type matches the imported type.
///
/// Host exports are the bridge by which VTAL patch code calls back into
/// the running C++ program (and by which native patches obtain helper
/// entry points without visibility into C++ mangled names).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_LINK_SYMBOLTABLE_H
#define DSU_LINK_SYMBOLTABLE_H

#include "support/Error.h"
#include "types/Type.h"
#include "vtal/Interp.h"

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace dsu {

/// One exported definition.
struct SymbolDef {
  std::string Name;
  const Type *Ty = nullptr;

  /// Address for native importers (may be null for interpreter-only
  /// exports).
  void *Addr = nullptr;

  /// Callable for VTAL importers (may be empty for native-only exports).
  vtal::HostFn Host;
};

/// Thread-safe name -> typed definition map.
class SymbolTable {
public:
  /// Registers an export; fails on duplicate names.
  Error addExport(SymbolDef Def);

  /// Looks up by name only; nullptr when absent.  The returned pointer
  /// stays valid for the table's lifetime (exports are never removed —
  /// the program cannot retract capabilities patches already linked
  /// against).
  const SymbolDef *lookup(const std::string &Name) const;

  /// Type-directed resolution: finds \p Name and checks that its type
  /// equals \p WantTy.
  Expected<const SymbolDef *> resolve(const std::string &Name,
                                      const Type *WantTy) const;

  std::vector<std::string> names() const;
  size_t size() const;

private:
  /// Reader-writer lock: steady-state lookups (every patch-code import
  /// dispatch resolves here at load time, and diagnostics enumerate the
  /// table) vastly outnumber exports, which happen only at startup and at
  /// update points.
  mutable std::shared_mutex Lock;
  std::map<std::string, std::unique_ptr<SymbolDef>> Defs;
};

} // namespace dsu

#endif // DSU_LINK_SYMBOLTABLE_H
