//===- link/NativeLoader.cpp ----------------------------------*- C++ -*-===//

#include "link/NativeLoader.h"

#include "support/Logging.h"

#include <dlfcn.h>

using namespace dsu;

Expected<std::shared_ptr<LoadedLibrary>>
LoadedLibrary::open(const std::string &Path) {
  ::dlerror(); // clear stale state
  void *Handle = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Why = ::dlerror();
    return Error::make(ErrorCode::EC_Link, "dlopen('%s') failed: %s",
                       Path.c_str(), Why ? Why : "unknown error");
  }
  DSU_LOG_DEBUG("dlopen '%s' -> %p", Path.c_str(), Handle);
  return std::shared_ptr<LoadedLibrary>(new LoadedLibrary(Handle, Path));
}

LoadedLibrary::~LoadedLibrary() {
  // Deliberately no dlclose: bindings referencing this code may outlive
  // any bookkeeping we could do cheaply, and the PLDI 2001 system likewise
  // keeps superseded code mapped.  The handle leak is bounded by the
  // number of updates ever applied.
}

Expected<void *> LoadedLibrary::symbol(const std::string &Name) const {
  ::dlerror();
  void *Addr = ::dlsym(Handle, Name.c_str());
  if (const char *Why = ::dlerror())
    return Error::make(ErrorCode::EC_Link, "dlsym('%s') in '%s' failed: %s",
                       Name.c_str(), Path.c_str(), Why);
  if (!Addr)
    return Error::make(ErrorCode::EC_Link, "symbol '%s' in '%s' is null",
                       Name.c_str(), Path.c_str());
  return Addr;
}

Expected<std::string> dsu::readPatchManifest(const LoadedLibrary &Lib) {
  Expected<void *> Entry = Lib.symbol("dsu_patch_manifest");
  if (!Entry)
    return Entry.takeError().withContext(
        "patch object lacks the dsu_patch_manifest entry point");
  auto Fn = reinterpret_cast<const char *(*)()>(*Entry);
  const char *Text = Fn();
  if (!Text)
    return Error::make(ErrorCode::EC_Link,
                       "dsu_patch_manifest() in '%s' returned null",
                       Lib.path().c_str());
  return std::string(Text);
}
