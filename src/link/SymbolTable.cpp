//===- link/SymbolTable.cpp -----------------------------------*- C++ -*-===//

#include "link/SymbolTable.h"

#include "types/Compat.h"

#include <mutex>

using namespace dsu;

Error SymbolTable::addExport(SymbolDef Def) {
  if (Def.Name.empty())
    return Error::make(ErrorCode::EC_Invalid, "export needs a name");
  if (!Def.Ty)
    return Error::make(ErrorCode::EC_Invalid, "export '%s' needs a type",
                       Def.Name.c_str());
  std::unique_lock<std::shared_mutex> G(Lock);
  // Take the key first: evaluation order of emplace arguments is
  // unspecified, so `Def.Name` must not be read in the same call that
  // moves Def.
  std::string Key = Def.Name;
  auto [It, Inserted] =
      Defs.emplace(std::move(Key), std::make_unique<SymbolDef>(std::move(Def)));
  if (!Inserted)
    return Error::make(ErrorCode::EC_Invalid,
                       "export '%s' is already registered",
                       It->first.c_str());
  return Error::success();
}

const SymbolDef *SymbolTable::lookup(const std::string &Name) const {
  std::shared_lock<std::shared_mutex> G(Lock);
  auto It = Defs.find(Name);
  return It == Defs.end() ? nullptr : It->second.get();
}

Expected<const SymbolDef *>
SymbolTable::resolve(const std::string &Name, const Type *WantTy) const {
  const SymbolDef *Def = lookup(Name);
  if (!Def)
    return Error::make(ErrorCode::EC_Link,
                       "unresolved import '%s': no such export",
                       Name.c_str());
  if (!typesEqual(Def->Ty, WantTy))
    return Error::make(
        ErrorCode::EC_TypeMismatch,
        "import '%s' wants type '%s' but the export has type '%s'",
        Name.c_str(), WantTy->str().c_str(), Def->Ty->str().c_str());
  return Def;
}

std::vector<std::string> SymbolTable::names() const {
  std::shared_lock<std::shared_mutex> G(Lock);
  std::vector<std::string> Out;
  Out.reserve(Defs.size());
  for (const auto &[Name, Def] : Defs) {
    (void)Def;
    Out.push_back(Name);
  }
  return Out;
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> G(Lock);
  return Defs.size();
}
