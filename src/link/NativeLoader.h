//===- link/NativeLoader.h - dlopen-based code loading --------*- C++ -*-===//
///
/// \file
/// Loads native patch code with dlopen/dlsym — the same mechanism the
/// PLDI 2001 system's TAL/Load dynamic linker plays for verifiable
/// native objects.
///
/// Name mangling (the friction point called out for C++ reproductions):
/// patch shared objects export their entry points with C linkage.  By
/// convention a dsu native patch exposes
/// \code
///   extern "C" const char *dsu_patch_manifest(void);
/// \endcode
/// returning the s-expression patch manifest, and one `extern "C"` stub
/// per provided function whose C symbol name is recorded in the manifest
/// (`native-symbol` property).  The loader never guesses mangled names.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_LINK_NATIVELOADER_H
#define DSU_LINK_NATIVELOADER_H

#include "support/Error.h"

#include <memory>
#include <string>

namespace dsu {

/// RAII wrapper over a dlopen handle.  The handle is intentionally never
/// dlclose'd on destruction when code from it may still be referenced;
/// instances are shared into Binding::KeepAlive so unloading cannot
/// invalidate in-flight calls (the paper keeps old code resident forever).
class LoadedLibrary {
public:
  /// Opens \p Path with RTLD_NOW | RTLD_LOCAL.
  static Expected<std::shared_ptr<LoadedLibrary>>
  open(const std::string &Path);

  ~LoadedLibrary();
  LoadedLibrary(const LoadedLibrary &) = delete;
  LoadedLibrary &operator=(const LoadedLibrary &) = delete;

  /// Resolves a symbol; fails with the dlerror() text when absent.
  Expected<void *> symbol(const std::string &Name) const;

  const std::string &path() const { return Path; }

private:
  LoadedLibrary(void *Handle, std::string Path)
      : Handle(Handle), Path(std::move(Path)) {}

  void *Handle;
  std::string Path;
};

/// Reads the `dsu_patch_manifest` entry point of a loaded patch object.
Expected<std::string> readPatchManifest(const LoadedLibrary &Lib);

} // namespace dsu

#endif // DSU_LINK_NATIVELOADER_H
