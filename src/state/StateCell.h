//===- state/StateCell.h - Typed updateable program state -----*- C++ -*-===//
///
/// \file
/// The typed state registry: named cells holding the long-lived data that
/// must survive dynamic updates.  When a patch bumps a named type's
/// version, every cell whose type mentions it is migrated by a state
/// transformer — the reproduction of the PLDI 2001 state-transformer
/// mechanism.
///
/// Payloads are type-erased (std::shared_ptr<void>); the cell's dsu type
/// descriptor is the authoritative description of the representation, and
/// the typed accessors are the single checked boundary between C++ values
/// and descriptor-typed state.  (In the paper, Popcorn's type system
/// enforces this statically; in the C++ embedding it is a checked
/// convention at cell definition/access sites.)
///
//===----------------------------------------------------------------------===//

#ifndef DSU_STATE_STATECELL_H
#define DSU_STATE_STATECELL_H

#include "epoch/Epoch.h"
#include "support/Error.h"
#include "types/Type.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {

/// One named, typed piece of program state.
///
/// Concurrency contract (the staged-update protocol): the program's
/// mutator thread writes payloads in place while holding payloadLock()
/// and calling noteMutation(); staging threads hold payloadLock() only
/// while they read a payload to build a migrated copy on the side; the
/// update thread validates the recorded mutation generation at commit
/// and swaps the prebuilt payload in — or rebuilds it when the cell
/// moved underneath the staged copy.  Type+payload pairs change only on
/// the update thread, so reads from that thread never tear.
///
/// For serving hot paths, the cell additionally *publishes* an
/// immutable (type, payload) pair through an epoch'd pointer: readers
/// inside an epoch scope call livePayload()/live<T>() — one atomic
/// load, no mutex — and writers that adopt the copy-update-publish
/// discipline (publish()) replace the whole payload instead of mutating
/// it in place.  The two disciplines interoperate: publish() runs under
/// payloadLock() and counts as a mutation, and migrations republish.
class StateCell {
public:
  /// The published (type, payload) pair: reading it as a unit means a
  /// lock-free reader can never see a version-2 payload under a
  /// version-1 type descriptor mid-migration.
  struct LivePayload {
    const Type *Ty = nullptr;
    std::shared_ptr<void> Data;
  };

  StateCell(std::string Name, const Type *Ty, std::shared_ptr<void> Data)
      : Name(std::move(Name)), Ty(Ty), Data(Data),
        Live(new LivePayload{Ty, std::move(Data)}) {}

  const std::string &name() const { return Name; }
  const Type *type() const { return Ty; }
  uint32_t generation() const { return Generation; }

  /// Raw payload access (type-erased).
  const std::shared_ptr<void> &raw() const { return Data; }

  /// Typed payload access; T must be the C++ representation this cell's
  /// descriptor denotes at its current version.
  template <typename T> T *get() const { return static_cast<T *>(Data.get()); }

  /// The published (type, payload) pair.  Caller must hold an
  /// epoch::Guard (or be a reactor worker) for the pair's lifetime; no
  /// lock is taken.
  const LivePayload *livePayload() const { return Live.load(); }

  /// Typed lock-free payload access through the publication.
  template <typename T> T *live() const {
    return static_cast<T *>(livePayload()->Data.get());
  }

  /// Copy-update-publish: replaces the payload with \p NewData (same
  /// type), retiring the superseded (type, payload) box into the epoch
  /// domain.  The caller must hold payloadLock() across building
  /// \p NewData (typically a mutated copy of the current payload) and
  /// this call — that lock is what serializes writers against each
  /// other, staging snapshots and migrations; readers never take it.
  /// Counts as a mutation for commit-time staleness validation.
  void publish(std::shared_ptr<void> NewData);

  /// Serializes in-place payload writes against staging reads.  Held by
  /// mutators around writes, by staging threads around snapshot reads,
  /// and by the migration commit around the swap itself.
  std::mutex &payloadLock() const { return PayloadLock; }

  /// Records one in-place payload mutation.  Every write a program
  /// performs under payloadLock() must call this so a staged update
  /// built from the previous contents is detected as stale at commit.
  void noteMutation() { MutGen.fetch_add(1, std::memory_order_release); }

  /// Monotonic count of noteMutation() calls plus migrations.
  uint64_t mutationGeneration() const {
    return MutGen.load(std::memory_order_acquire);
  }

private:
  friend class StateRegistry;

  std::string Name;
  const Type *Ty;
  std::shared_ptr<void> Data;
  epoch::Ptr<const LivePayload> Live;
  uint32_t Generation = 1; ///< bumped on every migration
  mutable std::mutex PayloadLock;
  std::atomic<uint64_t> MutGen{0};
};

/// Registry of all state cells of one runtime.
class StateRegistry {
public:
  StateRegistry() = default;
  StateRegistry(const StateRegistry &) = delete;
  StateRegistry &operator=(const StateRegistry &) = delete;

  /// Defines cell \p Name of type \p Ty holding \p Data.
  Expected<StateCell *> define(const std::string &Name, const Type *Ty,
                               std::shared_ptr<void> Data);

  /// Looks up a cell; nullptr when absent.
  StateCell *lookup(const std::string &Name);
  const StateCell *lookup(const std::string &Name) const;

  /// Atomically replaces a cell's payload and type (migration commit).
  /// Only the transform engine calls this.
  Error migrate(const std::string &Name, const Type *NewTy,
                std::shared_ptr<void> NewData);

  /// All cells, for migration planning.
  std::vector<StateCell *> cells();

  size_t size() const;

private:
  mutable std::mutex Lock;
  std::map<std::string, std::unique_ptr<StateCell>> Cells;
};

} // namespace dsu

#endif // DSU_STATE_STATECELL_H
