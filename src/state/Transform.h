//===- state/Transform.h - State transformers and migration ---*- C++ -*-===//
///
/// \file
/// State transformers and the two-phase migration engine.
///
/// A transformer is registered against a named-type version bump
/// (%rec@1 -> %rec@2) and converts the payload of one state cell whose
/// type mentions the old version into the new representation.  The engine
/// reproduces the PLDI 2001 update-time discipline:
///
///  1. *Plan*: find every cell affected by the patch's bumps; refuse the
///     whole update if any affected cell lacks a transformer.
///  2. *Build*: run transformers, producing new payloads on the side; a
///     failure abandons the update with the old state untouched.
///  3. *Commit*: swap every affected cell's payload and type.
///
/// Failures therefore never leave state half-migrated.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_STATE_TRANSFORM_H
#define DSU_STATE_TRANSFORM_H

#include "state/StateCell.h"
#include "types/Compat.h"

#include <functional>
#include <map>
#include <vector>

namespace dsu {

/// Converts one cell payload from the old to the new representation.
/// Receives the old payload and the cell (for diagnostics); returns the
/// new payload.
using TransformFn = std::function<Expected<std::shared_ptr<void>>(
    const std::shared_ptr<void> &Old, const StateCell &Cell)>;

/// Transformers keyed by version bump.
class TransformerRegistry {
public:
  /// Registers the transformer for \p Bump; replaces any previous one
  /// (a later patch may ship a corrected transformer).
  void add(const VersionBump &Bump, TransformFn Fn);

  /// Finds the transformer for \p Bump, or nullptr.
  const TransformFn *find(const VersionBump &Bump) const;

  size_t size() const { return Fns.size(); }

private:
  struct Key {
    VersionedName From, To;
    friend bool operator<(const Key &A, const Key &B) {
      if (!(A.From == B.From))
        return A.From < B.From;
      return A.To < B.To;
    }
  };
  std::map<Key, TransformFn> Fns;
};

/// Statistics of one migration run (feeds the update-duration breakdown,
/// experiment E3/E4).
struct TransformStats {
  size_t CellsExamined = 0;
  size_t CellsMigrated = 0;
};

/// Applies \p Bumps to every affected cell in \p State using \p Xforms.
/// Two-phase: either all affected cells migrate or none do.
///
/// Multi-step bumps (e.g. %rec@1 -> %rec@3) are decomposed into the chain
/// of single-version transformers when no direct transformer exists.
Error runStateTransform(TypeContext &Ctx, StateRegistry &State,
                        const TransformerRegistry &Xforms,
                        const std::vector<VersionBump> &Bumps,
                        TransformStats *Stats = nullptr);

} // namespace dsu

#endif // DSU_STATE_TRANSFORM_H
