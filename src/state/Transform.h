//===- state/Transform.h - State transformers and migration ---*- C++ -*-===//
///
/// \file
/// State transformers and the two-phase migration engine.
///
/// A transformer is registered against a named-type version bump
/// (%rec@1 -> %rec@2) and converts the payload of one state cell whose
/// type mentions the old version into the new representation.  The engine
/// reproduces the PLDI 2001 update-time discipline:
///
///  1. *Plan*: find every cell affected by the patch's bumps; refuse the
///     whole update if any affected cell lacks a transformer.
///  2. *Build*: run transformers, producing new payloads on the side; a
///     failure abandons the update with the old state untouched.
///  3. *Commit*: swap every affected cell's payload and type.
///
/// Failures therefore never leave state half-migrated.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_STATE_TRANSFORM_H
#define DSU_STATE_TRANSFORM_H

#include "state/StateCell.h"
#include "types/Compat.h"

#include <functional>
#include <map>
#include <vector>

namespace dsu {

/// Converts one cell payload from the old to the new representation.
/// Receives the old payload and the cell (for diagnostics); returns the
/// new payload.
using TransformFn = std::function<Expected<std::shared_ptr<void>>(
    const std::shared_ptr<void> &Old, const StateCell &Cell)>;

/// Transformers keyed by version bump.  Thread-safe: patches register
/// transformers while they are staged on any thread, and the update
/// thread looks them up at commit.
class TransformerRegistry {
public:
  /// Registers the transformer for \p Bump; replaces any previous one
  /// (a later patch may ship a corrected transformer).
  void add(const VersionBump &Bump, TransformFn Fn);

  /// Returns a copy of the transformer for \p Bump, or an empty function
  /// when absent.  A copy, not a pointer: the registry may be mutated by
  /// a concurrent staging thread while the caller runs the transformer.
  TransformFn lookup(const VersionBump &Bump) const;

  /// True when a transformer for \p Bump is registered.
  bool has(const VersionBump &Bump) const;

  size_t size() const;

private:
  struct Key {
    VersionedName From, To;
    friend bool operator<(const Key &A, const Key &B) {
      if (!(A.From == B.From))
        return A.From < B.From;
      return A.To < B.To;
    }
  };
  mutable std::mutex Lock;
  std::map<Key, TransformFn> Fns;
};

/// Statistics of one migration run (feeds the update-duration breakdown,
/// experiment E3/E4).
struct TransformStats {
  size_t CellsExamined = 0;
  size_t CellsMigrated = 0;
};

/// Applies \p Bumps to every affected cell in \p State using \p Xforms.
/// Two-phase: either all affected cells migrate or none do.
///
/// Multi-step bumps (e.g. %rec@1 -> %rec@3) are decomposed into the chain
/// of single-version transformers when no direct transformer exists.
Error runStateTransform(TypeContext &Ctx, StateRegistry &State,
                        const TransformerRegistry &Xforms,
                        const std::vector<VersionBump> &Bumps,
                        TransformStats *Stats = nullptr);

/// A state migration built ahead of its commit: the new payload of every
/// affected cell, computed on a staging thread from a snapshot taken
/// under the cell's payload lock, together with the mutation generation
/// each snapshot observed.  Committing validates those generations — a
/// cell the program wrote to since staging invalidates its prebuilt
/// payload and forces a rebuild at the update point (the correctness
/// fallback of the optimistic protocol).
struct StagedStateSwap {
  struct Planned {
    StateCell *Cell = nullptr;
    const Type *NewTy = nullptr;
    std::shared_ptr<void> NewData;
    uint64_t ObservedMutation = 0;
  };
  std::vector<Planned> Cells;
  /// The bumps this swap realizes; the commit-time rebuild fallback
  /// re-runs them against the live payloads.
  std::vector<VersionBump> Bumps;

  bool empty() const { return Cells.empty(); }
};

/// What commitStagedState() swapped out, so a failure later in the same
/// update transaction can put the old state back (all-or-nothing).
struct StateSwapUndo {
  struct Saved {
    StateCell *Cell = nullptr;
    const Type *Ty = nullptr;
    std::shared_ptr<void> Data;
  };
  std::vector<Saved> Cells;
};

/// Stage-time half of the split migration: plans and builds the new
/// payloads without mutating any cell.  Callable from any thread.
Expected<StagedStateSwap>
stageStateTransform(TypeContext &Ctx, StateRegistry &State,
                    const TransformerRegistry &Xforms,
                    const std::vector<VersionBump> &Bumps,
                    TransformStats *Stats = nullptr);

/// Commit-time half: validates every staged cell's mutation generation
/// and swaps the prebuilt payloads in (O(cells) pointer swings).  When
/// any cell mutated since staging the whole swap is rebuilt from live
/// state instead (\p Rebuilt reports which path ran).  Two-phase like
/// runStateTransform: a failure leaves every cell untouched.  \p Undo,
/// when non-null, receives the pre-swap payloads for revertStateSwap().
/// Must run on the update thread (the single mutator) so validation
/// cannot race program writes.
Error commitStagedState(TypeContext &Ctx, StateRegistry &State,
                        const TransformerRegistry &Xforms,
                        StagedStateSwap Swap, TransformStats *Stats = nullptr,
                        bool *Rebuilt = nullptr,
                        StateSwapUndo *Undo = nullptr);

/// Reverts a committed swap (used when a later stage of the same update
/// transaction fails and the state change must be unwound).
void revertStateSwap(StateRegistry &State, StateSwapUndo Undo);

} // namespace dsu

#endif // DSU_STATE_TRANSFORM_H
