//===- state/Transform.cpp ------------------------------------*- C++ -*-===//

#include "state/Transform.h"

#include "support/Logging.h"
#include "types/Substitute.h"

using namespace dsu;

void TransformerRegistry::add(const VersionBump &Bump, TransformFn Fn) {
  Fns[Key{Bump.From, Bump.To}] = std::move(Fn);
}

const TransformFn *TransformerRegistry::find(const VersionBump &Bump) const {
  auto It = Fns.find(Key{Bump.From, Bump.To});
  return It == Fns.end() ? nullptr : &It->second;
}

namespace {

/// Expands a (possibly multi-version) bump into the sequence of
/// transformer applications to perform.  A direct transformer wins;
/// otherwise the chain of single-version steps is required.
Expected<std::vector<VersionBump>>
expandBump(const TransformerRegistry &Xforms, const VersionBump &Bump) {
  std::vector<VersionBump> Steps;
  if (Xforms.find(Bump)) {
    Steps.push_back(Bump);
    return Steps;
  }
  for (uint32_t V = Bump.From.Version; V != Bump.To.Version; ++V) {
    VersionBump Step{VersionedName{Bump.From.Name, V},
                     VersionedName{Bump.From.Name, V + 1}};
    if (!Xforms.find(Step))
      return Error::make(
          ErrorCode::EC_Transform,
          "no state transformer for %s -> %s (needed for bump %s -> %s)",
          Step.From.str().c_str(), Step.To.str().c_str(),
          Bump.From.str().c_str(), Bump.To.str().c_str());
    Steps.push_back(Step);
  }
  return Steps;
}

} // namespace

Error dsu::runStateTransform(TypeContext &Ctx, StateRegistry &State,
                             const TransformerRegistry &Xforms,
                             const std::vector<VersionBump> &Bumps,
                             TransformStats *Stats) {
  TransformStats Local;
  TransformStats &S = Stats ? *Stats : Local;

  // Expand every bump into executable steps up front, so a missing
  // transformer rejects the update before any work happens.
  std::vector<VersionBump> Steps;
  for (const VersionBump &B : Bumps) {
    Expected<std::vector<VersionBump>> Expanded = expandBump(Xforms, B);
    if (!Expanded)
      return Expanded.takeError();
    for (VersionBump &Step : *Expanded)
      Steps.push_back(std::move(Step));
  }
  if (Steps.empty())
    return Error::success();

  // Build phase: compute each affected cell's new payload and type on the
  // side.  Nothing in the program observes these until commit.
  struct PendingMigration {
    StateCell *Cell;
    const Type *NewTy;
    std::shared_ptr<void> NewData;
  };
  std::vector<PendingMigration> PendingList;

  for (StateCell *Cell : State.cells()) {
    ++S.CellsExamined;
    const Type *Ty = Cell->type();
    std::shared_ptr<void> Data = Cell->raw();
    bool Touched = false;

    for (const VersionBump &Step : Steps) {
      if (!typeMentions(Ty, Step.From))
        continue;
      const TransformFn *Fn = Xforms.find(Step);
      assert(Fn && "expandBump guaranteed a transformer");
      Expected<std::shared_ptr<void>> NewData = (*Fn)(Data, *Cell);
      if (!NewData)
        return NewData.takeError().withContext(
            "transforming state cell '" + Cell->name() + "' for " +
            Step.From.str() + " -> " + Step.To.str());
      Data = std::move(*NewData);
      Ty = substituteNamedVersion(Ctx, Ty, Step);
      Touched = true;
    }

    if (Touched)
      PendingList.push_back(PendingMigration{Cell, Ty, std::move(Data)});
  }

  // Commit phase: swap everything.
  for (PendingMigration &P : PendingList) {
    if (Error E = State.migrate(P.Cell->name(), P.NewTy, std::move(P.NewData)))
      return E.withContext("state migration commit");
    ++S.CellsMigrated;
    DSU_LOG_INFO("migrated state cell '%s' to type '%s'",
                 P.Cell->name().c_str(), P.NewTy->str().c_str());
  }
  return Error::success();
}
