//===- state/Transform.cpp ------------------------------------*- C++ -*-===//

#include "state/Transform.h"

#include "support/Logging.h"
#include "types/Substitute.h"

using namespace dsu;

void TransformerRegistry::add(const VersionBump &Bump, TransformFn Fn) {
  std::lock_guard<std::mutex> G(Lock);
  Fns[Key{Bump.From, Bump.To}] = std::move(Fn);
}

TransformFn TransformerRegistry::lookup(const VersionBump &Bump) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Fns.find(Key{Bump.From, Bump.To});
  return It == Fns.end() ? TransformFn() : It->second;
}

bool TransformerRegistry::has(const VersionBump &Bump) const {
  std::lock_guard<std::mutex> G(Lock);
  return Fns.count(Key{Bump.From, Bump.To}) != 0;
}

size_t TransformerRegistry::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Fns.size();
}

namespace {

/// Expands a (possibly multi-version) bump into the sequence of
/// transformer applications to perform.  A direct transformer wins;
/// otherwise the chain of single-version steps is required.
Expected<std::vector<VersionBump>>
expandBump(const TransformerRegistry &Xforms, const VersionBump &Bump) {
  std::vector<VersionBump> Steps;
  if (Xforms.has(Bump)) {
    Steps.push_back(Bump);
    return Steps;
  }
  for (uint32_t V = Bump.From.Version; V != Bump.To.Version; ++V) {
    VersionBump Step{VersionedName{Bump.From.Name, V},
                     VersionedName{Bump.From.Name, V + 1}};
    if (!Xforms.has(Step))
      return Error::make(
          ErrorCode::EC_Transform,
          "no state transformer for %s -> %s (needed for bump %s -> %s)",
          Step.From.str().c_str(), Step.To.str().c_str(),
          Bump.From.str().c_str(), Bump.To.str().c_str());
    Steps.push_back(Step);
  }
  return Steps;
}

/// The shared build phase: computes every affected cell's new payload and
/// type on the side, reading each payload under its lock so a staging
/// thread can run concurrently with the program mutating other cells (or
/// this one — staleness is the caller's problem, recorded per cell as
/// ObservedMutation).  Nothing in the program observes the results.
Expected<std::vector<StagedStateSwap::Planned>>
buildMigrations(TypeContext &Ctx, StateRegistry &State,
                const TransformerRegistry &Xforms,
                const std::vector<VersionBump> &Bumps, TransformStats &S) {
  // Expand every bump into executable steps up front, so a missing
  // transformer rejects the update before any work happens.
  std::vector<VersionBump> Steps;
  for (const VersionBump &B : Bumps) {
    Expected<std::vector<VersionBump>> Expanded = expandBump(Xforms, B);
    if (!Expanded)
      return Expanded.takeError();
    for (VersionBump &Step : *Expanded)
      Steps.push_back(std::move(Step));
  }

  std::vector<StagedStateSwap::Planned> PendingList;
  if (Steps.empty())
    return PendingList;

  for (StateCell *Cell : State.cells()) {
    ++S.CellsExamined;
    // Hold the payload lock across the whole per-cell chain: the
    // transformer reads the live payload, which the program may be
    // writing in place from its own thread.  Transformers therefore run
    // with the lock held and must not take it themselves.
    std::lock_guard<std::mutex> P(Cell->payloadLock());
    const Type *Ty = Cell->type();
    std::shared_ptr<void> Data = Cell->raw();
    uint64_t Observed = Cell->mutationGeneration();
    bool Touched = false;

    for (const VersionBump &Step : Steps) {
      if (!typeMentions(Ty, Step.From))
        continue;
      TransformFn Fn = Xforms.lookup(Step);
      assert(Fn && "expandBump guaranteed a transformer");
      Expected<std::shared_ptr<void>> NewData = Fn(Data, *Cell);
      if (!NewData)
        return NewData.takeError().withContext(
            "transforming state cell '" + Cell->name() + "' for " +
            Step.From.str() + " -> " + Step.To.str());
      Data = std::move(*NewData);
      Ty = substituteNamedVersion(Ctx, Ty, Step);
      Touched = true;
    }

    if (Touched)
      PendingList.push_back(
          StagedStateSwap::Planned{Cell, Ty, std::move(Data), Observed});
  }
  return PendingList;
}

/// Swaps a built migration set in, capturing undo state.  Commit of the
/// two-phase protocols: only reached once every build succeeded.
Error swapAll(StateRegistry &State,
              std::vector<StagedStateSwap::Planned> &PendingList,
              TransformStats &S, StateSwapUndo *Undo) {
  for (StagedStateSwap::Planned &P : PendingList) {
    if (Undo)
      Undo->Cells.push_back(
          StateSwapUndo::Saved{P.Cell, P.Cell->type(), P.Cell->raw()});
    if (Error E = State.migrate(P.Cell->name(), P.NewTy, std::move(P.NewData)))
      return E.withContext("state migration commit");
    ++S.CellsMigrated;
    DSU_LOG_INFO("migrated state cell '%s' to type '%s'",
                 P.Cell->name().c_str(), P.NewTy->str().c_str());
  }
  return Error::success();
}

} // namespace

Error dsu::runStateTransform(TypeContext &Ctx, StateRegistry &State,
                             const TransformerRegistry &Xforms,
                             const std::vector<VersionBump> &Bumps,
                             TransformStats *Stats) {
  TransformStats Local;
  TransformStats &S = Stats ? *Stats : Local;
  Expected<std::vector<StagedStateSwap::Planned>> Pending =
      buildMigrations(Ctx, State, Xforms, Bumps, S);
  if (!Pending)
    return Pending.takeError();
  return swapAll(State, *Pending, S, nullptr);
}

Expected<StagedStateSwap>
dsu::stageStateTransform(TypeContext &Ctx, StateRegistry &State,
                         const TransformerRegistry &Xforms,
                         const std::vector<VersionBump> &Bumps,
                         TransformStats *Stats) {
  TransformStats Local;
  TransformStats &S = Stats ? *Stats : Local;
  Expected<std::vector<StagedStateSwap::Planned>> Pending =
      buildMigrations(Ctx, State, Xforms, Bumps, S);
  if (!Pending)
    return Pending.takeError();
  StagedStateSwap Swap;
  Swap.Cells = std::move(*Pending);
  Swap.Bumps = Bumps;
  return Swap;
}

Error dsu::commitStagedState(TypeContext &Ctx, StateRegistry &State,
                             const TransformerRegistry &Xforms,
                             StagedStateSwap Swap, TransformStats *Stats,
                             bool *Rebuilt, StateSwapUndo *Undo) {
  TransformStats Local;
  TransformStats &S = Stats ? *Stats : Local;
  if (Rebuilt)
    *Rebuilt = false;
  if (Swap.empty())
    return Error::success();

  // Validation: every staged payload must have been built from the
  // cell's current contents.  We run on the single mutator thread, so a
  // generation that matches here cannot change before the swap below.
  bool Stale = false;
  for (const StagedStateSwap::Planned &P : Swap.Cells) {
    std::lock_guard<std::mutex> G(P.Cell->payloadLock());
    if (P.Cell->mutationGeneration() != P.ObservedMutation) {
      Stale = true;
      break;
    }
  }

  if (!Stale)
    return swapAll(State, Swap.Cells, S, Undo);

  // The program wrote to an affected cell since staging: the prebuilt
  // payloads would lose those writes.  Rebuild from live state — this is
  // the (timed, rare) slow path of the optimistic protocol.
  if (Rebuilt)
    *Rebuilt = true;
  DSU_LOG_INFO("staged state swap stale (cell mutated since staging); "
               "rebuilding %zu bump(s) at the update point",
               Swap.Bumps.size());
  Expected<std::vector<StagedStateSwap::Planned>> Pending =
      buildMigrations(Ctx, State, Xforms, Swap.Bumps, S);
  if (!Pending)
    return Pending.takeError();
  return swapAll(State, *Pending, S, Undo);
}

void dsu::revertStateSwap(StateRegistry &State, StateSwapUndo Undo) {
  // Swap back in reverse order so chained migrations unwind cleanly.
  for (auto It = Undo.Cells.rbegin(); It != Undo.Cells.rend(); ++It) {
    if (Error E = State.migrate(It->Cell->name(), It->Ty,
                                std::move(It->Data)))
      DSU_LOG_WARN("state revert of '%s' failed: %s",
                   It->Cell->name().c_str(), E.str().c_str());
  }
}
