//===- state/StateCell.cpp ------------------------------------*- C++ -*-===//

#include "state/StateCell.h"

using namespace dsu;

void StateCell::publish(std::shared_ptr<void> NewData) {
  // Caller holds payloadLock(): the copy that produced NewData and this
  // swap must be one atomic step against other writers and staging.
  Data = NewData;
  Live.publish(new LivePayload{Ty, std::move(NewData)});
  MutGen.fetch_add(1, std::memory_order_release);
}

Expected<StateCell *> StateRegistry::define(const std::string &Name,
                                            const Type *Ty,
                                            std::shared_ptr<void> Data) {
  if (!Ty)
    return Error::make(ErrorCode::EC_Invalid, "state cell '%s' needs a type",
                       Name.c_str());
  std::lock_guard<std::mutex> G(Lock);
  if (Cells.count(Name))
    return Error::make(ErrorCode::EC_Invalid,
                       "state cell '%s' is already defined", Name.c_str());
  auto Cell = std::make_unique<StateCell>(Name, Ty, std::move(Data));
  StateCell *Raw = Cell.get();
  Cells.emplace(Name, std::move(Cell));
  return Raw;
}

StateCell *StateRegistry::lookup(const std::string &Name) {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Cells.find(Name);
  return It == Cells.end() ? nullptr : It->second.get();
}

const StateCell *StateRegistry::lookup(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Cells.find(Name);
  return It == Cells.end() ? nullptr : It->second.get();
}

Error StateRegistry::migrate(const std::string &Name, const Type *NewTy,
                             std::shared_ptr<void> NewData) {
  if (!NewTy)
    return Error::make(ErrorCode::EC_Invalid,
                       "migration of '%s' needs a type", Name.c_str());
  std::lock_guard<std::mutex> G(Lock);
  auto It = Cells.find(Name);
  if (It == Cells.end())
    return Error::make(ErrorCode::EC_Transform,
                       "cannot migrate unknown state cell '%s'",
                       Name.c_str());
  StateCell &Cell = *It->second;
  {
    // The swap itself is a mutation: exclude concurrent staging readers
    // and invalidate any other staged copy built from the old payload.
    std::lock_guard<std::mutex> P(Cell.PayloadLock);
    Cell.Ty = NewTy;
    Cell.Data = NewData;
    // Republish the (type, payload) pair as one unit: a lock-free
    // reader racing the migration sees the old pair or the new pair,
    // never a mix; the old box drains through the epoch domain.
    Cell.Live.publish(
        new StateCell::LivePayload{NewTy, std::move(NewData)});
    ++Cell.Generation;
    Cell.MutGen.fetch_add(1, std::memory_order_release);
  }
  return Error::success();
}

std::vector<StateCell *> StateRegistry::cells() {
  std::lock_guard<std::mutex> G(Lock);
  std::vector<StateCell *> Out;
  Out.reserve(Cells.size());
  for (auto &[Name, Cell] : Cells) {
    (void)Name;
    Out.push_back(Cell.get());
  }
  return Out;
}

size_t StateRegistry::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Cells.size();
}
