//===- net/ReactorPool.cpp ------------------------------------*- C++ -*-===//

#include "net/ReactorPool.h"

#include "core/Runtime.h"
#include "support/Logging.h"
#include "support/WorkerId.h"
#include "trace/Trace.h"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace dsu;
using namespace dsu::net;

namespace {

/// Identifies the pool worker running on this thread, so runQuiescent()
/// can tell a worker's own handler (which must contribute its arrival)
/// from an external caller (which waits for the round).
thread_local ReactorPool *CurrentPool = nullptr;
thread_local int CurrentWorkerIdx = -1;

uint64_t elapsedUs(std::chrono::steady_clock::time_point Since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Since)
          .count());
}

/// Pins \p T to CPU (Idx mod cores).  Returns the CPU, or -1 when the
/// host has one core (nothing to spread) or the affinity call failed.
int pinWorkerThread(std::thread &T, unsigned Idx) {
#if defined(__linux__)
  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores <= 1)
    return -1;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  int Cpu = static_cast<int>(Idx % Cores);
  CPU_SET(Cpu, &Set);
  if (pthread_setaffinity_np(T.native_handle(), sizeof(Set), &Set) != 0)
    return -1;
  return Cpu;
#else
  (void)T;
  (void)Idx;
  return -1;
#endif
}

} // namespace

const char *ReactorPool::workerStateName(WorkerState S) {
  switch (S) {
  case WorkerState::Idle:
    return "idle";
  case WorkerState::Serving:
    return "serving";
  case WorkerState::Parked:
    return "parked";
  case WorkerState::Stopped:
    return "stopped";
  }
  return "?";
}

ReactorPool::ReactorPool(FastHandler H, PoolOptions O)
    : Options(O), Handler(std::move(H)),
      Gate(std::make_shared<WakeGate>()) {
  Gate->P = this;
  if (Options.Workers == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Options.Workers = HW ? HW : 1;
  }
}

ReactorPool::~ReactorPool() {
  stop();
  // Sever outstanding wakeCallback() thunks: from here they no-op.
  std::lock_guard<std::mutex> G(Gate->M);
  Gate->P = nullptr;
}

Error ReactorPool::start() {
  if (running())
    return Error::make(ErrorCode::EC_IO, "reactor pool already running");
  std::vector<std::unique_ptr<Reactor>> NewReactors;
  std::vector<std::unique_ptr<std::atomic<int>>> NewStates;
  std::vector<std::unique_ptr<std::atomic<epoch::Domain::Slot *>>>
      NewEpochSlots;
  std::vector<std::unique_ptr<std::atomic<int>>> NewCpus;
  BoundPort = Options.Port;
  for (unsigned I = 0; I != Options.Workers; ++I) {
    auto R = std::make_unique<Reactor>(Handler);
    ReactorOptions RO;
    // Worker 0 picks the shared port when an ephemeral one was asked
    // for; the rest bind the same port via SO_REUSEPORT.
    RO.Port = BoundPort;
    RO.ReusePort = Options.Workers > 1;
    RO.MaxRequestBytes = Options.MaxRequestBytes;
    if (Error E = R->open(RO))
      return E.withContext("reactor pool worker " + std::to_string(I));
    BoundPort = R->port();
    NewReactors.push_back(std::move(R));
    NewStates.push_back(std::make_unique<std::atomic<int>>(
        static_cast<int>(WorkerState::Idle)));
    NewEpochSlots.push_back(
        std::make_unique<std::atomic<epoch::Domain::Slot *>>(nullptr));
    NewCpus.push_back(std::make_unique<std::atomic<int>>(-1));
  }
  {
    std::lock_guard<std::mutex> G(WakeMu);
    Reactors = std::move(NewReactors);
    States = std::move(NewStates);
    EpochSlots = std::move(NewEpochSlots);
    Cpus = std::move(NewCpus);
  }
  {
    std::lock_guard<std::mutex> L(BarrierMu);
    Stopping = false;
    Armed = false;
    ArmedHint.store(false, std::memory_order_relaxed);
    ParkedCount = 0;
    Active = Options.Workers;
  }
  for (unsigned I = 0; I != Options.Workers; ++I) {
    Threads.emplace_back([this, I] { workerMain(I); });
    if (Options.PinWorkers)
      Cpus[I]->store(pinWorkerThread(Threads.back(), I),
                     std::memory_order_relaxed);
  }
  if (Options.PinWorkers && Cpus[0]->load(std::memory_order_relaxed) < 0)
    DSU_LOG_INFO("worker pinning requested but skipped "
                 "(single-core host or setaffinity failed)");
  DSU_LOG_INFO("reactor pool serving on 127.0.0.1:%u with %u worker(s)",
               BoundPort, Options.Workers);
  return Error::success();
}

uint64_t ReactorPool::workerEpoch(unsigned I) const {
  epoch::Domain::Slot *S =
      EpochSlots[I]->load(std::memory_order_acquire);
  return S ? epoch::domain().slotEpoch(S) : 0;
}

void ReactorPool::stop() {
  {
    std::lock_guard<std::mutex> L(BarrierMu);
    if (Threads.empty())
      return;
    Stopping = true;
  }
  BarrierCV.notify_all();
  {
    std::lock_guard<std::mutex> G(WakeMu);
    for (const std::unique_ptr<Reactor> &R : Reactors)
      R->requestStop();
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
  {
    // Fail any quiescent operation the barrier never got to run.
    std::lock_guard<std::mutex> L(BarrierMu);
    for (const std::shared_ptr<OpState> &Op : Ops)
      if (!Op->Done) {
        Op->Result = Error::make(
            ErrorCode::EC_Busy,
            "quiescent operation abandoned: reactor pool stopped before "
            "the update barrier formed; retry after restart");
        Op->Done = true;
      }
    Ops.clear();
    Armed = false;
    ArmedHint.store(false, std::memory_order_relaxed);
  }
  BarrierCV.notify_all();
  // Close the sockets but keep the (now quiescent) reactors: their
  // per-worker stats stay readable after stop — metrics scrapes and the
  // benches read final pause histograms once the threads have joined —
  // and start() builds a fresh set anyway.
  std::lock_guard<std::mutex> G(WakeMu);
  for (const std::unique_ptr<Reactor> &R : Reactors)
    R->close();
}

void ReactorPool::wake() {
  std::lock_guard<std::mutex> G(WakeMu);
  for (const std::unique_ptr<Reactor> &R : Reactors)
    R->wake();
}

std::function<void()> ReactorPool::wakeCallback() {
  return [G = Gate] {
    std::lock_guard<std::mutex> L(G->M);
    if (G->P)
      G->P->wake();
  };
}

uint64_t ReactorPool::requestsServed() const {
  uint64_t N = 0;
  for (const std::unique_ptr<Reactor> &R : Reactors)
    N += R->requestsServed();
  return N;
}

uint64_t ReactorPool::bytesSent() const {
  uint64_t N = 0;
  for (const std::unique_ptr<Reactor> &R : Reactors)
    N += R->bytesSent();
  return N;
}

uint64_t ReactorPool::connectionsAccepted() const {
  uint64_t N = 0;
  for (const std::unique_ptr<Reactor> &R : Reactors)
    N += R->connectionsAccepted();
  return N;
}

void ReactorPool::workerMain(unsigned Idx) {
  CurrentPool = this;
  CurrentWorkerIdx = static_cast<int>(Idx);
  // Publish the worker's identity to the runtime layer: canary-gated
  // RollEntries resolve their mask against it on every slot read.
  setCurrentWorkerId(static_cast<int>(Idx));
  // Register with the epoch domain: this worker's quiesce() at each
  // idle point is what retires grace periods and what lets rolling
  // updates swing this worker's bindings without parking it.
  epoch::WorkerReg Epoch;
  EpochSlots[Idx]->store(Epoch.slot(), std::memory_order_release);
  // Seed the adoption watermark so only rolling commits that land while
  // this worker is serving produce adoption evidence.
  uint64_t SeenRollingTx = TheRuntime ? TheRuntime->lastRollingTxId() : 0;
  Reactor &R = *Reactors[Idx];
  while (!R.drainComplete()) {
    setState(Idx, WorkerState::Serving);
    Expected<int> N = R.pollOnce(Options.PollTimeoutMs);
    if (!N) {
      DSU_LOG_WARN("reactor worker %u: %s", Idx,
                   N.takeError().str().c_str());
      break;
    }
    // The idle point: no request is mid-handler on this worker.  The
    // epoch tick publishes that fact; a rolling update committed since
    // the last tick takes effect for this worker's next request here.
    Epoch.quiesce();
    maybeEnterBarrier(Idx);
    // A rolling commit landed since this worker's last quiescent point:
    // the worker serves the new bindings from here on.  One span per
    // worker per rolling update, stretching from the commit instant to
    // this adoption point — the per-worker rollout lag, made visible.
    if (TheRuntime) {
      uint64_t RollTx = TheRuntime->lastRollingTxId();
      if (RollTx != SeenRollingTx) {
        SeenRollingTx = RollTx;
        trace::Recorder &Rec = trace::Recorder::instance();
        uint64_t CommitUs = TheRuntime->lastRollingCommitUs();
        uint64_t Now = Rec.nowUs();
        uint64_t LagUs = Now > CommitUs ? Now - CommitUs : 0;
        trace::ScopedUpdateId TraceId(RollTx);
        Rec.complete("rolling", "adopt", CommitUs, LagUs, Idx);
        trace::notePhase(trace::Phase::RollingAdopt, LagUs);
      }
    }
    // Idle-time hygiene: drain graced redirection chains even when no
    // further commit ever arrives (try-lock inside; never blocks).
    if (TheRuntime)
      TheRuntime->maybeFlushRetiredBindings();
  }
  setState(Idx, WorkerState::Stopped);
  EpochSlots[Idx]->store(nullptr, std::memory_order_release);
  {
    std::lock_guard<std::mutex> L(BarrierMu);
    --Active;
    if (Active == 0) {
      // Last worker out: no barrier can form any more, so any queued
      // quiescent operation would wait forever — fail it now.
      for (const std::shared_ptr<OpState> &Op : Ops)
        if (!Op->Done) {
          Op->Result = Error::make(
              ErrorCode::EC_Busy,
              "quiescent operation abandoned: all pool workers exited "
              "before the update barrier formed");
          Op->Done = true;
        }
      Ops.clear();
      Armed = false;
      ArmedHint.store(false, std::memory_order_relaxed);
    }
  }
  // A barrier waiting on this worker may now be satisfiable by the
  // remaining arrivals.
  BarrierCV.notify_all();
  CurrentPool = nullptr;
  CurrentWorkerIdx = -1;
  setCurrentWorkerId(-1);
}

void ReactorPool::maybeEnterBarrier(unsigned Idx) {
  if (!ArmedHint.load(std::memory_order_relaxed)) {
    // Nothing armed: act only when a staged update is actionable.  The
    // pending flag is a relaxed atomic load — the hot-path cost of
    // updateability at each worker's update point.
    if (!TheRuntime || !TheRuntime->updatePending())
      return;
    // The rolling/barrier decision.  A code-only front commits right
    // here, on whichever worker noticed it first, with *zero* parking:
    // bindings swing behind epoch redirection and every worker (this
    // one included) adopts them at its own next quiescent point.  Only
    // a state-migrating front arms the barrier.
    switch (TheRuntime->pendingCommitMode()) {
    case Runtime::PendingCommit::None:
      return;
    case Runtime::PendingCommit::Rolling:
      TheRuntime->commitRollingFront();
      // Anything left at the front now needs the barrier; the next
      // idle point (any worker's) arms it.
      return;
    case Runtime::PendingCommit::Barrier:
      break;
    }
    {
      std::lock_guard<std::mutex> L(BarrierMu);
      if (Stopping)
        return;
      Armed = true;
      ArmedHint.store(true, std::memory_order_relaxed);
    }
    {
      // One arm event per barrier round, tagged with the update whose
      // commit the round is for, from the worker that armed it.
      trace::ScopedUpdateId TraceId(TheRuntime ? TheRuntime->frontTxId()
                                               : 0);
      trace::Recorder::instance().instant("barrier", "arm", Idx);
    }
    wake(); // get workers out of epoll_wait and to their update points
  }
  park(Idx);
}

void ReactorPool::park(unsigned Idx) {
  // Capture the update this park is for *before* blocking: by release
  // time the committer has already popped it from the queue front.
  uint64_t FrontTx = TheRuntime ? TheRuntime->frontTxId() : 0;
  std::unique_lock<std::mutex> L(BarrierMu);
  if (!Armed || Stopping)
    return;
  uint64_t ParkStartUs = trace::Recorder::instance().nowUs();
  auto Start = std::chrono::steady_clock::now();
  uint64_t MyGen = Generation;
  ++ParkedCount;
  setState(Idx, WorkerState::Parked);
  while (true) {
    if (Stopping) {
      if (Generation == MyGen)
        --ParkedCount;
      break;
    }
    if (Generation != MyGen)
      break; // round committed; we were released
    if (ParkedCount == Active) {
      // Last arrival: every worker is quiescent — commit, alone.
      Reactors[Idx]->mutableStats().Commits.fetch_add(
          1, std::memory_order_relaxed);
      commitRound();
      break;
    }
    BarrierCV.wait(L);
  }
  setState(Idx, WorkerState::Serving);
  uint64_t PauseUs = elapsedUs(Start);
  {
    // One park span per worker per barrier round — the per-worker
    // service pause this update cost, in the update's own span tree.
    trace::ScopedUpdateId TraceId(FrontTx);
    trace::Recorder::instance().complete("barrier", "park", ParkStartUs,
                                         PauseUs, Idx);
  }
  trace::notePhase(trace::Phase::BarrierPark, PauseUs);
  Reactors[Idx]->mutableStats().notePause(PauseUs);
}

void ReactorPool::commitRound() {
  // Caller holds BarrierMu and is the designated committer; parked
  // workers stay blocked on the condition variable throughout.
  std::vector<std::shared_ptr<OpState>> Pending = std::move(Ops);
  Ops.clear();
  for (const std::shared_ptr<OpState> &Op : Pending) {
    Op->Result = Op->Fn();
    Op->Done = true;
  }
  if (TheRuntime && TheRuntime->updatePending())
    TheRuntime->updatePoint();
  Armed = false;
  ArmedHint.store(false, std::memory_order_relaxed);
  ++Generation;
  ParkedCount = 0;
  Rounds.fetch_add(1, std::memory_order_relaxed);
  BarrierCV.notify_all();
}

Error ReactorPool::runQuiescent(std::function<Error()> Fn) {
  auto Op = std::make_shared<OpState>();
  Op->Fn = std::move(Fn);
  bool SelfPark = CurrentPool == this && CurrentWorkerIdx >= 0;
  {
    std::unique_lock<std::mutex> L(BarrierMu);
    if (Stopping)
      return Error::make(ErrorCode::EC_Busy,
                         "reactor pool is stopping; retry after restart");
    if (Active == 0) {
      // No workers running: the caller is exclusive by definition.
      return Op->Fn();
    }
    Ops.push_back(Op);
    Armed = true;
    ArmedHint.store(true, std::memory_order_relaxed);
  }
  wake();
  if (SelfPark) {
    // A worker's own handler: contribute this worker's arrival (the
    // handler is control-plane code, not an updateable call, so this
    // worker is quiescent).  The op runs when the round commits —
    // possibly on this very thread if it is the last arrival.
    park(static_cast<unsigned>(CurrentWorkerIdx));
    std::lock_guard<std::mutex> L(BarrierMu);
    if (!Op->Done)
      return Error::make(ErrorCode::EC_Busy,
                         "quiescent operation abandoned: pool stopped "
                         "before the update barrier formed");
    return Op->Result;
  }
  std::unique_lock<std::mutex> L(BarrierMu);
  BarrierCV.wait(L, [&] { return Op->Done || Stopping; });
  if (!Op->Done)
    return Error::make(ErrorCode::EC_Busy,
                       "quiescent operation abandoned: pool stopped "
                       "before the update barrier formed");
  return Op->Result;
}
