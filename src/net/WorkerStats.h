//===- net/WorkerStats.h - Lock-free per-worker serving counters -*- C++ -*-//
///
/// \file
/// One cache-line-aligned block of counters per reactor worker.  The
/// owning worker is the only writer; the admin plane (GET /admin/metrics,
/// GET /admin/status) reads concurrently.  All fields are relaxed
/// atomics: every value is an independent monotonic counter, so readers
/// need no ordering between fields — a metrics scrape is allowed to be a
/// torn-across-counters snapshot, exactly like any Prometheus target.
///
/// The update-pause histogram records how long each barrier park lasted
/// (see net/ReactorPool.h): the per-worker cost of one dynamic update,
/// the number the paper's evaluation bounds and this repo's acceptance
/// bar tracks (microseconds per worker).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_NET_WORKERSTATS_H
#define DSU_NET_WORKERSTATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dsu {
namespace net {

/// Counters owned by one reactor worker.  Writer: the worker thread.
/// Readers: anyone, with relaxed loads.
struct alignas(64) WorkerStats {
  std::atomic<uint64_t> Requests{0};    ///< complete requests served
  std::atomic<uint64_t> Connections{0}; ///< connections accepted
  std::atomic<uint64_t> BytesSent{0};   ///< payload bytes written

  // Health signals a canary rollout gates on: server-fault responses and
  // handler latency, both attributable to one worker so a rollout can
  // compare its canary group against the control group.
  std::atomic<uint64_t> Errors5xx{0};    ///< responses with status >= 500
  std::atomic<uint64_t> ServeTotalUs{0}; ///< sum of handler durations
  std::atomic<uint64_t> Serves{0};       ///< handler invocations timed

  /// Upper bounds (microseconds) of the update-pause histogram buckets;
  /// the final bucket is +Inf.
  static constexpr size_t NumPauseBuckets = 8;
  static constexpr uint64_t PauseBucketUs[NumPauseBuckets] = {
      50, 100, 250, 500, 1000, 5000, 25000, UINT64_MAX};

  std::atomic<uint64_t> PauseBuckets[NumPauseBuckets]{};
  std::atomic<uint64_t> Pauses{0};       ///< barrier parks recorded
  std::atomic<uint64_t> PauseTotalUs{0}; ///< sum of park durations
  std::atomic<uint64_t> PauseMaxUs{0};   ///< worst single park
  std::atomic<uint64_t> Commits{0};      ///< barriers this worker committed

  /// Upper bounds (microseconds) of the request-latency histogram
  /// (dsu_request_duration_us); the final bucket is +Inf.  Tighter at
  /// the low end than the pause buckets: handler latencies cluster in
  /// the tens of microseconds, parks in the hundreds.
  static constexpr size_t NumServeBuckets = 8;
  static constexpr uint64_t ServeBucketUs[NumServeBuckets] = {
      10, 50, 100, 500, 1000, 10000, 100000, UINT64_MAX};

  std::atomic<uint64_t> ServeBuckets[NumServeBuckets]{};
  std::atomic<uint64_t> ServeMaxUs{0}; ///< worst single handler run

  void notePause(uint64_t Us) {
    for (size_t I = 0; I != NumPauseBuckets; ++I)
      if (Us <= PauseBucketUs[I]) {
        PauseBuckets[I].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    Pauses.fetch_add(1, std::memory_order_relaxed);
    PauseTotalUs.fetch_add(Us, std::memory_order_relaxed);
    uint64_t Prev = PauseMaxUs.load(std::memory_order_relaxed);
    while (Us > Prev &&
           !PauseMaxUs.compare_exchange_weak(Prev, Us,
                                             std::memory_order_relaxed))
      ;
  }

  void noteRequest() { Requests.fetch_add(1, std::memory_order_relaxed); }

  /// Records one handler invocation: its duration and whether it
  /// produced a server fault.
  void noteServe(uint64_t Us, bool ServerError) {
    Serves.fetch_add(1, std::memory_order_relaxed);
    ServeTotalUs.fetch_add(Us, std::memory_order_relaxed);
    for (size_t I = 0; I != NumServeBuckets; ++I)
      if (Us <= ServeBucketUs[I]) {
        ServeBuckets[I].fetch_add(1, std::memory_order_relaxed);
        break;
      }
    uint64_t Prev = ServeMaxUs.load(std::memory_order_relaxed);
    while (Us > Prev &&
           !ServeMaxUs.compare_exchange_weak(Prev, Us,
                                             std::memory_order_relaxed))
      ;
    if (ServerError)
      Errors5xx.fetch_add(1, std::memory_order_relaxed);
  }

  void noteConnection() {
    Connections.fetch_add(1, std::memory_order_relaxed);
  }
  void noteBytesSent(uint64_t N) {
    BytesSent.fetch_add(N, std::memory_order_relaxed);
  }
};

} // namespace net
} // namespace dsu

#endif // DSU_NET_WORKERSTATS_H
