//===- net/Reactor.cpp ----------------------------------------*- C++ -*-===//

#include "net/Reactor.h"

#include "support/Logging.h"

#include <arpa/inet.h>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::net;
using dsu::flashed::RequestHead;
using dsu::flashed::scanRequestHead;

namespace {

Error sysError(const char *What) {
  return Error::make(ErrorCode::EC_IO, "%s: %s", What,
                     std::strerror(errno));
}

/// How long the listener stays out of the epoll set after a persistent
/// accept failure (EMFILE and friends) before retrying.
constexpr std::chrono::milliseconds AcceptBackoffMs{100};

} // namespace

Reactor::~Reactor() { close(); }

void Reactor::close() {
  for (const std::unique_ptr<Conn> &C : Pool)
    if (C->Fd >= 0)
      ::close(C->Fd);
  Pool.clear();
  FreeList = nullptr;
  PendingRelease.clear();
  ActiveConns = 0;
  AcceptPaused = false;
  AcceptErrorLogged = false;
  Draining = false;
  StopRequested.store(false, std::memory_order_release);
  DrainDone.store(false, std::memory_order_release);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (WakeFd >= 0) {
    ::close(WakeFd);
    WakeFd = -1;
  }
  if (EpollFd >= 0) {
    ::close(EpollFd);
    EpollFd = -1;
  }
}

Error Reactor::open(const ReactorOptions &O) {
  if (ListenFd >= 0)
    return Error::make(ErrorCode::EC_IO,
                       "listenOn: server is already listening on port %u",
                       BoundPort);
  // A completed graceful drain closes only the listener and the
  // connections; reclaim the epoll/wake fds (and reset drain state)
  // before building new ones, or a stop()-then-listenOn() cycle leaks
  // two fds per iteration.
  if (EpollFd >= 0 || WakeFd >= 0)
    close();
  MaxRequestBytes = O.MaxRequestBytes;
  // Unwind partial setup on failure so a failed listen neither leaks
  // fds nor leaves the reactor claiming to be listening.
  auto Fail = [this](const char *What) {
    Error E = sysError(What);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (WakeFd >= 0) {
      ::close(WakeFd);
      WakeFd = -1;
    }
    if (EpollFd >= 0) {
      ::close(EpollFd);
      EpollFd = -1;
    }
    return E;
  };
  ListenFd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (O.ReusePort &&
      ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof(One)) <
          0)
    return Fail("setsockopt(SO_REUSEPORT)");

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(O.Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return Fail("bind");
  if (::listen(ListenFd, 256) < 0)
    return Fail("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return Fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (EpollFd < 0)
    return Fail("epoll_create1");
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.ptr = nullptr; // nullptr marks the listener
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) < 0)
    return Fail("epoll_ctl(listen)");

  WakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (WakeFd < 0)
    return Fail("eventfd");
  Ev.events = EPOLLIN;
  Ev.data.ptr = &WakeFd; // sentinel distinct from listener and conns
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) < 0)
    return Fail("epoll_ctl(wake)");

  Draining = false;
  StopRequested.store(false, std::memory_order_release);
  DrainDone.store(false, std::memory_order_release);
  DSU_LOG_INFO("reactor listening on 127.0.0.1:%u%s", BoundPort,
               O.ReusePort ? " (SO_REUSEPORT)" : "");
  return Error::success();
}

void Reactor::wake() {
  if (WakeFd < 0)
    return;
  uint64_t One = 1;
  ssize_t N = ::write(WakeFd, &One, sizeof(One));
  (void)N; // EAGAIN means the counter is already nonzero: wakeup pending
}

void Reactor::requestStop() {
  StopRequested.store(true, std::memory_order_release);
  wake();
}

Reactor::Conn *Reactor::allocConn(int Fd) {
  Conn *C;
  if (FreeList) {
    C = FreeList;
    FreeList = C->NextFree;
  } else {
    Pool.push_back(std::make_unique<Conn>());
    C = Pool.back().get();
  }
  C->Fd = Fd;
  C->In.clear(); // clear() keeps capacity: buffers are recycled
  C->InPos = 0;
  C->Out.clear();
  C->OutPos = 0;
  C->Tail.reset();
  C->TailPos = 0;
  C->WriteArmed = false;
  C->CloseAfter = false;
  C->PeerClosed = false;
  C->NextFree = nullptr;
  return C;
}

void Reactor::pauseAccepting() {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
  AcceptPaused = true;
  AcceptResumeAt = std::chrono::steady_clock::now() + AcceptBackoffMs;
}

void Reactor::resumeAcceptingIfDue() {
  if (!AcceptPaused || ListenFd < 0 ||
      std::chrono::steady_clock::now() < AcceptResumeAt)
    return;
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.ptr = nullptr;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) == 0)
    AcceptPaused = false;
}

void Reactor::acceptPending() {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_NONBLOCK);
    if (Fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      if (errno == EINTR || errno == ECONNABORTED)
        continue; // transient, keep draining the backlog
      // Persistent errors (EMFILE, ENFILE, ENOBUFS, ENOMEM): spinning on
      // a level-triggered listener would peg the loop, so log once and
      // take the listener out of the epoll set for a short backoff.
      if (!AcceptErrorLogged) {
        DSU_LOG_WARN("reactor accept: %s; backing off",
                     std::strerror(errno));
        AcceptErrorLogged = true;
      }
      pauseAccepting();
      return;
    }
    AcceptErrorLogged = false;
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Conn *C = allocConn(Fd);
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.ptr = C;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      ::close(Fd);
      C->Fd = -1;
      C->NextFree = FreeList;
      FreeList = C;
      continue;
    }
    ++ActiveConns;
    Stats.noteConnection();
  }
}

void Reactor::armWrite(Conn *C, bool Enable) {
  if (C->WriteArmed == Enable)
    return;
  epoll_event Ev{};
  Ev.events = Enable ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  Ev.data.ptr = C;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C->Fd, &Ev);
  C->WriteArmed = Enable;
}

void Reactor::closeConn(Conn *C) {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->Fd, nullptr);
  ::close(C->Fd);
  C->Fd = -1;
  C->Tail.reset();
  assert(ActiveConns > 0 && "closing more conns than were accepted");
  --ActiveConns;
  // Deferred recycling: a stale event for this conn may still sit later
  // in the current epoll_wait batch.
  PendingRelease.push_back(C);
}

namespace {

/// Status code of the response serialized at \p At in \p Out ("HTTP/1.1
/// NNN ..."), or 0 when the bytes there are not a status line (raw
/// handlers may emit anything).
int responseStatusAt(const std::string &Out, size_t At) {
  if (Out.size() < At + 12 || Out.compare(At, 5, "HTTP/") != 0)
    return 0;
  size_t Sp = Out.find(' ', At);
  if (Sp == std::string::npos || Out.size() < Sp + 4)
    return 0;
  int Status = 0;
  for (size_t I = Sp + 1; I != Sp + 4; ++I) {
    char Ch = Out[I];
    if (Ch < '0' || Ch > '9')
      return 0;
    Status = Status * 10 + (Ch - '0');
  }
  return Status;
}

} // namespace

void Reactor::serveOne(Conn *C, const RequestHead &Head,
                       std::string_view Raw) {
  assert(!C->hasPendingOutput() && "serving while output is pending");
  Stats.noteRequest();
  if (Fast) {
    // Time the handler and classify its response so per-worker health
    // (5xx rate, mean serve latency) is attributable to this worker —
    // the signals a canary rollout's gates compare across workers.
    size_t Pre = C->Out.size();
    auto T0 = std::chrono::steady_clock::now();
    Fast(Head, Raw, C->Out, C->Tail);
    auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
    int Status = responseStatusAt(C->Out, Pre);
    Stats.noteServe(static_cast<uint64_t>(Us), Status >= 500);
    C->CloseAfter = Head.Malformed || !Head.KeepAlive;
  } else {
    // Legacy one-shot handler: string in, string out, close after.
    C->Out += Handle(std::string(Raw));
    C->CloseAfter = true;
  }
}

bool Reactor::flushOutput(Conn *C) {
  while (C->hasPendingOutput()) {
    iovec Iov[2];
    int NIov = 0;
    if (C->OutPos < C->Out.size()) {
      Iov[NIov].iov_base = const_cast<char *>(C->Out.data()) + C->OutPos;
      Iov[NIov].iov_len = C->Out.size() - C->OutPos;
      ++NIov;
    }
    if (C->Tail && C->TailPos < C->Tail->size()) {
      Iov[NIov].iov_base =
          const_cast<char *>(C->Tail->data()) + C->TailPos;
      Iov[NIov].iov_len = C->Tail->size() - C->TailPos;
      ++NIov;
    }
    ssize_t N = ::writev(C->Fd, Iov, NIov);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return true;
      if (errno == EINTR)
        continue;
      closeConn(C);
      return false;
    }
    Stats.noteBytesSent(static_cast<uint64_t>(N));
    size_t Left = static_cast<size_t>(N);
    size_t HeadLeft = C->Out.size() - C->OutPos;
    size_t Adv = Left < HeadLeft ? Left : HeadLeft;
    C->OutPos += Adv;
    Left -= Adv;
    if (C->Tail)
      C->TailPos += Left;
  }
  C->Out.clear();
  C->OutPos = 0;
  C->Tail.reset();
  C->TailPos = 0;
  return true;
}

void Reactor::processConn(Conn *C) {
  while (true) {
    if (C->hasPendingOutput()) {
      if (!flushOutput(C))
        return;
      if (C->hasPendingOutput()) {
        // Kernel send buffer is full.  Stop serving further pipelined
        // requests until it drains, and cut off a client that keeps
        // streaming input past the cap meanwhile.
        if (C->In.size() - C->InPos > MaxRequestBytes) {
          closeConn(C);
          return;
        }
        armWrite(C, true);
        return;
      }
    }
    if (C->CloseAfter) {
      closeConn(C);
      return;
    }
    armWrite(C, false);

    std::string_view Pending(C->In.data() + C->InPos,
                             C->In.size() - C->InPos);
    RequestHead Head = scanRequestHead(Pending);
    if (!Head.Complete ||
        (!Head.Malformed && Pending.size() < Head.totalBytes())) {
      // Need more input.  A half-closed peer cannot send any, so the
      // connection is done (its buffered requests were served above);
      // a draining reactor likewise serves only what is buffered and
      // closes instead of waiting for a next request.
      if (C->PeerClosed || Draining) {
        closeConn(C);
        return;
      }
      // Enforce the buffering cap, then compact the consumed prefix so
      // the buffer does not creep upward forever.
      if (Pending.size() > MaxRequestBytes) {
        closeConn(C);
        return;
      }
      if (C->InPos) {
        C->In.erase(0, C->InPos);
        C->InPos = 0;
      }
      return;
    }
    // A malformed head has unreliable framing: serve the error response
    // the handler produces and consume everything (the conn closes).
    size_t Consumed = Head.Malformed ? Pending.size() : Head.totalBytes();
    serveOne(C, Head, Pending.substr(0, Consumed));
    C->InPos += Consumed;
  }
}

void Reactor::handleReadable(Conn *C) {
  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(C->Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C->In.append(Buf, static_cast<size_t>(N));
      if (static_cast<size_t>(N) < sizeof(Buf))
        break; // short read: the socket is drained
      continue;
    }
    if (N == 0) {
      // Half-close: the client may have pipelined requests and shut
      // down its write side; serve what is buffered before closing.
      C->PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    closeConn(C);
    return;
  }
  processConn(C);
}

void Reactor::beginDrain() {
  Draining = true;
  DrainDeadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(DrainTimeoutMs);
  // Stop accepting: the listener leaves the epoll set and closes, so
  // the port frees up while existing connections drain.
  if (ListenFd >= 0) {
    if (!AcceptPaused)
      ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
    ::close(ListenFd);
    ListenFd = -1;
    AcceptPaused = false;
  }
  // Sweep every live connection once: idle keep-alive conns close here;
  // conns with buffered requests serve them; conns with backpressured
  // output stay armed for EPOLLOUT and finish via the loop.
  for (const std::unique_ptr<Conn> &C : Pool)
    if (C->Fd >= 0)
      processConn(C.get());
}

Expected<int> Reactor::pollOnce(int TimeoutMs) {
  if (EpollFd < 0)
    return Error::make(ErrorCode::EC_IO, "pollOnce before listenOn");
  if (StopRequested.load(std::memory_order_acquire) && !Draining)
    beginDrain();
  if (Draining && ActiveConns != 0 &&
      std::chrono::steady_clock::now() >= DrainDeadline) {
    // A stalled peer (never reads its backpressured response, never
    // sends the rest of a request) must not wedge shutdown forever.
    DSU_LOG_WARN("reactor drain deadline: force-closing %zu conn(s)",
                 ActiveConns);
    for (const std::unique_ptr<Conn> &C : Pool)
      if (C->Fd >= 0)
        closeConn(C.get());
  }
  if (Draining && ActiveConns == 0) {
    DrainDone.store(true, std::memory_order_release);
    if (Idle)
      Idle();
    return 0;
  }
  // While draining, poll in short slices so the deadline is honored
  // even when the caller passed a long (or infinite) timeout.
  if (Draining && (TimeoutMs < 0 || TimeoutMs > 50))
    TimeoutMs = 50;
  resumeAcceptingIfDue();
  if (AcceptPaused) {
    // The paused listener generates no events; cap the wait so the
    // backoff actually expires even under a long (or infinite) timeout.
    auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                      AcceptResumeAt - std::chrono::steady_clock::now())
                      .count() +
                  1;
    int RemainMs = Remain < 0 ? 0 : static_cast<int>(Remain);
    if (TimeoutMs < 0 || TimeoutMs > RemainMs)
      TimeoutMs = RemainMs;
  }
  epoll_event Events[128];
  int N = ::epoll_wait(EpollFd, Events, 128, TimeoutMs);
  if (N < 0) {
    if (errno == EINTR)
      N = 0;
    else
      return sysError("epoll_wait");
  }
  for (int I = 0; I != N; ++I) {
    void *P = Events[I].data.ptr;
    if (!P) {
      acceptPending();
      continue;
    }
    if (P == &WakeFd) {
      uint64_t X;
      while (::read(WakeFd, &X, sizeof(X)) > 0)
        ;
      continue;
    }
    Conn *C = static_cast<Conn *>(P);
    if (C->Fd < 0)
      continue; // closed earlier in this batch
    if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
      closeConn(C);
      continue;
    }
    if (Events[I].events & EPOLLIN) {
      handleReadable(C);
      if (C->Fd < 0)
        continue;
    }
    if (Events[I].events & EPOLLOUT)
      processConn(C);
  }
  for (Conn *C : PendingRelease) {
    C->NextFree = FreeList;
    FreeList = C;
  }
  PendingRelease.clear();
  if (Draining && ActiveConns == 0)
    DrainDone.store(true, std::memory_order_release);
  if (Idle)
    Idle();
  return N;
}

Error Reactor::runUntil(const std::function<bool()> &Stop, int TimeoutMs) {
  while (!Stop() && !drainComplete()) {
    Expected<int> N = pollOnce(TimeoutMs);
    if (!N)
      return N.takeError();
  }
  return Error::success();
}
