//===- net/ReactorPool.h - Multi-core reactors + update barrier -*- C++ -*-//
///
/// \file
/// The multi-core serving plane: N Reactors, each pinned to its own
/// thread with its own SO_REUSEPORT listener on one shared port (the
/// kernel spreads accepted connections across workers), plus the
/// **cross-worker update barrier** that preserves the paper's guarantee
/// — dynamic updates commit only at quiescent update points — across
/// all workers at once.
///
/// Per-worker quiescence is the reactor's idle point: the instant
/// between poll iterations when no request is mid-handler on that
/// worker (a fully generated but still-flushing response does not make
/// a worker non-quiescent; no updateable code runs during a flush).
///
/// Barrier protocol:
///
///   1. *Arm.*  A worker that observes a pending staged update at its
///      idle point — or any thread calling runQuiescent() — arms the
///      barrier and wakes every reactor's eventfd, so workers blocked
///      in epoll_wait reach their update point promptly.
///   2. *Park.*  Each worker, at its next idle point, parks: it
///      increments the arrival count and blocks.  A worker stuck inside
///      a long request cannot park, so the barrier *waits* for it —
///      updates are delayed, never applied under a non-quiescent
///      worker (the paper's activeness rule, per worker).
///   3. *Commit.*  The last worker to arrive is the designated
///      committer: alone, with every worker quiescent, it runs the
///      queued runQuiescent() operations and the runtime's
///      updatePoint() — the PR 3 generation-validated commit — exactly
///      once.  Rollback and EC_Busy semantics are unchanged: the
///      committer thread is quiescent by construction, so the
///      single-updater discipline holds trivially.
///   4. *Release.*  The committer bumps the barrier generation and
///      wakes the parked workers; each records its park duration in
///      its pause histogram and resumes serving.
///
/// The park duration is the *entire* per-worker cost of an update —
/// the number the acceptance bar bounds at microseconds per worker.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_NET_REACTORPOOL_H
#define DSU_NET_REACTORPOOL_H

#include "epoch/Epoch.h"
#include "net/Reactor.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dsu {

class Runtime;

namespace net {

/// Pool configuration.
struct PoolOptions {
  unsigned Workers = 1; ///< 0 = std::thread::hardware_concurrency()
  uint16_t Port = 0;    ///< 0 picks an ephemeral port (shared by all)
  size_t MaxRequestBytes = 1 << 20;
  int PollTimeoutMs = 5; ///< per-iteration epoll timeout
  /// Pin worker I to CPU (I mod cores) via pthread_setaffinity_np;
  /// skipped gracefully (reported as cpu -1) on 1-core hosts.
  bool PinWorkers = false;
};

/// N reactor workers behind one port, with the cross-worker update
/// barrier.
class ReactorPool {
public:
  using FastHandler = Reactor::FastHandler;

  /// Worker lifecycle as reported by /admin/status.
  enum class WorkerState : int { Idle, Serving, Parked, Stopped };
  static const char *workerStateName(WorkerState S);

  explicit ReactorPool(FastHandler H, PoolOptions O = {});
  ~ReactorPool();
  ReactorPool(const ReactorPool &) = delete;
  ReactorPool &operator=(const ReactorPool &) = delete;

  /// Wires the pool to \p RT: workers arm the barrier when
  /// RT.updatePending() turns true at an idle point, and the barrier's
  /// committer runs RT.updatePoint().  Call before start().
  void setUpdateRuntime(Runtime &RT) { TheRuntime = &RT; }

  /// Binds all listeners (the first picks the shared port when
  /// Options.Port is 0) and spawns the worker threads.
  Error start();

  /// Graceful stop: every reactor drains in-flight pipelined requests
  /// and closes idle keep-alive connections, then the threads join.
  /// Queued runQuiescent() operations that never ran fail with EC_Busy.
  /// Idempotent.
  void stop();

  bool running() const { return !Threads.empty(); }
  uint16_t port() const { return BoundPort; }
  unsigned workers() const {
    return static_cast<unsigned>(Reactors.size());
  }

  /// Runs \p Fn exactly once while every worker is parked at its update
  /// point.  Callable from any thread — including a worker's own
  /// handler, which then contributes its own arrival (an admin request
  /// is not updateable code, so the worker is quiescent by the barrier's
  /// definition).  Returns Fn's error, or EC_Busy when the pool stopped
  /// before quiescence was reached.
  Error runQuiescent(std::function<Error()> Fn);

  /// Wakes every reactor (e.g. when a staged update becomes ready, so
  /// the next barrier forms without waiting out a poll timeout).
  /// Thread-safe against stop()/start().
  void wake();

  /// A wake() thunk that is safe to invoke even after this pool has
  /// been destroyed (it degrades to a no-op).  Use for callbacks whose
  /// holder may outlive the pool — e.g. UpdateController::setOnStaged,
  /// where the controller's worker lives as long as the Runtime.
  std::function<void()> wakeCallback();

  // -- Introspection ------------------------------------------------------

  WorkerState workerState(unsigned I) const {
    return static_cast<WorkerState>(
        States[I]->load(std::memory_order_relaxed));
  }
  const WorkerStats &workerStats(unsigned I) const {
    return Reactors[I]->stats();
  }
  Reactor &reactor(unsigned I) { return *Reactors[I]; }

  /// Completed barrier rounds (each committed queued work exactly once).
  uint64_t barrierRounds() const {
    return Rounds.load(std::memory_order_relaxed);
  }

  /// The epoch worker \p I last announced at its quiescent point (0
  /// before the worker registered / after it stopped).  Together with
  /// epoch::domain().globalEpoch() this is the per-worker epoch lag the
  /// admin plane reports.
  uint64_t workerEpoch(unsigned I) const;

  /// CPU worker \p I is pinned to, or -1 when unpinned (PinWorkers off,
  /// 1-core host, or affinity call failed).
  int workerCpu(unsigned I) const {
    return Cpus[I]->load(std::memory_order_relaxed);
  }

  uint64_t requestsServed() const;
  uint64_t bytesSent() const;
  uint64_t connectionsAccepted() const;

private:
  /// One queued quiescent operation (runQuiescent) with its completion
  /// handshake.  Guarded by BarrierMu.
  struct OpState {
    std::function<Error()> Fn;
    Error Result;
    bool Done = false;
  };

  void workerMain(unsigned Idx);
  /// The per-worker update point: commits code-only fronts as rolling
  /// updates (no parking), or arms the barrier and parks for
  /// state-migrating ones.
  void maybeEnterBarrier(unsigned Idx);
  /// Parks worker \p Idx until the current round is committed.  Caller
  /// must not hold BarrierMu.
  void park(unsigned Idx);
  /// Runs queued ops + the runtime update point; caller holds BarrierMu
  /// and is the last arrival.
  void commitRound();
  void setState(unsigned Idx, WorkerState S) {
    States[Idx]->store(static_cast<int>(S), std::memory_order_relaxed);
  }

  /// Shared liveness gate behind wakeCallback(): the callback locks M
  /// and wakes only while P still points at a live pool.
  struct WakeGate {
    std::mutex M;
    ReactorPool *P = nullptr;
  };

  PoolOptions Options;
  FastHandler Handler;
  Runtime *TheRuntime = nullptr;
  uint16_t BoundPort = 0;

  /// Serializes wake()'s reactor iteration against start()/stop()
  /// rebuilding or closing the reactors.
  mutable std::mutex WakeMu;
  std::vector<std::unique_ptr<Reactor>> Reactors;
  std::vector<std::thread> Threads;
  /// unique_ptr so the atomics have stable addresses across vector
  /// growth during setup.
  std::vector<std::unique_ptr<std::atomic<int>>> States;
  /// Each worker's epoch announcement cell (set by the worker thread
  /// after it registers with the default domain; null when stopped).
  std::vector<std::unique_ptr<std::atomic<epoch::Domain::Slot *>>>
      EpochSlots;
  /// Pinned CPU per worker (-1 = unpinned), written by start().
  std::vector<std::unique_ptr<std::atomic<int>>> Cpus;
  std::shared_ptr<WakeGate> Gate;

  // Barrier state (all guarded by BarrierMu unless noted).
  mutable std::mutex BarrierMu;
  std::condition_variable BarrierCV;
  std::atomic<bool> ArmedHint{false}; ///< lock-free fast-path check
  bool Armed = false;
  bool Stopping = false;
  uint64_t Generation = 0;
  unsigned ParkedCount = 0;
  unsigned Active = 0; ///< workers currently running their loop
  std::vector<std::shared_ptr<OpState>> Ops;
  std::atomic<uint64_t> Rounds{0};
};

} // namespace net
} // namespace dsu

#endif // DSU_NET_REACTORPOOL_H
