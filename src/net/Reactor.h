//===- net/Reactor.h - One epoll event-loop worker ------------*- C++ -*-===//
///
/// \file
/// A Reactor is one epoll-based, nonblocking HTTP event loop: the
/// generalization of the single-threaded flashed::Server into a unit a
/// ReactorPool can replicate per core.  Each reactor owns its own
/// listening socket (optionally SO_REUSEPORT, so N reactors share one
/// port and the kernel spreads accepts), its own connection table
/// reached directly through `epoll_event.data.ptr`, free-listed
/// connection objects with recycled buffers, and a wakeup eventfd that
/// lets other threads interrupt epoll_wait — the mechanism the pool's
/// cross-worker update barrier uses to park a worker promptly.
///
/// The serving hot path is allocation- and lookup-free in steady state;
/// persistent (HTTP/1.1 keep-alive) connections are drained request by
/// request, including pipelined requests arriving in one read.  The idle
/// hook runs once per poll iteration, between requests — the per-worker
/// update point.
///
/// Shutdown is graceful by default: requestStop() (callable from any
/// thread) closes the listener, serves every already-buffered pipelined
/// request, flushes backpressured output, closes idle keep-alive
/// connections, and only then reports drainComplete().  close() remains
/// the immediate teardown.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_NET_REACTOR_H
#define DSU_NET_REACTOR_H

#include "flashed/Http.h"
#include "net/WorkerStats.h"
#include "support/Error.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dsu {
namespace net {

/// Listener configuration for one reactor.
struct ReactorOptions {
  uint16_t Port = 0;     ///< 0 picks an ephemeral port
  bool ReusePort = false; ///< SO_REUSEPORT (pool members share one port)
  size_t MaxRequestBytes = 1 << 20;
};

/// One epoll event-loop worker.
class Reactor {
public:
  /// Legacy one-shot handler: maps one complete raw request to raw
  /// response bytes.  Connections served through it close after each
  /// response (HTTP/1.0 semantics).
  using Handler = std::function<std::string(const std::string &)>;

  /// Writer-style handler for the persistent-connection fast path.  The
  /// handler serializes the response head (and any inline body) into
  /// \p Out — the connection's reusable output buffer — and may set
  /// \p Body to a shared payload written after \p Out without copying.
  using FastHandler = std::function<void(
      const flashed::RequestHead &Req, std::string_view Raw,
      std::string &Out, std::shared_ptr<const std::string> &Body)>;

  /// Called once per event-loop iteration (the per-worker update point).
  using IdleHook = std::function<void()>;

  explicit Reactor(Handler H) : Handle(std::move(H)) {}
  explicit Reactor(FastHandler H) : Fast(std::move(H)) {}
  ~Reactor();
  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  /// Binds and listens on 127.0.0.1 per \p O and creates the epoll set
  /// and wakeup eventfd.  Fails with EC_IO when already listening.
  Error open(const ReactorOptions &O);

  /// The bound port (valid after open()).
  uint16_t port() const { return BoundPort; }

  void setIdleHook(IdleHook Hook) { Idle = std::move(Hook); }

  /// Caps per-connection buffering (default 1 MiB); a client that
  /// streams bytes forever cannot grow memory without bound.
  void setMaxRequestBytes(size_t Bytes) { MaxRequestBytes = Bytes; }

  /// Runs one event-loop iteration with the given poll timeout.
  /// Returns the number of events processed.
  Expected<int> pollOnce(int TimeoutMs);

  /// Loops until \p Stop returns true or a requested drain completes.
  Error runUntil(const std::function<bool()> &Stop, int TimeoutMs = 10);

  /// Begins a graceful drain (thread-safe): the loop stops accepting,
  /// serves buffered pipelined requests, flushes pending output, closes
  /// idle connections, then drainComplete() turns true.  A peer that
  /// refuses to read its backpressured response cannot wedge shutdown:
  /// connections still alive after the drain deadline are force-closed.
  void requestStop();

  /// Bounds how long a graceful drain waits for stalled connections
  /// before force-closing them (default 5000 ms).
  void setDrainTimeout(int Ms) { DrainTimeoutMs = Ms; }

  /// True once a requested drain has finished (no live connections).
  bool drainComplete() const {
    return DrainDone.load(std::memory_order_acquire);
  }

  /// Interrupts a blocking epoll_wait (thread-safe while open).  Used by
  /// the pool's update barrier so a worker parked in epoll_wait reaches
  /// its update point promptly.
  void wake();

  /// Closes all sockets immediately; open() may be called again.
  void close();

  const WorkerStats &stats() const { return Stats; }
  WorkerStats &mutableStats() { return Stats; }

  uint64_t requestsServed() const {
    return Stats.Requests.load(std::memory_order_relaxed);
  }
  uint64_t bytesSent() const {
    return Stats.BytesSent.load(std::memory_order_relaxed);
  }
  uint64_t connectionsAccepted() const {
    return Stats.Connections.load(std::memory_order_relaxed);
  }

  /// Live (accepted, not yet closed) connections.
  size_t activeConnections() const { return ActiveConns; }

private:
  /// One pooled connection.  Reached via epoll_event.data.ptr; buffers
  /// keep their capacity across tenants (free-list recycling).
  struct Conn {
    int Fd = -1;
    std::string In; ///< inbound bytes; [InPos, size) not yet consumed
    size_t InPos = 0;
    std::string Out; ///< serialized output; [OutPos, size) unwritten
    size_t OutPos = 0;
    std::shared_ptr<const std::string> Tail; ///< zero-copy body after Out
    size_t TailPos = 0;
    bool WriteArmed = false;
    bool CloseAfter = false;
    bool PeerClosed = false; ///< read side saw EOF (client half-close)
    Conn *NextFree = nullptr;

    bool hasPendingOutput() const {
      return OutPos < Out.size() || (Tail && TailPos < Tail->size());
    }
  };

  Conn *allocConn(int Fd);
  void acceptPending();
  void pauseAccepting();
  void resumeAcceptingIfDue();
  void beginDrain();
  void handleReadable(Conn *C);
  /// Serves every buffered request backpressure allows, then flushes.
  void processConn(Conn *C);
  void serveOne(Conn *C, const flashed::RequestHead &Head,
                std::string_view Raw);
  /// Returns false when the connection was closed by a write error.
  bool flushOutput(Conn *C);
  void closeConn(Conn *C);
  void armWrite(Conn *C, bool Enable);

  Handler Handle;
  FastHandler Fast;
  IdleHook Idle;
  int EpollFd = -1;
  int ListenFd = -1;
  int WakeFd = -1;
  uint16_t BoundPort = 0;
  size_t MaxRequestBytes = 1 << 20;

  std::vector<std::unique_ptr<Conn>> Pool;
  Conn *FreeList = nullptr;
  /// Conns closed mid-batch; recycled only after the batch so stale
  /// events in the same epoll_wait return cannot hit a reused object.
  std::vector<Conn *> PendingRelease;
  size_t ActiveConns = 0;

  bool AcceptPaused = false;
  bool AcceptErrorLogged = false;
  std::chrono::steady_clock::time_point AcceptResumeAt{};

  std::atomic<bool> StopRequested{false}; ///< set from any thread
  bool Draining = false;                  ///< loop-local drain state
  std::atomic<bool> DrainDone{false};
  int DrainTimeoutMs = 5000;
  std::chrono::steady_clock::time_point DrainDeadline{};

  WorkerStats Stats;
};

} // namespace net
} // namespace dsu

#endif // DSU_NET_REACTOR_H
