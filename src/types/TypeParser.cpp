//===- types/TypeParser.cpp -----------------------------------*- C++ -*-===//

#include "types/TypeParser.h"

#include "support/StringUtil.h"

#include <cctype>

using namespace dsu;

namespace {

/// Recursive-descent parser over the type grammar.
class Parser {
public:
  Parser(TypeContext &Ctx, std::string_view In) : Ctx(Ctx), In(In) {}

  Expected<const Type *> parseAll() {
    Expected<const Type *> T = parseTy();
    if (!T)
      return T;
    skipSpace();
    if (Pos != In.size())
      return err("trailing characters after type");
    return T;
  }

private:
  Error errValue(const char *Msg) {
    return Error::make(ErrorCode::EC_Parse, "type syntax at offset %zu: %s",
                       Pos, Msg);
  }
  Expected<const Type *> err(const char *Msg) { return errValue(Msg); }

  void skipSpace() {
    while (Pos < In.size() &&
           std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeKeyword(std::string_view KW) {
    skipSpace();
    if (In.substr(Pos, KW.size()) != KW)
      return false;
    size_t End = Pos + KW.size();
    // Keywords are identifiers: require a non-ident boundary.
    if (End < In.size() &&
        (std::isalnum(static_cast<unsigned char>(In[End])) || In[End] == '_'))
      return false;
    Pos = End;
    return true;
  }

  std::string parseIdent() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < In.size() &&
           (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '_' || In[Pos] == '-' || In[Pos] == '.'))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  Expected<const Type *> parseTy() {
    skipSpace();
    if (Pos >= In.size())
      return err("expected a type");

    if (In[Pos] == '%')
      return parseNamed();
    if (In[Pos] == '{')
      return parseStruct();

    if (consumeKeyword("int"))
      return Ctx.intType();
    if (consumeKeyword("bool"))
      return Ctx.boolType();
    if (consumeKeyword("float"))
      return Ctx.floatType();
    if (consumeKeyword("string"))
      return Ctx.stringType();
    if (consumeKeyword("unit"))
      return Ctx.unitType();
    if (consumeKeyword("ptr"))
      return parseElemType(/*IsPtr=*/true);
    if (consumeKeyword("array"))
      return parseElemType(/*IsPtr=*/false);
    if (consumeKeyword("fn"))
      return parseFn();
    return err("unknown type head");
  }

  Expected<const Type *> parseElemType(bool IsPtr) {
    if (!consume('<'))
      return err("expected '<'");
    Expected<const Type *> Elem = parseTy();
    if (!Elem)
      return Elem;
    if (!consume('>'))
      return err("expected '>'");
    return IsPtr ? Ctx.ptrType(*Elem) : Ctx.arrayType(*Elem);
  }

  Expected<const Type *> parseStruct() {
    consume('{');
    std::vector<Type::Field> Fields;
    skipSpace();
    if (consume('}'))
      return Ctx.structType(std::move(Fields));
    while (true) {
      std::string Name = parseIdent();
      if (Name.empty())
        return err("expected field name");
      if (!consume(':'))
        return err("expected ':' after field name");
      Expected<const Type *> FT = parseTy();
      if (!FT)
        return FT;
      Fields.push_back(Type::Field{std::move(Name), *FT});
      if (consume(','))
        continue;
      if (consume('}'))
        return Ctx.structType(std::move(Fields));
      return err("expected ',' or '}' in struct type");
    }
  }

  Expected<const Type *> parseFn() {
    if (!consume('('))
      return err("expected '(' after fn");
    std::vector<const Type *> Params;
    skipSpace();
    if (!consume(')')) {
      while (true) {
        Expected<const Type *> P = parseTy();
        if (!P)
          return P;
        Params.push_back(*P);
        if (consume(','))
          continue;
        if (consume(')'))
          break;
        return err("expected ',' or ')' in parameter list");
      }
    }
    if (!consume('-') || !consume('>'))
      return err("expected '->' after parameter list");
    Expected<const Type *> Ret = parseTy();
    if (!Ret)
      return Ret;
    return Ctx.fnType(std::move(Params), *Ret);
  }

  Expected<const Type *> parseNamed() {
    consume('%');
    std::string Name = parseIdent();
    if (Name.empty())
      return err("expected name after '%'");
    uint32_t Version = 1;
    if (consume('@')) {
      std::string V = parseIdent();
      uint64_t Parsed;
      if (!parseUInt(V, Parsed) || Parsed == 0 || Parsed > UINT32_MAX)
        return err("bad version number");
      Version = static_cast<uint32_t>(Parsed);
    }
    return Ctx.namedType(std::move(Name), Version);
  }

  TypeContext &Ctx;
  std::string_view In;
  size_t Pos = 0;
};

} // namespace

Expected<const Type *> dsu::parseType(TypeContext &Ctx,
                                      std::string_view Text) {
  return Parser(Ctx, Text).parseAll();
}

Expected<VersionedName> dsu::parseVersionedName(std::string_view Text) {
  std::string_view S = trim(Text);
  if (S.empty() || S[0] != '%')
    return Error::make(ErrorCode::EC_Parse,
                       "versioned name must start with '%%': '%.*s'",
                       static_cast<int>(S.size()), S.data());
  S.remove_prefix(1);
  size_t At = S.find('@');
  if (At == std::string_view::npos || At == 0)
    return Error::make(ErrorCode::EC_Parse, "missing '@version' in name");
  uint64_t V;
  if (!parseUInt(S.substr(At + 1), V) || V == 0 || V > UINT32_MAX)
    return Error::make(ErrorCode::EC_Parse, "bad version number");
  return VersionedName{std::string(S.substr(0, At)),
                       static_cast<uint32_t>(V)};
}
