//===- types/Type.h - Structural type descriptors -------------*- C++ -*-===//
///
/// \file
/// The type language used for type-safe dynamic updating.
///
/// The PLDI 2001 system attaches TAL types to every symbol a patch imports
/// or exports and checks them at dynamic-link time; named (nominal) type
/// definitions are versioned, and changing a definition requires a state
/// transformer.  This module provides the same machinery for the C++
/// reproduction: a small structural type language with versioned named
/// types, hash-consed in a TypeContext so equality is pointer equality.
///
/// Grammar (concrete syntax accepted by TypeParser and produced by
/// Type::str()):
/// \code
///   type := int | bool | float | string | unit
///         | ptr<type> | array<type>
///         | { field : type , ... }          (struct)
///         | fn(type, ...) -> type           (function)
///         | %name@version                   (named nominal type)
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TYPES_TYPE_H
#define DSU_TYPES_TYPE_H

#include "support/Error.h"
#include "support/Hashing.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {

class TypeContext;

/// A name together with a definition version; the unit of nominal typing.
/// The PLDI 2001 patch model bumps the version when a type's representation
/// changes, and demands a transformer %name@V -> %name@(V+1).
struct VersionedName {
  std::string Name;
  uint32_t Version = 1;

  friend bool operator==(const VersionedName &A, const VersionedName &B) {
    return A.Version == B.Version && A.Name == B.Name;
  }
  friend bool operator<(const VersionedName &A, const VersionedName &B) {
    if (A.Name != B.Name)
      return A.Name < B.Name;
    return A.Version < B.Version;
  }

  /// Renders "%name@version".
  std::string str() const;
};

/// An immutable, interned type descriptor.  Instances are created only by
/// TypeContext; equality of descriptors within one context is pointer
/// equality.
class Type {
public:
  enum KindTy {
    TK_Int,
    TK_Bool,
    TK_Float,
    TK_String,
    TK_Unit,
    TK_Ptr,
    TK_Array,
    TK_Struct,
    TK_Fn,
    TK_Named,
  };

  /// One member of a struct type.
  struct Field {
    std::string Name;
    const Type *Ty;
  };

  KindTy kind() const { return Kind; }
  bool isPrimitive() const { return Kind <= TK_Unit; }
  bool isFunction() const { return Kind == TK_Fn; }
  bool isNamed() const { return Kind == TK_Named; }
  bool isStruct() const { return Kind == TK_Struct; }

  /// Element type of a ptr or array.
  const Type *element() const {
    assert((Kind == TK_Ptr || Kind == TK_Array) && "no element type");
    return Elem;
  }

  const std::vector<Field> &fields() const {
    assert(Kind == TK_Struct && "not a struct type");
    return Fields;
  }

  /// Returns the struct field named \p Name, or nullptr.
  const Field *findField(std::string_view Name) const;

  const std::vector<const Type *> &params() const {
    assert(Kind == TK_Fn && "not a function type");
    return Params;
  }
  const Type *result() const {
    assert(Kind == TK_Fn && "not a function type");
    return Ret;
  }

  const VersionedName &name() const {
    assert(Kind == TK_Named && "not a named type");
    return NamedName;
  }

  /// Canonical textual form; parseable by TypeParser.
  const std::string &str() const { return Canonical; }

  /// Stable 64-bit fingerprint of the canonical form.  Named types
  /// fingerprint nominally (name and version only), mirroring how the
  /// paper's link-time check treats abstract type names.
  uint64_t fingerprint() const { return Print; }

private:
  friend class TypeContext;
  Type() = default;
  Type(const Type &) = delete;
  Type &operator=(const Type &) = delete;

  KindTy Kind = TK_Unit;
  const Type *Elem = nullptr;
  std::vector<Field> Fields;
  std::vector<const Type *> Params;
  const Type *Ret = nullptr;
  VersionedName NamedName;
  std::string Canonical;
  uint64_t Print = 0;
};

/// Owns and hash-conses Type nodes, and records definitions for named
/// types.  All types flowing through one dsu::Runtime share one context.
///
/// Thread-safe: interning and definition lookups take an internal mutex,
/// so update transactions may be staged (which parses and defines patch
/// types) on any thread while the update thread links and commits.  Type
/// nodes themselves are immutable once interned, so holding a const
/// Type* never requires the lock.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *intType() const { return IntTy; }
  const Type *boolType() const { return BoolTy; }
  const Type *floatType() const { return FloatTy; }
  const Type *stringType() const { return StringTy; }
  const Type *unitType() const { return UnitTy; }

  const Type *ptrType(const Type *Elem);
  const Type *arrayType(const Type *Elem);
  const Type *structType(std::vector<Type::Field> Fields);
  const Type *fnType(std::vector<const Type *> Params, const Type *Ret);
  const Type *namedType(const VersionedName &Name);
  const Type *namedType(std::string Name, uint32_t Version) {
    return namedType(VersionedName{std::move(Name), Version});
  }

  /// Binds the representation \p Def to the nominal name \p Name.
  /// Rebinding the same name@version to a different representation fails:
  /// definitions are immutable, new representations need a version bump.
  Error defineNamed(const VersionedName &Name, const Type *Def);

  /// Returns the representation bound to \p Name, or nullptr.
  const Type *lookupDefinition(const VersionedName &Name) const;

  /// Highest version defined for \p Name, or 0 when undefined.
  uint32_t latestVersion(const std::string &Name) const;

  /// Number of distinct interned types (monitoring/testing hook).
  size_t numInternedTypes() const;

private:
  const Type *intern(std::unique_ptr<Type> T);
  const Type *makePrim(Type::KindTy K, const char *Spelling);

  mutable std::mutex Lock;
  std::map<std::string, std::unique_ptr<Type>> Interned;
  std::map<VersionedName, const Type *> Definitions;

  const Type *IntTy, *BoolTy, *FloatTy, *StringTy, *UnitTy;
};

} // namespace dsu

#endif // DSU_TYPES_TYPE_H
