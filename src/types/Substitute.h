//===- types/Substitute.h - Named-type version substitution ---*- C++ -*-===//
///
/// \file
/// Rewrites occurrences of a named type at one version to another version
/// inside an arbitrary type.  The state-transformation engine uses this to
/// compute the post-update type of a state cell: a cell typed
/// `array<%rec@1>` becomes `array<%rec@2>` under the bump %rec@1 -> %rec@2.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TYPES_SUBSTITUTE_H
#define DSU_TYPES_SUBSTITUTE_H

#include "types/Compat.h"
#include "types/Type.h"

namespace dsu {

/// Returns \p Ty with every occurrence of the bump's old name@version
/// replaced by the new version.  Returns \p Ty itself when nothing
/// matches.
const Type *substituteNamedVersion(TypeContext &Ctx, const Type *Ty,
                                   const VersionBump &Bump);

/// True when \p Ty mentions the named type \p Name (at that exact
/// version) anywhere in its structure.
bool typeMentions(const Type *Ty, const VersionedName &Name);

} // namespace dsu

#endif // DSU_TYPES_SUBSTITUTE_H
