//===- types/Type.cpp -----------------------------------------*- C++ -*-===//

#include "types/Type.h"

#include "support/StringUtil.h"

using namespace dsu;

std::string VersionedName::str() const {
  return formatString("%%%s@%u", Name.c_str(), Version);
}

const Type::Field *Type::findField(std::string_view Name) const {
  for (const Field &F : fields())
    if (F.Name == Name)
      return &F;
  return nullptr;
}

TypeContext::TypeContext() {
  IntTy = makePrim(Type::TK_Int, "int");
  BoolTy = makePrim(Type::TK_Bool, "bool");
  FloatTy = makePrim(Type::TK_Float, "float");
  StringTy = makePrim(Type::TK_String, "string");
  UnitTy = makePrim(Type::TK_Unit, "unit");
}

const Type *TypeContext::intern(std::unique_ptr<Type> T) {
  T->Print = fingerprintString(T->Canonical);
  auto It = Interned.find(T->Canonical);
  if (It != Interned.end())
    return It->second.get();
  const Type *Raw = T.get();
  Interned.emplace(T->Canonical, std::move(T));
  return Raw;
}

const Type *TypeContext::makePrim(Type::KindTy K, const char *Spelling) {
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = K;
  T->Canonical = Spelling;
  return intern(std::move(T));
}

const Type *TypeContext::ptrType(const Type *Elem) {
  assert(Elem && "null element type");
  std::lock_guard<std::mutex> G(Lock);
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = Type::TK_Ptr;
  T->Elem = Elem;
  T->Canonical = "ptr<" + Elem->str() + ">";
  return intern(std::move(T));
}

const Type *TypeContext::arrayType(const Type *Elem) {
  assert(Elem && "null element type");
  std::lock_guard<std::mutex> G(Lock);
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = Type::TK_Array;
  T->Elem = Elem;
  T->Canonical = "array<" + Elem->str() + ">";
  return intern(std::move(T));
}

const Type *TypeContext::structType(std::vector<Type::Field> Fields) {
  std::lock_guard<std::mutex> G(Lock);
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = Type::TK_Struct;
  std::string S = "{";
  for (size_t I = 0; I != Fields.size(); ++I) {
    assert(Fields[I].Ty && "null field type");
    if (I)
      S += ", ";
    S += Fields[I].Name;
    S += ": ";
    S += Fields[I].Ty->str();
  }
  S += "}";
  T->Fields = std::move(Fields);
  T->Canonical = std::move(S);
  return intern(std::move(T));
}

const Type *TypeContext::fnType(std::vector<const Type *> Params,
                                const Type *Ret) {
  assert(Ret && "null return type");
  std::lock_guard<std::mutex> G(Lock);
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = Type::TK_Fn;
  std::string S = "fn(";
  for (size_t I = 0; I != Params.size(); ++I) {
    assert(Params[I] && "null parameter type");
    if (I)
      S += ", ";
    S += Params[I]->str();
  }
  S += ") -> ";
  S += Ret->str();
  T->Params = std::move(Params);
  T->Ret = Ret;
  T->Canonical = std::move(S);
  return intern(std::move(T));
}

const Type *TypeContext::namedType(const VersionedName &Name) {
  assert(!Name.Name.empty() && "named type needs a name");
  std::lock_guard<std::mutex> G(Lock);
  auto T = std::unique_ptr<Type>(new Type());
  T->Kind = Type::TK_Named;
  T->NamedName = Name;
  T->Canonical = Name.str();
  return intern(std::move(T));
}

Error TypeContext::defineNamed(const VersionedName &Name, const Type *Def) {
  assert(Def && "null definition");
  std::lock_guard<std::mutex> G(Lock);
  auto It = Definitions.find(Name);
  if (It != Definitions.end()) {
    if (It->second == Def)
      return Error::success();
    return Error::make(ErrorCode::EC_Invalid,
                       "type %s is already defined as '%s'; representation "
                       "changes require a version bump",
                       Name.str().c_str(), It->second->str().c_str());
  }
  Definitions.emplace(Name, Def);
  return Error::success();
}

const Type *TypeContext::lookupDefinition(const VersionedName &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Definitions.find(Name);
  return It == Definitions.end() ? nullptr : It->second;
}

uint32_t TypeContext::latestVersion(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Lock);
  uint32_t Best = 0;
  for (const auto &[VN, Def] : Definitions) {
    (void)Def;
    if (VN.Name == Name && VN.Version > Best)
      Best = VN.Version;
  }
  return Best;
}

size_t TypeContext::numInternedTypes() const {
  std::lock_guard<std::mutex> G(Lock);
  return Interned.size();
}
