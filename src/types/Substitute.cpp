//===- types/Substitute.cpp -----------------------------------*- C++ -*-===//

#include "types/Substitute.h"

using namespace dsu;

const Type *dsu::substituteNamedVersion(TypeContext &Ctx, const Type *Ty,
                                        const VersionBump &Bump) {
  assert(Ty && "null type");
  switch (Ty->kind()) {
  case Type::TK_Int:
  case Type::TK_Bool:
  case Type::TK_Float:
  case Type::TK_String:
  case Type::TK_Unit:
    return Ty;

  case Type::TK_Ptr: {
    const Type *E = substituteNamedVersion(Ctx, Ty->element(), Bump);
    return E == Ty->element() ? Ty : Ctx.ptrType(E);
  }
  case Type::TK_Array: {
    const Type *E = substituteNamedVersion(Ctx, Ty->element(), Bump);
    return E == Ty->element() ? Ty : Ctx.arrayType(E);
  }
  case Type::TK_Struct: {
    bool Changed = false;
    std::vector<Type::Field> Fields;
    Fields.reserve(Ty->fields().size());
    for (const Type::Field &F : Ty->fields()) {
      const Type *FT = substituteNamedVersion(Ctx, F.Ty, Bump);
      Changed |= FT != F.Ty;
      Fields.push_back(Type::Field{F.Name, FT});
    }
    return Changed ? Ctx.structType(std::move(Fields)) : Ty;
  }
  case Type::TK_Fn: {
    bool Changed = false;
    std::vector<const Type *> Params;
    Params.reserve(Ty->params().size());
    for (const Type *P : Ty->params()) {
      const Type *PT = substituteNamedVersion(Ctx, P, Bump);
      Changed |= PT != P;
      Params.push_back(PT);
    }
    const Type *R = substituteNamedVersion(Ctx, Ty->result(), Bump);
    Changed |= R != Ty->result();
    return Changed ? Ctx.fnType(std::move(Params), R) : Ty;
  }
  case Type::TK_Named:
    if (Ty->name() == Bump.From)
      return Ctx.namedType(Bump.To);
    return Ty;
  }
  return Ty;
}

bool dsu::typeMentions(const Type *Ty, const VersionedName &Name) {
  assert(Ty && "null type");
  switch (Ty->kind()) {
  case Type::TK_Int:
  case Type::TK_Bool:
  case Type::TK_Float:
  case Type::TK_String:
  case Type::TK_Unit:
    return false;
  case Type::TK_Ptr:
  case Type::TK_Array:
    return typeMentions(Ty->element(), Name);
  case Type::TK_Struct:
    for (const Type::Field &F : Ty->fields())
      if (typeMentions(F.Ty, Name))
        return true;
    return false;
  case Type::TK_Fn:
    for (const Type *P : Ty->params())
      if (typeMentions(P, Name))
        return true;
    return typeMentions(Ty->result(), Name);
  case Type::TK_Named:
    return Ty->name() == Name;
  }
  return false;
}
