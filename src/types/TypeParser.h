//===- types/TypeParser.h - Concrete type syntax --------------*- C++ -*-===//
///
/// \file
/// Parses the textual type syntax documented in types/Type.h.  Patch
/// manifests and version manifests carry symbol types as strings; this
/// parser turns them back into interned Type nodes.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TYPES_TYPEPARSER_H
#define DSU_TYPES_TYPEPARSER_H

#include "support/Error.h"
#include "types/Type.h"

#include <string_view>

namespace dsu {

/// Parses \p Text into an interned type in \p Ctx.  The whole input must
/// be consumed (modulo surrounding whitespace).
Expected<const Type *> parseType(TypeContext &Ctx, std::string_view Text);

/// Parses "%name@version" into a VersionedName.
Expected<VersionedName> parseVersionedName(std::string_view Text);

} // namespace dsu

#endif // DSU_TYPES_TYPEPARSER_H
