//===- types/Compat.cpp ---------------------------------------*- C++ -*-===//

#include "types/Compat.h"

#include "support/StringUtil.h"

#include <algorithm>

using namespace dsu;

bool dsu::typesEqual(const Type *A, const Type *B) {
  assert(A && B && "null type in comparison");
  // Types are interned per context, so canonical-string equality is the
  // context-independent ground truth (and pointer equality the fast path).
  return A == B || A->str() == B->str();
}

namespace {

/// Walks two types in lockstep, collecting version bumps; fails fast on
/// any structural divergence.
class Comparer {
public:
  ReplaceCheck run(const Type *OldTy, const Type *NewTy) {
    ReplaceCheck Out;
    std::string Why;
    if (!compare(OldTy, NewTy, Why)) {
      Out.Verdict = ReplaceVerdict::RV_Incompatible;
      Out.Reason = Why;
      return Out;
    }
    Out.Bumps = std::move(Bumps);
    Out.Verdict = Out.Bumps.empty() ? ReplaceVerdict::RV_Identical
                                    : ReplaceVerdict::RV_VersionBumped;
    return Out;
  }

private:
  bool fail(std::string &Why, const Type *OldTy, const Type *NewTy,
            const char *Detail) {
    Why = formatString("%s (old '%s' vs new '%s')", Detail,
                       OldTy->str().c_str(), NewTy->str().c_str());
    return false;
  }

  bool compare(const Type *OldTy, const Type *NewTy, std::string &Why) {
    if (typesEqual(OldTy, NewTy))
      return true;
    if (OldTy->kind() != NewTy->kind())
      return fail(Why, OldTy, NewTy, "type shapes differ");

    switch (OldTy->kind()) {
    case Type::TK_Int:
    case Type::TK_Bool:
    case Type::TK_Float:
    case Type::TK_String:
    case Type::TK_Unit:
      // Identical primitives were handled by typesEqual above.
      return fail(Why, OldTy, NewTy, "primitive types differ");

    case Type::TK_Ptr:
    case Type::TK_Array:
      return compare(OldTy->element(), NewTy->element(), Why);

    case Type::TK_Struct: {
      const auto &OF = OldTy->fields();
      const auto &NF = NewTy->fields();
      if (OF.size() != NF.size())
        return fail(Why, OldTy, NewTy, "struct field counts differ");
      for (size_t I = 0; I != OF.size(); ++I) {
        if (OF[I].Name != NF[I].Name)
          return fail(Why, OldTy, NewTy, "struct field names differ");
        if (!compare(OF[I].Ty, NF[I].Ty, Why))
          return false;
      }
      return true;
    }

    case Type::TK_Fn: {
      if (OldTy->params().size() != NewTy->params().size())
        return fail(Why, OldTy, NewTy, "function arities differ");
      for (size_t I = 0; I != OldTy->params().size(); ++I)
        if (!compare(OldTy->params()[I], NewTy->params()[I], Why))
          return false;
      return compare(OldTy->result(), NewTy->result(), Why);
    }

    case Type::TK_Named: {
      const VersionedName &ON = OldTy->name();
      const VersionedName &NN = NewTy->name();
      if (ON.Name != NN.Name)
        return fail(Why, OldTy, NewTy, "named types have different names");
      if (NN.Version < ON.Version)
        return fail(Why, OldTy, NewTy,
                    "named type version decreases; downgrades are not "
                    "updates");
      assert(NN.Version > ON.Version &&
             "equal versions should be typesEqual");
      addBump(VersionBump{ON, NN});
      return true;
    }
    }
    return fail(Why, OldTy, NewTy, "unhandled type kind");
  }

  void addBump(VersionBump B) {
    if (std::find(Bumps.begin(), Bumps.end(), B) == Bumps.end())
      Bumps.push_back(std::move(B));
  }

  std::vector<VersionBump> Bumps;
};

} // namespace

ReplaceCheck dsu::checkReplacement(const Type *OldTy, const Type *NewTy) {
  assert(OldTy && NewTy && "null type in replacement check");
  return Comparer().run(OldTy, NewTy);
}
