//===- types/Compat.h - Update compatibility rules ------------*- C++ -*-===//
///
/// \file
/// The type-compatibility judgement used when a dynamic patch replaces an
/// existing binding.
///
/// The PLDI 2001 rule: a definition may be replaced by one of the *same
/// type*; representation changes are expressed by bumping the version of a
/// named type, and every bump must be accompanied by a state transformer
/// for values of the old version.  checkReplacement() computes exactly
/// this judgement: it reports either identity, a set of required
/// old-version -> new-version transformer obligations, or incompatibility
/// with a reason usable in diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TYPES_COMPAT_H
#define DSU_TYPES_COMPAT_H

#include "types/Type.h"

#include <string>
#include <vector>

namespace dsu {

/// Outcome of comparing a new binding's type against the old one.
enum class ReplaceVerdict {
  RV_Identical,     ///< byte-for-byte same type; no obligations
  RV_VersionBumped, ///< same shape modulo named-type version increases
  RV_Incompatible,  ///< shapes differ; replacement must be rejected
};

/// A named-type version increase discovered during comparison; the update
/// is only safe if a transformer for this pair is supplied.
struct VersionBump {
  VersionedName From;
  VersionedName To;

  friend bool operator==(const VersionBump &A, const VersionBump &B) {
    return A.From == B.From && A.To == B.To;
  }
};

/// Result of checkReplacement().
struct ReplaceCheck {
  ReplaceVerdict Verdict = ReplaceVerdict::RV_Incompatible;
  std::vector<VersionBump> Bumps; ///< deduplicated, discovery order
  std::string Reason;             ///< populated when incompatible

  bool ok() const { return Verdict != ReplaceVerdict::RV_Incompatible; }
};

/// Decides whether a binding of type \p OldTy may be rebound to a
/// definition of type \p NewTy.  Both must come from the same TypeContext.
ReplaceCheck checkReplacement(const Type *OldTy, const Type *NewTy);

/// Structural equality (pointer equality under interning); exposed for
/// tests that build types through different construction paths.
bool typesEqual(const Type *A, const Type *B);

} // namespace dsu

#endif // DSU_TYPES_COMPAT_H
