//===- patch/Manifest.h - Patch manifest format ---------------*- C++ -*-===//
///
/// \file
/// The textual patch description carried by every dynamic patch — the
/// reproduction of the PLDI 2001 patch file's interface section.  The
/// concrete syntax is an s-expression:
///
/// \code
/// (patch
///   (id "P3-cache-entry-v2")
///   (description "cache entries gain hit counters")
///   (requires
///     (symbol "now_ms" "fn() -> int"))
///   (provides
///     (fn (name "cache_lookup")
///         (type "fn(string) -> string")
///         (native-symbol "dsu_p3_cache_lookup")   ; native backend
///         (vtal-fn "cache_lookup")))               ; or VTAL backend
///   (new-types
///     (type (name "%cache_entry@2")
///           (repr "{path: string, body: string, hits: int}")))
///   (transformers
///     (transform (from "%cache_entry@1") (to "%cache_entry@2")
///                (impl "xform_cache_entry_1_2")))
///   (vtal-module "...assembly text...")            ; optional
/// )
/// \endcode
///
/// A provide may name a native symbol (resolved with dlsym from the patch
/// shared object, uniform-ABI, C linkage) and/or a VTAL function in the
/// embedded module; the loader picks whichever the artifact supplies.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_MANIFEST_H
#define DSU_PATCH_MANIFEST_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace dsu {

/// An import declaration: symbol name plus type text.
struct ManifestRequire {
  std::string Name;
  std::string TypeText;
};

/// One provided function.
struct ManifestProvide {
  std::string Name;
  std::string TypeText;
  std::string NativeSymbol; ///< C symbol in the patch .so ("" if none)
  std::string VtalFn;       ///< function in the embedded module ("" if none)
};

/// A new named-type definition introduced by the patch.
struct ManifestNewType {
  std::string Name; ///< "%name@version"
  std::string Repr; ///< representation type text
};

/// A state transformer declaration.
struct ManifestTransformer {
  std::string From; ///< "%name@v"
  std::string To;   ///< "%name@v+1"
  std::string Impl; ///< native symbol / vtal function / builtin name
};

/// Parsed patch manifest.
struct PatchManifest {
  std::string Id;
  std::string Description;
  std::vector<ManifestRequire> Requires;
  std::vector<ManifestProvide> Provides;
  std::vector<ManifestNewType> NewTypes;
  std::vector<ManifestTransformer> Transformers;
  std::string VtalText; ///< embedded VTAL assembly ("" if none)
  std::vector<std::string> Warnings; ///< generator notes, not machine-read

  /// Parses manifest text; checks structural well-formedness (ids and
  /// names present, forms correctly shaped) but does not parse types —
  /// that needs a TypeContext and happens in the loader.
  static Expected<PatchManifest> parse(std::string_view Text);

  /// Renders back to canonical manifest text (round-trips with parse).
  std::string print() const;
};

} // namespace dsu

#endif // DSU_PATCH_MANIFEST_H
