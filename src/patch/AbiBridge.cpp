//===- patch/AbiBridge.cpp ------------------------------------*- C++ -*-===//

#include "patch/AbiBridge.h"

#include "runtime/Updateable.h"
#include "support/Logging.h"

#include <map>
#include <type_traits>

using namespace dsu;
using vtal::Value;

Expected<Binding> dsu::makeUniformBinding(const Type *FnTy, void *Addr,
                                          uint32_t Version,
                                          std::string Origin) {
  if (!FnTy || !FnTy->isFunction())
    return Error::make(ErrorCode::EC_Invalid,
                       "uniform binding requires a function type");
  if (!Addr)
    return Error::make(ErrorCode::EC_Link,
                       "uniform binding requires a code address");
  Binding B;
  // The exported symbol already has the (void *reserved, args...) shape,
  // so it *is* the invoker; Ctx is passed as the reserved argument.
  B.Ctx = Addr;
  B.Invoker = Addr;
  B.Version = Version;
  B.Origin = std::move(Origin);
  return B;
}

namespace {

template <typename T> Value toValue(const T &V);
template <> Value toValue<int64_t>(const int64_t &V) {
  return Value::makeInt(V);
}
template <> Value toValue<double>(const double &V) {
  return Value::makeFloat(V);
}
template <> Value toValue<bool>(const bool &V) { return Value::makeBool(V); }
template <> Value toValue<std::string>(const std::string &V) {
  return Value::makeStr(V);
}

template <typename T> T fromValue(const Value &V);
template <> int64_t fromValue<int64_t>(const Value &V) { return V.asInt(); }
template <> double fromValue<double>(const Value &V) { return V.asFloat(); }
template <> bool fromValue<bool>(const Value &V) { return V.asBool(); }
template <> std::string fromValue<std::string>(const Value &V) {
  return V.asStr();
}

/// Builds a typed closure binding around a Value-level callable.  A trap
/// in verified patch code (division by zero, fuel exhaustion) is logged
/// and surfaces as the result type's zero value; it cannot corrupt the
/// caller.
template <typename R, typename... Args>
Binding makeValueBindingTyped(vtal::HostFn Impl, uint32_t Version,
                              std::string Origin) {
  auto Traps = std::make_shared<std::atomic<uint64_t>>(0);
  Binding B = makeClosureBinding<R, Args...>(
      [Impl = std::move(Impl), Traps](Args... As) -> R {
        std::vector<Value> Vs;
        Vs.reserve(sizeof...(Args));
        (Vs.push_back(toValue<std::decay_t<Args>>(As)), ...);
        Expected<Value> Res = Impl(Vs);
        if (!Res) {
          Traps->fetch_add(1, std::memory_order_relaxed);
          DSU_LOG_ERROR("patch code trapped: %s",
                        Res.error().str().c_str());
          if constexpr (std::is_void_v<R>)
            return;
          else
            return R{};
        }
        if constexpr (std::is_void_v<R>)
          return;
        else
          return fromValue<R>(*Res);
      },
      Version, std::move(Origin));
  B.Traps = std::move(Traps);
  return B;
}

using Factory =
    std::function<Binding(vtal::HostFn, uint32_t, std::string)>;
using FactoryTable = std::map<std::string, Factory>;

template <typename R, typename... Args>
void registerSig(FactoryTable &T, TypeContext &Ctx) {
  T[fnTypeOf<R, Args...>(Ctx)->str()] = [](vtal::HostFn F, uint32_t V,
                                           std::string O) {
    return makeValueBindingTyped<R, Args...>(std::move(F), V, std::move(O));
  };
}

/// Applies \p F once per supported scalar parameter type.
template <typename Fn> void forEachScalar(Fn F) {
  F(static_cast<int64_t *>(nullptr));
  F(static_cast<double *>(nullptr));
  F(static_cast<bool *>(nullptr));
  F(static_cast<std::string *>(nullptr));
}

/// Registers all signatures with result \p R up to arity 2.
template <typename R> void registerForResult(FactoryTable &T,
                                             TypeContext &Ctx) {
  registerSig<R>(T, Ctx);
  forEachScalar([&](auto *A) {
    using TA = std::remove_pointer_t<decltype(A)>;
    registerSig<R, TA>(T, Ctx);
    forEachScalar([&](auto *B) {
      using TB = std::remove_pointer_t<decltype(B)>;
      registerSig<R, TA, TB>(T, Ctx);
    });
  });
}

const FactoryTable &factoryTable() {
  static const FactoryTable Table = [] {
    FactoryTable T;
    TypeContext Ctx; // canonical strings are context-independent
    registerForResult<void>(T, Ctx);
    registerForResult<int64_t>(T, Ctx);
    registerForResult<double>(T, Ctx);
    registerForResult<bool>(T, Ctx);
    registerForResult<std::string>(T, Ctx);
    // A hand-picked set of arity-3 shapes used by FlashEd-style request
    // pipelines; extend here if patch code needs more.
    registerSig<std::string, std::string, std::string, int64_t>(T, Ctx);
    registerSig<std::string, std::string, std::string, std::string>(T, Ctx);
    registerSig<std::string, std::string, int64_t, int64_t>(T, Ctx);
    registerSig<int64_t, int64_t, int64_t, int64_t>(T, Ctx);
    registerSig<void, std::string, std::string, int64_t>(T, Ctx);
    return T;
  }();
  return Table;
}

} // namespace

bool dsu::isBridgeableFnType(const Type *FnTy) {
  return FnTy && FnTy->isFunction() &&
         factoryTable().count(FnTy->str()) != 0;
}

Expected<Binding> dsu::makeValueBinding(TypeContext &Ctx, const Type *FnTy,
                                        vtal::HostFn Impl, uint32_t Version,
                                        std::string Origin) {
  (void)Ctx;
  if (!FnTy || !FnTy->isFunction())
    return Error::make(ErrorCode::EC_Invalid,
                       "value binding requires a function type");
  auto It = factoryTable().find(FnTy->str());
  if (It == factoryTable().end())
    return Error::make(ErrorCode::EC_Unsupported,
                       "no marshalling trampoline for signature '%s'",
                       FnTy->str().c_str());
  return It->second(std::move(Impl), Version, std::move(Origin));
}
