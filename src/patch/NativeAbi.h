//===- patch/NativeAbi.h - ABI contract for native patches ----*- C++ -*-===//
///
/// \file
/// The C-linkage contract between the dsu runtime and native patch shared
/// objects.  Patch authors (and the patch generator, which emits these
/// stubs) include this header from patch sources.
///
/// A native patch exports:
///  - `const char *dsu_patch_manifest(void)` returning the s-expression
///    manifest;
///  - one uniform-ABI function per provide:
///    `R sym(void *reserved, Args...)` with the scalar mapping
///    int -> int64_t, float -> double, bool -> bool, string -> std::string
///    (by value), unit -> void;
///  - one `DsuNativeTransformOut sym(void *old_data)` per transformer.
///
/// All exports use `extern "C"` so dlsym never sees C++ mangled names —
/// the stated friction point for reproducing the PLDI 2001 dlopen path
/// in C++.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_NATIVEABI_H
#define DSU_PATCH_NATIVEABI_H

extern "C" {

/// Result of a native state transformer.
///
/// On success, `NewData` is a heap object to be owned by the runtime and
/// destroyed with `Deleter`, and `ErrorText` is null.  On failure,
/// `ErrorText` points to a static or leaked string describing the
/// problem and `NewData` is null.  The old payload is never freed by the
/// transformer — the runtime still owns it (and keeps it if the update
/// is abandoned).
struct DsuNativeTransformOut {
  void *NewData;
  void (*Deleter)(void *);
  const char *ErrorText;
};

/// Signature of a native transformer export.
typedef DsuNativeTransformOut (*DsuNativeTransformFn)(void *OldData);

} // extern "C"

#endif // DSU_PATCH_NATIVEABI_H
