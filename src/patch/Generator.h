//===- patch/Generator.h - Semi-automatic patch generation ----*- C++ -*-===//
///
/// \file
/// The patch generator: given machine-readable descriptions of two
/// program versions, computes the dynamic patch skeleton — the
/// reproduction of the PLDI 2001 system's semi-automatic patch generator
/// that diffs two Popcorn programs.
///
/// A *version manifest* describes one program version:
/// \code
/// (version-manifest
///   (program "flashed") (version 2)
///   (functions
///     (fn (name "parse_request") (type "fn(string) -> string")
///         (body-hash "9f3a...") (impl "dsu_v2_parse_request")))
///   (types
///     (type (name "%cache_entry@1") (repr "{path: string, body: string}"))))
/// \endcode
///
/// The generator classifies each definition as unchanged / body-changed /
/// signature-changed / added / removed, bumps versioned types whose
/// representation changed, emits the patch manifest, and writes stub C++
/// source for the parts a human must finish (state transformers and
/// incompatible signature changes), exactly the division of labour the
/// paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_GENERATOR_H
#define DSU_PATCH_GENERATOR_H

#include "patch/Manifest.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {

/// One function in a version manifest.
struct VmFunction {
  std::string Name;
  std::string TypeText;
  std::string BodyHash; ///< content hash of the implementation
  std::string Impl;     ///< native symbol / vtal function carrying the code
};

/// One named-type definition in a version manifest.
struct VmType {
  std::string Name; ///< "%name@version"
  std::string Repr;
};

/// Machine-readable description of one program version.
struct VersionManifest {
  std::string Program;
  uint32_t Version = 1;
  std::vector<VmFunction> Functions;
  std::vector<VmType> Types;

  static Expected<VersionManifest> parse(std::string_view Text);
  std::string print() const;

  const VmFunction *findFunction(std::string_view Name) const;
};

/// Classification counts of one generation run (reported by E6).
struct GenStats {
  unsigned Unchanged = 0;
  unsigned BodyChanged = 0;
  unsigned SigChanged = 0;
  unsigned Added = 0;
  unsigned Removed = 0;
  unsigned TypesBumped = 0;
};

/// Output of the generator.
struct GeneratedPatch {
  PatchManifest Manifest;
  GenStats Stats;
  /// C++ source skeleton for the native patch object: the manifest
  /// constant, uniform-ABI stubs delegating to the new implementations,
  /// and TODO-marked transformer stubs.
  std::string StubSource;
};

/// Diffs \p OldV against \p NewV and produces the patch skeleton.
Expected<GeneratedPatch> generatePatch(const VersionManifest &OldV,
                                       const VersionManifest &NewV);

} // namespace dsu

#endif // DSU_PATCH_GENERATOR_H
