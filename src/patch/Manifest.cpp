//===- patch/Manifest.cpp -------------------------------------*- C++ -*-===//

#include "patch/Manifest.h"

#include "support/SExpr.h"

using namespace dsu;

namespace {

/// Pulls the string payload of a (key "value") property; empty when
/// absent.
std::string propText(const SExpr &Form, std::string_view Key) {
  const SExpr *P = Form.property(Key);
  if (!P)
    return "";
  if (P->isString() || P->isSymbol())
    return P->text();
  return "";
}

Error malformed(const char *What) {
  return Error::make(ErrorCode::EC_Parse, "patch manifest: %s", What);
}

} // namespace

Expected<PatchManifest> PatchManifest::parse(std::string_view Text) {
  Expected<SExpr> Root = parseSExpr(Text);
  if (!Root)
    return Root.takeError().withContext("patch manifest");
  if (!Root->isForm("patch"))
    return malformed("top-level form must be (patch ...)");

  PatchManifest M;
  M.Id = propText(*Root, "id");
  if (M.Id.empty())
    return malformed("missing (id \"...\")");
  M.Description = propText(*Root, "description");

  if (const SExpr *Reqs = Root->findForm("requires")) {
    for (const SExpr *Sym : Reqs->findForms("symbol")) {
      if (Sym->size() != 3 || !(*Sym)[1].isString() || !(*Sym)[2].isString())
        return malformed("(symbol ...) needs a name and a type string");
      M.Requires.push_back(
          ManifestRequire{(*Sym)[1].text(), (*Sym)[2].text()});
    }
  }

  if (const SExpr *Provs = Root->findForm("provides")) {
    for (const SExpr *Fn : Provs->findForms("fn")) {
      ManifestProvide P;
      P.Name = propText(*Fn, "name");
      P.TypeText = propText(*Fn, "type");
      P.NativeSymbol = propText(*Fn, "native-symbol");
      P.VtalFn = propText(*Fn, "vtal-fn");
      if (P.Name.empty() || P.TypeText.empty())
        return malformed("(fn ...) needs (name ...) and (type ...)");
      if (P.NativeSymbol.empty() && P.VtalFn.empty())
        return malformed("(fn ...) needs native-symbol or vtal-fn");
      M.Provides.push_back(std::move(P));
    }
  }

  if (const SExpr *Types = Root->findForm("new-types")) {
    for (const SExpr *Ty : Types->findForms("type")) {
      ManifestNewType T;
      T.Name = propText(*Ty, "name");
      T.Repr = propText(*Ty, "repr");
      if (T.Name.empty() || T.Repr.empty())
        return malformed("(type ...) needs (name ...) and (repr ...)");
      M.NewTypes.push_back(std::move(T));
    }
  }

  if (const SExpr *Xfs = Root->findForm("transformers")) {
    for (const SExpr *X : Xfs->findForms("transform")) {
      ManifestTransformer T;
      T.From = propText(*X, "from");
      T.To = propText(*X, "to");
      T.Impl = propText(*X, "impl");
      if (T.From.empty() || T.To.empty() || T.Impl.empty())
        return malformed("(transform ...) needs from, to and impl");
      M.Transformers.push_back(std::move(T));
    }
  }

  M.VtalText = propText(*Root, "vtal-module");

  if (const SExpr *Warns = Root->findForm("warnings")) {
    for (size_t I = 1; I < Warns->size(); ++I)
      if ((*Warns)[I].isString())
        M.Warnings.push_back((*Warns)[I].text());
  }

  return M;
}

std::string PatchManifest::print() const {
  auto Prop = [](const char *Key, const std::string &Value) {
    return SExpr::makeList(
        {SExpr::makeSymbol(Key), SExpr::makeString(Value)});
  };

  SExpr Root = SExpr::makeList({SExpr::makeSymbol("patch")});
  Root.appendChild(Prop("id", Id));
  if (!Description.empty())
    Root.appendChild(Prop("description", Description));

  if (!Requires.empty()) {
    SExpr Reqs = SExpr::makeList({SExpr::makeSymbol("requires")});
    for (const ManifestRequire &R : Requires)
      Reqs.appendChild(SExpr::makeList({SExpr::makeSymbol("symbol"),
                                        SExpr::makeString(R.Name),
                                        SExpr::makeString(R.TypeText)}));
    Root.appendChild(std::move(Reqs));
  }

  if (!Provides.empty()) {
    SExpr Provs = SExpr::makeList({SExpr::makeSymbol("provides")});
    for (const ManifestProvide &P : Provides) {
      SExpr Fn = SExpr::makeList({SExpr::makeSymbol("fn")});
      Fn.appendChild(Prop("name", P.Name));
      Fn.appendChild(Prop("type", P.TypeText));
      if (!P.NativeSymbol.empty())
        Fn.appendChild(Prop("native-symbol", P.NativeSymbol));
      if (!P.VtalFn.empty())
        Fn.appendChild(Prop("vtal-fn", P.VtalFn));
      Provs.appendChild(std::move(Fn));
    }
    Root.appendChild(std::move(Provs));
  }

  if (!NewTypes.empty()) {
    SExpr Types = SExpr::makeList({SExpr::makeSymbol("new-types")});
    for (const ManifestNewType &T : NewTypes) {
      SExpr Ty = SExpr::makeList({SExpr::makeSymbol("type")});
      Ty.appendChild(Prop("name", T.Name));
      Ty.appendChild(Prop("repr", T.Repr));
      Types.appendChild(std::move(Ty));
    }
    Root.appendChild(std::move(Types));
  }

  if (!Transformers.empty()) {
    SExpr Xfs = SExpr::makeList({SExpr::makeSymbol("transformers")});
    for (const ManifestTransformer &T : Transformers) {
      SExpr X = SExpr::makeList({SExpr::makeSymbol("transform")});
      X.appendChild(Prop("from", T.From));
      X.appendChild(Prop("to", T.To));
      X.appendChild(Prop("impl", T.Impl));
      Xfs.appendChild(std::move(X));
    }
    Root.appendChild(std::move(Xfs));
  }

  if (!VtalText.empty())
    Root.appendChild(Prop("vtal-module", VtalText));

  if (!Warnings.empty()) {
    SExpr Warns = SExpr::makeList({SExpr::makeSymbol("warnings")});
    for (const std::string &W : Warnings)
      Warns.appendChild(SExpr::makeString(W));
    Root.appendChild(std::move(Warns));
  }

  return Root.print(/*Pretty=*/true);
}
