//===- patch/Patch.h - In-memory dynamic patch ----------------*- C++ -*-===//
///
/// \file
/// The fully resolved, code-bearing form of a dynamic patch: what the
/// update engine consumes.  Produced either by the PatchLoader (from a
/// native shared object or a VTAL patch file) or by the PatchBuilder
/// (in-process construction, used by tests and by programs shipping
/// their own updates).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_PATCH_H
#define DSU_PATCH_PATCH_H

#include "link/Linker.h"
#include "state/Transform.h"
#include "types/Compat.h"
#include "vtal/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace dsu {

/// A new named-type definition the patch introduces.
struct PatchTypeDef {
  VersionedName Name;
  const Type *Repr = nullptr;
};

/// A state transformer the patch ships.
struct PatchTransformer {
  VersionBump Bump;
  TransformFn Fn;
};

/// A ready-to-apply dynamic patch.
struct Patch {
  std::string Id;
  std::string Description;

  /// What the patch provides and imports, with live code bindings.
  LinkUnit Unit;

  std::vector<PatchTypeDef> NewTypes;
  std::vector<PatchTransformer> Transformers;

  /// Provenance: artifact path or "<in-process>".
  std::string SourcePath = "<in-process>";

  /// Size in bytes of the shipped artifact (shared object, or manifest
  /// plus encoded VTAL).  Reported by the code-size experiment (E5).
  size_t CodeBytes = 0;

  /// The embedded VTAL module, when this patch is VTAL-backed.  The
  /// update engine verifies it (timed) before linking; bindings close
  /// over the shared instance.
  std::shared_ptr<vtal::Module> VtalMod;
};

} // namespace dsu

#endif // DSU_PATCH_PATCH_H
