//===- patch/PatchLoader.cpp ----------------------------------*- C++ -*-===//

#include "patch/PatchLoader.h"

#include "link/NativeLoader.h"
#include "patch/AbiBridge.h"
#include "patch/NativeAbi.h"
#include "support/Logging.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "trace/Profile.h"
#include "types/TypeParser.h"
#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"
#include "vtal/Interp.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif

#include <atomic>

using namespace dsu;

namespace {

/// Fills the backend-independent parts of \p P from \p M: imports and
/// new-type definitions.
Error populateCommon(TypeContext &Ctx, const PatchManifest &M, Patch &P) {
  P.Id = M.Id;
  P.Description = M.Description;
  P.Unit.Name = "patch:" + M.Id;

  for (const ManifestRequire &R : M.Requires) {
    Expected<const Type *> Ty = parseType(Ctx, R.TypeText);
    if (!Ty)
      return Ty.takeError().withContext("import '" + R.Name + "'");
    P.Unit.Imports.push_back(ImportRequest{R.Name, *Ty});
  }

  for (const ManifestNewType &T : M.NewTypes) {
    Expected<VersionedName> Name = parseVersionedName(T.Name);
    if (!Name)
      return Name.takeError().withContext("new type '" + T.Name + "'");
    Expected<const Type *> Repr = parseType(Ctx, T.Repr);
    if (!Repr)
      return Repr.takeError().withContext("new type '" + T.Name + "'");
    P.NewTypes.push_back(PatchTypeDef{std::move(*Name), *Repr});
  }
  return Error::success();
}

Expected<VersionBump> parseBump(const ManifestTransformer &X) {
  Expected<VersionedName> From = parseVersionedName(X.From);
  if (!From)
    return From.takeError();
  Expected<VersionedName> To = parseVersionedName(X.To);
  if (!To)
    return To.takeError();
  return VersionBump{std::move(*From), std::move(*To)};
}

/// A VTAL module plus the interpreters executing it; shared into every
/// binding the patch creates so the code outlives the Patch value.
///
/// One interpreter instance is NOT reentrant (its frame stack and value
/// arena are reused across calls — the PR 1 allocation-free design), and
/// with the multi-core reactor pool the same updateable binding runs on
/// N workers concurrently.  call() therefore checks an interpreter out
/// of a free pool per invocation — each concurrent caller gets a
/// private frame arena, steady state recycles instances, and the lock
/// covers only the pool pop/push, never execution.
struct VtalInstance {
  vtal::Module Mod;
  /// Import resolution captured at load time, replayed onto every
  /// pooled interpreter.
  std::vector<std::pair<std::string, vtal::HostFn>> Imports;
  /// Load-time instance: single-threaded use (functionIndex queries,
  /// import type checks) while the patch is being constructed; retired
  /// into the pool once loading completes.
  std::unique_ptr<vtal::Interpreter> Interp;

  /// Hot-function profile for this module version, shared by every
  /// pooled interpreter and registered with the global ProfileRegistry
  /// (GET /admin/profile, dsu_vtal_*_total metrics).
  std::shared_ptr<trace::ModuleProfile> Prof;

  std::mutex PoolMu;
  std::vector<std::unique_ptr<vtal::Interpreter>> Pool;

#ifndef DSU_VTAL_NO_NATIVE
  /// Native-tier state.  Img is the current compiled image (null when
  /// the tier is off or nothing qualified); pooled interpreters pick up
  /// the latest image at checkout, so a promotion-published image
  /// reaches every worker without stopping any of them — the same
  /// publish-then-converge shape as a rolling binding update.  Replaced
  /// images stay alive while any checked-out interpreter still holds
  /// their shared_ptr, and their code pages epoch-retire after that.
  vtal::native::TierPolicy Policy;
  std::shared_ptr<const vtal::native::NativeImage> Img; // guarded by PoolMu
  std::atomic<uint64_t> EntryCalls{0};

  /// Applies \p Policy to the load-time interpreter's resolved form and
  /// publishes the resulting image (if any function qualified).  \p Hot
  /// widens the compile set beyond the small-function link set.
  void compileTier(const vtal::Interpreter &I,
                   const std::vector<uint32_t> &Hot) {
    using vtal::native::NativeImage;
    using vtal::native::TierPolicy;
    if (Policy.ModeV == TierPolicy::Mode::Off)
      return;
    const vtal::ResolvedModule &RM = I.resolved();
    std::vector<bool> Mask(RM.Functions.size(), false);
    for (size_t F = 0; F != RM.Functions.size(); ++F)
      Mask[F] = Policy.ModeV == TierPolicy::Mode::All ||
                RM.Functions[F].Code.size() <= Policy.SmallFnInsts;
    {
      std::lock_guard<std::mutex> G(PoolMu);
      if (Img) // keep everything already compiled
        for (size_t F = 0; F != Mask.size(); ++F)
          Mask[F] = Mask[F] || Img->compiled(static_cast<uint32_t>(F));
    }
    for (uint32_t F : Hot)
      if (F < Mask.size())
        Mask[F] = true;
    Expected<std::shared_ptr<const NativeImage>> NewImg =
        NativeImage::compile(RM, &Mask);
    if (!NewImg) {
      DSU_LOG_WARN("vtal native compile failed for '%s': %s",
                   Mod.Name.c_str(), NewImg.error().str().c_str());
      return;
    }
    if ((*NewImg)->compiledCount() == 0)
      return;
    if (Prof)
      for (size_t F = 0; F != RM.Functions.size(); ++F)
        if ((*NewImg)->compiled(static_cast<uint32_t>(F)))
          Prof->fn(F).Tier.store(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> G(PoolMu);
    Img = std::move(*NewImg);
  }

  /// Promotion poll: every Policy.PromoteCheckEvery entry calls, scan
  /// the profile for interpreted functions whose accumulated self-fuel
  /// crossed the hot threshold and recompile with them included.
  void maybePromote(const vtal::Interpreter &I) {
    using vtal::native::TierPolicy;
    if (Policy.ModeV != TierPolicy::Mode::On || !Prof)
      return;
    uint64_t N = EntryCalls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (N % Policy.PromoteCheckEvery != 0)
      return;
    std::vector<uint32_t> Hot;
    {
      std::lock_guard<std::mutex> G(PoolMu);
      for (size_t F = 0; F != Prof->size(); ++F)
        if (!(Img && Img->compiled(static_cast<uint32_t>(F))) &&
            Prof->fn(F).SelfFuel.load(std::memory_order_relaxed) >=
                Policy.HotSelfFuel)
          Hot.push_back(static_cast<uint32_t>(F));
    }
    if (Hot.empty())
      return;
    DSU_LOG_INFO("vtal native tier: promoting %zu hot function(s) in '%s'",
                 Hot.size(), Mod.Name.c_str());
    compileTier(I, Hot);
  }
#endif

  Expected<vtal::Value> call(uint32_t FnIdx,
                             const std::vector<vtal::Value> &Args) {
    std::unique_ptr<vtal::Interpreter> I;
    {
      std::lock_guard<std::mutex> G(PoolMu);
      if (!Pool.empty()) {
        I = std::move(Pool.back());
        Pool.pop_back();
      }
    }
    if (!I) {
      // Pool ran dry (first call on this concurrency level): link a
      // fresh instance.  The module already linked and type-checked at
      // load, so this is deterministic setup, not re-verification.
      I = std::make_unique<vtal::Interpreter>(Mod);
      I->setProfile(Prof.get());
      for (const auto &[Name, Fn] : Imports)
        if (Error E = I->bindImport(Name, Fn))
          return std::move(E);
    }
#ifndef DSU_VTAL_NO_NATIVE
    {
      // Converge this instance onto the latest published image (no-op in
      // steady state: one pointer compare).
      std::lock_guard<std::mutex> G(PoolMu);
      if (I->nativeImage() != Img.get())
        I->setNativeImage(Img);
    }
#endif
    Expected<vtal::Value> R = I->callIndex(FnIdx, Args);
#ifndef DSU_VTAL_NO_NATIVE
    maybePromote(*I);
#endif
    {
      std::lock_guard<std::mutex> G(PoolMu);
      Pool.push_back(std::move(I));
    }
    return R;
  }
};

} // namespace

Expected<Patch> dsu::loadNativePatch(TypeContext &Ctx,
                                     const std::string &SoPath) {
  Expected<std::shared_ptr<LoadedLibrary>> Lib = LoadedLibrary::open(SoPath);
  if (!Lib)
    return Lib.takeError();

  Expected<std::string> ManifestText = readPatchManifest(**Lib);
  if (!ManifestText)
    return ManifestText.takeError();
  Expected<PatchManifest> M = PatchManifest::parse(*ManifestText);
  if (!M)
    return M.takeError().withContext(SoPath);

  Patch P;
  P.SourcePath = SoPath;
  if (Error E = populateCommon(Ctx, *M, P))
    return E.withContext(SoPath);

  for (const ManifestProvide &Prov : M->Provides) {
    if (Prov.NativeSymbol.empty())
      return Error::make(ErrorCode::EC_Link,
                         "%s: provide '%s' has no native-symbol",
                         SoPath.c_str(), Prov.Name.c_str());
    Expected<const Type *> Ty = parseType(Ctx, Prov.TypeText);
    if (!Ty)
      return Ty.takeError().withContext("provide '" + Prov.Name + "'");
    Expected<void *> Addr = (*Lib)->symbol(Prov.NativeSymbol);
    if (!Addr)
      return Addr.takeError();
    Expected<Binding> B =
        makeUniformBinding(*Ty, *Addr, 0, "native:" + P.Id);
    if (!B)
      return B.takeError();
    B->KeepAlive = *Lib;
    P.Unit.Provides.push_back(ProvideRequest{Prov.Name, *Ty, std::move(*B)});
  }

  for (const ManifestTransformer &X : M->Transformers) {
    Expected<VersionBump> Bump = parseBump(X);
    if (!Bump)
      return Bump.takeError().withContext(SoPath);
    Expected<void *> Addr = (*Lib)->symbol(X.Impl);
    if (!Addr)
      return Addr.takeError().withContext("transformer " + X.From);
    auto Native = reinterpret_cast<DsuNativeTransformFn>(*Addr);
    std::shared_ptr<LoadedLibrary> Keep = *Lib;
    TransformFn Fn =
        [Native, Keep](const std::shared_ptr<void> &Old,
                       const StateCell &Cell)
        -> Expected<std::shared_ptr<void>> {
      DsuNativeTransformOut Out = Native(Old.get());
      if (Out.ErrorText)
        return Error::make(ErrorCode::EC_Transform,
                           "native transformer failed on cell '%s': %s",
                           Cell.name().c_str(), Out.ErrorText);
      if (!Out.NewData || !Out.Deleter)
        return Error::make(ErrorCode::EC_Transform,
                           "native transformer returned no data for cell "
                           "'%s'",
                           Cell.name().c_str());
      // Tie the new payload's lifetime to both its deleter and the
      // library that holds the deleter's code.
      return std::shared_ptr<void>(Out.NewData,
                                   [Del = Out.Deleter, Keep](void *Ptr) {
                                     Del(Ptr);
                                   });
    };
    P.Transformers.push_back(PatchTransformer{std::move(*Bump), std::move(Fn)});
  }

  if (Expected<uint64_t> Size = fileSize(SoPath))
    P.CodeBytes = static_cast<size_t>(*Size);

  DSU_LOG_INFO("loaded native patch '%s' from %s (%zu provides)",
               P.Id.c_str(), SoPath.c_str(), P.Unit.Provides.size());
  return P;
}

Expected<Patch> dsu::loadVtalPatch(TypeContext &Ctx, const SymbolTable &Syms,
                                   const std::string &ManifestText,
                                   const std::string &SourcePath) {
  Expected<PatchManifest> M = PatchManifest::parse(ManifestText);
  if (!M)
    return M.takeError().withContext(SourcePath);
  if (M->VtalText.empty())
    return Error::make(ErrorCode::EC_Parse,
                       "%s: patch has no embedded vtal-module",
                       SourcePath.c_str());

  Patch P;
  P.SourcePath = SourcePath;
  if (Error E = populateCommon(Ctx, *M, P))
    return E.withContext(SourcePath);

  Expected<vtal::Module> Mod = vtal::assemble(M->VtalText);
  if (!Mod)
    return Mod.takeError().withContext(SourcePath);

  auto Inst = std::make_shared<VtalInstance>();
  Inst->Mod = std::move(*Mod);
  Inst->Interp = std::make_unique<vtal::Interpreter>(Inst->Mod);
  P.VtalMod = std::shared_ptr<vtal::Module>(Inst, &Inst->Mod);

  // Wire the module's imports to the program's typed exports.  The
  // linker re-checks these types during prepare(); here resolution only
  // needs the callable.
  for (const vtal::Import &Imp : Inst->Mod.Imports) {
    const SymbolDef *Def = Syms.lookup(Imp.Name);
    if (!Def || !Def->Host)
      return Error::make(ErrorCode::EC_Link,
                         "%s: import '%s' has no host implementation",
                         SourcePath.c_str(), Imp.Name.c_str());
    const Type *WantTy = Imp.Sig.toType(Ctx);
    if (!typesEqual(Def->Ty, WantTy))
      return Error::make(ErrorCode::EC_TypeMismatch,
                         "%s: import '%s' wants '%s' but export has '%s'",
                         SourcePath.c_str(), Imp.Name.c_str(),
                         WantTy->str().c_str(), Def->Ty->str().c_str());
    if (Error E = Inst->Interp->bindImport(Imp.Name, Def->Host))
      return E;
    Inst->Imports.emplace_back(Imp.Name, Def->Host);
    // Record for the linker's typed re-check at prepare time.
    P.Unit.Imports.push_back(ImportRequest{Imp.Name, WantTy});
  }

  // (provide index in P.Unit.Provides, resolved function index): lets the
  // native tier stamp Binding::NativeEntry after compile-at-link below.
  std::vector<std::pair<size_t, uint32_t>> ProvideFns;
  for (const ManifestProvide &Prov : M->Provides) {
    if (Prov.VtalFn.empty())
      return Error::make(ErrorCode::EC_Link,
                         "%s: provide '%s' names no vtal-fn",
                         SourcePath.c_str(), Prov.Name.c_str());
    Expected<uint32_t> FnIdx = Inst->Interp->functionIndex(Prov.VtalFn);
    if (!FnIdx)
      return Error::make(ErrorCode::EC_Link,
                         "%s: vtal-fn '%s' not found in module",
                         SourcePath.c_str(), Prov.VtalFn.c_str());
    const vtal::Function *Fn = &Inst->Mod.Functions[*FnIdx];
    Expected<const Type *> DeclTy = parseType(Ctx, Prov.TypeText);
    if (!DeclTy)
      return DeclTy.takeError().withContext("provide '" + Prov.Name + "'");
    const Type *CodeTy = Fn->Sig.toType(Ctx);
    if (!typesEqual(*DeclTy, CodeTy))
      return Error::make(ErrorCode::EC_TypeMismatch,
                         "%s: provide '%s' declares '%s' but the code has "
                         "'%s'",
                         SourcePath.c_str(), Prov.Name.c_str(),
                         (*DeclTy)->str().c_str(), CodeTy->str().c_str());

    // The entry point is resolved once here; per-request dispatch goes
    // straight to the function index.
    vtal::HostFn Impl =
        [Inst, Idx = *FnIdx](const std::vector<vtal::Value> &Args) {
          return Inst->call(Idx, Args);
        };
    // Note: the binding's KeepAlive is the closure box created by the
    // bridge; the interpreter instance stays alive because the closure
    // captures Inst.  Do not overwrite KeepAlive here.
    Expected<Binding> B =
        makeValueBinding(Ctx, CodeTy, std::move(Impl), 0, "vtal:" + P.Id);
    if (!B)
      return B.takeError();
    P.Unit.Provides.push_back(
        ProvideRequest{Prov.Name, CodeTy, std::move(*B)});
    ProvideFns.emplace_back(P.Unit.Provides.size() - 1, *FnIdx);
  }

  for (const ManifestTransformer &X : M->Transformers) {
    Expected<VersionBump> Bump = parseBump(X);
    if (!Bump)
      return Bump.takeError().withContext(SourcePath);
    Expected<uint32_t> XfIdx = Inst->Interp->functionIndex(X.Impl);
    if (!XfIdx)
      return Error::make(ErrorCode::EC_Link,
                         "%s: transformer impl '%s' not found in module",
                         SourcePath.c_str(), X.Impl.c_str());
    const vtal::Function *Fn = &Inst->Mod.Functions[*XfIdx];
    // VTAL transformers cover scalar-represented cells: the transformer
    // function must be (int) -> int or (string) -> string; the engine
    // passes the cell payload through it.
    if (Fn->Sig.Params.size() != 1 ||
        Fn->Sig.Params[0] != Fn->Sig.Result ||
        (Fn->Sig.Result != vtal::ValKind::VK_Int &&
         Fn->Sig.Result != vtal::ValKind::VK_Str))
      return Error::make(ErrorCode::EC_Unsupported,
                         "%s: VTAL transformer '%s' must have shape "
                         "(int) -> int or (string) -> string",
                         SourcePath.c_str(), X.Impl.c_str());

    bool IsInt = Fn->Sig.Result == vtal::ValKind::VK_Int;
    TransformFn Xf =
        [Inst, XfIdx = *XfIdx, IsInt](const std::shared_ptr<void> &Old,
                                      const StateCell &Cell)
        -> Expected<std::shared_ptr<void>> {
      std::vector<vtal::Value> Args;
      if (IsInt)
        Args.push_back(
            vtal::Value::makeInt(*static_cast<int64_t *>(Old.get())));
      else
        Args.push_back(
            vtal::Value::makeStr(*static_cast<std::string *>(Old.get())));
      Expected<vtal::Value> Res = Inst->call(XfIdx, Args);
      if (!Res)
        return Res.takeError().withContext("VTAL transformer on cell '" +
                                           Cell.name() + "'");
      if (IsInt)
        return std::shared_ptr<void>(
            std::make_shared<int64_t>(Res->asInt()));
      return std::shared_ptr<void>(
          std::make_shared<std::string>(Res->asStr()));
    };
    P.Transformers.push_back(
        PatchTransformer{std::move(*Bump), std::move(Xf)});
  }

  // Loading is done: attach the hot-function profile (per module
  // version — the registry keys rankings by patch id) and retire the
  // load-time interpreter into the call pool so the first invocation
  // reuses it instead of linking anew.
  {
    std::vector<std::string> FnNames;
    FnNames.reserve(Inst->Mod.Functions.size());
    for (const vtal::Function &Fn : Inst->Mod.Functions)
      FnNames.push_back(Fn.Name);
    Inst->Prof = trace::ProfileRegistry::instance().create(
        P.Id, Inst->Mod.Name, std::move(FnNames));
    Inst->Interp->setProfile(Inst->Prof.get());
  }
#ifndef DSU_VTAL_NO_NATIVE
  // Native tier, compile-at-link half: baseline-compile the small
  // functions now (policy DSU_VTAL_NATIVE: on = small + hot promotion,
  // all = every representable function, off = interpret everything).
  // The image attaches behind the same pooled-interpreter indirection
  // the bindings already go through, so rolling updates, canaries and
  // graced roll chains see no new mechanism.
  Inst->Policy = vtal::native::TierPolicy::fromEnv();
  Inst->compileTier(*Inst->Interp, {});
  if (Inst->Img) {
    Inst->Interp->setNativeImage(Inst->Img);
    // Link-layer visibility: each provide whose entry function compiled
    // carries its machine-code address on the binding it ships.
    for (const auto &[ProvIdx, FnIdx] : ProvideFns)
      if (Inst->Img->compiled(FnIdx))
        P.Unit.Provides[ProvIdx].Code.NativeEntry =
            reinterpret_cast<const void *>(Inst->Img->entry(FnIdx));
    DSU_LOG_INFO("vtal native tier: compiled %u/%zu function(s) of '%s' "
                 "(%zu code bytes)",
                 Inst->Img->compiledCount(), Inst->Mod.Functions.size(),
                 Inst->Mod.Name.c_str(), Inst->Img->codeBytes());
  }
#else
  (void)ProvideFns;
#endif
  Inst->Pool.push_back(std::move(Inst->Interp));

  P.CodeBytes = ManifestText.size() + vtal::encodeModule(Inst->Mod).size();
  DSU_LOG_INFO("loaded VTAL patch '%s' (%zu provides, %zu instructions)",
               P.Id.c_str(), P.Unit.Provides.size(),
               Inst->Mod.totalInstructions());
  return P;
}

Expected<Patch> dsu::loadPatchFile(TypeContext &Ctx, const SymbolTable &Syms,
                                   const std::string &Path) {
  if (endsWith(Path, ".so"))
    return loadNativePatch(Ctx, Path);
  Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.takeError();
  return loadVtalPatch(Ctx, Syms, *Text, Path);
}
