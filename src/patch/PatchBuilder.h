//===- patch/PatchBuilder.h - In-process patch construction ---*- C++ -*-===//
///
/// \file
/// Fluent construction of Patch values from within the running program —
/// the backend used by tests, by the quickstart example, and by programs
/// that compile their own update code in.  Loader-produced and
/// builder-produced patches flow through the identical update pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_PATCHBUILDER_H
#define DSU_PATCH_PATCHBUILDER_H

#include "patch/Patch.h"
#include "runtime/Updateable.h"

namespace dsu {

/// Accumulates patch content; build() validates coherence.
class PatchBuilder {
public:
  PatchBuilder(TypeContext &Ctx, std::string Id) : Ctx(Ctx) {
    P.Id = std::move(Id);
  }

  PatchBuilder &describe(std::string Text) {
    P.Description = std::move(Text);
    return *this;
  }

  /// Provides a new implementation from a C++ function pointer; the dsu
  /// type is derived from the C++ signature.
  template <typename R, typename... Args>
  PatchBuilder &provide(const std::string &Name, R (*Fn)(Args...)) {
    return provideBinding(Name, fnTypeOf<R, Args...>(Ctx),
                          makeRawBinding(Fn, 0, "patch:" + P.Id));
  }

  /// Provides an implementation with an explicit type (used when the
  /// signature mentions named types, which C++ signatures cannot carry).
  template <typename R, typename... Args>
  PatchBuilder &provideAs(const std::string &Name, const Type *FnTy,
                          R (*Fn)(Args...)) {
    return provideBinding(Name, FnTy, makeRawBinding(Fn, 0, "patch:" + P.Id));
  }

  PatchBuilder &provideBinding(const std::string &Name, const Type *FnTy,
                               Binding Code) {
    P.Unit.Provides.push_back(ProvideRequest{Name, FnTy, std::move(Code)});
    return *this;
  }

  /// Declares a typed import from the running program.
  PatchBuilder &require(const std::string &Name, const Type *Ty) {
    P.Unit.Imports.push_back(ImportRequest{Name, Ty});
    return *this;
  }

  /// Introduces a new version of a named type with representation
  /// \p Repr.
  PatchBuilder &defineType(VersionedName Name, const Type *Repr) {
    P.NewTypes.push_back(PatchTypeDef{std::move(Name), Repr});
    return *this;
  }

  /// Ships the state transformer for \p Bump.
  PatchBuilder &transformer(VersionBump Bump, TransformFn Fn) {
    P.Transformers.push_back(PatchTransformer{std::move(Bump), std::move(Fn)});
    return *this;
  }

  /// Validates and yields the patch:
  ///  - at least one provide, type definition or transformer;
  ///  - every transformer's target version has a definition (either from
  ///    this patch or already in the context);
  ///  - no duplicate provides.
  Expected<Patch> build();

private:
  TypeContext &Ctx;
  Patch P;
};

/// Builds a patch that declares version \p From.Version+1 of named type
/// \p From with representation \p Repr and an identity transformer (the
/// payload object carries over unchanged).  The no-op *state-migrating*
/// patch: it forces the full global-quiescence commit path without
/// changing behaviour — used by benchmarks, the pool test suites, and
/// operator update drills.
Expected<Patch> makeIdentityBumpPatch(TypeContext &Ctx,
                                      const VersionedName &From,
                                      const Type *Repr);

} // namespace dsu

#endif // DSU_PATCH_PATCHBUILDER_H
