//===- patch/AbiBridge.h - Marshalling patch code to bindings -*- C++ -*-===//
///
/// \file
/// Bridges the two patch code backends onto the uniform Binding ABI the
/// updateable runtime calls through.
///
/// *Native backend*: patch shared objects export their provides with C
/// linkage in the "uniform invoker ABI" — the C++ ABI signature
/// `R sym(void *reserved, Args...)` where the scalar mapping is
/// int -> int64_t, float -> double, bool -> bool, string -> std::string,
/// unit -> void.  The leading reserved pointer makes the exported symbol
/// directly installable as Binding::Invoker with zero per-call adaptation
/// (and sidesteps C++ name mangling, the friction point of doing the
/// PLDI 2001 dlopen approach in C++).  Patch authors do not write these
/// stubs by hand: the patch generator emits them.
///
/// *VTAL backend*: provides are functions of the embedded VTAL module.
/// makeValueBinding() wraps a vtal::HostFn-shaped callable in a typed
/// trampoline selected at runtime from the function's dsu type.  The
/// trampoline table covers all scalar signatures up to arity 3 — the
/// shape budget of VTAL patch code.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_ABIBRIDGE_H
#define DSU_PATCH_ABIBRIDGE_H

#include "runtime/Binding.h"
#include "support/Error.h"
#include "types/Type.h"
#include "vtal/Interp.h"

#include <string>

namespace dsu {

/// Wraps a uniform-ABI native symbol as a binding.  \p Addr must point to
/// a function of shape `R(void *, Args...)` consistent with \p FnTy.
Expected<Binding> makeUniformBinding(const Type *FnTy, void *Addr,
                                     uint32_t Version, std::string Origin);

/// Wraps a Value-level callable (e.g. "call this VTAL function in this
/// interpreter") as a typed binding for signature \p FnTy.  Fails when
/// \p FnTy is outside the supported scalar-signature table.
Expected<Binding> makeValueBinding(TypeContext &Ctx, const Type *FnTy,
                                   vtal::HostFn Impl, uint32_t Version,
                                   std::string Origin);

/// True when \p FnTy is within the scalar-signature table (arity <= 3
/// over int/float/bool/string with any scalar-or-unit result).
bool isBridgeableFnType(const Type *FnTy);

} // namespace dsu

#endif // DSU_PATCH_ABIBRIDGE_H
