//===- patch/PatchBuilder.cpp ---------------------------------*- C++ -*-===//

#include "patch/PatchBuilder.h"

#include <set>

using namespace dsu;

Expected<Patch> PatchBuilder::build() {
  if (P.Unit.Provides.empty() && P.NewTypes.empty() &&
      P.Transformers.empty())
    return Error::make(ErrorCode::EC_Invalid, "patch '%s' is empty",
                       P.Id.c_str());

  std::set<std::string> Names;
  for (const ProvideRequest &Prov : P.Unit.Provides)
    if (!Names.insert(Prov.Name).second)
      return Error::make(ErrorCode::EC_Invalid,
                         "patch '%s' provides '%s' twice", P.Id.c_str(),
                         Prov.Name.c_str());

  for (const PatchTransformer &X : P.Transformers) {
    if (X.Bump.From.Name != X.Bump.To.Name)
      return Error::make(ErrorCode::EC_Invalid,
                         "patch '%s': transformer %s -> %s crosses type "
                         "names",
                         P.Id.c_str(), X.Bump.From.str().c_str(),
                         X.Bump.To.str().c_str());
    if (X.Bump.To.Version <= X.Bump.From.Version)
      return Error::make(ErrorCode::EC_Invalid,
                         "patch '%s': transformer %s -> %s does not "
                         "increase the version",
                         P.Id.c_str(), X.Bump.From.str().c_str(),
                         X.Bump.To.str().c_str());
    bool Defined = Ctx.lookupDefinition(X.Bump.To) != nullptr;
    for (const PatchTypeDef &T : P.NewTypes)
      Defined |= T.Name == X.Bump.To;
    if (!Defined)
      return Error::make(ErrorCode::EC_Invalid,
                         "patch '%s': transformer targets %s but no "
                         "definition for it exists or is introduced",
                         P.Id.c_str(), X.Bump.To.str().c_str());
    if (!X.Fn)
      return Error::make(ErrorCode::EC_Invalid,
                         "patch '%s': transformer %s -> %s has no code",
                         P.Id.c_str(), X.Bump.From.str().c_str(),
                         X.Bump.To.str().c_str());
  }

  P.Unit.Name = "patch:" + P.Id;
  return std::move(P);
}

Expected<Patch> dsu::makeIdentityBumpPatch(TypeContext &Ctx,
                                           const VersionedName &From,
                                           const Type *Repr) {
  VersionBump Bump{From, VersionedName{From.Name, From.Version + 1}};
  return PatchBuilder(Ctx, From.Name + "-bump-v" +
                               std::to_string(Bump.To.Version))
      .describe("identity migration of %" + From.Name +
                " (state-migrating no-op)")
      .defineType(Bump.To, Repr)
      .transformer(Bump,
                   [](const std::shared_ptr<void> &Old,
                      const StateCell &) -> Expected<std::shared_ptr<void>> {
                     return Old; // same payload, new type version
                   })
      .build();
}
