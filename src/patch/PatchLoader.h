//===- patch/PatchLoader.h - Loading patch artifacts ----------*- C++ -*-===//
///
/// \file
/// Turns on-disk patch artifacts into ready-to-apply Patch values.
///
/// Two artifact forms exist, mirroring the PLDI 2001 system's "verifiable
/// native code loaded by TAL/Load":
///  - *Native patches* (`.so`): dlopen'd shared objects exporting a
///    manifest and uniform-ABI code stubs (see patch/NativeAbi.h).  This
///    is the same-dlopen-path reproduction.
///  - *VTAL patches* (`.dsup`): a manifest file with an embedded VTAL
///    module.  Code is machine-verified before linking and runs in the
///    interpreter; imports call back into the program through the typed
///    export table.
///
/// Loading performs no program mutation; the returned Patch is inert
/// until the update engine applies it at an update point.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_PATCH_PATCHLOADER_H
#define DSU_PATCH_PATCHLOADER_H

#include "link/SymbolTable.h"
#include "patch/Manifest.h"
#include "patch/Patch.h"

#include <string>

namespace dsu {

/// Loads a native patch shared object at \p SoPath.
Expected<Patch> loadNativePatch(TypeContext &Ctx, const std::string &SoPath);

/// Materializes a patch from manifest text with an embedded VTAL module.
/// \p Syms supplies host implementations for the module's imports (their
/// types are re-checked by the linker before commit).
Expected<Patch> loadVtalPatch(TypeContext &Ctx, const SymbolTable &Syms,
                              const std::string &ManifestText,
                              const std::string &SourcePath = "<text>");

/// Loads either artifact kind by file extension (".so" native, anything
/// else treated as a VTAL/manifest patch file).
Expected<Patch> loadPatchFile(TypeContext &Ctx, const SymbolTable &Syms,
                              const std::string &Path);

} // namespace dsu

#endif // DSU_PATCH_PATCHLOADER_H
