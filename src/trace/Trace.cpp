//===- trace/Trace.cpp - Update-pipeline flight recorder ------------------===//

#include "trace/Trace.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <string_view>

using namespace dsu;
using namespace dsu::trace;

// --- Thread-local update id ---------------------------------------------

namespace {
thread_local uint64_t CurUpdateId = 0;
} // namespace

uint64_t dsu::trace::currentUpdateId() { return CurUpdateId; }

ScopedUpdateId::ScopedUpdateId(uint64_t Id) : Prev(CurUpdateId) {
  CurUpdateId = Id;
}

ScopedUpdateId::~ScopedUpdateId() { CurUpdateId = Prev; }

// --- Recorder -----------------------------------------------------------

static uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Recorder::Recorder() : EpochNs(steadyNowNs()) {}

Recorder &Recorder::instance() {
  static Recorder *R = new Recorder(); // leaked: threads may record at exit
  return *R;
}

uint64_t Recorder::nowUs() const { return (steadyNowNs() - EpochNs) / 1000; }

namespace dsu {
namespace trace {
/// Thread-exit hook: returns the thread's ring to the free pool so a
/// later thread reuses it instead of growing the registry.
struct RingHandle {
  Recorder::Ring *R = nullptr;
  ~RingHandle() {
    if (R)
      Recorder::instance().releaseRing(R);
  }
};
} // namespace trace
} // namespace dsu

namespace {
thread_local RingHandle MyRing;
} // namespace

Recorder::Ring *Recorder::acquireRing() {
  std::lock_guard<std::mutex> L(RegMu);
  for (std::unique_ptr<Ring> &R : Rings) {
    bool Expected = false;
    if (R->InUse.compare_exchange_strong(Expected, true))
      return R.get();
  }
  Rings.push_back(
      std::make_unique<Ring>(static_cast<uint32_t>(Rings.size() + 1)));
  return Rings.back().get();
}

void Recorder::releaseRing(Ring *R) {
  // The ring's events stay snapshottable; only the write cursor's
  // ownership is handed to the next thread that acquires it.
  R->InUse.store(false, std::memory_order_release);
}

void Recorder::record(EventKind K, const char *Cat, const char *Name,
                      uint64_t StartUs, uint64_t DurUs, uint64_t UpdateId,
                      uint64_t Arg) {
  if (!MyRing.R)
    MyRing.R = acquireRing(); // once per thread; hot path is alloc-free
  Ring &R = *MyRing.R;
  uint64_t Idx =
      R.Next.fetch_add(1, std::memory_order_relaxed) % SlotsPerThread;
  Slot &S = R.Slots[Idx];
  // Per-slot seqlock: invalidate, fill, publish.  The single writer is
  // this thread; concurrent snapshot() readers skip Seq==0 slots and
  // retry on a serial change.
  S.Seq.store(0, std::memory_order_release);
  S.Category.store(Cat, std::memory_order_relaxed);
  S.Name.store(Name, std::memory_order_relaxed);
  S.StartUs.store(StartUs, std::memory_order_relaxed);
  S.DurUs.store(DurUs, std::memory_order_relaxed);
  S.UpdateId.store(UpdateId, std::memory_order_relaxed);
  S.Arg.store(Arg, std::memory_order_relaxed);
  S.Kind.store(static_cast<uint8_t>(K), std::memory_order_relaxed);
  S.Seq.store(Serial.fetch_add(1, std::memory_order_relaxed) + 1,
              std::memory_order_release);
}

void Recorder::complete(const char *Cat, const char *Name, uint64_t StartUs,
                        uint64_t DurUs, uint64_t Arg) {
  record(EventKind::Complete, Cat, Name, StartUs, DurUs, CurUpdateId, Arg);
}

void Recorder::instant(const char *Cat, const char *Name, uint64_t Arg) {
  record(EventKind::Instant, Cat, Name, nowUs(), 0, CurUpdateId, Arg);
}

void Recorder::begin(const char *Cat, const char *Name, uint64_t UpdateId,
                     uint64_t Arg) {
  record(EventKind::Begin, Cat, Name, nowUs(), 0, UpdateId, Arg);
}

void Recorder::end(const char *Cat, const char *Name, uint64_t UpdateId,
                   uint64_t Arg) {
  record(EventKind::End, Cat, Name, nowUs(), 0, UpdateId, Arg);
}

std::vector<EventCopy> Recorder::snapshot() const {
  std::vector<EventCopy> Out;
  std::lock_guard<std::mutex> L(RegMu);
  for (const std::unique_ptr<Ring> &R : Rings) {
    for (const Slot &S : R->Slots) {
      for (int Try = 0; Try != 3; ++Try) {
        uint64_t Seq1 = S.Seq.load(std::memory_order_acquire);
        if (Seq1 == 0)
          break; // empty or mid-write; the writer will republish
        EventCopy E;
        E.Serial = Seq1;
        E.Category = S.Category.load(std::memory_order_relaxed);
        E.Name = S.Name.load(std::memory_order_relaxed);
        E.StartUs = S.StartUs.load(std::memory_order_relaxed);
        E.DurUs = S.DurUs.load(std::memory_order_relaxed);
        E.UpdateId = S.UpdateId.load(std::memory_order_relaxed);
        E.Arg = S.Arg.load(std::memory_order_relaxed);
        E.Tid = R->Tid;
        E.Kind = static_cast<EventKind>(S.Kind.load(std::memory_order_relaxed));
        if (S.Seq.load(std::memory_order_acquire) == Seq1) {
          Out.push_back(E);
          break;
        }
      }
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const EventCopy &A, const EventCopy &B) {
              return A.Serial < B.Serial;
            });
  return Out;
}

uint64_t Recorder::dropped() const {
  uint64_t D = 0;
  std::lock_guard<std::mutex> L(RegMu);
  for (const std::unique_ptr<Ring> &R : Rings) {
    uint64_t N = R->Next.load(std::memory_order_relaxed);
    if (N > SlotsPerThread)
      D += N - SlotsPerThread;
  }
  return D;
}

void Recorder::clear() {
  std::lock_guard<std::mutex> L(RegMu);
  for (const std::unique_ptr<Ring> &R : Rings)
    for (Slot &S : R->Slots)
      S.Seq.store(0, std::memory_order_release);
}

// --- String interning ---------------------------------------------------

const char *dsu::trace::intern(const std::string &S) {
  static std::mutex Mu;
  static std::deque<std::string> Pool; // deque: stable element addresses
  std::lock_guard<std::mutex> L(Mu);
  for (const std::string &P : Pool)
    if (P == S)
      return P.c_str();
  Pool.push_back(S);
  return Pool.back().c_str();
}

// --- Phase histograms ---------------------------------------------------

const char *dsu::trace::phaseName(Phase P) {
  switch (P) {
  case Phase::Analysis:
    return "analysis";
  case Phase::Verify:
    return "verify";
  case Phase::LinkPrepare:
    return "link_prepare";
  case Phase::StateBuild:
    return "state_build";
  case Phase::QueueWait:
    return "queue_wait";
  case Phase::Commit:
    return "commit";
  case Phase::BarrierPark:
    return "barrier_park";
  case Phase::RollingAdopt:
    return "rolling_adopt";
  case Phase::JournalIntent:
    return "journal_intent";
  case Phase::JournalSeal:
    return "journal_seal";
  case Phase::NumPhases:
    break;
  }
  return "?";
}

LatencyHistogram &dsu::trace::phaseHistogram(Phase P) {
  static LatencyHistogram H[static_cast<unsigned>(Phase::NumPhases)];
  return H[static_cast<unsigned>(P)];
}

void dsu::trace::notePhase(Phase P, uint64_t Us) {
  phaseHistogram(P).note(Us);
}

// --- JSON views ---------------------------------------------------------

namespace {

void jsonEscapeTo(std::string &Out, const char *S) {
  for (; S && *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
    } else {
      Out += C;
    }
  }
}

struct SpanNode {
  const EventCopy *E;
  uint64_t EndUs; ///< StartUs + DurUs (synthesized for Begin/End pairs)
  std::vector<size_t> Children;
};

void appendSpanJson(std::string &Out, const std::vector<SpanNode> &Nodes,
                    size_t I) {
  const SpanNode &N = Nodes[I];
  const char *KindName = N.E->Kind == EventKind::Instant
                             ? "instant"
                             : (N.E->Kind == EventKind::Begin ? "interval"
                                                              : "span");
  Out += "{\"category\":\"";
  jsonEscapeTo(Out, N.E->Category);
  Out += "\",\"name\":\"";
  jsonEscapeTo(Out, N.E->Name);
  Out += formatString("\",\"kind\":\"%s\",\"tid\":%u,\"start_us\":%llu,"
                      "\"dur_us\":%llu,\"arg\":%llu",
                      KindName, N.E->Tid,
                      static_cast<unsigned long long>(N.E->StartUs),
                      static_cast<unsigned long long>(N.EndUs - N.E->StartUs),
                      static_cast<unsigned long long>(N.E->Arg));
  if (!N.Children.empty()) {
    Out += ",\"children\":[";
    for (size_t C = 0; C != N.Children.size(); ++C) {
      if (C)
        Out += ',';
      appendSpanJson(Out, Nodes, N.Children[C]);
    }
    Out += ']';
  }
  Out += '}';
}

} // namespace

std::string dsu::trace::spanTreeJson(uint64_t UpdateId) {
  Recorder &R = Recorder::instance();
  std::vector<EventCopy> All = R.snapshot();

  // The update's own events, plus synthesized spans for Begin/End pairs
  // (paired by category+name in publication order; an unmatched Begin
  // becomes an open interval ending now).
  std::vector<EventCopy> Mine;
  std::vector<std::pair<EventCopy, uint64_t>> Intervals; // (begin, end-us)
  for (const EventCopy &E : All) {
    if (E.UpdateId != UpdateId)
      continue;
    if (E.Kind == EventKind::Begin) {
      Intervals.emplace_back(E, 0);
    } else if (E.Kind == EventKind::End) {
      for (auto It = Intervals.rbegin(); It != Intervals.rend(); ++It)
        if (It->second == 0 && std::string_view(It->first.Category) ==
                                   E.Category &&
            std::string_view(It->first.Name) == E.Name) {
          It->second = E.StartUs;
          break;
        }
    } else {
      Mine.push_back(E);
    }
  }
  uint64_t Now = R.nowUs();
  for (std::pair<EventCopy, uint64_t> &IV : Intervals) {
    EventCopy E = IV.first;
    uint64_t EndUs = IV.second ? IV.second : Now;
    E.DurUs = EndUs > E.StartUs ? EndUs - E.StartUs : 0;
    Mine.push_back(E);
  }

  // Nest by time containment per thread (cross-thread intervals nest at
  // the root).  Sort outermost-first: earlier start, then longer.
  std::vector<SpanNode> Nodes;
  Nodes.reserve(Mine.size());
  std::sort(Mine.begin(), Mine.end(),
            [](const EventCopy &A, const EventCopy &B) {
              if (A.StartUs != B.StartUs)
                return A.StartUs < B.StartUs;
              if (A.DurUs != B.DurUs)
                return A.DurUs > B.DurUs;
              return A.Serial < B.Serial;
            });
  for (const EventCopy &E : Mine)
    Nodes.push_back(SpanNode{&E, E.StartUs + E.DurUs, {}});

  // One ancestor stack per thread; a node nests under the deepest
  // same-thread Complete span that time-contains it, else it is a root.
  // Synthesized Begin/End intervals may straddle threads, so they can
  // be children but never parents.
  std::vector<size_t> Roots;
  std::map<uint32_t, std::vector<size_t>> Stacks;
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const EventCopy &E = *Nodes[I].E;
    uint64_t EndUs = Nodes[I].EndUs;
    std::vector<size_t> &St = Stacks[E.Tid];
    while (!St.empty()) {
      const SpanNode &Top = Nodes[St.back()];
      if (E.StartUs >= Top.E->StartUs && EndUs <= Top.EndUs)
        break; // contained: Top is the parent
      St.pop_back();
    }
    if (!St.empty())
      Nodes[St.back()].Children.push_back(I);
    else
      Roots.push_back(I);
    if (E.Kind == EventKind::Complete)
      St.push_back(I);
  }

  std::string Out = formatString(
      "{\"update\":%llu,\"events\":%zu,\"dropped\":%llu,\"spans\":[",
      static_cast<unsigned long long>(UpdateId), Mine.size(),
      static_cast<unsigned long long>(R.dropped()));
  for (size_t I = 0; I != Roots.size(); ++I) {
    if (I)
      Out += ',';
    appendSpanJson(Out, Nodes, Roots[I]);
  }
  Out += "]}";
  return Out;
}

std::string dsu::trace::chromeTraceJson(uint64_t FilterUpdateId) {
  std::vector<EventCopy> All = Recorder::instance().snapshot();
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const EventCopy &E : All) {
    if (FilterUpdateId && E.UpdateId != FilterUpdateId)
      continue;
    const char *Ph = "X";
    switch (E.Kind) {
    case EventKind::Complete:
      Ph = "X";
      break;
    case EventKind::Instant:
      Ph = "i";
      break;
    case EventKind::Begin:
      Ph = "b";
      break;
    case EventKind::End:
      Ph = "e";
      break;
    }
    if (!First)
      Out += ',';
    First = false;
    Out += formatString("{\"ph\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%llu",
                        Ph, E.Tid,
                        static_cast<unsigned long long>(E.StartUs));
    if (E.Kind == EventKind::Complete)
      Out += formatString(",\"dur\":%llu",
                          static_cast<unsigned long long>(E.DurUs));
    if (E.Kind == EventKind::Instant)
      Out += ",\"s\":\"t\"";
    if (E.Kind == EventKind::Begin || E.Kind == EventKind::End)
      Out += formatString(",\"id\":%llu",
                          static_cast<unsigned long long>(E.UpdateId));
    Out += ",\"cat\":\"";
    jsonEscapeTo(Out, E.Category);
    Out += "\",\"name\":\"";
    jsonEscapeTo(Out, E.Name);
    Out += formatString(
        "\",\"args\":{\"update\":%llu,\"arg\":%llu}}",
        static_cast<unsigned long long>(E.UpdateId),
        static_cast<unsigned long long>(E.Arg));
  }
  Out += "]}";
  return Out;
}
