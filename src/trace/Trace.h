//===- trace/Trace.h - Update-pipeline flight recorder ---------*- C++ -*-===//
///
/// \file
/// A lock-free, per-thread ring-buffer flight recorder for the update
/// pipeline.  Every stage of an update's life — controller job pickup,
/// artifact load, analysis, per-function verification, link prepare,
/// queue wait, the commit itself (barrier parks or rolling adoptions,
/// per worker), rollout gate polls and verdict, journal Intent/Seal
/// fsyncs — records a span here, so `GET /admin/trace?id=N` can render
/// the complete tree from operator POST to sealed outcome, and
/// `GET /admin/trace?export=chrome` can emit a Perfetto-loadable
/// Chrome trace-event JSON.
///
/// Design constraints, in order:
///
///  - **Zero allocation on the hot path.**  Each thread owns a
///    fixed-size ring of event slots; recording is an index bump plus
///    plain stores.  Rings are recycled through a free list when
///    threads exit, so memory is bounded by the peak thread count.
///  - **Drop-oldest.**  The ring wraps; a reader that arrives late sees
///    the most recent `SlotsPerThread` events per thread and an exact
///    count of what it missed.
///  - **Torn-proof snapshots without locks.**  Every slot is a tiny
///    seqlock: the writer invalidates (Seq=0), fills the fields, then
///    publishes a globally ordered serial with release semantics.  A
///    reader that observes the same non-zero serial before and after
///    copying has a consistent event.  All slot fields are relaxed
///    atomics so the protocol is also data-race-free under TSan.
///
/// Spans nest by scope on one thread (TRACE_SPAN / trace::Span) and are
/// keyed across threads by the *update id*: a thread-local current
/// update id (ScopedUpdateId) tags every event recorded in its scope,
/// and explicit begin()/end() events stitch intervals whose two ends
/// live on different threads (operator POST -> controller pickup).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TRACE_TRACE_H
#define DSU_TRACE_TRACE_H

#include "support/Histogram.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {
namespace trace {

/// What one recorded event is.
enum class EventKind : uint8_t {
  Complete, ///< a span with a start and a duration, one thread
  Instant,  ///< a point in time (barrier armed, verdict reached)
  Begin,    ///< opening half of a cross-thread interval, keyed by update
  End,      ///< closing half of a cross-thread interval, keyed by update
};

/// A validated copy of one event, as returned by Recorder::snapshot().
struct EventCopy {
  uint64_t Serial;      ///< global publication order (1-based)
  const char *Category; ///< static or interned string
  const char *Name;     ///< static or interned string
  uint64_t StartUs;     ///< microseconds since the recorder epoch
  uint64_t DurUs;       ///< 0 for Instant/Begin/End
  uint64_t UpdateId;    ///< owning update transaction, 0 = none
  uint64_t Arg;         ///< event-specific detail (worker index, count…)
  uint32_t Tid;         ///< recorder thread id (stable small integer)
  EventKind Kind;
};

/// The process-wide flight recorder.
class Recorder {
public:
  /// Events per thread ring; one slot is 64 bytes, so each thread that
  /// ever records costs 64 KiB (recycled across thread lifetimes).
  static constexpr size_t SlotsPerThread = 1024;

  static Recorder &instance();

  /// Microseconds since the recorder's epoch (process-wide steady
  /// timebase; all event timestamps share it).
  uint64_t nowUs() const;

  /// Records a completed span [StartUs, StartUs+DurUs) on this thread,
  /// tagged with the thread's current update id.
  void complete(const char *Cat, const char *Name, uint64_t StartUs,
                uint64_t DurUs, uint64_t Arg = 0);

  /// Records a point event on this thread.
  void instant(const char *Cat, const char *Name, uint64_t Arg = 0);

  /// Opens/closes a cross-thread interval keyed by (Cat, Name,
  /// UpdateId).  The two halves may land on different threads; the
  /// span-tree builder pairs them in publication order.
  void begin(const char *Cat, const char *Name, uint64_t UpdateId,
             uint64_t Arg = 0);
  void end(const char *Cat, const char *Name, uint64_t UpdateId,
           uint64_t Arg = 0);

  /// Copies out every currently valid event, sorted by Serial.  Safe to
  /// call from any thread while writers are recording; torn slots are
  /// skipped.
  std::vector<EventCopy> snapshot() const;

  /// Total events overwritten before ever being snapshotted (drop-oldest
  /// evidence across all rings).
  uint64_t dropped() const;

  /// Invalidates every slot (test isolation helper; concurrent writers
  /// simply re-publish into the cleared ring).
  void clear();

private:
  struct Slot {
    std::atomic<uint64_t> Seq{0}; ///< 0 = invalid/being written
    std::atomic<const char *> Category{nullptr};
    std::atomic<const char *> Name{nullptr};
    std::atomic<uint64_t> StartUs{0};
    std::atomic<uint64_t> DurUs{0};
    std::atomic<uint64_t> UpdateId{0};
    std::atomic<uint64_t> Arg{0};
    std::atomic<uint8_t> Kind{0};
  };
  struct Ring {
    explicit Ring(uint32_t Tid) : Tid(Tid), Slots(SlotsPerThread) {}
    const uint32_t Tid;
    std::atomic<uint64_t> Next{0}; ///< monotone write cursor (mod size)
    std::atomic<bool> InUse{true};
    std::vector<Slot> Slots;
  };

  Recorder();
  Ring *acquireRing();
  void releaseRing(Ring *R);
  void record(EventKind K, const char *Cat, const char *Name,
              uint64_t StartUs, uint64_t DurUs, uint64_t UpdateId,
              uint64_t Arg);

  friend struct RingHandle;

  uint64_t EpochNs; ///< steady_clock anchor for nowUs()
  std::atomic<uint64_t> Serial{0};
  mutable std::mutex RegMu;
  std::vector<std::unique_ptr<Ring>> Rings; ///< never shrinks; recycled
};

/// The update transaction id events on this thread are tagged with
/// (0 = none).
uint64_t currentUpdateId();

/// Tags every event recorded on this thread with \p Id for the guard's
/// lifetime; restores the previous id on destruction (guards nest).
class ScopedUpdateId {
public:
  explicit ScopedUpdateId(uint64_t Id);
  ~ScopedUpdateId();
  ScopedUpdateId(const ScopedUpdateId &) = delete;
  ScopedUpdateId &operator=(const ScopedUpdateId &) = delete;

private:
  uint64_t Prev;
};

/// RAII span: records a Complete event covering its scope.
class Span {
public:
  Span(const char *Cat, const char *Name, uint64_t Arg = 0)
      : Cat(Cat), Name(Name), Arg(Arg),
        StartUs(Recorder::instance().nowUs()) {}
  ~Span() { finish(); }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  void setArg(uint64_t A) { Arg = A; }

  /// Ends the span now (the destructor then records nothing).
  void finish() {
    if (Finished)
      return;
    Finished = true;
    Recorder &R = Recorder::instance();
    R.complete(Cat, Name, StartUs, R.nowUs() - StartUs, Arg);
  }

private:
  const char *Cat;
  const char *Name;
  uint64_t Arg;
  uint64_t StartUs;
  bool Finished = false;
};

/// Interns \p S into a process-lifetime string pool and returns a stable
/// pointer, so dynamically named spans (per-function verification) can
/// outlive the module that named them.  Not for hot paths.
const char *intern(const std::string &S);

// --- Per-phase latency histograms (dsu_update_phase_us) -----------------

/// The update pipeline phases the metrics exposition breaks latency
/// down by.  Each phase owns a LatencyHistogram fed from the same
/// instrumentation points as the spans.
enum class Phase : unsigned {
  Analysis,      ///< whole-patch analyzer
  Verify,        ///< VTAL verification
  LinkPrepare,   ///< link preparation within staging
  StateBuild,    ///< state-transform build within staging
  QueueWait,     ///< phase Ready -> commit landing
  Commit,        ///< the atomic swing at the update point
  BarrierPark,   ///< one worker's park at the commit barrier
  RollingAdopt,  ///< one worker's adoption delay after a rolling commit
  JournalIntent, ///< durable Intent append (write + fsync)
  JournalSeal,   ///< durable Seal append (write + fsync)
  NumPhases,
};

/// The Prometheus `phase` label value ("analysis", "queue_wait", …).
const char *phaseName(Phase P);

/// The process-wide histogram for \p P.
LatencyHistogram &phaseHistogram(Phase P);

/// Convenience: phaseHistogram(P).note(Us).
void notePhase(Phase P, uint64_t Us);

// --- JSON views ---------------------------------------------------------

/// The span tree of update \p UpdateId: Complete events nested by time
/// containment per thread, Begin/End pairs synthesized into spans,
/// Instant events as leaves.  `{"update":N,"events":M,"spans":[...]}`.
std::string spanTreeJson(uint64_t UpdateId);

/// All recorded events in Chrome trace-event JSON (Perfetto-loadable):
/// `{"traceEvents":[{"ph":"X","ts":…,"dur":…,…},…]}`.  When
/// \p FilterUpdateId is nonzero only that update's events are emitted.
std::string chromeTraceJson(uint64_t FilterUpdateId = 0);

} // namespace trace
} // namespace dsu

#define DSU_TRACE_CONCAT_IMPL(A, B) A##B
#define DSU_TRACE_CONCAT(A, B) DSU_TRACE_CONCAT_IMPL(A, B)

/// Records a Complete span covering the enclosing scope, tagged with
/// this thread's current update id.  Cat/Name must be static strings
/// (or trace::intern()ed).
#define TRACE_SPAN(Cat, Name)                                              \
  ::dsu::trace::Span DSU_TRACE_CONCAT(DsuTraceSpan_, __LINE__)(Cat, Name)

#endif // DSU_TRACE_TRACE_H
