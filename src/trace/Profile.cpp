//===- trace/Profile.cpp - VTAL hot-function profiler ---------------------===//

#include "trace/Profile.h"

#include "support/StringUtil.h"

#include <algorithm>

using namespace dsu;
using namespace dsu::trace;

ProfileRegistry &ProfileRegistry::instance() {
  static ProfileRegistry *R = new ProfileRegistry(); // leaked: see Recorder
  return *R;
}

std::shared_ptr<ModuleProfile>
ProfileRegistry::create(std::string PatchId, std::string ModuleName,
                        std::vector<std::string> FnNames) {
  auto P = std::make_shared<ModuleProfile>(
      std::move(PatchId), std::move(ModuleName), std::move(FnNames));
  std::lock_guard<std::mutex> L(Mu);
  Profiles.push_back(P);
  return P;
}

ProfileRegistry::Totals ProfileRegistry::totals() const {
  Totals T;
  std::lock_guard<std::mutex> L(Mu);
  for (const std::shared_ptr<ModuleProfile> &P : Profiles)
    for (size_t I = 0; I != P->size(); ++I) {
      const FnProfile &F = P->fn(I);
      T.Calls += F.Calls.load(std::memory_order_relaxed);
      T.Fuel += F.SelfFuel.load(std::memory_order_relaxed);
      T.Traps += F.Traps.load(std::memory_order_relaxed);
    }
  return T;
}

std::vector<HotFn> ProfileRegistry::ranking(size_t K) const {
  std::vector<HotFn> Rows;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const std::shared_ptr<ModuleProfile> &P : Profiles)
      for (size_t I = 0; I != P->size(); ++I) {
        const FnProfile &F = P->fn(I);
        HotFn R;
        R.Calls = F.Calls.load(std::memory_order_relaxed);
        if (R.Calls == 0)
          continue; // never executed: not a ranking candidate
        R.PatchId = P->patchId();
        R.Module = P->moduleName();
        R.Fn = P->fnName(I);
        R.SelfFuel = F.SelfFuel.load(std::memory_order_relaxed);
        R.Traps = F.Traps.load(std::memory_order_relaxed);
        R.SampledUs = F.SampledUs.load(std::memory_order_relaxed);
        R.Samples = F.Samples.load(std::memory_order_relaxed);
        R.Tier = F.Tier.load(std::memory_order_relaxed);
        Rows.push_back(std::move(R));
      }
  }
  std::sort(Rows.begin(), Rows.end(), [](const HotFn &A, const HotFn &B) {
    if (A.SelfFuel != B.SelfFuel)
      return A.SelfFuel > B.SelfFuel;
    if (A.Calls != B.Calls)
      return A.Calls > B.Calls;
    return A.Fn < B.Fn;
  });
  if (K && Rows.size() > K)
    Rows.resize(K);
  return Rows;
}

void ProfileRegistry::resetAll() {
  std::lock_guard<std::mutex> L(Mu);
  for (const std::shared_ptr<ModuleProfile> &P : Profiles)
    P->reset();
}

void ProfileRegistry::clearForTest() {
  std::lock_guard<std::mutex> L(Mu);
  Profiles.clear();
}

namespace {

void jsonEscapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
    } else {
      Out += C;
    }
  }
}

} // namespace

std::string dsu::trace::profileJson(size_t K) {
  std::vector<HotFn> Rows = ProfileRegistry::instance().ranking(K);
  ProfileRegistry::Totals T = ProfileRegistry::instance().totals();
  std::string Out = formatString(
      "{\"total_calls\":%llu,\"total_fuel\":%llu,\"total_traps\":%llu,"
      "\"functions\":[",
      static_cast<unsigned long long>(T.Calls),
      static_cast<unsigned long long>(T.Fuel),
      static_cast<unsigned long long>(T.Traps));
  for (size_t I = 0; I != Rows.size(); ++I) {
    const HotFn &R = Rows[I];
    if (I)
      Out += ',';
    Out += "{\"patch\":\"";
    jsonEscapeTo(Out, R.PatchId);
    Out += "\",\"module\":\"";
    jsonEscapeTo(Out, R.Module);
    Out += "\",\"fn\":\"";
    jsonEscapeTo(Out, R.Fn);
    uint64_t AvgFuel = R.Calls ? R.SelfFuel / R.Calls : 0;
    uint64_t AvgSampleUs = R.Samples ? R.SampledUs / R.Samples : 0;
    Out += formatString(
        "\",\"tier\":\"%s\",\"calls\":%llu,\"self_fuel\":%llu,"
        "\"avg_fuel\":%llu,\"traps\":%llu,\"sampled_us\":%llu,"
        "\"samples\":%llu,\"avg_sample_us\":%llu}",
        R.Tier ? "native" : "interp",
        static_cast<unsigned long long>(R.Calls),
        static_cast<unsigned long long>(R.SelfFuel),
        static_cast<unsigned long long>(AvgFuel),
        static_cast<unsigned long long>(R.Traps),
        static_cast<unsigned long long>(R.SampledUs),
        static_cast<unsigned long long>(R.Samples),
        static_cast<unsigned long long>(AvgSampleUs));
  }
  Out += "]}";
  return Out;
}
