//===- trace/Profile.h - VTAL hot-function profiler ------------*- C++ -*-===//
///
/// \file
/// Per-function execution counters for VTAL code: call count, cumulative
/// *self* fuel (the interpreter's deterministic cost unit, attributed to
/// the function actually burning it, not its callees), trap count, and
/// sampled activation wall time.  The interpreter bumps relaxed atomics
/// at call boundaries only — the per-instruction dispatch loop is
/// untouched — and the hooks compile out entirely when the CMake option
/// DSU_VTAL_PROFILER is OFF.
///
/// One ModuleProfile is created per loaded VTAL patch instance and
/// shared by every pooled interpreter executing that module; a global
/// ProfileRegistry aggregates them for the `/admin/profile` hot-function
/// ranking and the `dsu_vtal_{calls,fuel,traps}_total` metrics.  This is
/// the measurement the ROADMAP's "native tier for VTAL" item tiers up
/// from: the ranking answers *which function* is worth compiling.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_TRACE_PROFILE_H
#define DSU_TRACE_PROFILE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {
namespace trace {

/// Counters for one VTAL function.  All relaxed; a scrape may tear
/// across fields (same contract as every other DSU metric).
struct FnProfile {
  std::atomic<uint64_t> Calls{0};     ///< activations (entry + CallFn)
  std::atomic<uint64_t> SelfFuel{0};  ///< fuel burned in this function
  std::atomic<uint64_t> Traps{0};     ///< activations that trapped
  std::atomic<uint64_t> SampledUs{0}; ///< wall time of sampled activations
  std::atomic<uint64_t> Samples{0};   ///< how many activations were timed

  /// Execution tier: 0 = interpreted, 1 = native (vtal/native/).  Set by
  /// the patch loader when a compiled image covering this function is
  /// published; describes current state, so reset() leaves it alone.
  std::atomic<uint8_t> Tier{0};

  void reset() {
    Calls.store(0, std::memory_order_relaxed);
    SelfFuel.store(0, std::memory_order_relaxed);
    Traps.store(0, std::memory_order_relaxed);
    SampledUs.store(0, std::memory_order_relaxed);
    Samples.store(0, std::memory_order_relaxed);
  }
};

/// The profile of one loaded module version (one patch instance).
/// Function slots are indexed by the module's resolved function index —
/// the same index the interpreter dispatches on, so the hot-path lookup
/// is one array index.
class ModuleProfile {
public:
  /// Time every 64th activation of a function (cheap steady_clock
  /// sampling; the ranking needs a wall-time *estimate*, not a census).
  static constexpr uint64_t SampleEvery = 64;

  ModuleProfile(std::string PatchId, std::string ModuleName,
                std::vector<std::string> FnNames)
      : PatchIdStr(std::move(PatchId)), ModuleNameStr(std::move(ModuleName)),
        FnNames(std::move(FnNames)),
        Fns(std::make_unique<FnProfile[]>(this->FnNames.size())) {}

  const std::string &patchId() const { return PatchIdStr; }
  const std::string &moduleName() const { return ModuleNameStr; }
  size_t size() const { return FnNames.size(); }
  const std::string &fnName(size_t I) const { return FnNames[I]; }

  FnProfile &fn(size_t I) { return Fns[I]; }
  const FnProfile &fn(size_t I) const { return Fns[I]; }

  void reset() {
    for (size_t I = 0; I != FnNames.size(); ++I)
      Fns[I].reset();
  }

private:
  const std::string PatchIdStr;
  const std::string ModuleNameStr;
  const std::vector<std::string> FnNames;
  std::unique_ptr<FnProfile[]> Fns;
};

/// One row of the hot-function ranking.
struct HotFn {
  std::string PatchId;
  std::string Module;
  std::string Fn;
  uint64_t Calls = 0;
  uint64_t SelfFuel = 0;
  uint64_t Traps = 0;
  uint64_t SampledUs = 0;
  uint64_t Samples = 0;
  uint8_t Tier = 0; ///< 0 = interpreted, 1 = native
};

/// Process-wide registry of live module profiles.  Profiles are kept
/// for the process lifetime (bounded by patches ever loaded), so the
/// ranking covers retired versions too — "did the old version burn
/// more fuel than the new one" is exactly the canary question.
class ProfileRegistry {
public:
  static ProfileRegistry &instance();

  /// Creates and registers a profile for one loaded module version.
  std::shared_ptr<ModuleProfile> create(std::string PatchId,
                                        std::string ModuleName,
                                        std::vector<std::string> FnNames);

  /// Fleet totals for the dsu_vtal_*_total metrics.
  struct Totals {
    uint64_t Calls = 0;
    uint64_t Fuel = 0;
    uint64_t Traps = 0;
  };
  Totals totals() const;

  /// Top-\p K functions by self-fuel (then calls).  K==0 means all.
  std::vector<HotFn> ranking(size_t K) const;

  /// Zeros every counter in every registered profile (`?reset=1`).
  void resetAll();

  /// Drops every registered profile (test isolation only).
  void clearForTest();

private:
  mutable std::mutex Mu;
  std::vector<std::shared_ptr<ModuleProfile>> Profiles;
};

/// The `GET /admin/profile` document: `{"functions":[{...}],…}`,
/// ranked hottest-first, at most \p K rows (0 = all).
std::string profileJson(size_t K);

} // namespace trace
} // namespace dsu

#endif // DSU_TRACE_PROFILE_H
