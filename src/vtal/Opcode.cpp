//===- vtal/Opcode.cpp ----------------------------------------*- C++ -*-===//

#include "vtal/Opcode.h"

#include <cassert>

using namespace dsu;
using namespace dsu::vtal;

const char *dsu::vtal::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::PushI:
    return "push.i";
  case Opcode::PushF:
    return "push.f";
  case Opcode::PushB:
    return "push.b";
  case Opcode::PushS:
    return "push.s";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Neg:
    return "neg";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::Lt:
    return "lt";
  case Opcode::Le:
    return "le";
  case Opcode::Gt:
    return "gt";
  case Opcode::Ge:
    return "ge";
  case Opcode::FEq:
    return "feq";
  case Opcode::FNe:
    return "fne";
  case Opcode::FLt:
    return "flt";
  case Opcode::FLe:
    return "fle";
  case Opcode::FGt:
    return "fgt";
  case Opcode::FGe:
    return "fge";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Not:
    return "not";
  case Opcode::I2F:
    return "i2f";
  case Opcode::F2I:
    return "f2i";
  case Opcode::SCat:
    return "scat";
  case Opcode::SLen:
    return "slen";
  case Opcode::SEq:
    return "seq";
  case Opcode::SSub:
    return "ssub";
  case Opcode::SFind:
    return "sfind";
  case Opcode::Br:
    return "br";
  case Opcode::BrIf:
    return "brif";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::CallFn:
    return "call.fn";
  case Opcode::CallHost:
    return "call.host";
  }
  assert(false && "unknown opcode");
  return "?";
}

OperandKind dsu::vtal::opcodeOperand(Opcode Op) {
  switch (Op) {
  case Opcode::PushI:
    return OperandKind::OK_Int;
  case Opcode::PushF:
    return OperandKind::OK_Float;
  case Opcode::PushB:
    return OperandKind::OK_Bool;
  case Opcode::PushS:
    return OperandKind::OK_Str;
  case Opcode::Load:
  case Opcode::Store:
    return OperandKind::OK_Local;
  case Opcode::Br:
  case Opcode::BrIf:
    return OperandKind::OK_Label;
  case Opcode::Call:
    return OperandKind::OK_Func;
  case Opcode::CallFn:
  case Opcode::CallHost:
    return OperandKind::OK_FuncIdx;
  default:
    return OperandKind::OK_None;
  }
}
