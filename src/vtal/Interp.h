//===- vtal/Interp.h - VTAL interpreter -----------------------*- C++ -*-===//
///
/// \file
/// Executes verified VTAL modules.  The interpreter is the reproduction's
/// execution substrate for patch code shipped as VTAL (patch code shipped
/// as a native shared object runs directly; see link/NativeLoader.h).
///
/// An Interpreter instance binds one module plus host functions for its
/// imports.  Binding runs the load-time link pass (vtal/Resolve.h), so
/// steady-state execution dispatches calls by index, binds imports by
/// ordinal, and runs on an explicit frame stack over one reusable value
/// arena — no name lookups and no per-call heap allocation in the inner
/// loop.  Execution is fuel-limited so that a buggy patch cannot hang the
/// updating process at an update point.
///
/// The interpreter is also the deoptimization target of the native tier
/// (vtal/native/): an attached NativeImage makes callIndex() dispatch
/// compiled functions to machine code, and resumeAt()/callRaw() let a
/// native frame fall back into interpretation at any safe point with
/// bit-identical fuel, traps and results.  The interpreter remains the
/// semantic ground truth; native code is an accelerator, never an oracle.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_INTERP_H
#define DSU_VTAL_INTERP_H

#include "support/Error.h"
#include "vtal/Module.h"
#include "vtal/Resolve.h"
#include "vtal/Value.h"

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dsu {

namespace trace {
class ModuleProfile;
} // namespace trace

namespace vtal {

namespace native {
class NativeImage;
} // namespace native

/// A host-provided implementation of a module import.
using HostFn = std::function<Expected<Value>(const std::vector<Value> &)>;

/// Interprets one module.  The module must outlive the interpreter and
/// should have passed verifyModule() — the interpreter still traps
/// dynamically (division by zero, fuel exhaustion, call depth) and
/// refuses to run modules whose calls do not link, but relies on
/// verification for kind correctness of straight-line code.
class Interpreter {
public:
  /// \p Fuel bounds the total instruction count of one call() including
  /// callees; 0 means the default (64M instructions).  Construction runs
  /// the link pass; a module that fails to link is rejected (with the
  /// link error) on every subsequent call().
  explicit Interpreter(const Module &M, uint64_t Fuel = 0);

  /// Supplies the implementation of import \p Name.  Signature conformance
  /// of values is checked at each call.
  Error bindImport(const std::string &Name, HostFn Fn);

  /// Calls function \p FnName with \p Args.
  Expected<Value> call(const std::string &FnName,
                       const std::vector<Value> &Args);

  /// Index of \p FnName for callIndex(); fails when absent.  Lets
  /// long-lived call sites (patch provides, transformers) resolve the
  /// entry point once at load time.
  Expected<uint32_t> functionIndex(const std::string &FnName) const;

  /// Calls function \p FnIndex (from functionIndex()) with \p Args,
  /// skipping the by-name entry lookup.
  Expected<Value> callIndex(uint32_t FnIndex, const std::vector<Value> &Args);

  /// Instructions executed by the most recent call().
  uint64_t lastFuelUsed() const { return LastFuelUsed; }

  /// Attaches the hot-function profiler (trace/Profile.h).  When set,
  /// the dispatch loop attributes per-function call counts, self-fuel
  /// and traps to \p P at call boundaries (function entry, CallFn, Ret)
  /// — the per-instruction inner loop pays nothing beyond one pointer
  /// test per boundary.  \p P must be indexed like this module's
  /// function table and must outlive the interpreter.  No-op when the
  /// profiler is compiled out (DSU_VTAL_NO_PROFILER).
  void setProfile(trace::ModuleProfile *P) { Prof = P; }
  trace::ModuleProfile *profile() const { return Prof; }

  /// The resolved execution form (empty when the module failed to link).
  /// The native tier compiles from this exact form.
  const ResolvedModule &resolved() const { return RM; }

  // --- deoptimization entry points (used by vtal/native/, and by tests
  // --- that exercise the resume protocol directly) ------------------------

  /// Resumes interpretation of \p FnIndex at \p PC from a raw native
  /// frame: \p FrameSlots holds NumLocals locals followed by \p StackDepth
  /// operand-stack slots, each an 8-byte raw value (int64 bits, double
  /// bits, bool 0/1, unit 0) whose kinds are the function's local kinds
  /// and \p StackKinds respectively.  \p DepthBias is the number of
  /// native frames beneath this one, counted into the call-depth limit so
  /// a mixed native/interpreted stack traps at the same depth as a fully
  /// interpreted one.  Fuel is consumed from \p Fuel in place.
  Expected<Value> resumeAt(uint32_t FnIndex, uint32_t PC,
                           const uint64_t *FrameSlots,
                           const ValKind *StackKinds, uint32_t StackDepth,
                           uint64_t &Fuel, uint32_t DepthBias);

  /// Calls \p FnIndex with raw argument slots (same encoding as
  /// resumeAt), interpreted, sharing \p Fuel and biased by \p DepthBias —
  /// the native tier's bridge for calls into functions that are not
  /// compiled.  The function must not take string parameters.
  Expected<Value> callRaw(uint32_t FnIndex, const uint64_t *RawArgs,
                          uint64_t &Fuel, uint32_t DepthBias);

  /// Invokes host import \p Ordinal with raw argument slots and stores
  /// the raw result — the native tier's bridge for CallHost.  Performs
  /// the same bind/result-kind checks (and produces the same error
  /// messages) as the interpreter's own CallHost.  The import signature
  /// must be string-free.
  Error callHostRaw(uint32_t Ordinal, const uint64_t *RawArgs,
                    uint64_t &RawResult);

#ifndef DSU_VTAL_NO_NATIVE
  /// Attaches (or replaces, or clears) the compiled image callIndex()
  /// dispatches through.  The image must have been compiled from this
  /// module's resolved form; images are immutable and shared across the
  /// pooled interpreters of a module instance.
  void setNativeImage(std::shared_ptr<const native::NativeImage> I) {
    Img = std::move(I);
  }
  const native::NativeImage *nativeImage() const { return Img.get(); }
#endif

private:
  /// One activation record.  Locals live in the shared arena at
  /// [Base, Base + NumLocals); the frame's operand stack is the arena
  /// region above them, up to the next frame's Base (or the arena top for
  /// the innermost frame).
  struct Frame {
    uint32_t FnIndex;
    uint32_t PC;
    uint32_t Base;
  };

  Expected<Value> run(uint32_t FnIndex, const std::vector<Value> &Args,
                      uint64_t &Fuel);

  /// The dispatch loop.  Executes the innermost pushed frame (the caller
  /// must have pushed exactly one frame plus its arena contents) until
  /// that activation returns or traps.  \p DepthBias widens the
  /// call-depth check by the native frames beneath this activation;
  /// \p CountEntry controls whether the profiler counts this as a fresh
  /// activation (deopt resumes do not — the original entry was already
  /// counted).
  Expected<Value> exec(uint64_t &Fuel, uint32_t DepthBias, bool CountEntry);

  /// Zero-initializes locals [From, NumLocals) of \p RF on the arena top.
  void pushZeroLocals(const ResolvedFunction &RF, uint32_t From);

#ifndef DSU_VTAL_NO_NATIVE
  /// Runs \p FnIndex through its compiled entry in Img (which must exist).
  /// Defined in native/NativeGen.cpp.
  Expected<Value> runNative(uint32_t FnIndex, const std::vector<Value> &Args,
                            uint64_t &Fuel);
#endif

  const Module &M;
  uint64_t FuelLimit;
  uint64_t LastFuelUsed = 0;

  /// Execution form; valid only when LinkErr is a success value.
  ResolvedModule RM;
  Error LinkErr;

  /// Host bindings, dense by import ordinal.
  std::vector<HostFn> Imports;

  /// Reusable execution state: frames and the locals/operand-stack arena.
  /// Capacity persists across calls, so steady-state execution performs
  /// no heap allocation.  call() is re-entrant (a host function may call
  /// back into the same interpreter): each activation stacks its frames
  /// and values above the outer one's.
  std::vector<Frame> Frames;
  std::vector<Value> Arena;

  /// Per-nesting-level argument buffers for host calls (deque: growing
  /// it never moves a level that an active host call still references).
  std::deque<std::vector<Value>> HostArgsPool;
  unsigned HostDepth = 0;

  /// Optional execution profile; null = unprofiled (the default).
  trace::ModuleProfile *Prof = nullptr;

#ifndef DSU_VTAL_NO_NATIVE
  /// Optional compiled image; null = fully interpreted (the default).
  std::shared_ptr<const native::NativeImage> Img;
#endif
};

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_INTERP_H
