//===- vtal/Interp.h - VTAL interpreter -----------------------*- C++ -*-===//
///
/// \file
/// Executes verified VTAL modules.  The interpreter is the reproduction's
/// execution substrate for patch code shipped as VTAL (patch code shipped
/// as a native shared object runs directly; see link/NativeLoader.h).
///
/// An Interpreter instance binds one module plus host functions for its
/// imports.  Execution is fuel-limited so that a buggy patch cannot hang
/// the updating process at an update point.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_INTERP_H
#define DSU_VTAL_INTERP_H

#include "support/Error.h"
#include "vtal/Module.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dsu {
namespace vtal {

/// A runtime value of the VTAL machine.
class Value {
public:
  Value() : Kind(ValKind::VK_Unit) {}

  static Value makeInt(int64_t V) {
    Value X;
    X.Kind = ValKind::VK_Int;
    X.I = V;
    return X;
  }
  static Value makeFloat(double V) {
    Value X;
    X.Kind = ValKind::VK_Float;
    X.F = V;
    return X;
  }
  static Value makeBool(bool V) {
    Value X;
    X.Kind = ValKind::VK_Bool;
    X.B = V;
    return X;
  }
  static Value makeStr(std::string V) {
    Value X;
    X.Kind = ValKind::VK_Str;
    X.S = std::move(V);
    return X;
  }
  static Value makeUnit() { return Value(); }

  ValKind kind() const { return Kind; }
  int64_t asInt() const {
    assert(Kind == ValKind::VK_Int && "not an int");
    return I;
  }
  double asFloat() const {
    assert(Kind == ValKind::VK_Float && "not a float");
    return F;
  }
  bool asBool() const {
    assert(Kind == ValKind::VK_Bool && "not a bool");
    return B;
  }
  const std::string &asStr() const {
    assert(Kind == ValKind::VK_Str && "not a string");
    return S;
  }

  /// Debug rendering, e.g. "int(42)".
  std::string str() const;

private:
  ValKind Kind;
  int64_t I = 0;
  double F = 0.0;
  bool B = false;
  std::string S;
};

/// A host-provided implementation of a module import.
using HostFn = std::function<Expected<Value>(const std::vector<Value> &)>;

/// Interprets one module.  The module must outlive the interpreter and
/// should have passed verifyModule() — the interpreter still traps
/// dynamically (division by zero, fuel exhaustion, call depth) but relies
/// on verification for kind correctness of straight-line code.
class Interpreter {
public:
  /// \p Fuel bounds the total instruction count of one call() including
  /// callees; 0 means the default (64M instructions).
  explicit Interpreter(const Module &M, uint64_t Fuel = 0);

  /// Supplies the implementation of import \p Name.  Signature conformance
  /// of values is checked at each call.
  Error bindImport(const std::string &Name, HostFn Fn);

  /// Calls function \p FnName with \p Args.
  Expected<Value> call(const std::string &FnName,
                       const std::vector<Value> &Args);

  /// Instructions executed by the most recent call().
  uint64_t lastFuelUsed() const { return LastFuelUsed; }

private:
  Expected<Value> invoke(const Function &F, const std::vector<Value> &Args,
                         uint64_t &Fuel, unsigned Depth);

  const Module &M;
  uint64_t FuelLimit;
  uint64_t LastFuelUsed = 0;
  std::map<std::string, HostFn> Imports;
};

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_INTERP_H
