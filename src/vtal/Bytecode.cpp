//===- vtal/Bytecode.cpp --------------------------------------*- C++ -*-===//

#include "vtal/Bytecode.h"

#include <cstring>

using namespace dsu;
using namespace dsu::vtal;

namespace {

constexpr char Magic[4] = {'V', 'T', 'A', 'L'};
constexpr uint32_t FormatVersion = 1;

class Writer {
public:
  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S);
  }

  std::string Out;
};

class ReaderState {
public:
  explicit ReaderState(std::string_view In) : In(In) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > In.size())
      return false;
    V = static_cast<uint8_t>(In[Pos++]);
    return true;
  }
  bool u32(uint32_t &V) {
    if (Pos + 4 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(In[Pos + I]))
           << (8 * I);
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Pos + 8 > In.size())
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(In[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }
  bool f64(double &V) {
    uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, 8);
    return true;
  }
  bool str(std::string &S) {
    uint32_t Len;
    if (!u32(Len) || Pos + Len > In.size())
      return false;
    S.assign(In.substr(Pos, Len));
    Pos += Len;
    return true;
  }
  bool atEnd() const { return Pos == In.size(); }

private:
  std::string_view In;
  size_t Pos = 0;
};

bool validKind(uint8_t K) {
  return K <= static_cast<uint8_t>(ValKind::VK_Unit);
}

void encodeSig(Writer &W, const Signature &Sig) {
  W.u32(static_cast<uint32_t>(Sig.Params.size()));
  for (ValKind K : Sig.Params)
    W.u8(static_cast<uint8_t>(K));
  W.u8(static_cast<uint8_t>(Sig.Result));
}

bool decodeSig(ReaderState &R, Signature &Sig) {
  uint32_t N;
  if (!R.u32(N) || N > (1u << 16))
    return false;
  Sig.Params.clear();
  for (uint32_t I = 0; I != N; ++I) {
    uint8_t K;
    if (!R.u8(K) || !validKind(K))
      return false;
    Sig.Params.push_back(static_cast<ValKind>(K));
  }
  uint8_t Res;
  if (!R.u8(Res) || !validKind(Res))
    return false;
  Sig.Result = static_cast<ValKind>(Res);
  return true;
}

void encodeFunction(Writer &W, const Function &F, bool KeepNames) {
  W.str(F.Name);
  encodeSig(W, F.Sig);
  W.u32(static_cast<uint32_t>(F.Locals.size()));
  for (const LocalVar &L : F.Locals) {
    W.str(KeepNames ? L.Name : std::string());
    W.u8(static_cast<uint8_t>(L.Kind));
  }
  W.u32(static_cast<uint32_t>(F.Code.size()));
  for (const Instruction &I : F.Code) {
    W.u8(static_cast<uint8_t>(I.Op));
    switch (opcodeOperand(I.Op)) {
    case OperandKind::OK_None:
      break;
    case OperandKind::OK_Int:
    case OperandKind::OK_Bool:
      W.u64(static_cast<uint64_t>(I.IntOp));
      break;
    case OperandKind::OK_Float:
      W.f64(I.FloatOp);
      break;
    case OperandKind::OK_Str:
      W.str(I.StrOp);
      break;
    case OperandKind::OK_Local:
      W.u32(I.Index);
      W.str(KeepNames ? I.StrOp : std::string());
      break;
    case OperandKind::OK_Label:
      W.u32(I.Index);
      break;
    case OperandKind::OK_Func:
      W.str(I.StrOp);
      break;
    case OperandKind::OK_FuncIdx:
      // Resolved call forms never reach the encoder: modules are encoded
      // in their shipping form, and linkModule() does not mutate them.
      assert(false && "resolved opcode in module being encoded");
      W.u32(I.Index);
      break;
    }
  }
}

std::string encodeImpl(const Module &M, bool KeepNames) {
  Writer W;
  W.Out.append(Magic, 4);
  W.u32(FormatVersion);
  W.str(M.Name);
  W.u32(static_cast<uint32_t>(M.Imports.size()));
  for (const Import &I : M.Imports) {
    W.str(I.Name);
    encodeSig(W, I.Sig);
  }
  W.u32(static_cast<uint32_t>(M.Functions.size()));
  for (const Function &F : M.Functions)
    encodeFunction(W, F, KeepNames);
  return std::move(W.Out);
}

} // namespace

std::string dsu::vtal::encodeModule(const Module &M) {
  return encodeImpl(M, /*KeepNames=*/true);
}

size_t dsu::vtal::strippedSize(const Module &M) {
  return encodeImpl(M, /*KeepNames=*/false).size();
}

Expected<Module> dsu::vtal::decodeModule(std::string_view Bytes) {
  auto Fail = [](const char *Why) -> Expected<Module> {
    return Error::make(ErrorCode::EC_Parse, "vtal bytecode: %s", Why);
  };

  if (Bytes.size() < 8 || std::memcmp(Bytes.data(), Magic, 4) != 0)
    return Fail("bad magic");
  ReaderState R(Bytes.substr(4));

  uint32_t Version;
  if (!R.u32(Version) || Version != FormatVersion)
    return Fail("unsupported format version");

  Module M;
  if (!R.str(M.Name))
    return Fail("truncated module name");

  uint32_t NumImports;
  if (!R.u32(NumImports) || NumImports > (1u << 16))
    return Fail("bad import count");
  for (uint32_t I = 0; I != NumImports; ++I) {
    Import Imp;
    if (!R.str(Imp.Name) || !decodeSig(R, Imp.Sig))
      return Fail("truncated import");
    M.Imports.push_back(std::move(Imp));
  }

  uint32_t NumFns;
  if (!R.u32(NumFns) || NumFns > (1u << 16))
    return Fail("bad function count");
  for (uint32_t FI = 0; FI != NumFns; ++FI) {
    Function F;
    if (!R.str(F.Name) || !decodeSig(R, F.Sig))
      return Fail("truncated function header");

    uint32_t NumLocals;
    if (!R.u32(NumLocals) || NumLocals > (1u << 16))
      return Fail("bad local count");
    if (NumLocals < F.Sig.Params.size())
      return Fail("fewer locals than parameters");
    for (uint32_t I = 0; I != NumLocals; ++I) {
      LocalVar L;
      uint8_t K;
      if (!R.str(L.Name) || !R.u8(K) || !validKind(K))
        return Fail("truncated local");
      L.Kind = static_cast<ValKind>(K);
      F.Locals.push_back(std::move(L));
    }

    uint32_t NumInsts;
    if (!R.u32(NumInsts) || NumInsts > (1u << 24))
      return Fail("bad instruction count");
    for (uint32_t I = 0; I != NumInsts; ++I) {
      uint8_t OpByte;
      if (!R.u8(OpByte) || OpByte >= NumOpcodes)
        return Fail("bad opcode");
      Instruction Inst;
      Inst.Op = static_cast<Opcode>(OpByte);
      if (opcodeIsResolved(Inst.Op))
        return Fail("resolved opcode in shipped bytecode");
      switch (opcodeOperand(Inst.Op)) {
      case OperandKind::OK_None:
        break;
      case OperandKind::OK_Int:
      case OperandKind::OK_Bool: {
        uint64_t V;
        if (!R.u64(V))
          return Fail("truncated int operand");
        Inst.IntOp = static_cast<int64_t>(V);
        break;
      }
      case OperandKind::OK_Float:
        if (!R.f64(Inst.FloatOp))
          return Fail("truncated float operand");
        break;
      case OperandKind::OK_Str:
        if (!R.str(Inst.StrOp))
          return Fail("truncated string operand");
        break;
      case OperandKind::OK_Local:
        if (!R.u32(Inst.Index) || !R.str(Inst.StrOp))
          return Fail("truncated local operand");
        if (Inst.Index >= F.Locals.size())
          return Fail("local index out of range");
        break;
      case OperandKind::OK_Label:
        if (!R.u32(Inst.Index))
          return Fail("truncated label operand");
        if (Inst.Index >= NumInsts)
          return Fail("label target out of range");
        break;
      case OperandKind::OK_Func:
        if (!R.str(Inst.StrOp))
          return Fail("truncated callee name");
        break;
      case OperandKind::OK_FuncIdx:
        return Fail("resolved opcode in shipped bytecode");
      }
      F.Code.push_back(std::move(Inst));
    }
    M.Functions.push_back(std::move(F));
  }

  if (!R.atEnd())
    return Fail("trailing bytes after module");
  return M;
}
