//===- vtal/Module.h - VTAL module representation -------------*- C++ -*-===//
///
/// \file
/// In-memory representation of a VTAL module: functions with typed
/// signatures and named locals, plus typed imports.  A module is the unit
/// of patch code shipment — the analogue of a TAL object file in the
/// PLDI 2001 system.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_MODULE_H
#define DSU_VTAL_MODULE_H

#include "support/Error.h"
#include "support/Hashing.h"
#include "vtal/Opcode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {

class Type;
class TypeContext;

namespace vtal {

/// Scalar value kinds of the VTAL machine.
enum class ValKind : uint8_t {
  VK_Int,
  VK_Float,
  VK_Bool,
  VK_Str,
  VK_Unit, ///< only valid as a function result
};

/// Returns "int", "float", "bool", "string" or "unit".
const char *valKindName(ValKind K);

/// Maps a VTAL scalar kind to the corresponding dsu type descriptor.
const Type *valKindToType(TypeContext &Ctx, ValKind K);

/// Maps a primitive dsu type back to a VTAL kind; fails on non-scalars.
Expected<ValKind> typeToValKind(const Type *Ty);

/// A function signature over scalar kinds.
struct Signature {
  std::vector<ValKind> Params;
  ValKind Result = ValKind::VK_Unit;

  /// Renders "(int, float) -> bool".
  std::string str() const;

  /// Lifts to a dsu function type for link-time checking.
  const Type *toType(TypeContext &Ctx) const;

  friend bool operator==(const Signature &A, const Signature &B) {
    return A.Result == B.Result && A.Params == B.Params;
  }
};

/// One decoded instruction.  Operand fields are used according to
/// opcodeOperand(Op); unused fields stay at their defaults.
struct Instruction {
  Opcode Op = Opcode::Ret;
  int64_t IntOp = 0;     ///< OK_Int / OK_Bool (0 or 1)
  double FloatOp = 0.0;  ///< OK_Float
  std::string StrOp;     ///< OK_Str / OK_Func; local/label *name* in asm
  uint32_t Index = 0;    ///< OK_Local: local slot; OK_Label: target pc

  /// Renders one line of assembly (names resolved to indices are shown
  /// numerically; the assembler's symbolic forms are not round-tripped).
  std::string str() const;
};

/// A named local variable slot.
struct LocalVar {
  std::string Name;
  ValKind Kind;
};

/// A VTAL function: parameters become locals [0, Params.size()).
struct Function {
  std::string Name;
  Signature Sig;
  std::vector<LocalVar> Locals; ///< includes parameters first
  std::vector<Instruction> Code;

  unsigned numParams() const {
    return static_cast<unsigned>(Sig.Params.size());
  }

  /// Finds a local slot by name; returns UINT32_MAX when absent.
  uint32_t findLocal(std::string_view Name) const;
};

/// A typed import: the module calls this name, the linker must supply a
/// definition whose signature matches.
struct Import {
  std::string Name;
  Signature Sig;
};

/// A VTAL module.
struct Module {
  std::string Name;
  std::vector<Import> Imports;
  std::vector<Function> Functions;

  const Function *findFunction(std::string_view FnName) const;
  const Import *findImport(std::string_view ImpName) const;

  /// Index of the named function in Functions; UINT32_MAX when absent.
  uint32_t functionIndex(std::string_view FnName) const;

  /// Ordinal of the named import in Imports; UINT32_MAX when absent.
  uint32_t importIndex(std::string_view ImpName) const;

  /// Stable fingerprint over the full encoded module (code identity).
  uint64_t fingerprint() const;

  /// Total instruction count across all functions.
  size_t totalInstructions() const;

  /// Renders the whole module as (non-symbolic) assembly text.
  std::string str() const;
};

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_MODULE_H
