//===- vtal/Resolve.h - Load-time call resolution -------------*- C++ -*-===//
///
/// \file
/// The load-time link pass that turns a verified Module (the shipping
/// form) into a ResolvedModule (the execution form).  Resolution happens
/// once, when an Interpreter binds a module; afterwards the inner loop
/// never touches a std::string key:
///
///   - every `Call` is rewritten to `CallFn` (module-local callee, by
///     function index) or `CallHost` (import, by ordinal),
///   - string literals are interned into a pool of prebuilt Values, so
///     `push.s` is a refcounted handle copy,
///   - per-function metadata (arity, local kinds, result kind) is laid
///     out densely for frame setup without touching the source Module.
///
/// The pass is also the dynamic-linking safety net for modules that have
/// NOT passed verifyModule(): a call to a name that is neither a function
/// nor an import is reported as an EC_Link error here instead of being
/// dereferenced at execution time, and local/label indices are
/// bounds-checked so a hostile module cannot make the engine index out of
/// range.  (Operand-stack discipline is still the verifier's job.)
///
/// The source Module must outlive the ResolvedModule; resolution never
/// mutates it, so module fingerprints and encoded sizes are unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_RESOLVE_H
#define DSU_VTAL_RESOLVE_H

#include "support/Error.h"
#include "vtal/Module.h"
#include "vtal/Value.h"

#include <cstdint>
#include <vector>

namespace dsu {
namespace vtal {

/// One instruction of the execution form: a fixed-size, trivially
/// copyable cell.  Operand use by kind:
///   OK_Int/OK_Bool -> IntOp;  OK_Float -> FloatOp;
///   OK_Str -> Index into ResolvedModule::StrPool;
///   OK_Local/OK_Label -> Index;  OK_FuncIdx -> Index (fn / ordinal).
struct ResolvedInst {
  Opcode Op = Opcode::Ret;
  uint32_t Index = 0;
  union {
    int64_t IntOp;
    double FloatOp;
  };
  ResolvedInst() : IntOp(0) {}
};

/// Execution-form function: dense metadata plus resolved code.
struct ResolvedFunction {
  const Function *Src = nullptr; ///< names for diagnostics only
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0;
  ValKind Result = ValKind::VK_Unit;
  std::vector<ValKind> LocalKinds; ///< for zero-initializing frames
  std::vector<ResolvedInst> Code;
};

/// Execution form of a whole module.  Imports keep their declaration
/// order, so an import's ordinal is its index in Module::Imports.
struct ResolvedModule {
  const Module *Src = nullptr;
  std::vector<ResolvedFunction> Functions;
  std::vector<Value> StrPool; ///< interned string literal values
};

/// Links \p M into its execution form.  Fails with EC_Link when a call
/// names neither a function nor an import, and with EC_Verify when an
/// operand index is out of range or the module already contains resolved
/// opcodes (both impossible for modules that passed verifyModule()).
Expected<ResolvedModule> linkModule(const Module &M);

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_RESOLVE_H
