//===- vtal/Assembler.h - VTAL textual assembler --------------*- C++ -*-===//
///
/// \file
/// Assembles VTAL text into a Module.  The syntax is line-oriented:
/// \code
///   module fact
///   import log_call : (string) -> unit
///   func fact (n: int) -> int {
///     locals (acc: int, i: int)
///     push.i 1
///     store acc
///     push.i 1
///     store i
///   loop:
///     load i
///     load n
///     gt
///     brif done
///     ...
///     br loop
///   done:
///     load acc
///     ret
///   }
/// \endcode
/// ';' starts a comment.  Labels are symbolic and resolved to instruction
/// indices; locals are referenced by name.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_ASSEMBLER_H
#define DSU_VTAL_ASSEMBLER_H

#include "support/Error.h"
#include "vtal/Module.h"

#include <string_view>

namespace dsu {
namespace vtal {

/// Assembles \p Source into a module.  Errors carry 1-based line numbers.
Expected<Module> assemble(std::string_view Source);

/// Parses a signature like "(int, float) -> bool".
Expected<Signature> parseSignature(std::string_view Text);

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_ASSEMBLER_H
