//===- vtal/Verifier.h - VTAL bytecode verifier ---------------*- C++ -*-===//
///
/// \file
/// The VTAL verifier: a dataflow typechecker run over every module before
/// it may be dynamically linked.  This is the reproduction's analogue of
/// TAL verification in the PLDI 2001 system — the step that lets the
/// running program accept code from a patch file without trusting it.
///
/// The verifier abstractly interprets each function over stacks of value
/// kinds: all paths to an instruction must agree on the stack shape,
/// locals are used at their declared kinds, calls match the callee's
/// signature, returns carry exactly the declared result, and control flow
/// cannot fall off the end of a function.  Verification is linear in code
/// size (each instruction is visited once per distinct incoming state, and
/// states are required to be equal, so once).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_VERIFIER_H
#define DSU_VTAL_VERIFIER_H

#include "support/Error.h"
#include "vtal/Module.h"

namespace dsu {
namespace vtal {

/// Statistics from a verification run (reported by bench_vtal_verify,
/// experiment E7).
struct VerifyStats {
  size_t FunctionsChecked = 0;
  size_t InstructionsChecked = 0;
};

/// Verifies \p M.  Returns success when the module is well-typed; the
/// error identifies the offending function and program counter otherwise.
/// \p Stats, when non-null, receives counters even on failure.
Error verifyModule(const Module &M, VerifyStats *Stats = nullptr);

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_VERIFIER_H
