//===- vtal/native/CodeArena.cpp - W^X executable code pages --------------===//

#include "vtal/native/CodeArena.h"

#include <cerrno>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

namespace dsu {
namespace vtal {
namespace native {

CodeArena::~CodeArena() {
  if (Base)
    ::munmap(Base, Size);
}

Error CodeArena::map(size_t Bytes) {
  if (Base)
    return Error::make(ErrorCode::EC_Invalid, "code arena mapped twice");
  long Page = ::sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  Size = (Bytes + static_cast<size_t>(Page) - 1) &
         ~(static_cast<size_t>(Page) - 1);
  if (Size == 0)
    Size = static_cast<size_t>(Page);
  void *P = ::mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED) {
    Size = 0;
    return Error::make(ErrorCode::EC_IO, "mmap of %zu code bytes failed: %s", Bytes,
                       std::strerror(errno));
  }
  Base = static_cast<uint8_t *>(P);
  return Error::success();
}

void CodeArena::write(size_t At, const void *Code, size_t Bytes) {
  std::memcpy(Base + At, Code, Bytes);
}

Error CodeArena::seal() {
  if (::mprotect(Base, Size, PROT_READ | PROT_EXEC) != 0)
    return Error::make(ErrorCode::EC_IO, "mprotect RX failed: %s",
                       std::strerror(errno));
  return Error::success();
}

} // namespace native
} // namespace vtal
} // namespace dsu
