//===- vtal/native/NativeStats.cpp - native tier counters -----------------===//
///
/// Compiled unconditionally (even with -DDSU_VTAL_NATIVE=OFF) so the
/// `dsu_vtal_native_*` metric names stay present — and zero — when the
/// tier is absent, keeping dashboards and alert rules stable across
/// build configurations.
///
//===----------------------------------------------------------------------===//

#include "vtal/native/NativeImage.h"

namespace dsu {
namespace vtal {
namespace native {

NativeStats &NativeStats::instance() {
  static NativeStats S;
  return S;
}

} // namespace native
} // namespace vtal
} // namespace dsu
