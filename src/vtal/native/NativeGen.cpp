//===- vtal/native/NativeGen.cpp - VTAL baseline code generator -----------===//
///
/// \file
/// The load-time baseline compiler: one pass of abstract interpretation
/// over a function's resolved code (mirroring the verifier's stack-kind
/// analysis) followed by one pass of x86-64 emission through X64Emitter.
/// No register allocation — every VTAL frame slot (locals, then operand
/// stack at its statically known depth) is a fixed [rsp+8*i] machine-stack
/// slot, and each instruction is a short load/op/store burst through
/// RAX/RCX/RDX or XMM0.  What the scheme buys is the removal of the
/// interpreter's dispatch, tag and arena traffic, which is where the
/// 6-8x interpreter of DESIGN.md §5 spends nearly everything.
///
/// Frame layout (prologue establishes; K = 8*NumSlots rounded so the
/// frame keeps 16-byte call alignment):
///
///     push rbp; mov rbp, rsp
///     push rbx                  ; rbx = NativeCtx* for the whole body
///     sub  rsp, K
///     [rsp + 8*i]       local i            (i < NumLocals)
///     [rsp + 8*(NL+j)]  operand stack j    (depth known per pc)
///
/// Fuel is paid per *segment* (see NativeImage.h); every deopt check
/// jumps to a per-(site, reason) stub that packs its identity into ESI
/// and funnels into one per-function sequence calling dsuVtalNativeDeopt
/// with RDX = the frame slots (= rsp).  The helper materializes the frame
/// into the interpreter via Interpreter::resumeAt and the interpreter
/// finishes the activation — native code never resumes a deopted frame,
/// which is what keeps the protocol small enough to trust.
///
//===----------------------------------------------------------------------===//

#include "vtal/Interp.h"
#include "vtal/native/NativeImage.h"
#include "vtal/native/RawValue.h"
#include "vtal/native/X64Emitter.h"

#include "epoch/Epoch.h"
#ifndef DSU_VTAL_NO_PROFILER
#include "trace/Profile.h"
#endif

#include <cstdlib>
#include <cstring>

#include <sys/mman.h>

using namespace dsu;
using namespace dsu::vtal;
using namespace dsu::vtal::native;

// The jitted code addresses Fuel/Depth/TrapPending at fixed offsets from
// RBX; a drifting NativeCtx layout must fail the build, not corrupt fuel.
static_assert(offsetof(NativeCtx, Fuel) == 0, "NativeCtx ABI: Fuel at 0");
static_assert(offsetof(NativeCtx, Depth) == 8, "NativeCtx ABI: Depth at 8");
static_assert(offsetof(NativeCtx, TrapPending) == 12,
              "NativeCtx ABI: TrapPending at 12");

namespace {
constexpr unsigned MaxCallDepth = 256;   // must equal Interp.cpp's limit
constexpr uint32_t MaxParams = 64;       // runNative's raw argument buffer
constexpr uint32_t MaxFrameSlots = 4096; // 32KB of machine stack per frame
constexpr uint32_t ReasonShift = 28;     // deopt request: site | reason<<28
} // namespace

//===----------------------------------------------------------------------===//
// Tier policy
//===----------------------------------------------------------------------===//

TierPolicy TierPolicy::fromEnv() {
  TierPolicy P;
  if (const char *E = std::getenv("DSU_VTAL_NATIVE")) {
    std::string V(E);
    if (V == "off" || V == "0" || V == "false")
      P.ModeV = Mode::Off;
    else if (V == "all" || V == "link")
      P.ModeV = Mode::All;
    else
      P.ModeV = Mode::On;
  }
  if (const char *E = std::getenv("DSU_VTAL_NATIVE_SMALL"))
    P.SmallFnInsts = static_cast<uint32_t>(std::strtoul(E, nullptr, 10));
  if (const char *E = std::getenv("DSU_VTAL_NATIVE_HOT_FUEL"))
    P.HotSelfFuel = std::strtoull(E, nullptr, 10);
  return P;
}

//===----------------------------------------------------------------------===//
// Runtime helpers called from jitted code
//===----------------------------------------------------------------------===//

extern "C" {

/// Deoptimization funnel: \p Packed is SiteId | (DeoptReason << 28), and
/// \p FrameSlots is the native frame base (locals then operand stack).
/// Hands the frame to the interpreter, which finishes the activation and
/// produces the ground-truth result, trap, and fuel.
uint64_t dsuVtalNativeDeopt(NativeCtx *Ctx, uint32_t Packed,
                            const uint64_t *FrameSlots) {
  NativeStats &S = NativeStats::instance();
  S.Deopts.fetch_add(1, std::memory_order_relaxed);
  uint32_t Reason = Packed >> ReasonShift;
  if (Reason < static_cast<uint32_t>(DeoptReason::NumReasons))
    S.DeoptsByReason[Reason].fetch_add(1, std::memory_order_relaxed);
  const DeoptSite &Site = Ctx->Image->site(Packed & ((1u << ReasonShift) - 1));
  Expected<Value> R = Ctx->Interp->resumeAt(
      Site.FnIndex, Site.PC, FrameSlots, Site.StackKinds.data(),
      static_cast<uint32_t>(Site.StackKinds.size()), Ctx->Fuel,
      /*DepthBias=*/Ctx->Depth - 1);
  if (!R) {
    Ctx->Err = R.takeError();
    Ctx->TrapPending = 1;
    return 0;
  }
  return valueToRaw(*R);
}

/// Mixed-tier CallFn: the callee is representable but not compiled into
/// the current image, so it runs interpreted and returns its raw result
/// to the native caller (which stays native — no deopt cliff for calling
/// a cold function).
uint64_t dsuVtalNativeCallBridge(NativeCtx *Ctx, uint32_t FnIndex,
                                 const uint64_t *Args) {
  NativeStats::instance().BridgeCalls.fetch_add(1, std::memory_order_relaxed);
  Expected<Value> R = Ctx->Interp->callRaw(FnIndex, Args, Ctx->Fuel,
                                           /*DepthBias=*/Ctx->Depth - 1);
  if (!R) {
    Ctx->Err = R.takeError();
    Ctx->TrapPending = 1;
    return 0;
  }
  return valueToRaw(*R);
}

/// CallHost from native code: same bind/kind checks and error messages as
/// the interpreter's CallHost, via Interpreter::callHostRaw.
uint64_t dsuVtalNativeCallHost(NativeCtx *Ctx, uint32_t Ordinal,
                               const uint64_t *Args) {
  uint64_t Raw = 0;
  if (Error E = Ctx->Interp->callHostRaw(Ordinal, Args, Raw)) {
    Ctx->Err = std::move(E);
    Ctx->TrapPending = 1;
    return 0;
  }
  return Raw;
}

} // extern "C"

//===----------------------------------------------------------------------===//
// Analysis: per-pc stack kinds, reachability, fuel segments
//===----------------------------------------------------------------------===//

namespace {

/// How one resolved instruction is emitted.
enum class PcClass : uint8_t {
  Plain,  ///< inline code, cost folded into the enclosing segment
  DivRem, ///< segment head with divide trap checks
  Call,   ///< segment head with the CallFn protocol
  Host,   ///< segment head with the CallHost protocol
  Unsup,  ///< unconditional deopt (PushS, string-result calls, ...)
};

struct PcState {
  bool Reachable = false;
  bool HasStr = false;  ///< a string is on the entry stack: native-unreachable
  bool SegHead = false;
  uint32_t SegCost = 0; ///< instructions this segment pays for (heads only)
  PcClass Class = PcClass::Plain;
  std::vector<ValKind> Stack; ///< operand-stack kinds on entry
};

struct FnAnalysis {
  std::vector<PcState> Pc;
  uint32_t MaxDepth = 0; ///< max operand-stack entry depth over all pcs
};

/// Stack effect + successor flow for the abstract pass.  Returns false on
/// any inconsistency (only reachable for modules that skipped the
/// verifier) — the caller then leaves the function interpreted.
bool abstractPass(const ResolvedModule &RM, const ResolvedFunction &F,
                  FnAnalysis &A) {
  const size_t N = F.Code.size();
  A.Pc.assign(N, PcState());
  std::vector<uint32_t> Work;

  auto flowTo = [&](uint32_t PC, const std::vector<ValKind> &Stack) {
    if (PC >= N)
      return false;
    PcState &S = A.Pc[PC];
    if (!S.Reachable) {
      S.Reachable = true;
      S.Stack = Stack;
      Work.push_back(PC);
      return true;
    }
    return S.Stack == Stack; // verifier's join rule: exact agreement
  };

  if (!flowTo(0, {}))
    return false;

  while (!Work.empty()) {
    uint32_t PC = Work.back();
    Work.pop_back();
    std::vector<ValKind> St = A.Pc[PC].Stack;
    const ResolvedInst &I = F.Code[PC];

    auto pop = [&](size_t K) {
      if (St.size() < K)
        return false;
      St.resize(St.size() - K);
      return true;
    };
    auto push = [&](ValKind K) { St.push_back(K); };

    bool Fall = true; // flow to PC+1 with the post-instruction stack
    switch (I.Op) {
    case Opcode::PushI:
      push(ValKind::VK_Int);
      break;
    case Opcode::PushF:
      push(ValKind::VK_Float);
      break;
    case Opcode::PushB:
      push(ValKind::VK_Bool);
      break;
    case Opcode::PushS:
      push(ValKind::VK_Str);
      break;
    case Opcode::Load:
      if (I.Index >= F.NumLocals)
        return false;
      push(F.LocalKinds[I.Index]);
      break;
    case Opcode::Store:
    case Opcode::Pop:
      if (!pop(1))
        return false;
      break;
    case Opcode::Dup:
      if (St.empty())
        return false;
      push(St.back());
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      if (!pop(2))
        return false;
      push(ValKind::VK_Int);
      break;
    case Opcode::Neg:
      if (!pop(1))
        return false;
      push(ValKind::VK_Int);
      break;
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::And:
    case Opcode::Or:
      if (!pop(2))
        return false;
      push(ValKind::VK_Bool);
      break;
    case Opcode::Not:
      if (!pop(1))
        return false;
      push(ValKind::VK_Bool);
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      if (!pop(2))
        return false;
      push(ValKind::VK_Float);
      break;
    case Opcode::FNeg:
      if (!pop(1))
        return false;
      push(ValKind::VK_Float);
      break;
    case Opcode::FEq:
    case Opcode::FNe:
    case Opcode::FLt:
    case Opcode::FLe:
    case Opcode::FGt:
    case Opcode::FGe:
      if (!pop(2))
        return false;
      push(ValKind::VK_Bool);
      break;
    case Opcode::I2F:
      if (!pop(1))
        return false;
      push(ValKind::VK_Float);
      break;
    case Opcode::F2I:
      if (!pop(1))
        return false;
      push(ValKind::VK_Int);
      break;
    case Opcode::SCat:
      if (!pop(2))
        return false;
      push(ValKind::VK_Str);
      break;
    case Opcode::SLen:
      if (!pop(1))
        return false;
      push(ValKind::VK_Int);
      break;
    case Opcode::SEq:
      if (!pop(2))
        return false;
      push(ValKind::VK_Bool);
      break;
    case Opcode::SSub:
      if (!pop(3))
        return false;
      push(ValKind::VK_Str);
      break;
    case Opcode::SFind:
      if (!pop(2))
        return false;
      push(ValKind::VK_Int);
      break;
    case Opcode::Br:
      if (!flowTo(I.Index, St))
        return false;
      Fall = false;
      break;
    case Opcode::BrIf:
      if (!pop(1))
        return false;
      if (!flowTo(I.Index, St))
        return false;
      break;
    case Opcode::Ret:
      Fall = false;
      break;
    case Opcode::CallFn: {
      if (I.Index >= RM.Functions.size())
        return false;
      const ResolvedFunction &Callee = RM.Functions[I.Index];
      if (!pop(Callee.NumParams))
        return false;
      if (Callee.Result != ValKind::VK_Unit)
        push(Callee.Result);
      break;
    }
    case Opcode::CallHost: {
      if (!RM.Src || I.Index >= RM.Src->Imports.size())
        return false;
      const Signature &Sig = RM.Src->Imports[I.Index].Sig;
      if (!pop(Sig.Params.size()))
        return false;
      if (Sig.Result != ValKind::VK_Unit)
        push(Sig.Result);
      break;
    }
    case Opcode::Call:
      return false; // unresolved call: not execution form
    }
    if (Fall && !flowTo(PC + 1, St))
      return false;
  }

  // Classification + string poisoning + segment heads.
  for (uint32_t PC = 0; PC != N; ++PC) {
    PcState &S = A.Pc[PC];
    if (!S.Reachable)
      continue;
    if (S.Stack.size() > A.MaxDepth)
      A.MaxDepth = static_cast<uint32_t>(S.Stack.size());
    for (ValKind K : S.Stack)
      if (K == ValKind::VK_Str)
        S.HasStr = true;
    if (S.HasStr)
      continue; // native-unreachable; emitted as ud2
    const ResolvedInst &I = F.Code[PC];
    switch (I.Op) {
    case Opcode::Div:
    case Opcode::Rem:
      S.Class = PcClass::DivRem;
      break;
    case Opcode::CallFn: {
      const ResolvedFunction &Callee = RM.Functions[I.Index];
      bool StrParam = false;
      for (uint32_t P = 0; P != Callee.NumParams; ++P)
        StrParam |= Callee.LocalKinds[P] == ValKind::VK_Str;
      S.Class = (StrParam || Callee.Result == ValKind::VK_Str ||
                 Callee.NumParams > MaxParams)
                    ? PcClass::Unsup
                    : PcClass::Call;
      break;
    }
    case Opcode::CallHost: {
      const Signature &Sig = RM.Src->Imports[I.Index].Sig;
      bool StrParam = false;
      for (ValKind K : Sig.Params)
        StrParam |= K == ValKind::VK_Str;
      S.Class = (StrParam || Sig.Result == ValKind::VK_Str ||
                 Sig.Params.size() > MaxParams)
                    ? PcClass::Unsup
                    : PcClass::Host;
      break;
    }
    case Opcode::PushS:
    case Opcode::SCat:
    case Opcode::SLen:
    case Opcode::SEq:
    case Opcode::SSub:
    case Opcode::SFind:
    case Opcode::Call:
      S.Class = PcClass::Unsup;
      break;
    default:
      S.Class = PcClass::Plain;
      break;
    }
  }

  // Segment heads: entry, branch targets, fall-throughs after control
  // transfers, every deopt-capable instruction, and the continuation
  // after each call (the callee burned an unknown amount of fuel).
  auto markHead = [&](uint32_t PC) {
    if (PC < N && A.Pc[PC].Reachable && !A.Pc[PC].HasStr)
      A.Pc[PC].SegHead = true;
  };
  markHead(0);
  for (uint32_t PC = 0; PC != N; ++PC) {
    PcState &S = A.Pc[PC];
    if (!S.Reachable || S.HasStr)
      continue;
    const ResolvedInst &I = F.Code[PC];
    switch (S.Class) {
    case PcClass::DivRem:
    case PcClass::Call:
    case PcClass::Host:
    case PcClass::Unsup:
      S.SegHead = true;
      break;
    case PcClass::Plain:
      break;
    }
    if (S.Class == PcClass::Call || S.Class == PcClass::Host)
      markHead(PC + 1);
    if (I.Op == Opcode::Br || I.Op == Opcode::BrIf)
      markHead(I.Index);
    if (I.Op == Opcode::BrIf)
      markHead(PC + 1);
  }

  // Segment costs: a head pays for the straight run of instructions from
  // itself up to (excluding) the next head, stopping after any control
  // transfer.  Call/Host/Unsup heads are special: calls pay exactly their
  // own instruction (the continuation is its own head), unsupported pcs
  // pay nothing (the interpreter re-executes from the deopt site).
  for (uint32_t PC = 0; PC != N; ++PC) {
    PcState &S = A.Pc[PC];
    if (!S.SegHead)
      continue;
    if (S.Class == PcClass::Unsup) {
      S.SegCost = 0;
      continue;
    }
    if (S.Class == PcClass::Call || S.Class == PcClass::Host) {
      S.SegCost = 1;
      continue;
    }
    uint32_t Cost = 0;
    for (uint32_t Q = PC; Q < N; ++Q) {
      const PcState &QS = A.Pc[Q];
      if (Q != PC && (QS.SegHead || !QS.Reachable || QS.HasStr))
        break;
      ++Cost;
      Opcode Op = F.Code[Q].Op;
      if (Op == Opcode::Br || Op == Opcode::BrIf || Op == Opcode::Ret)
        break;
    }
    S.SegCost = Cost;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Emission
//===----------------------------------------------------------------------===//

namespace {

struct CallFixup {
  size_t At;       ///< rel32 position in the image buffer
  uint32_t Callee; ///< resolved function index
};

/// Emits one function.  \p Compiling is the final compile set (analysis
/// already succeeded for every member), so CallFn sites know statically
/// whether the callee gets a direct rel32 call or the interpreter bridge.
void emitFunction(const ResolvedModule &RM, uint32_t FnIndex,
                  const FnAnalysis &A, const std::vector<bool> &Compiling,
                  X64Emitter &E, std::vector<NativeImage::FnInfo> &Fns,
                  std::vector<DeoptSite> &Sites,
                  std::vector<CallFixup> &Calls) {
  const ResolvedFunction &F = RM.Functions[FnIndex];
  const uint32_t NL = F.NumLocals;
  const size_t N = F.Code.size();

  // Frame: NL locals + the deepest operand stack, one headroom slot for
  // the in-flight push; K keeps RSP 16-byte aligned at call sites.
  const uint32_t NumSlots = NL + A.MaxDepth + 1;
  int32_t K = static_cast<int32_t>(8 * NumSlots);
  if (K % 16 == 0)
    K += 8;

  auto SL = [&](uint32_t Local) { return static_cast<int32_t>(8 * Local); };
  auto SS = [&](size_t Depth) {
    return static_cast<int32_t>(8 * (NL + Depth));
  };

  // Deopt sites are created lazily per pc; stubs lazily per (site,
  // reason).  All jcc/jmp fixups into stubs/epilogue resolve at the end.
  std::vector<uint32_t> SiteOfPc(N, UINT32_MAX);
  auto siteId = [&](uint32_t PC) {
    if (SiteOfPc[PC] == UINT32_MAX) {
      SiteOfPc[PC] = static_cast<uint32_t>(Sites.size());
      DeoptSite S;
      S.FnIndex = FnIndex;
      S.PC = PC;
      S.StackKinds = A.Pc[PC].Stack;
      Sites.push_back(std::move(S));
    }
    return SiteOfPc[PC];
  };
  struct StubRef {
    uint32_t Packed;
    std::vector<size_t> Jumps; ///< rel32 fixups targeting this stub
  };
  std::vector<StubRef> Stubs;
  auto toStub = [&](size_t FixAt, uint32_t PC, DeoptReason R) {
    uint32_t Packed =
        siteId(PC) | (static_cast<uint32_t>(R) << ReasonShift);
    for (StubRef &S : Stubs)
      if (S.Packed == Packed) {
        S.Jumps.push_back(FixAt);
        return;
      }
    Stubs.push_back(StubRef{Packed, {FixAt}});
  };
  std::vector<size_t> EpilogueJumps; ///< rel32 fixups to the epilogue
  struct BranchFixup {
    size_t At;
    uint32_t TargetPc;
  };
  std::vector<BranchFixup> Branches;
  std::vector<size_t> PcOff(N, 0);

  const size_t Entry = E.pos();

  // Prologue: ctx into rbx, arguments into the first NumParams slots,
  // remaining locals zeroed (kind-faithful: raw zero is int 0, float 0.0,
  // false, and unit alike).
  E.pushR(RBP);
  E.movRR(RBP, RSP);
  E.pushR(RBX);
  E.subRspI(K);
  E.movRR(RBX, RDI);
  for (uint32_t P = 0; P != F.NumParams; ++P) {
    E.movRM(RAX, RSI, static_cast<int32_t>(8 * P));
    E.movMR(RSP, SL(P), RAX);
  }
  if (NL > F.NumParams) {
    E.zeroRax();
    for (uint32_t L = F.NumParams; L != NL; ++L)
      E.movMR(RSP, SL(L), RAX);
  }

  // Emission-time top-of-stack cache: when true, RAX holds the value of
  // operand-stack slot SS(depth-1) and the memory slot is stale.  The
  // invariant maintained below is that the cache is empty at every
  // segment head and after every control transfer, so deopt stubs and
  // branch targets always see a fully materialized frame.
  bool TosCached = false;

  for (uint32_t PC = 0; PC != N; ++PC) {
    PcOff[PC] = E.pos();
    const PcState &S = A.Pc[PC];
    if (!S.Reachable || S.HasStr) {
      // Never reached from native code (unreachable, or the verifier's
      // join rule proves only string-bearing frames arrive here — those
      // activations deopted at the instruction that pushed the string).
      E.ud2();
      TosCached = false;
      continue;
    }
    const ResolvedInst &I = F.Code[PC];
    const size_t D = S.Stack.size();

    // Top-of-stack cache: inside a straight segment the logical stack
    // top may live in RAX instead of its frame slot, eliding the
    // store/reload pair between adjacent instructions.  Every segment
    // head is a potential deopt point (fuel, traps, calls) whose stub
    // materializes the frame from memory — and every branch target is a
    // segment head — so the invariant is simply: the cache is empty at
    // every segment head.  Flush here, before the fuel check, so the
    // fuel stub sees a complete frame.
    if (S.SegHead && TosCached) {
      E.movMR(RSP, SS(D - 1), RAX);
      TosCached = false;
    }

    // Segment head: the fuel protocol.  The check runs before anything is
    // paid, so a deopt always hands the interpreter the exact fuel it
    // would have held on arriving at this pc.
    if (S.SegHead) {
      switch (S.Class) {
      case PcClass::Plain:
      case PcClass::DivRem:
        E.cmpMI(RBX, 0, static_cast<int32_t>(S.SegCost));
        toStub(E.jcc(CC_B), PC, DeoptReason::Fuel);
        if (S.Class == PcClass::Plain)
          E.subMI(RBX, 0, static_cast<int32_t>(S.SegCost));
        break;
      case PcClass::Call:
      case PcClass::Host:
        E.cmpMI(RBX, 0, 1);
        toStub(E.jcc(CC_B), PC, DeoptReason::Fuel);
        break;
      case PcClass::Unsup:
        break;
      }
    }

    switch (S.Class) {
    case PcClass::Unsup:
      // The interpreter executes this instruction — and the rest of the
      // activation — with untouched fuel.
      toStub(E.jmp(), PC, DeoptReason::Unsupported);
      continue;

    case PcClass::DivRem: {
      // Divide trap checks fire before the segment's fuel is paid: the
      // interpreter re-executes the Div/Rem and raises the identical
      // "division by zero in '%s' at pc %u" / overflow message.
      E.movRM(RCX, RSP, SS(D - 1)); // divisor
      E.testRR(RCX, RCX);
      toStub(E.jcc(CC_E), PC, DeoptReason::DivTrap);
      E.movRM(RAX, RSP, SS(D - 2)); // dividend
      E.aluRI(7, RCX, -1);          // cmp rcx, -1
      size_t NoOvf = E.jcc(CC_NE);
      E.movRI(RDX, static_cast<uint64_t>(INT64_MIN));
      E.aluRR(0x3B, RAX, RDX); // cmp rax, rdx
      toStub(E.jcc(CC_E), PC, DeoptReason::DivTrap);
      E.fix(NoOvf, E.pos());
      E.subMI(RBX, 0, static_cast<int32_t>(S.SegCost));
      E.cqo();
      E.idivM(RSP, SS(D - 1));
      E.movMR(RSP, SS(D - 2), I.Op == Opcode::Div ? RAX : RDX);
      break;
    }

    case PcClass::Call: {
      const ResolvedFunction &Callee = RM.Functions[I.Index];
      const uint32_t NP = Callee.NumParams;
      // Depth check mirrors the interpreter's (frames-including-current
      // vs. the shared limit) and, like every deopt, fires before the
      // CallFn's own fuel is paid.
      E.cmpMI32(RBX, 8, static_cast<int32_t>(MaxCallDepth));
      toStub(E.jcc(CC_A), PC, DeoptReason::Depth);
      E.subMI(RBX, 0, 1);
      E.incM32(RBX, 8);
      if (Compiling[I.Index]) {
        E.movRR(RDI, RBX);
        E.leaRM(RSI, RSP, SS(D - NP));
        Calls.push_back(CallFixup{E.call(), I.Index});
      } else {
        E.movRR(RDI, RBX);
        E.movRI(RSI, I.Index);
        E.leaRM(RDX, RSP, SS(D - NP));
        E.movRI(RAX, reinterpret_cast<uint64_t>(&dsuVtalNativeCallBridge));
        E.callR(RAX);
      }
      E.decM32(RBX, 8);
      E.cmpMI32(RBX, 12, 0);
      EpilogueJumps.push_back(E.jcc(CC_NE));
      if (Callee.Result != ValKind::VK_Unit)
        E.movMR(RSP, SS(D - NP), RAX);
      break;
    }

    case PcClass::Host: {
      const Signature &Sig = RM.Src->Imports[I.Index].Sig;
      const size_t NP = Sig.Params.size();
      E.subMI(RBX, 0, 1);
      E.movRR(RDI, RBX);
      E.movRI(RSI, I.Index);
      E.leaRM(RDX, RSP, SS(D - NP));
      E.movRI(RAX, reinterpret_cast<uint64_t>(&dsuVtalNativeCallHost));
      E.callR(RAX);
      E.cmpMI32(RBX, 12, 0);
      EpilogueJumps.push_back(E.jcc(CC_NE));
      if (Sig.Result != ValKind::VK_Unit)
        E.movMR(RSP, SS(D - NP), RAX);
      break;
    }

    case PcClass::Plain:
      switch (I.Op) {
      case Opcode::PushI:
      case Opcode::PushF:
      case Opcode::PushB: {
        uint64_t Bits;
        if (I.Op == Opcode::PushF)
          std::memcpy(&Bits, &I.FloatOp, sizeof(Bits));
        else if (I.Op == Opcode::PushI)
          Bits = static_cast<uint64_t>(I.IntOp);
        else
          Bits = I.IntOp != 0 ? 1 : 0;
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        E.movRI(RAX, Bits);
        TosCached = true;
        break;
      }
      case Opcode::Load:
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        E.movRM(RAX, RSP, SL(I.Index));
        TosCached = true;
        break;
      case Opcode::Store:
        if (!TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        E.movMR(RSP, SL(I.Index), RAX);
        TosCached = false;
        break;
      case Opcode::Pop:
        TosCached = false;
        break;
      case Opcode::Dup:
        // Materialize the lower copy; the upper copy stays cached.
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        else
          E.movRM(RAX, RSP, SS(D - 1));
        TosCached = true;
        break;

      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or: {
        uint8_t Opc = I.Op == Opcode::Add   ? 0x03
                      : I.Op == Opcode::Sub ? 0x2B
                      : I.Op == Opcode::And ? 0x23
                      : I.Op == Opcode::Or  ? 0x0B
                                            : 0;
        if (TosCached && I.Op == Opcode::Sub) {
          // Non-commutative: the cached rhs moves aside, lhs loads from
          // memory.
          E.movRR(RCX, RAX);
          E.movRM(RAX, RSP, SS(D - 2));
          E.aluRR(0x2B, RAX, RCX); // sub rax, rcx
        } else if (TosCached) {
          if (I.Op == Opcode::Mul)
            E.imulRM(RAX, RSP, SS(D - 2));
          else
            E.aluRM(Opc, RAX, RSP, SS(D - 2));
        } else {
          E.movRM(RAX, RSP, SS(D - 2));
          if (I.Op == Opcode::Mul)
            E.imulRM(RAX, RSP, SS(D - 1));
          else
            E.aluRM(Opc, RAX, RSP, SS(D - 1));
        }
        TosCached = true;
        break;
      }
      case Opcode::Neg:
        if (!TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        E.negR(RAX);
        TosCached = true;
        break;
      case Opcode::Not:
        if (!TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        E.aluRI(6, RAX, 1); // xor rax, 1
        TosCached = true;
        break;

      case Opcode::Eq:
      case Opcode::Ne:
      case Opcode::Lt:
      case Opcode::Le:
      case Opcode::Gt:
      case Opcode::Ge: {
        Cond C = I.Op == Opcode::Eq   ? CC_E
                 : I.Op == Opcode::Ne ? CC_NE
                 : I.Op == Opcode::Lt ? CC_L
                 : I.Op == Opcode::Le ? CC_LE
                 : I.Op == Opcode::Gt ? CC_G
                                      : CC_GE;
        E.movRM(RCX, RSP, SS(D - 2));
        if (TosCached)
          E.aluRR(0x3B, RCX, RAX); // cmp lhs, rhs
        else
          E.aluRM(0x3B, RCX, RSP, SS(D - 1));
        E.movRI(RAX, 0); // mov imm leaves flags intact
        E.setcc(C, RAX);
        TosCached = true;
        break;
      }

      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv: {
        uint8_t Opc = I.Op == Opcode::FAdd   ? 0x58
                      : I.Op == Opcode::FSub ? 0x5C
                      : I.Op == Opcode::FMul ? 0x59
                                             : 0x5E;
        if (TosCached) {
          E.movMR(RSP, SS(D - 1), RAX);
          TosCached = false;
        }
        E.movsdXM(0, RSP, SS(D - 2));
        E.sseArithXM(Opc, 0, RSP, SS(D - 1));
        E.movsdMX(RSP, SS(D - 2), 0);
        break;
      }
      case Opcode::FNeg:
        if (!TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        E.btcRI(RAX, 63);
        TosCached = true;
        break;

      case Opcode::FEq:
      case Opcode::FNe: {
        // IEEE semantics through the parity flag: UCOMISD sets PF on
        // unordered, and NaN == x is false while NaN != x is true.
        if (TosCached) {
          E.movMR(RSP, SS(D - 1), RAX);
          TosCached = false;
        }
        E.movsdXM(0, RSP, SS(D - 2));
        E.ucomisdXM(0, RSP, SS(D - 1));
        E.movRI(RAX, 0);
        E.movRI(RCX, 0);
        if (I.Op == Opcode::FEq) {
          E.setcc(CC_NP, RAX);
          E.setcc(CC_E, RCX);
          E.aluRR32(0x23, RAX, RCX); // and
        } else {
          E.setcc(CC_P, RAX);
          E.setcc(CC_NE, RCX);
          E.aluRR32(0x0B, RAX, RCX); // or
        }
        TosCached = true;
        break;
      }
      case Opcode::FLt:
      case Opcode::FLe: {
        // A < B  ==  B > A: compare with the operands swapped so the
        // unordered case (CF set) falls out as false via the unsigned
        // "above" conditions.
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        E.movRI(RAX, 0);
        E.movsdXM(0, RSP, SS(D - 1));
        E.ucomisdXM(0, RSP, SS(D - 2));
        E.setcc(I.Op == Opcode::FLt ? CC_A : CC_AE, RAX);
        TosCached = true;
        break;
      }
      case Opcode::FGt:
      case Opcode::FGe: {
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        E.movRI(RAX, 0);
        E.movsdXM(0, RSP, SS(D - 2));
        E.ucomisdXM(0, RSP, SS(D - 1));
        E.setcc(I.Op == Opcode::FGt ? CC_A : CC_AE, RAX);
        TosCached = true;
        break;
      }

      case Opcode::I2F:
        if (TosCached) {
          E.movMR(RSP, SS(D - 1), RAX);
          TosCached = false;
        }
        E.cvtsi2sdXM(0, RSP, SS(D - 1));
        E.movsdMX(RSP, SS(D - 1), 0);
        break;
      case Opcode::F2I:
        // cvttsd2si matches the interpreter's static_cast<int64_t> on
        // x86-64 (both truncate; both yield the indefinite value when
        // out of range).
        if (TosCached)
          E.movMR(RSP, SS(D - 1), RAX);
        E.cvttsd2siRM(RAX, RSP, SS(D - 1));
        TosCached = true;
        break;

      case Opcode::Br:
        if (TosCached) {
          E.movMR(RSP, SS(D - 1), RAX);
          TosCached = false;
        }
        Branches.push_back(BranchFixup{E.jmp(), I.Index});
        break;
      case Opcode::BrIf:
        // The condition is consumed here; everything beneath it is
        // already in memory, so the target's full-frame invariant holds
        // without a flush.
        if (!TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        TosCached = false;
        E.testRR(RAX, RAX);
        Branches.push_back(BranchFixup{E.jcc(CC_NE), I.Index});
        break;

      case Opcode::Ret:
        if (F.Result != ValKind::VK_Unit && !TosCached)
          E.movRM(RAX, RSP, SS(D - 1));
        TosCached = false;
        EpilogueJumps.push_back(E.jmp());
        break;

      default:
        // PushS/string ops/Call are classified Unsup; CallFn/CallHost/
        // Div/Rem have their own classes.  Nothing else reaches here.
        E.ud2();
        break;
      }
      break;
    }
  }

  // If the body's last pc fell through (it cannot — Ret/Br terminate
  // every path in verified code), ud2 guards the seam anyway.
  E.ud2();

  // Deopt stubs: identify the (site, reason), funnel into the common
  // sequence.
  std::vector<size_t> CommonJumps;
  for (StubRef &S : Stubs) {
    size_t StubPos = E.pos();
    for (size_t J : S.Jumps)
      E.fix(J, StubPos);
    E.movRI(RSI, S.Packed);
    CommonJumps.push_back(E.jmp());
  }
  // Common deopt: rdi = ctx, esi already packed, rdx = frame slots.
  size_t CommonPos = E.pos();
  for (size_t J : CommonJumps)
    E.fix(J, CommonPos);
  if (!Stubs.empty()) {
    E.movRR(RDI, RBX);
    E.movRR(RDX, RSP);
    E.movRI(RAX, reinterpret_cast<uint64_t>(&dsuVtalNativeDeopt));
    E.callR(RAX);
    // Result (or pending trap) in hand: fall through to the epilogue.
  }
  // Epilogue: shared by Ret, trap propagation, and deopt returns.
  size_t EpiloguePos = E.pos();
  for (size_t J : EpilogueJumps)
    E.fix(J, EpiloguePos);
  E.addRspI(K);
  E.popR(RBX);
  E.popR(RBP);
  E.ret();

  // Intra-function branches.
  for (const BranchFixup &B : Branches)
    E.fix(B.At, PcOff[B.TargetPc]);

  Fns[FnIndex].EntryOffset = static_cast<uint32_t>(Entry);
  Fns[FnIndex].CodeBytes = static_cast<uint32_t>(E.pos() - Entry);
}

} // namespace

//===----------------------------------------------------------------------===//
// NativeImage
//===----------------------------------------------------------------------===//

std::vector<bool> NativeImage::representable(const ResolvedModule &RM) {
  std::vector<bool> R(RM.Functions.size(), false);
  for (size_t I = 0; I != RM.Functions.size(); ++I) {
    const ResolvedFunction &F = RM.Functions[I];
    // Every local (params included) and the result must have a raw
    // 8-byte encoding, because every deopt site materializes the whole
    // frame from raw slots; strings live only in interpreted frames.
    bool Ok = !F.Code.empty() && F.NumParams <= MaxParams &&
              F.Result != ValKind::VK_Str;
    for (ValKind K : F.LocalKinds)
      Ok &= K != ValKind::VK_Str;
    R[I] = Ok;
  }
  return R;
}

Expected<std::shared_ptr<const NativeImage>>
NativeImage::compile(const ResolvedModule &RM, const std::vector<bool> *Mask) {
  std::shared_ptr<NativeImage> Img(new NativeImage());
  const size_t N = RM.Functions.size();
  Img->Fns.resize(N);
  for (size_t I = 0; I != N; ++I)
    Img->Fns[I].Result = RM.Functions[I].Result;

#if !defined(__x86_64__)
  // Non-x86-64 hosts get an empty image: everything stays interpreted.
  // (CMake normally forces DSU_VTAL_NATIVE=OFF there; this is the
  // belt-and-braces path.)
  (void)Mask;
  return std::shared_ptr<const NativeImage>(Img);
#else
  std::vector<bool> Want = representable(RM);
  if (Mask)
    for (size_t I = 0; I != N && I != Mask->size(); ++I)
      Want[I] = Want[I] && (*Mask)[I];
  if (Mask)
    for (size_t I = Mask->size(); I < N; ++I)
      Want[I] = false;

  // Phase 1: analyze everything first — a function that fails analysis
  // (possible only for unverified modules) must be dropped before any
  // caller decides between a direct call and the bridge.
  std::vector<FnAnalysis> An(N);
  for (size_t I = 0; I != N; ++I) {
    if (!Want[I])
      continue;
    if (!abstractPass(RM, RM.Functions[I], An[I]) ||
        RM.Functions[I].NumLocals + An[I].MaxDepth + 1 > MaxFrameSlots)
      Want[I] = false;
  }

  // Phase 2: emit.
  X64Emitter E;
  std::vector<CallFixup> Calls;
  for (size_t I = 0; I != N; ++I)
    if (Want[I]) {
      emitFunction(RM, static_cast<uint32_t>(I), An[I], Want, E, Img->Fns,
                   Img->Sites, Calls);
      ++Img->NumCompiled;
    }

  if (Img->NumCompiled == 0)
    return std::shared_ptr<const NativeImage>(Img);

  for (const CallFixup &C : Calls)
    E.fix(C.At, Img->Fns[C.Callee].EntryOffset);

  Img->CodeSize = E.code().size();
  if (Error Err = Img->Arena.map(Img->CodeSize))
    return Err;
  Img->Arena.write(0, E.code().data(), Img->CodeSize);
  if (Error Err = Img->Arena.seal())
    return Err;

  NativeStats &S = NativeStats::instance();
  S.FunctionsCompiled.fetch_add(Img->NumCompiled, std::memory_order_relaxed);
  S.CodeBytesLive.fetch_add(Img->CodeSize, std::memory_order_relaxed);
  return std::shared_ptr<const NativeImage>(Img);
#endif
}

namespace {
struct RetiredPages {
  uint8_t *Base;
  size_t Size;
};
} // namespace

NativeImage::~NativeImage() {
  if (!Arena.base())
    return;
  NativeStats &S = NativeStats::instance();
  S.CodeBytesLive.fetch_sub(CodeSize, std::memory_order_relaxed);
  S.ArenasRetired.fetch_add(1, std::memory_order_relaxed);
  // The image object dies when its last owner drops it, but a reader that
  // resolved an entry pointer through the binding indirection may still
  // be ahead of the epoch clock — the pages themselves wait out the grace
  // period in the epoch domain's limbo list, exactly like a superseded
  // binding table.
  std::pair<uint8_t *, size_t> Pages = Arena.release();
  RetiredPages *R = new RetiredPages{Pages.first, Pages.second};
  epoch::domain().retire(R, [](void *P) {
    RetiredPages *RP = static_cast<RetiredPages *>(P);
    ::munmap(RP->Base, RP->Size);
    delete RP;
  });
}

//===----------------------------------------------------------------------===//
// Interpreter::runNative — the tier-dispatch entry shim
//===----------------------------------------------------------------------===//

namespace dsu {
namespace vtal {

Expected<Value> Interpreter::runNative(uint32_t FnIndex,
                                       const std::vector<Value> &Args,
                                       uint64_t &Fuel) {
  const native::NativeImage *Image = Img.get();
  native::NativeEntryFn Entry = Image->entry(FnIndex);
  uint64_t RawArgs[MaxParams];
  for (size_t I = 0; I != Args.size(); ++I)
    RawArgs[I] = native::valueToRaw(Args[I]);

  native::NativeCtx Ctx;
  Ctx.Fuel = Fuel;
  Ctx.Depth = 1; // this activation's entry frame
  Ctx.Interp = this;
  Ctx.Image = Image;

  native::NativeStats::instance().NativeEntries.fetch_add(
      1, std::memory_order_relaxed);
#ifndef DSU_VTAL_NO_PROFILER
  // Entry counts feed the same profile as interpreted activations; the
  // fuel natively executed functions burn is deliberately NOT attributed
  // as self-fuel (tier-up already happened — see DESIGN.md §17).
  if (Prof)
    Prof->fn(FnIndex).Calls.fetch_add(1, std::memory_order_relaxed);
#endif

  uint64_t RawRet = Entry(&Ctx, RawArgs);
  Fuel = Ctx.Fuel;
  if (Ctx.TrapPending)
    return std::move(Ctx.Err);
  return native::rawToValue(Image->resultKind(FnIndex), RawRet);
}

} // namespace vtal
} // namespace dsu
