//===- vtal/native/RawValue.h - raw 8-byte slot <-> Value -------*- C++ -*-===//
///
/// \file
/// The native tier's frame slots are raw 8-byte machine words: int64
/// bits, IEEE-754 double bits, bool 0/1, unit 0.  These helpers convert
/// between that encoding and the interpreter's tagged Value at the tier
/// boundary (entry arguments, deopt materialization, bridge calls).
/// Strings have no raw encoding — string-typed frames are never compiled.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_NATIVE_RAWVALUE_H
#define DSU_VTAL_NATIVE_RAWVALUE_H

#include "vtal/Value.h"

#include <cassert>
#include <cstring>

namespace dsu {
namespace vtal {
namespace native {

inline uint64_t valueToRaw(const Value &V) {
  switch (V.kind()) {
  case ValKind::VK_Int:
    return static_cast<uint64_t>(V.asInt());
  case ValKind::VK_Float: {
    uint64_t Bits;
    double D = V.asFloat();
    std::memcpy(&Bits, &D, sizeof(Bits));
    return Bits;
  }
  case ValKind::VK_Bool:
    return V.asBool() ? 1 : 0;
  case ValKind::VK_Unit:
    return 0;
  case ValKind::VK_Str:
    break;
  }
  assert(false && "string value has no raw slot encoding");
  return 0;
}

inline Value rawToValue(ValKind K, uint64_t Raw) {
  switch (K) {
  case ValKind::VK_Int:
    return Value::makeInt(static_cast<int64_t>(Raw));
  case ValKind::VK_Float: {
    double D;
    std::memcpy(&D, &Raw, sizeof(D));
    return Value::makeFloat(D);
  }
  case ValKind::VK_Bool:
    return Value::makeBool(Raw != 0);
  case ValKind::VK_Unit:
    return Value();
  case ValKind::VK_Str:
    break;
  }
  assert(false && "string slot cannot be materialized from raw bits");
  return Value();
}

} // namespace native
} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_NATIVE_RAWVALUE_H
