//===- vtal/native/NativeImage.h - VTAL native tier public API --*- C++ -*-===//
///
/// \file
/// The native tier's public surface: the ABI contract between jitted code
/// and the runtime (NativeCtx), the per-module compiled image
/// (NativeImage), the deopt-site metadata that makes every native frame
/// resumable in the interpreter, global counters (NativeStats), and the
/// tier-up policy knobs (TierPolicy).
///
/// ## ABI
///
/// Every compiled function has the signature
///
///     uint64_t entry(NativeCtx *Ctx, const uint64_t *Args);
///
/// Args points at NumParams raw 8-byte slots (int64 bits, double bits, or
/// bool 0/1 — string-typed functions are never compiled).  The return
/// value is the raw result in the same encoding, meaningless when
/// Ctx->TrapPending is set on return.  NativeCtx carries the live fuel
/// counter and call depth that jitted code updates in place; the fixed
/// field offsets below are part of the ABI and asserted in NativeGen.cpp.
///
/// ## Fuel parity
///
/// Native code pays fuel in *segments*: at each segment head it first
/// checks `Fuel >= SegCost` and only then subtracts, where a segment is a
/// maximal straight run of instructions that cannot deopt midway (every
/// Div/Rem/CallFn/CallHost and every branch target starts a new segment).
/// All deopt triggers — fuel shortfall, division by zero, INT64_MIN/-1,
/// call-depth overflow, unsupported instruction — fire *before* the
/// segment's fuel is paid, so at every deopt site the fuel handed to the
/// interpreter is exactly what the interpreter itself would hold at that
/// pc.  The interpreter then re-executes from the site and produces the
/// identical trap message (or runs out of fuel at the identical
/// instruction), which is what makes the differential harness's
/// bit-for-bit fuel assertion possible.  DESIGN.md §17 gives the full
/// argument.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_NATIVE_NATIVEIMAGE_H
#define DSU_VTAL_NATIVE_NATIVEIMAGE_H

#include "support/Error.h"
#include "vtal/Module.h"
#include "vtal/native/CodeArena.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dsu {
namespace vtal {

class Interpreter;
struct ResolvedModule;

namespace native {

class NativeImage;

/// Per-activation state shared between jitted code and the runtime.
/// Field offsets of Fuel/Depth/TrapPending are baked into emitted code.
struct NativeCtx {
  uint64_t Fuel = 0;          ///< live fuel counter (offset 0, qword)
  uint32_t Depth = 0;         ///< native frames on the machine stack (offset 8)
  uint32_t TrapPending = 0;   ///< set by helpers when Err holds a trap (offset 12)
  Interpreter *Interp = nullptr;       ///< owning interpreter (deopt target)
  const NativeImage *Image = nullptr;  ///< image the code belongs to
  Error Err;                           ///< the trap, when TrapPending != 0
};

using NativeEntryFn = uint64_t (*)(NativeCtx *, const uint64_t *);

/// Where a native frame can fall back into the interpreter: a (function,
/// pc) pair plus the value kinds of the operand stack at that pc.  The
/// frame's raw slots (locals then stack, contiguous) are materialized
/// into interpreter Values using the function's local kinds + StackKinds.
struct DeoptSite {
  uint32_t FnIndex = 0;
  uint32_t PC = 0;
  std::vector<ValKind> StackKinds;
};

/// Why the native tier bailed out of a function activation.
enum class DeoptReason : uint8_t {
  Fuel = 0,        ///< segment fuel check failed
  DivTrap,         ///< divide-by-zero or INT64_MIN/-1 about to trap
  Depth,           ///< call-depth limit about to be exceeded
  Unsupported,     ///< instruction the baseline compiler doesn't emit
  NumReasons,
};

/// Global native-tier counters surfaced at /admin/metrics.  This lives in
/// its own TU (NativeStats.cpp) that is compiled even when the tier is
/// off, so the metric names never disappear from the scrape.
struct NativeStats {
  std::atomic<uint64_t> FunctionsCompiled{0}; ///< dsu_vtal_native_functions_total
  std::atomic<uint64_t> Deopts{0};            ///< dsu_vtal_deopts_total
  std::atomic<uint64_t> DeoptsByReason[static_cast<size_t>(
      DeoptReason::NumReasons)] = {};
  std::atomic<uint64_t> CodeBytesLive{0};     ///< dsu_vtal_native_code_bytes
  std::atomic<uint64_t> ArenasRetired{0};     ///< arenas handed to the epoch domain
  std::atomic<uint64_t> NativeEntries{0};     ///< activations started in native code
  std::atomic<uint64_t> BridgeCalls{0};       ///< native->interpreter bridge calls

  static NativeStats &instance();
};

/// Tier-up policy, read once per loaded module from the environment:
///
///   DSU_VTAL_NATIVE=off   native tier disabled at runtime
///   DSU_VTAL_NATIVE=on    (default) small functions compile at link time,
///                         hot ones promote on profiler self-fuel
///   DSU_VTAL_NATIVE=all   every representable function compiles at link
///
///   DSU_VTAL_NATIVE_SMALL=N     compile-at-link size bar (instructions)
///   DSU_VTAL_NATIVE_HOT_FUEL=N  promotion threshold (cumulative self fuel)
struct TierPolicy {
  enum class Mode : uint8_t { Off, On, All };
  Mode ModeV = Mode::On;
  uint32_t SmallFnInsts = 96;
  uint64_t HotSelfFuel = 1u << 20;
  uint32_t PromoteCheckEvery = 1024; ///< entry-call cadence of promotion polls

  static TierPolicy fromEnv();
};

/// The compiled form of (a subset of) one resolved module: one sealed W^X
/// arena holding every compiled function, plus the deopt-site tables.
/// Immutable after compile(); shared by every pooled interpreter of the
/// module instance.  The destructor does NOT unmap the arena — it retires
/// it through the epoch domain, because a concurrent thread may still be
/// executing a superseded image's code when the new one is published.
class NativeImage {
public:
  struct FnInfo {
    uint32_t EntryOffset = UINT32_MAX; ///< UINT32_MAX = not compiled
    uint32_t CodeBytes = 0;
    ValKind Result = ValKind::VK_Unit;
  };

  /// Compiles the representable functions of \p RM selected by \p Mask
  /// (null = all representable).  Functions the mask selects but the
  /// baseline compiler cannot represent are silently left interpreted.
  /// Fails only on OS-level errors (mmap/mprotect).
  static Expected<std::shared_ptr<const NativeImage>>
  compile(const ResolvedModule &RM, const std::vector<bool> *Mask = nullptr);

  /// Which functions of \p RM the baseline compiler *could* compile: all
  /// params/locals/result are int/float/bool/unit (no strings in a frame
  /// slot, so every deopt site can materialize) and at most 64 params.
  static std::vector<bool> representable(const ResolvedModule &RM);

  ~NativeImage();
  NativeImage(const NativeImage &) = delete;
  NativeImage &operator=(const NativeImage &) = delete;

  /// Entry point of function \p FnIndex, or null if it is not compiled
  /// into this image.
  NativeEntryFn entry(uint32_t FnIndex) const {
    if (FnIndex >= Fns.size() || Fns[FnIndex].EntryOffset == UINT32_MAX)
      return nullptr;
    return reinterpret_cast<NativeEntryFn>(
        const_cast<uint8_t *>(Arena.base()) + Fns[FnIndex].EntryOffset);
  }
  bool compiled(uint32_t FnIndex) const {
    return FnIndex < Fns.size() && Fns[FnIndex].EntryOffset != UINT32_MAX;
  }
  ValKind resultKind(uint32_t FnIndex) const { return Fns[FnIndex].Result; }
  const DeoptSite &site(uint32_t SiteId) const { return Sites[SiteId]; }
  uint32_t compiledCount() const { return NumCompiled; }
  size_t codeBytes() const { return CodeSize; }
  /// The compiled-function set, for promotion-mask arithmetic.
  std::vector<bool> compiledMask() const {
    std::vector<bool> M(Fns.size());
    for (size_t I = 0; I != Fns.size(); ++I)
      M[I] = Fns[I].EntryOffset != UINT32_MAX;
    return M;
  }

private:
  NativeImage() = default;

  CodeArena Arena;
  std::vector<FnInfo> Fns;     ///< indexed by resolved function index
  std::vector<DeoptSite> Sites;
  uint32_t NumCompiled = 0;
  size_t CodeSize = 0;         ///< bytes of emitted code (not page-rounded)

  friend class NativeGen;
};

} // namespace native
} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_NATIVE_NATIVEIMAGE_H
