//===- vtal/native/CodeArena.h - W^X executable code pages ------*- C++ -*-===//
///
/// \file
/// One mmap'd region per compiled NativeImage.  The arena is mapped RW,
/// filled by the code generator, then flipped to RX with mprotect before
/// any entry pointer escapes — the pages are never writable and executable
/// at the same time (W^X).  Superseded arenas are not freed directly:
/// NativeImage hands them to the epoch domain, which unmaps them only after
/// every thread that could be executing the old code has quiesced.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_NATIVE_CODEARENA_H
#define DSU_VTAL_NATIVE_CODEARENA_H

#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <utility>

namespace dsu {
namespace vtal {
namespace native {

class CodeArena {
public:
  CodeArena() = default;
  ~CodeArena();
  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;

  /// Maps a fresh RW region of at least \p Bytes (rounded up to whole
  /// pages).  Must be called exactly once, before write().
  Error map(size_t Bytes);

  /// Copies \p Code into the region at offset \p At (region must still be
  /// writable).
  void write(size_t At, const void *Code, size_t Bytes);

  /// Flips the region RW -> RX.  After sealing the arena is executable and
  /// no further writes are possible.
  Error seal();

  const uint8_t *base() const { return Base; }
  size_t size() const { return Size; }

  /// Transfers ownership of the mapping out of the arena (for epoch
  /// retirement); the arena forgets it and its destructor becomes a no-op.
  std::pair<uint8_t *, size_t> release() {
    std::pair<uint8_t *, size_t> R{Base, Size};
    Base = nullptr;
    Size = 0;
    return R;
  }

private:
  uint8_t *Base = nullptr;
  size_t Size = 0; ///< mapped size, page-rounded
};

} // namespace native
} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_NATIVE_CODEARENA_H
