//===- vtal/native/X64Emitter.h - x86-64 instruction encoder ----*- C++ -*-===//
///
/// \file
/// A compact single-pass x86-64 instruction encoder for the VTAL native
/// tier, in the spirit of neatcc's gen.c: one small class appending raw
/// bytes to a growable buffer, with rel32 branch/call fixups patched after
/// layout.  Only the encodings the baseline compiler actually emits are
/// provided — 64-bit integer ALU over RAX/RCX/RDX with [reg+disp] memory
/// operands, SETcc materialization, CQO/IDIV, scalar SSE2 for floats, and
/// rel32 control flow.  All registers are the low eight (no REX.B/REX.X),
/// which keeps REX handling to a single W bit.
///
/// The encoder knows nothing about VTAL; NativeGen.cpp drives it.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_NATIVE_X64EMITTER_H
#define DSU_VTAL_NATIVE_X64EMITTER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsu {
namespace vtal {
namespace native {

/// Register numbers (ModRM encodings).  The baseline compiler only uses
/// the low eight, so no REX.B is ever required.
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
};

/// Condition codes: the low nibble of the 0F 9x / 0F 8x opcodes.
enum Cond : uint8_t {
  CC_B = 0x2,  ///< unsigned <   (CF)
  CC_AE = 0x3, ///< unsigned >=
  CC_E = 0x4,  ///< ==
  CC_NE = 0x5, ///< !=
  CC_BE = 0x6, ///< unsigned <=
  CC_A = 0x7,  ///< unsigned >
  CC_P = 0xA,  ///< parity (unordered after UCOMISD)
  CC_NP = 0xB, ///< no parity (ordered)
  CC_L = 0xC,  ///< signed <
  CC_GE = 0xD, ///< signed >=
  CC_LE = 0xE, ///< signed <=
  CC_G = 0xF,  ///< signed >
};

class X64Emitter {
public:
  const std::vector<uint8_t> &code() const { return Buf; }
  size_t pos() const { return Buf.size(); }

  // --- raw byte plumbing --------------------------------------------------
  void byte(uint8_t B) { Buf.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  /// Patches a previously emitted 32-bit field in place.
  void patch32(size_t At, uint32_t V) {
    assert(At + 4 <= Buf.size() && "patch out of range");
    for (int I = 0; I != 4; ++I)
      Buf[At + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  // --- moves --------------------------------------------------------------
  /// mov r64, imm — picks the shortest of mov r32,imm32 / mov r64,simm32 /
  /// movabs r64,imm64.
  void movRI(Reg R, uint64_t Imm) {
    if (Imm <= UINT32_MAX) {
      byte(0xB8 + R); // mov r32, imm32 (zero-extends)
      u32(static_cast<uint32_t>(Imm));
    } else if (static_cast<int64_t>(Imm) == static_cast<int32_t>(Imm)) {
      byte(0x48);
      byte(0xC7); // mov r64, simm32
      modrm(3, 0, R);
      u32(static_cast<uint32_t>(Imm));
    } else {
      byte(0x48);
      byte(0xB8 + R); // movabs r64, imm64
      u64(Imm);
    }
  }
  /// mov r64, r64
  void movRR(Reg Dst, Reg Src) {
    byte(0x48);
    byte(0x8B);
    modrm(3, Dst, Src);
  }
  /// mov r64, [base+disp]
  void movRM(Reg R, Reg Base, int32_t Disp) {
    byte(0x48);
    byte(0x8B);
    mem(R, Base, Disp);
  }
  /// mov [base+disp], r64
  void movMR(Reg Base, int32_t Disp, Reg R) {
    byte(0x48);
    byte(0x89);
    mem(R, Base, Disp);
  }
  /// lea r64, [base+disp]
  void leaRM(Reg R, Reg Base, int32_t Disp) {
    byte(0x48);
    byte(0x8D);
    mem(R, Base, Disp);
  }

  // --- 64-bit integer ALU -------------------------------------------------
  /// op r64, [base+disp] where Opc is the reg<-rm form: 0x03 add, 0x0B or,
  /// 0x23 and, 0x2B sub, 0x33 xor, 0x3B cmp.
  void aluRM(uint8_t Opc, Reg R, Reg Base, int32_t Disp) {
    byte(0x48);
    byte(Opc);
    mem(R, Base, Disp);
  }
  /// op r64, r64 (same reg<-rm opcodes as aluRM)
  void aluRR(uint8_t Opc, Reg Dst, Reg Src) {
    byte(0x48);
    byte(Opc);
    modrm(3, Dst, Src);
  }
  /// op r32, r32 — 32-bit form, used for flag materialization where the
  /// operands are known 0/1.
  void aluRR32(uint8_t Opc, Reg Dst, Reg Src) {
    byte(Opc);
    modrm(3, Dst, Src);
  }
  /// Group-1 immediate ALU on r64: 81 /Ext simm32 (Ext: 0 add, 1 or,
  /// 4 and, 5 sub, 6 xor, 7 cmp).
  void aluRI(uint8_t Ext, Reg R, int32_t Imm) {
    byte(0x48);
    byte(0x81);
    modrm(3, Ext, R);
    u32(static_cast<uint32_t>(Imm));
  }
  /// imul r64, [base+disp]
  void imulRM(Reg R, Reg Base, int32_t Disp) {
    byte(0x48);
    byte(0x0F);
    byte(0xAF);
    mem(R, Base, Disp);
  }
  /// neg r64
  void negR(Reg R) {
    byte(0x48);
    byte(0xF7);
    modrm(3, 3, R);
  }
  /// test r64, r64
  void testRR(Reg A, Reg B) {
    byte(0x48);
    byte(0x85);
    modrm(3, B, A);
  }
  /// cmp qword [base+disp], simm32
  void cmpMI(Reg Base, int32_t Disp, int32_t Imm) {
    byte(0x48);
    byte(0x81);
    mem(7, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// sub qword [base+disp], simm32
  void subMI(Reg Base, int32_t Disp, int32_t Imm) {
    byte(0x48);
    byte(0x81);
    mem(5, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// cmp dword [base+disp], simm32 (no REX.W — 32-bit fields like Depth)
  void cmpMI32(Reg Base, int32_t Disp, int32_t Imm) {
    byte(0x81);
    mem(7, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  /// inc dword [base+disp]
  void incM32(Reg Base, int32_t Disp) {
    byte(0xFF);
    mem(0, Base, Disp);
  }
  /// dec dword [base+disp]
  void decM32(Reg Base, int32_t Disp) {
    byte(0xFF);
    mem(1, Base, Disp);
  }
  /// btc r64, imm8 — flip one bit (FNeg flips bit 63).
  void btcRI(Reg R, uint8_t Bit) {
    byte(0x48);
    byte(0x0F);
    byte(0xBA);
    modrm(3, 7, R);
    byte(Bit);
  }
  /// cqo — sign-extend RAX into RDX:RAX before idiv.
  void cqo() {
    byte(0x48);
    byte(0x99);
  }
  /// idiv qword [base+disp]
  void idivM(Reg Base, int32_t Disp) {
    byte(0x48);
    byte(0xF7);
    mem(7, Base, Disp);
  }
  /// setcc r8 (low byte of a low-eight register; no REX needed for
  /// AL/CL/DL/BL, which are the only ones the compiler uses)
  void setcc(Cond C, Reg R8) {
    assert(R8 <= RBX && "setcc without REX only reaches AL..BL");
    byte(0x0F);
    byte(0x90 + C);
    modrm(3, 0, R8);
  }

  // --- SSE2 scalar double -------------------------------------------------
  /// movsd xmmN, [base+disp]
  void movsdXM(uint8_t X, Reg Base, int32_t Disp) {
    byte(0xF2);
    byte(0x0F);
    byte(0x10);
    mem(X, Base, Disp);
  }
  /// movsd [base+disp], xmmN
  void movsdMX(Reg Base, int32_t Disp, uint8_t X) {
    byte(0xF2);
    byte(0x0F);
    byte(0x11);
    mem(X, Base, Disp);
  }
  /// F2 0F Opc: 0x58 addsd, 0x5C subsd, 0x59 mulsd, 0x5E divsd — all in
  /// the xmm <- [base+disp] direction.
  void sseArithXM(uint8_t Opc, uint8_t X, Reg Base, int32_t Disp) {
    byte(0xF2);
    byte(0x0F);
    byte(Opc);
    mem(X, Base, Disp);
  }
  /// ucomisd xmmN, [base+disp]
  void ucomisdXM(uint8_t X, Reg Base, int32_t Disp) {
    byte(0x66);
    byte(0x0F);
    byte(0x2E);
    mem(X, Base, Disp);
  }
  /// cvtsi2sd xmmN, qword [base+disp]
  void cvtsi2sdXM(uint8_t X, Reg Base, int32_t Disp) {
    byte(0xF2);
    byte(0x48);
    byte(0x0F);
    byte(0x2A);
    mem(X, Base, Disp);
  }
  /// cvttsd2si r64, qword [base+disp]
  void cvttsd2siRM(Reg R, Reg Base, int32_t Disp) {
    byte(0xF2);
    byte(0x48);
    byte(0x0F);
    byte(0x2C);
    mem(R, Base, Disp);
  }

  // --- control flow -------------------------------------------------------
  /// jcc rel32 — returns the buffer offset of the rel32 field for fixup.
  size_t jcc(Cond C) {
    byte(0x0F);
    byte(0x80 + C);
    size_t At = pos();
    u32(0);
    return At;
  }
  /// jmp rel32 — returns the rel32 fixup offset.
  size_t jmp() {
    byte(0xE9);
    size_t At = pos();
    u32(0);
    return At;
  }
  /// call rel32 — returns the rel32 fixup offset.
  size_t call() {
    byte(0xE8);
    size_t At = pos();
    u32(0);
    return At;
  }
  /// call r64
  void callR(Reg R) {
    byte(0xFF);
    modrm(3, 2, R);
  }
  /// Resolves a rel32 fixup (from jcc/jmp/call) to a buffer position.
  void fix(size_t At, size_t Target) {
    patch32(At, static_cast<uint32_t>(static_cast<int64_t>(Target) -
                                      static_cast<int64_t>(At + 4)));
  }
  void pushR(Reg R) { byte(0x50 + R); }
  void popR(Reg R) { byte(0x58 + R); }
  /// sub rsp, imm32
  void subRspI(int32_t Imm) { aluRI(5, RSP, Imm); }
  /// add rsp, imm32
  void addRspI(int32_t Imm) { aluRI(0, RSP, Imm); }
  void ret() { byte(0xC3); }
  /// ud2 — placed at statically native-unreachable pcs.
  void ud2() {
    byte(0x0F);
    byte(0x0B);
  }
  /// xor eax, eax (clears RAX; note: clobbers flags)
  void zeroRax() {
    byte(0x31);
    byte(0xC0);
  }

private:
  void modrm(uint8_t Mod, uint8_t R, uint8_t Rm) {
    byte(static_cast<uint8_t>((Mod << 6) | ((R & 7) << 3) | (Rm & 7)));
  }
  /// [base+disp] memory operand with reg/ext field \p R.  Handles the
  /// RSP-needs-SIB and RBP-needs-disp ModRM irregularities.
  void mem(uint8_t R, Reg Base, int32_t Disp) {
    uint8_t Mod;
    if (Disp == 0 && Base != RBP)
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    modrm(Mod, R, Base);
    if (Base == RSP)
      byte(0x24); // SIB: scale=0, index=none, base=rsp
    if (Mod == 1)
      byte(static_cast<uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<uint32_t>(Disp));
  }

  std::vector<uint8_t> Buf;
};

} // namespace native
} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_NATIVE_X64EMITTER_H
