//===- vtal/Value.h - VTAL runtime values ---------------------*- C++ -*-===//
///
/// \file
/// The runtime value of the VTAL machine: a compact tagged union.  The
/// scalar kinds (int, float, bool) share one 8-byte payload word; strings
/// live behind a refcounted immutable handle so that stack pushes, Dup and
/// Load never copy string bytes.  VTAL has no string mutation opcodes, so
/// sharing the payload is observationally identical to copying it.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_VALUE_H
#define DSU_VTAL_VALUE_H

#include "vtal/Module.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

namespace dsu {
namespace vtal {

/// A runtime value of the VTAL machine.
class Value {
public:
  Value() : Kind(ValKind::VK_Unit), I(0) {}

  static Value makeInt(int64_t V) {
    Value X;
    X.Kind = ValKind::VK_Int;
    X.I = V;
    return X;
  }
  static Value makeFloat(double V) {
    Value X;
    X.Kind = ValKind::VK_Float;
    X.F = V;
    return X;
  }
  static Value makeBool(bool V) {
    Value X;
    X.Kind = ValKind::VK_Bool;
    X.B = V;
    return X;
  }
  static Value makeStr(std::string V) {
    Value X;
    X.Kind = ValKind::VK_Str;
    X.S = std::make_shared<const std::string>(std::move(V));
    return X;
  }
  static Value makeUnit() { return Value(); }

  /// The interned empty string — shared by every zero-initialized string
  /// local, so frame setup never allocates.
  static const Value &emptyStr();

  ValKind kind() const { return Kind; }
  int64_t asInt() const {
    assert(Kind == ValKind::VK_Int && "not an int");
    return I;
  }
  double asFloat() const {
    assert(Kind == ValKind::VK_Float && "not a float");
    return F;
  }
  bool asBool() const {
    assert(Kind == ValKind::VK_Bool && "not a bool");
    return B;
  }
  const std::string &asStr() const {
    assert(Kind == ValKind::VK_Str && S && "not a string");
    return *S;
  }

  /// Debug rendering, e.g. "int(42)".
  std::string str() const;

private:
  ValKind Kind;
  union {
    int64_t I;
    double F;
    bool B;
  };
  std::shared_ptr<const std::string> S;
};

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_VALUE_H
