//===- vtal/Value.cpp -----------------------------------------*- C++ -*-===//

#include "vtal/Value.h"

#include "support/StringUtil.h"

using namespace dsu;
using namespace dsu::vtal;

const Value &Value::emptyStr() {
  static const Value E = Value::makeStr(std::string());
  return E;
}

std::string Value::str() const {
  switch (Kind) {
  case ValKind::VK_Int:
    return formatString("int(%lld)", static_cast<long long>(I));
  case ValKind::VK_Float:
    return formatString("float(%g)", F);
  case ValKind::VK_Bool:
    return B ? "bool(true)" : "bool(false)";
  case ValKind::VK_Str:
    return "string(\"" + escapeString(*S) + "\")";
  case ValKind::VK_Unit:
    return "unit";
  }
  return "?";
}
