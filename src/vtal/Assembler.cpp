//===- vtal/Assembler.cpp -------------------------------------*- C++ -*-===//

#include "vtal/Assembler.h"

#include "support/StringUtil.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Expected<ValKind> parseValKind(std::string_view S) {
  S = trim(S);
  if (S == "int")
    return ValKind::VK_Int;
  if (S == "float")
    return ValKind::VK_Float;
  if (S == "bool")
    return ValKind::VK_Bool;
  if (S == "string")
    return ValKind::VK_Str;
  if (S == "unit")
    return ValKind::VK_Unit;
  return Error::make(ErrorCode::EC_Parse, "unknown VTAL kind '%.*s'",
                     static_cast<int>(S.size()), S.data());
}

/// Parses "name: kind, name: kind" declarations (shared by parameter
/// lists and locals clauses).  Empty input yields an empty list.
Expected<std::vector<LocalVar>> parseVarList(std::string_view Body) {
  std::vector<LocalVar> Vars;
  Body = trim(Body);
  if (Body.empty())
    return Vars;
  for (const std::string &Piece : splitString(Body, ',')) {
    std::string_view P = trim(Piece);
    size_t Colon = P.find(':');
    if (Colon == std::string_view::npos)
      return Error::make(ErrorCode::EC_Parse,
                         "expected 'name: kind' in '%.*s'",
                         static_cast<int>(P.size()), P.data());
    std::string_view Name = trim(P.substr(0, Colon));
    Expected<ValKind> K = parseValKind(P.substr(Colon + 1));
    if (!K)
      return K.takeError();
    if (Name.empty())
      return Error::make(ErrorCode::EC_Parse, "empty variable name");
    if (*K == ValKind::VK_Unit)
      return Error::make(ErrorCode::EC_Parse,
                         "variable '%.*s' cannot have kind unit",
                         static_cast<int>(Name.size()), Name.data());
    Vars.push_back(LocalVar{std::string(Name), *K});
  }
  return Vars;
}

/// Mnemonic lookup table built once.
const std::map<std::string, Opcode> &mnemonicTable() {
  static const std::map<std::string, Opcode> Table = [] {
    std::map<std::string, Opcode> T;
    for (unsigned I = 0; I != NumOpcodes; ++I) {
      auto Op = static_cast<Opcode>(I);
      // The resolved call forms are internal to the link pass; "call.fn"
      // and "call.host" are not part of the assembly surface.
      if (opcodeIsResolved(Op))
        continue;
      T.emplace(opcodeName(Op), Op);
    }
    return T;
  }();
  return Table;
}

/// Line-oriented assembler state machine.
class Assembler {
public:
  explicit Assembler(std::string_view Source) : Source(Source) {}

  Expected<Module> run() {
    std::vector<std::string> Lines = splitString(Source, '\n');
    for (size_t I = 0; I != Lines.size(); ++I) {
      LineNo = static_cast<unsigned>(I + 1);
      std::string_view Line = stripComment(Lines[I]);
      Line = trim(Line);
      if (Line.empty())
        continue;
      if (Error E = handleLine(Line))
        return E;
    }
    if (InFunc)
      return errValue("unterminated function body (missing '}')");
    if (M.Name.empty())
      return errValue("missing 'module <name>' header");
    return std::move(M);
  }

private:
  static std::string_view stripComment(std::string_view Line) {
    // Respect ';' inside string literals.
    bool InStr = false;
    for (size_t I = 0; I != Line.size(); ++I) {
      char C = Line[I];
      if (C == '"' && (I == 0 || Line[I - 1] != '\\'))
        InStr = !InStr;
      else if (C == ';' && !InStr)
        return Line.substr(0, I);
    }
    return Line;
  }

  Error errValue(const char *Msg) {
    return Error::make(ErrorCode::EC_Parse, "vtal asm line %u: %s", LineNo,
                       Msg);
  }

  Error handleLine(std::string_view Line) {
    if (!InFunc) {
      if (startsWith(Line, "module "))
        return handleModule(Line.substr(7));
      if (startsWith(Line, "import "))
        return handleImport(Line.substr(7));
      if (startsWith(Line, "func "))
        return handleFuncHeader(Line.substr(5));
      return errValue("expected 'module', 'import' or 'func'");
    }

    if (Line == "}")
      return finishFunction();
    if (startsWith(Line, "locals"))
      return handleLocals(Line.substr(6));

    // Label definition: "name:" with an identifier name.
    if (Line.back() == ':' && Line.find(' ') == std::string_view::npos) {
      std::string Label(trim(Line.substr(0, Line.size() - 1)));
      if (Label.empty())
        return errValue("empty label name");
      if (Labels.count(Label))
        return errValue("duplicate label");
      Labels[Label] = static_cast<uint32_t>(Cur.Code.size());
      return Error::success();
    }
    return handleInstruction(Line);
  }

  Error handleModule(std::string_view Rest) {
    if (!M.Name.empty())
      return errValue("duplicate 'module' header");
    M.Name = std::string(trim(Rest));
    if (M.Name.empty())
      return errValue("missing module name");
    return Error::success();
  }

  Error handleImport(std::string_view Rest) {
    size_t Colon = Rest.find(':');
    if (Colon == std::string_view::npos)
      return errValue("expected 'import name : (sig) -> result'");
    Import Imp;
    Imp.Name = std::string(trim(Rest.substr(0, Colon)));
    if (Imp.Name.empty())
      return errValue("missing import name");
    Expected<Signature> Sig = parseSignature(Rest.substr(Colon + 1));
    if (!Sig)
      return Sig.takeError().withContext(
          formatString("vtal asm line %u", LineNo));
    Imp.Sig = std::move(*Sig);
    M.Imports.push_back(std::move(Imp));
    return Error::success();
  }

  Error handleFuncHeader(std::string_view Rest) {
    // "<name> (params) -> result {"
    size_t Open = Rest.find('(');
    if (Open == std::string_view::npos)
      return errValue("expected '(' in function header");
    Cur = Function();
    Cur.Name = std::string(trim(Rest.substr(0, Open)));
    if (Cur.Name.empty())
      return errValue("missing function name");

    size_t Close = Rest.find(')', Open);
    if (Close == std::string_view::npos)
      return errValue("expected ')' in function header");
    Expected<std::vector<LocalVar>> Params =
        parseVarList(Rest.substr(Open + 1, Close - Open - 1));
    if (!Params)
      return Params.takeError().withContext(
          formatString("vtal asm line %u", LineNo));

    std::string_view Tail = trim(Rest.substr(Close + 1));
    if (!startsWith(Tail, "->"))
      return errValue("expected '->' after parameter list");
    Tail = trim(Tail.substr(2));
    if (Tail.empty() || Tail.back() != '{')
      return errValue("expected '{' at end of function header");
    Expected<ValKind> Res = parseValKind(trim(Tail.substr(0, Tail.size() - 1)));
    if (!Res)
      return Res.takeError().withContext(
          formatString("vtal asm line %u", LineNo));

    for (const LocalVar &P : *Params)
      Cur.Sig.Params.push_back(P.Kind);
    Cur.Sig.Result = *Res;
    Cur.Locals = std::move(*Params);
    Labels.clear();
    PendingLabelRefs.clear();
    InFunc = true;
    return Error::success();
  }

  Error handleLocals(std::string_view Rest) {
    Rest = trim(Rest);
    if (Rest.size() < 2 || Rest.front() != '(' || Rest.back() != ')')
      return errValue("expected 'locals (name: kind, ...)'");
    Expected<std::vector<LocalVar>> Vars =
        parseVarList(Rest.substr(1, Rest.size() - 2));
    if (!Vars)
      return Vars.takeError().withContext(
          formatString("vtal asm line %u", LineNo));
    for (LocalVar &V : *Vars) {
      if (Cur.findLocal(V.Name) != UINT32_MAX)
        return errValue("duplicate local name");
      Cur.Locals.push_back(std::move(V));
    }
    return Error::success();
  }

  Error handleInstruction(std::string_view Line) {
    size_t Space = Line.find_first_of(" \t");
    std::string Mnemonic(Line.substr(0, Space));
    std::string_view Operand =
        Space == std::string_view::npos ? "" : trim(Line.substr(Space + 1));

    auto It = mnemonicTable().find(Mnemonic);
    if (It == mnemonicTable().end())
      return errValue("unknown mnemonic");
    Instruction Inst;
    Inst.Op = It->second;

    switch (opcodeOperand(Inst.Op)) {
    case OperandKind::OK_None:
      if (!Operand.empty())
        return errValue("unexpected operand");
      break;
    case OperandKind::OK_Int: {
      if (Operand.empty())
        return errValue("missing integer operand");
      char *End = nullptr;
      std::string Copy(Operand);
      Inst.IntOp = std::strtoll(Copy.c_str(), &End, 10);
      if (End != Copy.c_str() + Copy.size())
        return errValue("bad integer operand");
      break;
    }
    case OperandKind::OK_Float: {
      if (Operand.empty())
        return errValue("missing float operand");
      char *End = nullptr;
      std::string Copy(Operand);
      Inst.FloatOp = std::strtod(Copy.c_str(), &End);
      if (End != Copy.c_str() + Copy.size())
        return errValue("bad float operand");
      break;
    }
    case OperandKind::OK_Bool:
      if (Operand == "true")
        Inst.IntOp = 1;
      else if (Operand == "false")
        Inst.IntOp = 0;
      else
        return errValue("boolean operand must be true or false");
      break;
    case OperandKind::OK_Str: {
      if (Operand.size() < 2 || Operand.front() != '"' ||
          Operand.back() != '"')
        return errValue("string operand must be quoted");
      if (!unescapeString(Operand.substr(1, Operand.size() - 2), Inst.StrOp))
        return errValue("bad escape in string operand");
      break;
    }
    case OperandKind::OK_Local: {
      uint32_t Slot = Cur.findLocal(Operand);
      if (Slot == UINT32_MAX)
        return errValue("unknown local variable");
      Inst.Index = Slot;
      Inst.StrOp = std::string(Operand);
      break;
    }
    case OperandKind::OK_Label:
      if (Operand.empty())
        return errValue("missing label operand");
      // Targets may be defined later; record for fixup.
      PendingLabelRefs.emplace_back(Cur.Code.size(), std::string(Operand));
      Inst.StrOp = std::string(Operand);
      break;
    case OperandKind::OK_Func:
      if (Operand.empty())
        return errValue("missing callee name");
      Inst.StrOp = std::string(Operand);
      break;
    case OperandKind::OK_FuncIdx:
      // Unreachable: resolved opcodes are excluded from the mnemonic
      // table above.
      return errValue("internal opcode cannot be assembled");
    }
    Cur.Code.push_back(std::move(Inst));
    return Error::success();
  }

  Error finishFunction() {
    for (const auto &[PC, Label] : PendingLabelRefs) {
      auto It = Labels.find(Label);
      if (It == Labels.end())
        return Error::make(ErrorCode::EC_Parse,
                           "vtal asm: undefined label '%s' in function '%s'",
                           Label.c_str(), Cur.Name.c_str());
      Cur.Code[PC].Index = It->second;
    }
    if (M.findFunction(Cur.Name))
      return errValue("duplicate function name");
    M.Functions.push_back(std::move(Cur));
    InFunc = false;
    return Error::success();
  }

  std::string_view Source;
  Module M;
  Function Cur;
  bool InFunc = false;
  unsigned LineNo = 0;
  std::map<std::string, uint32_t> Labels;
  std::vector<std::pair<size_t, std::string>> PendingLabelRefs;
};

} // namespace

Expected<Signature> dsu::vtal::parseSignature(std::string_view Text) {
  std::string_view S = trim(Text);
  if (S.empty() || S.front() != '(')
    return Error::make(ErrorCode::EC_Parse, "signature must start with '('");
  size_t Close = S.find(')');
  if (Close == std::string_view::npos)
    return Error::make(ErrorCode::EC_Parse, "missing ')' in signature");

  Signature Sig;
  std::string_view ParamsText = trim(S.substr(1, Close - 1));
  if (!ParamsText.empty()) {
    for (const std::string &P : splitString(ParamsText, ',')) {
      Expected<ValKind> K = parseValKind(P);
      if (!K)
        return K.takeError();
      if (*K == ValKind::VK_Unit)
        return Error::make(ErrorCode::EC_Parse,
                           "unit is not a valid parameter kind");
      Sig.Params.push_back(*K);
    }
  }

  std::string_view Tail = trim(S.substr(Close + 1));
  if (!startsWith(Tail, "->"))
    return Error::make(ErrorCode::EC_Parse, "expected '->' in signature");
  Expected<ValKind> Res = parseValKind(Tail.substr(2));
  if (!Res)
    return Res.takeError();
  Sig.Result = *Res;
  return Sig;
}

Expected<Module> dsu::vtal::assemble(std::string_view Source) {
  return Assembler(Source).run();
}
