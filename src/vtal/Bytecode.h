//===- vtal/Bytecode.h - VTAL binary encoding -----------------*- C++ -*-===//
///
/// \file
/// Serializes VTAL modules to a compact binary form and back.  Patch files
/// embed modules in this encoding; the decoder is defensive (a corrupt or
/// hostile patch must fail cleanly, never crash), and decoded modules are
/// still run through the verifier before linking — decode success conveys
/// no trust, matching the PLDI 2001 stance that only verification does.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_BYTECODE_H
#define DSU_VTAL_BYTECODE_H

#include "support/Error.h"
#include "vtal/Module.h"

#include <string>

namespace dsu {
namespace vtal {

/// Encodes \p M; the result is stable across processes and platforms of
/// the same endianness.
std::string encodeModule(const Module &M);

/// Decodes a module previously produced by encodeModule().
Expected<Module> decodeModule(std::string_view Bytes);

/// Bytes of the encoded form with local/label symbol names stripped —
/// the "stripped" size reported by the code-size experiment (E5).
size_t strippedSize(const Module &M);

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_BYTECODE_H
