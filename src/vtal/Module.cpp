//===- vtal/Module.cpp ----------------------------------------*- C++ -*-===//

#include "vtal/Module.h"

#include "support/StringUtil.h"
#include "types/Type.h"
#include "vtal/Bytecode.h"

using namespace dsu;
using namespace dsu::vtal;

const char *dsu::vtal::valKindName(ValKind K) {
  switch (K) {
  case ValKind::VK_Int:
    return "int";
  case ValKind::VK_Float:
    return "float";
  case ValKind::VK_Bool:
    return "bool";
  case ValKind::VK_Str:
    return "string";
  case ValKind::VK_Unit:
    return "unit";
  }
  return "?";
}

const Type *dsu::vtal::valKindToType(TypeContext &Ctx, ValKind K) {
  switch (K) {
  case ValKind::VK_Int:
    return Ctx.intType();
  case ValKind::VK_Float:
    return Ctx.floatType();
  case ValKind::VK_Bool:
    return Ctx.boolType();
  case ValKind::VK_Str:
    return Ctx.stringType();
  case ValKind::VK_Unit:
    return Ctx.unitType();
  }
  return Ctx.unitType();
}

Expected<ValKind> dsu::vtal::typeToValKind(const Type *Ty) {
  assert(Ty && "null type");
  switch (Ty->kind()) {
  case Type::TK_Int:
    return ValKind::VK_Int;
  case Type::TK_Float:
    return ValKind::VK_Float;
  case Type::TK_Bool:
    return ValKind::VK_Bool;
  case Type::TK_String:
    return ValKind::VK_Str;
  case Type::TK_Unit:
    return ValKind::VK_Unit;
  default:
    return Error::make(ErrorCode::EC_Invalid,
                       "type '%s' has no VTAL scalar representation",
                       Ty->str().c_str());
  }
}

std::string Signature::str() const {
  std::string S = "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      S += ", ";
    S += valKindName(Params[I]);
  }
  S += ") -> ";
  S += valKindName(Result);
  return S;
}

const Type *Signature::toType(TypeContext &Ctx) const {
  std::vector<const Type *> P;
  P.reserve(Params.size());
  for (ValKind K : Params)
    P.push_back(valKindToType(Ctx, K));
  return Ctx.fnType(std::move(P), valKindToType(Ctx, Result));
}

std::string Instruction::str() const {
  std::string S = opcodeName(Op);
  switch (opcodeOperand(Op)) {
  case OperandKind::OK_None:
    break;
  case OperandKind::OK_Int:
    S += formatString(" %lld", static_cast<long long>(IntOp));
    break;
  case OperandKind::OK_Float:
    S += formatString(" %g", FloatOp);
    break;
  case OperandKind::OK_Bool:
    S += IntOp ? " true" : " false";
    break;
  case OperandKind::OK_Str:
    S += " \"" + escapeString(StrOp) + "\"";
    break;
  case OperandKind::OK_Local:
    S += formatString(" $%u", Index);
    break;
  case OperandKind::OK_Label:
    S += formatString(" @%u", Index);
    break;
  case OperandKind::OK_Func:
    S += " " + StrOp;
    break;
  case OperandKind::OK_FuncIdx:
    S += formatString(" #%u", Index);
    break;
  }
  return S;
}

uint32_t Function::findLocal(std::string_view LocalName) const {
  for (uint32_t I = 0; I != Locals.size(); ++I)
    if (Locals[I].Name == LocalName)
      return I;
  return UINT32_MAX;
}

const Function *Module::findFunction(std::string_view FnName) const {
  for (const Function &F : Functions)
    if (F.Name == FnName)
      return &F;
  return nullptr;
}

const Import *Module::findImport(std::string_view ImpName) const {
  for (const Import &I : Imports)
    if (I.Name == ImpName)
      return &I;
  return nullptr;
}

uint32_t Module::functionIndex(std::string_view FnName) const {
  for (uint32_t I = 0; I != Functions.size(); ++I)
    if (Functions[I].Name == FnName)
      return I;
  return UINT32_MAX;
}

uint32_t Module::importIndex(std::string_view ImpName) const {
  for (uint32_t I = 0; I != Imports.size(); ++I)
    if (Imports[I].Name == ImpName)
      return I;
  return UINT32_MAX;
}

uint64_t Module::fingerprint() const {
  return fingerprintString(encodeModule(*this));
}

size_t Module::totalInstructions() const {
  size_t N = 0;
  for (const Function &F : Functions)
    N += F.Code.size();
  return N;
}

std::string Module::str() const {
  std::string S = "module " + Name + "\n";
  for (const Import &I : Imports)
    S += "import " + I.Name + " : " + I.Sig.str() + "\n";
  for (const Function &F : Functions) {
    S += "func " + F.Name + " (";
    for (unsigned I = 0; I != F.numParams(); ++I) {
      if (I)
        S += ", ";
      S += F.Locals[I].Name + ": " +
           std::string(valKindName(F.Locals[I].Kind));
    }
    S += ") -> ";
    S += valKindName(F.Sig.Result);
    S += " {\n";
    if (F.Locals.size() > F.numParams()) {
      S += "  locals (";
      for (size_t I = F.numParams(); I != F.Locals.size(); ++I) {
        if (I != F.numParams())
          S += ", ";
        S += F.Locals[I].Name + ": " +
             std::string(valKindName(F.Locals[I].Kind));
      }
      S += ")\n";
    }
    for (size_t PC = 0; PC != F.Code.size(); ++PC)
      S += formatString("  %4zu: %s\n", PC, F.Code[PC].str().c_str());
    S += "}\n";
  }
  return S;
}
