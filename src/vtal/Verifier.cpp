//===- vtal/Verifier.cpp --------------------------------------*- C++ -*-===//

#include "vtal/Verifier.h"

#include "support/StringUtil.h"
#include "trace/Trace.h"

#include <deque>
#include <map>
#include <optional>
#include <set>

using namespace dsu;
using namespace dsu::vtal;

namespace {

using AbsStack = std::vector<ValKind>;

/// Per-function verification context.
class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F) : M(M), F(F) {}

  Error run(size_t &InstructionsChecked) {
    if (F.Code.empty())
      return err(0, "function has no code");
    if (F.Locals.size() < F.numParams())
      return err(0, "fewer locals than parameters");
    for (unsigned I = 0; I != F.numParams(); ++I)
      if (F.Locals[I].Kind != F.Sig.Params[I])
        return err(0, "parameter local kind disagrees with signature");

    // Seed: entry with the empty stack.
    States.resize(F.Code.size());
    States[0] = AbsStack();
    Worklist.push_back(0);

    while (!Worklist.empty()) {
      uint32_t PC = Worklist.front();
      Worklist.pop_front();
      AbsStack Stack = *States[PC];
      ++InstructionsChecked;
      if (Error E = step(PC, Stack))
        return E;
    }
    return Error::success();
  }

private:
  Error err(uint32_t PC, const char *Msg) {
    // Naming the rejected instruction (mnemonic + operand) saves the
    // patch author a round-trip through the disassembler.
    if (PC < F.Code.size())
      return Error::make(ErrorCode::EC_Verify, "%s:%s:pc%u: %s [%s]",
                         M.Name.c_str(), F.Name.c_str(), PC, Msg,
                         F.Code[PC].str().c_str());
    return Error::make(ErrorCode::EC_Verify, "%s:%s:pc%u: %s",
                       M.Name.c_str(), F.Name.c_str(), PC, Msg);
  }

  /// Pops one operand, checking its kind.
  Error pop(AbsStack &Stack, uint32_t PC, ValKind Want) {
    if (Stack.empty())
      return err(PC, "operand stack underflow");
    if (Stack.back() != Want)
      return Error::make(
          ErrorCode::EC_Verify,
          "%s:%s:pc%u: expected %s on stack, found %s [%s]", M.Name.c_str(),
          F.Name.c_str(), PC, valKindName(Want), valKindName(Stack.back()),
          PC < F.Code.size() ? F.Code[PC].str().c_str() : "?");
    Stack.pop_back();
    return Error::success();
  }

  /// Propagates \p Stack into \p Target; all paths must agree exactly.
  Error flowTo(uint32_t PC, uint32_t Target, const AbsStack &Stack) {
    if (Target >= F.Code.size())
      return err(PC, "control flow past end of function (missing ret?)");
    if (!States[Target]) {
      States[Target] = Stack;
      Worklist.push_back(Target);
      return Error::success();
    }
    if (*States[Target] != Stack)
      return err(Target, "inconsistent stack shapes at control-flow join");
    return Error::success();
  }

  Error step(uint32_t PC, AbsStack Stack) {
    const Instruction &I = F.Code[PC];
    auto BinOp = [&](ValKind In, ValKind Out) -> Error {
      if (Error E = pop(Stack, PC, In))
        return E;
      if (Error E = pop(Stack, PC, In))
        return E;
      Stack.push_back(Out);
      return Error::success();
    };
    auto UnOp = [&](ValKind In, ValKind Out) -> Error {
      if (Error E = pop(Stack, PC, In))
        return E;
      Stack.push_back(Out);
      return Error::success();
    };

    switch (I.Op) {
    case Opcode::PushI:
      Stack.push_back(ValKind::VK_Int);
      break;
    case Opcode::PushF:
      Stack.push_back(ValKind::VK_Float);
      break;
    case Opcode::PushB:
      Stack.push_back(ValKind::VK_Bool);
      break;
    case Opcode::PushS:
      Stack.push_back(ValKind::VK_Str);
      break;

    case Opcode::Load:
      if (I.Index >= F.Locals.size())
        return err(PC, "local index out of range");
      Stack.push_back(F.Locals[I.Index].Kind);
      break;
    case Opcode::Store:
      if (I.Index >= F.Locals.size())
        return err(PC, "local index out of range");
      if (Error E = pop(Stack, PC, F.Locals[I.Index].Kind))
        return E;
      break;

    case Opcode::Pop:
      if (Stack.empty())
        return err(PC, "pop on empty stack");
      Stack.pop_back();
      break;
    case Opcode::Dup:
      if (Stack.empty())
        return err(PC, "dup on empty stack");
      Stack.push_back(Stack.back());
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      if (Error E = BinOp(ValKind::VK_Int, ValKind::VK_Int))
        return E;
      break;
    case Opcode::Neg:
      if (Error E = UnOp(ValKind::VK_Int, ValKind::VK_Int))
        return E;
      break;

    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      if (Error E = BinOp(ValKind::VK_Float, ValKind::VK_Float))
        return E;
      break;
    case Opcode::FNeg:
      if (Error E = UnOp(ValKind::VK_Float, ValKind::VK_Float))
        return E;
      break;

    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
      if (Error E = BinOp(ValKind::VK_Int, ValKind::VK_Bool))
        return E;
      break;

    case Opcode::FEq:
    case Opcode::FNe:
    case Opcode::FLt:
    case Opcode::FLe:
    case Opcode::FGt:
    case Opcode::FGe:
      if (Error E = BinOp(ValKind::VK_Float, ValKind::VK_Bool))
        return E;
      break;

    case Opcode::And:
    case Opcode::Or:
      if (Error E = BinOp(ValKind::VK_Bool, ValKind::VK_Bool))
        return E;
      break;
    case Opcode::Not:
      if (Error E = UnOp(ValKind::VK_Bool, ValKind::VK_Bool))
        return E;
      break;

    case Opcode::I2F:
      if (Error E = UnOp(ValKind::VK_Int, ValKind::VK_Float))
        return E;
      break;
    case Opcode::F2I:
      if (Error E = UnOp(ValKind::VK_Float, ValKind::VK_Int))
        return E;
      break;

    case Opcode::SCat:
      if (Error E = BinOp(ValKind::VK_Str, ValKind::VK_Str))
        return E;
      break;
    case Opcode::SLen:
      if (Error E = UnOp(ValKind::VK_Str, ValKind::VK_Int))
        return E;
      break;
    case Opcode::SEq:
      if (Error E = BinOp(ValKind::VK_Str, ValKind::VK_Bool))
        return E;
      break;
    case Opcode::SSub:
      // (str, start:int, len:int) -> str
      if (Error E = pop(Stack, PC, ValKind::VK_Int))
        return E;
      if (Error E = pop(Stack, PC, ValKind::VK_Int))
        return E;
      if (Error E = pop(Stack, PC, ValKind::VK_Str))
        return E;
      Stack.push_back(ValKind::VK_Str);
      break;
    case Opcode::SFind:
      if (Error E = BinOp(ValKind::VK_Str, ValKind::VK_Int))
        return E;
      break;

    case Opcode::Br:
      return flowTo(PC, I.Index, Stack);

    case Opcode::BrIf:
      if (Error E = pop(Stack, PC, ValKind::VK_Bool))
        return E;
      if (Error E = flowTo(PC, I.Index, Stack))
        return E;
      return flowTo(PC, PC + 1, Stack);

    case Opcode::Ret: {
      if (F.Sig.Result == ValKind::VK_Unit) {
        if (!Stack.empty())
          return err(PC, "non-empty stack at return from unit function");
        return Error::success();
      }
      if (Stack.size() != 1 || Stack.back() != F.Sig.Result)
        return Error::make(ErrorCode::EC_Verify,
                           "%s:%s:pc%u: return requires exactly one %s on "
                           "the stack [%s]",
                           M.Name.c_str(), F.Name.c_str(), PC,
                           valKindName(F.Sig.Result), I.str().c_str());
      return Error::success();
    }

    case Opcode::Call: {
      const Signature *Sig = nullptr;
      if (const Function *Callee = M.findFunction(I.StrOp))
        Sig = &Callee->Sig;
      else if (const Import *Imp = M.findImport(I.StrOp))
        Sig = &Imp->Sig;
      if (!Sig)
        return Error::make(ErrorCode::EC_Verify,
                           "%s:%s:pc%u: call to unknown function '%s' [%s]",
                           M.Name.c_str(), F.Name.c_str(), PC,
                           I.StrOp.c_str(), I.str().c_str());
      // Arguments were pushed left-to-right, so pop them right-to-left.
      for (size_t A = Sig->Params.size(); A-- > 0;)
        if (Error E = pop(Stack, PC, Sig->Params[A]))
          return E;
      if (Sig->Result != ValKind::VK_Unit)
        Stack.push_back(Sig->Result);
      break;
    }

    case Opcode::CallFn:
    case Opcode::CallHost:
      // Resolved call forms are an artifact of the load-time link pass
      // (vtal/Resolve.h); a shipped module that carries them is forged.
      return err(PC, "resolved call form in unlinked module");
    }

    // Default fallthrough for non-terminators.
    return flowTo(PC, PC + 1, Stack);
  }

  const Module &M;
  const Function &F;
  std::vector<std::optional<AbsStack>> States;
  std::deque<uint32_t> Worklist;
};

} // namespace

Error dsu::vtal::verifyModule(const Module &M, VerifyStats *Stats) {
  VerifyStats Local;
  VerifyStats &S = Stats ? *Stats : Local;

  std::set<std::string> Names;
  for (const Function &F : M.Functions)
    if (!Names.insert(F.Name).second)
      return Error::make(ErrorCode::EC_Verify,
                         "%s: duplicate function '%s'", M.Name.c_str(),
                         F.Name.c_str());
  for (const Import &I : M.Imports)
    if (Names.count(I.Name))
      return Error::make(ErrorCode::EC_Verify,
                         "%s: import '%s' collides with a function",
                         M.Name.c_str(), I.Name.c_str());

  for (const Function &F : M.Functions) {
    ++S.FunctionsChecked;
    // One flight-recorder span per function, named after it: the
    // per-update trace shows which function the verifier spent its
    // time on (names are interned — they outlive the module).
    trace::Span Sp("verify", trace::intern(M.Name + "." + F.Name));
    size_t Before = S.InstructionsChecked;
    if (Error E = FunctionVerifier(M, F).run(S.InstructionsChecked))
      return E;
    Sp.setArg(S.InstructionsChecked - Before);
  }
  return Error::success();
}
