//===- vtal/Resolve.cpp ---------------------------------------*- C++ -*-===//

#include "vtal/Resolve.h"

#include <map>

using namespace dsu;
using namespace dsu::vtal;

Expected<ResolvedModule> dsu::vtal::linkModule(const Module &M) {
  ResolvedModule R;
  R.Src = &M;
  R.Functions.reserve(M.Functions.size());

  // Intern string literals: one pooled Value per distinct literal, so
  // repeated `push.s` of the same text share a payload.
  std::map<std::string, uint32_t> StrIds;
  auto internStr = [&](const std::string &S) -> uint32_t {
    auto [It, Inserted] =
        StrIds.emplace(S, static_cast<uint32_t>(R.StrPool.size()));
    if (Inserted)
      R.StrPool.push_back(Value::makeStr(S));
    return It->second;
  };

  for (const Function &F : M.Functions) {
    if (F.Sig.Params.size() > F.Locals.size())
      return Error::make(ErrorCode::EC_Verify,
                         "%s:%s: fewer locals than parameters",
                         M.Name.c_str(), F.Name.c_str());
    ResolvedFunction RF;
    RF.Src = &F;
    RF.NumParams = F.numParams();
    RF.NumLocals = static_cast<uint32_t>(F.Locals.size());
    RF.Result = F.Sig.Result;
    RF.LocalKinds.reserve(F.Locals.size());
    for (const LocalVar &L : F.Locals)
      RF.LocalKinds.push_back(L.Kind);

    RF.Code.reserve(F.Code.size());
    for (size_t PC = 0; PC != F.Code.size(); ++PC) {
      const Instruction &I = F.Code[PC];
      ResolvedInst RI;
      RI.Op = I.Op;
      switch (opcodeOperand(I.Op)) {
      case OperandKind::OK_None:
        break;
      case OperandKind::OK_Int:
      case OperandKind::OK_Bool:
        RI.IntOp = I.IntOp;
        break;
      case OperandKind::OK_Float:
        RI.FloatOp = I.FloatOp;
        break;
      case OperandKind::OK_Str:
        RI.Index = internStr(I.StrOp);
        break;
      case OperandKind::OK_Local:
        if (I.Index >= F.Locals.size())
          return Error::make(ErrorCode::EC_Verify,
                             "%s:%s:pc%zu: local index out of range",
                             M.Name.c_str(), F.Name.c_str(), PC);
        RI.Index = I.Index;
        break;
      case OperandKind::OK_Label:
        if (I.Index >= F.Code.size())
          return Error::make(ErrorCode::EC_Verify,
                             "%s:%s:pc%zu: branch target out of range",
                             M.Name.c_str(), F.Name.c_str(), PC);
        RI.Index = I.Index;
        break;
      case OperandKind::OK_Func: {
        // The link step proper: a callee name binds to a module-local
        // function first (verifyModule guarantees names are disjoint),
        // then to an import ordinal.
        uint32_t FnIdx = M.functionIndex(I.StrOp);
        if (FnIdx != UINT32_MAX) {
          RI.Op = Opcode::CallFn;
          RI.Index = FnIdx;
          break;
        }
        uint32_t Ordinal = M.importIndex(I.StrOp);
        if (Ordinal != UINT32_MAX) {
          RI.Op = Opcode::CallHost;
          RI.Index = Ordinal;
          break;
        }
        return Error::make(ErrorCode::EC_Link,
                           "%s:%s:pc%zu: call to unknown function '%s'",
                           M.Name.c_str(), F.Name.c_str(), PC,
                           I.StrOp.c_str());
      }
      case OperandKind::OK_FuncIdx:
        return Error::make(ErrorCode::EC_Verify,
                           "%s:%s:pc%zu: module already contains resolved "
                           "opcode '%s'",
                           M.Name.c_str(), F.Name.c_str(), PC,
                           opcodeName(I.Op));
      }
      RF.Code.push_back(RI);
    }
    R.Functions.push_back(std::move(RF));
  }
  return R;
}
