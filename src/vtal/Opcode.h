//===- vtal/Opcode.h - VTAL instruction set -------------------*- C++ -*-===//
///
/// \file
/// Opcodes of VTAL, the verifiable typed assembly-like language that plays
/// the role TAL/x86 plays in the PLDI 2001 system: patch code shipped in
/// VTAL carries enough typing structure to be machine-checked before it is
/// dynamically linked into the running program.
///
/// VTAL is a typed stack machine over five scalar kinds (int, float, bool,
/// string, unit) with named locals, structured function signatures, and
/// direct calls to module-local or imported functions.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_VTAL_OPCODE_H
#define DSU_VTAL_OPCODE_H

#include <cstdint>

namespace dsu {
namespace vtal {

enum class Opcode : uint8_t {
  // Constants.
  PushI, ///< push.i <imm>      : push integer literal
  PushF, ///< push.f <imm>      : push float literal
  PushB, ///< push.b true|false : push boolean literal
  PushS, ///< push.s "<text>"   : push string literal

  // Locals and stack shuffling.
  Load,  ///< load <local>      : push local
  Store, ///< store <local>     : pop into local
  Pop,   ///< pop               : discard top
  Dup,   ///< dup               : duplicate top

  // Integer arithmetic.
  Add,
  Sub,
  Mul,
  Div, ///< traps on divide by zero
  Rem, ///< traps on divide by zero
  Neg,

  // Float arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,

  // Integer comparisons (push bool).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,

  // Float comparisons (push bool).
  FEq,
  FNe,
  FLt,
  FLe,
  FGt,
  FGe,

  // Booleans.
  And,
  Or,
  Not,

  // Conversions.
  I2F,
  F2I,

  // Strings.
  SCat,  ///< concatenate two strings
  SLen,  ///< string length as int
  SEq,   ///< string equality as bool
  SSub,  ///< substring: pops (s, start, len), pushes the slice (clamped)
  SFind, ///< find: pops (haystack, needle), pushes first index or -1

  // Control.
  Br,   ///< br <label>    : unconditional jump
  BrIf, ///< brif <label>  : pop bool, jump when true
  Ret,  ///< return; stack must hold exactly the result
  Call, ///< call <fn>     : pop args, push result

  // Resolved call forms.  Produced only by the load-time link pass
  // (vtal/Resolve.h) after verification; they carry a dense index instead
  // of a callee name so the execution engine dispatches without string
  // lookups.  They never appear in shipped text or bytecode: the
  // assembler, decoder and verifier all reject them.
  CallFn,   ///< call.fn #idx   : direct call to Functions[idx]
  CallHost, ///< call.host #idx : call the host binding of Imports[idx]
};

/// What a textual/encoded operand of an opcode looks like.
enum class OperandKind : uint8_t {
  OK_None,
  OK_Int,   ///< 64-bit integer immediate
  OK_Float, ///< 64-bit float immediate
  OK_Bool,  ///< boolean immediate
  OK_Str,   ///< string immediate
  OK_Local,   ///< local-variable reference (by name in text, index encoded)
  OK_Label,   ///< branch target (by name in text, index encoded)
  OK_Func,    ///< callee name
  OK_FuncIdx, ///< resolved callee: function index or import ordinal
};

/// Returns the assembler mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns the operand shape of \p Op.
OperandKind opcodeOperand(Opcode Op);

/// True for the resolved call forms, which exist only inside a linked
/// execution image — the shipping surfaces (assembler text, bytecode,
/// verifier input) must reject them.
constexpr bool opcodeIsResolved(Opcode Op) {
  return Op == Opcode::CallFn || Op == Opcode::CallHost;
}

/// Number of opcodes (for encode/decode validation).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::CallHost) + 1;

} // namespace vtal
} // namespace dsu

#endif // DSU_VTAL_OPCODE_H
