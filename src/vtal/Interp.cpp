//===- vtal/Interp.cpp ----------------------------------------*- C++ -*-===//

#include "vtal/Interp.h"

#include "support/StringUtil.h"

using namespace dsu;
using namespace dsu::vtal;

namespace {
constexpr uint64_t DefaultFuel = 64ull << 20;
constexpr unsigned MaxCallDepth = 256;
} // namespace

std::string Value::str() const {
  switch (Kind) {
  case ValKind::VK_Int:
    return formatString("int(%lld)", static_cast<long long>(I));
  case ValKind::VK_Float:
    return formatString("float(%g)", F);
  case ValKind::VK_Bool:
    return B ? "bool(true)" : "bool(false)";
  case ValKind::VK_Str:
    return "string(\"" + escapeString(S) + "\")";
  case ValKind::VK_Unit:
    return "unit";
  }
  return "?";
}

Interpreter::Interpreter(const Module &M, uint64_t Fuel)
    : M(M), FuelLimit(Fuel ? Fuel : DefaultFuel) {}

Error Interpreter::bindImport(const std::string &Name, HostFn Fn) {
  if (!M.findImport(Name))
    return Error::make(ErrorCode::EC_Link,
                       "module '%s' declares no import named '%s'",
                       M.Name.c_str(), Name.c_str());
  Imports[Name] = std::move(Fn);
  return Error::success();
}

Expected<Value> Interpreter::call(const std::string &FnName,
                                  const std::vector<Value> &Args) {
  const Function *F = M.findFunction(FnName);
  if (!F)
    return Error::make(ErrorCode::EC_Invalid, "no function '%s' in '%s'",
                       FnName.c_str(), M.Name.c_str());
  if (Args.size() != F->Sig.Params.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "call to '%s': expected %zu arguments, got %zu",
                       FnName.c_str(), F->Sig.Params.size(), Args.size());
  for (size_t I = 0; I != Args.size(); ++I)
    if (Args[I].kind() != F->Sig.Params[I])
      return Error::make(ErrorCode::EC_Invalid,
                         "call to '%s': argument %zu has kind %s, want %s",
                         FnName.c_str(), I, valKindName(Args[I].kind()),
                         valKindName(F->Sig.Params[I]));

  uint64_t Fuel = FuelLimit;
  Expected<Value> Result = invoke(*F, Args, Fuel, 0);
  LastFuelUsed = FuelLimit - Fuel;
  return Result;
}

Expected<Value> Interpreter::invoke(const Function &F,
                                    const std::vector<Value> &Args,
                                    uint64_t &Fuel, unsigned Depth) {
  if (Depth > MaxCallDepth)
    return Error::make(ErrorCode::EC_Invalid,
                       "call depth limit exceeded in '%s'", F.Name.c_str());

  std::vector<Value> Locals(F.Locals.size());
  for (size_t I = 0; I != Args.size(); ++I)
    Locals[I] = Args[I];
  // Non-parameter locals start zero-initialized at their declared kind.
  for (size_t I = Args.size(); I != Locals.size(); ++I) {
    switch (F.Locals[I].Kind) {
    case ValKind::VK_Int:
      Locals[I] = Value::makeInt(0);
      break;
    case ValKind::VK_Float:
      Locals[I] = Value::makeFloat(0.0);
      break;
    case ValKind::VK_Bool:
      Locals[I] = Value::makeBool(false);
      break;
    case ValKind::VK_Str:
      Locals[I] = Value::makeStr("");
      break;
    case ValKind::VK_Unit:
      break;
    }
  }

  std::vector<Value> Stack;
  Stack.reserve(16);
  auto popV = [&Stack]() {
    Value V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  };

  uint32_t PC = 0;
  while (true) {
    if (Fuel == 0)
      return Error::make(ErrorCode::EC_Invalid,
                         "fuel exhausted in '%s' (infinite loop in patch "
                         "code?)",
                         F.Name.c_str());
    --Fuel;
    assert(PC < F.Code.size() && "pc out of range; module not verified?");
    const Instruction &I = F.Code[PC];

    switch (I.Op) {
    case Opcode::PushI:
      Stack.push_back(Value::makeInt(I.IntOp));
      break;
    case Opcode::PushF:
      Stack.push_back(Value::makeFloat(I.FloatOp));
      break;
    case Opcode::PushB:
      Stack.push_back(Value::makeBool(I.IntOp != 0));
      break;
    case Opcode::PushS:
      Stack.push_back(Value::makeStr(I.StrOp));
      break;

    case Opcode::Load:
      Stack.push_back(Locals[I.Index]);
      break;
    case Opcode::Store:
      Locals[I.Index] = popV();
      break;
    case Opcode::Pop:
      Stack.pop_back();
      break;
    case Opcode::Dup:
      Stack.push_back(Stack.back());
      break;

#define INT_BINOP(OPC, EXPR)                                                 \
  case Opcode::OPC: {                                                        \
    int64_t B = popV().asInt();                                              \
    int64_t A = popV().asInt();                                              \
    (void)A;                                                                 \
    (void)B;                                                                 \
    Stack.push_back(EXPR);                                                   \
    break;                                                                   \
  }
      INT_BINOP(Add, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) + static_cast<uint64_t>(B))))
      INT_BINOP(Sub, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) - static_cast<uint64_t>(B))))
      INT_BINOP(Mul, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) * static_cast<uint64_t>(B))))
      INT_BINOP(Eq, Value::makeBool(A == B))
      INT_BINOP(Ne, Value::makeBool(A != B))
      INT_BINOP(Lt, Value::makeBool(A < B))
      INT_BINOP(Le, Value::makeBool(A <= B))
      INT_BINOP(Gt, Value::makeBool(A > B))
      INT_BINOP(Ge, Value::makeBool(A >= B))
#undef INT_BINOP

    case Opcode::Div:
    case Opcode::Rem: {
      int64_t B = popV().asInt();
      int64_t A = popV().asInt();
      if (B == 0)
        return Error::make(ErrorCode::EC_Invalid,
                           "division by zero in '%s' at pc %u",
                           F.Name.c_str(), PC);
      if (A == INT64_MIN && B == -1)
        return Error::make(ErrorCode::EC_Invalid,
                           "integer overflow in division in '%s' at pc %u",
                           F.Name.c_str(), PC);
      Stack.push_back(Value::makeInt(I.Op == Opcode::Div ? A / B : A % B));
      break;
    }
    case Opcode::Neg: {
      int64_t A = popV().asInt();
      Stack.push_back(
          Value::makeInt(static_cast<int64_t>(-static_cast<uint64_t>(A))));
      break;
    }

#define FLT_BINOP(OPC, EXPR)                                                 \
  case Opcode::OPC: {                                                        \
    double B = popV().asFloat();                                             \
    double A = popV().asFloat();                                             \
    (void)A;                                                                 \
    (void)B;                                                                 \
    Stack.push_back(EXPR);                                                   \
    break;                                                                   \
  }
      FLT_BINOP(FAdd, Value::makeFloat(A + B))
      FLT_BINOP(FSub, Value::makeFloat(A - B))
      FLT_BINOP(FMul, Value::makeFloat(A * B))
      FLT_BINOP(FDiv, Value::makeFloat(A / B))
      FLT_BINOP(FEq, Value::makeBool(A == B))
      FLT_BINOP(FNe, Value::makeBool(A != B))
      FLT_BINOP(FLt, Value::makeBool(A < B))
      FLT_BINOP(FLe, Value::makeBool(A <= B))
      FLT_BINOP(FGt, Value::makeBool(A > B))
      FLT_BINOP(FGe, Value::makeBool(A >= B))
#undef FLT_BINOP

    case Opcode::FNeg:
      Stack.push_back(Value::makeFloat(-popV().asFloat()));
      break;

    case Opcode::And: {
      bool B = popV().asBool();
      bool A = popV().asBool();
      Stack.push_back(Value::makeBool(A && B));
      break;
    }
    case Opcode::Or: {
      bool B = popV().asBool();
      bool A = popV().asBool();
      Stack.push_back(Value::makeBool(A || B));
      break;
    }
    case Opcode::Not:
      Stack.push_back(Value::makeBool(!popV().asBool()));
      break;

    case Opcode::I2F:
      Stack.push_back(Value::makeFloat(static_cast<double>(popV().asInt())));
      break;
    case Opcode::F2I:
      Stack.push_back(Value::makeInt(static_cast<int64_t>(popV().asFloat())));
      break;

    case Opcode::SCat: {
      Value B = popV();
      Value A = popV();
      Stack.push_back(Value::makeStr(A.asStr() + B.asStr()));
      break;
    }
    case Opcode::SLen:
      Stack.push_back(
          Value::makeInt(static_cast<int64_t>(popV().asStr().size())));
      break;
    case Opcode::SEq: {
      Value B = popV();
      Value A = popV();
      Stack.push_back(Value::makeBool(A.asStr() == B.asStr()));
      break;
    }
    case Opcode::SSub: {
      int64_t Len = popV().asInt();
      int64_t Start = popV().asInt();
      Value S = popV();
      const std::string &Str = S.asStr();
      // Clamped semantics: out-of-range slices yield the empty overlap
      // instead of trapping, so patch code stays total on string ops.
      int64_t N = static_cast<int64_t>(Str.size());
      if (Start < 0)
        Start = 0;
      if (Start > N)
        Start = N;
      if (Len < 0)
        Len = 0;
      if (Start + Len > N)
        Len = N - Start;
      Stack.push_back(Value::makeStr(
          Str.substr(static_cast<size_t>(Start), static_cast<size_t>(Len))));
      break;
    }
    case Opcode::SFind: {
      Value Needle = popV();
      Value Hay = popV();
      size_t Pos = Hay.asStr().find(Needle.asStr());
      Stack.push_back(Value::makeInt(
          Pos == std::string::npos ? -1 : static_cast<int64_t>(Pos)));
      break;
    }

    case Opcode::Br:
      PC = I.Index;
      continue;
    case Opcode::BrIf:
      if (popV().asBool()) {
        PC = I.Index;
        continue;
      }
      break;

    case Opcode::Ret:
      if (F.Sig.Result == ValKind::VK_Unit)
        return Value::makeUnit();
      return popV();

    case Opcode::Call: {
      const Function *Callee = M.findFunction(I.StrOp);
      const Import *Imp = Callee ? nullptr : M.findImport(I.StrOp);
      const Signature &Sig = Callee ? Callee->Sig : Imp->Sig;
      std::vector<Value> CallArgs(Sig.Params.size());
      for (size_t A = Sig.Params.size(); A-- > 0;)
        CallArgs[A] = popV();

      Expected<Value> Result = Error::make(ErrorCode::EC_Link, "unbound");
      if (Callee) {
        Result = invoke(*Callee, CallArgs, Fuel, Depth + 1);
      } else {
        auto It = Imports.find(I.StrOp);
        if (It == Imports.end())
          return Error::make(ErrorCode::EC_Link,
                             "import '%s' was never bound", I.StrOp.c_str());
        Result = It->second(CallArgs);
        if (Result && Result->kind() != Sig.Result)
          return Error::make(ErrorCode::EC_Link,
                             "host import '%s' returned %s, expected %s",
                             I.StrOp.c_str(),
                             valKindName(Result->kind()),
                             valKindName(Sig.Result));
      }
      if (!Result)
        return Result;
      if (Sig.Result != ValKind::VK_Unit)
        Stack.push_back(std::move(*Result));
      break;
    }
    }
    ++PC;
  }
}
