//===- vtal/Interp.cpp ----------------------------------------*- C++ -*-===//

#include "vtal/Interp.h"

#include "support/StringUtil.h"
#include "vtal/native/RawValue.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif
#ifndef DSU_VTAL_NO_PROFILER
#include "trace/Profile.h"

#include <chrono>
#endif

using namespace dsu;
using namespace dsu::vtal;

namespace {
constexpr uint64_t DefaultFuel = 64ull << 20;
constexpr unsigned MaxCallDepth = 256;
} // namespace

Interpreter::Interpreter(const Module &M, uint64_t Fuel)
    : M(M), FuelLimit(Fuel ? Fuel : DefaultFuel) {
  Expected<ResolvedModule> Linked = linkModule(M);
  if (Linked) {
    RM = std::move(*Linked);
  } else {
    // Defer: every call() reports the link failure instead of executing.
    // Unverified modules with dangling callee names land here — the
    // engine must reject them cleanly, never dereference them.
    LinkErr = Linked.takeError();
  }
  Imports.resize(M.Imports.size());
}

Error Interpreter::bindImport(const std::string &Name, HostFn Fn) {
  uint32_t Ordinal = M.importIndex(Name);
  if (Ordinal == UINT32_MAX)
    return Error::make(ErrorCode::EC_Link,
                       "module '%s' declares no import named '%s'",
                       M.Name.c_str(), Name.c_str());
  Imports[Ordinal] = std::move(Fn);
  return Error::success();
}

Expected<uint32_t>
Interpreter::functionIndex(const std::string &FnName) const {
  uint32_t Idx = M.functionIndex(FnName);
  if (Idx == UINT32_MAX)
    return Error::make(ErrorCode::EC_Invalid, "no function '%s' in '%s'",
                       FnName.c_str(), M.Name.c_str());
  return Idx;
}

Expected<Value> Interpreter::call(const std::string &FnName,
                                  const std::vector<Value> &Args) {
  uint32_t Idx = M.functionIndex(FnName);
  if (Idx == UINT32_MAX)
    return Error::make(ErrorCode::EC_Invalid, "no function '%s' in '%s'",
                       FnName.c_str(), M.Name.c_str());
  return callIndex(Idx, Args);
}

Expected<Value> Interpreter::callIndex(uint32_t FnIndex,
                                       const std::vector<Value> &Args) {
  if (FnIndex >= M.Functions.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "function index %u out of range in '%s'", FnIndex,
                       M.Name.c_str());
  const Function &F = M.Functions[FnIndex];
  if (Args.size() != F.Sig.Params.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "call to '%s': expected %zu arguments, got %zu",
                       F.Name.c_str(), F.Sig.Params.size(), Args.size());
  for (size_t I = 0; I != Args.size(); ++I)
    if (Args[I].kind() != F.Sig.Params[I])
      return Error::make(ErrorCode::EC_Invalid,
                         "call to '%s': argument %zu has kind %s, want %s",
                         F.Name.c_str(), I, valKindName(Args[I].kind()),
                         valKindName(F.Sig.Params[I]));
  if (LinkErr)
    return LinkErr;

#ifndef DSU_VTAL_NO_PROFILER
  // Sampled activation wall time: every SampleEvery-th entry into a
  // function through this public boundary is timed (nested CallFn
  // activations are not — the fuel counters carry the self-cost split).
  const bool Sampled =
      Prof && (Prof->fn(FnIndex).Calls.load(std::memory_order_relaxed) %
               trace::ModuleProfile::SampleEvery) == 0;
  std::chrono::steady_clock::time_point SampleT0;
  if (Sampled)
    SampleT0 = std::chrono::steady_clock::now();
#endif

  uint64_t Fuel = FuelLimit;
#ifndef DSU_VTAL_NO_NATIVE
  // Tier dispatch: a function compiled into the attached image starts in
  // native code; everything else (and everything, when no image is
  // attached) starts in the interpreter.  Both paths share the fuel
  // counter, the trap vocabulary, and this boundary's profiling.
  Expected<Value> Result = (Img && Img->compiled(FnIndex))
                               ? runNative(FnIndex, Args, Fuel)
                               : run(FnIndex, Args, Fuel);
#else
  Expected<Value> Result = run(FnIndex, Args, Fuel);
#endif
  LastFuelUsed = FuelLimit - Fuel;

#ifndef DSU_VTAL_NO_PROFILER
  if (Prof) {
    trace::FnProfile &FP = Prof->fn(FnIndex);
    if (!Result)
      FP.Traps.fetch_add(1, std::memory_order_relaxed);
    if (Sampled) {
      uint64_t Us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - SampleT0)
              .count());
      FP.SampledUs.fetch_add(Us, std::memory_order_relaxed);
      FP.Samples.fetch_add(1, std::memory_order_relaxed);
    }
  }
#endif
  return Result;
}

void Interpreter::pushZeroLocals(const ResolvedFunction &RF, uint32_t From) {
  for (uint32_t L = From; L != RF.NumLocals; ++L) {
    switch (RF.LocalKinds[L]) {
    case ValKind::VK_Int:
      Arena.push_back(Value::makeInt(0));
      break;
    case ValKind::VK_Float:
      Arena.push_back(Value::makeFloat(0.0));
      break;
    case ValKind::VK_Bool:
      Arena.push_back(Value::makeBool(false));
      break;
    case ValKind::VK_Str:
      Arena.push_back(Value::emptyStr());
      break;
    case ValKind::VK_Unit:
      Arena.push_back(Value());
      break;
    }
  }
}

Expected<Value> Interpreter::run(uint32_t FnIndex,
                                 const std::vector<Value> &Args,
                                 uint64_t &Fuel) {
  // Entry frame: arguments become locals [0, N); the remaining locals are
  // zero-initialized at their declared kind.
  const ResolvedFunction &RF = RM.Functions[FnIndex];
  uint32_t Base = static_cast<uint32_t>(Arena.size());
  Frames.push_back(Frame{FnIndex, 0, Base});
  for (const Value &A : Args)
    Arena.push_back(A);
  pushZeroLocals(RF, static_cast<uint32_t>(Args.size()));
  return exec(Fuel, /*DepthBias=*/0, /*CountEntry=*/true);
}

Expected<Value> Interpreter::resumeAt(uint32_t FnIndex, uint32_t PC,
                                      const uint64_t *FrameSlots,
                                      const ValKind *StackKinds,
                                      uint32_t StackDepth, uint64_t &Fuel,
                                      uint32_t DepthBias) {
  if (LinkErr)
    return LinkErr;
  if (FnIndex >= RM.Functions.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "resume: function index %u out of range in '%s'",
                       FnIndex, M.Name.c_str());
  const ResolvedFunction &RF = RM.Functions[FnIndex];
  if (PC >= RF.Code.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "resume: pc %u out of range in '%s'", PC,
                       RF.Src->Name.c_str());
  // Materialize the native frame on the arena: locals first, then the
  // operand stack, exactly the layout a same-depth interpreted frame
  // would have.  The dispatch loop takes over at PC with the same fuel —
  // re-execution from here is indistinguishable from never having run
  // natively at all (DESIGN.md §17's parity argument).
  uint32_t Base = static_cast<uint32_t>(Arena.size());
  Frames.push_back(Frame{FnIndex, PC, Base});
  for (uint32_t L = 0; L != RF.NumLocals; ++L)
    Arena.push_back(native::rawToValue(RF.LocalKinds[L], FrameSlots[L]));
  for (uint32_t S = 0; S != StackDepth; ++S)
    Arena.push_back(
        native::rawToValue(StackKinds[S], FrameSlots[RF.NumLocals + S]));
  return exec(Fuel, DepthBias, /*CountEntry=*/false);
}

Expected<Value> Interpreter::callRaw(uint32_t FnIndex,
                                     const uint64_t *RawArgs, uint64_t &Fuel,
                                     uint32_t DepthBias) {
  if (LinkErr)
    return LinkErr;
  if (FnIndex >= RM.Functions.size())
    return Error::make(ErrorCode::EC_Invalid,
                       "bridge call: function index %u out of range in '%s'",
                       FnIndex, M.Name.c_str());
  const ResolvedFunction &RF = RM.Functions[FnIndex];
  uint32_t Base = static_cast<uint32_t>(Arena.size());
  Frames.push_back(Frame{FnIndex, 0, Base});
  for (uint32_t A = 0; A != RF.NumParams; ++A)
    Arena.push_back(native::rawToValue(RF.LocalKinds[A], RawArgs[A]));
  pushZeroLocals(RF, RF.NumParams);
  return exec(Fuel, DepthBias, /*CountEntry=*/true);
}

Error Interpreter::callHostRaw(uint32_t Ordinal, const uint64_t *RawArgs,
                               uint64_t &RawResult) {
  const Import &Imp = M.Imports[Ordinal];
  const HostFn &Host = Imports[Ordinal];
  if (!Host)
    return Error::make(ErrorCode::EC_Link, "import '%s' was never bound",
                       Imp.Name.c_str());
  size_t NumArgs = Imp.Sig.Params.size();
  if (HostDepth == HostArgsPool.size())
    HostArgsPool.emplace_back();
  std::vector<Value> &CallArgs = HostArgsPool[HostDepth];
  ++HostDepth;
  CallArgs.resize(NumArgs);
  for (size_t A = 0; A != NumArgs; ++A)
    CallArgs[A] = native::rawToValue(Imp.Sig.Params[A], RawArgs[A]);
  Expected<Value> Result = Host(CallArgs);
  CallArgs.clear();
  --HostDepth;
  if (Result && Result->kind() != Imp.Sig.Result)
    return Error::make(ErrorCode::EC_Link,
                       "host import '%s' returned %s, expected %s",
                       Imp.Name.c_str(), valKindName(Result->kind()),
                       valKindName(Imp.Sig.Result));
  if (!Result)
    return Result.takeError();
  RawResult = native::valueToRaw(*Result);
  return Error::success();
}

namespace {

/// Restores the shared execution state on every exit path, so errors and
/// re-entrant activations cannot leak frames or values.
class ActivationGuard {
public:
  ActivationGuard(std::vector<Value> &Arena, size_t ArenaBase)
      : Arena(Arena), ArenaBase(ArenaBase) {}
  ~ActivationGuard() { Arena.resize(ArenaBase); }

private:
  std::vector<Value> &Arena;
  size_t ArenaBase;
};

} // namespace

Expected<Value> Interpreter::exec(uint64_t &Fuel, uint32_t DepthBias,
                                  bool CountEntry) {
  // The caller pushed exactly one frame (plus its locals and any resumed
  // operand stack); this activation owns everything above it.
  const size_t FrameBase = Frames.size() - 1;
  const size_t ArenaBase = Frames.back().Base;
  ActivationGuard ArenaG(Arena, ArenaBase);

  struct FramesGuard {
    std::vector<Frame> &Frames;
    size_t FrameBase;
    ~FramesGuard() { Frames.resize(FrameBase); }
  } FramesG{Frames, FrameBase};

  const ResolvedFunction *const Fns = RM.Functions.data();

  uint32_t FnIndex = Frames.back().FnIndex;
  const ResolvedFunction *F = &Fns[FnIndex];
  uint32_t Base = Frames.back().Base;
  uint32_t PC = Frames.back().PC;

#ifndef DSU_VTAL_NO_PROFILER
  // Self-fuel attribution: ProfMark - Fuel is what the *current*
  // function burned since it last gained control; the delta is flushed
  // to its counter at every control transfer (CallFn, Ret) and, via the
  // guard, on every exit path including traps.  The per-instruction
  // dispatch loop itself is untouched.
  trace::ModuleProfile *const P = Prof;
  uint32_t ProfFn = FnIndex;
  uint64_t ProfMark = Fuel;
  struct ProfFlushGuard {
    trace::ModuleProfile *P;
    uint32_t *Fn;
    uint64_t *Mark;
    uint64_t *Fuel;
    ~ProfFlushGuard() {
      if (P)
        P->fn(*Fn).SelfFuel.fetch_add(*Mark - *Fuel,
                                      std::memory_order_relaxed);
    }
  } ProfG{P, &ProfFn, &ProfMark, &Fuel};
  if (P && CountEntry)
    P->fn(FnIndex).Calls.fetch_add(1, std::memory_order_relaxed);
#else
  (void)CountEntry;
#endif

  auto popV = [this]() {
    Value V = std::move(Arena.back());
    Arena.pop_back();
    return V;
  };

  while (true) {
    if (Fuel == 0)
      return Error::make(ErrorCode::EC_Invalid,
                         "fuel exhausted in '%s' (infinite loop in patch "
                         "code?)",
                         F->Src->Name.c_str());
    --Fuel;
    assert(PC < F->Code.size() && "pc out of range; module not verified?");
    const ResolvedInst &I = F->Code[PC];

    switch (I.Op) {
    case Opcode::PushI:
      Arena.push_back(Value::makeInt(I.IntOp));
      break;
    case Opcode::PushF:
      Arena.push_back(Value::makeFloat(I.FloatOp));
      break;
    case Opcode::PushB:
      Arena.push_back(Value::makeBool(I.IntOp != 0));
      break;
    case Opcode::PushS:
      Arena.push_back(RM.StrPool[I.Index]);
      break;

    case Opcode::Load:
      Arena.push_back(Arena[Base + I.Index]);
      break;
    case Opcode::Store:
      Arena[Base + I.Index] = std::move(Arena.back());
      Arena.pop_back();
      break;
    case Opcode::Pop:
      Arena.pop_back();
      break;
    case Opcode::Dup:
      Arena.push_back(Arena.back());
      break;

#define INT_BINOP(OPC, EXPR)                                                 \
  case Opcode::OPC: {                                                        \
    int64_t B = Arena.back().asInt();                                        \
    Arena.pop_back();                                                        \
    int64_t A = Arena.back().asInt();                                        \
    (void)A;                                                                 \
    (void)B;                                                                 \
    Arena.back() = EXPR;                                                     \
    break;                                                                   \
  }
      INT_BINOP(Add, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) + static_cast<uint64_t>(B))))
      INT_BINOP(Sub, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) - static_cast<uint64_t>(B))))
      INT_BINOP(Mul, Value::makeInt(static_cast<int64_t>(
                         static_cast<uint64_t>(A) * static_cast<uint64_t>(B))))
      INT_BINOP(Eq, Value::makeBool(A == B))
      INT_BINOP(Ne, Value::makeBool(A != B))
      INT_BINOP(Lt, Value::makeBool(A < B))
      INT_BINOP(Le, Value::makeBool(A <= B))
      INT_BINOP(Gt, Value::makeBool(A > B))
      INT_BINOP(Ge, Value::makeBool(A >= B))
#undef INT_BINOP

    case Opcode::Div:
    case Opcode::Rem: {
      int64_t B = Arena.back().asInt();
      Arena.pop_back();
      int64_t A = Arena.back().asInt();
      if (B == 0)
        return Error::make(ErrorCode::EC_Invalid,
                           "division by zero in '%s' at pc %u",
                           F->Src->Name.c_str(), PC);
      if (A == INT64_MIN && B == -1)
        return Error::make(ErrorCode::EC_Invalid,
                           "integer overflow in division in '%s' at pc %u",
                           F->Src->Name.c_str(), PC);
      Arena.back() = Value::makeInt(I.Op == Opcode::Div ? A / B : A % B);
      break;
    }
    case Opcode::Neg: {
      int64_t A = Arena.back().asInt();
      Arena.back() =
          Value::makeInt(static_cast<int64_t>(-static_cast<uint64_t>(A)));
      break;
    }

#define FLT_BINOP(OPC, EXPR)                                                 \
  case Opcode::OPC: {                                                        \
    double B = Arena.back().asFloat();                                       \
    Arena.pop_back();                                                        \
    double A = Arena.back().asFloat();                                       \
    (void)A;                                                                 \
    (void)B;                                                                 \
    Arena.back() = EXPR;                                                     \
    break;                                                                   \
  }
      FLT_BINOP(FAdd, Value::makeFloat(A + B))
      FLT_BINOP(FSub, Value::makeFloat(A - B))
      FLT_BINOP(FMul, Value::makeFloat(A * B))
      FLT_BINOP(FDiv, Value::makeFloat(A / B))
      FLT_BINOP(FEq, Value::makeBool(A == B))
      FLT_BINOP(FNe, Value::makeBool(A != B))
      FLT_BINOP(FLt, Value::makeBool(A < B))
      FLT_BINOP(FLe, Value::makeBool(A <= B))
      FLT_BINOP(FGt, Value::makeBool(A > B))
      FLT_BINOP(FGe, Value::makeBool(A >= B))
#undef FLT_BINOP

    case Opcode::FNeg:
      Arena.back() = Value::makeFloat(-Arena.back().asFloat());
      break;

    case Opcode::And: {
      bool B = Arena.back().asBool();
      Arena.pop_back();
      bool A = Arena.back().asBool();
      Arena.back() = Value::makeBool(A && B);
      break;
    }
    case Opcode::Or: {
      bool B = Arena.back().asBool();
      Arena.pop_back();
      bool A = Arena.back().asBool();
      Arena.back() = Value::makeBool(A || B);
      break;
    }
    case Opcode::Not:
      Arena.back() = Value::makeBool(!Arena.back().asBool());
      break;

    case Opcode::I2F:
      Arena.back() =
          Value::makeFloat(static_cast<double>(Arena.back().asInt()));
      break;
    case Opcode::F2I:
      Arena.back() =
          Value::makeInt(static_cast<int64_t>(Arena.back().asFloat()));
      break;

    case Opcode::SCat: {
      Value B = popV();
      Value A = popV();
      Arena.push_back(Value::makeStr(A.asStr() + B.asStr()));
      break;
    }
    case Opcode::SLen: {
      int64_t N = static_cast<int64_t>(Arena.back().asStr().size());
      Arena.back() = Value::makeInt(N);
      break;
    }
    case Opcode::SEq: {
      Value B = popV();
      Value A = popV();
      Arena.push_back(Value::makeBool(A.asStr() == B.asStr()));
      break;
    }
    case Opcode::SSub: {
      int64_t Len = popV().asInt();
      int64_t Start = popV().asInt();
      Value S = popV();
      const std::string &Str = S.asStr();
      // Clamped semantics: out-of-range slices yield the empty overlap
      // instead of trapping, so patch code stays total on string ops.
      int64_t N = static_cast<int64_t>(Str.size());
      if (Start < 0)
        Start = 0;
      if (Start > N)
        Start = N;
      if (Len < 0)
        Len = 0;
      if (Start + Len > N)
        Len = N - Start;
      Arena.push_back(Value::makeStr(
          Str.substr(static_cast<size_t>(Start), static_cast<size_t>(Len))));
      break;
    }
    case Opcode::SFind: {
      Value Needle = popV();
      Value Hay = popV();
      size_t Pos = Hay.asStr().find(Needle.asStr());
      Arena.push_back(Value::makeInt(
          Pos == std::string::npos ? -1 : static_cast<int64_t>(Pos)));
      break;
    }

    case Opcode::Br:
      PC = I.Index;
      continue;
    case Opcode::BrIf:
      if (popV().asBool()) {
        PC = I.Index;
        continue;
      }
      break;

    case Opcode::Ret: {
      bool HasResult = F->Result != ValKind::VK_Unit;
      if (Frames.size() == FrameBase + 1) {
        // Top of this activation: hand the result to the caller.
        if (!HasResult)
          return Value::makeUnit();
        return popV();
      }
      Value Result;
      if (HasResult)
        Result = popV();
      Arena.resize(Base);
      Frames.pop_back();
      const Frame &Caller = Frames.back();
#ifndef DSU_VTAL_NO_PROFILER
      if (P) {
        P->fn(ProfFn).SelfFuel.fetch_add(ProfMark - Fuel,
                                         std::memory_order_relaxed);
        ProfFn = Caller.FnIndex;
        ProfMark = Fuel;
      }
#endif
      F = &Fns[Caller.FnIndex];
      Base = Caller.Base;
      PC = Caller.PC;
      if (HasResult)
        Arena.push_back(std::move(Result));
      break; // resumes at the instruction after the call
    }

    case Opcode::CallFn: {
      if (Frames.size() - FrameBase + DepthBias > MaxCallDepth)
        return Error::make(ErrorCode::EC_Invalid,
                           "call depth limit exceeded in '%s'",
                           Fns[I.Index].Src->Name.c_str());
      const ResolvedFunction &Callee = Fns[I.Index];
      // The top NumParams arena values ARE the callee's parameter locals:
      // no argument copying, the frame starts beneath them.
      uint32_t NewBase =
          static_cast<uint32_t>(Arena.size()) - Callee.NumParams;
      Frames.back().PC = PC;
      Frames.push_back(Frame{I.Index, 0, NewBase});
      pushZeroLocals(Callee, Callee.NumParams);
#ifndef DSU_VTAL_NO_PROFILER
      if (P) {
        P->fn(ProfFn).SelfFuel.fetch_add(ProfMark - Fuel,
                                         std::memory_order_relaxed);
        ProfFn = I.Index;
        ProfMark = Fuel;
        P->fn(I.Index).Calls.fetch_add(1, std::memory_order_relaxed);
      }
#endif
      F = &Callee;
      Base = NewBase;
      PC = 0;
      continue;
    }

    case Opcode::CallHost: {
      const Import &Imp = M.Imports[I.Index];
      const HostFn &Host = Imports[I.Index];
      if (!Host)
        return Error::make(ErrorCode::EC_Link,
                           "import '%s' was never bound", Imp.Name.c_str());
      size_t NumArgs = Imp.Sig.Params.size();
      if (HostDepth == HostArgsPool.size())
        HostArgsPool.emplace_back();
      std::vector<Value> &CallArgs = HostArgsPool[HostDepth];
      ++HostDepth;
      CallArgs.resize(NumArgs);
      for (size_t A = NumArgs; A-- > 0;) {
        CallArgs[A] = std::move(Arena.back());
        Arena.pop_back();
      }
      Expected<Value> Result = Host(CallArgs);
      CallArgs.clear();
      --HostDepth;
      if (Result && Result->kind() != Imp.Sig.Result)
        return Error::make(ErrorCode::EC_Link,
                           "host import '%s' returned %s, expected %s",
                           Imp.Name.c_str(), valKindName(Result->kind()),
                           valKindName(Imp.Sig.Result));
      if (!Result)
        return Result;
      if (Imp.Sig.Result != ValKind::VK_Unit)
        Arena.push_back(std::move(*Result));
      break;
    }

    case Opcode::Call:
      // linkModule rewrites every Call; reaching one means the image was
      // built outside the link pass.
      return Error::make(ErrorCode::EC_Link,
                         "unresolved call in '%s' at pc %u",
                         F->Src->Name.c_str(), PC);
    }
    ++PC;
  }
}
