//===- flashed/DocStore.h - In-memory document tree -----------*- C++ -*-===//
///
/// \file
/// The document tree FlashEd serves.  The paper's testbed serves files
/// from disk through Flash's caches; the reproduction serves an in-memory
/// tree so benchmark numbers measure the server and updating machinery,
/// not the benchmark host's filesystem.  Synthetic workloads (fixed-size
/// documents across a range of reply sizes) are generated here for the
/// throughput experiment (E2).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_DOCSTORE_H
#define DSU_FLASHED_DOCSTORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace dsu {
namespace flashed {

/// Path -> document body map with simple traversal protection.  Bodies
/// are held as shared_ptr<const string> so the serving fast path can
/// hand them to the socket layer without copying.
///
/// Reads and writes are internally synchronized (reader/writer lock):
/// the store is shared by every reactor worker of a pool, and documents
/// may be added or replaced while the pool serves (hot content reload).
/// The lock is off the steady-state hot path — cached documents are
/// served from the typed cache cell without touching the store.
class DocStore {
public:
  DocStore() = default;
  /// Move transfers the tree only; moves happen during single-threaded
  /// setup (App::init), never while serving.
  DocStore(DocStore &&Other) noexcept : Docs(std::move(Other.Docs)) {}
  DocStore &operator=(DocStore &&Other) noexcept {
    Docs = std::move(Other.Docs);
    return *this;
  }
  /// Adds or replaces a document at \p Path (must start with '/').
  void put(const std::string &Path, std::string Body);

  /// Returns the body at \p Path, or nullptr.
  const std::string *get(const std::string &Path) const;

  /// Returns the body at \p Path as a shared handle (zero-copy serving),
  /// or nullptr.
  std::shared_ptr<const std::string> getShared(const std::string &Path) const;

  /// True for paths attempting directory traversal ("..").
  static bool isUnsafePath(const std::string &Path);

  size_t size() const {
    std::shared_lock<std::shared_mutex> G(Mu);
    return Docs.size();
  }
  std::vector<std::string> paths() const;

  /// Fills the store with deterministic synthetic documents named
  /// "/doc<i>.html" of \p Bytes each.
  void fillSynthetic(unsigned Count, size_t Bytes);

private:
  mutable std::shared_mutex Mu;
  std::map<std::string, std::shared_ptr<const std::string>> Docs;
};

/// Deterministic pseudo-text content of \p Bytes (used by benches and
/// tests so bodies are verifiable).
std::string syntheticBody(size_t Bytes, uint64_t Seed = 0);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_DOCSTORE_H
