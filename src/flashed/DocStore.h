//===- flashed/DocStore.h - In-memory document tree -----------*- C++ -*-===//
///
/// \file
/// The document tree FlashEd serves.  The paper's testbed serves files
/// from disk through Flash's caches; the reproduction serves an in-memory
/// tree so benchmark numbers measure the server and updating machinery,
/// not the benchmark host's filesystem.  Synthetic workloads (fixed-size
/// documents across a range of reply sizes) are generated here for the
/// throughput experiment (E2).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_DOCSTORE_H
#define DSU_FLASHED_DOCSTORE_H

#include "epoch/Epoch.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsu {
namespace flashed {

/// Path -> document body map with simple traversal protection.  Bodies
/// are held as shared_ptr<const string> so the serving fast path can
/// hand them to the socket layer without copying.
///
/// Concurrency: the tree is an immutable snapshot published through an
/// epoch::Ptr — readers (every reactor worker of a pool, concurrently)
/// take an epoch guard and one atomic load, **no mutex on the read
/// path**; writers (hot content reload on the admin path) serialize on
/// a write lock, copy-update-publish, and the superseded snapshot is
/// epoch-retired once every worker has passed its next quiescent point.
/// This replaced the PR 4 reader/writer lock: document reads now cost
/// the same with 1 worker or 64.
class DocStore {
public:
  using Map = std::map<std::string, std::shared_ptr<const std::string>>;

  DocStore() : Tree(new Map) {}
  /// Move transfers the tree only; moves happen during single-threaded
  /// setup (App::init), never while serving.
  DocStore(DocStore &&Other) noexcept : Tree(Other.Tree.exchange(new Map)) {}
  DocStore &operator=(DocStore &&Other) noexcept {
    delete Tree.exchange(Other.Tree.exchange(new Map));
    return *this;
  }

  /// Adds or replaces a document at \p Path (must start with '/').
  void put(const std::string &Path, std::string Body);

  /// Returns the body at \p Path, or nullptr.  The pointer is valid for
  /// the current epoch scope only (callers inside a request/guard);
  /// live-replacement flows use getShared().
  const std::string *get(const std::string &Path) const;

  /// Returns the body at \p Path as a shared handle (zero-copy serving,
  /// valid past any snapshot retirement), or nullptr.
  std::shared_ptr<const std::string> getShared(const std::string &Path) const;

  /// True for paths attempting directory traversal ("..").
  static bool isUnsafePath(const std::string &Path);

  size_t size() const;
  std::vector<std::string> paths() const;

  /// Fills the store with deterministic synthetic documents named
  /// "/doc<i>.html" of \p Bytes each (one snapshot publish, not Count).
  void fillSynthetic(unsigned Count, size_t Bytes);

private:
  /// Writers only: copy the live snapshot, mutate via \p Mutate,
  /// publish, retire the old snapshot.
  template <typename Fn> void updateTree(Fn &&Mutate);

  std::mutex WriteMu; ///< serializes writers; readers never take it
  epoch::Ptr<const Map> Tree;
};

/// Deterministic pseudo-text content of \p Bytes (used by benches and
/// tests so bodies are verifiable).
std::string syntheticBody(size_t Bytes, uint64_t Seed = 0);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_DOCSTORE_H
