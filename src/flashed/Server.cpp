//===- flashed/Server.cpp -------------------------------------*- C++ -*-===//

#include "flashed/Server.h"

#include "flashed/Http.h"
#include "support/Logging.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

Error sysError(const char *What) {
  return Error::make(ErrorCode::EC_IO, "%s: %s", What,
                     std::strerror(errno));
}

Error setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
    return sysError("fcntl(O_NONBLOCK)");
  return Error::success();
}

} // namespace

Server::~Server() { shutdown(); }

void Server::shutdown() {
  for (const auto &[Fd, C] : Conns) {
    (void)C;
    ::close(Fd);
  }
  Conns.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (EpollFd >= 0) {
    ::close(EpollFd);
    EpollFd = -1;
  }
}

Error Server::listenOn(uint16_t Port) {
  assert(ListenFd < 0 && "server is already listening");
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return sysError("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return sysError("bind");
  if (::listen(ListenFd, 256) < 0)
    return sysError("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return sysError("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  if (Error E = setNonBlocking(ListenFd))
    return E;

  EpollFd = ::epoll_create1(0);
  if (EpollFd < 0)
    return sysError("epoll_create1");
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = ListenFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) < 0)
    return sysError("epoll_ctl(listen)");

  DSU_LOG_INFO("flashed listening on 127.0.0.1:%u", BoundPort);
  return Error::success();
}

void Server::acceptPending() {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient error: try again next round
    if (setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      ::close(Fd);
      continue;
    }
    Conns.emplace(Fd, Conn());
  }
}

void Server::armWrite(int Fd, bool Enable) {
  epoll_event Ev{};
  Ev.events = Enable ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  Ev.data.fd = Fd;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev);
}

void Server::closeConn(int Fd) {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  ::close(Fd);
  Conns.erase(Fd);
}

void Server::handleReadable(int Fd) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  Conn &C = It->second;

  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.In.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      closeConn(Fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    closeConn(Fd);
    return;
  }

  // A client may not buffer unbounded bytes: once the pending input
  // exceeds the cap without forming a servable request, drop it.
  if (C.In.size() > MaxRequestBytes &&
      (C.Responding || !requestComplete(C.In))) {
    closeConn(Fd);
    return;
  }

  if (C.Responding || !requestComplete(C.In))
    return;

  C.Out = Handle(C.In);
  C.OutPos = 0;
  C.Responding = true;
  ++Served;
  handleWritable(Fd);
}

void Server::handleWritable(int Fd) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  if (!C.Responding)
    return;

  while (C.OutPos < C.Out.size()) {
    ssize_t N =
        ::write(Fd, C.Out.data() + C.OutPos, C.Out.size() - C.OutPos);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      Sent += static_cast<uint64_t>(N);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      armWrite(Fd, true);
      return;
    }
    closeConn(Fd);
    return;
  }
  // Response fully written; HTTP/1.0 one-shot connection.
  closeConn(Fd);
}

Expected<int> Server::pollOnce(int TimeoutMs) {
  assert(EpollFd >= 0 && "pollOnce before listenOn");
  epoll_event Events[128];
  int N = ::epoll_wait(EpollFd, Events, 128, TimeoutMs);
  if (N < 0) {
    if (errno == EINTR)
      N = 0;
    else
      return sysError("epoll_wait");
  }
  for (int I = 0; I != N; ++I) {
    int Fd = Events[I].data.fd;
    if (Fd == ListenFd) {
      acceptPending();
      continue;
    }
    if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
      closeConn(Fd);
      continue;
    }
    if (Events[I].events & EPOLLIN)
      handleReadable(Fd);
    if (Events[I].events & EPOLLOUT)
      handleWritable(Fd);
  }
  if (Idle)
    Idle();
  return N;
}

Error Server::runUntil(const std::function<bool()> &Stop, int TimeoutMs) {
  while (!Stop()) {
    Expected<int> N = pollOnce(TimeoutMs);
    if (!N)
      return N.takeError();
  }
  return Error::success();
}
