//===- flashed/Server.cpp -------------------------------------*- C++ -*-===//

#include "flashed/Server.h"

#include "support/Logging.h"

#include <arpa/inet.h>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

Error sysError(const char *What) {
  return Error::make(ErrorCode::EC_IO, "%s: %s", What,
                     std::strerror(errno));
}

/// How long the listener stays out of the epoll set after a persistent
/// accept failure (EMFILE and friends) before retrying.
constexpr std::chrono::milliseconds AcceptBackoffMs{100};

} // namespace

Server::~Server() { shutdown(); }

void Server::shutdown() {
  for (const std::unique_ptr<Conn> &C : Pool)
    if (C->Fd >= 0)
      ::close(C->Fd);
  Pool.clear();
  FreeList = nullptr;
  PendingRelease.clear();
  AcceptPaused = false;
  AcceptErrorLogged = false;
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (EpollFd >= 0) {
    ::close(EpollFd);
    EpollFd = -1;
  }
}

Error Server::listenOn(uint16_t Port) {
  if (ListenFd >= 0)
    return Error::make(ErrorCode::EC_IO,
                       "listenOn: server is already listening on port %u",
                       BoundPort);
  // Unwind partial setup on failure so a failed listen neither leaks
  // fds nor leaves the server claiming to be listening.
  auto Fail = [this](const char *What) {
    Error E = sysError(What);
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (EpollFd >= 0) {
      ::close(EpollFd);
      EpollFd = -1;
    }
    return E;
  };
  ListenFd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return Fail("bind");
  if (::listen(ListenFd, 256) < 0)
    return Fail("listen");
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return Fail("getsockname");
  BoundPort = ntohs(Addr.sin_port);

  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (EpollFd < 0)
    return Fail("epoll_create1");
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.ptr = nullptr; // nullptr marks the listener
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) < 0)
    return Fail("epoll_ctl(listen)");

  DSU_LOG_INFO("flashed listening on 127.0.0.1:%u", BoundPort);
  return Error::success();
}

Server::Conn *Server::allocConn(int Fd) {
  Conn *C;
  if (FreeList) {
    C = FreeList;
    FreeList = C->NextFree;
  } else {
    Pool.push_back(std::make_unique<Conn>());
    C = Pool.back().get();
  }
  C->Fd = Fd;
  C->In.clear(); // clear() keeps capacity: buffers are recycled
  C->InPos = 0;
  C->Out.clear();
  C->OutPos = 0;
  C->Tail.reset();
  C->TailPos = 0;
  C->WriteArmed = false;
  C->CloseAfter = false;
  C->PeerClosed = false;
  C->NextFree = nullptr;
  return C;
}

void Server::pauseAccepting() {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, ListenFd, nullptr);
  AcceptPaused = true;
  AcceptResumeAt = std::chrono::steady_clock::now() + AcceptBackoffMs;
}

void Server::resumeAcceptingIfDue() {
  if (!AcceptPaused || std::chrono::steady_clock::now() < AcceptResumeAt)
    return;
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.ptr = nullptr;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev) == 0)
    AcceptPaused = false;
}

void Server::acceptPending() {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_NONBLOCK);
    if (Fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      if (errno == EINTR || errno == ECONNABORTED)
        continue; // transient, keep draining the backlog
      // Persistent errors (EMFILE, ENFILE, ENOBUFS, ENOMEM): spinning on
      // a level-triggered listener would peg the loop, so log once and
      // take the listener out of the epoll set for a short backoff.
      if (!AcceptErrorLogged) {
        DSU_LOG_WARN("flashed accept: %s; backing off",
                     std::strerror(errno));
        AcceptErrorLogged = true;
      }
      pauseAccepting();
      return;
    }
    AcceptErrorLogged = false;
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Conn *C = allocConn(Fd);
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.ptr = C;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0) {
      ::close(Fd);
      C->Fd = -1;
      C->NextFree = FreeList;
      FreeList = C;
      continue;
    }
    ++Accepted;
  }
}

void Server::armWrite(Conn *C, bool Enable) {
  if (C->WriteArmed == Enable)
    return;
  epoll_event Ev{};
  Ev.events = Enable ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  Ev.data.ptr = C;
  ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C->Fd, &Ev);
  C->WriteArmed = Enable;
}

void Server::closeConn(Conn *C) {
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, C->Fd, nullptr);
  ::close(C->Fd);
  C->Fd = -1;
  C->Tail.reset();
  // Deferred recycling: a stale event for this conn may still sit later
  // in the current epoll_wait batch.
  PendingRelease.push_back(C);
}

void Server::serveOne(Conn *C, const RequestHead &Head,
                      std::string_view Raw) {
  assert(!C->hasPendingOutput() && "serving while output is pending");
  ++Served;
  if (Fast) {
    Fast(Head, Raw, C->Out, C->Tail);
    C->CloseAfter = Head.Malformed || !Head.KeepAlive;
  } else {
    // Legacy one-shot handler: string in, string out, close after.
    C->Out += Handle(std::string(Raw));
    C->CloseAfter = true;
  }
}

bool Server::flushOutput(Conn *C) {
  while (C->hasPendingOutput()) {
    iovec Iov[2];
    int NIov = 0;
    if (C->OutPos < C->Out.size()) {
      Iov[NIov].iov_base = const_cast<char *>(C->Out.data()) + C->OutPos;
      Iov[NIov].iov_len = C->Out.size() - C->OutPos;
      ++NIov;
    }
    if (C->Tail && C->TailPos < C->Tail->size()) {
      Iov[NIov].iov_base =
          const_cast<char *>(C->Tail->data()) + C->TailPos;
      Iov[NIov].iov_len = C->Tail->size() - C->TailPos;
      ++NIov;
    }
    ssize_t N = ::writev(C->Fd, Iov, NIov);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return true;
      if (errno == EINTR)
        continue;
      closeConn(C);
      return false;
    }
    Sent += static_cast<uint64_t>(N);
    size_t Left = static_cast<size_t>(N);
    size_t HeadLeft = C->Out.size() - C->OutPos;
    size_t Adv = Left < HeadLeft ? Left : HeadLeft;
    C->OutPos += Adv;
    Left -= Adv;
    if (C->Tail)
      C->TailPos += Left;
  }
  C->Out.clear();
  C->OutPos = 0;
  C->Tail.reset();
  C->TailPos = 0;
  return true;
}

void Server::processConn(Conn *C) {
  while (true) {
    if (C->hasPendingOutput()) {
      if (!flushOutput(C))
        return;
      if (C->hasPendingOutput()) {
        // Kernel send buffer is full.  Stop serving further pipelined
        // requests until it drains, and cut off a client that keeps
        // streaming input past the cap meanwhile.
        if (C->In.size() - C->InPos > MaxRequestBytes) {
          closeConn(C);
          return;
        }
        armWrite(C, true);
        return;
      }
    }
    if (C->CloseAfter) {
      closeConn(C);
      return;
    }
    armWrite(C, false);

    std::string_view Pending(C->In.data() + C->InPos,
                             C->In.size() - C->InPos);
    RequestHead Head = scanRequestHead(Pending);
    if (!Head.Complete ||
        (!Head.Malformed && Pending.size() < Head.totalBytes())) {
      // Need more input.  A half-closed peer cannot send any, so the
      // connection is done (its buffered requests were served above).
      if (C->PeerClosed) {
        closeConn(C);
        return;
      }
      // Enforce the buffering cap, then compact the consumed prefix so
      // the buffer does not creep upward forever.
      if (Pending.size() > MaxRequestBytes) {
        closeConn(C);
        return;
      }
      if (C->InPos) {
        C->In.erase(0, C->InPos);
        C->InPos = 0;
      }
      return;
    }
    // A malformed head has unreliable framing: serve the error response
    // the handler produces and consume everything (the conn closes).
    size_t Consumed = Head.Malformed ? Pending.size() : Head.totalBytes();
    serveOne(C, Head, Pending.substr(0, Consumed));
    C->InPos += Consumed;
  }
}

void Server::handleReadable(Conn *C) {
  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(C->Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C->In.append(Buf, static_cast<size_t>(N));
      if (static_cast<size_t>(N) < sizeof(Buf))
        break; // short read: the socket is drained
      continue;
    }
    if (N == 0) {
      // Half-close: the client may have pipelined requests and shut
      // down its write side; serve what is buffered before closing.
      C->PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    closeConn(C);
    return;
  }
  processConn(C);
}

Expected<int> Server::pollOnce(int TimeoutMs) {
  if (EpollFd < 0)
    return Error::make(ErrorCode::EC_IO, "pollOnce before listenOn");
  resumeAcceptingIfDue();
  if (AcceptPaused) {
    // The paused listener generates no events; cap the wait so the
    // backoff actually expires even under a long (or infinite) timeout.
    auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                      AcceptResumeAt - std::chrono::steady_clock::now())
                      .count() +
                  1;
    int RemainMs = Remain < 0 ? 0 : static_cast<int>(Remain);
    if (TimeoutMs < 0 || TimeoutMs > RemainMs)
      TimeoutMs = RemainMs;
  }
  epoll_event Events[128];
  int N = ::epoll_wait(EpollFd, Events, 128, TimeoutMs);
  if (N < 0) {
    if (errno == EINTR)
      N = 0;
    else
      return sysError("epoll_wait");
  }
  for (int I = 0; I != N; ++I) {
    Conn *C = static_cast<Conn *>(Events[I].data.ptr);
    if (!C) {
      acceptPending();
      continue;
    }
    if (C->Fd < 0)
      continue; // closed earlier in this batch
    if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
      closeConn(C);
      continue;
    }
    if (Events[I].events & EPOLLIN) {
      handleReadable(C);
      if (C->Fd < 0)
        continue;
    }
    if (Events[I].events & EPOLLOUT)
      processConn(C);
  }
  for (Conn *C : PendingRelease) {
    C->NextFree = FreeList;
    FreeList = C;
  }
  PendingRelease.clear();
  if (Idle)
    Idle();
  return N;
}

Error Server::runUntil(const std::function<bool()> &Stop, int TimeoutMs) {
  while (!Stop()) {
    Expected<int> N = pollOnce(TimeoutMs);
    if (!N)
      return N.takeError();
  }
  return Error::success();
}
