//===- flashed/Http.h - Minimal HTTP/1.0 message handling -----*- C++ -*-===//
///
/// \file
/// Request parsing and response serialization for FlashEd, the updateable
/// web server used as the macro-benchmark — the role the Flash web server
/// plays in the PLDI 2001 evaluation.  The subset implemented matches
/// what the experiments exercise: GET/HEAD over HTTP/1.0-style
/// one-request-per-connection exchanges with Content-Length framing.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_HTTP_H
#define DSU_FLASHED_HTTP_H

#include "support/Error.h"

#include <map>
#include <string>

namespace dsu {
namespace flashed {

/// A parsed HTTP request.
struct HttpRequest {
  std::string Method;
  std::string Target; ///< request path, percent-decoding not applied
  std::string Version;
  std::map<std::string, std::string> Headers; ///< lower-cased keys
};

/// Parses a full request (start line + headers, terminated by CRLFCRLF
/// or LFLF).
Expected<HttpRequest> parseHttpRequest(std::string_view Raw);

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char *statusText(int Code);

/// Serializes a response with Content-Length and Content-Type headers.
std::string buildHttpResponse(int Code, const std::string &ContentType,
                              const std::string &Body);

/// True when \p Buffer holds at least one complete request head.
bool requestComplete(std::string_view Buffer);

/// Maps a file extension ("html", "png", ...) to a MIME type;
/// "application/octet-stream" when unknown.
const char *mimeForExtension(std::string_view Ext);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_HTTP_H
