//===- flashed/Http.h - HTTP/1.0 and 1.1 message handling -----*- C++ -*-===//
///
/// \file
/// Request parsing and response serialization for FlashEd, the updateable
/// web server used as the macro-benchmark — the role the Flash web server
/// plays in the PLDI 2001 evaluation.  The subset implemented matches
/// what the experiments exercise: GET/HEAD with Content-Length framing,
/// over either one-shot HTTP/1.0 exchanges or persistent (keep-alive,
/// possibly pipelined) HTTP/1.1 connections.
///
/// Two entry points at different altitudes:
///
///  - scanRequestHead(): the server's framing scan.  Zero-allocation,
///    tolerant of malformed input (it still reports where the head ends so
///    the server can frame a 400), and extracts exactly what the event
///    loop needs: method/target/version, Content-Length, and the
///    version-sensitive keep-alive decision.
///
///  - parseHttpRequest(): the application-level parser.  Also
///    allocation-free: every field is a string_view into the caller's
///    buffer, and headers land in a fixed inline array instead of the
///    std::map the original implementation built per request.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_HTTP_H
#define DSU_FLASHED_HTTP_H

#include "support/Error.h"

#include <string>
#include <string_view>

namespace dsu {
namespace flashed {

/// Framing and connection facts about one request head, produced by a
/// single zero-allocation scan.  All views alias the scanned buffer.
struct RequestHead {
  std::string_view Method;
  std::string_view Target;
  std::string_view Version; ///< "HTTP/1.1", "HTTP/1.0", or "HTTP/0.9"
  size_t HeadBytes = 0;     ///< bytes up to and including the blank line
  size_t ContentLength = 0; ///< declared body size (0 when absent)
  bool Complete = false;    ///< terminating blank line was found
  bool Malformed = false;   ///< start line unusable (serve a 400, close)
  bool KeepAlive = false;   ///< connection survives this exchange

  /// Total bytes this request occupies in the input stream.
  size_t totalBytes() const { return HeadBytes + ContentLength; }
};

/// Scans one request head out of \p Buffer without allocating.  When the
/// head is incomplete, Complete stays false and only partial fields are
/// meaningful.  Keep-alive follows the version-sensitive defaults:
/// HTTP/1.1 persists unless "Connection: close", HTTP/1.0 closes unless
/// "Connection: keep-alive", HTTP/0.9 always closes.
RequestHead scanRequestHead(std::string_view Buffer);

/// A parsed HTTP request.  Every view aliases the buffer handed to
/// parseHttpRequest(); the struct must not outlive it.
struct HttpRequest {
  static constexpr unsigned MaxHeaders = 48;

  struct Header {
    std::string_view Name; ///< as sent (use header() for lookups)
    std::string_view Value;
  };

  std::string_view Method;
  std::string_view Target; ///< request path, percent-decoding not applied
  std::string_view Version;
  Header Headers[MaxHeaders];
  unsigned NumHeaders = 0;

  /// Case-insensitive header lookup; empty view when absent.
  std::string_view header(std::string_view Name) const;

  /// The version-sensitive keep-alive decision for this request.
  bool keepAlive() const;
};

/// Parses a full request (start line + headers, terminated by CRLFCRLF
/// or LFLF).  Headers beyond MaxHeaders are rejected.
Expected<HttpRequest> parseHttpRequest(std::string_view Raw);

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char *statusText(int Code);

/// Serializes a one-shot HTTP/1.0 response with Content-Length and
/// Content-Type headers and "Connection: close" (the legacy path).
std::string buildHttpResponse(int Code, const std::string &ContentType,
                              const std::string &Body);

/// Appends a response head for a body of \p ContentLength bytes to
/// \p Out (which is typically a connection's reusable output buffer).
/// Emits HTTP/1.1 framing with an explicit Connection header.
void appendHttpResponseHead(std::string &Out, int Code,
                            std::string_view ContentType,
                            size_t ContentLength, bool KeepAlive);

/// Appends a complete response (head + body) to \p Out.
void appendHttpResponse(std::string &Out, int Code,
                        std::string_view ContentType, std::string_view Body,
                        bool KeepAlive);

/// True when \p Buffer holds at least one complete request head.
bool requestComplete(std::string_view Buffer);

/// ASCII case-insensitive equality (header names, connection tokens).
bool asciiCaseEqual(std::string_view A, std::string_view B);

/// Pops the next '\n'-terminated line off \p Rest, stripping a trailing
/// '\r' (the shared header-block line iterator).
std::string_view popHeaderLine(std::string_view &Rest);

/// Parses a Content-Length value.  Rejects non-digits, trailing junk,
/// and magnitudes that could overflow framing arithmetic.
bool parseContentLength(std::string_view Value, size_t &Out);

/// Maps a file extension ("html", "png", ...) to a MIME type;
/// "application/octet-stream" when unknown.
const char *mimeForExtension(std::string_view Ext);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_HTTP_H
