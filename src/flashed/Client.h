//===- flashed/Client.h - Loopback HTTP client and load generator -*- C++ -*-//
///
/// \file
/// A blocking HTTP/1.0 client plus the load generator driving the
/// throughput experiment (E2) — the role httperf and the client machines
/// play in the PLDI 2001 testbed, collapsed onto the loopback interface
/// so the benchmark is self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_CLIENT_H
#define DSU_FLASHED_CLIENT_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {
namespace flashed {

/// A fetched response.
struct FetchResult {
  int Status = 0;
  std::string Headers; ///< raw head
  std::string Body;
};

/// Performs one blocking GET against 127.0.0.1:\p Port.
Expected<FetchResult> httpGet(uint16_t Port, const std::string &Target);

/// Load-generation outcome.
struct LoadStats {
  uint64_t Requests = 0;
  uint64_t Failures = 0;
  uint64_t BytesReceived = 0;
  double Seconds = 0;

  double requestsPerSecond() const {
    return Seconds > 0 ? Requests / Seconds : 0;
  }
  double megabitsPerSecond() const {
    return Seconds > 0 ? (BytesReceived * 8.0 / 1e6) / Seconds : 0;
  }
};

/// Issues \p Count sequential GETs cycling through \p Targets.  The
/// caller runs the server on another thread (or interleaves pollOnce).
Expected<LoadStats> runLoad(uint16_t Port,
                            const std::vector<std::string> &Targets,
                            uint64_t Count);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_CLIENT_H
