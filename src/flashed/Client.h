//===- flashed/Client.h - Loopback HTTP client and load generator -*- C++ -*-//
///
/// \file
/// Blocking HTTP clients plus the load generators driving the throughput
/// experiment (E2) — the role httperf and the client machines play in
/// the PLDI 2001 testbed, collapsed onto the loopback interface so the
/// benchmark is self-contained.  Two flavours: the original one-shot
/// HTTP/1.0 fetch (one TCP connection per request) and a persistent
/// HTTP/1.1 client that issues many requests — optionally pipelined —
/// over one connection.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_CLIENT_H
#define DSU_FLASHED_CLIENT_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dsu {
namespace flashed {

/// A fetched response.
struct FetchResult {
  int Status = 0;
  std::string Headers; ///< raw head
  std::string Body;
};

/// Performs one blocking HTTP/1.0 GET against 127.0.0.1:\p Port (a fresh
/// TCP connection per call — the one-shot baseline path).
Expected<FetchResult> httpGet(uint16_t Port, const std::string &Target);

/// Performs one blocking HTTP/1.1 POST (Connection: close) against
/// 127.0.0.1:\p Port — the one-shot operator path used by dsu-updatectl
/// to drive a server's /admin control plane.
Expected<FetchResult> httpPost(uint16_t Port, const std::string &Target,
                               const std::string &Body,
                               const std::string &ContentType =
                                   "application/octet-stream");

/// Retry pacing for requests the server answers with 503 (EC_Busy, e.g.
/// an update barrier forming or a rollout in flight): capped exponential
/// backoff with jitter, honouring any Retry-After the server sent.
struct RetryPolicy {
  unsigned MaxAttempts = 5;  ///< total tries, including the first
  uint64_t BaseDelayMs = 10; ///< first backoff step
  uint64_t MaxDelayMs = 1000;
};

/// Parses a Retry-After header (delta-seconds form) out of a response's
/// raw head; returns -1 when absent or malformed.
int64_t retryAfterMs(const FetchResult &R);

/// A persistent-connection HTTP/1.1 client: one TCP connection, many
/// sequential (or pipelined) requests framed by Content-Length.
class KeepAliveClient {
public:
  KeepAliveClient() = default;
  ~KeepAliveClient() { disconnect(); }
  KeepAliveClient(const KeepAliveClient &) = delete;
  KeepAliveClient &operator=(const KeepAliveClient &) = delete;

  /// Connects to 127.0.0.1:\p Port.  Idempotent while connected.
  Error connectTo(uint16_t Port);

  bool connected() const { return Fd >= 0; }

  /// Bounds every socket send/receive (SO_SNDTIMEO/SO_RCVTIMEO): a
  /// server that wedges mid-response fails the request with EC_Timeout
  /// instead of hanging the operator.  0 (default) = no timeout.
  /// Applies to the current connection and any reconnect.
  void setTimeoutMs(uint64_t Ms);

  /// One GET over the persistent connection.  When \p Close is set the
  /// request carries "Connection: close" and the connection is torn
  /// down after the response.  Reconnects transparently (once) when the
  /// server closed the connection between requests.
  Expected<FetchResult> get(const std::string &Target, bool Close = false);

  /// One POST over the same persistent connection (e.g. staging a patch
  /// through /admin/patches between GETs, without reconnecting).
  Expected<FetchResult> post(const std::string &Target,
                             const std::string &Body,
                             const std::string &ContentType =
                                 "application/octet-stream",
                             bool Close = false);

  /// get()/post() with RetryPolicy backoff on 503 responses: retries
  /// with capped exponential backoff plus jitter, using the server's
  /// Retry-After hint when it is longer than the computed backoff.
  /// Non-503 responses (including other errors) return immediately;
  /// transport failures are NOT retried beyond roundTrip()'s single
  /// reconnect — a dead server should fail fast and distinctly.
  Expected<FetchResult> getWithRetry(const std::string &Target,
                                     const RetryPolicy &P = {});
  Expected<FetchResult> postWithRetry(const std::string &Target,
                                      const std::string &Body,
                                      const std::string &ContentType =
                                          "application/octet-stream",
                                      const RetryPolicy &P = {});

  /// Writes GETs for all \p Targets in one burst, then reads all
  /// responses — the pipelined client the server's drain loop exists
  /// for.  Responses come back in request order.
  Expected<std::vector<FetchResult>>
  pipeline(const std::vector<std::string> &Targets);

  void disconnect();

private:
  Error sendAll(const std::string &Bytes);
  /// Sends \p Request and reads its response, reconnecting once when the
  /// server dropped the idle connection (shared by get()/post()).
  Expected<FetchResult> roundTrip(const std::string &Request, bool Close);
  /// Reads one Content-Length-framed response off the connection,
  /// consuming it from the internal buffer (pipelined bytes survive).
  Expected<FetchResult> readResponse();

  int Fd = -1;
  uint16_t Port = 0;
  uint64_t TimeoutMs = 0;
  std::string Buf; ///< bytes read beyond previously consumed responses
};

/// Load-generation outcome.
struct LoadStats {
  uint64_t Requests = 0;
  uint64_t Failures = 0;
  uint64_t BytesReceived = 0;
  double Seconds = 0;

  double requestsPerSecond() const {
    return Seconds > 0 ? Requests / Seconds : 0;
  }
  double megabitsPerSecond() const {
    return Seconds > 0 ? (BytesReceived * 8.0 / 1e6) / Seconds : 0;
  }
};

/// Issues \p Count sequential one-shot GETs cycling through \p Targets.
/// The caller runs the server on another thread (or interleaves
/// pollOnce).
Expected<LoadStats> runLoad(uint16_t Port,
                            const std::vector<std::string> &Targets,
                            uint64_t Count);

/// Keep-alive flavour of runLoad(): \p Count GETs cycling through
/// \p Targets, spread round-robin over \p Connections persistent
/// HTTP/1.1 connections.
Expected<LoadStats> runLoadKeepAlive(uint16_t Port,
                                     const std::vector<std::string> &Targets,
                                     uint64_t Count,
                                     unsigned Connections = 1);

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_CLIENT_H
