//===- flashed/Http.cpp ---------------------------------------*- C++ -*-===//

#include "flashed/Http.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>

using namespace dsu;
using namespace dsu::flashed;

bool dsu::flashed::asciiCaseEqual(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

std::string_view dsu::flashed::popHeaderLine(std::string_view &Rest) {
  size_t NL = Rest.find('\n');
  std::string_view Line =
      NL == std::string_view::npos ? Rest : Rest.substr(0, NL);
  Rest = NL == std::string_view::npos ? std::string_view()
                                      : Rest.substr(NL + 1);
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  return Line;
}

bool dsu::flashed::parseContentLength(std::string_view Value, size_t &Out) {
  uint64_t Len = 0;
  auto [Ptr, Ec] =
      std::from_chars(Value.data(), Value.data() + Value.size(), Len);
  if (Ec != std::errc() || Ptr != Value.data() + Value.size())
    return false;
  // A magnitude anywhere near SIZE_MAX would wrap HeadBytes + Length
  // framing sums; no legitimate message is this large.
  if (Len > (std::numeric_limits<size_t>::max)() / 4)
    return false;
  Out = static_cast<size_t>(Len);
  return true;
}

namespace {

/// True when comma-separated \p List contains \p Token (case-insensitive).
bool containsToken(std::string_view List, std::string_view Token) {
  while (!List.empty()) {
    size_t Comma = List.find(',');
    std::string_view Item = trim(List.substr(0, Comma));
    if (asciiCaseEqual(Item, Token))
      return true;
    if (Comma == std::string_view::npos)
      break;
    List.remove_prefix(Comma + 1);
  }
  return false;
}

/// Locates the head terminator (CRLFCRLF or LFLF, whichever comes first).
/// Returns true and sets \p HeadEnd / \p SepLen on success.
bool findHeadEnd(std::string_view Buffer, size_t &HeadEnd, size_t &SepLen) {
  size_t Crlf = Buffer.find("\r\n\r\n");
  // An LFLF terminator only wins when it starts before the CRLFCRLF
  // one, so bound its scan there — otherwise a request body trickling
  // in after a complete CRLF head would be rescanned end to end.
  std::string_view LfRange = Crlf == std::string_view::npos
                                 ? Buffer
                                 : Buffer.substr(0, Crlf + 1);
  size_t Lf = LfRange.find("\n\n");
  if (Crlf == std::string_view::npos && Lf == std::string_view::npos)
    return false;
  if (Lf < Crlf) {
    HeadEnd = Lf;
    SepLen = 2;
  } else {
    HeadEnd = Crlf;
    SepLen = 4;
  }
  return true;
}

bool keepAliveFor(std::string_view Version, std::string_view Connection) {
  if (Version == "HTTP/1.1")
    return !containsToken(Connection, "close");
  if (Version == "HTTP/1.0")
    return containsToken(Connection, "keep-alive");
  return false; // HTTP/0.9 and anything unrecognized: one-shot
}

/// Splits a start line into method/target/version; false when unusable.
bool splitStartLine(std::string_view StartLine, std::string_view &Method,
                    std::string_view &Target, std::string_view &Version) {
  size_t Sp1 = StartLine.find(' ');
  if (Sp1 == std::string_view::npos)
    return false;
  size_t Sp2 = StartLine.find(' ', Sp1 + 1);
  Method = StartLine.substr(0, Sp1);
  if (Sp2 == std::string_view::npos) {
    Target = StartLine.substr(Sp1 + 1);
    Version = "HTTP/0.9";
  } else {
    Target = StartLine.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    Version = StartLine.substr(Sp2 + 1);
  }
  return !Method.empty() && !Target.empty();
}

} // namespace

bool dsu::flashed::requestComplete(std::string_view Buffer) {
  size_t HeadEnd, SepLen;
  return findHeadEnd(Buffer, HeadEnd, SepLen);
}

RequestHead dsu::flashed::scanRequestHead(std::string_view Buffer) {
  RequestHead Head;
  size_t HeadEnd, SepLen;
  if (!findHeadEnd(Buffer, HeadEnd, SepLen))
    return Head;
  Head.Complete = true;
  Head.HeadBytes = HeadEnd + SepLen;

  std::string_view Rest = Buffer.substr(0, HeadEnd);
  std::string_view StartLine = popHeaderLine(Rest);
  if (!splitStartLine(StartLine, Head.Method, Head.Target, Head.Version)) {
    Head.Malformed = true;
    return Head;
  }

  // One pass over the header lines for the two the server frames with.
  std::string_view Connection;
  while (!Rest.empty()) {
    std::string_view Line = popHeaderLine(Rest);
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      continue; // framing scan tolerates junk lines; the parser rejects them
    std::string_view Name = trim(Line.substr(0, Colon));
    std::string_view Value = trim(Line.substr(Colon + 1));
    if (asciiCaseEqual(Name, "content-length")) {
      if (!parseContentLength(Value, Head.ContentLength)) {
        Head.Malformed = true;
        return Head;
      }
    } else if (asciiCaseEqual(Name, "connection")) {
      Connection = Value;
    }
  }
  Head.KeepAlive = keepAliveFor(Head.Version, Connection);
  return Head;
}

std::string_view HttpRequest::header(std::string_view Name) const {
  for (unsigned I = 0; I != NumHeaders; ++I)
    if (asciiCaseEqual(Headers[I].Name, Name))
      return Headers[I].Value;
  return {};
}

bool HttpRequest::keepAlive() const {
  return keepAliveFor(Version, header("connection"));
}

Expected<HttpRequest> dsu::flashed::parseHttpRequest(std::string_view Raw) {
  size_t HeadEnd, SepLen;
  if (!findHeadEnd(Raw, HeadEnd, SepLen))
    return Error::make(ErrorCode::EC_Parse, "incomplete request head");

  std::string_view Rest = Raw.substr(0, HeadEnd);
  std::string_view StartLine = popHeaderLine(Rest);

  HttpRequest Req;
  if (!splitStartLine(StartLine, Req.Method, Req.Target, Req.Version))
    return Error::make(ErrorCode::EC_Parse, "malformed request line");

  while (!Rest.empty()) {
    std::string_view Line = popHeaderLine(Rest);
    if (Line.empty())
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      return Error::make(ErrorCode::EC_Parse, "malformed header line");
    if (Req.NumHeaders == HttpRequest::MaxHeaders)
      return Error::make(ErrorCode::EC_Parse, "too many header lines");
    Req.Headers[Req.NumHeaders++] = {trim(Line.substr(0, Colon)),
                                     trim(Line.substr(Colon + 1))};
  }
  return Req;
}

const char *dsu::flashed::statusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 201:
    return "Created";
  case 202:
    return "Accepted";
  case 204:
    return "No Content";
  case 301:
    return "Moved Permanently";
  case 302:
    return "Found";
  case 304:
    return "Not Modified";
  case 400:
    return "Bad Request";
  case 403:
    return "Forbidden";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 409:
    return "Conflict";
  case 411:
    return "Length Required";
  case 413:
    return "Payload Too Large";
  case 414:
    return "URI Too Long";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 501:
    return "Not Implemented";
  case 503:
    return "Service Unavailable";
  case 505:
    return "HTTP Version Not Supported";
  default:
    return "Unknown";
  }
}

void dsu::flashed::appendHttpResponseHead(std::string &Out, int Code,
                                          std::string_view ContentType,
                                          size_t ContentLength,
                                          bool KeepAlive) {
  char Line[128];
  int N = std::snprintf(Line, sizeof(Line), "HTTP/1.1 %d %s\r\n", Code,
                        statusText(Code));
  Out.append(Line, static_cast<size_t>(N));
  Out += "Server: FlashEd/1.1 (dsu)\r\nContent-Type: ";
  Out += ContentType;
  N = std::snprintf(Line, sizeof(Line), "\r\nContent-Length: %zu\r\n",
                    ContentLength);
  Out.append(Line, static_cast<size_t>(N));
  Out += KeepAlive ? "Connection: keep-alive\r\n\r\n"
                   : "Connection: close\r\n\r\n";
}

void dsu::flashed::appendHttpResponse(std::string &Out, int Code,
                                      std::string_view ContentType,
                                      std::string_view Body, bool KeepAlive) {
  appendHttpResponseHead(Out, Code, ContentType, Body.size(), KeepAlive);
  Out += Body;
}

std::string dsu::flashed::buildHttpResponse(int Code,
                                            const std::string &ContentType,
                                            const std::string &Body) {
  std::string Out = formatString("HTTP/1.0 %d %s\r\n", Code,
                                 statusText(Code));
  Out += "Server: FlashEd/1.0 (dsu)\r\n";
  Out += "Content-Type: " + ContentType + "\r\n";
  Out += formatString("Content-Length: %zu\r\n", Body.size());
  Out += "Connection: close\r\n\r\n";
  Out += Body;
  return Out;
}

const char *dsu::flashed::mimeForExtension(std::string_view Ext) {
  // Sorted by extension for binary search; keep ordering when extending.
  struct Entry {
    std::string_view Ext;
    const char *Mime;
  };
  static constexpr Entry Table[] = {
      {"css", "text/css"},
      {"gif", "image/gif"},
      {"htm", "text/html"},
      {"html", "text/html"},
      {"ico", "image/x-icon"},
      {"jpeg", "image/jpeg"},
      {"jpg", "image/jpeg"},
      {"js", "application/javascript"},
      {"json", "application/json"},
      {"pdf", "application/pdf"},
      {"png", "image/png"},
      {"svg", "image/svg+xml"},
      {"txt", "text/plain"},
      {"wasm", "application/wasm"},
      {"webp", "image/webp"},
      {"xml", "application/xml"},
  };
  const Entry *End = Table + sizeof(Table) / sizeof(Table[0]);
  const Entry *It = std::lower_bound(
      Table, End, Ext,
      [](const Entry &E, std::string_view Key) { return E.Ext < Key; });
  return It != End && It->Ext == Ext ? It->Mime : "application/octet-stream";
}
