//===- flashed/Http.cpp ---------------------------------------*- C++ -*-===//

#include "flashed/Http.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cctype>

using namespace dsu;
using namespace dsu::flashed;

bool dsu::flashed::requestComplete(std::string_view Buffer) {
  return Buffer.find("\r\n\r\n") != std::string_view::npos ||
         Buffer.find("\n\n") != std::string_view::npos;
}

Expected<HttpRequest> dsu::flashed::parseHttpRequest(std::string_view Raw) {
  size_t HeadEnd = Raw.find("\r\n\r\n");
  size_t Sep = 4;
  if (HeadEnd == std::string_view::npos) {
    HeadEnd = Raw.find("\n\n");
    Sep = 2;
  }
  if (HeadEnd == std::string_view::npos)
    return Error::make(ErrorCode::EC_Parse, "incomplete request head");
  (void)Sep;

  std::string_view Head = Raw.substr(0, HeadEnd);
  size_t LineEnd = Head.find('\n');
  std::string_view StartLine =
      LineEnd == std::string_view::npos ? Head : Head.substr(0, LineEnd);
  if (!StartLine.empty() && StartLine.back() == '\r')
    StartLine.remove_suffix(1);

  HttpRequest Req;
  size_t Sp1 = StartLine.find(' ');
  if (Sp1 == std::string_view::npos)
    return Error::make(ErrorCode::EC_Parse, "malformed request line");
  size_t Sp2 = StartLine.find(' ', Sp1 + 1);
  Req.Method = std::string(StartLine.substr(0, Sp1));
  if (Sp2 == std::string_view::npos) {
    Req.Target = std::string(StartLine.substr(Sp1 + 1));
    Req.Version = "HTTP/0.9";
  } else {
    Req.Target = std::string(StartLine.substr(Sp1 + 1, Sp2 - Sp1 - 1));
    Req.Version = std::string(StartLine.substr(Sp2 + 1));
  }
  if (Req.Method.empty() || Req.Target.empty())
    return Error::make(ErrorCode::EC_Parse, "empty method or target");

  // Header lines.
  std::string_view Rest =
      LineEnd == std::string_view::npos ? "" : Head.substr(LineEnd + 1);
  while (!Rest.empty()) {
    size_t NL = Rest.find('\n');
    std::string_view Line =
        NL == std::string_view::npos ? Rest : Rest.substr(0, NL);
    Rest = NL == std::string_view::npos ? "" : Rest.substr(NL + 1);
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty())
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      return Error::make(ErrorCode::EC_Parse, "malformed header line");
    std::string Key(trim(Line.substr(0, Colon)));
    std::transform(Key.begin(), Key.end(), Key.begin(), [](unsigned char C) {
      return static_cast<char>(std::tolower(C));
    });
    Req.Headers[Key] = std::string(trim(Line.substr(Colon + 1)));
  }
  return Req;
}

const char *dsu::flashed::statusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 403:
    return "Forbidden";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 500:
    return "Internal Server Error";
  case 501:
    return "Not Implemented";
  default:
    return "Unknown";
  }
}

std::string dsu::flashed::buildHttpResponse(int Code,
                                            const std::string &ContentType,
                                            const std::string &Body) {
  std::string Out = formatString("HTTP/1.0 %d %s\r\n", Code,
                                 statusText(Code));
  Out += "Server: FlashEd/1.0 (dsu)\r\n";
  Out += "Content-Type: " + ContentType + "\r\n";
  Out += formatString("Content-Length: %zu\r\n", Body.size());
  Out += "Connection: close\r\n\r\n";
  Out += Body;
  return Out;
}

const char *dsu::flashed::mimeForExtension(std::string_view Ext) {
  if (Ext == "html" || Ext == "htm")
    return "text/html";
  if (Ext == "txt")
    return "text/plain";
  if (Ext == "css")
    return "text/css";
  if (Ext == "js")
    return "application/javascript";
  if (Ext == "json")
    return "application/json";
  if (Ext == "png")
    return "image/png";
  if (Ext == "jpg" || Ext == "jpeg")
    return "image/jpeg";
  if (Ext == "gif")
    return "image/gif";
  return "application/octet-stream";
}
