//===- flashed/DocStore.cpp -----------------------------------*- C++ -*-===//

#include "flashed/DocStore.h"

#include "support/StringUtil.h"

#include <algorithm>

using namespace dsu;
using namespace dsu::flashed;

template <typename Fn> void DocStore::updateTree(Fn &&Mutate) {
  std::lock_guard<std::mutex> G(WriteMu);
  // The write lock is the only retirer of the live snapshot, so reading
  // it here without a guard is safe: it cannot be freed under us.
  const Map *Cur = Tree.load();
  auto *Next = new Map(*Cur);
  Mutate(*Next);
  Tree.publish(Next);
}

void DocStore::put(const std::string &Path, std::string Body) {
  auto Shared = std::make_shared<const std::string>(std::move(Body));
  updateTree([&](Map &M) { M[Path] = std::move(Shared); });
}

const std::string *DocStore::get(const std::string &Path) const {
  // The returned pointer is kept alive by the body's shared_ptr in the
  // snapshot; a concurrent put() to the SAME path can retire it after
  // the caller's epoch scope, so live replacement flows use getShared().
  epoch::Guard G;
  const Map *M = Tree.load();
  auto It = M->find(Path);
  return It == M->end() ? nullptr : It->second.get();
}

std::shared_ptr<const std::string>
DocStore::getShared(const std::string &Path) const {
  epoch::Guard G;
  const Map *M = Tree.load();
  auto It = M->find(Path);
  return It == M->end() ? nullptr : It->second;
}

bool DocStore::isUnsafePath(const std::string &Path) {
  return Path.find("..") != std::string::npos;
}

size_t DocStore::size() const {
  epoch::Guard G;
  return Tree.load()->size();
}

std::vector<std::string> DocStore::paths() const {
  epoch::Guard G;
  const Map *M = Tree.load();
  std::vector<std::string> Out;
  Out.reserve(M->size());
  for (const auto &[Path, Body] : *M) {
    (void)Body;
    Out.push_back(Path);
  }
  return Out;
}

void DocStore::fillSynthetic(unsigned Count, size_t Bytes) {
  updateTree([&](Map &M) {
    for (unsigned I = 0; I != Count; ++I)
      M[formatString("/doc%u.html", I)] =
          std::make_shared<const std::string>(syntheticBody(Bytes, I));
  });
}

std::string dsu::flashed::syntheticBody(size_t Bytes, uint64_t Seed) {
  static const char Words[] =
      "the quick brown fox jumps over the lazy dog and keeps running ";
  std::string Out;
  Out.reserve(Bytes);
  uint64_t X = Seed * 6364136223846793005ull + 1442695040888963407ull;
  while (Out.size() < Bytes) {
    size_t Off = X % (sizeof(Words) - 1);
    Out.append(Words + Off, std::min(sizeof(Words) - 1 - Off,
                                     Bytes - Out.size()));
    X = X * 6364136223846793005ull + 1442695040888963407ull;
  }
  return Out;
}
