//===- flashed/DocStore.cpp -----------------------------------*- C++ -*-===//

#include "flashed/DocStore.h"

#include "support/StringUtil.h"

#include <mutex>

using namespace dsu;
using namespace dsu::flashed;

void DocStore::put(const std::string &Path, std::string Body) {
  auto Shared = std::make_shared<const std::string>(std::move(Body));
  std::unique_lock<std::shared_mutex> G(Mu);
  Docs[Path] = std::move(Shared);
}

const std::string *DocStore::get(const std::string &Path) const {
  // The returned pointer is kept alive by the body's shared_ptr in the
  // map; a concurrent put() to the SAME path may retire it, so live
  // replacement flows use getShared().
  std::shared_lock<std::shared_mutex> G(Mu);
  auto It = Docs.find(Path);
  return It == Docs.end() ? nullptr : It->second.get();
}

std::shared_ptr<const std::string>
DocStore::getShared(const std::string &Path) const {
  std::shared_lock<std::shared_mutex> G(Mu);
  auto It = Docs.find(Path);
  return It == Docs.end() ? nullptr : It->second;
}

bool DocStore::isUnsafePath(const std::string &Path) {
  return Path.find("..") != std::string::npos;
}

std::vector<std::string> DocStore::paths() const {
  std::shared_lock<std::shared_mutex> G(Mu);
  std::vector<std::string> Out;
  Out.reserve(Docs.size());
  for (const auto &[Path, Body] : Docs) {
    (void)Body;
    Out.push_back(Path);
  }
  return Out;
}

void DocStore::fillSynthetic(unsigned Count, size_t Bytes) {
  for (unsigned I = 0; I != Count; ++I)
    put(formatString("/doc%u.html", I), syntheticBody(Bytes, I));
}

std::string dsu::flashed::syntheticBody(size_t Bytes, uint64_t Seed) {
  static const char Words[] =
      "the quick brown fox jumps over the lazy dog and keeps running ";
  std::string Out;
  Out.reserve(Bytes);
  uint64_t X = Seed * 6364136223846793005ull + 1442695040888963407ull;
  while (Out.size() < Bytes) {
    size_t Off = X % (sizeof(Words) - 1);
    Out.append(Words + Off, std::min(sizeof(Words) - 1 - Off,
                                     Bytes - Out.size()));
    X = X * 6364136223846793005ull + 1442695040888963407ull;
  }
  return Out;
}
