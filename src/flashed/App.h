//===- flashed/App.h - The updateable FlashEd application -----*- C++ -*-===//
///
/// \file
/// FlashEd: the updateable web server used as the macro benchmark, the
/// reproduction of the retrofit the PLDI 2001 authors performed on the
/// Flash web server.
///
/// The request pipeline is decomposed into updateable functions — the
/// same decomposition the paper's updateable compilation performs on
/// Flash's handler chain:
///
///   flashed.parse_target : fn(string) -> string   raw head -> "GET /p"
///   flashed.map_url      : fn(string) -> string   target -> document path
///   flashed.mime_type    : fn(string) -> string   path -> content type
///   flashed.cache_get    : fn(string) -> string   path -> body ("" miss)
///   flashed.cache_put    : fn(string, string) -> unit
///   flashed.log_access   : fn(string, int) -> unit
///
/// The response cache lives in the dsu state cell "flashed.cache" typed
/// %flashed_cache@1, so the P3 patch can migrate it.  handle() routes
/// every stage through the updateable handles; handleStatic() calls the
/// same version-1 implementations directly, giving the static baseline
/// of the throughput experiment (E2).
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_APP_H
#define DSU_FLASHED_APP_H

#include "core/Runtime.h"
#include "flashed/Cache.h"
#include "flashed/DocStore.h"
#include "flashed/Http.h"
#include "runtime/RolloutController.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace dsu {

class UpdateController;

namespace net {
class ReactorPool;
}

namespace flashed {

/// Maps an update-flow error to the HTTP status the admin control plane
/// answers with: EC_Busy -> 503 (retryable, with Retry-After), EC_Link
/// -> 404, other rejections -> 409, success -> 200.
int adminStatusForError(const Error &E);

/// One FlashEd instance wired into a dsu runtime.
class FlashedApp {
public:
  explicit FlashedApp(Runtime &RT) : RT(RT) {}
  FlashedApp(const FlashedApp &) = delete;
  FlashedApp &operator=(const FlashedApp &) = delete;

  /// Defines named types, the cache state cell, the updateable pipeline
  /// and host exports.  Call once before serving.
  Error init(DocStore InitialDocs);

  /// Enables the /admin control plane on the fast-path handler, staging
  /// POSTed patch artifacts through \p Ctl (off the serve thread) and
  /// committing them at the server's idle hook:
  ///
  ///   POST /admin/patches        stage the request body (a .dsup patch
  ///                              artifact); answers 202 with the tx id
  ///   GET  /admin/updates        the update log + queued transactions
  ///                              (phase, per-stage timings, failures)
  ///   GET  /admin/status         counters, queue depth, and — with a
  ///                              pool attached — per-worker state
  ///   GET  /admin/metrics        text-format counters: per-worker
  ///                              request/connection/bytes totals and
  ///                              the update-pause histogram
  ///   POST /admin/rollback?name=F  roll one updateable back; EC_Busy
  ///                              surfaces as a retryable 503
  ///   POST /admin/rollout        stage the body and drive it through a
  ///                              metric-gated canary rollout; query
  ///                              params canary_workers, window_ms,
  ///                              max_error_delta, max_latency_delta_us,
  ///                              min_samples, max_canary_traps; answers
  ///                              202 with the rollout id
  ///   GET  /admin/rollouts       every rollout's state, verdict, gate
  ///                              reason and group counters (?id=N for
  ///                              one)
  ///   GET  /admin/lint?id=N      the update-safety analyzer's full
  ///                              finding list for one transaction
  ///                              (severity, code, message, fn, pc)
  ///
  /// The admin surface is part of the control plane, not the updateable
  /// request pipeline: handleStatic*/the E2 baseline never see it.
  void enableAdmin(UpdateController &Ctl) {
    Admin = &Ctl;
    wireUpdateWake();
  }
  bool adminEnabled() const { return Admin != nullptr; }

  /// Attaches the multi-core serving plane: /admin/status grows a
  /// per-worker state array, /admin/metrics reports each worker's
  /// counters and pause histogram, and POST /admin/rollback executes
  /// through the pool's update barrier (all workers quiescent) instead
  /// of directly on the serving thread.
  void attachPool(net::ReactorPool &P) {
    Pool = &P;
    wireUpdateWake();
  }

  /// Attaches the durable update journal's admin surface:
  /// /admin/status grows a "journal" object (boots, clean-vs-crash
  /// previous boot, chain length, quarantine and replay counters) and
  /// GET /admin/journal serves the decoded record history —
  /// ?quarantined=1 narrows it to the quarantine table.  The journal is
  /// attached to the runtime separately (Runtime::attachJournal); this
  /// only wires the read side.
  void attachJournal(persist::UpdateJournal &J) { Journal = &J; }

  /// The canary rollout control plane behind POST /admin/rollout,
  /// created lazily from the attached pool's worker stats and quiescent
  /// runner (or degenerate hooks when no pool is attached).  Valid only
  /// after enableAdmin().
  RolloutController &rollouts();

  /// Serves one request through the updateable pipeline.
  std::string handle(const std::string &RawRequest);

  /// Serves one request through direct calls to the version-1
  /// implementations (no updateable indirection) — the "static Flash"
  /// baseline of E2.
  std::string handleStatic(const std::string &RawRequest);

  /// Writer-style fast path through the updateable pipeline: serializes
  /// the response head into \p Out (a reusable buffer) and hands the
  /// body as a shared pointer in \p Body, so a cached document is served
  /// without per-request copies.  Matches Server::FastHandler.
  void handleInto(const RequestHead &Head, std::string_view Raw,
                  std::string &Out, SharedBody &Body);

  /// The static-baseline twin of handleInto() (no updateable
  /// indirection) — the "static Flash" column of E2's keep-alive mode.
  void handleStaticInto(const RequestHead &Head, std::string_view Raw,
                        std::string &Out, SharedBody &Body);

  Runtime &runtime() { return RT; }
  DocStore &docs() { return Docs; }
  StateCell *cacheCell() { return Cache; }

  uint64_t requestsHandled() const {
    return Requests.load(std::memory_order_relaxed);
  }

  // Typed pipeline handles (valid after init()).
  Updateable<std::string(std::string)> ParseTarget;
  Updateable<std::string(std::string)> MapUrl;
  Updateable<std::string(std::string)> MimeType;
  Updateable<std::string(std::string)> CacheGet;
  Updateable<void(std::string, std::string)> CachePut;
  Updateable<void(std::string, int64_t)> LogAccess;

  // Version-1 pipeline implementations, shared by the updateable initial
  // bindings, the static baseline, and the patch definitions (which know
  // exactly which v1 behaviours they replace).
  static std::string parseTargetV1(std::string Raw);
  static std::string mapUrlV1(std::string Target);
  static std::string mimeTypeV1(std::string Path);
  std::string cacheGetV1(std::string Path);
  void cachePutV1(std::string Path, std::string Body);
  static void logAccessV1(std::string Path, int64_t Status);

private:
  template <typename HParse, typename HMap, typename HMime, typename HGet,
            typename HPut, typename HLog>
  std::string handleWith(const std::string &RawRequest, HParse &&Parse,
                         HMap &&Map, HMime &&Mime, HGet &&Get, HPut &&Put,
                         HLog &&Log);

  template <typename HParse, typename HMap, typename HMime, typename HLog>
  void handleIntoWith(const RequestHead &Head, std::string_view Raw,
                      std::string &Out, SharedBody &Body, HParse &&Parse,
                      HMap &&Map, HMime &&Mime, HLog &&Log);

  /// Version-aware zero-copy body lookup: reads the published cache
  /// snapshot lock-free (bumping V2 hit counters in place), falling
  /// back to the document store and filling the cache on a miss.
  SharedBody lookupBody(const std::string &Path);

  /// The miss path's copy-update-publish of the cache snapshot.
  void fillCache(const std::string &Path, const SharedBody &Doc);

  /// Serves one /admin request into \p Out.
  void handleAdmin(const RequestHead &Head, std::string_view Raw,
                   std::string &Out);

  /// Renders the GET /admin/metrics exposition text.
  std::string renderMetrics() const;

  /// When both the controller and the pool are attached, a freshly
  /// staged update wakes every worker so the barrier forms without
  /// waiting out a poll timeout.
  void wireUpdateWake();

  Runtime &RT;
  DocStore Docs;
  StateCell *Cache = nullptr;
  UpdateController *Admin = nullptr;
  net::ReactorPool *Pool = nullptr;
  persist::UpdateJournal *Journal = nullptr;
  std::mutex RolloutLock; ///< guards lazy Rollout creation
  std::unique_ptr<RolloutController> Rollout;
  /// Serving now happens on N reactor workers concurrently; the request
  /// counter is the only pipeline state the app itself mutates per
  /// request, so it is a relaxed atomic (cache/state cells have their
  /// own payload locks).
  std::atomic<uint64_t> Requests{0};
};

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_APP_H
