//===- flashed/Server.h - Event-driven HTTP server ------------*- C++ -*-===//
///
/// \file
/// FlashEd's single-threaded server: one net::Reactor driven inline (the
/// caller owns the loop thread), in the architectural style of the Flash
/// web server the PLDI 2001 evaluation retrofits.  The loop invokes an
/// injected handler per complete request and an idle hook once per
/// iteration — the natural update point, exactly where FlashEd places
/// its `update` call.
///
/// All event-loop mechanics — the pooled O(1) connection table, recycled
/// buffers, zero-copy writev tail, keep-alive/pipelined draining,
/// accept backoff — live in net/Reactor.h; this class is the
/// single-worker facade that preserves FlashEd's original embedding API.
/// The multi-core serving plane is net::ReactorPool, which replicates
/// the same reactor per worker and adds the cross-worker update barrier.
///
/// stop() is the graceful shutdown: buffered pipelined requests are
/// served, backpressured output is flushed, idle keep-alive connections
/// close, and runUntil() then returns — it never races the event loop.
/// shutdown() remains the immediate teardown.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_SERVER_H
#define DSU_FLASHED_SERVER_H

#include "epoch/Epoch.h"
#include "net/Reactor.h"

namespace dsu {
namespace flashed {

/// Single-threaded HTTP server over one reactor.
class Server {
public:
  using Handler = net::Reactor::Handler;
  using FastHandler = net::Reactor::FastHandler;
  using IdleHook = net::Reactor::IdleHook;

  explicit Server(Handler H) : R(std::move(H)) {}
  explicit Server(FastHandler H) : R(std::move(H)) {}
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port).
  /// Fails with EC_IO when the server is already listening.
  Error listenOn(uint16_t Port = 0) {
    net::ReactorOptions O;
    O.Port = Port;
    O.MaxRequestBytes = MaxRequestBytes;
    return R.open(O);
  }

  /// The bound port (valid after listenOn()).
  uint16_t port() const { return R.port(); }

  void setIdleHook(IdleHook Hook) { R.setIdleHook(std::move(Hook)); }

  /// Caps per-connection buffering (default 1 MiB).
  void setMaxRequestBytes(size_t Bytes) {
    MaxRequestBytes = Bytes;
    R.setMaxRequestBytes(Bytes);
  }

  /// Runs one event-loop iteration with the given poll timeout.
  Expected<int> pollOnce(int TimeoutMs) { return R.pollOnce(TimeoutMs); }

  /// Loops until \p Stop returns true or a stop() drain completes.  The
  /// loop thread is registered as an epoch worker for the duration: its
  /// per-iteration quiescent point ticks the reclamation domain, so the
  /// single-worker facade gets the same lock-free DocStore/cache reads
  /// as the pool.
  Error runUntil(const std::function<bool()> &Stop, int TimeoutMs = 10) {
    epoch::WorkerReg Epoch;
    return R.runUntil(
        [&] {
          Epoch.quiesce();
          return Stop();
        },
        TimeoutMs);
  }

  /// Graceful stop (thread-safe): drains in-flight pipelined requests,
  /// flushes pending output, closes idle keep-alive connections, then
  /// runUntil() returns.
  void stop() { R.requestStop(); }

  /// True once a stop() drain has finished.
  bool drained() const { return R.drainComplete(); }

  /// Bounds how long stop() waits for stalled connections (default
  /// 5000 ms) before force-closing them.
  void setDrainTimeout(int Ms) { R.setDrainTimeout(Ms); }

  uint64_t requestsServed() const { return R.requestsServed(); }
  uint64_t bytesSent() const { return R.bytesSent(); }
  uint64_t connectionsAccepted() const {
    return R.connectionsAccepted();
  }

  /// The reactor's serving counters (lock-free; see net/WorkerStats.h).
  const net::WorkerStats &stats() const { return R.stats(); }

  /// Closes all sockets immediately; listenOn() may be called again.
  void shutdown() { R.close(); }

private:
  net::Reactor R;
  size_t MaxRequestBytes = 1 << 20;
};

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_SERVER_H
