//===- flashed/Server.h - Event-driven HTTP server ------------*- C++ -*-===//
///
/// \file
/// FlashEd's event loop: a single-threaded, epoll-based, nonblocking
/// server in the architectural style of the Flash web server the PLDI
/// 2001 evaluation retrofits.  The loop invokes an injected handler per
/// complete request and an idle hook once per iteration — the natural
/// update point, exactly where FlashEd places its `update` call.
///
/// The serving hot path is allocation- and lookup-free in steady state:
/// connections are pooled objects reached directly through
/// `epoll_event.data.ptr` (no fd->connection map), their input/output
/// buffers are recycled through a free list, and responses can carry a
/// `shared_ptr<const string>` body that is written to the socket with
/// writev() and never copied.  Persistent (HTTP/1.1 keep-alive)
/// connections are drained request by request, including pipelined
/// requests arriving in one read; the idle hook — the update point —
/// still runs once per poll iteration, i.e. between requests of a
/// persistent connection.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_SERVER_H
#define DSU_FLASHED_SERVER_H

#include "flashed/Http.h"
#include "support/Error.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dsu {
namespace flashed {

/// Single-threaded epoll HTTP server.
class Server {
public:
  /// Legacy one-shot handler: maps one complete raw request to raw
  /// response bytes.  Connections served through it close after each
  /// response (HTTP/1.0 semantics, the pre-keep-alive behaviour).
  using Handler = std::function<std::string(const std::string &)>;

  /// Writer-style handler for the persistent-connection fast path.  The
  /// handler serializes the response head (and any inline body) into
  /// \p Out — the connection's reusable output buffer — and may set
  /// \p Body to a shared payload the server writes after \p Out without
  /// copying it.  \p Req is the framing scan of the request; the
  /// response's Connection header should match Req.KeepAlive.
  using FastHandler = std::function<void(
      const RequestHead &Req, std::string_view Raw, std::string &Out,
      std::shared_ptr<const std::string> &Body)>;

  /// Called once per event-loop iteration (FlashEd installs the dsu
  /// update point here).
  using IdleHook = std::function<void()>;

  explicit Server(Handler H) : Handle(std::move(H)) {}
  explicit Server(FastHandler H) : Fast(std::move(H)) {}
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port).
  /// Fails with EC_IO when the server is already listening.
  Error listenOn(uint16_t Port = 0);

  /// The bound port (valid after listenOn()).
  uint16_t port() const { return BoundPort; }

  void setIdleHook(IdleHook Hook) { Idle = std::move(Hook); }

  /// Caps per-connection buffering: a connection whose pending input
  /// exceeds \p Bytes without forming a servable request — or that keeps
  /// pipelining past the cap while its output is backpressured — is
  /// closed, so a client that streams bytes forever cannot grow memory
  /// without bound.  Default 1 MiB.
  void setMaxRequestBytes(size_t Bytes) { MaxRequestBytes = Bytes; }

  /// Runs one event-loop iteration with the given poll timeout.
  /// Returns the number of events processed.
  Expected<int> pollOnce(int TimeoutMs);

  /// Loops until \p Stop returns true.
  Error runUntil(const std::function<bool()> &Stop, int TimeoutMs = 10);

  uint64_t requestsServed() const { return Served; }
  uint64_t bytesSent() const { return Sent; }
  uint64_t connectionsAccepted() const { return Accepted; }

  /// Closes all sockets; listenOn() may be called again afterwards.
  void shutdown();

private:
  /// One pooled connection.  Reached via epoll_event.data.ptr; buffers
  /// keep their capacity across tenants (free-list recycling).
  struct Conn {
    int Fd = -1;
    std::string In; ///< inbound bytes; [InPos, size) not yet consumed
    size_t InPos = 0;
    std::string Out; ///< serialized output; [OutPos, size) unwritten
    size_t OutPos = 0;
    std::shared_ptr<const std::string> Tail; ///< zero-copy body after Out
    size_t TailPos = 0;
    bool WriteArmed = false;
    bool CloseAfter = false;
    bool PeerClosed = false; ///< read side saw EOF (client half-close)
    Conn *NextFree = nullptr;

    bool hasPendingOutput() const {
      return OutPos < Out.size() || (Tail && TailPos < Tail->size());
    }
  };

  Conn *allocConn(int Fd);
  void acceptPending();
  void pauseAccepting();
  void resumeAcceptingIfDue();
  void handleReadable(Conn *C);
  /// Serves every buffered request backpressure allows, then flushes.
  void processConn(Conn *C);
  void serveOne(Conn *C, const RequestHead &Head, std::string_view Raw);
  /// Returns false when the connection was closed by a write error.
  bool flushOutput(Conn *C);
  void closeConn(Conn *C);
  void armWrite(Conn *C, bool Enable);

  Handler Handle;
  FastHandler Fast;
  IdleHook Idle;
  int EpollFd = -1;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  size_t MaxRequestBytes = 1 << 20;

  std::vector<std::unique_ptr<Conn>> Pool;
  Conn *FreeList = nullptr;
  /// Conns closed mid-batch; recycled only after the batch so stale
  /// events in the same epoll_wait return cannot hit a reused object.
  std::vector<Conn *> PendingRelease;

  bool AcceptPaused = false;
  bool AcceptErrorLogged = false;
  std::chrono::steady_clock::time_point AcceptResumeAt{};

  uint64_t Served = 0;
  uint64_t Sent = 0;
  uint64_t Accepted = 0;
};

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_SERVER_H
