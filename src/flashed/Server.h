//===- flashed/Server.h - Event-driven HTTP server ------------*- C++ -*-===//
///
/// \file
/// FlashEd's event loop: a single-threaded, epoll-based, nonblocking
/// server in the architectural style of the Flash web server the PLDI
/// 2001 evaluation retrofits.  The loop invokes an injected handler per
/// complete request and an idle hook once per iteration — the natural
/// update point, exactly where FlashEd places its `update` call.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_SERVER_H
#define DSU_FLASHED_SERVER_H

#include "support/Error.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace dsu {
namespace flashed {

/// Single-threaded epoll HTTP server.
class Server {
public:
  /// Maps one complete raw request to raw response bytes.
  using Handler = std::function<std::string(const std::string &)>;

  /// Called once per event-loop iteration (FlashEd installs the dsu
  /// update point here).
  using IdleHook = std::function<void()>;

  explicit Server(Handler H) : Handle(std::move(H)) {}
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on 127.0.0.1:\p Port (0 picks an ephemeral port).
  Error listenOn(uint16_t Port = 0);

  /// The bound port (valid after listenOn()).
  uint16_t port() const { return BoundPort; }

  void setIdleHook(IdleHook Hook) { Idle = std::move(Hook); }

  /// Caps per-connection request buffering: a connection whose pending
  /// input exceeds \p Bytes without forming a complete request is closed,
  /// so a client that streams bytes forever cannot grow memory without
  /// bound.  Default 1 MiB.
  void setMaxRequestBytes(size_t Bytes) { MaxRequestBytes = Bytes; }

  /// Runs one event-loop iteration with the given poll timeout.
  /// Returns the number of events processed.
  Expected<int> pollOnce(int TimeoutMs);

  /// Loops until \p Stop returns true.
  Error runUntil(const std::function<bool()> &Stop, int TimeoutMs = 10);

  uint64_t requestsServed() const { return Served; }
  uint64_t bytesSent() const { return Sent; }

  /// Closes all sockets; listenOn() may be called again afterwards.
  void shutdown();

private:
  struct Conn {
    std::string In;
    std::string Out;
    size_t OutPos = 0;
    bool Responding = false;
  };

  void acceptPending();
  void handleReadable(int Fd);
  void handleWritable(int Fd);
  void closeConn(int Fd);
  void armWrite(int Fd, bool Enable);

  Handler Handle;
  IdleHook Idle;
  int EpollFd = -1;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  size_t MaxRequestBytes = 1 << 20;
  std::map<int, Conn> Conns;
  uint64_t Served = 0;
  uint64_t Sent = 0;
};

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_SERVER_H
