//===- flashed/Client.cpp -------------------------------------*- C++ -*-===//

#include "flashed/Client.h"

#include "support/StringUtil.h"
#include "support/Timer.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

Expected<FetchResult> dsu::flashed::httpGet(uint16_t Port,
                                            const std::string &Target) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::make(ErrorCode::EC_IO, "socket: %s",
                       std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(Fd);
    return Error::make(ErrorCode::EC_IO, "connect: %s", std::strerror(E));
  }

  std::string Request = "GET " + Target + " HTTP/1.0\r\nHost: localhost\r\n"
                        "User-Agent: dsu-loadgen\r\n\r\n";
  size_t Off = 0;
  while (Off < Request.size()) {
    ssize_t N = ::write(Fd, Request.data() + Off, Request.size() - Off);
    if (N <= 0) {
      int E = errno;
      ::close(Fd);
      return Error::make(ErrorCode::EC_IO, "write: %s", std::strerror(E));
    }
    Off += static_cast<size_t>(N);
  }

  std::string Raw;
  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Raw.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      break;
    if (errno == EINTR)
      continue;
    int E = errno;
    ::close(Fd);
    return Error::make(ErrorCode::EC_IO, "read: %s", std::strerror(E));
  }
  ::close(Fd);

  FetchResult Out;
  size_t HeadEnd = Raw.find("\r\n\r\n");
  if (HeadEnd == std::string::npos)
    return Error::make(ErrorCode::EC_Parse, "response without header end");
  Out.Headers = Raw.substr(0, HeadEnd);
  Out.Body = Raw.substr(HeadEnd + 4);

  // "HTTP/1.0 200 OK"
  size_t Sp = Out.Headers.find(' ');
  if (Sp == std::string::npos)
    return Error::make(ErrorCode::EC_Parse, "malformed status line");
  Out.Status = std::atoi(Out.Headers.c_str() + Sp + 1);
  return Out;
}

Expected<LoadStats> dsu::flashed::runLoad(
    uint16_t Port, const std::vector<std::string> &Targets, uint64_t Count) {
  if (Targets.empty())
    return Error::make(ErrorCode::EC_Invalid, "no targets to load");
  LoadStats Stats;
  Timer T;
  for (uint64_t I = 0; I != Count; ++I) {
    Expected<FetchResult> R = httpGet(Port, Targets[I % Targets.size()]);
    ++Stats.Requests;
    if (!R || R->Status != 200) {
      ++Stats.Failures;
      continue;
    }
    Stats.BytesReceived += R->Body.size() + R->Headers.size();
  }
  Stats.Seconds = T.elapsedNs() / 1e9;
  return Stats;
}
