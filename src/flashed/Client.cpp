//===- flashed/Client.cpp -------------------------------------*- C++ -*-===//

#include "flashed/Client.h"

#include "flashed/Http.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <random>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

/// Connects a TCP_NODELAY socket to 127.0.0.1:\p Port.
Expected<int> connectLoopback(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::make(ErrorCode::EC_IO, "socket: %s",
                       std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(Fd);
    return Error::make(ErrorCode::EC_IO, "connect: %s", std::strerror(E));
  }
  return Fd;
}

/// Applies SO_SNDTIMEO/SO_RCVTIMEO so a wedged peer bounds every
/// blocking send/receive instead of hanging the caller forever.
void applySocketTimeout(int Fd, uint64_t Ms) {
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(Ms / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

/// True when errno says the socket timeout (not the peer) ended the
/// call — the EC_Timeout vs EC_IO distinction dsu-updatectl maps to
/// different exit codes.
bool isTimeoutErrno(int E) { return E == EAGAIN || E == EWOULDBLOCK; }

Error writeAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      if (N < 0 && isTimeoutErrno(errno))
        return Error::make(ErrorCode::EC_Timeout, "write timed out");
      return Error::make(ErrorCode::EC_IO, "write: %s",
                         std::strerror(errno));
    }
    Off += static_cast<size_t>(N);
  }
  return Error::success();
}

/// Framing facts of one buffered response.
struct ResponseFrame {
  bool Complete = false;
  int Status = 0;
  size_t HeadBytes = 0;
  size_t ContentLength = 0;
};

/// Scans \p Buf for a complete response head; Content-Length framing.
Expected<ResponseFrame> scanResponse(std::string_view Buf) {
  ResponseFrame F;
  size_t HeadEnd = Buf.find("\r\n\r\n");
  if (HeadEnd == std::string_view::npos)
    return F; // incomplete, not an error
  F.HeadBytes = HeadEnd + 4;

  // "HTTP/1.1 200 OK"
  size_t Sp = Buf.find(' ');
  if (Sp == std::string_view::npos || Sp > HeadEnd)
    return Error::make(ErrorCode::EC_Parse, "malformed status line");
  std::string_view Code = Buf.substr(Sp + 1);
  auto [Ptr, Ec] = std::from_chars(
      Code.data(), Code.data() + std::min<size_t>(Code.size(), 3),
      F.Status);
  if (Ec != std::errc())
    return Error::make(ErrorCode::EC_Parse, "malformed status code");
  (void)Ptr;

  // Header lines, for Content-Length.
  std::string_view Rest = Buf.substr(0, HeadEnd);
  while (!Rest.empty()) {
    std::string_view Line = popHeaderLine(Rest);
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      continue;
    if (asciiCaseEqual(trim(Line.substr(0, Colon)), "content-length")) {
      if (!parseContentLength(trim(Line.substr(Colon + 1)),
                              F.ContentLength))
        return Error::make(ErrorCode::EC_Parse, "bad Content-Length");
    }
  }
  F.Complete = true;
  return F;
}

/// Backoff before retry attempt \p Attempt (0-based count of failures
/// so far): capped exponential on the policy's base, stretched to the
/// server's Retry-After hint when that is longer, plus up to 25%
/// jitter so a herd of retrying operators decorrelates.
uint64_t backoffMs(const RetryPolicy &P, unsigned Attempt,
                   int64_t RetryAfterHintMs) {
  uint64_t Delay = P.BaseDelayMs;
  for (unsigned I = 0; I != Attempt && Delay < P.MaxDelayMs; ++I)
    Delay *= 2;
  Delay = std::min(Delay, P.MaxDelayMs);
  if (RetryAfterHintMs > 0)
    Delay = std::min(std::max(Delay, static_cast<uint64_t>(RetryAfterHintMs)),
                     P.MaxDelayMs);
  static thread_local std::minstd_rand Rng(static_cast<unsigned>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  if (Delay > 0)
    Delay += Rng() % (Delay / 4 + 1);
  return Delay;
}

} // namespace

int64_t dsu::flashed::retryAfterMs(const FetchResult &R) {
  std::string_view Rest = R.Headers;
  while (!Rest.empty()) {
    std::string_view Line = popHeaderLine(Rest);
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      continue;
    if (!asciiCaseEqual(trim(Line.substr(0, Colon)), "retry-after"))
      continue;
    uint64_t Seconds = 0;
    if (!parseUInt(trim(Line.substr(Colon + 1)), Seconds))
      return -1;
    return static_cast<int64_t>(Seconds * 1000);
  }
  return -1;
}

Expected<FetchResult> dsu::flashed::httpGet(uint16_t Port,
                                            const std::string &Target) {
  Expected<int> Fd = connectLoopback(Port);
  if (!Fd)
    return Fd.takeError();

  std::string Request = "GET " + Target + " HTTP/1.0\r\nHost: localhost\r\n"
                        "User-Agent: dsu-loadgen\r\n\r\n";
  if (Error E = writeAll(*Fd, Request)) {
    ::close(*Fd);
    return E;
  }

  std::string Raw;
  char Buf[1 << 16];
  while (true) {
    ssize_t N = ::read(*Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Raw.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      break;
    if (errno == EINTR)
      continue;
    int E = errno;
    ::close(*Fd);
    return Error::make(ErrorCode::EC_IO, "read: %s", std::strerror(E));
  }
  ::close(*Fd);

  FetchResult Out;
  size_t HeadEnd = Raw.find("\r\n\r\n");
  if (HeadEnd == std::string::npos)
    return Error::make(ErrorCode::EC_Parse, "response without header end");
  Out.Headers = Raw.substr(0, HeadEnd);
  Out.Body = Raw.substr(HeadEnd + 4);

  // "HTTP/1.0 200 OK"
  size_t Sp = Out.Headers.find(' ');
  if (Sp == std::string::npos)
    return Error::make(ErrorCode::EC_Parse, "malformed status line");
  Out.Status = std::atoi(Out.Headers.c_str() + Sp + 1);
  return Out;
}

Expected<FetchResult> dsu::flashed::httpPost(uint16_t Port,
                                             const std::string &Target,
                                             const std::string &Body,
                                             const std::string &ContentType) {
  KeepAliveClient C;
  if (Error E = C.connectTo(Port))
    return E;
  return C.post(Target, Body, ContentType, /*Close=*/true);
}

// --- KeepAliveClient ------------------------------------------------------

Error KeepAliveClient::connectTo(uint16_t ToPort) {
  if (Fd >= 0 && Port == ToPort)
    return Error::success();
  disconnect();
  Expected<int> NewFd = connectLoopback(ToPort);
  if (!NewFd)
    return NewFd.takeError();
  Fd = *NewFd;
  Port = ToPort;
  if (TimeoutMs != 0)
    applySocketTimeout(Fd, TimeoutMs);
  return Error::success();
}

void KeepAliveClient::setTimeoutMs(uint64_t Ms) {
  TimeoutMs = Ms;
  if (Fd >= 0 && Ms != 0)
    applySocketTimeout(Fd, Ms);
}

void KeepAliveClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

Error KeepAliveClient::sendAll(const std::string &Bytes) {
  return writeAll(Fd, Bytes);
}

Expected<FetchResult> KeepAliveClient::readResponse() {
  char Chunk[1 << 16];
  while (true) {
    Expected<ResponseFrame> F = scanResponse(Buf);
    if (!F) {
      // A parse failure leaves the stream desynced; drop the connection
      // (and its buffered bytes) so a retry starts clean.
      Error E = F.takeError();
      disconnect();
      return E;
    }
    if (F->Complete && Buf.size() >= F->HeadBytes + F->ContentLength) {
      FetchResult Out;
      Out.Status = F->Status;
      Out.Headers = Buf.substr(0, F->HeadBytes - 4);
      Out.Body = Buf.substr(F->HeadBytes, F->ContentLength);
      Buf.erase(0, F->HeadBytes + F->ContentLength);
      return Out;
    }
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buf.append(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    int E = N < 0 ? errno : 0;
    disconnect();
    if (N == 0)
      return Error::make(ErrorCode::EC_IO, "connection closed mid-response");
    if (isTimeoutErrno(E))
      return Error::make(ErrorCode::EC_Timeout, "read timed out");
    return Error::make(ErrorCode::EC_IO, "read: %s", std::strerror(E));
  }
}

Expected<FetchResult> KeepAliveClient::get(const std::string &Target,
                                           bool Close) {
  std::string Request = "GET " + Target + " HTTP/1.1\r\nHost: localhost\r\n";
  if (Close)
    Request += "Connection: close\r\n";
  Request += "\r\n";
  return roundTrip(Request, Close);
}

Expected<FetchResult> KeepAliveClient::post(const std::string &Target,
                                            const std::string &Body,
                                            const std::string &ContentType,
                                            bool Close) {
  std::string Request = "POST " + Target + " HTTP/1.1\r\nHost: localhost\r\n";
  Request += "Content-Type: " + ContentType + "\r\n";
  Request += "Content-Length: " + std::to_string(Body.size()) + "\r\n";
  if (Close)
    Request += "Connection: close\r\n";
  Request += "\r\n";
  Request += Body;
  return roundTrip(Request, Close);
}

Expected<FetchResult> KeepAliveClient::roundTrip(const std::string &Request,
                                                 bool Close) {
  if (Fd < 0) {
    if (Error E = connectTo(Port))
      return E;
  }
  // The server may have dropped the idle connection; retry once on a
  // fresh one before reporting failure.
  for (int Attempt = 0; Attempt != 2; ++Attempt) {
    if (Error E = sendAll(Request)) {
      disconnect();
      if (Error E2 = connectTo(Port))
        return E2;
      continue;
    }
    Expected<FetchResult> R = readResponse();
    if (R) {
      if (Close)
        disconnect();
      return R;
    }
    // A timeout means the server is wedged, not that it dropped an idle
    // connection — retrying would just double the operator's wait.
    if (Attempt == 1 || R.error().code() == ErrorCode::EC_Timeout)
      return R.takeError();
    R.takeError(); // swallow; reconnect and retry
    if (Error E2 = connectTo(Port))
      return E2;
  }
  return Error::make(ErrorCode::EC_IO, "keep-alive request failed");
}

Expected<FetchResult> KeepAliveClient::getWithRetry(const std::string &Target,
                                                    const RetryPolicy &P) {
  for (unsigned Attempt = 0;; ++Attempt) {
    Expected<FetchResult> R = get(Target);
    if (!R || R->Status != 503 || Attempt + 1 >= P.MaxAttempts)
      return R;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoffMs(P, Attempt, retryAfterMs(*R))));
  }
}

Expected<FetchResult>
KeepAliveClient::postWithRetry(const std::string &Target,
                               const std::string &Body,
                               const std::string &ContentType,
                               const RetryPolicy &P) {
  for (unsigned Attempt = 0;; ++Attempt) {
    Expected<FetchResult> R = post(Target, Body, ContentType);
    if (!R || R->Status != 503 || Attempt + 1 >= P.MaxAttempts)
      return R;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoffMs(P, Attempt, retryAfterMs(*R))));
  }
}

Expected<std::vector<FetchResult>>
KeepAliveClient::pipeline(const std::vector<std::string> &Targets) {
  if (Fd < 0) {
    if (Error E = connectTo(Port))
      return E;
  }
  std::string Burst;
  for (const std::string &T : Targets)
    Burst += "GET " + T + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (Error E = sendAll(Burst))
    return E;

  std::vector<FetchResult> Out;
  Out.reserve(Targets.size());
  for (size_t I = 0; I != Targets.size(); ++I) {
    Expected<FetchResult> R = readResponse();
    if (!R)
      return R.takeError();
    Out.push_back(std::move(*R));
  }
  return Out;
}

// --- Load generators ------------------------------------------------------

Expected<LoadStats> dsu::flashed::runLoad(
    uint16_t Port, const std::vector<std::string> &Targets, uint64_t Count) {
  if (Targets.empty())
    return Error::make(ErrorCode::EC_Invalid, "no targets to load");
  LoadStats Stats;
  Timer T;
  for (uint64_t I = 0; I != Count; ++I) {
    Expected<FetchResult> R = httpGet(Port, Targets[I % Targets.size()]);
    ++Stats.Requests;
    if (!R || R->Status != 200) {
      ++Stats.Failures;
      continue;
    }
    Stats.BytesReceived += R->Body.size() + R->Headers.size();
  }
  Stats.Seconds = T.elapsedNs() / 1e9;
  return Stats;
}

Expected<LoadStats> dsu::flashed::runLoadKeepAlive(
    uint16_t Port, const std::vector<std::string> &Targets, uint64_t Count,
    unsigned Connections) {
  if (Targets.empty())
    return Error::make(ErrorCode::EC_Invalid, "no targets to load");
  if (Connections == 0)
    Connections = 1;
  std::vector<KeepAliveClient> Clients(Connections);
  for (KeepAliveClient &C : Clients)
    if (Error E = C.connectTo(Port))
      return E;

  LoadStats Stats;
  Timer T;
  for (uint64_t I = 0; I != Count; ++I) {
    KeepAliveClient &C = Clients[I % Connections];
    Expected<FetchResult> R = C.get(Targets[I % Targets.size()]);
    ++Stats.Requests;
    if (!R || R->Status != 200) {
      ++Stats.Failures;
      continue;
    }
    Stats.BytesReceived += R->Body.size() + R->Headers.size();
  }
  Stats.Seconds = T.elapsedNs() / 1e9;
  return Stats;
}
