//===- flashed/App.cpp ----------------------------------------*- C++ -*-===//

#include "flashed/App.h"

#include "analysis/Finding.h"
#include "epoch/Epoch.h"
#include "flashed/Http.h"
#include "net/ReactorPool.h"
#include "persist/Journal.h"
#include "runtime/UpdateController.h"
#include "support/StringUtil.h"
#include "trace/Profile.h"
#include "trace/Trace.h"
#include "types/TypeParser.h"
#include "vtal/native/NativeImage.h"

#include <chrono>
#include <cstdlib>

using namespace dsu;
using namespace dsu::flashed;

// --- Version-1 pipeline implementations ----------------------------------

std::string FlashedApp::parseTargetV1(std::string Raw) {
  Expected<HttpRequest> Req = parseHttpRequest(Raw);
  if (!Req)
    return "!400 malformed request";
  if (Req->Method != "GET" && Req->Method != "HEAD")
    return "!405 method not allowed";
  // Known v1 defect (fixed by patch P1): the query string is not
  // stripped, so "/doc.html?x=1" is treated as a literal document name.
  std::string Out(Req->Method);
  Out += ' ';
  Out += Req->Target;
  return Out;
}

std::string FlashedApp::mapUrlV1(std::string Target) {
  if (DocStore::isUnsafePath(Target))
    return "!403 forbidden";
  if (Target == "/")
    return "/index.html";
  return Target;
}

std::string FlashedApp::mimeTypeV1(std::string Path) {
  size_t Dot = Path.rfind('.');
  std::string Ext = Dot == std::string::npos ? "" : Path.substr(Dot + 1);
  // v1 ships a deliberately small table (patch P2 extends it).
  if (Ext == "html" || Ext == "htm")
    return "text/html";
  if (Ext == "txt")
    return "text/plain";
  return "application/octet-stream";
}

std::string FlashedApp::cacheGetV1(std::string Path) {
  // Lock-free read of the published cache snapshot: one atomic load
  // inside the request's epoch scope.  No mutex anywhere on the cache
  // read path — a staging thread snapshots the same immutable payload.
  epoch::Guard G;
  auto *C = Cache->live<const CacheV1>();
  auto It = C->Entries.find(Path);
  return It == C->Entries.end() ? std::string() : *It->second;
}

void FlashedApp::cachePutV1(std::string Path,
                            std::string Body) {
  // Copy-update-publish: writers serialize on the payload lock (the
  // miss path, not the hot path), readers never block, and the old
  // snapshot drains through the epoch domain.
  auto Shared = std::make_shared<const std::string>(std::move(Body));
  std::lock_guard<std::mutex> G(Cache->payloadLock());
  auto Next = std::make_shared<CacheV1>(*Cache->get<CacheV1>());
  Next->Entries[Path] = std::move(Shared);
  Cache->publish(std::move(Next));
}

void FlashedApp::logAccessV1(std::string Path, int64_t Status) {
  // v1 does not log (patch P5 introduces the logging subsystem).
  (void)Path;
  (void)Status;
}

// --- Wiring ----------------------------------------------------------------

static int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Error FlashedApp::init(DocStore InitialDocs) {
  Docs = std::move(InitialDocs);
  TypeContext &Ctx = RT.types();

  // The cache's named type and its state cell.
  Expected<const Type *> ReprV1 = parseType(Ctx, cacheReprV1());
  if (!ReprV1)
    return ReprV1.takeError();
  VersionedName CacheName{"flashed_cache", 1};
  if (Error E = RT.defineNamedType(CacheName, *ReprV1))
    return E;
  Expected<StateCell *> Cell = RT.defineState(
      "flashed.cache", Ctx.namedType(CacheName), std::make_shared<CacheV1>());
  if (!Cell)
    return Cell.takeError();
  Cache = *Cell;

  // The updateable pipeline.
  {
    Expected<Updateable<std::string(std::string)>> H =
        RT.defineUpdateable("flashed.parse_target", &parseTargetV1);
    if (!H)
      return H.takeError();
    ParseTarget = *H;
  }
  {
    Expected<Updateable<std::string(std::string)>> H =
        RT.defineUpdateable("flashed.map_url", &mapUrlV1);
    if (!H)
      return H.takeError();
    MapUrl = *H;
  }
  {
    Expected<Updateable<std::string(std::string)>> H =
        RT.defineUpdateable("flashed.mime_type", &mimeTypeV1);
    if (!H)
      return H.takeError();
    MimeType = *H;
  }
  {
    Expected<Updateable<std::string(std::string)>> H =
        RT.defineUpdateableFn<std::string, std::string>(
            "flashed.cache_get",
            [this](std::string Path) { return cacheGetV1(Path); });
    if (!H)
      return H.takeError();
    CacheGet = *H;
  }
  {
    Expected<Updateable<void(std::string, std::string)>> H =
        RT.defineUpdateableFn<void, std::string, std::string>(
            "flashed.cache_put", [this](std::string Path, std::string Body) {
              cachePutV1(Path, Body);
            });
    if (!H)
      return H.takeError();
    CachePut = *H;
  }
  {
    Expected<Updateable<void(std::string, int64_t)>> H =
        RT.defineUpdateable("flashed.log_access", &logAccessV1);
    if (!H)
      return H.takeError();
    LogAccess = *H;
  }

  // Host exports for patch code.
  if (Error E = RT.exportHost(
          "flashed.docs_get",
          Ctx.fnType({Ctx.stringType()}, Ctx.stringType()),
          [this](const std::vector<vtal::Value> &Args)
              -> Expected<vtal::Value> {
            // Shared handle: patch code runs on any pool worker, and a
            // raw get() pointer could be freed by a concurrent put().
            SharedBody Body = Docs.getShared(Args[0].asStr());
            return vtal::Value::makeStr(Body ? *Body : "");
          }))
    return E;
  if (Error E = RT.exportHost(
          "flashed.now_ms", Ctx.fnType({}, Ctx.intType()),
          [](const std::vector<vtal::Value> &) -> Expected<vtal::Value> {
            return vtal::Value::makeInt(nowMs());
          },
          reinterpret_cast<void *>(&nowMs)))
    return E;
  return Error::success();
}

// --- Request handling --------------------------------------------------

template <typename HParse, typename HMap, typename HMime, typename HGet,
          typename HPut, typename HLog>
std::string FlashedApp::handleWith(const std::string &RawRequest,
                                   HParse &&Parse, HMap &&Map, HMime &&Mime,
                                   HGet &&Get, HPut &&Put, HLog &&Log) {
  // One epoch scope per request: pins non-worker callers (tests, the
  // embedding program's own threads) to a single code generation across
  // all six pipeline stages — a rolling update can never split one
  // request across two generations — and keeps every epoch-published
  // payload touched below alive.  Free on a reactor worker thread.
  epoch::Guard EpochScope;
  Requests.fetch_add(1, std::memory_order_relaxed);

  auto ErrorResponse = [&](const std::string &Tagged) {
    // "!404 not found" -> status 404.
    int Code = std::atoi(Tagged.c_str() + 1);
    if (Code < 100 || Code > 599)
      Code = 500;
    std::string Body = "<html><body><h1>" + std::to_string(Code) + " " +
                       statusText(Code) + "</h1></body></html>\n";
    Log(Tagged, Code);
    return buildHttpResponse(Code, "text/html", Body);
  };

  std::string Parsed = Parse(RawRequest);
  if (!Parsed.empty() && Parsed[0] == '!')
    return ErrorResponse(Parsed);

  size_t Sp = Parsed.find(' ');
  assert(Sp != std::string::npos && "parse stage emitted no separator");
  std::string Method = Parsed.substr(0, Sp);
  std::string Target = Parsed.substr(Sp + 1);

  std::string Path = Map(Target);
  if (!Path.empty() && Path[0] == '!')
    return ErrorResponse(Path);

  std::string Body = Get(Path);
  if (Body.empty()) {
    // getShared, not get(): a raw pointer could be retired by a
    // concurrent hot replacement of the same document.
    SharedBody Doc = Docs.getShared(Path);
    if (!Doc)
      return ErrorResponse("!404 not found");
    Body = *Doc;
    Put(Path, Body);
  }

  std::string ContentType = Mime(Path);
  if (Method == "HEAD")
    Body.clear();
  Log(Path, 200);
  return buildHttpResponse(200, ContentType, Body);
}

std::string FlashedApp::handle(const std::string &RawRequest) {
  return handleWith(
      RawRequest, [&](const std::string &S) { return ParseTarget(S); },
      [&](const std::string &S) { return MapUrl(S); },
      [&](const std::string &S) { return MimeType(S); },
      [&](const std::string &S) { return CacheGet(S); },
      [&](const std::string &P, const std::string &B) { CachePut(P, B); },
      [&](const std::string &P, int64_t C) { LogAccess(P, C); });
}

std::string FlashedApp::handleStatic(const std::string &RawRequest) {
  return handleWith(
      RawRequest, [&](const std::string &S) { return parseTargetV1(S); },
      [&](const std::string &S) { return mapUrlV1(S); },
      [&](const std::string &S) { return mimeTypeV1(S); },
      [&](const std::string &S) { return cacheGetV1(S); },
      [&](const std::string &P, const std::string &B) { cachePutV1(P, B); },
      [&](const std::string &P, int64_t C) { logAccessV1(P, C); });
}

// --- The zero-copy fast path -------------------------------------------

void FlashedApp::fillCache(const std::string &Path, const SharedBody &Doc) {
  // The miss path: copy-update-publish under the writer lock.  The
  // version is re-read under the lock — a migration cannot slip between
  // the dispatch and the publish.
  std::lock_guard<std::mutex> G(Cache->payloadLock());
  const Type *Ty = Cache->type();
  uint32_t Version = Ty->isNamed() ? Ty->name().Version : 0;
  if (Version == 1) {
    auto Next = std::make_shared<CacheV1>(*Cache->get<CacheV1>());
    Next->Entries[Path] = Doc;
    Cache->publish(std::move(Next));
  } else if (Version == 2) {
    auto Next = std::make_shared<CacheV2>(*Cache->get<CacheV2>());
    CacheEntryV2 E;
    E.Body = Doc;
    E.LastAccessMs.store(nowMs(), std::memory_order_relaxed);
    Next->Entries[Path] = std::move(E);
    Cache->publish(std::move(Next));
  }
}

SharedBody FlashedApp::lookupBody(const std::string &Path) {
  // The updateable cache_get stage keeps its fn(string)->string signature
  // and therefore returns bodies by value; the fast path reads the same
  // cell directly, switching on the cell's live type version so it keeps
  // working after P3 migrates %flashed_cache@1 -> @2.  Hit accounting
  // matches what the version's cache_get implementation would do.
  //
  // The read is lock-free: the published (type, payload) pair is one
  // atomic load inside the request's epoch scope (a no-op for reactor
  // workers), entry hit counters are relaxed atomics bumped on the
  // shared immutable snapshot, and the mutex appears only on the miss
  // path's copy-update-publish.
  epoch::Guard G;
  const StateCell::LivePayload *LP = Cache->livePayload();
  uint32_t Version = LP->Ty->isNamed() ? LP->Ty->name().Version : 0;
  if (Version == 1) {
    auto *C = static_cast<const CacheV1 *>(LP->Data.get());
    auto It = C->Entries.find(Path);
    if (It != C->Entries.end())
      return It->second;
  } else if (Version == 2) {
    auto *C = static_cast<const CacheV2 *>(LP->Data.get());
    auto It = C->Entries.find(Path);
    if (It != C->Entries.end()) {
      const_cast<CacheEntryV2 &>(It->second).noteHit(nowMs());
      // Statistics mutated: a migration staged from an older snapshot
      // must still rebuild at commit, as the locked path always did.
      Cache->noteMutation();
      return It->second.Body;
    }
  } else {
    // A representation this build does not know: go through the
    // updateable stage and accept the copy.
    std::string B = CacheGet(Path);
    if (!B.empty())
      return std::make_shared<const std::string>(std::move(B));
  }

  SharedBody Doc = Docs.getShared(Path);
  if (!Doc)
    return nullptr;
  if (Version == 1 || Version == 2)
    fillCache(Path, Doc);
  else
    CachePut(Path, *Doc);
  return Doc;
}

template <typename HParse, typename HMap, typename HMime, typename HLog>
void FlashedApp::handleIntoWith(const RequestHead &Head,
                                std::string_view Raw, std::string &Out,
                                SharedBody &Body, HParse &&Parse,
                                HMap &&Map, HMime &&Mime, HLog &&Log) {
  // Same request-scope epoch pin as handleWith (no-op on workers).
  epoch::Guard EpochScope;
  Requests.fetch_add(1, std::memory_order_relaxed);
  bool KeepAlive = Head.KeepAlive && !Head.Malformed;

  auto ErrorResponse = [&](const std::string &Tagged) {
    int Code = std::atoi(Tagged.c_str() + 1);
    if (Code < 100 || Code > 599)
      Code = 500;
    std::string Html = "<html><body><h1>" + std::to_string(Code) + " " +
                       statusText(Code) + "</h1></body></html>\n";
    Log(Tagged, Code);
    appendHttpResponse(Out, Code, "text/html", Html, KeepAlive);
  };

  std::string Parsed = Parse(std::string(Raw));
  if (!Parsed.empty() && Parsed[0] == '!')
    return ErrorResponse(Parsed);

  size_t Sp = Parsed.find(' ');
  assert(Sp != std::string::npos && "parse stage emitted no separator");
  bool HeadOnly = Parsed.compare(0, Sp, "HEAD") == 0;
  std::string Target = Parsed.substr(Sp + 1);

  std::string Path = Map(Target);
  if (!Path.empty() && Path[0] == '!')
    return ErrorResponse(Path);

  SharedBody Doc = lookupBody(Path);
  if (!Doc)
    return ErrorResponse("!404 not found");

  std::string ContentType = Mime(Path);
  Log(Path, 200);
  appendHttpResponseHead(Out, 200, ContentType, Doc->size(), KeepAlive);
  if (!HeadOnly)
    Body = std::move(Doc);
}

void FlashedApp::handleInto(const RequestHead &Head, std::string_view Raw,
                            std::string &Out, SharedBody &Body) {
  if (Admin && !Head.Malformed && startsWith(Head.Target, "/admin/")) {
    Requests.fetch_add(1, std::memory_order_relaxed);
    handleAdmin(Head, Raw, Out);
    return;
  }
  handleIntoWith(
      Head, Raw, Out, Body,
      [&](const std::string &S) { return ParseTarget(S); },
      [&](const std::string &S) { return MapUrl(S); },
      [&](const std::string &S) { return MimeType(S); },
      [&](const std::string &P, int64_t C) { LogAccess(P, C); });
}

void FlashedApp::handleStaticInto(const RequestHead &Head,
                                  std::string_view Raw, std::string &Out,
                                  SharedBody &Body) {
  handleIntoWith(
      Head, Raw, Out, Body,
      [&](const std::string &S) { return parseTargetV1(S); },
      [&](const std::string &S) { return mapUrlV1(S); },
      [&](const std::string &S) { return mimeTypeV1(S); },
      [&](const std::string &P, int64_t C) { logAccessV1(P, C); });
}

// --- The /admin control plane -------------------------------------------

namespace {

void jsonEscapeTo(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
}

void appendRecordJson(std::string &J, const UpdateRecord &R) {
  J += formatString("{\"tx\": %llu, \"patch\": \"",
                    static_cast<unsigned long long>(R.TxId));
  jsonEscapeTo(J, R.PatchId);
  J += "\", \"phase\": \"";
  jsonEscapeTo(J, R.Phase);
  J += formatString(
      "\", \"stage_ms\": %.3f, \"commit_ms\": %.3f, \"verify_ms\": %.3f, "
      "\"prepare_ms\": %.3f, \"build_ms\": %.3f, \"total_ms\": %.3f, "
      "\"cells_migrated\": %zu, \"provides\": %zu, \"state_rebuilt\": %s",
      R.StageMs, R.CommitMs, R.VerifyMs, R.PrepareMs, R.BuildMs, R.TotalMs,
      R.CellsMigrated, R.ProvidesLinked, R.StateRebuilt ? "true" : "false");
  if (!R.CommitMode.empty())
    J += formatString(", \"commit_mode\": \"%s\", "
                      "\"stage_to_commit_us\": %llu",
                      R.CommitMode.c_str(),
                      static_cast<unsigned long long>(R.StageToCommitUs));
  if (!R.Rollout.empty()) {
    J += ", \"rollout\": \"";
    jsonEscapeTo(J, R.Rollout);
    J += '"';
  }
  if (!R.FailureReason.empty()) {
    J += ", \"failure\": \"";
    jsonEscapeTo(J, R.FailureReason);
    J += '"';
  }
  // Analyzer verdict summary — flat fields only, so line-oriented
  // clients (dsu-updatectl) can pick them up without a JSON parser.
  // The full finding list is served by GET /admin/lint?id=<tx>.
  if (R.AnalysisRan) {
    size_t Errors = 0, Warnings = 0;
    for (const analysis::Finding &F : R.AnalysisFindings) {
      Errors += F.Sev == analysis::Severity::Error;
      Warnings += F.Sev == analysis::Severity::Warning;
    }
    J += formatString(", \"analysis_errors\": %zu, "
                      "\"analysis_warnings\": %zu, \"analysis_ms\": %.3f, "
                      "\"code_only_predicted\": %s",
                      Errors, Warnings, R.AnalysisMs,
                      R.CodeOnlyPredicted ? "true" : "false");
    if (!R.AnalysisFindings.empty()) {
      J += ", \"analysis_codes\": \"";
      bool FirstCode = true;
      for (const analysis::Finding &F : R.AnalysisFindings) {
        if (!FirstCode)
          J += ' ';
        FirstCode = false;
        jsonEscapeTo(J, F.Code);
      }
      J += '"';
    }
  }
  J += '}';
}

/// One finding as a JSON object (the GET /admin/lint element form).
void appendFindingJson(std::string &J, const analysis::Finding &F) {
  J += "{\"severity\": \"";
  J += analysis::severityName(F.Sev);
  J += "\", \"code\": \"";
  jsonEscapeTo(J, F.Code);
  J += "\", \"message\": \"";
  jsonEscapeTo(J, F.Message);
  J += '"';
  if (!F.Fn.empty()) {
    J += ", \"fn\": \"";
    jsonEscapeTo(J, F.Fn);
    J += '"';
  }
  if (F.HasPC)
    J += formatString(", \"pc\": %u", F.PC);
  J += '}';
}

void appendRolloutJson(std::string &J, const RolloutRecord &R) {
  J += formatString("{\"id\": %llu, \"tx\": %llu, \"patch\": \"",
                    static_cast<unsigned long long>(R.Id),
                    static_cast<unsigned long long>(R.TxId));
  jsonEscapeTo(J, R.PatchId);
  J += "\", \"state\": \"";
  jsonEscapeTo(J, R.State);
  J += "\", \"mode\": \"";
  jsonEscapeTo(J, R.Mode);
  J += "\", \"verdict\": \"";
  jsonEscapeTo(J, R.Verdict);
  J += formatString(
      "\", \"canary_mask\": %llu, \"window_ms\": %llu, "
      "\"detect_ms\": %.2f, \"revert_ms\": %.2f, "
      "\"canary\": {\"requests\": %llu, \"serves\": %llu, "
      "\"errors_5xx\": %llu, \"traps\": %llu, \"error_rate\": %.5f}, "
      "\"control\": {\"requests\": %llu, \"serves\": %llu, "
      "\"errors_5xx\": %llu, \"error_rate\": %.5f}",
      static_cast<unsigned long long>(R.CanaryMask),
      static_cast<unsigned long long>(R.WindowMs), R.DetectMs, R.RevertMs,
      static_cast<unsigned long long>(R.CanaryRequests),
      static_cast<unsigned long long>(R.CanaryServes),
      static_cast<unsigned long long>(R.CanaryErrors),
      static_cast<unsigned long long>(R.CanaryTraps), R.CanaryErrorRate,
      static_cast<unsigned long long>(R.ControlRequests),
      static_cast<unsigned long long>(R.ControlServes),
      static_cast<unsigned long long>(R.ControlErrors),
      R.ControlErrorRate);
  if (!R.Reason.empty()) {
    J += ", \"reason\": \"";
    jsonEscapeTo(J, R.Reason);
    J += '"';
  }
  J += '}';
}

std::string_view queryParam(std::string_view Target, std::string_view Key) {
  size_t Q = Target.find('?');
  if (Q == std::string_view::npos)
    return {};
  std::string_view Qs = Target.substr(Q + 1);
  while (!Qs.empty()) {
    size_t Amp = Qs.find('&');
    std::string_view Pair = Qs.substr(0, Amp);
    size_t Eq = Pair.find('=');
    if (Eq != std::string_view::npos && Pair.substr(0, Eq) == Key)
      return Pair.substr(Eq + 1);
    if (Amp == std::string_view::npos)
      break;
    Qs.remove_prefix(Amp + 1);
  }
  return {};
}

} // namespace

int dsu::flashed::adminStatusForError(const Error &E) {
  if (!E)
    return 200;
  switch (E.code()) {
  case ErrorCode::EC_Busy:
    return 503; // retryable: the update thread was not at a safe point
  case ErrorCode::EC_Link:
    return 404;
  default:
    return 409;
  }
}

void FlashedApp::handleAdmin(const RequestHead &Head, std::string_view Raw,
                             std::string &Out) {
  bool KeepAlive = Head.KeepAlive;
  std::string_view Target = Head.Target;
  std::string_view PathOnly = Target.substr(0, Target.find('?'));

  auto Respond = [&](int Code, std::string_view Json,
                     const char *ExtraHeader = nullptr) {
    Out += formatString("HTTP/1.1 %d %s\r\n", Code, statusText(Code));
    Out += "Content-Type: application/json\r\n";
    Out += formatString("Content-Length: %zu\r\n", Json.size());
    if (ExtraHeader) {
      Out += ExtraHeader;
      Out += "\r\n";
    }
    Out += KeepAlive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
    Out += "\r\n";
    Out += Json;
  };

  if (Head.Method == "POST" && PathOnly == "/admin/patches") {
    std::string_view Body =
        Raw.size() > Head.HeadBytes ? Raw.substr(Head.HeadBytes)
                                    : std::string_view();
    if (Body.empty())
      return Respond(400, "{\"error\": \"empty patch artifact\"}");
    // Staging (parse, verify, link prepare, state build) happens on the
    // controller's worker; the commit lands at the server's idle hook.
    StagedUpdate U = Admin->stageArtifactText(std::string(Body),
                                              "POST /admin/patches");
    return Respond(202, formatString(
                            "{\"tx\": %llu, \"phase\": \"%s\"}",
                            static_cast<unsigned long long>(U.id()),
                            updatePhaseName(U.phase())));
  }

  if (Head.Method == "GET" && PathOnly == "/admin/updates") {
    std::string J = "{\"log\": [";
    bool First = true;
    for (const UpdateRecord &R : RT.updateLog()) {
      if (!First)
        J += ", ";
      First = false;
      appendRecordJson(J, R);
    }
    J += "], \"pending\": [";
    First = true;
    for (const UpdateRecord &R : RT.pendingUpdates()) {
      if (!First)
        J += ", ";
      First = false;
      appendRecordJson(J, R);
    }
    J += "]}";
    return Respond(200, J);
  }

  if (Head.Method == "GET" && PathOnly == "/admin/status") {
    const char *PendingMode = "none";
    switch (RT.pendingCommitMode()) {
    case Runtime::PendingCommit::Rolling:
      PendingMode = "rolling";
      break;
    case Runtime::PendingCommit::Barrier:
      PendingMode = "barrier";
      break;
    case Runtime::PendingCommit::None:
      break;
    }
    uint64_t GlobalEpoch = epoch::domain().globalEpoch();
    std::string J = formatString(
        "{\"updates_applied\": %u, \"queue_depth\": %zu, "
        "\"update_pending\": %s, \"pending_commit\": \"%s\", "
        "\"rolling_commits\": %llu, \"epoch_global\": %llu, "
        "\"staging_backlog\": %zu, \"requests_handled\": %llu, "
        "\"verify_functions_total\": %llu, "
        "\"analysis_findings_total\": %llu",
        RT.updatesApplied(), RT.queueDepth(),
        RT.updatePending() ? "true" : "false", PendingMode,
        static_cast<unsigned long long>(RT.rollingCommits()),
        static_cast<unsigned long long>(GlobalEpoch), Admin->backlog(),
        static_cast<unsigned long long>(requestsHandled()),
        static_cast<unsigned long long>(RT.verifyFunctionsTotal()),
        static_cast<unsigned long long>(RT.analysisFindingsTotal()));
    if (Pool) {
      J += formatString(", \"workers\": %u, \"barrier_rounds\": %llu, "
                        "\"worker_state\": [",
                        Pool->workers(),
                        static_cast<unsigned long long>(
                            Pool->barrierRounds()));
      for (unsigned I = 0; I != Pool->workers(); ++I) {
        const net::WorkerStats &S = Pool->workerStats(I);
        uint64_t WEpoch = Pool->workerEpoch(I);
        uint64_t Lag = WEpoch && GlobalEpoch > WEpoch
                           ? GlobalEpoch - WEpoch
                           : 0;
        J += formatString(
            "%s{\"worker\": %u, \"state\": \"%s\", \"requests\": %llu, "
            "\"connections\": %llu, \"bytes_sent\": %llu, "
            "\"pauses\": %llu, \"pause_max_us\": %llu, "
            "\"epoch\": %llu, \"epoch_lag\": %llu, \"cpu\": %d}",
            I ? ", " : "", I,
            net::ReactorPool::workerStateName(Pool->workerState(I)),
            static_cast<unsigned long long>(
                S.Requests.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                S.Connections.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                S.BytesSent.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                S.Pauses.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(
                S.PauseMaxUs.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(WEpoch),
            static_cast<unsigned long long>(Lag), Pool->workerCpu(I));
      }
      J += ']';
    }
    if (Journal) {
      persist::JournalStatus S = Journal->status();
      J += formatString(
          ", \"journal\": {\"boots\": %llu, \"prev_boot\": \"%s\", "
          "\"chain_length\": %llu, \"quarantined\": %llu, "
          "\"replayed\": %u, \"replay_failed\": %u, \"replay_ms\": %llu}",
          static_cast<unsigned long long>(S.Boots),
          S.Boots <= 1 ? "first" : S.PrevCrashed ? "crash" : "clean",
          static_cast<unsigned long long>(S.ChainLength),
          static_cast<unsigned long long>(S.QuarantinedCount),
          S.ReplayCommitted, S.ReplayFailed,
          static_cast<unsigned long long>(S.ReplayMs));
    }
    J += '}';
    return Respond(200, J);
  }

  if (Head.Method == "GET" && PathOnly == "/admin/journal") {
    if (!Journal)
      return Respond(404, "{\"error\": \"no update journal attached\"}");
    persist::JournalStatus S = Journal->status();
    std::string J = formatString(
        "{\"boots\": %llu, \"prev_boot\": \"%s\", \"chain_length\": %llu, "
        "\"quarantined_count\": %llu, \"replay\": {\"attempted\": %u, "
        "\"committed\": %u, \"failed\": %u, \"duration_ms\": %llu}, "
        "\"quarantined\": [",
        static_cast<unsigned long long>(S.Boots),
        S.Boots <= 1 ? "first" : S.PrevCrashed ? "crash" : "clean",
        static_cast<unsigned long long>(S.ChainLength),
        static_cast<unsigned long long>(S.QuarantinedCount),
        S.ReplayAttempted, S.ReplayCommitted, S.ReplayFailed,
        static_cast<unsigned long long>(S.ReplayMs));
    bool First = true;
    for (const persist::QuarantineInfo &Q : Journal->quarantined()) {
      if (!First)
        J += ", ";
      First = false;
      J += "{\"patch\": \"";
      jsonEscapeTo(J, Q.PatchId);
      J += "\", \"hash\": \"";
      jsonEscapeTo(J, Q.Hash);
      J += formatString("\", \"crashes\": %u, \"seal_seq\": %llu}",
                        Q.CrashCount,
                        static_cast<unsigned long long>(Q.SealSeq));
    }
    J += ']';
    // The full record history is large; ?quarantined=1 serves only the
    // containment table (what `dsu-updatectl quarantine` reads).
    if (queryParam(Target, "quarantined") != "1") {
      J += ", \"records\": [";
      First = true;
      for (const persist::JournalRecord &R : Journal->records()) {
        if (!First)
          J += ", ";
        First = false;
        J += formatString("{\"seq\": %llu, \"kind\": \"%s\", "
                          "\"wall_ms\": %llu",
                          static_cast<unsigned long long>(R.Seq),
                          persist::recordKindName(R.Kind),
                          static_cast<unsigned long long>(R.WallMs));
        switch (R.Kind) {
        case persist::RecordKind::BootStart:
          if (!R.PrevExit.empty()) {
            J += ", \"prev_exit\": \"";
            jsonEscapeTo(J, R.PrevExit);
            J += '"';
          }
          break;
        case persist::RecordKind::Intent:
          J += ", \"patch\": \"";
          jsonEscapeTo(J, R.PatchId);
          J += "\", \"hash\": \"";
          jsonEscapeTo(J, R.Hash);
          J += formatString("\", \"origin\": \"%s\", \"attempt\": %u, "
                            "\"bytes\": %llu",
                            persist::intentOriginName(R.Origin), R.Attempt,
                            static_cast<unsigned long long>(R.SizeBytes));
          break;
        case persist::RecordKind::Seal:
          J += formatString(", \"intent\": %llu, \"outcome\": \"%s\"",
                            static_cast<unsigned long long>(R.IntentSeq),
                            persist::sealOutcomeName(R.Outcome));
          if (!R.CommitMode.empty()) {
            J += ", \"mode\": \"";
            jsonEscapeTo(J, R.CommitMode);
            J += '"';
          }
          if (!R.Verdict.empty()) {
            J += ", \"verdict\": \"";
            jsonEscapeTo(J, R.Verdict);
            J += '"';
          }
          if (!R.Reason.empty()) {
            J += ", \"reason\": \"";
            jsonEscapeTo(J, R.Reason);
            J += '"';
          }
          break;
        case persist::RecordKind::CleanShutdown:
          break;
        }
        J += '}';
      }
      J += ']';
    }
    J += '}';
    return Respond(200, J);
  }

  if (Head.Method == "GET" && PathOnly == "/admin/metrics") {
    std::string Text = renderMetrics();
    Out += formatString("HTTP/1.1 200 OK\r\n"
                        "Content-Type: text/plain; version=0.0.4\r\n"
                        "Content-Length: %zu\r\n",
                        Text.size());
    Out += KeepAlive ? "Connection: keep-alive\r\n"
                     : "Connection: close\r\n";
    Out += "\r\n";
    Out += Text;
    return;
  }

  if (Head.Method == "POST" && PathOnly == "/admin/rollout") {
    std::string_view Body =
        Raw.size() > Head.HeadBytes ? Raw.substr(Head.HeadBytes)
                                    : std::string_view();
    if (Body.empty())
      return Respond(400, "{\"error\": \"empty patch artifact\"}");
    RolloutOptions O;
    uint64_t V;
    if (parseUInt(queryParam(Target, "canary_workers"), V))
      O.CanaryWorkers = static_cast<unsigned>(V);
    if (parseUInt(queryParam(Target, "window_ms"), V))
      O.WindowMs = V;
    if (parseUInt(queryParam(Target, "min_samples"), V))
      O.MinSamples = V;
    if (parseUInt(queryParam(Target, "max_canary_traps"), V))
      O.MaxCanaryTraps = V;
    if (parseUInt(queryParam(Target, "stage_timeout_ms"), V))
      O.StageTimeoutMs = V;
    std::string_view Delta = queryParam(Target, "max_error_delta");
    if (!Delta.empty())
      O.MaxErrorDelta = atof(std::string(Delta).c_str());
    std::string_view Lat = queryParam(Target, "max_latency_delta_us");
    if (!Lat.empty())
      O.MaxLatencyDeltaUs = atof(std::string(Lat).c_str());
    Expected<uint64_t> Id = rollouts().startArtifactText(
        std::string(Body), "POST /admin/rollout", O);
    if (!Id) {
      Error E = Id.takeError();
      int Code = adminStatusForError(E);
      std::string J = "{\"error\": \"";
      jsonEscapeTo(J, E.str());
      J += formatString("\", \"retryable\": %s}",
                        E.code() == ErrorCode::EC_Busy ? "true" : "false");
      return Respond(Code, J, Code == 503 ? "Retry-After: 0" : nullptr);
    }
    return Respond(202, formatString(
                            "{\"rollout\": %llu}",
                            static_cast<unsigned long long>(*Id)));
  }

  if (Head.Method == "GET" && PathOnly == "/admin/rollouts") {
    std::string_view IdStr = queryParam(Target, "id");
    uint64_t Id = 0;
    if (parseUInt(IdStr, Id)) {
      Expected<RolloutRecord> R = rollouts().rollout(Id);
      if (!R) {
        std::string J = "{\"error\": \"";
        jsonEscapeTo(J, R.takeError().str());
        J += "\"}";
        return Respond(404, J);
      }
      std::string J;
      appendRolloutJson(J, *R);
      return Respond(200, J);
    }
    std::string J = "{\"rollouts\": [";
    bool First = true;
    for (const RolloutRecord &R : rollouts().rollouts()) {
      if (!First)
        J += ", ";
      First = false;
      appendRolloutJson(J, R);
    }
    J += "]}";
    return Respond(200, J);
  }

  if (Head.Method == "POST" && PathOnly == "/admin/rollback") {
    std::string Name(queryParam(Target, "name"));
    if (Name.empty() && Raw.size() > Head.HeadBytes)
      Name = std::string(Raw.substr(Head.HeadBytes));
    if (Name.empty())
      return Respond(400, "{\"error\": \"missing updateable name\"}");
    // With a pool attached the rollback is itself a cross-worker
    // update: it executes at the barrier, with every worker quiescent,
    // instead of swinging bindings under live traffic.  EC_Busy
    // semantics carry over unchanged (503 + Retry-After below).
    Error E = Pool ? Pool->runQuiescent(
                         [&] { return RT.rollbackUpdateable(Name); })
                   : RT.rollbackUpdateable(Name);
    if (!E) {
      std::string J = "{\"rolled_back\": \"";
      jsonEscapeTo(J, Name);
      J += "\"}";
      return Respond(200, J);
    }
    int Code = adminStatusForError(E);
    std::string J = "{\"error\": \"";
    jsonEscapeTo(J, E.str());
    J += formatString("\", \"retryable\": %s}",
                      E.code() == ErrorCode::EC_Busy ? "true" : "false");
    return Respond(Code, J, Code == 503 ? "Retry-After: 0" : nullptr);
  }

  if (Head.Method == "GET" && PathOnly == "/admin/lint") {
    uint64_t Id = 0;
    if (!parseUInt(queryParam(Target, "id"), Id))
      return Respond(400, "{\"error\": \"missing or malformed ?id=<tx>\"}");
    auto Render = [&](const UpdateRecord &R) {
      std::string J = formatString("{\"tx\": %llu, \"patch\": \"",
                                   static_cast<unsigned long long>(R.TxId));
      jsonEscapeTo(J, R.PatchId);
      J += "\", \"phase\": \"";
      jsonEscapeTo(J, R.Phase);
      J += formatString("\", \"analysis_ran\": %s, \"analysis_ms\": %.3f, "
                        "\"code_only_predicted\": %s, \"findings\": [",
                        R.AnalysisRan ? "true" : "false", R.AnalysisMs,
                        R.CodeOnlyPredicted ? "true" : "false");
      bool First = true;
      for (const analysis::Finding &F : R.AnalysisFindings) {
        if (!First)
          J += ", ";
        First = false;
        appendFindingJson(J, F);
      }
      J += "]}";
      Respond(200, J);
    };
    // A tx still staging lives in the pending list; finished ones (and
    // analyzer refusals, which never stage) are in the terminal log.
    for (const UpdateRecord &R : RT.pendingUpdates())
      if (R.TxId == Id)
        return Render(R);
    for (const UpdateRecord &R : RT.updateLog())
      if (R.TxId == Id)
        return Render(R);
    return Respond(404, formatString(
                            "{\"error\": \"no update record for tx %llu\"}",
                            static_cast<unsigned long long>(Id)));
  }

  if (Head.Method == "GET" && PathOnly == "/admin/trace") {
    // ?export=chrome serves the whole recorder (optionally filtered by
    // ?id=) as Chrome trace-event JSON — load it in Perfetto or
    // chrome://tracing.  ?id=<tx> alone serves that update's span tree.
    uint64_t Id = 0;
    bool HasId = parseUInt(queryParam(Target, "id"), Id);
    if (queryParam(Target, "export") == "chrome")
      return Respond(200, trace::chromeTraceJson(HasId ? Id : 0));
    if (!HasId)
      return Respond(400, "{\"error\": \"missing or malformed ?id=<tx> "
                          "(or ?export=chrome)\"}");
    return Respond(200, trace::spanTreeJson(Id));
  }

  if (Head.Method == "GET" && PathOnly == "/admin/profile") {
    // Hot-function ranking; ?k=<n> bounds the rows (default 20, 0 =
    // all), ?reset=1 zeros the counters *after* rendering — the
    // response is the closing report of the window it resets.
    uint64_t K = 20;
    parseUInt(queryParam(Target, "k"), K);
    std::string J = trace::profileJson(static_cast<size_t>(K));
    if (queryParam(Target, "reset") == "1")
      trace::ProfileRegistry::instance().resetAll();
    return Respond(200, J);
  }

  Respond(404, "{\"error\": \"unknown admin endpoint\"}");
}

// --- GET /admin/metrics -------------------------------------------------

namespace {

/// Emits one labelled counter sample in the text exposition format.
void metricLine(std::string &T, const char *Name, unsigned Worker,
                uint64_t Value) {
  T += formatString("%s{worker=\"%u\"} %llu\n", Name, Worker,
                    static_cast<unsigned long long>(Value));
}

/// Emits one histogram's `_bucket`/`_sum`/`_count` series.  \p Labels
/// is empty or a ready-made label list *without* the `le` label (e.g.
/// `worker="0"`).  The exposition invariant that the `+Inf` bucket
/// equals `_count` holds by construction: both lines print the same
/// cumulative sum of the bucket loads, rather than a separately
/// maintained count that may have advanced between the two reads.
void emitHistogram(std::string &T, const char *Name,
                   const std::string &Labels,
                   const std::atomic<uint64_t> *Buckets,
                   const uint64_t *BoundsUs, size_t NumBuckets,
                   uint64_t SumUs) {
  uint64_t Cum = 0;
  for (size_t B = 0; B != NumBuckets; ++B) {
    Cum += Buckets[B].load(std::memory_order_relaxed);
    std::string Le =
        B + 1 == NumBuckets
            ? std::string("+Inf")
            : formatString("%llu",
                           static_cast<unsigned long long>(BoundsUs[B]));
    T += formatString("%s_bucket{%s%sle=\"%s\"} %llu\n", Name,
                      Labels.c_str(), Labels.empty() ? "" : ",", Le.c_str(),
                      static_cast<unsigned long long>(Cum));
  }
  if (Labels.empty()) {
    T += formatString("%s_sum %llu\n", Name,
                      static_cast<unsigned long long>(SumUs));
    T += formatString("%s_count %llu\n", Name,
                      static_cast<unsigned long long>(Cum));
  } else {
    T += formatString("%s_sum{%s} %llu\n", Name, Labels.c_str(),
                      static_cast<unsigned long long>(SumUs));
    T += formatString("%s_count{%s} %llu\n", Name, Labels.c_str(),
                      static_cast<unsigned long long>(Cum));
  }
}

} // namespace

std::string FlashedApp::renderMetrics() const {
  std::string T;
  T += "# HELP dsu_requests_total Requests handled by the app.\n"
       "# TYPE dsu_requests_total counter\n";
  T += formatString("dsu_requests_total %llu\n",
                    static_cast<unsigned long long>(requestsHandled()));
  T += "# HELP dsu_updates_applied_total Committed dynamic updates.\n"
       "# TYPE dsu_updates_applied_total counter\n";
  T += formatString("dsu_updates_applied_total %u\n", RT.updatesApplied());
  T += "# HELP dsu_rolling_commits_total Code-only updates committed "
       "without the cross-worker barrier.\n"
       "# TYPE dsu_rolling_commits_total counter\n";
  T += formatString("dsu_rolling_commits_total %llu\n",
                    static_cast<unsigned long long>(RT.rollingCommits()));
  T += "# HELP dsu_verify_functions_total VTAL functions checked by the "
       "load-time verifier.\n"
       "# TYPE dsu_verify_functions_total counter\n";
  T += formatString("dsu_verify_functions_total %llu\n",
                    static_cast<unsigned long long>(
                        RT.verifyFunctionsTotal()));
  T += "# HELP dsu_analysis_findings_total Findings produced by the "
       "whole-patch update-safety analyzer.\n"
       "# TYPE dsu_analysis_findings_total counter\n";
  T += formatString("dsu_analysis_findings_total %llu\n",
                    static_cast<unsigned long long>(
                        RT.analysisFindingsTotal()));
  T += "# HELP dsu_epoch_global The reclamation domain's global epoch.\n"
       "# TYPE dsu_epoch_global gauge\n";
  T += formatString("dsu_epoch_global %llu\n",
                    static_cast<unsigned long long>(
                        epoch::domain().globalEpoch()));
  {
    const LatencyHistogram &H = RT.stageToCommitLatency();
    T += "# HELP dsu_stage_to_commit_us Staging-complete to commit "
         "latency of dynamic updates, microseconds.\n"
         "# TYPE dsu_stage_to_commit_us histogram\n";
    emitHistogram(T, "dsu_stage_to_commit_us", std::string(), H.Buckets,
                  LatencyHistogram::BucketUs, LatencyHistogram::NumBuckets,
                  H.TotalUs.load(std::memory_order_relaxed));
  }
  {
    trace::ProfileRegistry::Totals P =
        trace::ProfileRegistry::instance().totals();
    T += "# HELP dsu_vtal_calls_total VTAL function activations "
         "observed by the profiler.\n"
         "# TYPE dsu_vtal_calls_total counter\n";
    T += formatString("dsu_vtal_calls_total %llu\n",
                      static_cast<unsigned long long>(P.Calls));
    T += "# HELP dsu_vtal_fuel_total Fuel burned by VTAL code "
         "(deterministic interpreter cost units).\n"
         "# TYPE dsu_vtal_fuel_total counter\n";
    T += formatString("dsu_vtal_fuel_total %llu\n",
                      static_cast<unsigned long long>(P.Fuel));
    T += "# HELP dsu_vtal_traps_total VTAL activations that trapped.\n"
         "# TYPE dsu_vtal_traps_total counter\n";
    T += formatString("dsu_vtal_traps_total %llu\n",
                      static_cast<unsigned long long>(P.Traps));
  }
  {
    // Native-tier counters.  The stats singleton is compiled in even
    // when the tier itself is not (DSU_VTAL_NATIVE=OFF), so dashboards
    // see stable zero-valued series instead of absent ones.
    vtal::native::NativeStats &N = vtal::native::NativeStats::instance();
    T += "# HELP dsu_vtal_native_functions_total VTAL functions compiled "
         "to native code (cumulative across images).\n"
         "# TYPE dsu_vtal_native_functions_total counter\n";
    T += formatString(
        "dsu_vtal_native_functions_total %llu\n",
        static_cast<unsigned long long>(
            N.FunctionsCompiled.load(std::memory_order_relaxed)));
    T += "# HELP dsu_vtal_deopts_total Native-tier deoptimizations into "
         "the interpreter, by reason.\n"
         "# TYPE dsu_vtal_deopts_total counter\n";
    static const char *const Reasons[] = {"fuel", "div_trap", "depth",
                                          "unsupported"};
    for (unsigned R = 0;
         R != static_cast<unsigned>(vtal::native::DeoptReason::NumReasons);
         ++R)
      T += formatString(
          "dsu_vtal_deopts_total{reason=\"%s\"} %llu\n", Reasons[R],
          static_cast<unsigned long long>(
              N.DeoptsByReason[R].load(std::memory_order_relaxed)));
    T += "# HELP dsu_vtal_native_code_bytes Live executable code bytes "
         "in native-tier arenas.\n"
         "# TYPE dsu_vtal_native_code_bytes gauge\n";
    T += formatString("dsu_vtal_native_code_bytes %llu\n",
                      static_cast<unsigned long long>(
                          N.CodeBytesLive.load(std::memory_order_relaxed)));
    T += "# HELP dsu_vtal_native_arenas_retired_total Superseded code "
         "arenas handed to the epoch domain for reclamation.\n"
         "# TYPE dsu_vtal_native_arenas_retired_total counter\n";
    T += formatString(
        "dsu_vtal_native_arenas_retired_total %llu\n",
        static_cast<unsigned long long>(
            N.ArenasRetired.load(std::memory_order_relaxed)));
  }
  T += "# HELP dsu_update_phase_us Update-pipeline phase latency, "
       "microseconds, by phase.\n"
       "# TYPE dsu_update_phase_us histogram\n";
  for (unsigned P = 0;
       P != static_cast<unsigned>(trace::Phase::NumPhases); ++P) {
    const LatencyHistogram &H =
        trace::phaseHistogram(static_cast<trace::Phase>(P));
    emitHistogram(T, "dsu_update_phase_us",
                  formatString("phase=\"%s\"",
                               trace::phaseName(static_cast<trace::Phase>(P))),
                  H.Buckets, LatencyHistogram::BucketUs,
                  LatencyHistogram::NumBuckets,
                  H.TotalUs.load(std::memory_order_relaxed));
  }
  if (!Pool)
    return T;
  T += formatString("# HELP dsu_barrier_rounds_total Completed "
                    "cross-worker update barriers.\n"
                    "# TYPE dsu_barrier_rounds_total counter\n"
                    "dsu_barrier_rounds_total %llu\n",
                    static_cast<unsigned long long>(
                        Pool->barrierRounds()));
  T += "# HELP dsu_worker_requests_total Requests served per worker.\n"
       "# TYPE dsu_worker_requests_total counter\n";
  for (unsigned I = 0; I != Pool->workers(); ++I)
    metricLine(T, "dsu_worker_requests_total", I,
               Pool->workerStats(I).Requests.load(
                   std::memory_order_relaxed));
  T += "# HELP dsu_worker_connections_total Connections accepted per "
       "worker.\n# TYPE dsu_worker_connections_total counter\n";
  for (unsigned I = 0; I != Pool->workers(); ++I)
    metricLine(T, "dsu_worker_connections_total", I,
               Pool->workerStats(I).Connections.load(
                   std::memory_order_relaxed));
  T += "# HELP dsu_worker_bytes_sent_total Bytes written per worker.\n"
       "# TYPE dsu_worker_bytes_sent_total counter\n";
  for (unsigned I = 0; I != Pool->workers(); ++I)
    metricLine(T, "dsu_worker_bytes_sent_total", I,
               Pool->workerStats(I).BytesSent.load(
                   std::memory_order_relaxed));
  T += "# HELP dsu_worker_epoch_lag How far each worker's announced "
       "epoch trails the global epoch (rises while a worker is stuck "
       "mid-request).\n"
       "# TYPE dsu_worker_epoch_lag gauge\n";
  uint64_t GlobalEpoch = epoch::domain().globalEpoch();
  for (unsigned I = 0; I != Pool->workers(); ++I) {
    uint64_t WEpoch = Pool->workerEpoch(I);
    metricLine(T, "dsu_worker_epoch_lag", I,
               WEpoch && GlobalEpoch > WEpoch ? GlobalEpoch - WEpoch : 0);
  }
  T += "# HELP dsu_worker_commits_total Barrier rounds this worker "
       "committed (it was the last arrival).\n"
       "# TYPE dsu_worker_commits_total counter\n";
  for (unsigned I = 0; I != Pool->workers(); ++I)
    metricLine(T, "dsu_worker_commits_total", I,
               Pool->workerStats(I).Commits.load(
                   std::memory_order_relaxed));
  T += "# HELP dsu_update_pause_us Update-barrier park duration per "
       "worker, microseconds.\n"
       "# TYPE dsu_update_pause_us histogram\n";
  for (unsigned I = 0; I != Pool->workers(); ++I) {
    const net::WorkerStats &S = Pool->workerStats(I);
    emitHistogram(T, "dsu_update_pause_us",
                  formatString("worker=\"%u\"", I), S.PauseBuckets,
                  net::WorkerStats::PauseBucketUs,
                  net::WorkerStats::NumPauseBuckets,
                  S.PauseTotalUs.load(std::memory_order_relaxed));
  }
  T += "# HELP dsu_request_duration_us Request handler latency per "
       "worker, microseconds.\n"
       "# TYPE dsu_request_duration_us histogram\n";
  for (unsigned I = 0; I != Pool->workers(); ++I) {
    const net::WorkerStats &S = Pool->workerStats(I);
    emitHistogram(T, "dsu_request_duration_us",
                  formatString("worker=\"%u\"", I), S.ServeBuckets,
                  net::WorkerStats::ServeBucketUs,
                  net::WorkerStats::NumServeBuckets,
                  S.ServeTotalUs.load(std::memory_order_relaxed));
  }
  return T;
}

RolloutController &FlashedApp::rollouts() {
  std::lock_guard<std::mutex> G(RolloutLock);
  if (!Rollout) {
    // The controller gets the serving plane as hooks: worker counters
    // to gate on and the pool's barrier to revert under.  Without a
    // pool the hooks stay empty and every rollout takes the degenerate
    // barrier form with direct (single-threaded) commits.
    RolloutController::Hooks H;
    if (net::ReactorPool *P = Pool) {
      H.WorkerCount = [P] { return static_cast<size_t>(P->workers()); };
      H.Stats = [P](size_t I) {
        return &P->workerStats(static_cast<unsigned>(I));
      };
      H.RunQuiescent = [P](const std::function<Error()> &Fn) {
        return P->runQuiescent(Fn);
      };
      H.Wake = [P] { P->wake(); };
    }
    Rollout = std::make_unique<RolloutController>(RT, std::move(H));
  }
  return *Rollout;
}

void FlashedApp::wireUpdateWake() {
  if (!Admin || !Pool)
    return;
  // A staged transaction turning ready is what makes updatePending()
  // true; waking the workers lets the barrier form immediately instead
  // of on the next poll timeout.  The controller's worker can outlive
  // the pool (it lives with the Runtime), so the thunk must be the
  // pool's lifetime-gated wakeCallback, never a raw pointer capture.
  Admin->setOnStaged(Pool->wakeCallback());
}
