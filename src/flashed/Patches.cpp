//===- flashed/Patches.cpp ------------------------------------*- C++ -*-===//

#include "flashed/Patches.h"

#include "flashed/Cache.h"
#include "flashed/Http.h"
#include "patch/PatchBuilder.h"
#include "support/StringUtil.h"
#include "types/TypeParser.h"

#include <chrono>
#include <deque>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- P1: parse_target v2 — strip query strings and fragments. ----------

std::string parseTargetV2(std::string Raw) {
  std::string Parsed = FlashedApp::parseTargetV1(Raw);
  if (!Parsed.empty() && Parsed[0] == '!')
    return Parsed;
  size_t Q = Parsed.find_first_of("?#");
  return Q == std::string::npos ? Parsed : Parsed.substr(0, Q);
}

// --- P2: mime_type v2, map_url v2, new default_doc. ----------------------

std::string defaultDocV1() { return "/index.html"; }

std::string mimeTypeV2(std::string Path) {
  size_t Dot = Path.rfind('.');
  std::string Ext = Dot == std::string::npos ? "" : Path.substr(Dot + 1);
  std::string Mime = mimeForExtension(Ext);
  if (startsWith(Mime, "text/"))
    Mime += "; charset=utf-8";
  return Mime;
}

std::string mapUrlV2(std::string Target) {
  if (DocStore::isUnsafePath(Target))
    return "!403 forbidden";
  if (Target.empty() || Target == "/")
    return defaultDocV1();
  if (Target.back() == '/')
    return Target.substr(0, Target.size() - 1);
  return Target;
}

// --- P5: the access-log subsystem (patch-owned state). -------------------

struct AccessLog {
  std::deque<std::string> Recent;
  int64_t Total = 0;
  static constexpr size_t MaxRecent = 64;
};

} // namespace

Expected<Patch> dsu::flashed::makePatchP1(FlashedApp &App) {
  return PatchBuilder(App.runtime().types(), "P1-parse-query-fix")
      .describe("bugfix: strip query strings in parse_target so cached "
                "documents resolve")
      .provide("flashed.parse_target", &parseTargetV2)
      .build();
}

Expected<Patch> dsu::flashed::makePatchP2(FlashedApp &App) {
  return PatchBuilder(App.runtime().types(), "P2-mime-and-default-doc")
      .describe("feature: full MIME table with charsets, trailing-slash "
                "normalization, new flashed.default_doc")
      .provide("flashed.mime_type", &mimeTypeV2)
      .provide("flashed.map_url", &mapUrlV2)
      .provide("flashed.default_doc", &defaultDocV1)
      .build();
}

Expected<Patch> dsu::flashed::makePatchP3(FlashedApp &App) {
  TypeContext &Ctx = App.runtime().types();
  Expected<const Type *> ReprV2 = parseType(Ctx, cacheReprV2());
  if (!ReprV2)
    return ReprV2.takeError();

  VersionBump Bump{VersionedName{"flashed_cache", 1},
                   VersionedName{"flashed_cache", 2}};

  // The state transformer: carry every cached body over (sharing the
  // bytes, not copying them), zeroing the new statistics fields — the
  // canonical "add a field" transformer of the paper.
  TransformFn Migrate =
      [](const std::shared_ptr<void> &Old,
         const StateCell &) -> Expected<std::shared_ptr<void>> {
    auto *V1 = static_cast<CacheV1 *>(Old.get());
    auto V2 = std::make_shared<CacheV2>();
    for (const auto &[Path, Body] : V1->Entries) {
      CacheEntryV2 E;
      E.Body = Body;
      E.Hits = 0;
      E.LastAccessMs = nowMs();
      V2->Entries.emplace(Path, std::move(E));
    }
    return std::shared_ptr<void>(std::move(V2));
  };

  // The V2 stages follow the epoch publication discipline: reads are
  // lock-free loads of the published snapshot (hit statistics are
  // relaxed atomics bumped in place), writes copy-update-publish under
  // the payload lock — so a *later* staged transaction can snapshot the
  // cache from another thread while requests are served, and the
  // serving path never takes a mutex.
  FlashedApp *AppPtr = &App;
  auto CacheGetV2 = [AppPtr](std::string Path) -> std::string {
    StateCell *Cell = AppPtr->cacheCell();
    epoch::Guard G;
    auto *C = Cell->live<const CacheV2>();
    auto It = C->Entries.find(Path);
    if (It == C->Entries.end())
      return "";
    const_cast<CacheEntryV2 &>(It->second).noteHit(nowMs());
    Cell->noteMutation();
    return *It->second.Body;
  };
  auto CachePutV2 = [AppPtr](std::string Path, std::string Body) {
    CacheEntryV2 E;
    E.Body = std::make_shared<const std::string>(std::move(Body));
    E.LastAccessMs.store(nowMs(), std::memory_order_relaxed);
    StateCell *Cell = AppPtr->cacheCell();
    std::lock_guard<std::mutex> G(Cell->payloadLock());
    auto Next = std::make_shared<CacheV2>(*Cell->get<CacheV2>());
    Next->Entries[Path] = std::move(E);
    Cell->publish(std::move(Next));
  };
  auto CacheStats = [AppPtr]() -> std::string {
    StateCell *Cell = AppPtr->cacheCell();
    epoch::Guard G;
    auto *C = Cell->live<const CacheV2>();
    int64_t Hits = 0;
    for (const auto &[Path, E] : C->Entries) {
      (void)Path;
      Hits += E.hits();
    }
    return formatString("entries=%zu hits=%lld", C->Entries.size(),
                        static_cast<long long>(Hits));
  };

  return PatchBuilder(Ctx, "P3-cache-hit-counters")
      .describe("type change: cache entries gain hit counters and access "
                "stamps; live cache migrated by transformer")
      .defineType(Bump.To, *ReprV2)
      .transformer(Bump, std::move(Migrate))
      .provideBinding("flashed.cache_get",
                      Ctx.fnType({Ctx.stringType()}, Ctx.stringType()),
                      makeClosureBinding<std::string, std::string>(
                          CacheGetV2, 0, "patch:P3"))
      .provideBinding("flashed.cache_put",
                      Ctx.fnType({Ctx.stringType(), Ctx.stringType()},
                                 Ctx.unitType()),
                      makeClosureBinding<void, std::string, std::string>(
                          CachePutV2, 0, "patch:P3"))
      .provideBinding("flashed.cache_stats",
                      Ctx.fnType({}, Ctx.stringType()),
                      makeClosureBinding<std::string>(CacheStats, 0,
                                                      "patch:P3"))
      .build();
}

Expected<Patch> dsu::flashed::makePatchP4(FlashedApp &App) {
  TypeContext &Ctx = App.runtime().types();
  UpdateableRegistry &Reg = App.runtime().updateables();

  // The richer interface: log_access2(path, status, micros).
  auto LogAccess2 = [](std::string Path, int64_t Status, int64_t Micros) {
    (void)Path;
    (void)Status;
    (void)Micros;
  };
  // Old callers keep calling flashed.log_access(path, status); the shim
  // forwards with a default detail argument — the paper's answer to
  // signature changes, which are not type-compatible replacements.
  UpdateableRegistry *RegPtr = &Reg;
  auto Shim = [RegPtr](std::string Path, int64_t Status) {
    UpdateableSlot *Slot = RegPtr->lookup("flashed.log_access2");
    assert(Slot && "P4 installs log_access2 before the shim runs");
    Updateable<void(std::string, int64_t, int64_t)> Target(Slot);
    Target(std::move(Path), Status, /*Micros=*/0);
  };

  return PatchBuilder(Ctx, "P4-log-signature-change")
      .describe("signature change via shim: flashed.log_access2 gains a "
                "timing argument; old name forwards")
      .provideBinding(
          "flashed.log_access2",
          Ctx.fnType({Ctx.stringType(), Ctx.intType(), Ctx.intType()},
                     Ctx.unitType()),
          makeClosureBinding<void, std::string, int64_t, int64_t>(
              LogAccess2, 0, "patch:P4"))
      .provideBinding(
          "flashed.log_access",
          Ctx.fnType({Ctx.stringType(), Ctx.intType()}, Ctx.unitType()),
          makeClosureBinding<void, std::string, int64_t>(Shim, 0,
                                                         "patch:P4"))
      .build();
}

Expected<Patch> dsu::flashed::makePatchP5(FlashedApp &App) {
  TypeContext &Ctx = App.runtime().types();
  UpdateableRegistry &Reg = App.runtime().updateables();

  // Patch-owned state: the log lives in the patch's closure environment,
  // the idiom for *new* state introduced by an update (existing state
  // migrates via transformers; new state ships with the patch).
  auto Log = std::make_shared<AccessLog>();

  auto LogAccessV3 = [Log](std::string Path, int64_t Status) {
    ++Log->Total;
    Log->Recent.push_back(formatString("%lld %s",
                                       static_cast<long long>(Status),
                                       Path.c_str()));
    if (Log->Recent.size() > AccessLog::MaxRecent)
      Log->Recent.pop_front();
  };
  auto LogCount = [Log]() -> int64_t { return Log->Total; };
  auto LogRecent = [Log]() -> std::string {
    std::string Out;
    for (const std::string &Line : Log->Recent) {
      Out += Line;
      Out += '\n';
    }
    return Out;
  };

  // Also forward from the P4 interface if it is installed, so both entry
  // points feed the same log.
  UpdateableRegistry *RegPtr = &Reg;
  auto LogAccess2V2 = [Log, RegPtr](std::string Path, int64_t Status,
                                    int64_t Micros) {
    (void)RegPtr;
    ++Log->Total;
    Log->Recent.push_back(formatString(
        "%lld %s %lldus", static_cast<long long>(Status), Path.c_str(),
        static_cast<long long>(Micros)));
    if (Log->Recent.size() > AccessLog::MaxRecent)
      Log->Recent.pop_front();
  };

  return PatchBuilder(Ctx, "P5-access-log-subsystem")
      .describe("compound: in-memory access log; changed log_access and "
                "log_access2, new log_count / log_recent")
      .provideBinding(
          "flashed.log_access",
          Ctx.fnType({Ctx.stringType(), Ctx.intType()}, Ctx.unitType()),
          makeClosureBinding<void, std::string, int64_t>(LogAccessV3, 0,
                                                         "patch:P5"))
      .provideBinding(
          "flashed.log_access2",
          Ctx.fnType({Ctx.stringType(), Ctx.intType(), Ctx.intType()},
                     Ctx.unitType()),
          makeClosureBinding<void, std::string, int64_t, int64_t>(
              LogAccess2V2, 0, "patch:P5"))
      .provideBinding("flashed.log_count", Ctx.fnType({}, Ctx.intType()),
                      makeClosureBinding<int64_t>(LogCount, 0, "patch:P5"))
      .provideBinding("flashed.log_recent",
                      Ctx.fnType({}, Ctx.stringType()),
                      makeClosureBinding<std::string>(LogRecent, 0,
                                                      "patch:P5"))
      .build();
}

const char *dsu::flashed::vtalParseFixPatchText() {
  return R"dsu(
(patch
  (id "P1-parse-query-fix-vtal")
  (description "query-string fix shipped as verified VTAL")
  (provides
    (fn (name "flashed.parse_target")
        (type "fn(string) -> string")
        (vtal-fn "parse_target")))
  (vtal-module
"module parse_mod
func first_line (raw: string) -> string {
  locals (nl: int)
  load raw
  push.s \"\\n\"
  sfind
  store nl
  load nl
  push.i 0
  lt
  brif whole
  load raw
  push.i 0
  load nl
  ssub
  ret
whole:
  load raw
  ret
}
func parse_target (raw: string) -> string {
  locals (line: string, sp1: int, sp2: int, method: string, rest: string, q: int)
  load raw
  call first_line
  store line
  load line
  push.s \" \"
  sfind
  store sp1
  load sp1
  push.i 1
  lt
  brif bad
  load line
  push.i 0
  load sp1
  ssub
  store method
  load method
  push.s \"GET\"
  seq
  load method
  push.s \"HEAD\"
  seq
  or
  not
  brif notallowed
  load line
  load sp1
  push.i 1
  add
  load line
  slen
  ssub
  store rest
  load rest
  push.s \" \"
  sfind
  store sp2
  load sp2
  push.i 0
  lt
  brif notrail
  load rest
  push.i 0
  load sp2
  ssub
  store rest
notrail:
  load rest
  slen
  push.i 0
  eq
  brif bad
  load rest
  push.s \"?\"
  sfind
  store q
  load q
  push.i 0
  lt
  brif noquery
  load rest
  push.i 0
  load q
  ssub
  store rest
noquery:
  load method
  push.s \" \"
  scat
  load rest
  scat
  ret
bad:
  push.s \"!400 malformed request\"
  ret
notallowed:
  push.s \"!405 method not allowed\"
  ret
}"))
)dsu";
}

Expected<std::vector<Patch>>
dsu::flashed::makePatchSeries(FlashedApp &App) {
  std::vector<Patch> Series;
  using Factory = Expected<Patch> (*)(FlashedApp &);
  for (Factory F : {&makePatchP1, &makePatchP2, &makePatchP3, &makePatchP4,
                    &makePatchP5}) {
    Expected<Patch> P = F(App);
    if (!P)
      return P.takeError();
    Series.push_back(std::move(*P));
  }
  return Series;
}
