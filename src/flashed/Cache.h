//===- flashed/Cache.h - FlashEd response cache representations -*- C++ -*-//
///
/// \file
/// The cache payload types FlashEd keeps in a dsu state cell.  Version 1
/// caches bodies only; version 2 (introduced by patch P3, the paper-style
/// "type change with state transformer") adds per-entry hit counters and
/// last-access stamps.  The dsu named type `%flashed_cache@N` describes
/// the cell; these structs are the C++ representations at each version.
///
/// Bodies are held as shared_ptr<const string>: the string-typed
/// updateable stages (`flashed.cache_get` et al.) copy on the way out —
/// that marshalling is part of what E2 measures — while the serving fast
/// path shares the same bytes with the socket layer without copying.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_CACHE_H
#define DSU_FLASHED_CACHE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace dsu {
namespace flashed {

/// A shared, immutable response body.
using SharedBody = std::shared_ptr<const std::string>;

/// %flashed_cache@1 : array<{path: string, body: string}>
struct CacheV1 {
  std::map<std::string, SharedBody> Entries;
};

/// One entry of %flashed_cache@2.  The statistics fields are relaxed
/// atomics: the cache payload is published as an immutable snapshot
/// (StateCell::publish / live()), and a hit on the lock-free serving
/// path bumps the counters of the shared snapshot in place — structure
/// immutable, statistics concurrent, no mutex.  Copying (snapshot
/// forks, state-transformer builds) reads the counters relaxed.
struct CacheEntryV2 {
  SharedBody Body;
  std::atomic<int64_t> Hits{0};
  std::atomic<int64_t> LastAccessMs{0};

  CacheEntryV2() = default;
  CacheEntryV2(const CacheEntryV2 &O)
      : Body(O.Body), Hits(O.Hits.load(std::memory_order_relaxed)),
        LastAccessMs(O.LastAccessMs.load(std::memory_order_relaxed)) {}
  CacheEntryV2(CacheEntryV2 &&O) noexcept
      : Body(std::move(O.Body)),
        Hits(O.Hits.load(std::memory_order_relaxed)),
        LastAccessMs(O.LastAccessMs.load(std::memory_order_relaxed)) {}
  CacheEntryV2 &operator=(const CacheEntryV2 &O) {
    Body = O.Body;
    Hits.store(O.Hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    LastAccessMs.store(O.LastAccessMs.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  CacheEntryV2 &operator=(CacheEntryV2 &&O) noexcept {
    Body = std::move(O.Body);
    Hits.store(O.Hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    LastAccessMs.store(O.LastAccessMs.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  int64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  int64_t lastAccessMs() const {
    return LastAccessMs.load(std::memory_order_relaxed);
  }
  void noteHit(int64_t NowMs) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    LastAccessMs.store(NowMs, std::memory_order_relaxed);
  }
};

/// %flashed_cache@2 :
///   array<{path: string, body: string, hits: int, last_ms: int}>
struct CacheV2 {
  std::map<std::string, CacheEntryV2> Entries;
};

/// Type text of each representation (kept beside the structs so the
/// descriptor and the C++ type evolve together).
inline const char *cacheReprV1() {
  return "array<{path: string, body: string}>";
}
inline const char *cacheReprV2() {
  return "array<{path: string, body: string, hits: int, last_ms: int}>";
}

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_CACHE_H
