//===- flashed/Cache.h - FlashEd response cache representations -*- C++ -*-//
///
/// \file
/// The cache payload types FlashEd keeps in a dsu state cell.  Version 1
/// caches bodies only; version 2 (introduced by patch P3, the paper-style
/// "type change with state transformer") adds per-entry hit counters and
/// last-access stamps.  The dsu named type `%flashed_cache@N` describes
/// the cell; these structs are the C++ representations at each version.
///
/// Bodies are held as shared_ptr<const string>: the string-typed
/// updateable stages (`flashed.cache_get` et al.) copy on the way out —
/// that marshalling is part of what E2 measures — while the serving fast
/// path shares the same bytes with the socket layer without copying.
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_CACHE_H
#define DSU_FLASHED_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace dsu {
namespace flashed {

/// A shared, immutable response body.
using SharedBody = std::shared_ptr<const std::string>;

/// %flashed_cache@1 : array<{path: string, body: string}>
struct CacheV1 {
  std::map<std::string, SharedBody> Entries;
};

/// One entry of %flashed_cache@2.
struct CacheEntryV2 {
  SharedBody Body;
  int64_t Hits = 0;
  int64_t LastAccessMs = 0;
};

/// %flashed_cache@2 :
///   array<{path: string, body: string, hits: int, last_ms: int}>
struct CacheV2 {
  std::map<std::string, CacheEntryV2> Entries;
};

/// Type text of each representation (kept beside the structs so the
/// descriptor and the C++ type evolve together).
inline const char *cacheReprV1() {
  return "array<{path: string, body: string}>";
}
inline const char *cacheReprV2() {
  return "array<{path: string, body: string, hits: int, last_ms: int}>";
}

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_CACHE_H
