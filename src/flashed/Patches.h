//===- flashed/Patches.h - The FlashEd patch series P1..P5 ----*- C++ -*-===//
///
/// \file
/// The scripted evolution of FlashEd: five dynamic patches mirroring the
/// kinds of change the PLDI 2001 evaluation applied to FlashEd from the
/// Flash server's real history.  Each factory returns a ready-to-apply
/// in-process Patch (the native `.so` variants under patches/ ship the
/// same changes through the dlopen path).
///
///  P1  code-only bugfix         parse_target strips query strings
///  P2  feature addition         richer MIME table + default-document
///                               mapping + new fn flashed.default_doc
///  P3  type change + transform  cache entries gain hit counters
///                               (%flashed_cache@1 -> @2) + new fn
///                               flashed.cache_stats
///  P4  signature change         log_access gains a detail argument via
///                               the shim pattern (new fn log_access2,
///                               old name rebound to a shim)
///  P5  compound change          in-memory access-log subsystem: new
///                               patch-owned state + two new fns +
///                               changed log_access
///
//===----------------------------------------------------------------------===//

#ifndef DSU_FLASHED_PATCHES_H
#define DSU_FLASHED_PATCHES_H

#include "flashed/App.h"
#include "patch/Patch.h"

namespace dsu {
namespace flashed {

Expected<Patch> makePatchP1(FlashedApp &App);
Expected<Patch> makePatchP2(FlashedApp &App);
Expected<Patch> makePatchP3(FlashedApp &App);
Expected<Patch> makePatchP4(FlashedApp &App);
Expected<Patch> makePatchP5(FlashedApp &App);

/// All five in order.
Expected<std::vector<Patch>> makePatchSeries(FlashedApp &App);

/// P1 expressed as verified VTAL: the query-string fix shipped as a
/// self-contained .dsup patch artifact (manifest text with an embedded
/// VTAL module).  This is the artifact an operator POSTs to a running
/// server's /admin/patches endpoint; also used by tests and tools as the
/// canonical over-the-wire patch.
const char *vtalParseFixPatchText();

} // namespace flashed
} // namespace dsu

#endif // DSU_FLASHED_PATCHES_H
