//===- tests/test_epoch.cpp - Epoch quiescence subsystem ------*- C++ -*-===//
///
/// The epoch core under concurrency: grace periods complete only after
/// every participant (worker or pinned guard) has passed a quiescent
/// point, retired payloads are never observable after reclamation
/// (ASan/TSan lanes verify the hard half of that claim), stalled
/// workers delay — never unsoundly permit — reclamation, and a retire
/// storm drains without leaking.
///
/// Run alone with `ctest -L epoch`.

#include "epoch/Epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace dsu;

namespace {

/// A checkable payload: B must always equal ~A, and destruction flips
/// Alive so a use-after-retire is caught even without a sanitizer.
struct Payload {
  uint64_t A = 0;
  uint64_t B = ~uint64_t{0};
  std::atomic<bool> *FreedFlag = nullptr;
  bool Alive = true;

  explicit Payload(uint64_t V = 0) : A(V), B(~V) {}
  ~Payload() {
    Alive = false;
    if (FreedFlag)
      FreedFlag->store(true, std::memory_order_release);
  }
};

void deletePayload(void *P) { delete static_cast<Payload *>(P); }

TEST(EpochDomainTest, RetireWaitsForWorkerQuiescence) {
  epoch::Domain D;
  epoch::Domain::Slot *W = D.registerWorker();
  D.quiesce(W); // the worker is now "mid-request" at this epoch

  std::atomic<bool> Freed{false};
  auto *P = new Payload(1);
  P->FreedFlag = &Freed;
  D.retire(P, &deletePayload);
  D.reclaim();
  EXPECT_FALSE(Freed.load()) << "freed under a non-quiescent worker";

  D.quiesce(W); // the quiescent point closes the grace period
  D.reclaim();
  EXPECT_TRUE(Freed.load());
  D.deregisterWorker(W);
}

TEST(EpochDomainTest, StalledWorkerDelaysGraceUntilItResumes) {
  epoch::Domain D;
  epoch::Domain::Slot *Stalled = D.registerWorker();
  epoch::Domain::Slot *Healthy = D.registerWorker();
  D.quiesce(Stalled);
  D.quiesce(Healthy);

  std::atomic<bool> Freed{false};
  auto *P = new Payload(2);
  P->FreedFlag = &Freed;
  D.retire(P, &deletePayload);

  // The healthy worker can quiesce forever; the stalled one holds the
  // grace period open.
  for (int I = 0; I != 50; ++I) {
    D.quiesce(Healthy);
    D.reclaim();
    ASSERT_FALSE(Freed.load()) << "grace period ignored a stalled worker";
  }

  // The stall ends: one quiescent point later the object is free.
  D.quiesce(Stalled);
  D.reclaim();
  EXPECT_TRUE(Freed.load());
  D.deregisterWorker(Stalled);
  D.deregisterWorker(Healthy);
}

TEST(EpochDomainTest, DeregisteringAStalledWorkerReleasesGrace) {
  epoch::Domain D;
  epoch::Domain::Slot *Stalled = D.registerWorker();
  D.quiesce(Stalled);
  std::atomic<bool> Freed{false};
  auto *P = new Payload(3);
  P->FreedFlag = &Freed;
  D.retire(P, &deletePayload);
  D.reclaim();
  ASSERT_FALSE(Freed.load());
  // A worker that exits (pool stop) must not pin the limbo list forever.
  D.deregisterWorker(Stalled);
  D.reclaim();
  EXPECT_TRUE(Freed.load());
}

TEST(EpochDomainTest, GuardPinsAndUnpinsNonWorkerThread) {
  epoch::Domain D;
  std::atomic<bool> Freed{false};
  auto *P = new Payload(4);
  P->FreedFlag = &Freed;
  {
    epoch::Guard G(D);
    D.retire(P, &deletePayload);
    D.reclaim();
    EXPECT_FALSE(Freed.load()) << "freed under a live pin";
  }
  D.reclaim();
  EXPECT_TRUE(Freed.load());
}

TEST(EpochDomainTest, RetireStormDoesNotLeak) {
  // The ASan lane is the real assertion here: every one of the 10k
  // retired objects must be freed by reclaim/drain, none double-freed.
  epoch::Domain D;
  epoch::Domain::Slot *W = D.registerWorker();
  constexpr uint64_t N = 10000;
  for (uint64_t I = 0; I != N; ++I) {
    epoch::retireObject(new Payload(I), D);
    if (I % 64 == 0)
      D.quiesce(W);
  }
  EXPECT_EQ(D.retiredTotal(), N);
  D.deregisterWorker(W);
  D.reclaim();
  EXPECT_EQ(D.reclaimedTotal() + D.limboSize(), N);
  D.drain();
  EXPECT_EQ(D.limboSize(), 0u);
  EXPECT_EQ(D.reclaimedTotal(), N);
}

TEST(EpochDomainTest, AdvanceWithInstallsBeforePublishing) {
  epoch::Domain D;
  uint64_t Before = D.globalEpoch();
  struct Ctx {
    epoch::Domain *D;
    uint64_t SeenGlobal = 0;
    uint64_t E = 0;
  } C{&D};
  uint64_t E = D.advanceWith(
      [](uint64_t NewE, void *Raw) {
        auto *C = static_cast<Ctx *>(Raw);
        C->E = NewE;
        C->SeenGlobal = C->D->globalEpoch();
      },
      &C);
  EXPECT_EQ(E, Before + 1);
  EXPECT_EQ(C.E, E);
  // During Install the new epoch must not be observable yet.
  EXPECT_EQ(C.SeenGlobal, Before);
  EXPECT_EQ(D.globalEpoch(), E);
}

TEST(EpochGuardTest, NestedGuardsPinOnceAndRestore) {
  ASSERT_EQ(epoch::threadPinnedEpoch(), 0u) << "test thread unexpectedly pinned";
  {
    epoch::Guard G1;
    uint64_t Pinned = epoch::threadPinnedEpoch();
    EXPECT_NE(Pinned, 0u);
    {
      epoch::Guard G2;
      EXPECT_EQ(epoch::threadPinnedEpoch(), Pinned);
    }
    EXPECT_EQ(epoch::threadPinnedEpoch(), Pinned);
  }
  EXPECT_EQ(epoch::threadPinnedEpoch(), 0u);
}

TEST(EpochGuardTest, DomainAddressReuseDoesNotCorruptGuardCache) {
  // Stack domains in a loop reuse the same address; the per-thread
  // guard-slot cache must key on the domain's identity, not its
  // address, or the second iteration pins a freed slot (ASan lane).
  for (uint64_t I = 0; I != 4; ++I) {
    epoch::Domain D;
    auto *P = new Payload(I);
    {
      epoch::Guard G(D);
      D.retire(P, &deletePayload);
    }
    D.reclaim();
  }
}

TEST(EpochGuardTest, GuardIsFreeOnWorkerThreads) {
  epoch::WorkerReg W;
  uint64_t E0 = epoch::threadPinnedEpoch();
  EXPECT_NE(E0, 0u);
  {
    epoch::Guard G;
    // No pin happened: the worker's own announcement already protects.
    EXPECT_EQ(epoch::threadPinnedEpoch(), E0);
  }
  EXPECT_EQ(epoch::threadPinnedEpoch(), E0);
  W.quiesce();
}

/// The core safety property under real concurrency: worker threads
/// continuously read an epoch::Ptr payload between quiescent points
/// while a writer publishes thousands of replacements.  A reader must
/// never observe a destructed payload (Alive flips in the destructor;
/// the ASan/TSan lanes additionally catch the raw use-after-free).
TEST(EpochStressTest, ReadersNeverObserveARetiredPayload) {
  epoch::Domain D;
  epoch::Ptr<Payload> Published(new Payload(1));

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};
  constexpr unsigned kReaders = 3;
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != kReaders; ++T)
    Readers.emplace_back([&] {
      epoch::Domain::Slot *S = D.registerWorker();
      while (!Stop.load(std::memory_order_relaxed)) {
        D.quiesce(S); // idle point between "requests"
        Payload *P = Published.load();
        for (int I = 0; I != 8; ++I) {
          ASSERT_TRUE(P->Alive) << "read a retired payload";
          ASSERT_EQ(P->B, ~P->A) << "read a torn or poisoned payload";
        }
        Reads.fetch_add(1, std::memory_order_relaxed);
      }
      D.deregisterWorker(S);
    });

  constexpr uint64_t kPublishes = 4000;
  for (uint64_t V = 2; V != 2 + kPublishes; ++V)
    Published.publish(new Payload(V), D);

  // Liveness, not safety: on a loaded single-core host the publisher
  // can finish before a reader is ever scheduled — let them observe
  // something before stopping.
  for (int Spin = 0; Spin != 5000 && Reads.load() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Reads.load(), 0u);
  EXPECT_EQ(D.retiredTotal(), kPublishes);
  // Ptr's destructor frees the live payload; the domain drains the
  // rest.  The ASan lane asserts nothing leaks.
}

} // namespace
