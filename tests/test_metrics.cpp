//===- tests/test_metrics.cpp - Prometheus exposition conformance -*- C++ -*-//
///
/// Parses EVERY line of GET /admin/metrics against the Prometheus
/// text-exposition grammar (version 0.0.4): comment lines are
/// well-formed HELP/TYPE for a declared metric family, sample lines are
/// `name{labels} value` with parseable values, histogram buckets are
/// cumulative-monotone, and the `+Inf` bucket of every histogram equals
/// its `_count` — scraped before and after a staged+committed update so
/// the counters are also checked for monotonicity across a commit.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "net/ReactorPool.h"
#include "patch/PatchBuilder.h"
#include "runtime/UpdateController.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <thread>

using namespace dsu;
using namespace dsu::flashed;

namespace {

constexpr unsigned kWorkers = 2;

/// One parsed sample: family name, canonicalized label set, value.
struct Sample {
  std::string Name;
  std::map<std::string, std::string> Labels;
  double Value = 0;

  /// The label set minus \p Drop, serialized canonically (sorted).
  std::string labelKey(const std::string &Drop = "") const {
    std::string Out;
    for (const auto &KV : Labels) {
      if (KV.first == Drop)
        continue;
      Out += KV.first + "=\"" + KV.second + "\",";
    }
    return Out;
  }
};

bool validMetricName(const std::string &S) {
  if (S.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(S[0])) && S[0] != '_' &&
      S[0] != ':')
    return false;
  for (char C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != ':')
      return false;
  return true;
}

/// Parses one exposition document; fails the test on any malformed line.
struct Exposition {
  std::map<std::string, std::string> Types; ///< family -> counter/gauge/...
  std::set<std::string> Helped;             ///< families with # HELP
  std::vector<Sample> Samples;

  void parse(const std::string &Body) {
    size_t LineNo = 0;
    size_t Pos = 0;
    while (Pos < Body.size()) {
      size_t Eol = Body.find('\n', Pos);
      if (Eol == std::string::npos)
        Eol = Body.size();
      std::string Line = Body.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      ++LineNo;
      if (Line.empty())
        continue;
      if (Line[0] == '#') {
        parseComment(Line, LineNo);
        continue;
      }
      parseSample(Line, LineNo);
    }
  }

  void parseComment(const std::string &Line, size_t LineNo) {
    // "# HELP <name> <docstring>" | "# TYPE <name> <type>"
    ASSERT_EQ(Line.rfind("# ", 0), 0u) << "line " << LineNo << ": " << Line;
    size_t KwEnd = Line.find(' ', 2);
    ASSERT_NE(KwEnd, std::string::npos) << "line " << LineNo << ": " << Line;
    std::string Kw = Line.substr(2, KwEnd - 2);
    ASSERT_TRUE(Kw == "HELP" || Kw == "TYPE")
        << "line " << LineNo << ": " << Line;
    size_t NameEnd = Line.find(' ', KwEnd + 1);
    ASSERT_NE(NameEnd, std::string::npos) << "line " << LineNo << ": " << Line;
    std::string Name = Line.substr(KwEnd + 1, NameEnd - KwEnd - 1);
    ASSERT_TRUE(validMetricName(Name)) << "line " << LineNo << ": " << Line;
    std::string Rest = Line.substr(NameEnd + 1);
    ASSERT_FALSE(Rest.empty()) << "line " << LineNo << ": " << Line;
    if (Kw == "HELP") {
      Helped.insert(Name);
    } else {
      ASSERT_TRUE(Rest == "counter" || Rest == "gauge" ||
                  Rest == "histogram" || Rest == "summary" ||
                  Rest == "untyped")
          << "line " << LineNo << ": " << Line;
      Types[Name] = Rest;
    }
  }

  void parseSample(const std::string &Line, size_t LineNo) {
    Sample S;
    size_t I = 0;
    while (I < Line.size() && Line[I] != '{' && Line[I] != ' ')
      ++I;
    S.Name = Line.substr(0, I);
    ASSERT_TRUE(validMetricName(S.Name))
        << "line " << LineNo << ": " << Line;
    if (I < Line.size() && Line[I] == '{') {
      ++I;
      while (I < Line.size() && Line[I] != '}') {
        size_t Eq = Line.find('=', I);
        ASSERT_NE(Eq, std::string::npos) << "line " << LineNo << ": " << Line;
        std::string Key = Line.substr(I, Eq - I);
        ASSERT_TRUE(validMetricName(Key))
            << "line " << LineNo << ": bad label name in: " << Line;
        ASSERT_EQ(Line[Eq + 1], '"') << "line " << LineNo << ": " << Line;
        size_t Q = Line.find('"', Eq + 2);
        ASSERT_NE(Q, std::string::npos) << "line " << LineNo << ": " << Line;
        S.Labels[Key] = Line.substr(Eq + 2, Q - Eq - 2);
        I = Q + 1;
        if (I < Line.size() && Line[I] == ',')
          ++I;
      }
      ASSERT_LT(I, Line.size()) << "line " << LineNo << ": " << Line;
      ++I; // '}'
    }
    ASSERT_LT(I, Line.size()) << "line " << LineNo << ": " << Line;
    ASSERT_EQ(Line[I], ' ') << "line " << LineNo << ": " << Line;
    std::string ValStr = Line.substr(I + 1);
    ASSERT_FALSE(ValStr.empty()) << "line " << LineNo << ": " << Line;
    if (ValStr == "+Inf") {
      S.Value = HUGE_VAL;
    } else {
      char *End = nullptr;
      S.Value = std::strtod(ValStr.c_str(), &End);
      ASSERT_EQ(*End, '\0')
          << "line " << LineNo << ": unparseable value in: " << Line;
    }
    // The family this sample belongs to must have been declared with
    // # TYPE above it (histogram children map to the base family).
    std::string Family = S.Name;
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      size_t N = Family.size(), L = strlen(Suffix);
      if (N > L && Family.compare(N - L, L, Suffix) == 0 &&
          Types.count(Family.substr(0, N - L)) &&
          Types[Family.substr(0, N - L)] == "histogram") {
        Family = Family.substr(0, N - L);
        break;
      }
    }
    EXPECT_TRUE(Types.count(Family))
        << "line " << LineNo << ": sample for undeclared family: " << Line;
    EXPECT_TRUE(Helped.count(Family))
        << "line " << LineNo << ": family missing # HELP: " << Line;
    Samples.push_back(std::move(S));
  }

  /// Every histogram series: buckets cumulative-monotone in `le`, and
  /// the +Inf bucket exactly equals the series' `_count`.
  void checkHistograms() const {
    // (family, labels-without-le) -> (le -> cumulative value)
    std::map<std::pair<std::string, std::string>, std::map<double, double>>
        Buckets;
    std::map<std::pair<std::string, std::string>, double> Counts;
    for (const Sample &S : Samples) {
      const std::string &N = S.Name;
      if (N.size() > 7 && N.compare(N.size() - 7, 7, "_bucket") == 0) {
        auto It = S.Labels.find("le");
        ASSERT_NE(It, S.Labels.end()) << N << " bucket without le";
        double Le = It->second == "+Inf" ? HUGE_VAL
                                         : std::strtod(It->second.c_str(),
                                                       nullptr);
        Buckets[{N.substr(0, N.size() - 7), S.labelKey("le")}][Le] = S.Value;
      } else if (N.size() > 6 && N.compare(N.size() - 6, 6, "_count") == 0) {
        Counts[{N.substr(0, N.size() - 6), S.labelKey()}] = S.Value;
      }
    }
    ASSERT_FALSE(Buckets.empty());
    for (const auto &KV : Buckets) {
      double Prev = -1;
      double InfVal = -1;
      for (const auto &LeVal : KV.second) {
        EXPECT_GE(LeVal.second, Prev)
            << KV.first.first << "{" << KV.first.second
            << "}: buckets not cumulative at le=" << LeVal.first;
        Prev = LeVal.second;
        if (LeVal.first == HUGE_VAL)
          InfVal = LeVal.second;
      }
      ASSERT_GE(InfVal, 0.0)
          << KV.first.first << "{" << KV.first.second << "}: no +Inf bucket";
      auto CountIt = Counts.find(KV.first);
      ASSERT_NE(CountIt, Counts.end())
          << KV.first.first << "{" << KV.first.second << "}: no _count";
      EXPECT_EQ(InfVal, CountIt->second)
          << KV.first.first << "{" << KV.first.second
          << "}: +Inf bucket != _count";
    }
  }

  /// name+labels -> value for counter-ish samples (_total/_count/_bucket).
  std::map<std::string, double> counterValues() const {
    std::map<std::string, double> Out;
    for (const Sample &S : Samples) {
      const std::string &N = S.Name;
      bool Counter = false;
      for (const char *Suffix : {"_total", "_count", "_bucket", "_sum"}) {
        size_t L = strlen(Suffix);
        if (N.size() > L && N.compare(N.size() - L, L, Suffix) == 0)
          Counter = true;
      }
      if (Counter)
        Out[N + "{" + S.labelKey() + "}"] = S.Value;
    }
    return Out;
  }
};

class MetricsExpositionTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.fillSynthetic(4, 256);
    ASSERT_FALSE(App.init(std::move(Docs)));
    App.enableAdmin(RT.controller());

    net::PoolOptions O;
    O.Workers = kWorkers;
    O.PollTimeoutMs = 2;
    Pool = std::make_unique<net::ReactorPool>(
        [this](const RequestHead &Head, std::string_view Raw,
               std::string &Out, SharedBody &Body) {
          App.handleInto(Head, Raw, Out, Body);
        },
        O);
    Pool->setUpdateRuntime(RT);
    App.attachPool(*Pool);
    ASSERT_FALSE(Pool->start());
  }

  void TearDown() override { Pool->stop(); }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<net::ReactorPool> Pool;
};

TEST_F(MetricsExpositionTest, EveryLineParsesAndCountersAreMonotone) {
  // Some traffic first so serve histograms have observations.
  for (int I = 0; I != 16; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/doc.html");
    ASSERT_TRUE(R) << R.takeError().str();
    EXPECT_EQ(R->Status, 200);
  }

  Expected<FetchResult> First = httpGet(Pool->port(), "/admin/metrics");
  ASSERT_TRUE(First) << First.takeError().str();
  EXPECT_EQ(First->Status, 200);
  EXPECT_NE(First->Headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << First->Headers;

  Exposition E1;
  E1.parse(First->Body);
  if (::testing::Test::HasFatalFailure())
    return;
  ASSERT_GT(E1.Samples.size(), 20u);
  E1.checkHistograms();

  // Stage AND commit a live VTAL patch through the admin plane, then
  // re-scrape: every counter must be monotone across the update, and
  // the update-pipeline instrumentation must have produced samples.
  Expected<FetchResult> Post = httpPost(
      Pool->port(), "/admin/patches", vtalParseFixPatchText(), "text/plain");
  ASSERT_TRUE(Post) << Post.takeError().str();
  EXPECT_EQ(Post->Status, 202);
  for (int Spin = 0; Spin != 2000 && RT.updatesApplied() < 1; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_GE(RT.updatesApplied(), 1u);
  // The patched handler must run so VTAL call counters move.
  for (int I = 0; I != 8; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/doc.html?x=1");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Status, 200);
  }

  Expected<FetchResult> Second = httpGet(Pool->port(), "/admin/metrics");
  ASSERT_TRUE(Second) << Second.takeError().str();
  Exposition E2;
  E2.parse(Second->Body);
  if (::testing::Test::HasFatalFailure())
    return;
  E2.checkHistograms();

  std::map<std::string, double> C1 = E1.counterValues();
  std::map<std::string, double> C2 = E2.counterValues();
  ASSERT_FALSE(C1.empty());
  for (const auto &KV : C1) {
    auto It = C2.find(KV.first);
    ASSERT_NE(It, C2.end()) << "series disappeared: " << KV.first;
    EXPECT_GE(It->second, KV.second)
        << "counter went backwards: " << KV.first;
  }

  // The flight-recorder satellites are all exposed.
  const std::string &B = Second->Body;
  EXPECT_NE(B.find("dsu_vtal_calls_total"), std::string::npos);
  EXPECT_NE(B.find("dsu_vtal_fuel_total"), std::string::npos);
  EXPECT_NE(B.find("dsu_vtal_traps_total"), std::string::npos);
  EXPECT_NE(B.find("dsu_update_phase_us_bucket{phase=\"verify\""),
            std::string::npos);
  EXPECT_NE(B.find("dsu_update_phase_us_bucket{phase=\"queue_wait\""),
            std::string::npos);
  EXPECT_NE(B.find("dsu_request_duration_us_bucket{worker=\"0\""),
            std::string::npos);
  EXPECT_NE(B.find("dsu_request_duration_us_bucket{worker=\"1\""),
            std::string::npos);

  // The committed rolling update moved the pipeline counters.
  auto Get = [](const std::map<std::string, double> &M,
                const std::string &K) {
    auto It = M.find(K);
    return It == M.end() ? -1.0 : It->second;
  };
  EXPECT_GT(Get(C2, "dsu_updates_applied_total{}"),
            Get(C1, "dsu_updates_applied_total{}"));
#ifndef DSU_VTAL_NO_PROFILER
  EXPECT_GT(Get(C2, "dsu_vtal_calls_total{}"), 0.0);
#endif
}

} // namespace
