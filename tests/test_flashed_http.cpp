//===- tests/test_flashed_http.cpp - HTTP substrate tests -----*- C++ -*-===//

#include "flashed/DocStore.h"
#include "flashed/Http.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

TEST(HttpParseTest, BasicGet) {
  Expected<HttpRequest> R = parseHttpRequest(
      "GET /index.html HTTP/1.0\r\nHost: example.com\r\n"
      "User-Agent: test\r\n\r\n");
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(R->Method, "GET");
  EXPECT_EQ(R->Target, "/index.html");
  EXPECT_EQ(R->Version, "HTTP/1.0");
  EXPECT_EQ(R->header("host"), "example.com");
  EXPECT_EQ(R->header("user-agent"), "test");
  EXPECT_EQ(R->NumHeaders, 2u);
}

TEST(HttpParseTest, HeaderLookupCaseInsensitive) {
  Expected<HttpRequest> R = parseHttpRequest(
      "GET / HTTP/1.0\r\nX-CuStOm-KEY:  spaced value \r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->header("x-custom-key"), "spaced value");
  EXPECT_EQ(R->header("X-Custom-Key"), "spaced value");
  EXPECT_EQ(R->header("absent"), "");
}

TEST(HttpParseTest, BareLfAccepted) {
  Expected<HttpRequest> R = parseHttpRequest("GET /x HTTP/1.0\n\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Target, "/x");
}

TEST(HttpParseTest, Http09StyleLine) {
  Expected<HttpRequest> R = parseHttpRequest("GET /legacy\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Version, "HTTP/0.9");
  EXPECT_EQ(R->Target, "/legacy");
  EXPECT_FALSE(R->keepAlive());
}

TEST(HttpParseTest, Rejects) {
  EXPECT_FALSE(parseHttpRequest("GET /incomplete HTTP/1.0\r\n"));
  EXPECT_FALSE(parseHttpRequest("NOSPACES\r\n\r\n"));
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n"));
  EXPECT_FALSE(parseHttpRequest(""));
}

TEST(HttpParseTest, KeepAliveDefaults) {
  // HTTP/1.1 persists by default...
  auto R = parseHttpRequest("GET / HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->keepAlive());
  // ...unless the client opts out.
  R = parseHttpRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_FALSE(R->keepAlive());
  // HTTP/1.0 closes by default...
  R = parseHttpRequest("GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_FALSE(R->keepAlive());
  // ...unless the client opts in.
  R = parseHttpRequest("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->keepAlive());
}

TEST(HttpParseTest, RequestComplete) {
  EXPECT_TRUE(requestComplete("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(requestComplete("GET / HTTP/1.0\n\n"));
  EXPECT_FALSE(requestComplete("GET / HTTP/1.0\r\n"));
  EXPECT_FALSE(requestComplete(""));
}

TEST(HttpScanTest, FramesCompleteRequest) {
  std::string Raw = "GET /a.html HTTP/1.1\r\nHost: h\r\n\r\n";
  RequestHead H = scanRequestHead(Raw);
  EXPECT_TRUE(H.Complete);
  EXPECT_FALSE(H.Malformed);
  EXPECT_EQ(H.Method, "GET");
  EXPECT_EQ(H.Target, "/a.html");
  EXPECT_EQ(H.Version, "HTTP/1.1");
  EXPECT_EQ(H.HeadBytes, Raw.size());
  EXPECT_EQ(H.ContentLength, 0u);
  EXPECT_TRUE(H.KeepAlive);
}

TEST(HttpScanTest, IncompleteHead) {
  RequestHead H = scanRequestHead("GET / HTTP/1.1\r\nHost: h\r\n");
  EXPECT_FALSE(H.Complete);
}

TEST(HttpScanTest, FramesPipelinedFirstRequestOnly) {
  std::string Two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  RequestHead H = scanRequestHead(Two);
  ASSERT_TRUE(H.Complete);
  EXPECT_EQ(H.Target, "/a");
  EXPECT_EQ(H.totalBytes(), Two.size() / 2);
  // Scanning the remainder frames the second request.
  RequestHead H2 = scanRequestHead(
      std::string_view(Two).substr(H.totalBytes()));
  ASSERT_TRUE(H2.Complete);
  EXPECT_EQ(H2.Target, "/b");
}

TEST(HttpScanTest, ContentLengthFraming) {
  std::string Raw =
      "POST /p HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  RequestHead H = scanRequestHead(Raw);
  ASSERT_TRUE(H.Complete);
  EXPECT_EQ(H.ContentLength, 5u);
  EXPECT_EQ(H.totalBytes(), Raw.size());
}

TEST(HttpScanTest, BadContentLengthIsMalformed) {
  RequestHead H = scanRequestHead(
      "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  EXPECT_TRUE(H.Complete);
  EXPECT_TRUE(H.Malformed);
  // A magnitude that would wrap the HeadBytes + ContentLength framing
  // sum must be rejected, not fed into totalBytes().
  H = scanRequestHead(
      "GET / HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n");
  EXPECT_TRUE(H.Complete);
  EXPECT_TRUE(H.Malformed);
}

TEST(HttpScanTest, MalformedStartLineStillFramed) {
  RequestHead H = scanRequestHead("GARBAGE\r\n\r\n");
  EXPECT_TRUE(H.Complete);
  EXPECT_TRUE(H.Malformed);
}

TEST(HttpScanTest, ConnectionTokenList) {
  RequestHead H = scanRequestHead(
      "GET / HTTP/1.1\r\nConnection: Upgrade, Close\r\n\r\n");
  ASSERT_TRUE(H.Complete);
  EXPECT_FALSE(H.KeepAlive); // "close" token recognized case-insensitively
}

TEST(HttpResponseTest, SerializesWithFraming) {
  std::string R = buildHttpResponse(200, "text/html", "<p>hi</p>");
  EXPECT_NE(R.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(R.find("Content-Type: text/html\r\n"), std::string::npos);
  EXPECT_NE(R.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_TRUE(R.size() > 9 && R.substr(R.size() - 9) == "<p>hi</p>");
}

TEST(HttpResponseTest, AppendKeepAliveResponse) {
  std::string Out;
  appendHttpResponse(Out, 200, "text/plain", "abc", /*KeepAlive=*/true);
  EXPECT_NE(Out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(Out.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(Out.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_TRUE(Out.substr(Out.size() - 3) == "abc");
  // Appending composes (pipelined responses share the buffer).
  size_t First = Out.size();
  appendHttpResponse(Out, 404, "text/html", "x", /*KeepAlive=*/false);
  EXPECT_NE(Out.find("HTTP/1.1 404 Not Found\r\n", First),
            std::string::npos);
  EXPECT_NE(Out.find("Connection: close\r\n", First), std::string::npos);
}

TEST(HttpResponseTest, StatusTexts) {
  EXPECT_STREQ(statusText(200), "OK");
  EXPECT_STREQ(statusText(304), "Not Modified");
  EXPECT_STREQ(statusText(404), "Not Found");
  EXPECT_STREQ(statusText(403), "Forbidden");
  EXPECT_STREQ(statusText(431), "Request Header Fields Too Large");
  EXPECT_STREQ(statusText(500), "Internal Server Error");
  EXPECT_STREQ(statusText(505), "HTTP Version Not Supported");
  EXPECT_STREQ(statusText(999), "Unknown");
}

TEST(MimeTest, KnownAndUnknown) {
  EXPECT_STREQ(mimeForExtension("html"), "text/html");
  EXPECT_STREQ(mimeForExtension("css"), "text/css");
  EXPECT_STREQ(mimeForExtension("js"), "application/javascript");
  EXPECT_STREQ(mimeForExtension("png"), "image/png");
  EXPECT_STREQ(mimeForExtension("svg"), "image/svg+xml");
  EXPECT_STREQ(mimeForExtension("wasm"), "application/wasm");
  EXPECT_STREQ(mimeForExtension("weird"), "application/octet-stream");
  EXPECT_STREQ(mimeForExtension(""), "application/octet-stream");
}

TEST(DocStoreTest, PutGet) {
  DocStore D;
  D.put("/a.html", "alpha");
  D.put("/b.txt", "beta");
  EXPECT_EQ(D.size(), 2u);
  ASSERT_NE(D.get("/a.html"), nullptr);
  EXPECT_EQ(*D.get("/a.html"), "alpha");
  EXPECT_EQ(D.get("/missing"), nullptr);
  D.put("/a.html", "alpha2");
  EXPECT_EQ(*D.get("/a.html"), "alpha2");
  EXPECT_EQ(D.size(), 2u);
}

TEST(DocStoreTest, SharedBodiesAlias) {
  DocStore D;
  D.put("/a.html", "alpha");
  std::shared_ptr<const std::string> S1 = D.getShared("/a.html");
  std::shared_ptr<const std::string> S2 = D.getShared("/a.html");
  ASSERT_TRUE(S1);
  EXPECT_EQ(S1.get(), S2.get()); // same bytes, no copies
  EXPECT_EQ(S1.get(), D.get("/a.html"));
  EXPECT_EQ(D.getShared("/missing"), nullptr);
}

TEST(DocStoreTest, UnsafePaths) {
  EXPECT_TRUE(DocStore::isUnsafePath("/../etc/passwd"));
  EXPECT_TRUE(DocStore::isUnsafePath("/a/../../b"));
  EXPECT_FALSE(DocStore::isUnsafePath("/normal/path.html"));
}

TEST(DocStoreTest, SyntheticFill) {
  DocStore D;
  D.fillSynthetic(8, 256);
  EXPECT_EQ(D.size(), 8u);
  for (const std::string &P : D.paths())
    EXPECT_EQ(D.get(P)->size(), 256u);
  // Deterministic contents.
  EXPECT_EQ(syntheticBody(64, 3), syntheticBody(64, 3));
  EXPECT_NE(syntheticBody(64, 3), syntheticBody(64, 4));
  EXPECT_EQ(syntheticBody(0).size(), 0u);
  EXPECT_EQ(syntheticBody(1000000).size(), 1000000u);
}

} // namespace
