//===- tests/test_flashed_http.cpp - HTTP substrate tests -----*- C++ -*-===//

#include "flashed/DocStore.h"
#include "flashed/Http.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

TEST(HttpParseTest, BasicGet) {
  Expected<HttpRequest> R = parseHttpRequest(
      "GET /index.html HTTP/1.0\r\nHost: example.com\r\n"
      "User-Agent: test\r\n\r\n");
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(R->Method, "GET");
  EXPECT_EQ(R->Target, "/index.html");
  EXPECT_EQ(R->Version, "HTTP/1.0");
  EXPECT_EQ(R->Headers.at("host"), "example.com");
  EXPECT_EQ(R->Headers.at("user-agent"), "test");
}

TEST(HttpParseTest, HeaderKeysLowerCased) {
  Expected<HttpRequest> R = parseHttpRequest(
      "GET / HTTP/1.0\r\nX-CuStOm-KEY:  spaced value \r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Headers.at("x-custom-key"), "spaced value");
}

TEST(HttpParseTest, BareLfAccepted) {
  Expected<HttpRequest> R = parseHttpRequest("GET /x HTTP/1.0\n\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Target, "/x");
}

TEST(HttpParseTest, Http09StyleLine) {
  Expected<HttpRequest> R = parseHttpRequest("GET /legacy\r\n\r\n");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Version, "HTTP/0.9");
  EXPECT_EQ(R->Target, "/legacy");
}

TEST(HttpParseTest, Rejects) {
  EXPECT_FALSE(parseHttpRequest("GET /incomplete HTTP/1.0\r\n"));
  EXPECT_FALSE(parseHttpRequest("NOSPACES\r\n\r\n"));
  EXPECT_FALSE(parseHttpRequest(
      "GET / HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n"));
  EXPECT_FALSE(parseHttpRequest(""));
}

TEST(HttpParseTest, RequestComplete) {
  EXPECT_TRUE(requestComplete("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_TRUE(requestComplete("GET / HTTP/1.0\n\n"));
  EXPECT_FALSE(requestComplete("GET / HTTP/1.0\r\n"));
  EXPECT_FALSE(requestComplete(""));
}

TEST(HttpResponseTest, SerializesWithFraming) {
  std::string R = buildHttpResponse(200, "text/html", "<p>hi</p>");
  EXPECT_NE(R.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(R.find("Content-Type: text/html\r\n"), std::string::npos);
  EXPECT_NE(R.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_TRUE(R.size() > 9 && R.substr(R.size() - 9) == "<p>hi</p>");
}

TEST(HttpResponseTest, StatusTexts) {
  EXPECT_STREQ(statusText(200), "OK");
  EXPECT_STREQ(statusText(404), "Not Found");
  EXPECT_STREQ(statusText(403), "Forbidden");
  EXPECT_STREQ(statusText(500), "Internal Server Error");
  EXPECT_STREQ(statusText(999), "Unknown");
}

TEST(MimeTest, KnownAndUnknown) {
  EXPECT_STREQ(mimeForExtension("html"), "text/html");
  EXPECT_STREQ(mimeForExtension("css"), "text/css");
  EXPECT_STREQ(mimeForExtension("js"), "application/javascript");
  EXPECT_STREQ(mimeForExtension("png"), "image/png");
  EXPECT_STREQ(mimeForExtension("weird"), "application/octet-stream");
}

TEST(DocStoreTest, PutGet) {
  DocStore D;
  D.put("/a.html", "alpha");
  D.put("/b.txt", "beta");
  EXPECT_EQ(D.size(), 2u);
  ASSERT_NE(D.get("/a.html"), nullptr);
  EXPECT_EQ(*D.get("/a.html"), "alpha");
  EXPECT_EQ(D.get("/missing"), nullptr);
  D.put("/a.html", "alpha2");
  EXPECT_EQ(*D.get("/a.html"), "alpha2");
  EXPECT_EQ(D.size(), 2u);
}

TEST(DocStoreTest, UnsafePaths) {
  EXPECT_TRUE(DocStore::isUnsafePath("/../etc/passwd"));
  EXPECT_TRUE(DocStore::isUnsafePath("/a/../../b"));
  EXPECT_FALSE(DocStore::isUnsafePath("/normal/path.html"));
}

TEST(DocStoreTest, SyntheticFill) {
  DocStore D;
  D.fillSynthetic(8, 256);
  EXPECT_EQ(D.size(), 8u);
  for (const std::string &P : D.paths())
    EXPECT_EQ(D.get(P)->size(), 256u);
  // Deterministic contents.
  EXPECT_EQ(syntheticBody(64, 3), syntheticBody(64, 3));
  EXPECT_NE(syntheticBody(64, 3), syntheticBody(64, 4));
  EXPECT_EQ(syntheticBody(0).size(), 0u);
  EXPECT_EQ(syntheticBody(1000000).size(), 1000000u);
}

} // namespace
