//===- tests/lint/test_lint.cpp - Analyzer negative corpus ----*- C++ -*-===//
///
/// \file
/// The update-safety analyzer's table-driven corpus, staged through the
/// real pipeline (controller worker, journal attached) against the real
/// FlashEd program image.  Each statically-bad patch must be refused
/// with EC_Analysis, carry the expected finding code on its update
/// record, and — the durability contract — leave NO Intent record in
/// the journal: a patch the analyzer can prove bad never enters
/// crash-recovery replay.  Good patches must stage clean through the
/// same gate.
///
//===----------------------------------------------------------------------===//

#include "analysis/Finding.h"
#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/Patches.h"
#include "persist/Journal.h"
#include "runtime/UpdateController.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

using namespace dsu;

namespace {

std::string freshDir(const std::string &Name) {
  std::string D = ::testing::TempDir() + "dsu_lint_" + Name;
  std::system(("rm -rf '" + D + "'").c_str());
  return D;
}

/// The staging pipeline with everything the analyzer audits attached:
/// the FlashEd program image (types, state cell, updateable slots, host
/// exports) and a durable journal.
struct LintHarness {
  Runtime RT;
  flashed::FlashedApp App{RT};
  std::unique_ptr<persist::UpdateJournal> Journal;

  explicit LintHarness(const std::string &Name) {
    EXPECT_FALSE(App.init(flashed::DocStore()));
    persist::UpdateJournal::Options O;
    O.Sync = false; // the tests assert record content, not durability
    Expected<std::unique_ptr<persist::UpdateJournal>> J =
        persist::UpdateJournal::open(freshDir(Name), O);
    EXPECT_TRUE(J) << (J ? "" : J.error().str());
    if (J) {
      Journal = std::move(*J);
      Journal->beginBoot("");
      RT.attachJournal(Journal.get());
    }
  }

  ~LintHarness() { RT.attachJournal(nullptr); }

  /// Stages \p Text through the controller and waits for the worker.
  StagedUpdate stage(const std::string &Text) {
    StagedUpdate U = RT.controller().stageArtifactText(Text, "lint-test");
    RT.controller().waitIdle();
    return U;
  }

  size_t intentCount() const {
    size_t N = 0;
    for (const persist::JournalRecord &R : Journal->records())
      N += R.Kind == persist::RecordKind::Intent;
    return N;
  }
};

bool hasFinding(const UpdateRecord &Rec, const char *Code,
                analysis::Severity Sev) {
  for (const analysis::Finding &F : Rec.AnalysisFindings)
    if (F.Code == Code && F.Sev == Sev)
      return true;
  return false;
}

/// Asserts the analyzer refused \p Text with an error finding \p Code
/// and that no Intent reached the journal.
void expectRefused(LintHarness &H, const std::string &Text,
                   const char *Code) {
  size_t IntentsBefore = H.intentCount();
  StagedUpdate U = H.stage(Text);
  UpdateRecord Rec = U.record();
  EXPECT_EQ(U.phase(), UpdatePhase::StageFailed) << Rec.FailureReason;
  EXPECT_NE(Rec.FailureReason.find("update-safety analyzer"),
            std::string::npos)
      << Rec.FailureReason;
  EXPECT_TRUE(Rec.AnalysisRan);
  EXPECT_TRUE(hasFinding(Rec, Code, analysis::Severity::Error))
      << "expected error finding '" << Code << "' on " << Rec.PatchId;
  EXPECT_EQ(H.intentCount(), IntentsBefore)
      << "a statically-refused patch must not journal an Intent";
}

// --- Negative corpus ----------------------------------------------------

TEST(PatchLintTest, MissingTransformerRefusedBeforeIntent) {
  LintHarness H("missing_xform");
  // Bumps the live flashed_cache type (v1 exists) without shipping a
  // transformer for the 1 -> 2 bump: expandBump() would refuse it at
  // stage time; the analyzer refuses it before the Intent.
  expectRefused(H, R"dsu(
(patch
  (id "lint-missing-xform")
  (description "bumps flashed_cache without a transformer")
  (new-types
    (type (name "%flashed_cache@2") (repr "int")))
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime")))
  (vtal-module
"module lint_missing
func mime (path: string) -> string {
  push.s \"text/plain\"
  ret
}"))
)dsu",
                "missing-transformer");
}

TEST(PatchLintTest, OrphanTransformerRefused) {
  LintHarness H("orphan_xform");
  // Transforms between versions of a type neither the program nor the
  // patch defines: the transformer can never fire.
  expectRefused(H, R"dsu(
(patch
  (id "lint-orphan-xform")
  (description "transformer between undefined type versions")
  (transformers
    (transform (from "%ghost@1") (to "%ghost@2") (impl "xform")))
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime")))
  (vtal-module
"module lint_orphan
func mime (path: string) -> string {
  push.s \"text/plain\"
  ret
}
func xform (v: int) -> int {
  load v
  ret
}"))
)dsu",
                "orphan-transformer");
}

TEST(PatchLintTest, MustTrapPatchRefused) {
  LintHarness H("must_trap");
  // The rollout suite's trap-on-call fault: a constant division by
  // zero on the entry path.  Dynamically the canary trap gate catches
  // it after serving bad traffic; statically it never stages.
  expectRefused(H, faultinject::trapPatchText(), "must-trap");
}

TEST(PatchLintTest, FuelBombRefused) {
  LintHarness H("fuel_bomb");
  // 20M iterations x 9 region instructions = ~180M, far past the 64M
  // interpreter fuel budget: guaranteed to trap on every invocation.
  expectRefused(H, faultinject::fuelBurnPatchText(20'000'000),
                "fuel-exhaustion");
}

TEST(PatchLintTest, InfiniteLoopRefused) {
  LintHarness H("infinite_loop");
  // No exit from the loop region at all — fuel exhaustion regardless
  // of the budget.
  expectRefused(H, R"dsu(
(patch
  (id "lint-infinite-loop")
  (description "a loop with no exit")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime")))
  (vtal-module
"module lint_spin
func mime (path: string) -> string {
loop:
  br loop
  push.s \"text/plain\"
  ret
}"))
)dsu",
                "infinite-loop");
}

TEST(PatchLintTest, ShadowingProvideRefused) {
  LintHarness H("shadowing");
  // flashed.now_ms is a host export (fn() -> int), not an updateable
  // slot: providing it under a different type splits the namespace —
  // imports keep resolving to the host export, updateable dispatch
  // would find the patch binding.
  expectRefused(H, R"dsu(
(patch
  (id "lint-shadowing-provide")
  (description "provides a host export's name under another type")
  (provides
    (fn (name "flashed.now_ms")
        (type "fn(string) -> string")
        (vtal-fn "now")))
  (vtal-module
"module lint_shadow
func now (path: string) -> string {
  push.s \"0\"
  ret
}"))
)dsu",
                "shadowing-provide");
}

// --- Positive corpus ----------------------------------------------------

TEST(PatchLintTest, SmallLoopStagesClean) {
  LintHarness H("small_loop");
  // The same loop shape as the fuel bomb with a trip count (~9k
  // instructions) comfortably inside the budget: the analyzer must not
  // cry wolf on bounded loops.
  StagedUpdate U = H.stage(faultinject::fuelBurnPatchText(1000));
  UpdateRecord Rec = U.record();
  EXPECT_EQ(U.phase(), UpdatePhase::Ready) << Rec.FailureReason;
  EXPECT_TRUE(Rec.AnalysisRan);
  // Clean = nothing actionable.  Info-severity advisories (the native
  // tier's coverage notes on string-typed functions) are allowed.
  for (const analysis::Finding &F : Rec.AnalysisFindings)
    EXPECT_EQ(F.Sev, analysis::Severity::Info)
        << F.Code << ": " << F.Message;
  EXPECT_TRUE(Rec.CodeOnlyPredicted);
  EXPECT_EQ(H.intentCount(), 1u);
  EXPECT_FALSE(U.abort());
}

TEST(PatchLintTest, ParseFixPatchStagesClean) {
  LintHarness H("parse_fix");
  // The real P1 artifact shipped throughout the controller-path tests:
  // forward branches only, compatible provides, no type changes.
  StagedUpdate U = H.stage(flashed::vtalParseFixPatchText());
  UpdateRecord Rec = U.record();
  EXPECT_EQ(U.phase(), UpdatePhase::Ready) << Rec.FailureReason;
  EXPECT_TRUE(Rec.AnalysisRan);
  for (const analysis::Finding &F : Rec.AnalysisFindings)
    EXPECT_EQ(F.Sev, analysis::Severity::Info)
        << F.Code << ": " << F.Message;
  EXPECT_TRUE(Rec.CodeOnlyPredicted);
  EXPECT_FALSE(U.abort());
}

TEST(PatchLintTest, WarningsRecordedButDoNotRefuse) {
  LintHarness H("warn_only");
  // Dead code after the return is a warning: recorded on the update
  // record for `dsu-updatectl log` / GET /admin/lint, staged anyway.
  StagedUpdate U = H.stage(R"dsu(
(patch
  (id "lint-dead-code")
  (description "unreachable tail after ret")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime")))
  (vtal-module
"module lint_dead
func mime (path: string) -> string {
  push.s \"text/plain\"
  ret
  push.s \"never\"
  ret
}"))
)dsu");
  UpdateRecord Rec = U.record();
  EXPECT_EQ(U.phase(), UpdatePhase::Ready) << Rec.FailureReason;
  EXPECT_TRUE(Rec.AnalysisRan);
  EXPECT_TRUE(
      hasFinding(Rec, "unreachable-code", analysis::Severity::Warning));
  EXPECT_EQ(H.intentCount(), 1u)
      << "warnings must not block the update";
  EXPECT_FALSE(U.abort());
}

TEST(PatchLintTest, GateDisabledRecordsButStages) {
  LintHarness H("gate_off");
  // The canary-suite escape hatch: with the gate off the analyzer still
  // runs and records its findings, but refusal is left to the dynamic
  // gates (how test_rollout ships its fault-injected patches).
  H.RT.setAnalysisGate(false);
  size_t Before = H.intentCount();
  StagedUpdate U = H.stage(faultinject::trapPatchText());
  UpdateRecord Rec = U.record();
  EXPECT_EQ(U.phase(), UpdatePhase::Ready) << Rec.FailureReason;
  EXPECT_TRUE(Rec.AnalysisRan);
  EXPECT_TRUE(hasFinding(Rec, "must-trap", analysis::Severity::Error));
  EXPECT_EQ(H.intentCount(), Before + 1);
  EXPECT_FALSE(U.abort());
}

} // namespace
