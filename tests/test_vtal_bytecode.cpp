//===- tests/test_vtal_bytecode.cpp - VTAL encoding tests -----*- C++ -*-===//

#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

const char *Sources[] = {
    // Minimal.
    "module tiny\nfunc f () -> unit {\nret\n}",
    // All operand kinds.
    R"(module ops
import log : (string) -> unit
func f (n: int, x: float, b: bool, s: string) -> string {
  locals (t: string)
  load s
  store t
  push.s "msg \"quoted\"\n"
  call log
  load n
  push.i -9223372036854775807
  add
  pop
  load x
  push.f -1.25e3
  fadd
  pop
  load b
  push.b false
  or
  brif yes
  load t
  ret
yes:
  push.s "yes"
  ret
})",
    // Control-flow heavy.
    R"(module loops
func f (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
outer:
  load i
  load n
  ge
  brif done
  load acc
  load i
  add
  store acc
  load i
  push.i 1
  add
  store i
  br outer
done:
  load acc
  ret
})",
};

class BytecodeRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(BytecodeRoundTrip, EncodeDecodePreservesModule) {
  Expected<Module> M = assemble(GetParam());
  ASSERT_TRUE(M) << M.error().str();

  std::string Bytes = encodeModule(*M);
  Expected<Module> Back = decodeModule(Bytes);
  ASSERT_TRUE(Back) << Back.error().str();

  // Structural identity via re-encoding and via the printer.
  EXPECT_EQ(encodeModule(*Back), Bytes);
  EXPECT_EQ(Back->str(), M->str());
  EXPECT_EQ(Back->fingerprint(), M->fingerprint());

  // Verification verdicts agree.
  EXPECT_EQ(static_cast<bool>(verifyModule(*M)),
            static_cast<bool>(verifyModule(*Back)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BytecodeRoundTrip,
                         ::testing::ValuesIn(Sources));

TEST(BytecodeTest, DecodedModuleExecutesIdentically) {
  Expected<Module> M = assemble(Sources[2]);
  ASSERT_TRUE(M);
  Expected<Module> Back = decodeModule(encodeModule(*M));
  ASSERT_TRUE(Back);

  Interpreter A(*M), B(*Back);
  for (int64_t N : {0, 1, 5, 100}) {
    Expected<Value> RA = A.call("f", {Value::makeInt(N)});
    Expected<Value> RB = B.call("f", {Value::makeInt(N)});
    ASSERT_TRUE(RA);
    ASSERT_TRUE(RB);
    EXPECT_EQ(RA->asInt(), RB->asInt());
  }
}

TEST(BytecodeTest, StrippedSizeIsSmaller) {
  Expected<Module> M = assemble(Sources[1]);
  ASSERT_TRUE(M);
  EXPECT_LT(strippedSize(*M), encodeModule(*M).size());
}

TEST(BytecodeTest, RejectsBadMagic) {
  EXPECT_FALSE(decodeModule(""));
  EXPECT_FALSE(decodeModule("XXXX"));
  EXPECT_FALSE(decodeModule("VTA"));
  std::string Bytes = encodeModule(
      *assemble("module m\nfunc f () -> unit {\nret\n}"));
  Bytes[0] = 'W';
  EXPECT_FALSE(decodeModule(Bytes));
}

TEST(BytecodeTest, RejectsTruncation) {
  std::string Bytes =
      encodeModule(*assemble(Sources[1]));
  // Every strict prefix must be rejected (never crash, never accept).
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    Expected<Module> M = decodeModule(std::string_view(Bytes).substr(0, Len));
    EXPECT_FALSE(M) << "accepted truncation at " << Len;
  }
}

TEST(BytecodeTest, RejectsTrailingGarbage) {
  std::string Bytes =
      encodeModule(*assemble("module m\nfunc f () -> unit {\nret\n}"));
  Bytes += "extra";
  EXPECT_FALSE(decodeModule(Bytes));
}

TEST(BytecodeTest, FingerprintTracksContent) {
  Module A = *assemble("module m\nfunc f () -> int {\npush.i 1\nret\n}");
  Module B = *assemble("module m\nfunc f () -> int {\npush.i 2\nret\n}");
  EXPECT_NE(A.fingerprint(), B.fingerprint());
  EXPECT_EQ(A.fingerprint(),
            assemble("module m\nfunc f () -> int {\npush.i 1\nret\n}")
                ->fingerprint());
}

} // namespace
