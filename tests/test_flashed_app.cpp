//===- tests/test_flashed_app.cpp - FlashEd application tests -*- C++ -*-===//
///
/// The macro-benchmark application and its scripted evolution: behaviour
/// at v1, after each of P1..P5, and the static-vs-updateable equivalence
/// that underpins the throughput experiment (E2).

#include "flashed/App.h"
#include "flashed/Patches.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

std::string get(const std::string &Target) {
  return "GET " + Target + " HTTP/1.0\r\nHost: t\r\n\r\n";
}

class FlashedAppTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.put("/style.css", "body{}");
    Docs.put("/data.bin", "\x01\x02");
    ASSERT_FALSE(App.init(std::move(Docs)));
  }

  void applyPatch(Expected<Patch> P) {
    ASSERT_TRUE(P) << P.takeError().str();
    Error E = RT.applyNow(std::move(*P));
    ASSERT_FALSE(E) << E.str();
  }

  Runtime RT;
  FlashedApp App{RT};
};

TEST_F(FlashedAppTest, ServesDocuments) {
  std::string R = App.handle(get("/doc.html"));
  EXPECT_NE(R.find("200 OK"), std::string::npos);
  EXPECT_NE(R.find("<html>doc</html>"), std::string::npos);
  EXPECT_NE(R.find("text/html"), std::string::npos);
}

TEST_F(FlashedAppTest, RootMapsToIndex) {
  std::string R = App.handle(get("/"));
  EXPECT_NE(R.find("<html>home</html>"), std::string::npos);
}

TEST_F(FlashedAppTest, MissingDocumentIs404) {
  EXPECT_NE(App.handle(get("/ghost.html")).find("404"), std::string::npos);
}

TEST_F(FlashedAppTest, TraversalIs403) {
  EXPECT_NE(App.handle(get("/../etc/passwd")).find("403"),
            std::string::npos);
}

TEST_F(FlashedAppTest, BadMethodIs405) {
  EXPECT_NE(App.handle("POST / HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
}

TEST_F(FlashedAppTest, MalformedIs400) {
  EXPECT_NE(App.handle("GARBAGE\r\n\r\n").find("400"), std::string::npos);
}

TEST_F(FlashedAppTest, HeadOmitsBody) {
  std::string R = App.handle("HEAD /doc.html HTTP/1.0\r\n\r\n");
  EXPECT_NE(R.find("200 OK"), std::string::npos);
  EXPECT_EQ(R.find("<html>doc</html>"), std::string::npos);
}

TEST_F(FlashedAppTest, CachePopulates) {
  EXPECT_TRUE(App.cacheCell()->get<CacheV1>()->Entries.empty());
  App.handle(get("/doc.html"));
  // The fill is a copy-update-publish: it replaces the snapshot rather
  // than mutating it, so re-read the cell for the post-fill payload.
  auto *C = App.cacheCell()->get<CacheV1>();
  EXPECT_EQ(C->Entries.count("/doc.html"), 1u);
}

TEST_F(FlashedAppTest, V1QueryStringBug) {
  // The seeded defect: query strings defeat document lookup.
  EXPECT_NE(App.handle(get("/doc.html?x=1")).find("404"),
            std::string::npos);
}

TEST_F(FlashedAppTest, P1FixesQueryStrings) {
  applyPatch(makePatchP1(App));
  std::string R = App.handle(get("/doc.html?x=1"));
  EXPECT_NE(R.find("200 OK"), std::string::npos);
  EXPECT_EQ(App.ParseTarget.version(), 2u);
}

TEST_F(FlashedAppTest, P2ExtendsMimeAndMapping) {
  // v1: css served as octet-stream, trailing slash 404s.
  EXPECT_NE(App.handle(get("/style.css")).find("application/octet-stream"),
            std::string::npos);
  applyPatch(makePatchP2(App));
  EXPECT_NE(App.handle(get("/style.css")).find("text/css; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(App.handle(get("/doc.html/")).find("200 OK"),
            std::string::npos);
  // New function exists.
  auto DefaultDoc = cantFail(bindUpdateable<std::string()>(
      RT.updateables(), RT.types(), "flashed.default_doc"));
  EXPECT_EQ(DefaultDoc(), "/index.html");
}

TEST_F(FlashedAppTest, P3MigratesLiveCache) {
  // Warm the v1 cache.
  App.handle(get("/doc.html"));
  App.handle(get("/index.html"));
  ASSERT_EQ(App.cacheCell()->get<CacheV1>()->Entries.size(), 2u);

  applyPatch(makePatchP3(App));

  // Live data survived the representation change.
  EXPECT_EQ(App.cacheCell()->type()->str(), "%flashed_cache@2");
  auto *V2 = App.cacheCell()->get<CacheV2>();
  ASSERT_EQ(V2->Entries.size(), 2u);
  EXPECT_EQ(*V2->Entries.at("/doc.html").Body, "<html>doc</html>");
  EXPECT_EQ(V2->Entries.at("/doc.html").Hits, 0);

  // Hits now count.
  App.handle(get("/doc.html"));
  App.handle(get("/doc.html"));
  EXPECT_EQ(V2->Entries.at("/doc.html").Hits, 2);

  // And the new stats function reports them.
  auto Stats = cantFail(bindUpdateable<std::string()>(
      RT.updateables(), RT.types(), "flashed.cache_stats"));
  EXPECT_NE(Stats().find("hits=2"), std::string::npos);

  // Serving still works end to end.
  EXPECT_NE(App.handle(get("/doc.html")).find("200 OK"),
            std::string::npos);
}

TEST_F(FlashedAppTest, P4ShimsSignatureChange) {
  applyPatch(makePatchP4(App));
  // Old entry point still valid (now a shim)...
  App.handle(get("/doc.html"));
  // ...and the new wide interface exists.
  auto Log2 =
      cantFail(bindUpdateable<void(std::string, int64_t, int64_t)>(
          RT.updateables(), RT.types(), "flashed.log_access2"));
  Log2("/x", 200, 1234);
  EXPECT_EQ(App.LogAccess.version(), 2u);
}

TEST_F(FlashedAppTest, P5IntroducesAccessLog) {
  applyPatch(makePatchP4(App));
  applyPatch(makePatchP5(App));

  App.handle(get("/doc.html"));
  App.handle(get("/ghost.html"));

  auto Count = cantFail(bindUpdateable<int64_t()>(
      RT.updateables(), RT.types(), "flashed.log_count"));
  auto Recent = cantFail(bindUpdateable<std::string()>(
      RT.updateables(), RT.types(), "flashed.log_recent"));
  EXPECT_GE(Count(), 2);
  std::string R = Recent();
  EXPECT_NE(R.find("200 /doc.html"), std::string::npos);
  EXPECT_NE(R.find("404"), std::string::npos);
}

TEST_F(FlashedAppTest, FullSeriesAppliesInOrder) {
  Expected<std::vector<Patch>> Series = makePatchSeries(App);
  ASSERT_TRUE(Series) << Series.takeError().str();
  EXPECT_EQ(Series->size(), 5u);
  for (Patch &P : *Series) {
    Error E = RT.applyNow(std::move(P));
    ASSERT_FALSE(E) << E.str();
  }
  EXPECT_EQ(RT.updatesApplied(), 5u);

  // Post-evolution behaviour: everything at once.
  std::string R = App.handle(get("/style.css?v=3"));
  EXPECT_NE(R.find("200 OK"), std::string::npos);
  EXPECT_NE(R.find("text/css"), std::string::npos);
  auto Count = cantFail(bindUpdateable<int64_t()>(
      RT.updateables(), RT.types(), "flashed.log_count"));
  EXPECT_GE(Count(), 1);
  auto Log = RT.updateLog();
  EXPECT_EQ(Log.size(), 5u);
  for (const UpdateRecord &Rec : Log)
    EXPECT_TRUE(Rec.Succeeded) << Rec.PatchId << ": " << Rec.FailureReason;
}

// Property: before any update, the updateable pipeline and the static
// pipeline are observationally equivalent on every request shape.
class PipelineEquivalence : public ::testing::TestWithParam<const char *> {};

TEST_P(PipelineEquivalence, StaticMatchesUpdateable) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/index.html", "<html>home</html>");
  Docs.put("/doc.html", "<html>doc</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));

  std::string Raw = GetParam();
  EXPECT_EQ(App.handle(Raw), App.handleStatic(Raw));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineEquivalence,
    ::testing::Values("GET / HTTP/1.0\r\n\r\n",
                      "GET /doc.html HTTP/1.0\r\n\r\n",
                      "GET /ghost HTTP/1.0\r\n\r\n",
                      "GET /doc.html?q=1 HTTP/1.0\r\n\r\n",
                      "GET /../x HTTP/1.0\r\n\r\n",
                      "HEAD /doc.html HTTP/1.0\r\n\r\n",
                      "POST / HTTP/1.0\r\n\r\n", "BAD\r\n\r\n"));

} // namespace
