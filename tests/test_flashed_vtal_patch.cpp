//===- tests/test_flashed_vtal_patch.cpp - Verified patch on FlashEd -*- C++ -//
///
/// The full paper pipeline on the macro application: FlashEd's
/// parse_target stage is replaced by *verified* VTAL code (using the
/// string instructions), the module is machine-checked at the update
/// point, and the server's observable behaviour changes accordingly.

#include "flashed/App.h"
#include "flashed/Patches.h"
#include "patch/PatchLoader.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

// The canonical artifact lives beside the in-process patch series
// (flashed/Patches.cpp) so the admin control plane, the tools, and
// these tests all exercise the same bytes.

TEST(FlashedVtalPatchTest, VerifiedParserDrivesTheServer) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>doc</html>");
  Docs.put("/index.html", "<html>home</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));

  std::string WithQuery = "GET /doc.html?v=2 HTTP/1.0\r\n\r\n";
  EXPECT_NE(App.handle(WithQuery).find("404"), std::string::npos);

  Expected<Patch> P =
      loadVtalPatch(RT.types(), RT.exports(), vtalParseFixPatchText());
  ASSERT_TRUE(P) << P.takeError().str();
  ASSERT_TRUE(P->VtalMod);
  Error E = RT.applyNow(std::move(*P));
  ASSERT_FALSE(E) << E.str();

  // Verified bytecode now parses every request.
  EXPECT_NE(App.handle(WithQuery).find("200 OK"), std::string::npos);
  EXPECT_NE(App.handle("GET / HTTP/1.0\r\n\r\n").find("<html>home</html>"),
            std::string::npos);
  EXPECT_NE(App.handle("POST / HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(App.handle("GARBAGE\r\n\r\n").find("400"), std::string::npos);
  EXPECT_NE(App.handle("HEAD /doc.html HTTP/1.0\r\n\r\n").find("200 OK"),
            std::string::npos);

  const UpdateRecord Rec = RT.updateLog().at(0);
  EXPECT_TRUE(Rec.Succeeded);
  EXPECT_GT(Rec.InstructionsVerified, 50u);
}

TEST(FlashedVtalPatchTest, AgreesWithNativeParserOnASweep) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));

  // Collect the native v1 answers (modulo the query bug) first.
  std::vector<std::string> Requests = {
      "GET /doc.html HTTP/1.0\r\n\r\n",
      "GET / HTTP/1.0\r\n\r\n",
      "HEAD /a/b/c.txt HTTP/1.0\r\n\r\n",
      "GET /x HTTP/1.0\r\nHeader: v\r\n\r\n",
      "PUT /x HTTP/1.0\r\n\r\n",
      "NOT-HTTP\r\n\r\n",
  };
  std::vector<std::string> Before;
  for (const std::string &R : Requests)
    Before.push_back(App.ParseTarget(R));

  Patch P = cantFail(loadVtalPatch(RT.types(), RT.exports(),
                                   vtalParseFixPatchText()),
                     "load");
  cantFail(RT.applyNow(std::move(P)), "apply");

  for (size_t I = 0; I != Requests.size(); ++I)
    EXPECT_EQ(App.ParseTarget(Requests[I]), Before[I])
        << "request: " << Requests[I];
}

} // namespace
