//===- tests/test_flashed_vtal_patch.cpp - Verified patch on FlashEd -*- C++ -//
///
/// The full paper pipeline on the macro application: FlashEd's
/// parse_target stage is replaced by *verified* VTAL code (using the
/// string instructions), the module is machine-checked at the update
/// point, and the server's observable behaviour changes accordingly.

#include "flashed/App.h"
#include "patch/PatchLoader.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

/// P1 expressed as verified VTAL: parse the request line and strip the
/// query string, entirely in checked bytecode.
const char *VtalP1 = R"dsu(
(patch
  (id "P1-parse-query-fix-vtal")
  (description "query-string fix shipped as verified VTAL")
  (provides
    (fn (name "flashed.parse_target")
        (type "fn(string) -> string")
        (vtal-fn "parse_target")))
  (vtal-module
"module parse_mod
func first_line (raw: string) -> string {
  locals (nl: int)
  load raw
  push.s \"\\n\"
  sfind
  store nl
  load nl
  push.i 0
  lt
  brif whole
  load raw
  push.i 0
  load nl
  ssub
  ret
whole:
  load raw
  ret
}
func parse_target (raw: string) -> string {
  locals (line: string, sp1: int, sp2: int, method: string, rest: string, q: int)
  load raw
  call first_line
  store line
  load line
  push.s \" \"
  sfind
  store sp1
  load sp1
  push.i 1
  lt
  brif bad
  load line
  push.i 0
  load sp1
  ssub
  store method
  load method
  push.s \"GET\"
  seq
  load method
  push.s \"HEAD\"
  seq
  or
  not
  brif notallowed
  load line
  load sp1
  push.i 1
  add
  load line
  slen
  ssub
  store rest
  load rest
  push.s \" \"
  sfind
  store sp2
  load sp2
  push.i 0
  lt
  brif notrail
  load rest
  push.i 0
  load sp2
  ssub
  store rest
notrail:
  load rest
  slen
  push.i 0
  eq
  brif bad
  load rest
  push.s \"?\"
  sfind
  store q
  load q
  push.i 0
  lt
  brif noquery
  load rest
  push.i 0
  load q
  ssub
  store rest
noquery:
  load method
  push.s \" \"
  scat
  load rest
  scat
  ret
bad:
  push.s \"!400 malformed request\"
  ret
notallowed:
  push.s \"!405 method not allowed\"
  ret
}"))
)dsu";

TEST(FlashedVtalPatchTest, VerifiedParserDrivesTheServer) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>doc</html>");
  Docs.put("/index.html", "<html>home</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));

  std::string WithQuery = "GET /doc.html?v=2 HTTP/1.0\r\n\r\n";
  EXPECT_NE(App.handle(WithQuery).find("404"), std::string::npos);

  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), VtalP1);
  ASSERT_TRUE(P) << P.takeError().str();
  ASSERT_TRUE(P->VtalMod);
  Error E = RT.applyNow(std::move(*P));
  ASSERT_FALSE(E) << E.str();

  // Verified bytecode now parses every request.
  EXPECT_NE(App.handle(WithQuery).find("200 OK"), std::string::npos);
  EXPECT_NE(App.handle("GET / HTTP/1.0\r\n\r\n").find("<html>home</html>"),
            std::string::npos);
  EXPECT_NE(App.handle("POST / HTTP/1.0\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(App.handle("GARBAGE\r\n\r\n").find("400"), std::string::npos);
  EXPECT_NE(App.handle("HEAD /doc.html HTTP/1.0\r\n\r\n").find("200 OK"),
            std::string::npos);

  const UpdateRecord &Rec = RT.updateLog().at(0);
  EXPECT_TRUE(Rec.Succeeded);
  EXPECT_GT(Rec.InstructionsVerified, 50u);
}

TEST(FlashedVtalPatchTest, AgreesWithNativeParserOnASweep) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));

  // Collect the native v1 answers (modulo the query bug) first.
  std::vector<std::string> Requests = {
      "GET /doc.html HTTP/1.0\r\n\r\n",
      "GET / HTTP/1.0\r\n\r\n",
      "HEAD /a/b/c.txt HTTP/1.0\r\n\r\n",
      "GET /x HTTP/1.0\r\nHeader: v\r\n\r\n",
      "PUT /x HTTP/1.0\r\n\r\n",
      "NOT-HTTP\r\n\r\n",
  };
  std::vector<std::string> Before;
  for (const std::string &R : Requests)
    Before.push_back(App.ParseTarget(R));

  Patch P = cantFail(loadVtalPatch(RT.types(), RT.exports(), VtalP1),
                     "load");
  cantFail(RT.applyNow(std::move(P)), "apply");

  for (size_t I = 0; I != Requests.size(); ++I)
    EXPECT_EQ(App.ParseTarget(Requests[I]), Before[I])
        << "request: " << Requests[I];
}

} // namespace
