//===- tests/test_runtime.cpp - Updateable runtime tests ------*- C++ -*-===//

#include "core/Runtime.h"
#include "patch/PatchBuilder.h"
#include "runtime/UpdateQueue.h"
#include "runtime/Updateable.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace dsu;

namespace {

int64_t addV1(int64_t A, int64_t B) { return A + B; }
int64_t addV2(int64_t A, int64_t B) { return A + B + 1000; }
std::string greetV1(std::string Name) { return "hello " + Name; }

class RuntimeTest : public ::testing::Test {
protected:
  TypeContext Ctx;
  UpdateableRegistry Reg;
};

TEST_F(RuntimeTest, DefineAndCall) {
  Expected<Updateable<int64_t(int64_t, int64_t)>> H =
      defineUpdateable(Reg, Ctx, "add", &addV1);
  ASSERT_TRUE(H) << H.takeError().str();
  EXPECT_TRUE(H->valid());
  EXPECT_EQ((*H)(2, 3), 5);
  EXPECT_EQ(H->version(), 1u);
  EXPECT_EQ(Reg.size(), 1u);
}

TEST_F(RuntimeTest, DuplicateDefineFails) {
  ASSERT_TRUE(defineUpdateable(Reg, Ctx, "add", &addV1));
  Expected<Updateable<int64_t(int64_t, int64_t)>> H =
      defineUpdateable(Reg, Ctx, "add", &addV1);
  EXPECT_FALSE(H);
}

TEST_F(RuntimeTest, DefineRequiresFunctionType) {
  Expected<UpdateableSlot *> S =
      Reg.define("bad", Ctx.intType(), makeRawBinding(&addV1));
  ASSERT_FALSE(S);
  EXPECT_EQ(S.error().code(), ErrorCode::EC_Invalid);
}

TEST_F(RuntimeTest, RebindSwitchesImplementation) {
  auto H = cantFail(defineUpdateable(Reg, Ctx, "add", &addV1));
  const Type *Ty = fnTypeOf<int64_t, int64_t, int64_t>(Ctx);
  ASSERT_FALSE(Reg.rebind("add", Ty, makeRawBinding(&addV2, 0, "patch"),
                          nullptr));
  EXPECT_EQ(H(2, 3), 1005);
  EXPECT_EQ(H.version(), 2u);
  EXPECT_EQ(H.slot()->historySize(), 2u);
}

TEST_F(RuntimeTest, RebindTypeMismatchRejected) {
  auto H = cantFail(defineUpdateable(Reg, Ctx, "add", &addV1));
  const Type *WrongTy = Ctx.fnType({Ctx.stringType()}, Ctx.intType());
  Error E = Reg.rebind("add", WrongTy, makeRawBinding(&addV2), nullptr);
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_TypeMismatch);
  // Old implementation still live.
  EXPECT_EQ(H(2, 3), 5);
  EXPECT_EQ(H.version(), 1u);
}

TEST_F(RuntimeTest, RebindUnknownSlotRejected) {
  const Type *Ty = fnTypeOf<int64_t, int64_t, int64_t>(Ctx);
  Error E = Reg.rebind("ghost", Ty, makeRawBinding(&addV2), nullptr);
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Link);
}

TEST_F(RuntimeTest, RebindCollectsBumps) {
  const Type *OldTy =
      Ctx.fnType({Ctx.namedType("conn", 1)}, Ctx.unitType());
  const Type *NewTy =
      Ctx.fnType({Ctx.namedType("conn", 2)}, Ctx.unitType());
  auto NoopBinding = makeClosureBinding<void, int64_t>([](int64_t) {});
  // Define with an explicit named type in the signature.
  ASSERT_TRUE(Reg.define("onconn", OldTy, NoopBinding));
  std::vector<VersionBump> Bumps;
  ASSERT_FALSE(Reg.rebind(
      "onconn", NewTy, makeClosureBinding<void, int64_t>([](int64_t) {}),
      &Bumps));
  ASSERT_EQ(Bumps.size(), 1u);
  EXPECT_EQ(Bumps[0].From.str(), "%conn@1");
  EXPECT_EQ(Bumps[0].To.str(), "%conn@2");
}

TEST_F(RuntimeTest, ClosureBindings) {
  int Counter = 0;
  Expected<UpdateableSlot *> S = Reg.define(
      "count", fnTypeOf<int64_t>(Ctx),
      makeClosureBinding<int64_t>([&Counter]() -> int64_t {
        return ++Counter;
      }));
  ASSERT_TRUE(S);
  Updateable<int64_t()> H(*S);
  EXPECT_EQ(H(), 1);
  EXPECT_EQ(H(), 2);
}

TEST_F(RuntimeTest, StringSignatures) {
  auto H = cantFail(defineUpdateable(Reg, Ctx, "greet", &greetV1));
  EXPECT_EQ(H("world"), "hello world");
  EXPECT_EQ(H.slot()->type()->str(), "fn(string) -> string");
}

TEST_F(RuntimeTest, BindUpdateableChecksType) {
  ASSERT_TRUE(defineUpdateable(Reg, Ctx, "add", &addV1));
  Expected<Updateable<int64_t(int64_t, int64_t)>> Good =
      bindUpdateable<int64_t(int64_t, int64_t)>(Reg, Ctx, "add");
  ASSERT_TRUE(Good);
  EXPECT_EQ((*Good)(1, 1), 2);

  Expected<Updateable<std::string(std::string)>> Bad =
      bindUpdateable<std::string(std::string)>(Reg, Ctx, "add");
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error().code(), ErrorCode::EC_TypeMismatch);

  EXPECT_FALSE(bindUpdateable<int64_t(int64_t, int64_t)>(Reg, Ctx, "nope"));
}

TEST_F(RuntimeTest, SlotNamesSorted) {
  ASSERT_TRUE(defineUpdateable(Reg, Ctx, "zeta", &addV1));
  ASSERT_TRUE(defineUpdateable(Reg, Ctx, "alpha", &addV2));
  auto Names = Reg.slotNames();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "alpha");
  EXPECT_EQ(Names[1], "zeta");
}

TEST_F(RuntimeTest, ActivationTrackerCountsFrames) {
  EXPECT_EQ(ActivationTracker::currentDepth(), 0u);
  Expected<UpdateableSlot *> S = Reg.define(
      "depth", fnTypeOf<int64_t>(Ctx), makeClosureBinding<int64_t>([]() {
        return static_cast<int64_t>(ActivationTracker::currentDepth());
      }));
  ASSERT_TRUE(S);
  Updateable<int64_t()> H(*S);
  EXPECT_EQ(H(), 1); // measured inside the call
  EXPECT_EQ(H.callUntracked(), 0);
  EXPECT_EQ(ActivationTracker::currentDepth(), 0u);
}

/// Readers race an updater: every observed result must be a valid value
/// of *some* version — never a torn or invalid call.
TEST_F(RuntimeTest, ConcurrentReadersDuringRebind) {
  auto H = cantFail(defineUpdateable(Reg, Ctx, "add", &addV1));
  const Type *Ty = fnTypeOf<int64_t, int64_t, int64_t>(Ctx);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Bad{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 4; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        int64_t R = H(10, 20);
        if (R != 30 && R != 1030)
          Bad.fetch_add(1);
      }
    });

  for (int I = 0; I != 200; ++I) {
    ASSERT_FALSE(Reg.rebind("add", Ty,
                            makeRawBinding(I % 2 ? &addV1 : &addV2), nullptr));
  }
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Bad.load(), 0u);
  EXPECT_EQ(H.slot()->historySize(), 201u);
}

// --- UpdateQueue (transaction FIFO, driven through a Runtime) --------------

namespace {

int64_t qv1(int64_t X) { return X + 1; }
int64_t qv2(int64_t X) { return X + 2; }
int64_t qv3(int64_t X) { return X + 3; }

TEST(UpdateQueueTest, PendingFlagAndFifoDrain) {
  Runtime RT;
  auto H = cantFail(RT.defineUpdateable("q.f", &qv1));
  EXPECT_FALSE(RT.updatePending());
  RT.requestUpdate(cantFail(
      PatchBuilder(RT.types(), "a").provide("q.f", &qv2).build()));
  RT.requestUpdate(cantFail(
      PatchBuilder(RT.types(), "b").provide("q.f", &qv3).build()));
  EXPECT_TRUE(RT.updatePending());
  EXPECT_EQ(RT.queueDepth(), 2u);

  // Both queued transactions are ready (staged synchronously) and
  // introspectable before commit.
  auto Pending = RT.pendingUpdates();
  ASSERT_EQ(Pending.size(), 2u);
  EXPECT_EQ(Pending[0].PatchId, "a");
  EXPECT_EQ(Pending[0].Phase, "ready");
  EXPECT_GT(Pending[0].StageMs, 0.0);
  EXPECT_EQ(Pending[1].PatchId, "b");

  EXPECT_EQ(RT.updatePoint(), 2u);
  EXPECT_FALSE(RT.updatePending());
  EXPECT_EQ(RT.queueDepth(), 0u);
  // FIFO: "a" then "b", so the final behaviour is b's.
  EXPECT_EQ(H(0), 3);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].PatchId, "a");
  EXPECT_EQ(Log[1].PatchId, "b");
}

std::string qWrongSig(std::string S) { return S; }

TEST(UpdateQueueTest, FailuresCollected) {
  Runtime RT;
  auto H = cantFail(RT.defineUpdateable("q.f", &qv1));
  // The type-mismatched patch fails at *stage* time; the failed
  // transaction is collected (not committed) at the update point and its
  // diagnostic lands in the update log.
  RT.requestUpdate(cantFail(
      PatchBuilder(RT.types(), "bad").provide("q.f", &qWrongSig).build()));
  RT.requestUpdate(cantFail(
      PatchBuilder(RT.types(), "good").provide("q.f", &qv2).build()));
  EXPECT_EQ(RT.updatePoint(), 1u);
  EXPECT_EQ(H(0), 2);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].PatchId, "bad");
  EXPECT_EQ(Log[0].Phase, "stage-failed");
  EXPECT_FALSE(Log[0].Succeeded);
  EXPECT_NE(Log[0].FailureReason.find("type"), std::string::npos);
  EXPECT_EQ(Log[1].Phase, "committed");
  EXPECT_TRUE(Log[1].Succeeded);
}

TEST(UpdateQueueTest, DrainOnEmptyIsNoop) {
  Runtime RT;
  EXPECT_EQ(RT.updatePoint(), 0u);
  EXPECT_FALSE(RT.updatePending());
}

} // namespace

} // namespace
