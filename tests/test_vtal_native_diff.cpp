//===- tests/test_vtal_native_diff.cpp - Tier differential corpus -*- C++ -*-===//
///
/// \file
/// The differential harness the native tier's acceptance rests on: a
/// corpus of modules — synthetic torture cases plus the VTAL embedded in
/// every patch artifact the repo actually ships — executed through the
/// interpreter and through the baseline compiler, asserting identical
/// results, identical trap messages, and bit-for-bit identical fuel
/// consumption for every function, every generated argument tuple, and a
/// ladder of fuel limits that forces deoptimization at many different
/// segment boundaries.
///
//===----------------------------------------------------------------------===//

#include "patch/Manifest.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace dsu;
using namespace dsu::vtal;

#ifdef DSU_VTAL_NO_NATIVE

TEST(VtalNativeDiffTest, CompiledOut) {
  GTEST_SKIP() << "native tier compiled out (DSU_VTAL_NATIVE=OFF)";
}

#else // DSU_VTAL_NO_NATIVE

using native::NativeImage;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Deterministic per-kind argument menus.  Chosen to reach the edge
/// cases the encoder must get right: sign handling, INT64 extremes,
/// signed zero, NaN (comparison polarity), subnormals.
const int64_t IntMenu[] = {0, 1, -1, 2, 7, -13, 100, 4096, INT64_MAX,
                           INT64_MIN, INT64_MIN + 1};
const double FloatMenu[] = {0.0,  -0.0, 1.0,  -2.5, 3.1415926,
                            1e300, -1e-300, 1.0 / 0.0, -1.0 / 0.0,
                            0.0 / 0.0};
const bool BoolMenu[] = {false, true};
const char *StrMenu[] = {"", "a", "hello world", "/index.svg"};

/// The \p N-th argument tuple for a parameter-kind list, walking each
/// parameter's menu at a different stride so tuples decorrelate.
std::vector<Value> argTuple(const std::vector<ValKind> &Kinds, size_t N) {
  std::vector<Value> Args;
  Args.reserve(Kinds.size());
  for (size_t P = 0; P != Kinds.size(); ++P) {
    size_t Pick = N * (P + 1) + P;
    switch (Kinds[P]) {
    case ValKind::VK_Int:
      Args.push_back(Value::makeInt(
          IntMenu[Pick % (sizeof(IntMenu) / sizeof(IntMenu[0]))]));
      break;
    case ValKind::VK_Float:
      Args.push_back(Value::makeFloat(
          FloatMenu[Pick % (sizeof(FloatMenu) / sizeof(FloatMenu[0]))]));
      break;
    case ValKind::VK_Bool:
      Args.push_back(Value::makeBool(BoolMenu[Pick % 2]));
      break;
    case ValKind::VK_Str:
      Args.push_back(Value::makeStr(
          StrMenu[Pick % (sizeof(StrMenu) / sizeof(StrMenu[0]))]));
      break;
    default:
      Args.push_back(Value::makeUnit());
      break;
    }
  }
  return Args;
}

bool sameValue(const Value &A, const Value &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ValKind::VK_Int:
    return A.asInt() == B.asInt();
  case ValKind::VK_Float: {
    uint64_t BA, BB;
    double DA = A.asFloat(), DB = B.asFloat();
    std::memcpy(&BA, &DA, 8);
    std::memcpy(&BB, &DB, 8);
    return BA == BB; // bit compare: NaN == NaN, +0 != -0
  }
  case ValKind::VK_Bool:
    return A.asBool() == B.asBool();
  case ValKind::VK_Str:
    return A.asStr() == B.asStr();
  default:
    return true;
  }
}

std::string describe(const Expected<Value> &R) {
  if (!R)
    return "error: " + R.error().str();
  std::ostringstream SS;
  switch (R->kind()) {
  case ValKind::VK_Int:
    SS << "int " << R->asInt();
    break;
  case ValKind::VK_Float:
    SS << "float " << R->asFloat();
    break;
  case ValKind::VK_Bool:
    SS << "bool " << R->asBool();
    break;
  case ValKind::VK_Str:
    SS << "str \"" << R->asStr() << '"';
    break;
  default:
    SS << "unit";
    break;
  }
  return SS.str();
}

/// Runs every function of \p Src against both tiers.  Per function:
/// NumTuples generated argument tuples at the default fuel budget, then
/// the same first tuple at each limit in a fuel ladder (forcing deopt at
/// different points).  Returns how many functions the image compiled, so
/// callers can assert the run exercised native code at all.
size_t diffModule(const std::string &Label, const std::string &Src,
                  size_t NumTuples = 8) {
  Expected<Module> M = assemble(Src);
  EXPECT_TRUE(M) << Label << ": " << M.error().str();
  if (!M)
    return 0;
  Error VE = verifyModule(*M);
  EXPECT_FALSE(VE) << Label << ": " << VE.str();
  if (VE)
    return 0;

  // Two independent interpreters per (function, tuple, limit) would be
  // wasteful; per module is enough because call() resets per-call state.
  auto Bind = [](Interpreter &I) {
    // The shipped artifacts import host functions; bind deterministic
    // implementations so both tiers see the same world.  Unknown imports
    // stay unbound — the unbound-import error path is part of parity.
    (void)I.bindImport("flashed.now_ms",
                       [](const std::vector<Value> &) -> Expected<Value> {
                         return Value::makeInt(1234567);
                       });
    (void)I.bindImport("flashed.log",
                       [](const std::vector<Value> &) -> Expected<Value> {
                         return Value::makeUnit();
                       });
  };

  Interpreter Probe(*M);
  const ResolvedModule &RM = Probe.resolved();

  size_t Compiled = 0;
  const uint64_t FuelLadder[] = {1, 2, 3, 5, 9, 17, 40, 100, 1000};
  for (uint32_t FnIdx = 0; FnIdx != RM.Functions.size(); ++FnIdx) {
    const ResolvedFunction &RF = RM.Functions[FnIdx];
    if (!RF.Src || RF.Code.empty())
      continue; // import
    std::vector<ValKind> ParamKinds(RF.LocalKinds.begin(),
                                    RF.LocalKinds.begin() + RF.NumParams);
    std::string Name = RF.Src->Name;

    for (size_t T = 0; T != NumTuples; ++T) {
      std::vector<Value> Args = argTuple(ParamKinds, T);
      for (uint64_t Limit : FuelLadder) {
        Interpreter Ref(*M, Limit);
        Interpreter Nat(*M, Limit);
        Bind(Ref);
        Bind(Nat);
        Expected<std::shared_ptr<const NativeImage>> Img =
            NativeImage::compile(Nat.resolved());
        EXPECT_TRUE(Img) << Label << ": " << Img.error().str();
        if (!Img)
          return Compiled;
        Nat.setNativeImage(*Img);
        if (T == 0 && Limit == FuelLadder[0])
          Compiled = (*Img)->compiledCount();

        Expected<Value> A = Ref.call(Name, Args);
        uint64_t FuelA = Ref.lastFuelUsed();
        Expected<Value> B = Nat.call(Name, Args);
        uint64_t FuelB = Nat.lastFuelUsed();

        std::ostringstream Where;
        Where << Label << "::" << Name << " tuple " << T << " fuel limit "
              << Limit;
        EXPECT_EQ(static_cast<bool>(A), static_cast<bool>(B))
            << Where.str() << ": " << describe(A) << " vs " << describe(B);
        if (static_cast<bool>(A) != static_cast<bool>(B))
          continue;
        if (A)
          EXPECT_TRUE(sameValue(*A, *B))
              << Where.str() << ": " << describe(A) << " vs " << describe(B);
        else
          EXPECT_EQ(A.error().str(), B.error().str()) << Where.str();
        EXPECT_EQ(FuelA, FuelB) << Where.str() << ": fuel diverged ("
                                << describe(A) << ")";
      }
      // And once at the default (64M) budget, where nothing deopts on
      // fuel and the whole function runs native.
      Interpreter Ref(*M);
      Interpreter Nat(*M);
      Bind(Ref);
      Bind(Nat);
      Expected<std::shared_ptr<const NativeImage>> Img =
          NativeImage::compile(Nat.resolved());
      EXPECT_TRUE(Img) << Label << ": " << Img.error().str();
      if (!Img)
        return Compiled;
      Nat.setNativeImage(*Img);
      Expected<Value> A = Ref.call(Name, Args);
      uint64_t FuelA = Ref.lastFuelUsed();
      Expected<Value> B = Nat.call(Name, Args);
      uint64_t FuelB = Nat.lastFuelUsed();
      EXPECT_EQ(static_cast<bool>(A), static_cast<bool>(B))
          << Label << "::" << Name << " tuple " << T << ": " << describe(A)
          << " vs " << describe(B);
      if (static_cast<bool>(A) != static_cast<bool>(B))
        continue;
      if (A)
        EXPECT_TRUE(sameValue(*A, *B)) << Label << "::" << Name << " tuple "
                                       << T << ": " << describe(A) << " vs "
                                       << describe(B);
      else
        EXPECT_EQ(A.error().str(), B.error().str())
            << Label << "::" << Name << " tuple " << T;
      EXPECT_EQ(FuelA, FuelB)
          << Label << "::" << Name << " tuple " << T << ": fuel diverged";
    }
  }
  return Compiled;
}

} // namespace

//===----------------------------------------------------------------------===//
// Synthetic torture corpus
//===----------------------------------------------------------------------===//

TEST(VtalNativeDiffTest, IntArithmeticTorture) {
  size_t N = diffModule("int_arith", R"(
module int_arith
func mix (a: int, b: int) -> int {
  load a
  load b
  add
  load a
  load b
  sub
  mul
  load a
  neg
  add
  ret
}
func divrem (a: int, b: int) -> int {
  load a
  load b
  div
  load a
  load b
  rem
  add
  ret
}
func cmp_chain (a: int, b: int) -> bool {
  load a
  load b
  lt
  load a
  load b
  ge
  or
  load a
  load b
  eq
  load a
  load b
  ne
  and
  not
  and
  ret
}
func logic (p: bool, q: bool) -> bool {
  load p
  load q
  and
  load p
  load q
  or
  not
  or
  ret
}
)");
  EXPECT_GE(N, 4u) << "torture module should compile fully";
}

TEST(VtalNativeDiffTest, FloatTorture) {
  size_t N = diffModule("float_arith", R"(
module float_arith
func fmix (x: float, y: float) -> float {
  load x
  load y
  fadd
  load x
  load y
  fsub
  fmul
  load x
  fneg
  fadd
  load x
  load y
  fdiv
  fadd
  ret
}
func fcmps (x: float, y: float) -> bool {
  load x
  load y
  flt
  load x
  load y
  fge
  or
  load x
  load y
  feq
  load x
  load y
  fne
  or
  and
  ret
}
func convert (n: int, x: float) -> float {
  load n
  i2f
  load x
  fadd
  ret
}
func roundtrip (x: float) -> int {
  load x
  f2i
  ret
}
)");
  EXPECT_GE(N, 4u);
}

TEST(VtalNativeDiffTest, BranchAndLoopTorture) {
  size_t N = diffModule("branches", R"(
module branches
func collatz_steps (n: int) -> int {
  locals (steps: int, v: int)
  load n
  store v
  push.i 0
  store steps
loop:
  load v
  push.i 2
  lt
  brif done
  load steps
  push.i 200
  gt
  brif done
  load v
  push.i 2
  rem
  push.i 0
  eq
  brif even
  load v
  push.i 3
  mul
  push.i 1
  add
  store v
  br next
even:
  load v
  push.i 2
  div
  store v
next:
  load steps
  push.i 1
  add
  store steps
  br loop
done:
  load steps
  ret
}
func gauss (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  add
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)", /*NumTuples=*/6);
  EXPECT_GE(N, 2u);
}

TEST(VtalNativeDiffTest, CallGraphTorture) {
  size_t N = diffModule("calls", R"(
module calls
func ack_like (m: int, n: int) -> int {
  load m
  push.i 0
  le
  brif base
  load n
  push.i 0
  le
  brif zero
  load m
  push.i 1
  sub
  load m
  load n
  push.i 1
  sub
  call ack_like
  call ack_like
  ret
zero:
  load m
  push.i 1
  sub
  push.i 1
  call ack_like
  ret
base:
  load n
  push.i 1
  add
  ret
}
func even (n: int) -> bool {
  load n
  push.i 0
  le
  brif yes
  load n
  push.i 1
  sub
  call odd
  ret
yes:
  push.b true
  ret
}
func odd (n: int) -> bool {
  load n
  push.i 0
  le
  brif no
  load n
  push.i 1
  sub
  call even
  ret
no:
  push.b false
  ret
}
)", /*NumTuples=*/5);
  EXPECT_GE(N, 3u);
}

TEST(VtalNativeDiffTest, StringDeoptTorture) {
  // String-typed functions stay interpreted; string-free functions with
  // string *operations* compile and deopt at the PushS site.  Both call
  // directions cross the tier boundary.
  diffModule("strings", R"(
module strings
func classify (n: int) -> string {
  load n
  push.i 0
  lt
  brif neg
  push.s "non-negative"
  ret
neg:
  push.s "negative"
  ret
}
func tagged_len (n: int) -> int {
  push.s "prefix-"
  push.s "suffix"
  scat
  slen
  load n
  add
  ret
}
func find_in (hay: string, n: int) -> int {
  load hay
  push.s "e"
  sfind
  load n
  add
  ret
}
func mixed (n: int) -> int {
  load n
  call tagged_len
  push.i 2
  mul
  ret
}
)", /*NumTuples=*/6);
}

TEST(VtalNativeDiffTest, DupPopStackShuffles) {
  size_t N = diffModule("stack_ops", R"(
module stack_ops
func shuffle (a: int, b: int) -> int {
  load a
  dup
  mul
  load b
  dup
  mul
  add
  load a
  pop
  ret
}
func discard (x: float, n: int) -> int {
  load x
  pop
  load n
  dup
  add
  ret
}
)");
  EXPECT_GE(N, 2u);
}

//===----------------------------------------------------------------------===//
// Shipped artifacts: every .dsup the repo carries goes through both tiers
//===----------------------------------------------------------------------===//

TEST(VtalNativeDiffTest, ShippedParseFixPatch) {
  std::string Text =
      readFile(std::string(DSU_SOURCE_DIR) + "/patches/p1_parsefix.dsup");
  Expected<PatchManifest> Man = PatchManifest::parse(Text);
  ASSERT_TRUE(Man) << Man.error().str();
  ASSERT_FALSE(Man->VtalText.empty());
  diffModule("p1_parsefix", Man->VtalText, /*NumTuples=*/6);
}

TEST(VtalNativeDiffTest, ShippedMimeSvgPatch) {
  std::string Text =
      readFile(std::string(DSU_SOURCE_DIR) + "/examples/mime_svg.dsup");
  Expected<PatchManifest> Man = PatchManifest::parse(Text);
  ASSERT_TRUE(Man) << Man.error().str();
  ASSERT_FALSE(Man->VtalText.empty());
  diffModule("mime_svg", Man->VtalText, /*NumTuples=*/6);
}

#endif // DSU_VTAL_NO_NATIVE
