//===- tests/test_abi_bridge.cpp - Marshalling bridge tests ---*- C++ -*-===//
///
/// The bridge between patch-code backends and the uniform Binding ABI:
/// the runtime trampoline table, value marshalling, and trap containment.

#include "patch/AbiBridge.h"
#include "runtime/Updateable.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;
using vtal::Value;

namespace {

class AbiBridgeTest : public ::testing::Test {
protected:
  const Type *ty(const char *Text) {
    return cantFail(parseType(Ctx, Text), Text);
  }
  TypeContext Ctx;
  UpdateableRegistry Reg;
};

TEST_F(AbiBridgeTest, BridgeableTable) {
  // Everything scalar up to arity 2, plus the curated arity-3 set.
  EXPECT_TRUE(isBridgeableFnType(ty("fn() -> unit")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn() -> int")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn(string) -> string")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn(int, float) -> bool")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn(bool, string) -> float")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn(string, string, int) -> string")));
  EXPECT_TRUE(isBridgeableFnType(ty("fn(int, int, int) -> int")));

  // Outside the table.
  EXPECT_FALSE(isBridgeableFnType(ty("fn(%rec@1) -> int")));
  EXPECT_FALSE(isBridgeableFnType(ty("fn(int, int, int, int) -> int")));
  EXPECT_FALSE(isBridgeableFnType(ty("fn(array<int>) -> int")));
  EXPECT_FALSE(isBridgeableFnType(ty("int")));
  EXPECT_FALSE(isBridgeableFnType(nullptr));
}

TEST_F(AbiBridgeTest, ValueBindingMarshalsEachKind) {
  // fn(int, string) -> string through the Value-level implementation.
  const Type *FnTy = ty("fn(int, string) -> string");
  Binding B = cantFail(makeValueBinding(
      Ctx, FnTy,
      [](const std::vector<Value> &Args) -> Expected<Value> {
        return Value::makeStr(Args[1].asStr() + ":" +
                              std::to_string(Args[0].asInt()));
      },
      1, "test"));
  UpdateableSlot *Slot = cantFail(Reg.define("f", FnTy, std::move(B)));
  Updateable<std::string(int64_t, std::string)> H(Slot);
  EXPECT_EQ(H(42, "answer"), "answer:42");
}

TEST_F(AbiBridgeTest, ValueBindingFloatAndBool) {
  const Type *FnTy = ty("fn(float, bool) -> float");
  Binding B = cantFail(makeValueBinding(
      Ctx, FnTy,
      [](const std::vector<Value> &Args) -> Expected<Value> {
        return Value::makeFloat(Args[1].asBool() ? Args[0].asFloat() * 2
                                                 : 0.0);
      },
      1, "test"));
  UpdateableSlot *Slot = cantFail(Reg.define("g", FnTy, std::move(B)));
  Updateable<double(double, bool)> H(Slot);
  EXPECT_DOUBLE_EQ(H(1.25, true), 2.5);
  EXPECT_DOUBLE_EQ(H(1.25, false), 0.0);
}

TEST_F(AbiBridgeTest, UnitResultBinding) {
  const Type *FnTy = ty("fn(string) -> unit");
  int Calls = 0;
  Binding B = cantFail(makeValueBinding(
      Ctx, FnTy,
      [&Calls](const std::vector<Value> &) -> Expected<Value> {
        ++Calls;
        return Value::makeUnit();
      },
      1, "test"));
  UpdateableSlot *Slot = cantFail(Reg.define("h", FnTy, std::move(B)));
  Updateable<void(std::string)> H(Slot);
  H("x");
  H("y");
  EXPECT_EQ(Calls, 2);
}

TEST_F(AbiBridgeTest, TrapContained) {
  // A trapping implementation yields the result type's zero value and
  // must not crash or corrupt the caller.
  const Type *FnTy = ty("fn(int) -> int");
  Binding B = cantFail(makeValueBinding(
      Ctx, FnTy,
      [](const std::vector<Value> &) -> Expected<Value> {
        return Error::make(ErrorCode::EC_Invalid, "division by zero");
      },
      1, "test"));
  UpdateableSlot *Slot = cantFail(Reg.define("t", FnTy, std::move(B)));
  Updateable<int64_t(int64_t)> H(Slot);
  EXPECT_EQ(H(5), 0);
}

TEST_F(AbiBridgeTest, UnsupportedSignatureFailsCleanly) {
  Expected<Binding> B = makeValueBinding(
      Ctx, ty("fn(int, int, int, int) -> int"),
      [](const std::vector<Value> &) -> Expected<Value> {
        return Value::makeInt(0);
      },
      1, "test");
  ASSERT_FALSE(B);
  EXPECT_EQ(B.error().code(), ErrorCode::EC_Unsupported);
}

TEST_F(AbiBridgeTest, UniformBindingValidation) {
  EXPECT_FALSE(makeUniformBinding(ty("int"), reinterpret_cast<void *>(1),
                                  1, "x"));
  EXPECT_FALSE(makeUniformBinding(ty("fn() -> unit"), nullptr, 1, "x"));
  Expected<Binding> B = makeUniformBinding(
      ty("fn() -> unit"), reinterpret_cast<void *>(1), 3, "origin");
  ASSERT_TRUE(B);
  EXPECT_EQ(B->Version, 3u);
  EXPECT_EQ(B->Origin, "origin");
  EXPECT_EQ(B->Ctx, B->Invoker);
}

} // namespace
