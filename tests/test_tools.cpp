//===- tests/test_tools.cpp - CLI tool integration tests ------*- C++ -*-===//
///
/// Drives the installed command-line tools (dsu-vtal, dsu-patchgen) as
/// subprocesses, checking exit codes and artifacts — the offline half of
/// the update workflow.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "flashed/Server.h"
#include "net/ReactorPool.h"
#include "patch/Manifest.h"
#include "runtime/UpdateController.h"
#include "support/MemoryBuffer.h"
#include "vtal/Bytecode.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace dsu;

namespace {

std::string toolPath(const char *Name) {
  return std::string(DSU_BIN_DIR) + "/tools/" + Name;
}

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "dsu_tools_" + Name;
}

/// Runs a command, returns its exit status; stdout/stderr are captured
/// into \p OutFile when given.
int run(const std::string &Cmd, const std::string &OutFile = "") {
  std::string Full = Cmd;
  if (!OutFile.empty())
    Full += " > " + OutFile + " 2>&1";
  int Status = std::system(Full.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

const char *GoodVtal = R"(
module cli
func triple (x: int) -> int {
  load x
  push.i 3
  mul
  ret
}
)";

const char *BadVtal = R"(
module cli
func broken (x: int) -> int {
  push.s "not an int"
  ret
}
)";

class ToolsTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!fileExists(toolPath("dsu-vtal")))
      GTEST_SKIP() << "tools not built";
  }
};

TEST_F(ToolsTest, VtalVerifyAcceptsGoodCode) {
  std::string Src = tmpPath("good.vtal");
  ASSERT_FALSE(writeFile(Src, GoodVtal));
  EXPECT_EQ(run(toolPath("dsu-vtal") + " verify " + Src, tmpPath("v.out")),
            0);
  std::remove(Src.c_str());
}

TEST_F(ToolsTest, VtalVerifyRejectsBadCode) {
  std::string Src = tmpPath("bad.vtal");
  ASSERT_FALSE(writeFile(Src, BadVtal));
  std::string Out = tmpPath("bad.out");
  EXPECT_EQ(run(toolPath("dsu-vtal") + " verify " + Src, Out), 1);
  Expected<std::string> Text = readFile(Out);
  ASSERT_TRUE(Text);
  EXPECT_NE(Text->find("REJECTED"), std::string::npos);
  std::remove(Src.c_str());
}

TEST_F(ToolsTest, VtalEncodeDumpRoundTrip) {
  std::string Src = tmpPath("enc.vtal");
  std::string Bin = tmpPath("enc.vtalbc");
  ASSERT_FALSE(writeFile(Src, GoodVtal));
  ASSERT_EQ(run(toolPath("dsu-vtal") + " encode " + Src + " " + Bin), 0);

  // The emitted bytecode decodes with the library.
  Expected<std::string> Bytes = readFile(Bin);
  ASSERT_TRUE(Bytes);
  Expected<vtal::Module> M = vtal::decodeModule(*Bytes);
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Name, "cli");

  std::string Out = tmpPath("dump.out");
  ASSERT_EQ(run(toolPath("dsu-vtal") + " dump " + Bin, Out), 0);
  Expected<std::string> Dump = readFile(Out);
  ASSERT_TRUE(Dump);
  EXPECT_NE(Dump->find("func triple"), std::string::npos);
  std::remove(Src.c_str());
  std::remove(Bin.c_str());
}

TEST_F(ToolsTest, VtalRunExecutes) {
  std::string Src = tmpPath("run.vtal");
  ASSERT_FALSE(writeFile(Src, GoodVtal));
  std::string Out = tmpPath("run.out");
  ASSERT_EQ(run(toolPath("dsu-vtal") + " run " + Src + " triple 14", Out),
            0);
  Expected<std::string> Text = readFile(Out);
  ASSERT_TRUE(Text);
  EXPECT_NE(Text->find("int(42)"), std::string::npos);
  std::remove(Src.c_str());
}

TEST_F(ToolsTest, VtalUsageOnBadInvocation) {
  EXPECT_EQ(run(toolPath("dsu-vtal") + " bogus x", tmpPath("u.out")), 2);
  EXPECT_EQ(run(toolPath("dsu-vtal"), tmpPath("u2.out")), 2);
}

TEST_F(ToolsTest, PatchgenEmitsArtifacts) {
  std::string OldVm = tmpPath("old.vm");
  std::string NewVm = tmpPath("new.vm");
  ASSERT_FALSE(writeFile(OldVm, R"(
(version-manifest (program "app") (version 1)
  (functions (fn (name "f") (type "fn(int) -> int") (body-hash "a")))
  (types (type (name "%t@1") (repr "{x: int}"))))
)"));
  ASSERT_FALSE(writeFile(NewVm, R"(
(version-manifest (program "app") (version 2)
  (functions (fn (name "f") (type "fn(int) -> int") (body-hash "b")))
  (types (type (name "%t@2") (repr "{x: int, y: int}"))))
)"));

  std::string Prefix = tmpPath("genout");
  ASSERT_EQ(run(toolPath("dsu-patchgen") + " " + OldVm + " " + NewVm +
                    " " + Prefix,
                tmpPath("gen.log")),
            0);

  Expected<std::string> ManifestText = readFile(Prefix + ".dsup-manifest");
  ASSERT_TRUE(ManifestText);
  Expected<PatchManifest> M = PatchManifest::parse(*ManifestText);
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Provides.size(), 1u);
  EXPECT_EQ(M->Transformers.size(), 1u);

  Expected<std::string> Stub = readFile(Prefix + ".cpp");
  ASSERT_TRUE(Stub);
  EXPECT_NE(Stub->find("dsu_patch_manifest"), std::string::npos);

  for (const char *Suffix : {".dsup-manifest", ".cpp"})
    std::remove((Prefix + Suffix).c_str());
  std::remove(OldVm.c_str());
  std::remove(NewVm.c_str());
}

TEST_F(ToolsTest, PatchgenRejectsMissingInput) {
  EXPECT_NE(run(toolPath("dsu-patchgen") + " /no/such.vm /no/such2.vm",
                tmpPath("miss.out")),
            0);
}

TEST_F(ToolsTest, UpdatectlDrivesALiveServer) {
  if (!fileExists(toolPath("dsu-updatectl")))
    GTEST_SKIP() << "dsu-updatectl not built";

  // A real FlashEd with the admin plane enabled; the CLI ships the VTAL
  // query-fix artifact into it over HTTP — the build -> ship -> hot-load
  // loop, end to end.
  Runtime RT;
  flashed::FlashedApp App(RT);
  App.enableAdmin(RT.controller());
  flashed::DocStore Docs;
  Docs.put("/doc.html", "<html>doc</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));
  flashed::Server Srv(
      [&App](const flashed::RequestHead &Head, std::string_view Raw,
             std::string &Out, flashed::SharedBody &Body) {
        App.handleInto(Head, Raw, Out, Body);
      });
  Srv.setIdleHook([&RT] { RT.updatePoint(); });
  ASSERT_FALSE(Srv.listenOn(0));
  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    Error E = Srv.runUntil([&] { return Stop.load(); }, 5);
    EXPECT_FALSE(E) << E.str();
  });
  std::string Port = std::to_string(Srv.port());

  // v1 bug visible over the wire.
  EXPECT_EQ(flashed::httpGet(Srv.port(), "/doc.html?x=1")->Status, 404);

  std::string Artifact = tmpPath("p1.dsup");
  ASSERT_FALSE(writeFile(Artifact, flashed::vtalParseFixPatchText()));
  std::string Out = tmpPath("updatectl.out");
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " stage " + Port + " " +
                    Artifact,
                Out),
            0);
  Expected<std::string> Accepted = readFile(Out);
  ASSERT_TRUE(Accepted);
  EXPECT_NE(Accepted->find("\"tx\""), std::string::npos);

  for (int Spin = 0; Spin != 500 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);
  EXPECT_EQ(flashed::httpGet(Srv.port(), "/doc.html?x=1")->Status, 200);

  // The log and status subcommands read back the transaction.
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " log " + Port, Out), 0);
  Expected<std::string> Log = readFile(Out);
  ASSERT_TRUE(Log);
  EXPECT_NE(Log->find("committed"), std::string::npos);
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " status " + Port, Out), 0);
  // The single-worker facade has no pool: `status --workers` must say so.
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " status " + Port +
                    " --workers",
                Out),
            1);
  // The metrics subcommand works against any admin-enabled server.
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " metrics " + Port, Out), 0);
  Expected<std::string> Metrics = readFile(Out);
  ASSERT_TRUE(Metrics);
  EXPECT_NE(Metrics->find("dsu_updates_applied_total"), std::string::npos);
  EXPECT_NE(Metrics->find("dsu_stage_to_commit_us_count"),
            std::string::npos);

  // Rollback over the wire restores the v1 behaviour; a second rollback
  // of the initial version maps to a non-2xx exit.
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " rollback " + Port +
                    " flashed.parse_target",
                Out),
            0);
  EXPECT_EQ(flashed::httpGet(Srv.port(), "/doc.html?x=1")->Status, 404);
  EXPECT_NE(run(toolPath("dsu-updatectl") + " rollback " + Port + " ghost",
                Out),
            0);

  std::remove(Artifact.c_str());
  Stop.store(true);
  Loop.join();
}

TEST_F(ToolsTest, UpdatectlSurfacesPerWorkerStateAndMetrics) {
  if (!fileExists(toolPath("dsu-updatectl")))
    GTEST_SKIP() << "dsu-updatectl not built";

  // A FlashedApp on a real reactor pool: `status --workers` must render
  // the per-worker state array and `metrics` the text exposition.
  Runtime RT;
  flashed::FlashedApp App(RT);
  App.enableAdmin(RT.controller());
  flashed::DocStore Docs;
  Docs.put("/doc.html", "<html>doc</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));
  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&App](const flashed::RequestHead &Head, std::string_view Raw,
             std::string &Out, flashed::SharedBody &Body) {
        App.handleInto(Head, Raw, Out, Body);
      },
      O);
  Pool.setUpdateRuntime(RT);
  App.attachPool(Pool);
  ASSERT_FALSE(Pool.start());
  std::string Port = std::to_string(Pool.port());

  std::string Out = tmpPath("updatectl_pool.out");
  EXPECT_EQ(run(toolPath("dsu-updatectl") + " status " + Port +
                    " --workers",
                Out),
            0);
  Expected<std::string> Status = readFile(Out);
  ASSERT_TRUE(Status);
  EXPECT_NE(Status->find("\"worker_state\""), std::string::npos);
  EXPECT_NE(Status->find("\"epoch\""), std::string::npos);

  EXPECT_EQ(run(toolPath("dsu-updatectl") + " metrics " + Port, Out), 0);
  Expected<std::string> Metrics = readFile(Out);
  ASSERT_TRUE(Metrics);
  EXPECT_NE(Metrics->find("dsu_worker_requests_total"), std::string::npos);
  EXPECT_NE(Metrics->find("dsu_update_pause_us_bucket"),
            std::string::npos);
  EXPECT_NE(Metrics->find("dsu_worker_epoch_lag"), std::string::npos);

  Pool.stop();
}

} // namespace
