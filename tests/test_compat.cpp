//===- tests/test_compat.cpp - Replacement compatibility tests -*- C++ -*-===//
///
/// Exercises the type-safety judgement at the heart of the PLDI 2001
/// system: when may a binding be replaced, and which state-transformer
/// obligations does the replacement incur.

#include "types/Compat.h"
#include "types/Substitute.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

class CompatTest : public ::testing::Test {
protected:
  const Type *ty(const char *Text) {
    Expected<const Type *> T = parseType(Ctx, Text);
    EXPECT_TRUE(T) << T.error().str();
    return *T;
  }
  TypeContext Ctx;
};

TEST_F(CompatTest, IdenticalTypesAreIdentical) {
  ReplaceCheck C = checkReplacement(ty("fn(int) -> int"),
                                    ty("fn(int) -> int"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Identical);
  EXPECT_TRUE(C.Bumps.empty());
  EXPECT_TRUE(C.ok());
}

TEST_F(CompatTest, ShapeMismatchRejected) {
  ReplaceCheck C = checkReplacement(ty("fn(int) -> int"),
                                    ty("fn(string) -> int"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
  EXPECT_FALSE(C.ok());
  EXPECT_FALSE(C.Reason.empty());
}

TEST_F(CompatTest, ArityChangeRejected) {
  ReplaceCheck C = checkReplacement(ty("fn(int) -> int"),
                                    ty("fn(int, int) -> int"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
}

TEST_F(CompatTest, VersionBumpDetected) {
  ReplaceCheck C = checkReplacement(ty("fn(%conn@1) -> int"),
                                    ty("fn(%conn@2) -> int"));
  ASSERT_EQ(C.Verdict, ReplaceVerdict::RV_VersionBumped);
  ASSERT_EQ(C.Bumps.size(), 1u);
  EXPECT_EQ(C.Bumps[0].From.str(), "%conn@1");
  EXPECT_EQ(C.Bumps[0].To.str(), "%conn@2");
}

TEST_F(CompatTest, VersionDowngradeRejected) {
  ReplaceCheck C = checkReplacement(ty("fn(%conn@2) -> int"),
                                    ty("fn(%conn@1) -> int"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
}

TEST_F(CompatTest, DifferentNamesRejected) {
  ReplaceCheck C = checkReplacement(ty("fn(%conn@1) -> int"),
                                    ty("fn(%sock@1) -> int"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
}

TEST_F(CompatTest, NestedBumpsCollected) {
  ReplaceCheck C = checkReplacement(
      ty("fn(array<%rec@1>, {c: %conn@3}) -> ptr<%rec@1>"),
      ty("fn(array<%rec@2>, {c: %conn@4}) -> ptr<%rec@2>"));
  ASSERT_EQ(C.Verdict, ReplaceVerdict::RV_VersionBumped);
  // %rec@1->@2 appears twice but is deduplicated; %conn@3->@4 once.
  EXPECT_EQ(C.Bumps.size(), 2u);
}

TEST_F(CompatTest, MultiVersionJumpIsOneBump) {
  ReplaceCheck C = checkReplacement(ty("fn(%rec@1) -> unit"),
                                    ty("fn(%rec@4) -> unit"));
  ASSERT_EQ(C.Verdict, ReplaceVerdict::RV_VersionBumped);
  ASSERT_EQ(C.Bumps.size(), 1u);
  EXPECT_EQ(C.Bumps[0].From.Version, 1u);
  EXPECT_EQ(C.Bumps[0].To.Version, 4u);
}

TEST_F(CompatTest, StructFieldNameChangeRejected) {
  ReplaceCheck C = checkReplacement(ty("fn({x: int}) -> unit"),
                                    ty("fn({y: int}) -> unit"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
}

TEST_F(CompatTest, StructFieldCountChangeRejected) {
  // Adding a struct field in-place is NOT a compatible replacement; the
  // paper requires a named-type version bump for representation changes.
  ReplaceCheck C = checkReplacement(ty("fn({x: int}) -> unit"),
                                    ty("fn({x: int, y: int}) -> unit"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_Incompatible);
}

TEST_F(CompatTest, ResultPositionBump) {
  ReplaceCheck C = checkReplacement(ty("fn() -> %rec@1"),
                                    ty("fn() -> %rec@2"));
  EXPECT_EQ(C.Verdict, ReplaceVerdict::RV_VersionBumped);
}

// Property sweep: for any type T, replacing T by itself is RV_Identical,
// and substituting a version bump yields RV_VersionBumped (when T
// mentions the name) with exactly the expected obligation.
class CompatProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(CompatProperty, ReflexivityAndSubstitution) {
  TypeContext Ctx;
  Expected<const Type *> T = parseType(Ctx, GetParam());
  ASSERT_TRUE(T) << T.error().str();

  ReplaceCheck Self = checkReplacement(*T, *T);
  EXPECT_EQ(Self.Verdict, ReplaceVerdict::RV_Identical);

  VersionBump Bump{VersionedName{"rec", 1}, VersionedName{"rec", 2}};
  const Type *Sub = substituteNamedVersion(Ctx, *T, Bump);
  if (typeMentions(*T, Bump.From)) {
    EXPECT_NE(Sub, *T);
    EXPECT_FALSE(typeMentions(Sub, Bump.From));
    EXPECT_TRUE(typeMentions(Sub, Bump.To));
    ReplaceCheck C = checkReplacement(*T, Sub);
    ASSERT_EQ(C.Verdict, ReplaceVerdict::RV_VersionBumped);
    ASSERT_EQ(C.Bumps.size(), 1u);
    EXPECT_TRUE(C.Bumps[0] == Bump);
    // The reverse direction is a downgrade and must be rejected.
    EXPECT_EQ(checkReplacement(Sub, *T).Verdict,
              ReplaceVerdict::RV_Incompatible);
  } else {
    EXPECT_EQ(Sub, *T);
    EXPECT_EQ(checkReplacement(*T, Sub).Verdict,
              ReplaceVerdict::RV_Identical);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompatProperty,
    ::testing::Values("int", "fn(int) -> int", "%rec@1", "%other@1",
                      "array<%rec@1>", "ptr<array<%rec@1>>",
                      "{a: %rec@1, b: int}", "fn(%rec@1) -> %rec@1",
                      "fn(fn(%rec@1) -> int) -> unit",
                      "{nested: {deep: array<%rec@1>}}",
                      "fn(string, bool) -> unit", "%rec@2"));

// --- Substitution unit tests ------------------------------------------

TEST_F(CompatTest, SubstituteIsIdentityWithoutMention) {
  VersionBump Bump{VersionedName{"rec", 1}, VersionedName{"rec", 2}};
  const Type *T = ty("fn(int, string) -> {x: float}");
  EXPECT_EQ(substituteNamedVersion(Ctx, T, Bump), T);
}

TEST_F(CompatTest, SubstituteOnlyMatchingVersion) {
  VersionBump Bump{VersionedName{"rec", 1}, VersionedName{"rec", 2}};
  const Type *T = ty("{a: %rec@1, b: %rec@3}");
  const Type *S = substituteNamedVersion(Ctx, T, Bump);
  EXPECT_EQ(S->str(), "{a: %rec@2, b: %rec@3}");
}

TEST_F(CompatTest, TypesEqualAcrossContexts) {
  TypeContext Other;
  EXPECT_TRUE(typesEqual(ty("fn(int) -> int"),
                         *parseType(Other, "fn(int) -> int")));
  EXPECT_FALSE(typesEqual(ty("int"), *parseType(Other, "float")));
}

} // namespace
