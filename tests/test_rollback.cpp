//===- tests/test_rollback.cpp - Rollback tests ---------------*- C++ -*-===//
///
/// Rolling an updateable back to its previous implementation — the
/// PLDI 2001 future-work item implemented as append-only history.

#include "core/Runtime.h"
#include "patch/PatchBuilder.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

int64_t v1(int64_t X) { return X + 1; }
int64_t v2(int64_t X) { return X + 2; }
int64_t v3(int64_t X) { return X + 3; }

class RollbackTest : public ::testing::Test {
protected:
  void apply(const char *Id, int64_t (*Fn)(int64_t)) {
    Patch P = cantFail(
        PatchBuilder(RT.types(), Id).provide("app.f", Fn).build());
    cantFail(RT.applyNow(std::move(P)), Id);
  }
  Runtime RT;
};

TEST_F(RollbackTest, RevertsToPreviousImplementation) {
  auto H = cantFail(RT.defineUpdateable("app.f", &v1));
  apply("p2", &v2);
  apply("p3", &v3);
  EXPECT_EQ(H(0), 3);
  EXPECT_EQ(H.version(), 3u);

  ASSERT_FALSE(RT.rollbackUpdateable("app.f"));
  EXPECT_EQ(H(0), 2);             // v2 behaviour again
  EXPECT_EQ(H.version(), 4u);     // but as a NEW version
  EXPECT_EQ(H.slot()->historySize(), 4u);
}

TEST_F(RollbackTest, RollbackOfRollbackGoesForwardAgain) {
  auto H = cantFail(RT.defineUpdateable("app.f", &v1));
  apply("p2", &v2);
  ASSERT_FALSE(RT.rollbackUpdateable("app.f")); // back to v1 behaviour
  EXPECT_EQ(H(0), 1);
  ASSERT_FALSE(RT.rollbackUpdateable("app.f")); // undo the rollback
  EXPECT_EQ(H(0), 2);
  EXPECT_EQ(H.version(), 4u);
}

TEST_F(RollbackTest, InitialVersionCannotRollBack) {
  cantFail(RT.defineUpdateable("app.f", &v1));
  Error E = RT.rollbackUpdateable("app.f");
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Invalid);
}

TEST_F(RollbackTest, UnknownSlotFails) {
  Error E = RT.rollbackUpdateable("ghost");
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Link);
}

TEST_F(RollbackTest, RollbackRestoresRecordedType) {
  TypeContext &Ctx = RT.types();
  const Type *OldTy = Ctx.fnType({Ctx.namedType("rec", 1)}, Ctx.unitType());
  const Type *NewTy = Ctx.fnType({Ctx.namedType("rec", 2)}, Ctx.unitType());
  UpdateableSlot *Slot = cantFail(RT.updateables().define(
      "app.g", OldTy, makeClosureBinding<void, int64_t>([](int64_t) {})));
  cantFail(RT.updateables().rebind(
      "app.g", NewTy, makeClosureBinding<void, int64_t>([](int64_t) {}),
      nullptr));
  EXPECT_EQ(Slot->type(), NewTy);
  ASSERT_FALSE(RT.updateables().rollback("app.g"));
  EXPECT_EQ(Slot->type(), OldTy);
}

TEST_F(RollbackTest, RefusedInsideUpdateableCode) {
  Runtime *RTP = &RT;
  auto H = cantFail(RT.defineUpdateableFn<int64_t>(
      "app.inner", [RTP]() -> int64_t {
        // Thread-discipline violations answer EC_Busy — a *retryable*
        // category, distinct from EC_Invalid — naming what was violated.
        Error E = RTP->rollbackUpdateable("app.inner");
        if (E.code() != ErrorCode::EC_Busy)
          return 0;
        if (E.message().find("single-updater discipline") ==
            std::string::npos)
          return 0;
        return 1;
      }));
  (void)H;
  auto Probe = cantFail(bindUpdateable<int64_t()>(RT.updateables(),
                                                  RT.types(), "app.inner"));
  EXPECT_EQ(Probe(), 1); // rollback refused re-entrantly
}

} // namespace
