//===- tests/test_rollout.cpp - Canary rollout control plane --------------===//
///
/// The metric-gated rollout state machine end to end, driven by the
/// fault-injection harness: a benign patch canaries on one worker and
/// promotes to the fleet; an injected-500 patch trips the error gate and
/// auto-rolls-back with the control group never serving the bad binding;
/// a trapping patch trips the trap gate (its faults surface as 404s, so
/// the error gate alone would miss it); a fuel bomb wedges the canary
/// and is caught; the staging watchdog aborts a stalled patch so it
/// cannot head-of-line-block the FIFO queue; graced redirection chains
/// drain from reactor idle without another commit; and the hardened
/// client/ctl retry a busy control plane with Retry-After-aware backoff.
///
/// Run alone with `ctest -L rollout`.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/DocStore.h"
#include "flashed/Http.h"
#include "net/ReactorPool.h"
#include "persist/Journal.h"
#include "runtime/RolloutController.h"
#include "runtime/UpdateController.h"
#include "support/FaultInject.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

constexpr unsigned kWorkers = 4;

size_t countOccurrencesOf(const std::string &Hay,
                          const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

#define WAIT_FOR(Pred)                                                     \
  do {                                                                     \
    int Spin_ = 0;                                                         \
    while (!(Pred) && Spin_++ != 5000)                                     \
      std::this_thread::sleep_for(std::chrono::milliseconds(2));           \
    ASSERT_TRUE(Pred) << "timed out waiting for: " #Pred;                  \
  } while (0)

/// A benign code-only patch: map_url becomes a straight passthrough
/// (the fixture never requests "/", the only target v1 rewrites).
const char *GoodMapUrlPatch = R"dsu(
(patch
  (id "rollout-good-map-url")
  (description "benign map_url passthrough")
  (provides
    (fn (name "flashed.map_url")
        (type "fn(string) -> string")
        (vtal-fn "map_url")))
  (vtal-module
"module rollout_good
func map_url (target: string) -> string {
  load target
  ret
}"))
)dsu";

/// FlashEd on a 4-worker pool with the admin control plane: the smallest
/// production-shaped deployment a canary (1 of 4) makes sense on.
class RolloutPoolTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/doc.html", "<html>rollout</html>");
    Docs.put("/index.html", "<html>index</html>");
    ASSERT_FALSE(App.init(std::move(Docs)));
    App.enableAdmin(RT.controller());

    net::PoolOptions O;
    O.Workers = kWorkers;
    O.PollTimeoutMs = 2;
    Pool = std::make_unique<net::ReactorPool>(
        [this](const RequestHead &Head, std::string_view Raw,
               std::string &Out, SharedBody &Body) {
          App.handleInto(Head, Raw, Out, Body);
        },
        O);
    Pool->setUpdateRuntime(RT);
    App.attachPool(*Pool);
    ASSERT_FALSE(Pool->start());
  }

  void TearDown() override {
    stopLoad();
    App.rollouts().waitIdle(); // never tear the pool down under a rollout
    Pool->stop();
    faultinject::setStageStallMs(0);
  }

  void startLoad(unsigned Threads) {
    Stop.store(false);
    for (unsigned T = 0; T != Threads; ++T)
      Loaders.emplace_back([this] {
        KeepAliveClient C;
        if (C.connectTo(Pool->port()))
          return;
        unsigned N = 0;
        while (!Stop.load()) {
          // Workers accept on per-worker SO_REUSEPORT sockets, so the
          // connection->worker mapping is a kernel hash; re-rolling it
          // periodically guarantees the canary worker sees traffic.
          if (++N % 100 == 0)
            C.disconnect();
          Expected<FetchResult> R = C.get("/doc.html");
          if (!R)
            continue; // reconnects transparently on the next round trip
          if (R->Status == 200)
            Ok.fetch_add(1);
          else if (R->Status >= 500)
            Err5xx.fetch_add(1);
          else
            Other.fetch_add(1);
        }
      });
  }

  void stopLoad() {
    Stop.store(true);
    for (std::thread &T : Loaders)
      T.join();
    Loaders.clear();
  }

  bool terminal(uint64_t Id) {
    Expected<RolloutRecord> R = App.rollouts().rollout(Id);
    return R && (R->State == "promoted" || R->State == "rolled-back" ||
                 R->State == "failed");
  }

  RolloutRecord record(uint64_t Id) {
    Expected<RolloutRecord> R = App.rollouts().rollout(Id);
    EXPECT_TRUE(R);
    return R ? *R : RolloutRecord{};
  }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<net::ReactorPool> Pool;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Ok{0}, Err5xx{0}, Other{0};
  std::vector<std::thread> Loaders;
};

/// A healthy patch canaries on one worker, observes an (idle) window,
/// and promotes to the whole fleet without a barrier.
TEST_F(RolloutPoolTest, GoodPatchCanariesThenPromotes) {
  RolloutOptions O;
  O.WindowMs = 120;
  Expected<uint64_t> Id =
      App.rollouts().startArtifactText(GoodMapUrlPatch, "test", O);
  ASSERT_TRUE(Id) << Id.takeError().str();

  WAIT_FOR(terminal(*Id));
  RolloutRecord Rec = record(*Id);
  EXPECT_EQ(Rec.State, "promoted");
  EXPECT_EQ(Rec.Verdict, "promoted");
  EXPECT_EQ(Rec.Mode, "canary");
  EXPECT_EQ(Rec.CanaryMask, 1u) << "canary group should be worker 0 only";
  EXPECT_EQ(Pool->barrierRounds(), 0u) << "a canary rollout armed the barrier";

  // The verdict is annotated into the regular update log too.
  std::vector<UpdateRecord> Log = RT.updateLog();
  ASSERT_FALSE(Log.empty());
  EXPECT_EQ(Log.back().Rollout, "promoted");
  EXPECT_EQ(Log.back().CommitMode, "canary");

  // The fleet serves the promoted binding.
  for (unsigned I = 0; I != 2 * kWorkers; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/doc.html");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Status, 200);
  }
}

/// The acceptance bar: an injected-500 patch canaried on 1 of 4 workers
/// under live keep-alive load trips the error gate within the window and
/// auto-rolls-back; the control group never serves the bad binding.
TEST_F(RolloutPoolTest, Error500PatchAutoRollsBackUnderLoad) {
  startLoad(2 * kWorkers);
  WAIT_FOR(Ok.load() >= 100);

  // Drive it over the wire, exactly as an operator would.
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Pool->port()));
  Expected<FetchResult> Posted = C.post(
      "/admin/rollout?canary_workers=1&window_ms=600&min_samples=5",
      faultinject::error500PatchText(), "application/x-dsu-patch");
  ASSERT_TRUE(Posted);
  ASSERT_EQ(Posted->Status, 202) << Posted->Body;
  uint64_t Id = 0;
  {
    size_t At = Posted->Body.find(": ");
    ASSERT_NE(At, std::string::npos) << Posted->Body;
    Id = std::strtoull(Posted->Body.c_str() + At + 2, nullptr, 10);
  }
  ASSERT_NE(Id, 0u);

  WAIT_FOR(terminal(Id));
  RolloutRecord Rec = record(Id);
  EXPECT_EQ(Rec.Verdict, "rolled-back");
  EXPECT_EQ(Rec.Mode, "canary");
  EXPECT_NE(Rec.Reason.find("error gate"), std::string::npos) << Rec.Reason;
  EXPECT_GE(Rec.CanaryErrors, 1u) << "the canary never served the bad binding";
  EXPECT_EQ(Rec.ControlErrors, 0u)
      << "a control worker served the bad binding";
  EXPECT_LE(Rec.DetectMs, 600.0 + 200.0)
      << "the error gate should trip within one window";

  // The verdict is visible over the wire too.
  Expected<FetchResult> Wire =
      C.get("/admin/rollouts?id=" + std::to_string(Id));
  ASSERT_TRUE(Wire);
  EXPECT_EQ(Wire->Status, 200);
  EXPECT_NE(Wire->Body.find("\"verdict\": \"rolled-back\""),
            std::string::npos)
      << Wire->Body;

  stopLoad();
  EXPECT_GE(Err5xx.load(), 1u) << "load never observed the canary's 500s";

  // Rolled back: the whole fleet serves the old (healthy) binding again.
  for (unsigned I = 0; I != 2 * kWorkers; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/doc.html");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Status, 200);
  }
  std::vector<UpdateRecord> Log = RT.updateLog();
  ASSERT_FALSE(Log.empty());
  EXPECT_EQ(Log.back().Rollout, "rolled-back");
}

/// A trapping patch's faults surface as zero values (404s), not 5xxs —
/// only the trap gate catches it.
TEST_F(RolloutPoolTest, TrapPatchTripsTheTrapGate) {
  // The static analyzer refuses this patch outright (must-trap); this
  // test exercises the *dynamic* trap gate, so stand the gate down.
  RT.setAnalysisGate(false);
  startLoad(2 * kWorkers);
  WAIT_FOR(Ok.load() >= 50);

  RolloutOptions O;
  O.WindowMs = 800;
  O.MinSamples = 1u << 20; // starve the error gate: only traps may trip
  Expected<uint64_t> Id = App.rollouts().startArtifactText(
      faultinject::trapPatchText(), "test", O);
  ASSERT_TRUE(Id) << Id.takeError().str();

  WAIT_FOR(terminal(*Id));
  RolloutRecord Rec = record(*Id);
  stopLoad();
  EXPECT_EQ(Rec.Verdict, "rolled-back");
  EXPECT_NE(Rec.Reason.find("trap gate"), std::string::npos) << Rec.Reason;
  EXPECT_GE(Rec.CanaryTraps, 1u);
  EXPECT_EQ(Rec.ControlErrors, 0u);
}

/// A fuel bomb never completes a request: depending on how fast the
/// interpreter burns the budget relative to the window, either the trap
/// gate (fuel exhausted -> trap) or the stall gate (requests entered,
/// none completed) catches it — but it must never promote.
TEST_F(RolloutPoolTest, FuelBombIsCaughtByTrapOrStallGate) {
  // Statically a fuel-exhaustion finding; stand the analyzer gate down
  // so the dynamic trap/stall gates are what catches it.
  RT.setAnalysisGate(false);
  startLoad(2 * kWorkers);
  WAIT_FOR(Ok.load() >= 50);

  RolloutOptions O;
  O.WindowMs = 3000;
  O.MinSamples = 1u << 20;
  Expected<uint64_t> Id = App.rollouts().startArtifactText(
      faultinject::fuelBurnPatchText(30'000'000), "test", O);
  ASSERT_TRUE(Id) << Id.takeError().str();

  WAIT_FOR(terminal(*Id));
  RolloutRecord Rec = record(*Id);
  stopLoad();
  EXPECT_EQ(Rec.Verdict, "rolled-back");
  EXPECT_NE(Rec.Reason.find("gate"), std::string::npos) << Rec.Reason;
}

/// Satellite: graced redirection chains drain from reactor idle — no
/// further commit needed to flush a fully-graced roll chain.
TEST_F(RolloutPoolTest, RollChainsDrainFromReactorIdle) {
  StagedUpdate S =
      RT.controller().stageArtifactText(GoodMapUrlPatch, "idle-drain");
  Pool->wake();
  WAIT_FOR(RT.updatesApplied() >= 1);
  EXPECT_EQ(RT.rollingCommits(), 1u);

  // No more commits, no explicit flush: the workers' idle hook detaches
  // the chain once every registered worker has quiesced past it.
  WAIT_FOR(App.MapUrl.slot()->rollDepth() == 0);
}

/// Satellite: the hardened client retries a busy control plane (503 +
/// Retry-After) with backoff until the in-flight rollout resolves.
TEST_F(RolloutPoolTest, BusyControlPlaneIsRetriedWithBackoff) {
  RolloutOptions O;
  O.WindowMs = 400;
  Expected<uint64_t> First =
      App.rollouts().startArtifactText(GoodMapUrlPatch, "first", O);
  ASSERT_TRUE(First);

  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Pool->port()));
  C.setTimeoutMs(5000);

  // A bare POST while busy gets the retryable answer with its hint.
  Expected<FetchResult> Busy = C.post("/admin/rollout?window_ms=100",
                                      GoodMapUrlPatch,
                                      "application/x-dsu-patch");
  ASSERT_TRUE(Busy);
  EXPECT_EQ(Busy->Status, 503);
  EXPECT_GE(retryAfterMs(*Busy), 0) << "503 without a Retry-After hint";

  // postWithRetry outlasts the first rollout's window and lands.
  RetryPolicy P;
  P.MaxAttempts = 100;
  P.BaseDelayMs = 20;
  P.MaxDelayMs = 100;
  Expected<FetchResult> Second = C.postWithRetry(
      "/admin/rollout?window_ms=100", GoodMapUrlPatch,
      "application/x-dsu-patch", P);
  ASSERT_TRUE(Second);
  EXPECT_EQ(Second->Status, 202) << Second->Body;

  WAIT_FOR(!App.rollouts().busy());
  std::vector<RolloutRecord> All = App.rollouts().rollouts();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].Verdict, "promoted");
  EXPECT_EQ(All[1].Verdict, "promoted");
}

/// dsu-updatectl rollout drives the whole loop from outside the process:
/// POST, poll, verdict, exit code.
TEST_F(RolloutPoolTest, UpdatectlRolloutCommandReportsTheVerdict) {
  std::string Tool = std::string(DSU_BIN_DIR) + "/tools/dsu-updatectl";
  if (!fileExists(Tool))
    GTEST_SKIP() << "dsu-updatectl not built";
  std::string PatchFile = ::testing::TempDir() + "dsu_rollout_good.dsup";
  ASSERT_FALSE(writeFile(PatchFile, GoodMapUrlPatch));
  std::string OutFile = ::testing::TempDir() + "dsu_rollout_ctl.out";

  std::string Cmd = Tool + " rollout " + std::to_string(Pool->port()) +
                    " " + PatchFile +
                    " --canary-workers 1 --window-ms 150 --timeout-ms 5000" +
                    " > " + OutFile + " 2>&1";
  int Status = std::system(Cmd.c_str());
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);

  Expected<std::string> Out = readFile(OutFile);
  ASSERT_TRUE(Out);
  EXPECT_NE(Out->find("promoted"), std::string::npos) << *Out;
  std::remove(PatchFile.c_str());
  std::remove(OutFile.c_str());
}

/// A single-worker fleet cannot hold back a control group: the rollout
/// degenerates to commit-then-observe under the barrier, gated on
/// absolute rates — and a healthy patch still promotes.
TEST(RolloutBarrierModeTest, SingleWorkerFallsBackToBarrierMode) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>one</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));
  App.enableAdmin(RT.controller());

  net::PoolOptions O;
  O.Workers = 1;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&App](const RequestHead &Head, std::string_view Raw, std::string &Out,
             SharedBody &Body) { App.handleInto(Head, Raw, Out, Body); },
      O);
  Pool.setUpdateRuntime(RT);
  App.attachPool(Pool);
  ASSERT_FALSE(Pool.start());

  RolloutOptions RO;
  RO.WindowMs = 100;
  Expected<uint64_t> Id =
      App.rollouts().startArtifactText(GoodMapUrlPatch, "test", RO);
  ASSERT_TRUE(Id) << Id.takeError().str();
  App.rollouts().waitIdle();

  Expected<RolloutRecord> Rec = App.rollouts().rollout(*Id);
  ASSERT_TRUE(Rec);
  EXPECT_EQ(Rec->Mode, "barrier");
  EXPECT_EQ(Rec->Verdict, "promoted");
  Expected<FetchResult> R = httpGet(Pool.port(), "/doc.html");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Status, 200);
  Pool.stop();
}

/// Satellite: the staging watchdog.  A patch wedged in verification is
/// aborted at the deadline with the TimedOut outcome, and the queue
/// behind it is not head-of-line-blocked.
TEST(StagingWatchdogTest, StalledStagingTimesOutAndUnblocksTheQueue) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>wd</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));

  RT.setStagingDeadlineMs(60);
  faultinject::setStageStallMs(5000);
  StagedUpdate S1 = RT.controller().stageArtifactText(
      faultinject::error500PatchText(), "stalled");
  // A second patch queued behind the stalled one inherits the deadline
  // and is timed out from the staging backlog.
  StagedUpdate S2 = RT.controller().stageArtifactText(
      faultinject::trapPatchText(), "backlogged");

  WAIT_FOR(S1.record().Phase == "timed-out");
  WAIT_FOR(S2.record().Phase == "timed-out");
  EXPECT_NE(S1.record().FailureReason.find("watchdog deadline"),
            std::string::npos)
      << S1.record().FailureReason;

  // The queue is clear: with the stall gone, a healthy patch stages and
  // commits normally.
  faultinject::setStageStallMs(0);
  RT.setStagingDeadlineMs(0);
  StagedUpdate S3 =
      RT.controller().stageArtifactText(GoodMapUrlPatch, "healthy");
  WAIT_FOR(S3.record().Phase == "ready");
  EXPECT_FALSE(S3.commit());
  EXPECT_EQ(RT.updatesApplied(), 1u);

  std::vector<UpdateRecord> Log = RT.updateLog();
  unsigned TimedOut = 0;
  for (const UpdateRecord &R : Log)
    if (R.Phase == "timed-out")
      ++TimedOut;
  EXPECT_EQ(TimedOut, 2u);
}

/// Tentpole acceptance: one live-pipeline patch yields a complete span
/// tree from operator POST to sealed outcome — staging (artifact load,
/// analysis, per-function verify, link prepare), the queue wait, the
/// commit with per-worker adoption, the rollout observation and verdict,
/// and the durable journal Intent/Seal appends — all stitched together
/// by the update transaction id and served by GET /admin/trace?id=N.
///
/// When DSU_TRACE_EXPORT_PATH is set, the Chrome trace-event export of
/// the same recording is written there (the CI lane validates and
/// uploads it as a build artifact).
TEST_F(RolloutPoolTest, TraceCoversTheWholeUpdateLifecycle) {
  // Attach a journal so the Intent/Seal fsync spans join the tree.
  persist::UpdateJournal::Options JO;
  JO.Sync = false;
  std::string Dir = ::testing::TempDir() + "dsu_trace_e2e_" +
                    std::to_string(static_cast<unsigned>(::getpid()));
  Expected<std::unique_ptr<persist::UpdateJournal>> J =
      persist::UpdateJournal::open(Dir, JO);
  ASSERT_TRUE(J) << J.takeError().str();
  (*J)->beginBoot("");
  RT.attachJournal(J->get());

  startLoad(kWorkers);
  WAIT_FOR(Ok.load() >= 50);

  RolloutOptions O;
  O.WindowMs = 150;
  Expected<uint64_t> Id =
      App.rollouts().startArtifactText(GoodMapUrlPatch, "trace-e2e", O);
  ASSERT_TRUE(Id) << Id.takeError().str();
  WAIT_FOR(terminal(*Id));
  RolloutRecord Rec = record(*Id);
  EXPECT_EQ(Rec.Verdict, "promoted");
  ASSERT_NE(Rec.TxId, 0u);

  // Every worker adopts the rolling commit at its own quiescent point;
  // poll the span tree until the last adoption and the journal seal
  // have landed.
  std::string Tree;
  for (int Spin = 0; Spin != 2000; ++Spin) {
    Expected<FetchResult> T = httpGet(
        Pool->port(), "/admin/trace?id=" + std::to_string(Rec.TxId));
    ASSERT_TRUE(T) << T.takeError().str();
    ASSERT_EQ(T->Status, 200);
    Tree = T->Body;
    if (countOccurrencesOf(Tree, "\"name\":\"adopt\"") >= kWorkers &&
        Tree.find("\"name\":\"seal\"") != std::string::npos)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stopLoad();

  EXPECT_NE(Tree.find("\"update\":" + std::to_string(Rec.TxId)),
            std::string::npos);
  // Controller pickup: the cross-thread backlog interval.
  EXPECT_NE(Tree.find("\"name\":\"backlog\""), std::string::npos) << Tree;
  // Staging: artifact load, whole-patch analysis, the staging pipeline
  // with per-function verification and link preparation inside it.
  EXPECT_NE(Tree.find("\"name\":\"artifact.load\""), std::string::npos);
  EXPECT_NE(Tree.find("\"name\":\"analyze\""), std::string::npos);
  EXPECT_NE(Tree.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(Tree.find("\"category\":\"verify\",\"name\":\"rollout_good."
                      "map_url\""),
            std::string::npos)
      << Tree;
  EXPECT_NE(Tree.find("\"category\":\"link\",\"name\":\"prepare\""),
            std::string::npos);
  // Queue wait, then the canary-masked rolling commit.
  EXPECT_NE(Tree.find("\"category\":\"queue\",\"name\":\"wait\""),
            std::string::npos);
  EXPECT_NE(Tree.find("\"category\":\"commit\",\"name\":\"canary\""),
            std::string::npos)
      << Tree;
  // Per-worker adoption of the rolling commit (no barrier parks: a
  // canary rollout must never arm the barrier).
  EXPECT_GE(countOccurrencesOf(Tree, "\"name\":\"adopt\""), kWorkers)
      << Tree;
  EXPECT_EQ(Tree.find("\"name\":\"park\""), std::string::npos);
  // Rollout observation and verdict.
  EXPECT_NE(Tree.find("\"name\":\"observe\""), std::string::npos);
  EXPECT_NE(Tree.find("\"name\":\"gate.poll\""), std::string::npos);
  EXPECT_NE(Tree.find("\"name\":\"verdict.promoted\""), std::string::npos)
      << Tree;
  // Durable journal appends: the Intent during staging, the Seal after
  // the verdict.
  EXPECT_NE(Tree.find("\"category\":\"journal\",\"name\":\"intent\""),
            std::string::npos)
      << Tree;
  EXPECT_NE(Tree.find("\"category\":\"journal\",\"name\":\"seal\""),
            std::string::npos)
      << Tree;

  // The same recording, as Chrome trace-event JSON for Perfetto.
  Expected<FetchResult> Chrome =
      httpGet(Pool->port(), "/admin/trace?export=chrome");
  ASSERT_TRUE(Chrome) << Chrome.takeError().str();
  EXPECT_EQ(Chrome->Status, 200);
  EXPECT_EQ(Chrome->Body.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Chrome->Body.find("\"ph\":\"X\""), std::string::npos);
  if (const char *Path = std::getenv("DSU_TRACE_EXPORT_PATH")) {
    ASSERT_FALSE(writeFile(Path, Chrome->Body));
  }

  RT.attachJournal(nullptr);
}

/// Unit coverage for the client's Retry-After parser.
TEST(ClientRetryTest, RetryAfterParsing) {
  FetchResult R;
  R.Headers = "HTTP/1.1 503 Service Unavailable\r\n"
              "Retry-After: 2\r\nContent-Length: 0";
  EXPECT_EQ(retryAfterMs(R), 2000);
  R.Headers = "HTTP/1.1 503 Service Unavailable\r\nretry-after: 0\r\n";
  EXPECT_EQ(retryAfterMs(R), 0);
  R.Headers = "HTTP/1.1 200 OK\r\nContent-Length: 0";
  EXPECT_EQ(retryAfterMs(R), -1);
  R.Headers = "HTTP/1.1 503 X\r\nRetry-After: soon\r\n";
  EXPECT_EQ(retryAfterMs(R), -1);
}

} // namespace
